#include "core/local_site.hpp"

#include <gtest/gtest.h>

#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

using testutil::makeDataset;

PrepareRequest prep(double q,
                    PruneRule rule = PruneRule::kThresholdBound) {
  PrepareRequest request;
  request.q = q;
  request.prune = rule;
  return request;
}

TEST(LocalSiteTest, PrepareComputesQualifiedLocalSkyline) {
  const Dataset db = generateSynthetic(
      SyntheticSpec{300, 2, ValueDistribution::kIndependent, 51});
  LocalSite site(0, db);
  const auto response = site.prepare(prep(0.3));
  EXPECT_EQ(response.localSkylineSize, linearSkyline(db, {.q = 0.3}).size());
}

TEST(LocalSiteTest, PrepareRejectsBadThreshold) {
  const Dataset db = makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  EXPECT_THROW(site.prepare(prep(0.0)), std::invalid_argument);
  EXPECT_THROW(site.prepare(prep(1.5)), std::invalid_argument);
}

TEST(LocalSiteTest, CandidatesComeInDescendingLocalProbability) {
  const Dataset db = generateSynthetic(
      SyntheticSpec{500, 3, ValueDistribution::kAnticorrelated, 52});
  LocalSite site(3, db);
  site.prepare(prep(0.3));
  double last = 2.0;
  std::size_t count = 0;
  while (true) {
    const auto response = site.nextCandidate(NextCandidateRequest{});
    if (!response.candidate) break;
    EXPECT_LE(response.candidate->localSkyProb, last);
    EXPECT_GE(response.candidate->localSkyProb, 0.3);
    EXPECT_EQ(response.candidate->site, 3u);
    last = response.candidate->localSkyProb;
    ++count;
  }
  EXPECT_EQ(count, linearSkyline(db, {.q = 0.3}).size());
  // Exhausted site keeps answering empty.
  EXPECT_FALSE(site.nextCandidate(NextCandidateRequest{}).candidate.has_value());
}

TEST(LocalSiteTest, EvaluateReturnsExternalSurvival) {
  const Dataset db = makeDataset(2, {
                                        {1.0, 1.0, 0.5},
                                        {2.0, 2.0, 0.25},
                                    });
  LocalSite site(0, db);
  site.prepare(prep(0.3));

  // Foreign tuple dominated by both local tuples.
  EvaluateRequest request;
  request.tuple = Tuple{100, {3.0, 3.0}, 0.9};
  request.pruneLocal = false;
  EXPECT_NEAR(site.evaluate(request).survival, 0.5 * 0.75, 1e-12);

  // Foreign tuple dominating everything: survival 1.
  request.tuple = Tuple{101, {0.0, 0.0}, 0.9};
  EXPECT_DOUBLE_EQ(site.evaluate(request).survival, 1.0);
}

TEST(LocalSiteTest, ThresholdPruneNeedsAccumulatedEvidence) {
  // Local skyline tuple with probability 0.9; a single external dominator
  // with P = 0.4 leaves the bound at 0.54 >= 0.3 (kept), a second pushes it
  // to 0.324... still above; a third (0.4) gives 0.194 < 0.3 (pruned).
  const Dataset db = makeDataset(2, {{5.0, 5.0, 0.9}});
  LocalSite site(0, db);
  site.prepare(prep(0.3));
  ASSERT_EQ(site.pendingCount(kNoQuery), 1u);

  EvaluateRequest request;
  request.pruneLocal = true;
  request.tuple = Tuple{100, {1.0, 1.0}, 0.4};
  EXPECT_EQ(site.evaluate(request).prunedCount, 0u);
  request.tuple = Tuple{101, {2.0, 2.0}, 0.4};
  EXPECT_EQ(site.evaluate(request).prunedCount, 0u);
  request.tuple = Tuple{102, {3.0, 3.0}, 0.4};
  EXPECT_EQ(site.evaluate(request).prunedCount, 1u);
  EXPECT_EQ(site.pendingCount(kNoQuery), 0u);
}

TEST(LocalSiteTest, DominancePruneDropsImmediately) {
  const Dataset db = makeDataset(2, {{5.0, 5.0, 0.9}});
  LocalSite site(0, db);
  site.prepare(prep(0.3, PruneRule::kDominance));

  EvaluateRequest request;
  request.pruneLocal = true;
  request.tuple = Tuple{100, {1.0, 1.0}, 0.01};  // tiny probability!
  EXPECT_EQ(site.evaluate(request).prunedCount, 1u);
  EXPECT_EQ(site.pendingCount(kNoQuery), 0u);
}

TEST(LocalSiteTest, NonDominatingFeedbackPrunesNothing) {
  const Dataset db = makeDataset(2, {{1.0, 5.0, 0.9}});
  LocalSite site(0, db);
  site.prepare(prep(0.3, PruneRule::kDominance));
  EvaluateRequest request;
  request.pruneLocal = true;
  request.tuple = Tuple{100, {5.0, 1.0}, 0.99};  // incomparable
  EXPECT_EQ(site.evaluate(request).prunedCount, 0u);
  EXPECT_EQ(site.pendingCount(kNoQuery), 1u);
}

TEST(LocalSiteTest, ShipAllReturnsWholeDatabase) {
  const Dataset db = generateSynthetic(
      SyntheticSpec{128, 2, ValueDistribution::kIndependent, 53});
  LocalSite site(0, db);
  auto shipped = site.shipAll().tuples;
  EXPECT_EQ(shipped.size(), db.size());
  std::sort(shipped.begin(), shipped.end(),
            [](const Tuple& a, const Tuple& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < shipped.size(); ++i) {
    const auto row = db.rowOf(shipped[i].id);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(shipped[i].prob, db.prob(*row));
  }
}

TEST(LocalSiteTest, ApplyInsertReportsBoundsAndDominatedReplica) {
  const Dataset db = makeDataset(2, {{2.0, 2.0, 0.5}});
  LocalSite site(0, db);
  site.prepare(prep(0.3));

  // Install a replica entry from another site that the insert dominates.
  ReplicaAddRequest replica;
  replica.entry = Candidate{1, Tuple{200, {4.0, 4.0}, 0.6}, 0.6};
  replica.globalSkyProb = 0.5;
  site.replicaAdd(replica);
  // And one from another site that dominates the insert position.
  ReplicaAddRequest dominator;
  dominator.entry = Candidate{2, Tuple{201, {0.5, 0.5}, 0.5}, 0.5};
  dominator.globalSkyProb = 0.5;
  site.replicaAdd(dominator);

  ApplyInsertRequest insert;
  insert.tuple = Tuple{300, {3.0, 3.0}, 0.8};
  const auto response = site.applyInsert(insert);
  // Local: dominated by (2,2) P=0.5 -> P_sky = 0.8 * 0.5 = 0.4.
  EXPECT_NEAR(response.localSkyProb, 0.4, 1e-12);
  // External replica dominator (0.5, 0.5) P=0.5 -> bound 0.2.
  EXPECT_NEAR(response.globalUpperBound, 0.2, 1e-12);
  ASSERT_EQ(response.dominatedReplica.size(), 1u);
  EXPECT_EQ(response.dominatedReplica[0], 200u);
  EXPECT_EQ(site.size(), 2u);
}

TEST(LocalSiteTest, ReplicaDominatorFromOwnSiteNotDoubleCounted) {
  const Dataset db = makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  site.prepare(prep(0.3));
  // Replica entry originating from THIS site: already in the local tree.
  ReplicaAddRequest replica;
  replica.entry = Candidate{0, Tuple{0, {1.0, 1.0}, 0.5}, 0.5};
  replica.globalSkyProb = 0.5;
  site.replicaAdd(replica);

  ApplyInsertRequest insert;
  insert.tuple = Tuple{300, {2.0, 2.0}, 0.8};
  const auto response = site.applyInsert(insert);
  EXPECT_NEAR(response.localSkyProb, 0.8 * 0.5, 1e-12);
  // Must NOT be 0.8 * 0.5 * 0.5.
  EXPECT_NEAR(response.globalUpperBound, 0.8 * 0.5, 1e-12);
}

TEST(LocalSiteTest, ApplyDeleteReturnsProbability) {
  const Dataset db = makeDataset(2, {{1.0, 2.0, 0.75}});
  LocalSite site(0, db);
  ApplyDeleteRequest request;
  request.id = 0;
  request.values = {1.0, 2.0};
  const auto response = site.applyDelete(request);
  EXPECT_TRUE(response.existed);
  EXPECT_EQ(response.prob, 0.75);
  EXPECT_EQ(site.size(), 0u);
  // Second delete misses.
  EXPECT_FALSE(site.applyDelete(request).existed);
}

TEST(LocalSiteTest, RepairDeleteFindsPromotableCandidates) {
  // Site holds a tuple that was suppressed by an (external, now deleted)
  // dominator.
  const Dataset db = makeDataset(2, {{5.0, 5.0, 0.8}});
  LocalSite site(0, db);
  site.prepare(prep(0.3));

  RepairDeleteRequest repair;
  repair.deleted = Tuple{900, {1.0, 1.0}, 0.9};
  repair.origin = 2;
  const auto response = site.repairDelete(repair);
  ASSERT_EQ(response.candidates.size(), 1u);
  EXPECT_EQ(response.candidates[0].tuple.id, 0u);
  EXPECT_NEAR(response.candidates[0].localSkyProb, 0.8, 1e-12);
}

TEST(LocalSiteTest, RepairDeleteSkipsReplicaMembersAndLowBounds) {
  const Dataset db = makeDataset(2, {
                                        {5.0, 5.0, 0.8},   // in replica
                                        {6.0, 5.5, 0.7},   // incomparable-ish
                                    });
  LocalSite site(0, db);
  site.prepare(prep(0.3));

  ReplicaAddRequest replica;
  replica.entry = Candidate{0, Tuple{0, {5.0, 5.0}, 0.8}, 0.8};
  replica.globalSkyProb = 0.8;
  site.replicaAdd(replica);
  // External replica dominator crushing tuple 1's bound.
  ReplicaAddRequest crusher;
  crusher.entry = Candidate{1, Tuple{500, {0.5, 0.5}, 0.95}, 0.95};
  crusher.globalSkyProb = 0.9;
  site.replicaAdd(crusher);

  RepairDeleteRequest repair;
  repair.deleted = Tuple{900, {1.0, 1.0}, 0.9};
  repair.origin = 2;
  const auto response = site.repairDelete(repair);
  // Tuple 0 is in the replica; tuple 1's bound is 0.7*... *(1-0.95) < 0.3.
  EXPECT_TRUE(response.candidates.empty());
}

TEST(LocalSiteTest, ReplicaAddReplacesAndRemoveErases) {
  const Dataset db = makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  ReplicaAddRequest add;
  add.entry = Candidate{1, Tuple{7, {2.0, 2.0}, 0.5}, 0.5};
  add.globalSkyProb = 0.5;
  site.replicaAdd(add);
  add.globalSkyProb = 0.4;
  site.replicaAdd(add);  // replaces, no duplicate
  ASSERT_EQ(site.replica().size(), 1u);
  EXPECT_EQ(site.replica()[0].globalSkyProb, 0.4);

  site.replicaRemove(ReplicaRemoveRequest{7});
  EXPECT_TRUE(site.replica().empty());
  site.replicaRemove(ReplicaRemoveRequest{7});  // idempotent
}

}  // namespace
}  // namespace dsud
