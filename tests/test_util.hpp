// Shared helpers for the dsud test suites.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/dataset.hpp"
#include "core/result.hpp"
#include "skyline/linear_skyline.hpp"

namespace dsud::testutil {

/// Builds a dataset from {values..., prob} rows with sequential ids.
inline Dataset makeDataset(std::size_t dims,
                           std::initializer_list<std::vector<double>> rows) {
  Dataset data(dims);
  for (const auto& row : rows) {
    const std::span<const double> values(row.data(), dims);
    data.add(values, row[dims]);
  }
  return data;
}

/// Union of several local databases into one global database.
inline Dataset unionOf(const std::vector<Dataset>& sites) {
  Dataset global(sites.front().dims());
  for (const Dataset& site : sites) {
    for (std::size_t row = 0; row < site.size(); ++row) {
      const TupleRef t = site.at(row);
      global.add(t.id, t.values, t.prob);
    }
  }
  return global;
}

/// Ground truth: the exact global skyline of the union, via the O(N²) scan.
inline std::vector<ProbSkylineEntry> groundTruth(
    const std::vector<Dataset>& sites, double q, DimMask mask = 0) {
  const Dataset global = unionOf(sites);
  const DimMask effective = mask == 0 ? fullMask(global.dims()) : mask;
  return linearSkyline(global, {.mask = effective, .q = q});
}

/// Ids of a centralised answer set.
inline std::vector<TupleId> idsOf(const std::vector<ProbSkylineEntry>& v) {
  std::vector<TupleId> ids;
  ids.reserve(v.size());
  for (const auto& e : v) ids.push_back(e.id);
  return ids;
}

/// Ids of a distributed answer set (sorted canonically first by caller).
inline std::vector<TupleId> idsOf(const std::vector<GlobalSkylineEntry>& v) {
  std::vector<TupleId> ids;
  ids.reserve(v.size());
  for (const auto& e : v) ids.push_back(e.tuple.id);
  return ids;
}

}  // namespace dsud::testutil
