// SkylineSpec value semantics: operator==, std::hash, and compatibleWith —
// the predicates the result cache and batch executor key on.
#include <gtest/gtest.h>

#include <unordered_set>

#include "geometry/rect.hpp"
#include "skyline/spec.hpp"

namespace dsud {
namespace {

Rect box(double lo0, double hi0, double lo1, double hi1) {
  Rect r(2);
  const double lo[2] = {lo0, lo1};
  const double hi[2] = {hi0, hi1};
  r.expand(lo);
  r.expand(hi);
  return r;
}

TEST(SpecTest, EqualityComparesFields) {
  EXPECT_EQ(SkylineSpec{}, SkylineSpec{});
  EXPECT_EQ((SkylineSpec{.mask = 0b011, .q = 0.3}),
            (SkylineSpec{.mask = 0b011, .q = 0.3}));
  EXPECT_NE((SkylineSpec{.mask = 0b011, .q = 0.3}),
            (SkylineSpec{.mask = 0b111, .q = 0.3}));
  EXPECT_NE((SkylineSpec{.q = 0.3}), (SkylineSpec{.q = 0.5}));
}

TEST(SpecTest, ClipComparesByValueNotPointer) {
  const Rect a = box(0.0, 1.0, 0.0, 1.0);
  const Rect sameAsA = box(0.0, 1.0, 0.0, 1.0);
  const Rect different = box(0.0, 2.0, 0.0, 1.0);

  // Two specs built independently for the same window must compare equal.
  EXPECT_EQ((SkylineSpec{.q = 0.3, .clip = &a}),
            (SkylineSpec{.q = 0.3, .clip = &sameAsA}));
  EXPECT_NE((SkylineSpec{.q = 0.3, .clip = &a}),
            (SkylineSpec{.q = 0.3, .clip = &different}));
  // Null clip is its own state, not "any window".
  EXPECT_NE((SkylineSpec{.q = 0.3, .clip = &a}), (SkylineSpec{.q = 0.3}));
}

TEST(SpecTest, HashIsConsistentWithEquality) {
  const Rect a = box(0.0, 1.0, 0.0, 1.0);
  const Rect sameAsA = box(0.0, 1.0, 0.0, 1.0);
  const std::hash<SkylineSpec> hash;

  EXPECT_EQ(hash(SkylineSpec{.mask = 0b011, .q = 0.3}),
            hash(SkylineSpec{.mask = 0b011, .q = 0.3}));
  EXPECT_EQ(hash(SkylineSpec{.q = 0.3, .clip = &a}),
            hash(SkylineSpec{.q = 0.3, .clip = &sameAsA}));
  // Zero threshold hashes like negative zero (both compare equal).
  EXPECT_EQ(hash(SkylineSpec{.q = 0.0}), hash(SkylineSpec{.q = -0.0}));

  // Unequal specs should (overwhelmingly) hash apart; spot-check the fields
  // that feed the mix.
  EXPECT_NE(hash(SkylineSpec{.q = 0.3}), hash(SkylineSpec{.q = 0.5}));
  EXPECT_NE(hash(SkylineSpec{.mask = 0b011}), hash(SkylineSpec{.mask = 0b101}));
}

TEST(SpecTest, WorksAsUnorderedSetKey) {
  const Rect a = box(0.0, 1.0, 0.0, 1.0);
  const Rect sameAsA = box(0.0, 1.0, 0.0, 1.0);
  std::unordered_set<SkylineSpec> seen;
  seen.insert(SkylineSpec{.q = 0.3});
  seen.insert(SkylineSpec{.q = 0.3});  // duplicate
  seen.insert(SkylineSpec{.q = 0.3, .clip = &a});
  seen.insert(SkylineSpec{.q = 0.3, .clip = &sameAsA});  // value-duplicate
  seen.insert(SkylineSpec{.q = 0.5});
  EXPECT_EQ(seen.size(), 3u);
}

TEST(SpecTest, CompatibleIgnoresThresholdOnly) {
  const Rect a = box(0.0, 1.0, 0.0, 1.0);
  const Rect sameAsA = box(0.0, 1.0, 0.0, 1.0);
  const Rect different = box(0.0, 2.0, 0.0, 1.0);

  const SkylineSpec loose{.mask = 0b011, .q = 0.1, .clip = &a};
  const SkylineSpec tight{.mask = 0b011, .q = 0.9, .clip = &sameAsA};
  EXPECT_TRUE(loose.compatibleWith(tight));
  EXPECT_TRUE(tight.compatibleWith(loose));

  // Any difference in the candidate universe breaks compatibility.
  EXPECT_FALSE(loose.compatibleWith(
      SkylineSpec{.mask = 0b111, .q = 0.1, .clip = &a}));
  EXPECT_FALSE(loose.compatibleWith(
      SkylineSpec{.mask = 0b011, .q = 0.1, .clip = &different}));
  EXPECT_FALSE(loose.compatibleWith(SkylineSpec{.mask = 0b011, .q = 0.1}));
  EXPECT_TRUE(SkylineSpec{.q = 0.1}.compatibleWith(SkylineSpec{.q = 0.9}));
}

}  // namespace
}  // namespace dsud
