// Cross-feature combinations not covered by the per-module suites:
// subspace maintenance, policy/rule matrices on certain data, sessions
// without prepare, parallel top-k, and naive progressiveness.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(MiscTest, SubspaceMaintenanceStaysExact) {
  // SKY(H) maintained on a 2-of-3-dimension subspace through updates.
  const Dataset global = generateSynthetic(
      SyntheticSpec{250, 3, ValueDistribution::kIndependent, 1100});
  Rng rng(1101);
  auto siteData = partitionUniform(global, 3, rng);

  InProcCluster cluster(Topology::fromPartitions(siteData));
  QueryConfig config;
  config.mask = 0b011;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();

  Rng updateRng(1102);
  TupleId next = 700000;
  for (int step = 0; step < 25; ++step) {
    UpdateEvent e;
    if (updateRng.uniform() < 0.5 || siteData[0].empty()) {
      e.kind = UpdateEvent::Kind::kInsert;
      e.site = static_cast<SiteId>(updateRng.below(3));
      e.tuple = Tuple{next++,
                      {updateRng.uniform(), updateRng.uniform(),
                       updateRng.uniform()},
                      updateRng.existentialUniform()};
      siteData[e.site].add(e.tuple.id, e.tuple.values, e.tuple.prob);
    } else {
      const SiteId site = static_cast<SiteId>(updateRng.below(3));
      if (siteData[site].empty()) continue;
      const std::size_t row = updateRng.below(siteData[site].size());
      const TupleRef t = siteData[site].at(row);
      e.kind = UpdateEvent::Kind::kDelete;
      e.site = site;
      e.tuple = Tuple{t.id,
                      std::vector<double>(t.values.begin(), t.values.end()),
                      t.prob};
      siteData[site].eraseRow(row);
    }
    maintainer.apply(e);
  }

  auto got = testutil::idsOf(maintainer.skyline());
  std::sort(got.begin(), got.end());
  auto want = testutil::idsOf(testutil::groundTruth(siteData, 0.3, 0b011));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(MiscTest, PolicyRuleMatrixExactOnCertainData) {
  // With P ≡ 1 every combination of prune rule, bound mode, and expunge
  // policy is exact (the classical distributed skyline case).
  Dataset global(2);
  Rng rng(1103);
  for (int i = 0; i < 400; ++i) {
    global.add(std::vector<double>{rng.uniform(), rng.uniform()}, 1.0);
  }
  InProcCluster cluster(Topology::uniform(global, 5, 1104));
  const auto expected = testutil::idsOf(linearSkyline(global, {.q = 0.3}));

  for (const PruneRule prune :
       {PruneRule::kThresholdBound, PruneRule::kDominance}) {
    for (const FeedbackBound bound :
         {FeedbackBound::kNone, FeedbackBound::kQueuedWitnesses,
          FeedbackBound::kQueuedAndConfirmed}) {
      for (const ExpungePolicy expunge :
           {ExpungePolicy::kEager, ExpungePolicy::kPark}) {
        QueryConfig config;
        config.prune = prune;
        config.bound = bound;
        config.expunge = expunge;
        QueryResult result = cluster.engine().runEdsud(config);
        sortByGlobalProbability(result.skyline);
        EXPECT_EQ(testutil::idsOf(result.skyline), expected)
            << "prune=" << static_cast<int>(prune)
            << " bound=" << static_cast<int>(bound)
            << " expunge=" << static_cast<int>(expunge);
      }
    }
  }
}

TEST(MiscTest, SessionCallsWithoutPrepareAreSafe) {
  const Dataset db = testutil::makeDataset(2, {{1.0, 2.0, 0.5}});
  LocalSite site(0, db);
  // No prepare yet: no pending candidates, evaluation uses full mask.
  EXPECT_FALSE(site.nextCandidate(NextCandidateRequest{}).candidate.has_value());
  EvaluateRequest eval;
  eval.tuple = Tuple{9, {2.0, 3.0}, 0.5};
  EXPECT_NEAR(site.evaluate(eval).survival, 0.5, 1e-12);
}

TEST(MiscTest, TopKUnderParallelBroadcastMatchesSequential) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 1105});
  InProcCluster seq(Topology::uniform(global, 8, 1106));
  InProcCluster par(Topology::uniform(global, 8, 1106));
  QueryOptions parallel;
  parallel.broadcastThreads = 4;

  TopKConfig config;
  config.k = 7;
  const QueryResult a = seq.engine().runTopK(config);
  const QueryResult b = par.engine().runTopK(config, parallel);
  EXPECT_EQ(testutil::idsOf(a.skyline), testutil::idsOf(b.skyline));
  EXPECT_EQ(a.stats.tuplesShipped, b.stats.tuplesShipped);
}

TEST(MiscTest, NaiveIsProgressiveToo) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 2, ValueDistribution::kAnticorrelated, 1107});
  InProcCluster cluster(Topology::uniform(global, 4, 1108));
  std::size_t callbacks = 0;
  QueryOptions options;
  options.progress = [&](const GlobalSkylineEntry&, const ProgressPoint& point) {
    ++callbacks;
    EXPECT_EQ(point.reported, callbacks);
  };
  const QueryResult result = cluster.engine().runNaive(QueryConfig{}, options);
  EXPECT_EQ(callbacks, result.skyline.size());
  EXPECT_GT(callbacks, 0u);
  // The naive baseline ships everything up front, so every progress point
  // reports the same (full) bandwidth — the opposite of progressive cost.
  EXPECT_EQ(result.progress.front().tuplesShipped,
            result.progress.back().tuplesShipped);
}

TEST(MiscTest, MeterLinksAttributeTrafficToTheRightSites) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 1109});
  InProcCluster cluster(Topology::uniform(global, 3, 1110));
  cluster.engine().runEdsud(QueryConfig{});
  std::uint64_t total = 0;
  for (SiteId s = 0; s < 3; ++s) {
    const LinkUsage link = cluster.meter().link(s);
    EXPECT_GT(link.calls, 0u) << "site " << s;
    total += link.tuplesToSite + link.tuplesFromSite;
  }
  EXPECT_EQ(total, cluster.meter().totals().tuples);
}

}  // namespace
}  // namespace dsud
