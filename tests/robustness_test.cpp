// Adversarial-input robustness: the site server must never crash or read out
// of bounds on malformed frames — every failure surfaces as SerializeError
// (or a domain exception), and the site remains usable afterwards.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/local_site.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : db_(testutil::makeDataset(2, {{1.0, 2.0, 0.5}, {2.0, 1.0, 0.6}})),
        site_(0, db_),
        server_(site_) {}

  Frame validPrepare() {
    PrepareRequest request;
    request.q = 0.3;
    return toFrame(MsgType::kPrepare, request);
  }

  /// The server must either answer or throw a library exception type.
  void expectHandled(const Frame& frame) {
    try {
      server_.handle(frame);
    } catch (const SerializeError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::logic_error&) {
    }
  }

  Dataset db_;
  LocalSite site_;
  SiteServer server_;
};

TEST_F(RobustnessTest, EmptyFrame) {
  EXPECT_THROW(server_.handle(Frame{}), SerializeError);
}

TEST_F(RobustnessTest, EveryTypeByteAlone) {
  for (int type = 0; type < 256; ++type) {
    Frame frame{static_cast<std::byte>(type)};
    expectHandled(frame);
  }
  // Site still works.
  const Frame response = server_.handle(validPrepare());
  EXPECT_EQ(fromResponseFrame<PrepareResponse>(response).localSkylineSize, 2u);
}

TEST_F(RobustnessTest, TruncationsOfEveryValidMessage) {
  std::vector<Frame> frames;
  frames.push_back(validPrepare());
  frames.push_back(toFrame(MsgType::kNextCandidate, NextCandidateRequest{}));
  EvaluateRequest eval;
  eval.tuple = Tuple{9, {0.5, 0.5}, 0.5};
  frames.push_back(toFrame(MsgType::kEvaluate, eval));
  ApplyInsertRequest ins;
  ins.tuple = Tuple{10, {0.25, 0.25}, 0.5};
  frames.push_back(toFrame(MsgType::kApplyInsert, ins));
  ApplyDeleteRequest del;
  del.id = 0;
  del.values = {1.0, 2.0};
  frames.push_back(toFrame(MsgType::kApplyDelete, del));
  RepairDeleteRequest rep;
  rep.deleted = Tuple{11, {0.1, 0.1}, 0.5};
  rep.origin = 1;
  frames.push_back(toFrame(MsgType::kRepairDelete, rep));

  server_.handle(validPrepare());
  for (const Frame& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      Frame truncated(frame.begin(),
                      frame.begin() + static_cast<std::ptrdiff_t>(cut));
      expectHandled(truncated);
    }
  }
  // Still alive and consistent.
  const Frame response = server_.handle(validPrepare());
  EXPECT_GE(fromResponseFrame<PrepareResponse>(response).localSkylineSize, 1u);
}

TEST_F(RobustnessTest, RandomByteFlips) {
  Rng rng(31337);
  EvaluateRequest eval;
  eval.tuple = Tuple{9, {0.5, 0.5}, 0.5};
  const Frame base = toFrame(MsgType::kEvaluate, eval);
  server_.handle(validPrepare());
  for (int trial = 0; trial < 2000; ++trial) {
    Frame mutated = base;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<std::byte>(rng.below(256));
    }
    expectHandled(mutated);
  }
}

TEST_F(RobustnessTest, RandomGarbageFrames) {
  Rng rng(424242);
  for (int trial = 0; trial < 2000; ++trial) {
    Frame garbage(rng.below(64));
    for (auto& b : garbage) b = static_cast<std::byte>(rng.below(256));
    expectHandled(garbage);
  }
}

TEST_F(RobustnessTest, HugeClaimedLengthsDoNotAllocate) {
  // A ShipAllResponse-style u32 count of ~4 billion must fail fast on the
  // reader's bounds check rather than attempt the allocation.
  ByteWriter w;
  w.putU8(static_cast<std::uint8_t>(MsgType::kApplyDelete));
  w.putU64(0);
  w.putU32(0xffffffffu);  // claimed vector length
  const Frame frame = std::move(w).take();
  EXPECT_THROW(server_.handle(frame), SerializeError);
}

TEST_F(RobustnessTest, EvaluateWithWrongDimensionality) {
  server_.handle(validPrepare());
  EvaluateRequest eval;
  eval.tuple = Tuple{9, {0.5, 0.5, 0.5, 0.5}, 0.5};  // 4 dims vs site's 2
  const Frame frame = toFrame(MsgType::kEvaluate, eval);
  EXPECT_THROW(server_.handle(frame), std::invalid_argument);
}

}  // namespace
}  // namespace dsud
