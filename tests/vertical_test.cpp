#include "vertical/vertical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

/// Classic skyline ids of a dataset ignoring probabilities.
std::vector<TupleId> classicSkylineIds(const Dataset& data) {
  std::vector<TupleId> ids;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < data.size() && !dominated; ++j) {
      dominated = j != i && dominates(data.values(j), data.values(i));
    }
    if (!dominated) ids.push_back(data.id(i));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<TupleId> idsOf(const std::vector<VerticalSkylineEntry>& v) {
  std::vector<TupleId> ids;
  for (const auto& e : v) ids.push_back(e.id);
  return ids;
}

TEST(DimensionSiteTest, SortedAccessAscending) {
  DimensionSite site(0, {{3.0, 30}, {1.0, 10}, {2.0, 20}});
  EXPECT_EQ(site.nextSorted(), std::make_pair(1.0, TupleId{10}));
  EXPECT_EQ(site.nextSorted(), std::make_pair(2.0, TupleId{20}));
  EXPECT_EQ(site.nextSorted(), std::make_pair(3.0, TupleId{30}));
  EXPECT_EQ(site.nextSorted(), std::nullopt);
  site.rewind();
  EXPECT_EQ(site.nextSorted(), std::make_pair(1.0, TupleId{10}));
}

TEST(DimensionSiteTest, RandomAccessAndErrors) {
  DimensionSite site(1, {{5.0, 1}, {6.0, 2}});
  EXPECT_EQ(site.valueOf(1), 5.0);
  EXPECT_EQ(site.valueOf(2), 6.0);
  EXPECT_THROW(site.valueOf(99), std::out_of_range);
  EXPECT_THROW(DimensionSite(0, {{1.0, 1}, {2.0, 1}}), std::invalid_argument);
}

TEST(VerticalTest, EmptyRelation) {
  const Dataset data(3);
  EXPECT_TRUE(verticalSkyline(data).empty());
}

TEST(VerticalTest, SingleTuple) {
  Dataset data(2);
  data.add(7, std::vector<double>{1.0, 2.0}, 1.0);
  const auto sky = verticalSkyline(data);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0].id, 7u);
  EXPECT_EQ(sky[0].values, (std::vector<double>{1.0, 2.0}));
}

TEST(VerticalTest, TotallyDominatedPointPruned) {
  Dataset data(2);
  data.add(0, std::vector<double>{1.0, 2.0}, 1.0);
  data.add(1, std::vector<double>{3.0, 4.0}, 1.0);
  const auto sky = verticalSkyline(data);
  EXPECT_EQ(idsOf(sky), (std::vector<TupleId>{0}));
}

class VerticalParamTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, ValueDistribution>> {};

TEST_P(VerticalParamTest, MatchesClassicSkyline) {
  const auto [n, dims, dist] = GetParam();
  for (std::uint64_t seed = 200; seed < 205; ++seed) {
    // Uniform doubles: distinct values with probability 1 (the algorithm's
    // stated uniqueness precondition).
    const Dataset data = generateSynthetic(SyntheticSpec{n, dims, dist, seed});
    VerticalStats stats;
    const auto sky = verticalSkyline(data, &stats);
    EXPECT_EQ(idsOf(sky), classicSkylineIds(data)) << "seed=" << seed;
    // Reassembled vectors are the true vectors.
    for (const auto& e : sky) {
      const auto row = data.rowOf(e.id);
      ASSERT_TRUE(row.has_value());
      const auto v = data.values(*row);
      EXPECT_TRUE(std::equal(v.begin(), v.end(), e.values.begin()));
    }
    EXPECT_LE(stats.sortedAccesses, n * dims);
    EXPECT_GE(stats.candidates, sky.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerticalParamTest,
    ::testing::Values(
        std::make_tuple(50, 2, ValueDistribution::kIndependent),
        std::make_tuple(500, 2, ValueDistribution::kIndependent),
        std::make_tuple(500, 3, ValueDistribution::kAnticorrelated),
        std::make_tuple(500, 4, ValueDistribution::kIndependent),
        std::make_tuple(2000, 3, ValueDistribution::kCorrelated),
        std::make_tuple(2000, 2, ValueDistribution::kAnticorrelated)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_" +
             distributionName(std::get<2>(info.param));
    });

TEST(VerticalTest, CorrelatedDataPrunesAggressively) {
  // On correlated data the first completed tuple appears early and prunes
  // nearly everything: far fewer sorted accesses than the full N·d scan.
  const Dataset data = generateSynthetic(
      SyntheticSpec{20000, 2, ValueDistribution::kCorrelated, 210});
  VerticalStats stats;
  verticalSkyline(data, &stats);
  EXPECT_LT(stats.sortedAccesses, data.size());  // vs 2N for the full scan
}

TEST(VerticalTest, AnticorrelatedDataPrunesPoorly) {
  // Anticorrelated data is the adversarial case: a tuple good on every
  // dimension rarely exists, so sorted access digs deep (matching the
  // original paper's observations).
  const Dataset indep = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kIndependent, 211});
  const Dataset anti = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kAnticorrelated, 211});
  VerticalStats indepStats;
  VerticalStats antiStats;
  verticalSkyline(indep, &indepStats);
  verticalSkyline(anti, &antiStats);
  EXPECT_GT(antiStats.sortedAccesses, indepStats.sortedAccesses);
}

TEST(VerticalTest, StatsAccounting) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1000, 3, ValueDistribution::kIndependent, 212});
  VerticalStats stats;
  const auto sky = verticalSkyline(data, &stats);
  EXPECT_GT(stats.sortedAccesses, 0u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GE(sky.size(), 1u);
  // Every candidate is materialised exactly once: each of its d attributes
  // arrives either by sorted or by random access.
  EXPECT_EQ(stats.sortedAccesses + stats.randomAccesses, stats.candidates * 3);
}

TEST(VerticalTest, ExplicitSitesWithShuffledDimensions) {
  // Site order need not match dimension order.
  Dataset data(2);
  data.add(0, std::vector<double>{1.0, 9.0}, 1.0);
  data.add(1, std::vector<double>{9.0, 1.0}, 1.0);
  data.add(2, std::vector<double>{8.0, 8.0}, 1.0);
  std::vector<DimensionSite> sites;
  sites.push_back(DimensionSite::fromDataset(data, 1));
  sites.push_back(DimensionSite::fromDataset(data, 0));
  const auto sky = verticalSkyline(sites);
  // (8,8) is incomparable with both extremes, so all three are skyline.
  EXPECT_EQ(idsOf(sky), (std::vector<TupleId>{0, 1, 2}));
  for (const auto& e : sky) {
    const auto row = data.rowOf(e.id);
    const auto v = data.values(*row);
    EXPECT_TRUE(std::equal(v.begin(), v.end(), e.values.begin()));
  }
}

TEST(VerticalTest, ReusableAcrossQueries) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{500, 3, ValueDistribution::kIndependent, 213});
  std::vector<DimensionSite> sites;
  for (std::size_t dim = 0; dim < 3; ++dim) {
    sites.push_back(DimensionSite::fromDataset(data, dim));
  }
  const auto first = verticalSkyline(sites);
  const auto second = verticalSkyline(sites);  // rewinds internally
  EXPECT_EQ(idsOf(first), idsOf(second));
}

}  // namespace
}  // namespace dsud
