#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "gen/nyse.hpp"
#include "gen/probability.hpp"
#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"

namespace dsud {
namespace {

TEST(ProbabilityTest, UniformStaysInRange) {
  Rng rng(1);
  const auto sampler = uniformProbability();
  for (int i = 0; i < 10000; ++i) {
    const double p = sampler(rng);
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
}

TEST(ProbabilityTest, GaussianClampedToValidRange) {
  Rng rng(2);
  const auto sampler = gaussianProbability(0.5, 0.5);  // wide: forces clamps
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double p = sampler(rng);
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.03);
}

TEST(ProbabilityTest, GaussianMeanTracks) {
  Rng rng(3);
  for (double mu : {0.3, 0.5, 0.7, 0.9}) {
    const auto sampler = gaussianProbability(mu, 0.2);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += sampler(rng);
    // Clamping skews slightly at the edges; generous tolerance.
    EXPECT_NEAR(sum / 20000, mu, 0.05) << "mu=" << mu;
  }
}

TEST(ProbabilityTest, ConstantIsConstantAndValidated) {
  Rng rng(4);
  const auto sampler = constantProbability(0.4);
  EXPECT_EQ(sampler(rng), 0.4);
  EXPECT_THROW(constantProbability(0.0), std::invalid_argument);
  EXPECT_THROW(constantProbability(1.5), std::invalid_argument);
}

TEST(SyntheticTest, RespectsSpec) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1234, 3, ValueDistribution::kIndependent, 5});
  EXPECT_EQ(data.size(), 1234u);
  EXPECT_EQ(data.dims(), 3u);
  for (std::size_t row = 0; row < data.size(); ++row) {
    for (double v : data.values(row)) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
    ASSERT_GT(data.prob(row), 0.0);
    ASSERT_LE(data.prob(row), 1.0);
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  const SyntheticSpec spec{100, 2, ValueDistribution::kAnticorrelated, 6};
  const Dataset a = generateSynthetic(spec);
  const Dataset b = generateSynthetic(spec);
  for (std::size_t row = 0; row < a.size(); ++row) {
    EXPECT_EQ(a.values(row)[0], b.values(row)[0]);
    EXPECT_EQ(a.prob(row), b.prob(row));
  }
  const Dataset c = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kAnticorrelated, 7});
  bool anyDifferent = false;
  for (std::size_t row = 0; row < a.size() && !anyDifferent; ++row) {
    anyDifferent = a.values(row)[0] != c.values(row)[0];
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(SyntheticTest, AnticorrelatedHasNegativePairwiseCorrelation) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{20000, 2, ValueDistribution::kAnticorrelated, 8});
  double sx = 0.0;
  double sy = 0.0;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  const auto n = static_cast<double>(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    const double x = data.values(row)[0];
    const double y = data.values(row)[1];
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_LT(corr, -0.3);
}

TEST(SyntheticTest, CorrelatedHasPositivePairwiseCorrelation) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{20000, 2, ValueDistribution::kCorrelated, 9});
  double sx = 0.0;
  double sy = 0.0;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  const auto n = static_cast<double>(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    const double x = data.values(row)[0];
    const double y = data.values(row)[1];
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.5);
}

TEST(SyntheticTest, AnticorrelatedSkylineIsMuchLarger) {
  // The defining property driving every "anticorrelated costs more" result
  // in the paper's evaluation.
  const std::size_t n = 5000;
  const Dataset indep = generateSynthetic(
      SyntheticSpec{n, 2, ValueDistribution::kIndependent, 10});
  const Dataset anti = generateSynthetic(
      SyntheticSpec{n, 2, ValueDistribution::kAnticorrelated, 10});
  const auto indepSky = linearSkyline(indep, {.q = 0.3});
  const auto antiSky = linearSkyline(anti, {.q = 0.3});
  EXPECT_GT(antiSky.size(), 2 * indepSky.size());
}

TEST(SyntheticTest, DimensionalityGrowsSkyline) {
  std::size_t prev = 0;
  for (std::size_t d = 2; d <= 5; ++d) {
    const Dataset data = generateSynthetic(
        SyntheticSpec{3000, d, ValueDistribution::kIndependent, 11});
    const std::size_t size = linearSkyline(data, {.q = 0.3}).size();
    EXPECT_GE(size, prev) << "d=" << d;
    prev = size;
  }
}

TEST(SyntheticTest, RejectsBadDims) {
  EXPECT_THROW(
      generateSynthetic(SyntheticSpec{10, 0, ValueDistribution::kIndependent, 1}),
      std::invalid_argument);
  EXPECT_THROW(generateSynthetic(SyntheticSpec{
                   10, kMaxDims + 1, ValueDistribution::kIndependent, 1}),
               std::invalid_argument);
}

TEST(SyntheticTest, DistributionNames) {
  EXPECT_STREQ(distributionName(ValueDistribution::kIndependent),
               "independent");
  EXPECT_STREQ(distributionName(ValueDistribution::kAnticorrelated),
               "anticorrelated");
  EXPECT_STREQ(distributionName(ValueDistribution::kCorrelated), "correlated");
  EXPECT_STREQ(distributionName(ValueDistribution::kClustered), "clustered");
}

TEST(SyntheticTest, ClusteredStaysInUnitCubeAndIsDeterministic) {
  const SyntheticSpec spec{2000, 3, ValueDistribution::kClustered, 60};
  const Dataset a = generateSynthetic(spec);
  const Dataset b = generateSynthetic(spec);
  for (std::size_t row = 0; row < a.size(); ++row) {
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_GE(a.values(row)[j], 0.0);
      ASSERT_LE(a.values(row)[j], 1.0);
      ASSERT_EQ(a.values(row)[j], b.values(row)[j]);
    }
  }
}

TEST(SyntheticTest, ClusteredOccupiesFarLessSpaceThanIndependent) {
  // Blob concentration: count occupied 50x50 grid cells.
  const auto occupiedCells = [](const Dataset& data) {
    std::set<int> cells;
    for (std::size_t row = 0; row < data.size(); ++row) {
      const int x = std::min(49, static_cast<int>(data.values(row)[0] * 50));
      const int y = std::min(49, static_cast<int>(data.values(row)[1] * 50));
      cells.insert(x * 50 + y);
    }
    return cells.size();
  };
  const Dataset clustered = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kClustered, 61});
  const Dataset independent = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kIndependent, 61});
  EXPECT_LT(occupiedCells(clustered), occupiedCells(independent) * 6 / 10);
}

TEST(SyntheticTest, ClusteredSeedMovesTheClusters) {
  const Dataset a = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kClustered, 62});
  const Dataset b = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kClustered, 63});
  bool different = false;
  for (std::size_t row = 0; row < a.size() && !different; ++row) {
    different = a.values(row)[0] != b.values(row)[0];
  }
  EXPECT_TRUE(different);
}

TEST(NyseTest, ShapeAndRanges) {
  const Dataset data = generateNyse(NyseSpec{20000, 12});
  EXPECT_EQ(data.size(), 20000u);
  EXPECT_EQ(data.dims(), 2u);
  for (std::size_t row = 0; row < data.size(); ++row) {
    const auto v = data.values(row);
    ASSERT_GE(v[0], 1.0);               // price at least $1
    ASSERT_LE(v[1], -100.0);            // negated volume, lots of 100
    ASSERT_EQ(std::fmod(-v[1], 100.0), 0.0);  // round lots
    // Prices are quantised to cents.
    ASSERT_NEAR(v[0] * 100.0, std::round(v[0] * 100.0), 1e-6);
  }
}

TEST(NyseTest, DeterministicPerSeed) {
  const Dataset a = generateNyse(NyseSpec{1000, 13});
  const Dataset b = generateNyse(NyseSpec{1000, 13});
  for (std::size_t row = 0; row < a.size(); ++row) {
    ASSERT_EQ(a.values(row)[0], b.values(row)[0]);
    ASSERT_EQ(a.values(row)[1], b.values(row)[1]);
  }
}

TEST(NyseTest, TinySkylineLikeRealStockData) {
  // Correlated/clustered market data has a very small skyline relative to
  // its cardinality — the property that makes the paper's NYSE experiments
  // cheap on bandwidth.
  const Dataset data = generateNyse(NyseSpec{50000, 14});
  const auto sky = linearSkyline(data, {.q = 0.3});
  EXPECT_LT(sky.size(), 100u);
  EXPECT_GT(sky.size(), 0u);
}

TEST(NyseTest, GaussianProbabilityVariantWorks) {
  const Dataset data =
      generateNyse(NyseSpec{5000, 15}, gaussianProbability(0.5, 0.2));
  double sum = 0.0;
  for (std::size_t row = 0; row < data.size(); ++row) sum += data.prob(row);
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace dsud
