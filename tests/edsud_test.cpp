#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(EdsudTest, BeatsDsudBandwidthOnTypicalWorkloads) {
  // The headline claim (paper Figs. 8-10): e-DSUD's feedback selection
  // transmits fewer tuples than DSUD.  Checked on several seeds.
  std::size_t wins = 0;
  std::uint64_t dsudTotal = 0;
  std::uint64_t edsudTotal = 0;
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    const Dataset global = generateSynthetic(
        SyntheticSpec{4000, 3, ValueDistribution::kIndependent, seed});
    InProcCluster cluster(Topology::uniform(global, 12, seed + 100));
    const QueryResult dsud = cluster.engine().runDsud(QueryConfig{});
    const QueryResult edsud = cluster.engine().runEdsud(QueryConfig{});
    EXPECT_EQ(testutil::idsOf(dsud.skyline).size(),
              testutil::idsOf(edsud.skyline).size());
    dsudTotal += dsud.stats.tuplesShipped;
    edsudTotal += edsud.stats.tuplesShipped;
    if (edsud.stats.tuplesShipped <= dsud.stats.tuplesShipped) ++wins;
  }
  EXPECT_GE(wins, 5u);
  EXPECT_LT(edsudTotal, dsudTotal);
}

TEST(EdsudTest, ExpungesCandidatesWithoutBroadcast) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{4000, 3, ValueDistribution::kIndependent, 47});
  InProcCluster cluster(Topology::uniform(global, 12, 48));
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  EXPECT_GT(result.stats.expunged, 0u);
  // Every pulled candidate is either broadcast or expunged.
  EXPECT_EQ(result.stats.candidatesPulled,
            result.stats.broadcasts + result.stats.expunged);
}

TEST(EdsudTest, BandwidthDecomposition) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 2, ValueDistribution::kAnticorrelated, 49});
  InProcCluster cluster(Topology::uniform(global, 8, 50));
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  EXPECT_EQ(result.stats.tuplesShipped,
            result.stats.candidatesPulled +
                result.stats.broadcasts * (cluster.siteCount() - 1));
}

TEST(EdsudTest, FeedbackBoundAblationAllCorrect) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 3, ValueDistribution::kAnticorrelated, 51});
  InProcCluster cluster(Topology::uniform(global, 10, 52));
  const auto expected =
      testutil::idsOf(linearSkyline(global, {.q = 0.3}));

  std::vector<std::uint64_t> bandwidth;
  for (const FeedbackBound bound :
       {FeedbackBound::kNone, FeedbackBound::kQueuedWitnesses,
        FeedbackBound::kQueuedAndConfirmed}) {
    QueryConfig config;
    config.bound = bound;
    QueryResult result = cluster.engine().runEdsud(config);
    sortByGlobalProbability(result.skyline);
    auto ids = testutil::idsOf(result.skyline);
    std::sort(ids.begin(), ids.end());
    auto want = expected;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(ids, want);
    bandwidth.push_back(result.stats.tuplesShipped);
  }
  // Stronger bounds never cost more bandwidth.
  EXPECT_GE(bandwidth[0], bandwidth[1]);
  EXPECT_GE(bandwidth[1], bandwidth[2]);
}

TEST(EdsudTest, BothExpungePoliciesReturnExactAnswers) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 3, ValueDistribution::kAnticorrelated, 46});
  InProcCluster cluster(Topology::uniform(global, 10, 146));
  const auto expected = testutil::idsOf(linearSkyline(global, {.q = 0.3}));
  for (const ExpungePolicy policy :
       {ExpungePolicy::kEager, ExpungePolicy::kPark}) {
    QueryConfig config;
    config.expunge = policy;
    QueryResult result = cluster.engine().runEdsud(config);
    sortByGlobalProbability(result.skyline);
    EXPECT_EQ(testutil::idsOf(result.skyline), expected)
        << "policy=" << static_cast<int>(policy);
    EXPECT_GT(result.stats.expunged, 0u);
  }
}

TEST(EdsudTest, PaperDominancePruneCanLoseQualifiedAnswers) {
  // Constructed counterexample for the paper's Local-Pruning claim
  // (DESIGN.md 3.5).  The feedback tuple t has a middling probability
  // (P = 0.5), so a tuple it dominates can still qualify globally, yet the
  // paper's rule prunes every dominated tuple unconditionally.
  //
  //   Site 0: t = (1, 1),    P = 0.50, local P_sky 0.50  (processed first)
  //   Site 1: u = (0.5, 10), P = 0.45, local P_sky 0.45  (site-1 head)
  //           s = (2, 2),    P = 0.44, local P_sky 0.44  (pending when t's
  //                                                       feedback arrives)
  //
  // P_gsky(s) = 0.44 · (1 − 0.5) = 0.22 >= q = 0.2, so s belongs in the
  // answer; the dominance rule silently drops it.
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(2);
  const std::array<double, 2> tv = {1.0, 1.0};
  const std::array<double, 2> uv = {0.5, 10.0};
  const std::array<double, 2> sv = {2.0, 2.0};
  sites[0].add(0, tv, 0.50);
  sites[1].add(1, uv, 0.45);
  sites[1].add(2, sv, 0.44);

  QueryConfig config;
  config.q = 0.2;

  // Exact rule: all three qualify (matches the centralised ground truth).
  {
    InProcCluster cluster(Topology::fromPartitions(sites));
    config.prune = PruneRule::kThresholdBound;
    const QueryResult exact = cluster.engine().runEdsud(config);
    auto ids = testutil::idsOf(exact.skyline);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, testutil::idsOf(testutil::groundTruth(sites, config.q)));
    EXPECT_EQ(ids, (std::vector<TupleId>{0, 1, 2}));
  }

  // Paper-faithful dominance pruning drops s.
  {
    InProcCluster cluster(Topology::fromPartitions(sites));
    config.prune = PruneRule::kDominance;
    const QueryResult lossy = cluster.engine().runEdsud(config);
    auto ids = testutil::idsOf(lossy.skyline);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<TupleId>{0, 1}));
  }
}

TEST(EdsudTest, DominancePruneStillCorrectOnCertainData) {
  // With P ≡ 1 dominance pruning is exact (the classical distributed
  // skyline case): both rules agree.
  Dataset global(2);
  Rng rng(53);
  for (int i = 0; i < 500; ++i) {
    const std::array<double, 2> v = {rng.uniform(), rng.uniform()};
    global.add(v, 1.0);
  }
  InProcCluster cluster(Topology::uniform(global, 5, 54));
  QueryConfig config;
  config.prune = PruneRule::kDominance;
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline),
            testutil::idsOf(linearSkyline(global, {.q = config.q})));
}

TEST(EdsudTest, ProgressiveEmissionProperties) {
  // Progressiveness (paper Sec. 7.5): answers stream out long before the
  // query ends, and the cumulative-bandwidth curve is monotone.
  const Dataset global = generateSynthetic(
      SyntheticSpec{3000, 3, ValueDistribution::kAnticorrelated, 55});
  InProcCluster cluster(Topology::uniform(global, 10, 56));
  const QueryResult dsud = cluster.engine().runDsud(QueryConfig{});
  const QueryResult edsud = cluster.engine().runEdsud(QueryConfig{});
  ASSERT_EQ(dsud.skyline.size(), edsud.skyline.size());
  ASSERT_GT(edsud.progress.size(), 3u);
  for (std::size_t i = 1; i < edsud.progress.size(); ++i) {
    EXPECT_GE(edsud.progress[i].tuplesShipped,
              edsud.progress[i - 1].tuplesShipped);
  }
  // The first answer costs a small fraction of the whole query.  (The
  // *aggregate* bandwidth win over DSUD is asserted across seeds in
  // BeatsDsudBandwidthOnTypicalWorkloads; on an individual seed either
  // algorithm can come out ahead by a percent or two.)
  EXPECT_LT(edsud.progress.front().tuplesShipped,
            edsud.stats.tuplesShipped / 4);
}

TEST(EdsudTest, SingleSiteDegeneratesToLocalSkyline) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 57});
  InProcCluster cluster(Topology::uniform(global, 1, 58));
  QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline),
            testutil::idsOf(linearSkyline(global, {.q = 0.3})));
  // One site: no broadcasts possible (m - 1 = 0 targets), only pulls.
  EXPECT_EQ(result.stats.tuplesShipped, result.stats.candidatesPulled);
}

TEST(EdsudTest, EmptySitesProduceEmptySkyline) {
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(2);
  InProcCluster cluster(Topology::fromPartitions(sites));
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  EXPECT_TRUE(result.skyline.empty());
  EXPECT_EQ(result.stats.tuplesShipped, 0u);
}

TEST(EdsudTest, ThresholdOneKeepsOnlyCertainUndominated) {
  Dataset global(2);
  const std::array<double, 2> a = {0.1, 0.1};
  const std::array<double, 2> b = {0.9, 0.9};
  global.add(a, 1.0);
  global.add(b, 1.0);  // dominated -> P_gsky = 0
  InProcCluster cluster(Topology::uniform(global, 2, 60));
  QueryConfig config;
  config.q = 1.0;
  const QueryResult result = cluster.engine().runEdsud(config);
  ASSERT_EQ(result.skyline.size(), 1u);
  EXPECT_EQ(result.skyline[0].tuple.id, 0u);
  EXPECT_DOUBLE_EQ(result.skyline[0].globalSkyProb, 1.0);
}

}  // namespace
}  // namespace dsud
