#include "skyline/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "gen/nyse.hpp"
#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

/// Window contents as a Dataset (ground truth helper).
Dataset windowDataset(const std::vector<Tuple>& live, std::size_t dims) {
  Dataset data(dims);
  for (const Tuple& t : live) data.add(t.id, t.values, t.prob);
  return data;
}

TEST(StreamTest, ValidatesConstruction) {
  EXPECT_THROW(SlidingWindowSkyline(2, 0, 0.3), std::invalid_argument);
  EXPECT_THROW(SlidingWindowSkyline(2, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(SlidingWindowSkyline(2, 10, 1.5), std::invalid_argument);
}

TEST(StreamTest, WarmupPhaseKeepsEverything) {
  SlidingWindowSkyline stream(2, 3, 0.3);
  EXPECT_EQ(stream.append(Tuple{0, {1.0, 1.0}, 0.9}),
            SlidingWindowSkyline::kNoExpiry);
  EXPECT_EQ(stream.append(Tuple{1, {2.0, 2.0}, 0.9}),
            SlidingWindowSkyline::kNoExpiry);
  EXPECT_EQ(stream.append(Tuple{2, {3.0, 3.0}, 0.9}),
            SlidingWindowSkyline::kNoExpiry);
  EXPECT_EQ(stream.size(), 3u);
  // Fourth append expires the oldest.
  EXPECT_EQ(stream.append(Tuple{3, {4.0, 4.0}, 0.9}), 0u);
  EXPECT_EQ(stream.size(), 3u);
}

TEST(StreamTest, ExpiryRaisesSurvivorsProbabilities) {
  SlidingWindowSkyline stream(2, 2, 0.3);
  stream.append(Tuple{0, {1.0, 1.0}, 0.6});
  stream.append(Tuple{1, {2.0, 2.0}, 0.9});
  // Dominated by the live element 0.
  EXPECT_NEAR(stream.skylineProbability(1), 0.9 * 0.4, 1e-12);
  // Slide: element 0 expires; element 1 is free.
  stream.append(Tuple{2, {3.0, 3.0}, 0.5});
  EXPECT_NEAR(stream.skylineProbability(1), 0.9, 1e-12);
  EXPECT_EQ(stream.skylineProbability(0), 0.0);  // expired
}

TEST(StreamTest, SkylineMatchesLinearScanThroughoutStream) {
  Rng rng(501);
  const std::size_t window = 50;
  SlidingWindowSkyline stream(2, window, 0.3);
  std::vector<Tuple> live;

  for (TupleId id = 0; id < 300; ++id) {
    Tuple t{id, {rng.uniform(), rng.uniform()}, rng.existentialUniform()};
    live.push_back(t);
    if (live.size() > window) live.erase(live.begin());
    stream.append(t);

    if (id % 23 != 0) continue;  // spot-check periodically
    const Dataset ground = windowDataset(live, 2);
    const auto expected = linearSkyline(ground, {.q = 0.3});
    const auto got = stream.skyline();
    ASSERT_EQ(testutil::idsOf(got), testutil::idsOf(expected))
        << "at element " << id;
  }
}

TEST(StreamTest, NonCandidatesNeverBecomeAnswers) {
  // The Zhang-et-al. property: once an element fails the candidate test, it
  // never enters the skyline for the rest of its lifetime.
  Rng rng(502);
  const std::size_t window = 40;
  SlidingWindowSkyline stream(2, window, 0.3);
  std::set<TupleId> condemned;  // failed the test at some point, still live
  std::deque<TupleId> liveIds;

  for (TupleId id = 0; id < 400; ++id) {
    const TupleId expired = stream.append(
        Tuple{id, {rng.uniform(), rng.uniform()}, rng.existentialUniform()});
    liveIds.push_back(id);
    if (expired != SlidingWindowSkyline::kNoExpiry) {
      condemned.erase(expired);
      liveIds.pop_front();
    }
    for (const TupleId lid : liveIds) {
      if (!stream.isCandidate(lid)) condemned.insert(lid);
    }
    for (const auto& answer : stream.skyline()) {
      EXPECT_FALSE(condemned.contains(answer.id))
          << "non-candidate " << answer.id << " resurfaced at element " << id;
    }
  }
}

TEST(StreamTest, CandidateCountBoundsAnswerCount) {
  Rng rng(503);
  SlidingWindowSkyline stream(3, 60, 0.3);
  for (TupleId id = 0; id < 200; ++id) {
    stream.append(Tuple{
        id, {rng.uniform(), rng.uniform(), rng.uniform()},
        rng.existentialUniform()});
    EXPECT_GE(stream.candidateCount(), stream.skyline().size());
    EXPECT_LE(stream.candidateCount(), stream.size());
  }
}

TEST(StreamTest, CandidateSetShrinksOnCorrelatedBursts) {
  // A burst of strong, high-probability elements near the origin condemns
  // most of the window.
  Rng rng(504);
  SlidingWindowSkyline stream(2, 50, 0.3);
  for (TupleId id = 0; id < 50; ++id) {
    stream.append(Tuple{id, {0.5 + 0.4 * rng.uniform(),
                             0.5 + 0.4 * rng.uniform()},
                        0.9});
  }
  const std::size_t before = stream.candidateCount();
  for (TupleId id = 50; id < 55; ++id) {
    stream.append(Tuple{id, {0.01 * double(id - 49), 0.05}, 0.99});
  }
  EXPECT_LT(stream.candidateCount(), before);
  EXPECT_LE(stream.candidateCount(), 10u);
}

TEST(StreamTest, DimensionMismatchRejected) {
  SlidingWindowSkyline stream(2, 4, 0.3);
  EXPECT_THROW(stream.append(Tuple{1, {0.5, 0.5, 0.5}, 0.5}),
               std::invalid_argument);
  EXPECT_EQ(stream.size(), 0u);
}

TEST(StreamTest, WindowOfOneAlwaysAnswersItsElement) {
  SlidingWindowSkyline stream(2, 1, 0.3);
  for (TupleId id = 0; id < 10; ++id) {
    stream.append(Tuple{id, {double(id), double(id)}, 0.8});
    const auto sky = stream.skyline();
    ASSERT_EQ(sky.size(), 1u);
    EXPECT_EQ(sky[0].id, id);
    EXPECT_NEAR(sky[0].skyProb, 0.8, 1e-12);
  }
}

TEST(StreamTest, NyseStreamEndToEnd) {
  // The related work's own evaluation setting: a stock stream.
  const Dataset trace = generateNyse(NyseSpec{2000, 505});
  SlidingWindowSkyline stream(2, 256, 0.3);
  std::vector<Tuple> live;
  for (std::size_t row = 0; row < trace.size(); ++row) {
    const Tuple t = trace.tuple(row);
    live.push_back(t);
    if (live.size() > 256) live.erase(live.begin());
    stream.append(t);
  }
  const auto got = stream.skyline();
  const auto expected = linearSkyline(windowDataset(live, 2), {.q = 0.3});
  EXPECT_EQ(testutil::idsOf(got), testutil::idsOf(expected));
}

}  // namespace
}  // namespace dsud
