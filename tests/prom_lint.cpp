// prom_lint — standalone Prometheus text-exposition validator.
//
//   prom_lint [file]        # reads stdin when no file is given
//
// Applies the same conformance rules as the test suite (tests/prom_util.hpp):
// typed families, one TYPE line each, well-formed sample lines, cumulative
// histogram buckets ending in le="+Inf" that agree with _count/_sum.  The CI
// server-smoke job pipes `curl /metrics` output through this to catch
// exposition regressions a mere curl | grep would miss.
//
// Exit 0: conformant (prints a one-line summary).
// Exit 1: violations found (one per line on stderr).
// Exit 2: usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "prom_util.hpp"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: prom_lint [file]\n");
    return 2;
  }
  std::string text;
  if (argc == 2) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "prom_lint: cannot read %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  dsud::promtest::PromExposition exposition;
  const auto errors = dsud::promtest::lintExposition(text, &exposition);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "prom_lint: %s\n", error.c_str());
  }
  if (!errors.empty()) {
    std::fprintf(stderr, "prom_lint: %zu violation(s)\n", errors.size());
    return 1;
  }
  std::printf("prom_lint: ok — %zu samples across %zu families\n",
              exposition.samples.size(), exposition.types.size());
  return 0;
}
