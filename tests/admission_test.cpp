// AdmissionController semantics (src/server/admission.hpp): token-bucket
// quotas with an injected clock (no sleeps, exact refill arithmetic),
// priority-ordered queueing, the breaker and external-in-flight probes, and
// the metric invariants the daemon's dashboards depend on — in particular
// that the active gauge returns to zero after a shed burst drains.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "server/admission.hpp"

namespace dsud::server {
namespace {

using Outcome = AdmissionController::Outcome;

/// Clock the test advances by hand.
struct FakeClock {
  double now = 1000.0;
  AdmissionController::Clock fn() {
    return [this] { return now; };
  }
};

TEST(AdmissionTest, AdmitsImmediatelyUnderEveryLimit) {
  AdmissionConfig config;
  AdmissionController controller(config);
  bool started = false;
  AdmissionController::Shed shed;
  EXPECT_EQ(controller.submit("default", Priority::kNormal,
                              [&] { started = true; }, &shed),
            Outcome::kAdmit);
  EXPECT_TRUE(started);  // start runs before submit returns
  EXPECT_EQ(controller.active(), 1u);
  controller.release();
  EXPECT_EQ(controller.active(), 0u);
}

TEST(AdmissionTest, QuotaExhaustionShedsWithoutStarting) {
  FakeClock clock;
  AdmissionConfig config;
  config.defaultQuota.ratePerSec = 1.0;
  config.defaultQuota.burst = 2.0;
  AdmissionController controller(config, nullptr, clock.fn());

  int started = 0;
  const auto submit = [&] {
    AdmissionController::Shed shed;
    const Outcome outcome = controller.submit(
        "default", Priority::kNormal, [&] { ++started; }, &shed);
    if (outcome == Outcome::kShed) {
      EXPECT_EQ(shed.code, ErrorCode::kOverloaded);
      EXPECT_EQ(shed.reason, "tenant_quota");
      EXPECT_GT(shed.retryAfterMs, 0u);
    }
    return outcome;
  };

  // The burst allows two, then the bucket is dry.
  EXPECT_EQ(submit(), Outcome::kAdmit);
  EXPECT_EQ(submit(), Outcome::kAdmit);
  EXPECT_EQ(submit(), Outcome::kShed);
  EXPECT_EQ(started, 2);  // the shed request never ran
  EXPECT_EQ(controller.shedTotal(), 1u);
  // Quota sheds cost no capacity and owe no release().
  EXPECT_EQ(controller.active(), 2u);

  // Half a second refills half a token — still dry.
  clock.now += 0.5;
  EXPECT_EQ(submit(), Outcome::kShed);
  // A full second's worth in total refills one token.
  clock.now += 0.5;
  EXPECT_EQ(submit(), Outcome::kAdmit);
  EXPECT_EQ(started, 3);
}

TEST(AdmissionTest, PerTenantBucketsAreIndependent) {
  FakeClock clock;
  AdmissionConfig config;
  config.defaultQuota.ratePerSec = 1.0;
  config.defaultQuota.burst = 1.0;
  config.tenants["vip"] = TenantQuota{0.0, 32.0};  // 0 rate = unlimited
  AdmissionController controller(config, nullptr, clock.fn());

  AdmissionController::Shed shed;
  EXPECT_EQ(controller.submit("a", Priority::kNormal, [] {}, &shed),
            Outcome::kAdmit);
  EXPECT_EQ(controller.submit("a", Priority::kNormal, [] {}, &shed),
            Outcome::kShed);
  // Tenant b has its own bucket, vip has no quota at all.
  EXPECT_EQ(controller.submit("b", Priority::kNormal, [] {}, &shed),
            Outcome::kAdmit);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(controller.submit("vip", Priority::kNormal, [] {}, &shed),
              Outcome::kAdmit);
  }
}

TEST(AdmissionTest, CapacityQueuesThenSheds) {
  AdmissionConfig config;
  config.maxInFlight = 2;
  config.maxQueued = 2;
  config.retryAfterMs = 150;
  AdmissionController controller(config);

  int started = 0;
  AdmissionController::Shed shed;
  const auto start = [&] { ++started; };
  EXPECT_EQ(controller.submit("t", Priority::kNormal, start, &shed),
            Outcome::kAdmit);
  EXPECT_EQ(controller.submit("t", Priority::kNormal, start, &shed),
            Outcome::kAdmit);
  EXPECT_EQ(started, 2);
  // Beyond the cap: queued, not started.
  EXPECT_EQ(controller.submit("t", Priority::kNormal, start, &shed),
            Outcome::kQueue);
  EXPECT_EQ(controller.submit("t", Priority::kNormal, start, &shed),
            Outcome::kQueue);
  EXPECT_EQ(started, 2);
  EXPECT_EQ(controller.queued(), 2u);
  // Beyond the queue: shed with the configured hint.
  EXPECT_EQ(controller.submit("t", Priority::kNormal, start, &shed),
            Outcome::kShed);
  EXPECT_EQ(shed.code, ErrorCode::kOverloaded);
  EXPECT_EQ(shed.reason, "capacity");
  EXPECT_EQ(shed.retryAfterMs, 150u);

  // Each release hands its slot to one queued start.
  controller.release();
  EXPECT_EQ(started, 3);
  EXPECT_EQ(controller.queued(), 1u);
  EXPECT_EQ(controller.active(), 2u);
  controller.release();
  EXPECT_EQ(started, 4);
  controller.release();
  controller.release();
  EXPECT_EQ(controller.active(), 0u);
}

TEST(AdmissionTest, PrioritiesDrainInOrderFifoWithinClass) {
  AdmissionConfig config;
  config.maxInFlight = 1;
  config.maxQueued = 8;
  AdmissionController controller(config);

  std::vector<std::string> order;
  AdmissionController::Shed shed;
  EXPECT_EQ(controller.submit("t", Priority::kNormal,
                              [&] { order.push_back("first"); }, &shed),
            Outcome::kAdmit);
  // Queue in deliberately shuffled priority order.
  const auto queue = [&](const char* name, Priority p) {
    EXPECT_EQ(controller.submit(
                  "t", p, [&order, name] { order.push_back(name); }, &shed),
              Outcome::kQueue);
  };
  queue("low-1", Priority::kLow);
  queue("normal-1", Priority::kNormal);
  queue("high-1", Priority::kHigh);
  queue("normal-2", Priority::kNormal);
  queue("high-2", Priority::kHigh);

  for (std::size_t i = 0; i < 5; ++i) controller.release();
  controller.release();  // the last running query

  const std::vector<std::string> expected = {"first",    "high-1",   "high-2",
                                             "normal-1", "normal-2", "low-1"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(controller.active(), 0u);
  EXPECT_EQ(controller.queued(), 0u);
}

TEST(AdmissionTest, BreakerProbeShedsAsUnavailable) {
  AdmissionConfig config;
  config.breakerShedFraction = 0.5;
  AdmissionController controller(config);
  double openFraction = 0.0;
  controller.setBreakerProbe([&] { return openFraction; });

  AdmissionController::Shed shed;
  EXPECT_EQ(controller.submit("t", Priority::kNormal, [] {}, &shed),
            Outcome::kAdmit);
  openFraction = 0.75;
  EXPECT_EQ(controller.submit("t", Priority::kNormal, [] {}, &shed),
            Outcome::kShed);
  EXPECT_EQ(shed.code, ErrorCode::kUnavailable);
  EXPECT_EQ(shed.reason, "cluster_degraded");
  // Recovered breakers admit again.
  openFraction = 0.0;
  EXPECT_EQ(controller.submit("t", Priority::kNormal, [] {}, &shed),
            Outcome::kAdmit);
}

TEST(AdmissionTest, InflightProbeCountsExternalQueries) {
  AdmissionConfig config;
  config.maxInFlight = 4;
  config.maxQueued = 0;  // shed instead of queueing, for a crisp assertion
  AdmissionController controller(config);
  controller.setInflightProbe([] { return 4.0; });  // direct engine users

  AdmissionController::Shed shed;
  EXPECT_EQ(controller.submit("t", Priority::kNormal, [] {}, &shed),
            Outcome::kShed);
  EXPECT_EQ(shed.reason, "capacity");
}

TEST(AdmissionTest, MetricsTrackShedBurstAndReturnToZero) {
  obs::MetricsRegistry metrics;
  AdmissionConfig config;
  config.maxInFlight = 2;
  config.maxQueued = 1;
  AdmissionController controller(config, &metrics);

  AdmissionController::Shed shed;
  for (int i = 0; i < 8; ++i) {
    controller.submit("t", Priority::kNormal, [] {}, &shed);
  }
  // 2 admitted, 1 queued, 5 shed.
  EXPECT_EQ(controller.active(), 2u);
  EXPECT_EQ(controller.queued(), 1u);
  EXPECT_EQ(controller.shedTotal(), 5u);
  EXPECT_EQ(metrics.counter(obs::labeled("dsud_server_shed_total",
                                         {{"reason", "capacity"}}))
                .value(),
            5u);
  EXPECT_EQ(metrics.gauge("dsud_server_active").value(), 2.0);
  EXPECT_EQ(metrics.gauge("dsud_server_queue_depth").value(), 1.0);

  // Draining the burst returns both gauges to zero exactly.
  controller.release();  // slot goes to the queued request
  EXPECT_EQ(metrics.gauge("dsud_server_queue_depth").value(), 0.0);
  controller.release();
  controller.release();
  EXPECT_EQ(controller.active(), 0u);
  EXPECT_EQ(metrics.gauge("dsud_server_active").value(), 0.0);
  EXPECT_EQ(controller.admittedTotal(), 3u);
  EXPECT_EQ(metrics.counter("dsud_server_admitted_total").value(), 3u);
  EXPECT_EQ(metrics.counter("dsud_server_queued_total").value(), 1u);
}

TEST(AdmissionTest, ZeroMaxInFlightDisablesTheCap) {
  AdmissionConfig config;
  config.maxInFlight = 0;
  AdmissionController controller(config);
  AdmissionController::Shed shed;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(controller.submit("t", Priority::kNormal, [] {}, &shed),
              Outcome::kAdmit);
  }
}

}  // namespace
}  // namespace dsud::server
