// Fault tolerance under a chaos-injected transport: retries with backoff
// absorb transient faults bit-identically, a killed site degrades the query
// to the survivors' skyline, and the supporting machinery (RetryPolicy,
// SiteHealth, the site-side replay caches, per-call deadlines) behaves as
// specified.  The chaos seed can be swept from the environment
// (DSUD_CHAOS_SEED) — CI runs a small seed matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/health.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/chaos.hpp"
#include "net/fault.hpp"
#include "net/inproc_transport.hpp"
#include "obs/trace.hpp"

namespace dsud {
namespace {

std::uint64_t chaosSeed() {
  if (const char* env = std::getenv("DSUD_CHAOS_SEED"); env != nullptr) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5eed;
}

Dataset testGlobal() {
  return generateSynthetic(
      SyntheticSpec{400, 2, ValueDistribution::kIndependent, 4242});
}

const std::uint64_t* counterOrNull(const obs::MetricsSnapshot& snapshot,
                                   const std::string& name) {
  return snapshot.counter(name);
}

std::uint64_t counterSum(const obs::MetricsSnapshot& snapshot,
                         const std::string& base) {
  std::uint64_t sum = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(base + "{", 0) == 0 || name == base) sum += value;
  }
  return sum;
}

/// Gauge hygiene: however a query ends — clean, degraded, or aborted by a
/// SiteFailure — every in-flight gauge must be back at zero.
void expectInflightZero(const obs::MetricsSnapshot& snapshot) {
  bool sawGauge = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("dsud_queries_inflight", 0) == 0) {
      sawGauge = true;
      EXPECT_EQ(value, 0.0) << name;
    }
  }
  EXPECT_TRUE(sawGauge);
}

// --- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsGeometricallyWithDecileJitter) {
  RetryPolicy policy;  // 10ms initial, x2, 1s cap
  Rng rng(7);
  using std::chrono::milliseconds;
  for (std::uint32_t retry = 1; retry <= 6; ++retry) {
    const auto base = std::min<std::int64_t>(10 * (1LL << (retry - 1)), 1000);
    for (int i = 0; i < 32; ++i) {
      const milliseconds d = policy.backoff(retry, rng);
      EXPECT_GE(d.count(), base) << "retry " << retry;
      EXPECT_LT(d.count(), base + base) << "retry " << retry;
    }
  }
}

TEST(RetryPolicyTest, ZeroInitialBackoffNeverSleeps) {
  RetryPolicy policy;
  policy.initialBackoff = std::chrono::milliseconds{0};
  Rng rng(7);
  for (std::uint32_t retry = 1; retry <= 8; ++retry) {
    EXPECT_EQ(policy.backoff(retry, rng).count(), 0);
  }
}

// --- SiteHealth ------------------------------------------------------------

TEST(SiteHealthTest, BreakerOpensAfterThresholdAndProbesDeterministically) {
  SiteHealth health(1, CircuitBreakerConfig{.failureThreshold = 3,
                                            .probeAfter = 2});
  EXPECT_EQ(health.state(), SiteHealth::State::kClosed);

  health.recordFailure();
  health.recordFailure();
  EXPECT_TRUE(health.admit());  // still closed below the threshold
  health.recordFailure();
  EXPECT_EQ(health.state(), SiteHealth::State::kOpen);
  EXPECT_EQ(health.trips(), 1u);

  // Open: rejects until `probeAfter` rejections let one probe through.
  EXPECT_FALSE(health.admit());
  EXPECT_TRUE(health.admit());  // 2nd rejection converts to the probe
  EXPECT_EQ(health.state(), SiteHealth::State::kHalfOpen);

  // A failed probe reopens immediately (no threshold accumulation).
  health.recordFailure();
  EXPECT_EQ(health.state(), SiteHealth::State::kOpen);
  EXPECT_EQ(health.trips(), 2u);

  // A successful probe closes and resets the failure count.
  EXPECT_FALSE(health.admit());
  EXPECT_TRUE(health.admit());
  health.recordSuccess();
  EXPECT_EQ(health.state(), SiteHealth::State::kClosed);
  EXPECT_EQ(health.consecutiveFailures(), 0u);
}

TEST(SiteHealthTest, SuccessResetsConsecutiveFailures) {
  SiteHealth health(3);
  health.recordFailure();
  health.recordFailure();
  health.recordSuccess();
  health.recordFailure();
  health.recordFailure();
  EXPECT_EQ(health.state(), SiteHealth::State::kClosed)
      << "interleaved successes must keep the breaker closed";
  EXPECT_EQ(health.trips(), 0u);
}

// --- LocalSite replay caches -----------------------------------------------

TEST(ReplayCacheTest, RepeatedNextCandidateSeqDoesNotAdvanceCursor) {
  Dataset db(2);
  db.add(Tuple(1, {1.0, 9.0}, 0.9));
  db.add(Tuple(2, {9.0, 1.0}, 0.8));
  LocalSite site(0, db);
  site.prepare(PrepareRequest{.query = 7, .q = 0.1});

  const auto first = site.nextCandidate(NextCandidateRequest{7, 1});
  ASSERT_TRUE(first.candidate.has_value());

  // Duplicate delivery of seq 1: same answer, cursor NOT advanced.
  const auto replay = site.nextCandidate(NextCandidateRequest{7, 1});
  ASSERT_TRUE(replay.candidate.has_value());
  EXPECT_EQ(replay.candidate->tuple.id, first.candidate->tuple.id);
  EXPECT_EQ(site.pendingCount(7), 1u);

  const auto second = site.nextCandidate(NextCandidateRequest{7, 2});
  ASSERT_TRUE(second.candidate.has_value());
  EXPECT_NE(second.candidate->tuple.id, first.candidate->tuple.id);

  // Exhaustion is cached too.
  const auto empty = site.nextCandidate(NextCandidateRequest{7, 3});
  EXPECT_FALSE(empty.candidate.has_value());
  EXPECT_FALSE(site.nextCandidate(NextCandidateRequest{7, 3})
                   .candidate.has_value());
}

TEST(ReplayCacheTest, RepeatedEvaluateSeqDoesNotFoldSurvivalTwice) {
  Dataset db(2);
  db.add(Tuple(1, {5.0, 5.0}, 0.9));
  LocalSite site(0, db);
  site.prepare(PrepareRequest{.query = 9, .q = 0.3,
                              .prune = PruneRule::kThresholdBound});
  ASSERT_EQ(site.pendingCount(9), 1u);

  // External dominator with P = 0.6: one fold leaves the pending entry's
  // bound at 0.9 * 0.4 = 0.36 >= q; a second fold would prune it
  // (0.9 * 0.16 < q).
  EvaluateRequest request;
  request.query = 9;
  request.tuple = Tuple(100, {1.0, 1.0}, 0.6);
  request.pruneLocal = true;
  request.seq = 1;

  const auto first = site.evaluate(request);
  EXPECT_EQ(first.prunedCount, 0u);
  ASSERT_EQ(site.pendingCount(9), 1u);

  const auto replay = site.evaluate(request);  // duplicate delivery
  EXPECT_EQ(replay.survival, first.survival);
  EXPECT_EQ(replay.prunedCount, first.prunedCount);
  EXPECT_EQ(site.pendingCount(9), 1u)
      << "a replayed evaluate must not fold extSurvival again";

  request.seq = 2;  // a genuinely new delivery folds (and now prunes)
  const auto second = site.evaluate(request);
  EXPECT_EQ(second.prunedCount, 1u);
  EXPECT_EQ(site.pendingCount(9), 0u);
}

// --- Deadlines -------------------------------------------------------------

TEST(DeadlineTest, InProcCallOverrunningDeadlineThrowsNetTimeout) {
  InProcChannel channel([](const Frame& f) {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    return f;
  });
  const Frame ping(4, std::byte{1});
  EXPECT_EQ(channel.call(ping), ping);  // no deadline: slow is fine

  channel.setDeadline(std::chrono::milliseconds{5});
  EXPECT_THROW(channel.call(ping), NetTimeout);

  channel.setDeadline(std::chrono::milliseconds{0});
  EXPECT_EQ(channel.call(ping), ping);
}

// --- ChaosSpec validation ---------------------------------------------------

TEST(ChaosTest, RatesSummingPastOneAreRejected) {
  ChaosSpec spec;
  spec.dropRate = 0.7;
  spec.errorRate = 0.5;
  EXPECT_THROW(ChaosState(spec, 0), std::invalid_argument);
}

TEST(ChaosTest, OnlySiteMismatchIsInertAndConsumesNoRandomness) {
  ChaosSpec spec;
  spec.dropRate = 1.0;
  spec.onlySite = 3;
  ChaosState other(spec, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(other.next(1), ChaosState::Fault::kNone);
  }
  EXPECT_EQ(other.faultsInjected(), 0u);

  ChaosState victim(spec, 3);
  EXPECT_EQ(victim.next(1), ChaosState::Fault::kDrop);
}

// --- Transient faults below the retry budget --------------------------------

TEST(ChaosTest, TransientFaultsBelowRetryBudgetAreBitIdentical) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 5, rng);

  InProcCluster clean(Topology::fromPartitions(siteData));

  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.dropRate = 0.1, .errorRate = 0.1,
                            .seed = chaosSeed()};
  InProcCluster noisy(Topology::fromPartitions(siteData), chaotic);

  QueryOptions fault;
  fault.fault.retry.maxAttempts = 8;
  fault.fault.retry.initialBackoff = std::chrono::milliseconds{0};

  for (const Algo algo : {Algo::kDsud, Algo::kEdsud, Algo::kNaive}) {
    const QueryResult reference = clean.engine().run(algo, QueryConfig{});
    const QueryResult faulty = noisy.engine().run(algo, QueryConfig{}, fault);

    EXPECT_FALSE(faulty.degraded);
    EXPECT_TRUE(faulty.excludedSites.empty());
    ASSERT_EQ(faulty.skyline, reference.skyline)
        << "algo " << static_cast<int>(algo);
    // Retries replay whole operations, so the logical work counters are
    // attempt-invariant (wall time excepted).
    EXPECT_EQ(faulty.stats.tuplesShipped, reference.stats.tuplesShipped);
    EXPECT_EQ(faulty.stats.bytesShipped, reference.stats.bytesShipped);
    EXPECT_EQ(faulty.stats.roundTrips, reference.stats.roundTrips);
    EXPECT_EQ(faulty.stats.candidatesPulled, reference.stats.candidatesPulled);
    EXPECT_EQ(faulty.stats.broadcasts, reference.stats.broadcasts);
  }

  const obs::MetricsSnapshot snapshot = noisy.metricsRegistry().snapshot();
  EXPECT_GT(counterSum(snapshot, "dsud_retries_total"), 0u)
      << "a 20% fault rate over hundreds of calls must retry at least once";
  EXPECT_EQ(counterSum(snapshot, "dsud_breaker_trips_total"), 0u)
      << "transient faults below the retry budget must never trip a breaker";
  EXPECT_GT(counterSum(snapshot, "dsud_chaos_faults_total"), 0u);
  expectInflightZero(snapshot);
}

TEST(ChaosTest, RetriedRpcSpansDifferFromCleanOnlyByRetryAttrs) {
  // Tracing under transient faults: the protocol timeline is the same span
  // tree as the clean run — retries replay whole operations — and the ONLY
  // difference is the `attempts` / `breaker_state` annotations on the RPC
  // spans that had to retry.  The clean trace carries neither attribute.
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 5, rng);

  InProcCluster clean(Topology::fromPartitions(siteData));
  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.dropRate = 0.1, .errorRate = 0.1,
                            .seed = chaosSeed()};
  InProcCluster noisy(Topology::fromPartitions(siteData), chaotic);

  QueryOptions options;  // default traceCapacity: tracing on, site tracing off
  options.fault.retry.maxAttempts = 8;
  options.fault.retry.initialBackoff = std::chrono::milliseconds{0};

  const auto isRetryAttr = [](const std::pair<std::string, double>& a) {
    return a.first == "attempts" || a.first == "breaker_state";
  };

  for (const Algo algo : {Algo::kDsud, Algo::kEdsud}) {
    const QueryResult reference = clean.engine().run(algo, QueryConfig{},
                                                     options);
    const QueryResult faulty = noisy.engine().run(algo, QueryConfig{},
                                                  options);
    ASSERT_FALSE(faulty.degraded);
    ASSERT_EQ(faulty.skyline, reference.skyline);

    const auto& cleanEvents = reference.trace.events;
    const auto& faultyEvents = faulty.trace.events;
    ASSERT_EQ(faultyEvents.size(), cleanEvents.size())
        << "algo " << static_cast<int>(algo);

    std::size_t retried = 0;
    for (std::size_t i = 0; i < cleanEvents.size(); ++i) {
      const obs::TraceEvent& c = cleanEvents[i];
      const obs::TraceEvent& f = faultyEvents[i];
      EXPECT_EQ(f.name, c.name) << "span " << i;
      EXPECT_EQ(f.parent, c.parent) << "span " << i << " (" << c.name << ")";

      EXPECT_TRUE(std::none_of(c.attrs.begin(), c.attrs.end(), isRetryAttr))
          << "clean span " << i << " (" << c.name
          << ") must not carry retry attrs";

      auto stripped = f.attrs;
      const auto tail =
          std::remove_if(stripped.begin(), stripped.end(), isRetryAttr);
      if (tail != stripped.end()) {
        ++retried;
        stripped.erase(tail, stripped.end());
      }
      EXPECT_EQ(stripped, c.attrs) << "span " << i << " (" << c.name << ")";
    }
    EXPECT_GT(retried, 0u)
        << "a 20% fault rate must force at least one annotated retry";
  }
}

// --- Degraded mode: a killed site -------------------------------------------

TEST(ChaosTest, KilledSiteDegradesBitIdenticallyToSurvivorCluster) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const std::size_t m = 5;
  const SiteId victim = 2;
  const auto siteData = partitionUniform(global, m, rng);

  // Reference: the same partition without the victim (site ids shift, so
  // answers are compared by tuple id and probability, not origin).
  std::vector<Dataset> survivorData;
  for (std::size_t i = 0; i < siteData.size(); ++i) {
    if (i != victim) survivorData.push_back(siteData[i]);
  }
  InProcCluster reference(Topology::fromPartitions(survivorData));

  // The victim's kPrepare succeeds (killAfter = 1), then its first
  // kNextCandidate fails for good — before it contributed any candidate.
  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.killAfter = 1, .onlySite = victim,
                            .seed = chaosSeed()};

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;

  for (const Algo algo : {Algo::kDsud, Algo::kEdsud}) {
    InProcCluster cluster(Topology::fromPartitions(siteData), chaotic);
    const QueryResult ref = reference.engine().run(algo, QueryConfig{});
    const QueryResult degraded =
        cluster.engine().run(algo, QueryConfig{}, degrade);

    EXPECT_TRUE(degraded.degraded);
    ASSERT_EQ(degraded.excludedSites, std::vector<SiteId>{victim});
    ASSERT_EQ(degraded.skyline.size(), ref.skyline.size())
        << "algo " << static_cast<int>(algo);
    for (std::size_t i = 0; i < ref.skyline.size(); ++i) {
      EXPECT_EQ(degraded.skyline[i].tuple.id, ref.skyline[i].tuple.id);
      EXPECT_EQ(degraded.skyline[i].localSkyProb, ref.skyline[i].localSkyProb);
      EXPECT_EQ(degraded.skyline[i].globalSkyProb,
                ref.skyline[i].globalSkyProb)
          << "degraded answers must be bit-identical to the survivor run";
    }
    EXPECT_TRUE(cluster.chaos(victim)->killed());

    const obs::MetricsSnapshot snapshot =
        cluster.metricsRegistry().snapshot();
    EXPECT_GT(counterSum(snapshot, "dsud_degraded_queries_total"), 0u);
    EXPECT_NE(counterOrNull(snapshot, obs::labeled("dsud_chaos_faults_total",
                                                   {{"site", "2"},
                                                    {"kind", "killed"}})),
              nullptr);
    expectInflightZero(snapshot);
  }
}

TEST(ChaosTest, KilledSiteUnderFailPolicyThrowsSiteFailure) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 5, rng);

  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.killAfter = 1, .onlySite = 2,
                            .seed = chaosSeed()};
  InProcCluster cluster(Topology::fromPartitions(siteData), chaotic);

  try {
    cluster.engine().runDsud(QueryConfig{});  // default: OnSiteFailure::kFail
    FAIL() << "a dead site under kFail must abort the query";
  } catch (const SiteFailure& failure) {
    EXPECT_EQ(failure.site(), 2u);
    EXPECT_GE(failure.attempts(), 1u);
  }
  expectInflightZero(cluster.metricsRegistry().snapshot());
}

TEST(ChaosTest, NaiveDegradesOverSurvivors) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 4, rng);

  std::vector<Dataset> survivorData;
  for (std::size_t i = 0; i < siteData.size(); ++i) {
    if (i != 1) survivorData.push_back(siteData[i]);
  }
  InProcCluster reference(Topology::fromPartitions(survivorData));

  // kShipAll frames carry no session id, so onlyQuery must stay 0 here;
  // killAfter = 0 faults from the very first matched call.
  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.dropRate = 1.0, .onlySite = 1,
                            .seed = chaosSeed()};
  InProcCluster cluster(Topology::fromPartitions(siteData), chaotic);

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;
  const QueryResult degraded = cluster.engine().runNaive(QueryConfig{},
                                                         degrade);
  const QueryResult ref = reference.engine().runNaive(QueryConfig{});

  EXPECT_TRUE(degraded.degraded);
  ASSERT_EQ(degraded.excludedSites, std::vector<SiteId>{1});
  ASSERT_EQ(degraded.skyline.size(), ref.skyline.size());
  for (std::size_t i = 0; i < ref.skyline.size(); ++i) {
    EXPECT_EQ(degraded.skyline[i].tuple.id, ref.skyline[i].tuple.id);
    EXPECT_EQ(degraded.skyline[i].globalSkyProb, ref.skyline[i].globalSkyProb);
  }
}

// --- k-replica failover -----------------------------------------------------

TEST(ChaosTest, KilledMemberFailsOverToReplicaBitIdentically) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 4, rng);

  // Reference: the same partitioning, healthy and unreplicated.  Replicas
  // hold bit-identical stores under the partition's own SiteId, so a
  // failed-over query must match it exactly — not degrade.
  InProcCluster reference(Topology::fromPartitions(siteData));

  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.killAfter = 1, .onlySite = 2,
                            .seed = chaosSeed()};
  InProcCluster cluster(Topology::fromPartitions(siteData, 2), chaotic);

  QueryOptions fast;  // keep the doomed retries of the dying store cheap
  fast.fault.retry.initialBackoff = std::chrono::milliseconds{0};

  for (const Algo algo : {Algo::kDsud, Algo::kEdsud, Algo::kNaive}) {
    const QueryResult ref = reference.engine().run(algo, QueryConfig{});
    const QueryResult survived =
        cluster.engine().run(algo, QueryConfig{}, fast);
    EXPECT_FALSE(survived.degraded)
        << "k=2 failover must lose zero results, algo "
        << static_cast<int>(algo);
    EXPECT_TRUE(survived.excludedSites.empty());
    ASSERT_EQ(survived.skyline, ref.skyline)
        << "algo " << static_cast<int>(algo);
  }
  EXPECT_TRUE(cluster.chaos(2)->killed());

  const obs::MetricsSnapshot snapshot = cluster.metricsRegistry().snapshot();
  EXPECT_GT(counterSum(snapshot, "dsud_failovers_total"), 0u);
  EXPECT_EQ(counterSum(snapshot, "dsud_degraded_queries_total"), 0u);
  expectInflightZero(snapshot);
}

TEST(ChaosTest, KilledMemberMidRepartitionRecoversFromReplicas) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 4, rng);

  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.killAfter = 1, .onlySite = 1,
                            .seed = chaosSeed()};
  InProcCluster cluster(Topology::fromPartitions(siteData, 2), chaotic);

  // Member 1's first call consumes its kill budget: the query below both
  // kills it and proves mid-query failover to the replica on member 2.
  QueryOptions fast;
  fast.fault.retry.initialBackoff = std::chrono::milliseconds{0};
  const QueryResult firstQuery =
      cluster.engine().runEdsud(QueryConfig{}, fast);
  EXPECT_FALSE(firstQuery.degraded);
  EXPECT_TRUE(cluster.chaos(1)->killed());

  // Repartition with the member dead: gather() falls back to partition 1's
  // replica, and streaming the new cuts onto member 1 fails, so the next
  // epoch serves its partitions from the surviving hosts only.
  cluster.rebalance();
  EXPECT_EQ(cluster.membershipEpoch(), 2u);

  // Zero result loss: the rebalanced cluster answers bit-identically to a
  // healthy from-scratch cluster over the same STR cuts.
  InProcCluster fresh(Topology::fromPartitions(partitionSTR(global, 4)));
  for (const Algo algo : {Algo::kDsud, Algo::kEdsud}) {
    const QueryResult ref = fresh.engine().run(algo, QueryConfig{});
    const QueryResult result =
        cluster.engine().run(algo, QueryConfig{}, fast);
    EXPECT_FALSE(result.degraded);
    EXPECT_TRUE(result.excludedSites.empty());
    ASSERT_EQ(result.skyline, ref.skyline)
        << "algo " << static_cast<int>(algo);
  }
}

// --- Breaker integration ----------------------------------------------------

TEST(ChaosTest, PersistentlyDeadSiteTripsBreakerAcrossQueries) {
  const Dataset global = testGlobal();
  Rng rng(99);
  const auto siteData = partitionUniform(global, 4, rng);

  ClusterConfig config;
  config.chaos = ChaosSpec{.killAfter = 1, .onlySite = 0,
                           .seed = chaosSeed()};
  config.breaker = CircuitBreakerConfig{.failureThreshold = 2,
                                        .probeAfter = 100};
  InProcCluster cluster(Topology::fromPartitions(siteData), config);

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;

  // Each degraded query records one operation failure against site 0; after
  // `failureThreshold` of them the breaker opens and later queries skip the
  // site without spending its retry budget (SiteFailure::attempts == 0
  // internally — surfaced here as an instant degrade).
  for (int i = 0; i < 4; ++i) {
    const QueryResult result = cluster.engine().runEdsud(QueryConfig{},
                                                         degrade);
    EXPECT_TRUE(result.degraded);
    ASSERT_EQ(result.excludedSites, std::vector<SiteId>{0});
  }
  EXPECT_EQ(cluster.coordinator().health(0).state(),
            SiteHealth::State::kOpen);
  EXPECT_GE(cluster.coordinator().health(0).trips(), 1u);

  const obs::MetricsSnapshot snapshot = cluster.metricsRegistry().snapshot();
  EXPECT_GE(counterSum(snapshot, "dsud_breaker_trips_total"), 1u);
}

}  // namespace
}  // namespace dsud
