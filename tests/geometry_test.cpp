#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "geometry/dominance.hpp"
#include "geometry/rect.hpp"

namespace dsud {
namespace {

// ---------------------------------------------------------------------------
// Dominance

TEST(DominanceTest, StrictlySmallerDominates) {
  const std::array<double, 2> a = {1.0, 1.0};
  const std::array<double, 2> b = {2.0, 2.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(DominanceTest, EqualOnOneDimensionStillDominates) {
  const std::array<double, 2> a = {1.0, 2.0};
  const std::array<double, 2> b = {1.0, 3.0};
  EXPECT_TRUE(dominates(a, b));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  const std::array<double, 3> a = {1.0, 2.0, 3.0};
  EXPECT_FALSE(dominates(a, a));
}

TEST(DominanceTest, IncomparablePoints) {
  const std::array<double, 2> a = {1.0, 4.0};
  const std::array<double, 2> b = {2.0, 3.0};
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(DominanceTest, DominanceIsIrreflexiveAndAsymmetricRandomised) {
  Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    std::array<double, 4> a{};
    std::array<double, 4> b{};
    for (auto& x : a) x = rng.uniform();
    for (auto& x : b) x = rng.uniform();
    EXPECT_FALSE(dominates(a, a));
    if (dominates(a, b)) {
      EXPECT_FALSE(dominates(b, a));
    }
  }
}

TEST(DominanceTest, TransitivityRandomised) {
  Rng rng(6);
  int chains = 0;
  for (int trial = 0; trial < 20000 && chains < 50; ++trial) {
    std::array<double, 3> a{};
    std::array<double, 3> b{};
    std::array<double, 3> c{};
    for (auto& x : a) x = rng.uniform();
    for (auto& x : b) x = rng.uniform();
    for (auto& x : c) x = rng.uniform();
    if (dominates(a, b) && dominates(b, c)) {
      ++chains;
      EXPECT_TRUE(dominates(a, c));
    }
  }
  EXPECT_GT(chains, 0);
}

TEST(DominanceTest, SubspaceMaskIgnoresUnselectedDims) {
  const std::array<double, 3> a = {1.0, 9.0, 1.0};
  const std::array<double, 3> b = {2.0, 0.0, 2.0};
  EXPECT_FALSE(dominates(a, b));                   // full space: incomparable
  EXPECT_TRUE(dominates(a, b, DimMask{0b101}));    // dims 0 and 2 only
  EXPECT_TRUE(dominates(b, a, DimMask{0b010}));    // dim 1 only
}

TEST(DominanceTest, SubspaceEqualValuesDoNotDominate) {
  const std::array<double, 2> a = {1.0, 5.0};
  const std::array<double, 2> b = {1.0, 7.0};
  EXPECT_FALSE(dominates(a, b, DimMask{0b01}));  // equal on dim 0
}

TEST(DominanceTest, NegativeCoordinatesWork) {
  const std::array<double, 2> a = {-5.0, -1.0};
  const std::array<double, 2> b = {-4.0, 0.0};
  EXPECT_TRUE(dominates(a, b));
}

TEST(DominanceTest, CompareCoversAllRelations) {
  const std::array<double, 2> a = {1.0, 1.0};
  const std::array<double, 2> b = {2.0, 2.0};
  const std::array<double, 2> c = {0.5, 3.0};
  EXPECT_EQ(compare(a, b), DomRelation::kDominates);
  EXPECT_EQ(compare(b, a), DomRelation::kDominatedBy);
  EXPECT_EQ(compare(a, a), DomRelation::kEqual);
  EXPECT_EQ(compare(a, c), DomRelation::kIncomparable);
}

TEST(DominanceTest, CompareAgreesWithDominates) {
  Rng rng(8);
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<double, 3> a{};
    std::array<double, 3> b{};
    for (auto& x : a) x = rng.below(4);  // small grid forces ties
    for (auto& x : b) x = rng.below(4);
    const DomRelation rel = compare(a, b);
    EXPECT_EQ(rel == DomRelation::kDominates, dominates(a, b));
    EXPECT_EQ(rel == DomRelation::kDominatedBy, dominates(b, a));
  }
}

TEST(DominanceTest, MaskHelpers) {
  EXPECT_EQ(fullMask(1), 0b1u);
  EXPECT_EQ(fullMask(3), 0b111u);
  EXPECT_EQ(maskSize(0b1011), 3u);
  EXPECT_EQ(maskSize(0), 0u);
}

// ---------------------------------------------------------------------------
// Rect

TEST(RectTest, EmptyRectProperties) {
  const Rect r(2);
  EXPECT_TRUE(r.isEmpty());
  EXPECT_EQ(r.area(), 0.0);
  EXPECT_EQ(r.margin(), 0.0);
  const std::array<double, 2> p = {0.0, 0.0};
  EXPECT_FALSE(r.containsPoint(p));
}

TEST(RectTest, PointRectIsDegenerate) {
  const std::array<double, 2> p = {3.0, 4.0};
  const Rect r = Rect::point(p);
  EXPECT_FALSE(r.isEmpty());
  EXPECT_TRUE(r.containsPoint(p));
  EXPECT_EQ(r.area(), 0.0);
  EXPECT_EQ(r.lo(0), 3.0);
  EXPECT_EQ(r.hi(1), 4.0);
}

TEST(RectTest, ExpandGrowsToCover) {
  Rect r(2);
  const std::array<double, 2> a = {0.0, 2.0};
  const std::array<double, 2> b = {3.0, 1.0};
  r.expand(a);
  r.expand(b);
  EXPECT_EQ(r.lo(0), 0.0);
  EXPECT_EQ(r.hi(0), 3.0);
  EXPECT_EQ(r.lo(1), 1.0);
  EXPECT_EQ(r.hi(1), 2.0);
  EXPECT_EQ(r.area(), 3.0);
  EXPECT_EQ(r.margin(), 4.0);
}

TEST(RectTest, ExpandWithEmptyRectIsNoOp) {
  const std::array<double, 2> a = {1.0, 1.0};
  Rect r = Rect::point(a);
  r.expand(Rect(2));
  EXPECT_EQ(r, Rect::point(a));
}

TEST(RectTest, ContainsRect) {
  Rect outer(2);
  const std::array<double, 2> lo = {0.0, 0.0};
  const std::array<double, 2> hi = {10.0, 10.0};
  outer.expand(lo);
  outer.expand(hi);
  const std::array<double, 2> a = {2.0, 2.0};
  const std::array<double, 2> b = {3.0, 11.0};
  EXPECT_TRUE(outer.containsRect(Rect::point(a)));
  EXPECT_FALSE(outer.containsRect(Rect::point(b)));
  EXPECT_TRUE(outer.containsRect(Rect(2)));  // empty is contained everywhere
}

TEST(RectTest, IntersectsIncludesTouching) {
  Rect a(2);
  const std::array<double, 2> a0 = {0.0, 0.0};
  const std::array<double, 2> a1 = {1.0, 1.0};
  a.expand(a0);
  a.expand(a1);
  Rect b(2);
  const std::array<double, 2> b0 = {1.0, 1.0};
  const std::array<double, 2> b1 = {2.0, 2.0};
  b.expand(b0);
  b.expand(b1);
  EXPECT_TRUE(a.intersects(b));

  Rect c(2);
  const std::array<double, 2> c0 = {1.5, 0.0};
  const std::array<double, 2> c1 = {2.0, 0.5};
  c.expand(c0);
  c.expand(c1);
  EXPECT_FALSE(a.intersects(c));
}

TEST(RectTest, OverlapArea) {
  Rect a(2);
  const std::array<double, 2> a0 = {0.0, 0.0};
  const std::array<double, 2> a1 = {2.0, 2.0};
  a.expand(a0);
  a.expand(a1);
  Rect b(2);
  const std::array<double, 2> b0 = {1.0, 1.0};
  const std::array<double, 2> b1 = {3.0, 3.0};
  b.expand(b0);
  b.expand(b1);
  EXPECT_EQ(a.overlapArea(b), 1.0);
  EXPECT_EQ(b.overlapArea(a), 1.0);

  Rect c(2);
  const std::array<double, 2> c0 = {5.0, 5.0};
  c.expand(c0);
  EXPECT_EQ(a.overlapArea(c), 0.0);
}

TEST(RectTest, EnlargementMeasuresAreaGrowth) {
  Rect a(2);
  const std::array<double, 2> a0 = {0.0, 0.0};
  const std::array<double, 2> a1 = {2.0, 2.0};
  a.expand(a0);
  a.expand(a1);
  const std::array<double, 2> inside = {1.0, 1.0};
  const std::array<double, 2> outside = {4.0, 2.0};
  EXPECT_EQ(a.enlargement(Rect::point(inside)), 0.0);
  EXPECT_EQ(a.enlargement(Rect::point(outside)), 4.0);  // 4x2 - 2x2
}

TEST(RectTest, L1KeyIsLowCornerSum) {
  Rect r(3);
  const std::array<double, 3> a = {1.0, -2.0, 3.0};
  const std::array<double, 3> b = {0.5, 5.0, 4.0};
  r.expand(a);
  r.expand(b);
  EXPECT_EQ(r.l1Key(), 0.5 - 2.0 + 3.0);
}

TEST(RectTest, L1KeyMonotoneUnderDominance) {
  Rng rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<double, 3> a{};
    std::array<double, 3> b{};
    for (auto& x : a) x = rng.uniform(-1.0, 1.0);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);
    if (dominates(a, b)) {
      EXPECT_LT(Rect::point(a).l1Key(), Rect::point(b).l1Key());
    }
  }
}

TEST(RectTest, FullyDominatesRequiresWholeRectBelow) {
  Rect r(2);
  const std::array<double, 2> lo = {0.0, 0.0};
  const std::array<double, 2> hi = {2.0, 2.0};
  r.expand(lo);
  r.expand(hi);
  const std::array<double, 2> far = {3.0, 3.0};
  const std::array<double, 2> corner = {2.0, 2.0};
  const std::array<double, 2> inside = {1.0, 1.0};
  const DimMask mask = fullMask(2);
  EXPECT_TRUE(r.fullyDominates(far, mask));
  EXPECT_FALSE(r.fullyDominates(corner, mask));  // point == hi corner
  EXPECT_FALSE(r.fullyDominates(inside, mask));
}

TEST(RectTest, PossiblyDominatesUsesLowCorner) {
  Rect r(2);
  const std::array<double, 2> lo = {1.0, 1.0};
  const std::array<double, 2> hi = {5.0, 5.0};
  r.expand(lo);
  r.expand(hi);
  const std::array<double, 2> above = {2.0, 2.0};
  const std::array<double, 2> below = {0.5, 0.5};
  const std::array<double, 2> equalLo = {1.0, 1.0};
  const DimMask mask = fullMask(2);
  EXPECT_TRUE(r.possiblyDominates(above, mask));
  EXPECT_FALSE(r.possiblyDominates(below, mask));
  EXPECT_FALSE(r.possiblyDominates(equalLo, mask));  // lo == b: no strict dim
}

TEST(RectTest, DominanceRegionTestsAgreeWithPointwiseTruth) {
  Rng rng(10);
  for (int trial = 0; trial < 500; ++trial) {
    // Random rect from two points, random query, compare with sampling the
    // rect corners (sufficient: dominance region tests are corner-determined).
    std::array<double, 2> p{};
    std::array<double, 2> q{};
    std::array<double, 2> b{};
    for (auto& x : p) x = rng.below(5);
    for (auto& x : q) x = rng.below(5);
    for (auto& x : b) x = rng.below(5);
    Rect r(2);
    r.expand(p);
    r.expand(q);
    const DimMask mask = fullMask(2);
    const std::array<double, 2> loCorner = {r.lo(0), r.lo(1)};
    const std::array<double, 2> hiCorner = {r.hi(0), r.hi(1)};
    EXPECT_EQ(r.possiblyDominates(b, mask), dominates(loCorner, b));
    EXPECT_EQ(r.fullyDominates(b, mask), dominates(hiCorner, b));
  }
}

}  // namespace
}  // namespace dsud
