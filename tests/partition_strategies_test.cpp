// Skewed partitioning strategies: range slices and Zipf imbalance.  The
// distributed algorithms assume nothing about how data lands on sites, so
// answers must stay exact under every strategy — only the bandwidth
// constants may shift.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/cluster.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

void expectDisjointAndComplete(const Dataset& global,
                               const std::vector<Dataset>& sites) {
  std::vector<TupleId> ids;
  for (const Dataset& site : sites) {
    for (std::size_t row = 0; row < site.size(); ++row) {
      ids.push_back(site.id(row));
    }
  }
  EXPECT_EQ(ids.size(), global.size());
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(PartitionByRangeTest, DisjointCompleteAndOrdered) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 980});
  const auto sites = partitionByRange(global, 5, 0);
  ASSERT_EQ(sites.size(), 5u);
  expectDisjointAndComplete(global, sites);

  // Slices are contiguous on dimension 0: max of slice s <= min of s+1.
  for (std::size_t s = 0; s + 1 < sites.size(); ++s) {
    double hi = -1e300;
    double nextLo = 1e300;
    for (std::size_t row = 0; row < sites[s].size(); ++row) {
      hi = std::max(hi, sites[s].values(row)[0]);
    }
    for (std::size_t row = 0; row < sites[s + 1].size(); ++row) {
      nextLo = std::min(nextLo, sites[s + 1].values(row)[0]);
    }
    EXPECT_LE(hi, nextLo);
  }
}

TEST(PartitionByRangeTest, Validation) {
  const Dataset global(2);
  EXPECT_THROW(partitionByRange(global, 0, 0), std::invalid_argument);
  EXPECT_THROW(partitionByRange(global, 2, 5), std::invalid_argument);
}

TEST(PartitionZipfTest, DisjointCompleteAndSkewed) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kIndependent, 981});
  Rng rng(982);
  const auto sites = partitionZipf(global, 8, 1.0, rng);
  expectDisjointAndComplete(global, sites);
  // Hot site clearly larger than the coldest.
  std::size_t largest = 0;
  std::size_t smallest = global.size();
  for (const Dataset& site : sites) {
    largest = std::max(largest, site.size());
    smallest = std::min(smallest, site.size());
  }
  EXPECT_GT(largest, 2 * std::max<std::size_t>(smallest, 1));
  // Site 0 carries the most mass under Zipf weights.
  EXPECT_EQ(largest, sites[0].size());
}

TEST(PartitionZipfTest, ThetaZeroIsRoughlyBalanced) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{4000, 2, ValueDistribution::kIndependent, 983});
  Rng rng(984);
  const auto sites = partitionZipf(global, 4, 0.0, rng);
  for (const Dataset& site : sites) {
    EXPECT_GT(site.size(), 800u);
    EXPECT_LT(site.size(), 1200u);
  }
}

TEST(PartitionZipfTest, Validation) {
  const Dataset global(2);
  Rng rng(1);
  EXPECT_THROW(partitionZipf(global, 0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(partitionZipf(global, 2, -0.5, rng), std::invalid_argument);
}

class SkewedClusterTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(SkewedClusterTest, AlgorithmsStayExactUnderSkew) {
  const auto [strategy, seed] = GetParam();
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 2, ValueDistribution::kAnticorrelated, seed});

  std::vector<Dataset> sites;
  Rng rng(seed + 1);
  if (strategy == "range0") {
    sites = partitionByRange(global, 6, 0);
  } else if (strategy == "range1") {
    sites = partitionByRange(global, 6, 1);
  } else {
    sites = partitionZipf(global, 6, 1.2, rng);
  }

  InProcCluster cluster(Topology::fromPartitions(sites));
  const auto expected = testutil::idsOf(linearSkyline(global, {.q = 0.3}));
  for (QueryResult result : {cluster.engine().runDsud(QueryConfig{}),
                             cluster.engine().runEdsud(QueryConfig{})}) {
    sortByGlobalProbability(result.skyline);
    EXPECT_EQ(testutil::idsOf(result.skyline), expected) << strategy;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SkewedClusterTest,
    ::testing::Combine(::testing::Values("range0", "range1", "zipf"),
                       ::testing::Values(990u, 991u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SkewedClusterTest, RangePartitioningConcentratesLocalSkylines) {
  // With range slices on dimension 0, the first site owns the cheap region
  // and contributes disproportionately many answers; the protocol still
  // works, it just pulls more candidates from that site.
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 2, ValueDistribution::kIndependent, 992});
  const auto sites = partitionByRange(global, 4, 0);
  InProcCluster cluster(Topology::fromPartitions(sites));
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  std::size_t fromFirst = 0;
  for (const auto& e : result.skyline) {
    if (e.site == 0) ++fromFirst;
  }
  EXPECT_GT(fromFirst, result.skyline.size() / 2);
}

}  // namespace
}  // namespace dsud
