// Paper-shaped scale smoke tests: tens of thousands of tuples across the
// paper's default 60 sites, validated against the indexed centralised
// reference (BBS over the unified database — itself validated against the
// O(N²) scan at small scale elsewhere).  Kept to a few seconds so it runs
// in every CI pass.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/stopwatch.hpp"
#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/nyse.hpp"
#include "gen/synthetic.hpp"
#include "skyline/bbs.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

std::vector<TupleId> indexedTruth(const Dataset& global, double q) {
  const PRTree tree = PRTree::bulkLoad(global);
  auto ids = testutil::idsOf(bbsSkyline(tree, {.q = q}));
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(StressTest, FiftyThousandTuplesSixtySites) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{50000, 3, ValueDistribution::kIndependent, 1200});
  InProcCluster cluster(Topology::uniform(global, 60, 1201));

  Stopwatch watch;
  QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  const double seconds = watch.elapsedSeconds();

  sortByGlobalProbability(result.skyline);
  auto ids = testutil::idsOf(result.skyline);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, indexedTruth(global, 0.3));

  // Generous bound: the default-scale bench point runs in well under this.
  EXPECT_LT(seconds, 30.0);
  // Bandwidth sanity: far below the naive |D|.
  EXPECT_LT(result.stats.tuplesShipped, global.size() / 4);
}

TEST(StressTest, AnticorrelatedHighDimensional) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{20000, 5, ValueDistribution::kAnticorrelated, 1202});
  InProcCluster cluster(Topology::uniform(global, 40, 1203));
  QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  sortByGlobalProbability(result.skyline);
  auto ids = testutil::idsOf(result.skyline);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, indexedTruth(global, 0.3));
  EXPECT_GT(result.skyline.size(), 200u);  // d=5 anticorrelated is brutal
}

TEST(StressTest, NyseScaleTrace) {
  const Dataset trace = generateNyse(NyseSpec{100000, 1204});
  InProcCluster cluster(Topology::uniform(trace, 60, 1205));
  QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  sortByGlobalProbability(result.skyline);
  auto ids = testutil::idsOf(result.skyline);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, indexedTruth(trace, 0.3));
  // Clustered market data: tiny answer, tiny bandwidth.
  EXPECT_LT(result.skyline.size(), 100u);
  EXPECT_LT(result.stats.tuplesShipped, 5000u);
}

TEST(StressTest, DeepUpdateStreamAtScale) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{20000, 2, ValueDistribution::kIndependent, 1206});
  InProcCluster cluster(Topology::uniform(global, 20, 1207));
  QueryConfig config;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();

  Rng rng(1208);
  TupleId next = 900000;
  for (int step = 0; step < 200; ++step) {
    UpdateEvent e;
    e.kind = UpdateEvent::Kind::kInsert;
    e.site = static_cast<SiteId>(rng.below(20));
    e.tuple = Tuple{next++, {rng.uniform(), rng.uniform()},
                    rng.existentialUniform()};
    maintainer.apply(e);
  }
  // Spot-check exactness via the ship-all path (fresh meter delta unused).
  QueryResult requery = cluster.engine().runEdsud(config);
  sortByGlobalProbability(requery.skyline);
  auto maintained = testutil::idsOf(maintainer.skyline());
  auto queried = testutil::idsOf(requery.skyline);
  std::sort(maintained.begin(), maintained.end());
  std::sort(queried.begin(), queried.end());
  EXPECT_EQ(maintained, queried);
}

}  // namespace
}  // namespace dsud
