// Randomised cross-validation harness: draw full query configurations at
// random — dimensionality, site count, threshold, distribution, probability
// model, subspace mask, window constraint, prune rule, bound mode, expunge
// policy — and check that naive, DSUD, and e-DSUD all reproduce the filtered
// centralised ground truth exactly.  One test like this catches interaction
// bugs that per-feature suites miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

struct RandomConfig {
  SyntheticSpec spec;
  std::size_t m = 2;
  QueryConfig query;
  bool gaussianProbs = false;
};

RandomConfig draw(Rng& rng) {
  RandomConfig c;
  c.spec.n = 100 + rng.below(900);
  c.spec.dims = 2 + rng.below(3);
  c.spec.seed = rng.next();
  const auto dist = rng.below(4);
  c.spec.dist = dist == 0   ? ValueDistribution::kIndependent
                : dist == 1 ? ValueDistribution::kCorrelated
                : dist == 2 ? ValueDistribution::kAnticorrelated
                            : ValueDistribution::kClustered;
  c.gaussianProbs = rng.uniform() < 0.3;
  c.m = 1 + rng.below(12);

  c.query.q = 0.05 + 0.9 * rng.uniform();
  c.query.prune = PruneRule::kThresholdBound;  // the exact rule
  c.query.bound = static_cast<FeedbackBound>(rng.below(3));
  c.query.expunge = static_cast<ExpungePolicy>(rng.below(2));

  // Random subspace (possibly full).
  if (rng.uniform() < 0.4) {
    DimMask mask = 0;
    for (std::size_t j = 0; j < c.spec.dims; ++j) {
      if (rng.uniform() < 0.5) mask |= 1u << j;
    }
    if (mask != 0) c.query.mask = mask;
  }

  // Random window constraint (possibly none).
  if (rng.uniform() < 0.3) {
    Rect window(c.spec.dims);
    std::vector<double> lo(c.spec.dims);
    std::vector<double> hi(c.spec.dims);
    for (std::size_t j = 0; j < c.spec.dims; ++j) {
      const double a = rng.uniform();
      const double b = rng.uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    window.expand(lo);
    window.expand(hi);
    c.query.window = window;
  }
  return c;
}

TEST(PropertySweepTest, RandomConfigurationsAllMatchGroundTruth) {
  Rng rng(0xDEC1DE);
  for (int trial = 0; trial < 25; ++trial) {
    const RandomConfig c = draw(rng);
    const Dataset global =
        c.gaussianProbs
            ? generateSynthetic(c.spec, gaussianProbability(0.5, 0.2))
            : generateSynthetic(c.spec);

    const DimMask mask = c.query.effectiveMask(global.dims());
    const auto expected =
        c.query.window
            ? linearSkyline(global, {.mask = mask, .q = c.query.q, .clip = &*c.query.window})
            : linearSkyline(global, {.mask = mask, .q = c.query.q});
    auto expectedIds = testutil::idsOf(expected);
    std::sort(expectedIds.begin(), expectedIds.end());

    InProcCluster cluster(Topology::uniform(global, c.m, rng.next()));
    for (QueryResult result : {cluster.engine().runNaive(c.query),
                               cluster.engine().runDsud(c.query),
                               cluster.engine().runEdsud(c.query)}) {
      auto ids = testutil::idsOf(result.skyline);
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, expectedIds)
          << "trial " << trial << ": n=" << c.spec.n << " d=" << c.spec.dims
          << " m=" << c.m << " q=" << c.query.q << " mask=" << c.query.mask
          << " dist=" << distributionName(c.spec.dist)
          << " window=" << c.query.window.has_value()
          << " bound=" << static_cast<int>(c.query.bound)
          << " expunge=" << static_cast<int>(c.query.expunge);

      // Probabilities are exact, not just the id set.
      const auto probs = result.skyline;
      for (const auto& entry : probs) {
        const auto it =
            std::find_if(expected.begin(), expected.end(),
                         [&](const auto& e) { return e.id == entry.tuple.id; });
        ASSERT_NE(it, expected.end());
        EXPECT_NEAR(entry.globalSkyProb, it->skyProb, 1e-9);
      }
    }
  }
}

TEST(PropertySweepTest, TopKConsistentWithThresholdSweep) {
  Rng rng(0x70F0);
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticSpec spec;
    spec.n = 200 + rng.below(600);
    spec.dims = 2 + rng.below(2);
    spec.seed = rng.next();
    spec.dist = rng.uniform() < 0.5 ? ValueDistribution::kIndependent
                                    : ValueDistribution::kAnticorrelated;
    const Dataset global = generateSynthetic(spec);
    const std::size_t m = 1 + rng.below(8);
    const std::size_t k = 1 + rng.below(15);

    InProcCluster cluster(Topology::uniform(global, m, rng.next()));
    TopKConfig config;
    config.k = k;
    config.floorQ = 0.02 + 0.2 * rng.uniform();
    const QueryResult result = cluster.engine().runTopK(config);

    auto truth = linearSkyline(global, {.q = config.floorQ});
    if (truth.size() > k) truth.resize(k);
    ASSERT_EQ(testutil::idsOf(result.skyline), testutil::idsOf(truth))
        << "trial " << trial << " k=" << k << " floor=" << config.floorQ;
  }
}

}  // namespace
}  // namespace dsud
