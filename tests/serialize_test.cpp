#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dsud {
namespace {

TEST(SerializeTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.putU8(0xab);
  w.putU16(0x1234);
  w.putU32(0xdeadbeef);
  w.putU64(0x0123456789abcdefULL);
  w.putF64(-1234.5678);
  w.putBool(true);
  w.putBool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.getU8(), 0xab);
  EXPECT_EQ(r.getU16(), 0x1234);
  EXPECT_EQ(r.getU32(), 0xdeadbeefu);
  EXPECT_EQ(r.getU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.getF64(), -1234.5678);
  EXPECT_TRUE(r.getBool());
  EXPECT_FALSE(r.getBool());
  r.expectEnd();
}

TEST(SerializeTest, LittleEndianLayout) {
  ByteWriter w;
  w.putU32(0x01020304);
  const auto bytes = w.bytes();
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 0x03);
  EXPECT_EQ(std::to_integer<int>(bytes[2]), 0x02);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 0x01);
}

TEST(SerializeTest, SpecialDoublesSurvive) {
  ByteWriter w;
  w.putF64(std::numeric_limits<double>::infinity());
  w.putF64(-0.0);
  w.putF64(std::numeric_limits<double>::quiet_NaN());
  w.putF64(std::numeric_limits<double>::denorm_min());

  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.getF64()));
  const double negZero = r.getF64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_TRUE(std::isnan(r.getF64()));
  EXPECT_EQ(r.getF64(), std::numeric_limits<double>::denorm_min());
}

TEST(SerializeTest, StringRoundTrip) {
  ByteWriter w;
  w.putString("hello \0 world");
  w.putString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.getString(), "hello ");  // string_view from literal stops at NUL
  EXPECT_EQ(r.getString(), "");
}

TEST(SerializeTest, F64VectorRoundTrip) {
  const std::vector<double> v = {1.0, -2.0, 3.5};
  ByteWriter w;
  w.putF64Vector(v);
  w.putF64Vector({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.getF64Vector(), v);
  EXPECT_TRUE(r.getF64Vector().empty());
  r.expectEnd();
}

TEST(SerializeTest, BytesRoundTrip) {
  ByteWriter inner;
  inner.putU32(42);
  ByteWriter w;
  w.putBytes(inner.bytes());
  ByteReader r(w.bytes());
  const auto blob = r.getBytes();
  ByteReader innerReader(blob);
  EXPECT_EQ(innerReader.getU32(), 42u);
}

TEST(SerializeTest, UnderflowThrows) {
  ByteWriter w;
  w.putU16(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.getU32(), SerializeError);
}

TEST(SerializeTest, TruncatedVectorThrows) {
  ByteWriter w;
  w.putU32(1000);  // claims 1000 doubles, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.getF64Vector(), SerializeError);
}

TEST(SerializeTest, TruncatedStringThrows) {
  ByteWriter w;
  w.putU32(50);
  w.putU8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.getString(), SerializeError);
}

TEST(SerializeTest, ExpectEndRejectsTrailingBytes) {
  ByteWriter w;
  w.putU8(1);
  w.putU8(2);
  ByteReader r(w.bytes());
  r.getU8();
  EXPECT_THROW(r.expectEnd(), SerializeError);
  r.getU8();
  EXPECT_NO_THROW(r.expectEnd());
}

TEST(SerializeTest, RemainingTracksPosition) {
  ByteWriter w;
  w.putU64(0);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.getU32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.atEnd());
  r.getU32();
  EXPECT_TRUE(r.atEnd());
}

TEST(SerializeTest, ClearResetsWriter) {
  ByteWriter w;
  w.putU64(1);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace dsud
