#include "core/continuous.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

constexpr double kQ = 0.3;

struct StreamSetup {
  std::vector<Dataset> siteData;
  std::vector<std::vector<Tuple>> windows;
};

/// Builds m sites pre-filled with `fill` tuples each (arrival order = id).
StreamSetup makeSetup(std::size_t m, std::size_t fill, std::uint64_t seed) {
  Rng rng(seed);
  StreamSetup setup;
  TupleId next = 0;
  for (std::size_t s = 0; s < m; ++s) {
    Dataset data(2);
    std::vector<Tuple> window;
    for (std::size_t i = 0; i < fill; ++i) {
      Tuple t{next++, {rng.uniform(), rng.uniform()}, rng.existentialUniform()};
      data.add(t.id, t.values, t.prob);
      window.push_back(std::move(t));
    }
    setup.siteData.push_back(std::move(data));
    setup.windows.push_back(std::move(window));
  }
  return setup;
}

std::vector<TupleId> truthIds(
    const std::vector<std::deque<Tuple>>& liveWindows) {
  Dataset global(2);
  for (const auto& window : liveWindows) {
    for (const Tuple& t : window) global.add(t.id, t.values, t.prob);
  }
  auto ids = testutil::idsOf(linearSkyline(global, {.q = kQ}));
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ContinuousTest, ValidatesConstruction) {
  StreamSetup setup = makeSetup(2, 4, 800);
  InProcCluster cluster(Topology::fromPartitions(setup.siteData));
  QueryConfig config;
  config.q = kQ;
  EXPECT_THROW(ContinuousDistributedSkyline(cluster.coordinator(), config, 0,
                                            setup.windows),
               std::invalid_argument);
  EXPECT_THROW(ContinuousDistributedSkyline(cluster.coordinator(), config, 2,
                                            setup.windows),  // 4 > capacity 2
               std::invalid_argument);
  std::vector<std::vector<Tuple>> wrongCount(1);
  EXPECT_THROW(ContinuousDistributedSkyline(cluster.coordinator(), config, 8,
                                            wrongCount),
               std::invalid_argument);
}

TEST(ContinuousTest, StaysExactThroughStream) {
  const std::size_t m = 3;
  const std::size_t window = 12;
  StreamSetup setup = makeSetup(m, window, 801);
  InProcCluster cluster(Topology::fromPartitions(setup.siteData));
  QueryConfig config;
  config.q = kQ;
  ContinuousDistributedSkyline stream(cluster.coordinator(), config, window,
                                      setup.windows);

  std::vector<std::deque<Tuple>> mirror;
  for (const auto& w : setup.windows) mirror.emplace_back(w.begin(), w.end());

  Rng rng(802);
  TupleId next = 100000;
  for (int step = 0; step < 60; ++step) {
    const SiteId site = static_cast<SiteId>(rng.below(m));
    const Tuple t{next++, {rng.uniform(), rng.uniform()},
                  rng.existentialUniform()};
    stream.append(site, t);
    if (mirror[site].size() == window) mirror[site].pop_front();
    mirror[site].push_back(t);

    if (step % 7 != 0) continue;
    auto ids = testutil::idsOf(stream.skyline());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, truthIds(mirror)) << "step " << step;
  }
}

TEST(ContinuousTest, WarmupPhaseInsertsOnly) {
  const std::size_t m = 2;
  StreamSetup setup = makeSetup(m, 0, 803);  // empty initial windows
  // Sites need at least one tuple for the PR-tree... empty is fine too.
  InProcCluster cluster(Topology::fromPartitions(setup.siteData));
  QueryConfig config;
  config.q = kQ;
  ContinuousDistributedSkyline stream(cluster.coordinator(), config, 3,
                                      setup.windows);
  EXPECT_TRUE(stream.skyline().empty());

  Rng rng(804);
  for (TupleId id = 0; id < 6; ++id) {
    const SiteId site = static_cast<SiteId>(id % m);
    stream.append(site, Tuple{id, {rng.uniform(), rng.uniform()}, 0.9});
    EXPECT_LE(stream.liveCount(site), 3u);
  }
  EXPECT_EQ(stream.liveCount(0), 3u);
  EXPECT_EQ(stream.liveCount(1), 3u);
  EXPECT_FALSE(stream.skyline().empty());
}

TEST(ContinuousTest, PerEventCostIsFarBelowRequery) {
  const std::size_t m = 4;
  const std::size_t window = 50;
  StreamSetup setup = makeSetup(m, window, 805);
  InProcCluster cluster(Topology::fromPartitions(setup.siteData));
  QueryConfig config;
  config.q = kQ;
  ContinuousDistributedSkyline stream(cluster.coordinator(), config, window,
                                      setup.windows);

  // Cost of one full re-query on the same cluster state.
  const QueryResult requery = cluster.engine().runEdsud(config);

  Rng rng(806);
  TupleId next = 200000;
  std::uint64_t totalTuples = 0;
  const int events = 40;
  for (int step = 0; step < events; ++step) {
    const SiteId site = static_cast<SiteId>(rng.below(m));
    totalTuples += stream
                       .append(site, Tuple{next++,
                                           {rng.uniform(), rng.uniform()},
                                           rng.existentialUniform()})
                       .tuplesShipped;
  }
  // Per-event average a small fraction of a full query.
  EXPECT_LT(totalTuples / events, requery.stats.tuplesShipped);
}

TEST(ContinuousTest, UnknownSiteRejected) {
  StreamSetup setup = makeSetup(2, 2, 807);
  InProcCluster cluster(Topology::fromPartitions(setup.siteData));
  QueryConfig config;
  config.q = kQ;
  ContinuousDistributedSkyline stream(cluster.coordinator(), config, 4,
                                      setup.windows);
  EXPECT_THROW(stream.append(9, Tuple{1, {0.5, 0.5}, 0.5}),
               std::out_of_range);
}

}  // namespace
}  // namespace dsud
