#include "skyline/cardinality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"

namespace dsud {
namespace {

TEST(CardinalityTest, DensityTermBasics) {
  EXPECT_EQ(skylineDensityTerm(2, 0.0), 0.0);
  EXPECT_EQ(skylineDensityTerm(2, 1.0), 0.0);
  // d = 2: ln(n) / 2!.
  EXPECT_NEAR(skylineDensityTerm(2, std::exp(1.0) * std::exp(1.0)), 1.0,
              1e-12);
  // d = 3: ln²(n) / 3!.
  EXPECT_NEAR(skylineDensityTerm(3, std::exp(2.0)), 4.0 / 6.0, 1e-12);
}

TEST(CardinalityTest, ZeroTuplesZeroSkyline) {
  EXPECT_EQ(expectedSkylineCardinality(2, 0), 0.0);
}

TEST(CardinalityTest, GrowsWithDimensionality) {
  const std::size_t n = 100000;
  double prev = 0.0;
  for (std::size_t d = 2; d <= 5; ++d) {
    const double h = expectedSkylineCardinality(d, n);
    EXPECT_GT(h, prev) << "d=" << d;
    prev = h;
  }
}

TEST(CardinalityTest, GrowsWithCardinality) {
  EXPECT_LT(expectedSkylineCardinality(3, 1000),
            expectedSkylineCardinality(3, 100000));
}

TEST(CardinalityTest, SmallAndLargeBranchesAgreeAtBoundary) {
  // The exact Binomial evaluation (N <= 512) and the Gaussian quadrature
  // should agree near the crossover because the summand is smooth.
  const double exact = expectedSkylineCardinality(3, 512);
  const double approx = expectedSkylineCardinality(3, 513);
  EXPECT_NEAR(exact, approx, exact * 0.02);
}

TEST(CardinalityTest, RoughlyPredictsMeasuredSkylineSizes) {
  // The estimator targets the expected count of *conventional* skyline
  // points among existing tuples; with uniform probabilities roughly half
  // the tuples exist.  Check order of magnitude only (the formula is the
  // paper's approximation, not an exact result).
  const std::size_t n = 20000;
  const Dataset data = generateSynthetic(
      SyntheticSpec{n, 2, ValueDistribution::kIndependent, 71});
  // Count tuples undominated among the full dataset (certain-data skyline of
  // the expected world scale).
  const auto sky = linearSkyline(data, {.q = 1e-9});
  const double predicted = expectedSkylineCardinality(2, n);
  EXPECT_GT(predicted, 1.0);
  // Same order of magnitude as ln(n): allow a factor of 4 either way.
  EXPECT_LT(predicted, 4.0 * std::log(double(n)));
  EXPECT_GT(predicted, std::log(double(n)) / 4.0);
  EXPECT_GT(sky.size(), 0u);
}

TEST(CardinalityTest, FeedbackCostModelEq7Eq8) {
  const std::size_t d = 3;
  const std::size_t n = 2000000;
  for (std::size_t m : {40u, 60u, 80u, 100u}) {
    const double nBack = expectedFeedbackTuples(d, n, m);
    const double nLocal = expectedLocalSkylineTuples(d, n, m);
    // Paper Sec. 4: N_back > N_local when m > 1 — naive feedback costs more
    // than shipping every local skyline, motivating selective feedback.
    EXPECT_GT(nBack, nLocal) << "m=" << m;
    EXPECT_NEAR(nBack, (m - 1) * expectedSkylineCardinality(d, n), 1e-9);
    EXPECT_NEAR(nLocal, (m - 1) * expectedSkylineCardinality(d, n / m), 1e-9);
  }
}

TEST(CardinalityTest, SingleSiteHasNoFeedbackCost) {
  EXPECT_EQ(expectedFeedbackTuples(3, 1000, 1), 0.0);
  EXPECT_EQ(expectedLocalSkylineTuples(3, 1000, 1), 0.0);
}

TEST(CardinalityTest, FeedbackGapWidensWithSites) {
  const std::size_t d = 3;
  const std::size_t n = 1000000;
  double prevGap = 0.0;
  for (std::size_t m : {10u, 20u, 40u, 80u}) {
    const double gap = expectedFeedbackTuples(d, n, m) -
                       expectedLocalSkylineTuples(d, n, m);
    EXPECT_GT(gap, prevGap);
    prevGap = gap;
  }
}

}  // namespace
}  // namespace dsud
