// The structured event log and the flight recorder (obs/log.hpp,
// obs/recorder.hpp): NDJSON rendering, the level gate, sink fan-out, ring
// wraparound under concurrent writers (the TSan job runs this suite), and
// the end-to-end anomaly path — a chaos-degraded query must leave behind a
// dump whose event sequence explains the degradation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/chaos.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"

namespace dsud {
namespace {

namespace fs = std::filesystem;

obs::Event makeEvent(std::string name, std::uint64_t wallNs = 0,
                     LogLevel level = LogLevel::kInfo) {
  obs::Event event;
  event.wallNs = wallNs;
  event.level = level;
  event.component = "test";
  event.name = std::move(name);
  return event;
}

/// A unique scratch directory under the system temp dir, removed on exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            (tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const noexcept { return path_; }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path path_;
};

std::vector<std::string> readLines(const fs::path& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

// --- NDJSON rendering ------------------------------------------------------

TEST(EventNdjsonTest, RendersReservedKeysAndTypedFields) {
  obs::Event event = makeEvent("cache.hit", 123, LogLevel::kWarn);
  event.fields.push_back(obs::field("query", std::uint64_t{42}));
  event.fields.push_back(obs::field("delta", std::int64_t{-7}));
  event.fields.push_back(obs::field("ratio", 0.5));
  event.fields.push_back(obs::field("degraded", true));
  event.fields.push_back(obs::field("tenant", "acme"));
  EXPECT_EQ(obs::eventToNdjson(event),
            R"({"ts_ns":123,"level":"warn","component":"test",)"
            R"("event":"cache.hit","query":42,"delta":-7,"ratio":0.5,)"
            R"("degraded":true,"tenant":"acme"})");
}

TEST(EventNdjsonTest, EscapesStringsAndSanitisesNonFiniteNumbers) {
  obs::Event event = makeEvent("weird", 1);
  event.component = "a\"b";
  event.fields.push_back(obs::field("path", "C:\\tmp\nx\t\x01"));
  event.fields.push_back(obs::field("nan", 0.0 / 0.0));
  const std::string line = obs::eventToNdjson(event);
  EXPECT_NE(line.find(R"("component":"a\"b")"), std::string::npos);
  EXPECT_NE(line.find(R"("path":"C:\\tmp\nx\t\u0001")"), std::string::npos);
  EXPECT_NE(line.find(R"("nan":null)"), std::string::npos)
      << "NaN must render as null, not break the JSON document: " << line;
}

// --- EventLog: gate and fan-out --------------------------------------------

class CountingSink final : public obs::EventSink {
 public:
  void accept(const obs::Event& event) override {
    std::lock_guard lock(mutex_);
    names.push_back(event.name);
  }
  std::vector<std::string> snapshot() const {
    std::lock_guard lock(mutex_);
    return names;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> names;
};

TEST(EventLogTest, LevelGateFiltersBelowThreshold) {
  obs::EventLog log;
  auto sink = std::make_shared<CountingSink>();
  log.addSink(sink);
  log.setLevel(LogLevel::kWarn);
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));

  log.emit(LogLevel::kDebug, "test", "too.low");
  log.emit(LogLevel::kInfo, "test", "still.low");
  log.emit(LogLevel::kWarn, "test", "passes");
  log.emit(LogLevel::kError, "test", "also.passes");
  EXPECT_EQ(sink->snapshot(),
            (std::vector<std::string>{"passes", "also.passes"}));
}

TEST(EventLogTest, StampsWallClockAndRemovesSinksByIdentity) {
  obs::EventLog log;
  auto sink = std::make_shared<CountingSink>();
  log.addSink(sink);
  EXPECT_EQ(log.sinkCount(), 1u);
  log.emit(makeEvent("one"));
  log.removeSink(sink.get());
  EXPECT_EQ(log.sinkCount(), 0u);
  log.emit(makeEvent("two"));
  EXPECT_EQ(sink->snapshot(), std::vector<std::string>{"one"});
}

TEST(EventLogTest, FileSinkAppendsParseableLines) {
  TempDir dir("dsud-filesink");
  const fs::path path = dir.path() / "events.ndjson";
  {
    obs::EventLog log;
    auto sink = std::make_shared<obs::FileSink>(path.string());
    ASSERT_TRUE(sink->ok());
    log.addSink(std::move(sink));
    log.emit(LogLevel::kInfo, "test", "first",
             {obs::field("n", std::uint64_t{1})});
    log.emit(LogLevel::kWarn, "test", "second", {obs::field("ok", true)});
  }
  const std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"second\""), std::string::npos);
}

// --- FlightRecorder: ring semantics ----------------------------------------

TEST(FlightRecorderTest, KeepsTheLastCapacityEventsInOrder) {
  obs::FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.accept(makeEvent("e" + std::to_string(i), 100 + i));
  }
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_EQ(recorder.recorded(), 20u);
  const std::vector<obs::Event> kept = recorder.snapshot();
  ASSERT_EQ(kept.size(), 8u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].name, "e" + std::to_string(12 + i))
        << "snapshot must hold the newest events, oldest first";
  }
}

TEST(FlightRecorderTest, SnapshotFiltersByTimestamp) {
  obs::FlightRecorder recorder(16);
  for (int i = 0; i < 10; ++i) {
    recorder.accept(makeEvent("e" + std::to_string(i), 1000 + i));
  }
  EXPECT_EQ(recorder.snapshot(0).size(), 10u);
  EXPECT_EQ(recorder.snapshot(1005).size(), 5u);
  EXPECT_EQ(recorder.snapshot(2000).size(), 0u);
}

/// The TSan-targeted interleaving: writers race each other around the ring
/// while readers snapshot and render.  Correctness bar: no data race, no
/// torn event, exact lifetime count, and a full ring afterwards.
TEST(FlightRecorderTest, ConcurrentWritersWrapCleanly) {
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kPerWriter = 2000;
  constexpr std::size_t kCapacity = 64;
  obs::FlightRecorder recorder(kCapacity);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const obs::Event& event : recorder.snapshot()) {
        // A torn copy would surface as an inconsistent name/field pair (or
        // as a TSan report); parsing the rendering exercises both strings.
        ASSERT_FALSE(event.name.empty());
        ASSERT_FALSE(obs::eventToNdjson(event).empty());
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        obs::Event event = makeEvent("w" + std::to_string(w), 1 + i);
        event.fields.push_back(obs::field("i", static_cast<std::uint64_t>(i)));
        recorder.accept(event);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.snapshot().size(), kCapacity)
      << "after the dust settles every slot holds one event";
}

// --- FlightRecorder: anomaly dumps -----------------------------------------

TEST(FlightRecorderTest, AnomalyDumpsTheRecentWindow) {
  TempDir dir("dsud-recorder");
  obs::FlightRecorder recorder(32);
  recorder.setDumpDir(dir.path().string());
  const std::uint64_t now = obs::wallClockNs();
  recorder.accept(makeEvent("ancient", now - 3600ull * 1'000'000'000ull));
  recorder.accept(makeEvent("recent.one", now - 1000));
  recorder.accept(makeEvent("recent.two", now));

  const std::string path = recorder.anomaly("unit_test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_NE(path.find("recorder-unit_test-"), std::string::npos);

  const std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 2u)
      << "events older than the window must not be dumped";
  EXPECT_NE(lines[0].find("recent.one"), std::string::npos);
  EXPECT_NE(lines[1].find("recent.two"), std::string::npos);
}

TEST(FlightRecorderTest, AnomalyWithoutDumpDirIsANoOp) {
  obs::FlightRecorder recorder(8);
  recorder.accept(makeEvent("something"));
  EXPECT_EQ(recorder.anomaly("nowhere"), "");
}

TEST(FlightRecorderTest, ReasonIsSanitisedIntoTheFilename) {
  TempDir dir("dsud-recorder");
  obs::FlightRecorder recorder(8);
  recorder.setDumpDir(dir.path().string());
  recorder.accept(makeEvent("x", obs::wallClockNs()));
  const std::string path = recorder.anomaly("../weird reason!");
  ASSERT_FALSE(path.empty());
  const std::string name = fs::path(path).filename().string();
  for (const char c : name) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                c == '_' || c == '.')
        << "unexpected byte in dump filename: " << name;
  }
  EXPECT_EQ(name.find(".."), std::string::npos);
}

TEST(FlightRecorderTest, ConfigureRejectsZeroAndLiveRecorder) {
  EXPECT_FALSE(obs::configureFlightRecorder(0));
  // Touching the global recorder makes later configuration a no-op.
  obs::flightRecorder();
  EXPECT_FALSE(obs::configureFlightRecorder(128));
}

// --- End to end: a degraded query leaves an explanatory dump ---------------

TEST(FlightRecorderTest, DegradedQueryDumpExplainsTheDegradation) {
  TempDir dir("dsud-degraded");
  obs::FlightRecorder& recorder = obs::flightRecorder();
  recorder.setDumpDir(dir.path().string());
  const std::uint64_t dumpsBefore = recorder.dumps();
  const std::uint64_t startNs = obs::wallClockNs();

  const Dataset global =
      generateSynthetic(SyntheticSpec{300, 2, ValueDistribution::kIndependent,
                                      4242});
  Rng rng(7);
  const SiteId victim = 1;
  const auto siteData = partitionUniform(global, 4, rng);
  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.killAfter = 1, .onlySite = victim};
  InProcCluster cluster(Topology::fromPartitions(siteData), chaotic);

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;
  degrade.fault.retry.maxAttempts = 2;  // so the dump shows the retry
  const QueryResult result =
      cluster.engine().runEdsud(QueryConfig{}, degrade);
  ASSERT_TRUE(result.degraded);
  recorder.setDumpDir("");  // stop other suites' anomalies writing here

  EXPECT_GT(recorder.dumps(), dumpsBefore);
  std::vector<fs::path> dumps;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().filename().string().rfind("recorder-degraded_query-",
                                               0) == 0) {
      dumps.push_back(entry.path());
    }
  }
  ASSERT_EQ(dumps.size(), 1u);

  // The dumped sequence must explain the degradation, in causal order:
  // the victim's RPC was retried, the site was declared dead, the query
  // completed degraded.
  std::ptrdiff_t retryAt = -1;
  std::ptrdiff_t deadAt = -1;
  std::ptrdiff_t degradedAt = -1;
  const std::vector<std::string> lines = readLines(dumps.front());
  const std::string queryTag =
      "\"query\":" + std::to_string(result.id);
  for (std::ptrdiff_t i = 0; i < std::ssize(lines); ++i) {
    const std::string& line = lines[i];
    const std::uint64_t ts =
        std::stoull(line.substr(line.find("\"ts_ns\":") + 8));
    EXPECT_GE(ts, startNs - 1) << "dump reaches back before the test";
    if (line.find("\"event\":\"rpc.retry\"") != std::string::npos &&
        line.find("\"site\":" + std::to_string(victim)) !=
            std::string::npos) {
      if (retryAt < 0) retryAt = i;
    }
    if (line.find("\"event\":\"site.dead\"") != std::string::npos &&
        line.find(queryTag) != std::string::npos) {
      deadAt = i;
    }
    if (line.find("\"event\":\"query.degraded\"") != std::string::npos &&
        line.find(queryTag) != std::string::npos) {
      degradedAt = i;
    }
  }
  ASSERT_GE(retryAt, 0) << "dump must show the failed RPC being retried";
  ASSERT_GE(deadAt, 0) << "dump must show the victim declared dead";
  ASSERT_GE(degradedAt, 0) << "dump must show the degraded completion";
  EXPECT_LT(retryAt, deadAt);
  EXPECT_LT(deadAt, degradedAt);
}

}  // namespace
}  // namespace dsud
