#include "skyline/skycube.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/synthetic.hpp"
#include "skyline/bbs.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(SkycubeTest, ValidatesThreshold) {
  const PRTree tree(2);
  EXPECT_THROW(Skycube(tree, 0.0), std::invalid_argument);
  EXPECT_THROW(Skycube(tree, 1.5), std::invalid_argument);
}

TEST(SkycubeTest, CuboidCountIsTwoToTheDMinusOne) {
  for (std::size_t d = 1; d <= 4; ++d) {
    const Dataset data = generateSynthetic(
        SyntheticSpec{50, d, ValueDistribution::kIndependent, 950 + d});
    const PRTree tree = PRTree::bulkLoad(data);
    const Skycube cube(tree, 0.3);
    EXPECT_EQ(cube.cuboidCount(), (1u << d) - 1);
  }
}

TEST(SkycubeTest, EveryCuboidMatchesLinearScan) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{400, 4, ValueDistribution::kAnticorrelated, 955});
  const PRTree tree = PRTree::bulkLoad(data);
  const Skycube cube(tree, 0.3);
  for (DimMask mask = 1; mask <= fullMask(4); ++mask) {
    EXPECT_EQ(testutil::idsOf(cube.cuboid(mask)),
              testutil::idsOf(linearSkyline(data, {.mask = mask, .q = 0.3})))
        << "mask=" << mask;
  }
}

TEST(SkycubeTest, CuboidLookupValidation) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{20, 2, ValueDistribution::kIndependent, 956});
  const PRTree tree = PRTree::bulkLoad(data);
  const Skycube cube(tree, 0.3);
  EXPECT_THROW(cube.cuboid(0), std::out_of_range);
  EXPECT_THROW(cube.cuboid(0b100), std::out_of_range);  // dim 2 of a 2-D cube
  EXPECT_NO_THROW(cube.cuboid(0b11));
}

TEST(SkycubeTest, ForEachVisitsAllMasksInOrder) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{30, 3, ValueDistribution::kIndependent, 957});
  const PRTree tree = PRTree::bulkLoad(data);
  const Skycube cube(tree, 0.3);
  std::vector<DimMask> visited;
  cube.forEachCuboid([&](DimMask mask, const auto& skyline) {
    visited.push_back(mask);
    EXPECT_EQ(skyline.size(), cube.cuboid(mask).size());
  });
  ASSERT_EQ(visited.size(), 7u);
  for (DimMask m = 1; m <= 7; ++m) EXPECT_EQ(visited[m - 1], m);
}

TEST(SkycubeTest, SingleDimensionCuboidsAreMinChains) {
  // On one dimension, the most-preferred tuple has P_sky = its own P.
  const Dataset data = generateSynthetic(
      SyntheticSpec{200, 3, ValueDistribution::kIndependent, 958});
  const PRTree tree = PRTree::bulkLoad(data);
  const Skycube cube(tree, 0.3);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto& cuboid = cube.cuboid(DimMask{1u} << j);
    // Find the minimum-value tuple on dimension j.
    std::size_t bestRow = 0;
    for (std::size_t row = 1; row < data.size(); ++row) {
      if (data.values(row)[j] < data.values(bestRow)[j]) bestRow = row;
    }
    const bool found =
        std::any_of(cuboid.begin(), cuboid.end(), [&](const auto& e) {
          return e.id == data.id(bestRow);
        });
    // The minimum is in the cuboid iff its own probability clears q.
    EXPECT_EQ(found, data.prob(bestRow) >= 0.3);
  }
}

TEST(SkycubeTest, FullMaskCuboidEqualsPlainSkyline) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{300, 3, ValueDistribution::kAnticorrelated, 959});
  const PRTree tree = PRTree::bulkLoad(data);
  const Skycube cube(tree, 0.3);
  EXPECT_EQ(testutil::idsOf(cube.cuboid(fullMask(3))),
            testutil::idsOf(bbsSkyline(tree, {.q = 0.3})));
}

}  // namespace
}  // namespace dsud
