#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/bandwidth.hpp"
#include "net/inproc_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"

namespace dsud {
namespace {

Frame frameOf(std::initializer_list<int> bytes) {
  Frame f;
  for (int b : bytes) f.push_back(static_cast<std::byte>(b));
  return f;
}

// ---------------------------------------------------------------------------
// BandwidthMeter

TEST(BandwidthMeterTest, StartsAtZero) {
  BandwidthMeter meter(4);
  const UsageTotals t = meter.totals();
  EXPECT_EQ(t.tuples, 0u);
  EXPECT_EQ(t.bytes, 0u);
  EXPECT_EQ(t.calls, 0u);
}

TEST(BandwidthMeterTest, AccumulatesPerLink) {
  BandwidthMeter meter(2);
  meter.recordCall(0, 100, 50);
  meter.recordCall(0, 10, 5);
  meter.recordTuples(0, 3, 1);
  meter.recordCall(1, 7, 7);

  const LinkUsage l0 = meter.link(0);
  EXPECT_EQ(l0.bytesToSite, 110u);
  EXPECT_EQ(l0.bytesFromSite, 55u);
  EXPECT_EQ(l0.tuplesToSite, 3u);
  EXPECT_EQ(l0.tuplesFromSite, 1u);
  EXPECT_EQ(l0.calls, 2u);

  const UsageTotals t = meter.totals();
  EXPECT_EQ(t.tuples, 4u);
  EXPECT_EQ(t.bytes, 179u);
  EXPECT_EQ(t.calls, 3u);
}

TEST(BandwidthMeterTest, GrowsForUnseenSites) {
  BandwidthMeter meter;
  meter.recordTuples(9, 1, 0);
  EXPECT_EQ(meter.link(9).tuplesToSite, 1u);
  EXPECT_EQ(meter.link(3).tuplesToSite, 0u);  // untouched link reads zero
}

TEST(BandwidthMeterTest, ResetClears) {
  BandwidthMeter meter(1);
  meter.recordCall(0, 10, 10);
  meter.recordTuples(0, 1, 1);
  meter.reset();
  EXPECT_EQ(meter.totals().tuples, 0u);
  EXPECT_EQ(meter.totals().bytes, 0u);
}

TEST(BandwidthMeterTest, ThreadSafeAccumulation) {
  BandwidthMeter meter(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < 10000; ++i) meter.recordTuples(0, 1, 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meter.totals().tuples, 40000u);
}

// ---------------------------------------------------------------------------
// InProcChannel

TEST(InProcChannelTest, EchoesThroughHandler) {
  InProcChannel channel([](const Frame& f) {
    Frame out = f;
    out.push_back(static_cast<std::byte>(0xff));
    return out;
  });
  const Frame response = channel.call(frameOf({1, 2, 3}));
  EXPECT_EQ(response, frameOf({1, 2, 3, 0xff}));
}

TEST(InProcChannelTest, NullHandlerRejected) {
  EXPECT_THROW(InProcChannel(FrameHandler{}), std::invalid_argument);
}

TEST(InProcChannelTest, CallAfterCloseThrows) {
  InProcChannel channel([](const Frame& f) { return f; });
  channel.close();
  EXPECT_THROW(channel.call(frameOf({1})), std::logic_error);
}

// ---------------------------------------------------------------------------
// TCP transport

TEST(TcpTransportTest, RoundTripsFrames) {
  TcpSiteServer server([](const Frame& f) {
    Frame out = f;
    std::reverse(out.begin(), out.end());
    return out;
  });
  std::thread serverThread([&server] { server.serve(); });

  {
    TcpClientChannel client(server.port());
    EXPECT_EQ(client.call(frameOf({1, 2, 3})), frameOf({3, 2, 1}));
    EXPECT_EQ(client.call(frameOf({9})), frameOf({9}));
    EXPECT_EQ(client.call(Frame{}), Frame{});  // empty frames are legal
    client.close();
  }
  serverThread.join();
}

TEST(TcpTransportTest, ServesManySequentialRequests) {
  std::atomic<int> served{0};
  TcpSiteServer server([&served](const Frame& f) {
    ++served;
    return f;
  });
  std::thread serverThread([&server] { server.serve(); });
  {
    TcpClientChannel client(server.port());
    for (int i = 0; i < 500; ++i) {
      Frame f(static_cast<std::size_t>(i % 97), static_cast<std::byte>(i));
      ASSERT_EQ(client.call(f), f);
    }
    client.close();
  }
  serverThread.join();
  EXPECT_EQ(served.load(), 500);
}

TEST(TcpTransportTest, LargeFrameSurvives) {
  TcpSiteServer server([](const Frame& f) { return f; });
  std::thread serverThread([&server] { server.serve(); });
  {
    TcpClientChannel client(server.port());
    Frame big(1 << 20);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::byte>(i * 31);
    }
    EXPECT_EQ(client.call(big), big);
    client.close();
  }
  serverThread.join();
}

TEST(TcpTransportTest, ConnectToUnboundPortFails) {
  // Bind-then-close to get a port that is very likely unbound.
  std::uint16_t port = 0;
  { const Socket s = listenOn(0, &port); }
  EXPECT_THROW(TcpClientChannel{port}, NetError);
}

TEST(WireTest, OversizedFrameRejectedOnWrite) {
  std::uint16_t port = 0;
  const Socket listener = listenOn(0, &port);
  Socket client = connectTo(port);
  Frame tooBig(kMaxFrameBytes + 1);
  EXPECT_THROW(writeFrame(client, tooBig), NetError);
}

TEST(WireTest, EphemeralPortAssigned) {
  std::uint16_t port = 0;
  const Socket listener = listenOn(0, &port);
  EXPECT_GT(port, 0u);
}

}  // namespace
}  // namespace dsud
