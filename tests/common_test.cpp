#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/log.hpp"
#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "core/result.hpp"

namespace dsud {
namespace {

// ---------------------------------------------------------------------------
// envOr

TEST(OptionsTest, EnvOrFallsBackWhenUnset) {
  ::unsetenv("DSUD_TEST_UNSET");
  EXPECT_EQ(envOr("DSUD_TEST_UNSET", std::int64_t{7}), 7);
  EXPECT_EQ(envOr("DSUD_TEST_UNSET", 2.5), 2.5);
  EXPECT_EQ(envOr("DSUD_TEST_UNSET", std::string("x")), "x");
}

TEST(OptionsTest, EnvOrParsesValues) {
  ::setenv("DSUD_TEST_INT", "123", 1);
  ::setenv("DSUD_TEST_DBL", "0.75", 1);
  ::setenv("DSUD_TEST_STR", "paper", 1);
  EXPECT_EQ(envOr("DSUD_TEST_INT", std::int64_t{0}), 123);
  EXPECT_EQ(envOr("DSUD_TEST_DBL", 0.0), 0.75);
  EXPECT_EQ(envOr("DSUD_TEST_STR", std::string{}), "paper");
  ::unsetenv("DSUD_TEST_INT");
  ::unsetenv("DSUD_TEST_DBL");
  ::unsetenv("DSUD_TEST_STR");
}

TEST(OptionsTest, EnvOrRejectsGarbage) {
  ::setenv("DSUD_TEST_BAD", "12abc", 1);
  EXPECT_EQ(envOr("DSUD_TEST_BAD", std::int64_t{5}), 5);
  ::setenv("DSUD_TEST_BAD", "", 1);
  EXPECT_EQ(envOr("DSUD_TEST_BAD", std::int64_t{5}), 5);
  ::unsetenv("DSUD_TEST_BAD");
}

// ---------------------------------------------------------------------------
// ArgParser

TEST(ArgParserTest, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "input.txt",
                        "--q=0.5"};
  const ArgParser args(5, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.getInt("n", 0), 100);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", ""), "true");
  EXPECT_EQ(args.getDouble("q", 0.0), 0.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(ArgParserTest, MissingKeysFallBack) {
  const char* argv[] = {"prog"};
  const ArgParser args(1, argv);
  EXPECT_FALSE(args.has("n"));
  EXPECT_EQ(args.getInt("n", 42), 42);
  EXPECT_EQ(args.getDouble("q", 0.25), 0.25);
  EXPECT_EQ(args.get("name", "def"), "def");
}

TEST(ArgParserTest, MalformedNumbersFallBack) {
  const char* argv[] = {"prog", "--n=12x", "--q=oops"};
  const ArgParser args(3, argv);
  EXPECT_EQ(args.getInt("n", 9), 9);
  EXPECT_EQ(args.getDouble("q", 0.1), 0.1);
}

TEST(ArgParserTest, EmptyValueAllowed) {
  const char* argv[] = {"prog", "--out="};
  const ArgParser args(2, argv);
  EXPECT_TRUE(args.has("out"));
  EXPECT_EQ(args.get("out", "def"), "");
}

// ---------------------------------------------------------------------------
// Stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = watch.elapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(watch.elapsedSeconds() * 1e6, watch.elapsedMicros(),
              watch.elapsedMicros() * 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.elapsedMillis(), 15.0);
}

// ---------------------------------------------------------------------------
// Logging

TEST(LogTest, LevelGatesOutput) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  // These must not crash; output (if any) goes to stderr.
  logMessage(LogLevel::kDebug, "suppressed");
  DSUD_LOG(kInfo) << "suppressed " << 42;
  DSUD_LOG(kError) << "emitted";
  setLogLevel(before);
}

// ---------------------------------------------------------------------------
// Result ordering

TEST(ResultTest, SortByGlobalProbabilityWithTies) {
  std::vector<GlobalSkylineEntry> entries(3);
  entries[0].tuple.id = 5;
  entries[0].globalSkyProb = 0.4;
  entries[1].tuple.id = 2;
  entries[1].globalSkyProb = 0.9;
  entries[2].tuple.id = 1;
  entries[2].globalSkyProb = 0.4;
  sortByGlobalProbability(entries);
  EXPECT_EQ(entries[0].tuple.id, 2u);
  EXPECT_EQ(entries[1].tuple.id, 1u);  // tie broken by ascending id
  EXPECT_EQ(entries[2].tuple.id, 5u);
}

}  // namespace
}  // namespace dsud
