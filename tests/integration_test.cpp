// End-to-end scenarios and boundary conditions that cut across modules:
// persistence -> cluster -> query -> updates -> re-query lifecycles, the
// dimensionality ceiling, extreme thresholds, degenerate cluster shapes, and
// repeated sessions on one cluster.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unistd.h>

#include "common/io.hpp"
#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(IntegrationTest, FullLifecycleThroughDisk) {
  // generate -> save -> load -> distribute -> query -> update -> re-query.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("dsud_integration_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "lifecycle.bin").string();

  const Dataset original = generateSynthetic(
      SyntheticSpec{600, 3, ValueDistribution::kAnticorrelated, 1000});
  saveDatasetBinary(original, path);
  const Dataset data = loadDatasetBinary(path);

  InProcCluster cluster(Topology::uniform(data, 5, 1001));
  QueryConfig config;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  const QueryResult initial = maintainer.initialize();
  EXPECT_EQ(testutil::idsOf(initial.skyline).size(),
            linearSkyline(data, {.q = config.q}).size());

  // A dominating insert reshapes the skyline; a delete restores it.
  UpdateEvent insert;
  insert.kind = UpdateEvent::Kind::kInsert;
  insert.site = 0;
  insert.tuple = Tuple{99999, {-1.0, -1.0, -1.0}, 0.99};
  maintainer.apply(insert);
  EXPECT_EQ(maintainer.skyline().front().tuple.id, 99999u);

  UpdateEvent remove;
  remove.kind = UpdateEvent::Kind::kDelete;
  remove.site = 0;
  remove.tuple = insert.tuple;
  maintainer.apply(remove);

  auto ids = testutil::idsOf(maintainer.skyline());
  std::sort(ids.begin(), ids.end());
  auto want = testutil::idsOf(linearSkyline(data, {.q = config.q}));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(ids, want);

  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, MaxDimensionalityEndToEnd) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{300, kMaxDims, ValueDistribution::kIndependent, 1002});
  InProcCluster cluster(Topology::uniform(global, 4, 1003));
  QueryConfig config;
  config.q = 0.5;
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline),
            testutil::idsOf(linearSkyline(global, {.q = config.q})));
}

TEST(IntegrationTest, MoreSitesThanTuples) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{5, 2, ValueDistribution::kIndependent, 1004});
  InProcCluster cluster(Topology::uniform(global, 16, 1005));  // 11 sites end up empty
  QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline),
            testutil::idsOf(linearSkyline(global, {.q = 0.3})));
}

TEST(IntegrationTest, IdenticalCoordinatesEverywhere) {
  // Duplicates never dominate each other: everything with P >= q answers.
  Dataset global(2);
  for (TupleId id = 0; id < 40; ++id) {
    global.add(id, std::vector<double>{0.5, 0.5},
               0.1 + 0.02 * static_cast<double>(id));
  }
  InProcCluster cluster(Topology::uniform(global, 4, 1006));
  QueryConfig config;
  config.q = 0.4;
  const QueryResult result = cluster.engine().runEdsud(config);
  std::size_t expected = 0;
  for (std::size_t row = 0; row < global.size(); ++row) {
    if (global.prob(row) >= config.q) ++expected;
  }
  EXPECT_EQ(result.skyline.size(), expected);
  for (const auto& e : result.skyline) {
    EXPECT_NEAR(e.globalSkyProb, e.tuple.prob, 1e-12);
  }
}

TEST(IntegrationTest, TinyThresholdReturnsEveryPositiveProbability) {
  // q -> 0+ makes every tuple's own probability clear the bar *locally*;
  // globally only genuinely crushed tuples drop out.
  const Dataset global = generateSynthetic(
      SyntheticSpec{120, 2, ValueDistribution::kIndependent, 1007});
  InProcCluster cluster(Topology::uniform(global, 3, 1008));
  QueryConfig config;
  config.q = 1e-9;
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline),
            testutil::idsOf(linearSkyline(global, {.q = config.q})));
}

TEST(IntegrationTest, RepeatedSessionsResetCleanly) {
  // Same cluster, many configurations back to back: session state (pending
  // lists, windows, masks) must fully reset at each prepare.
  const Dataset global = generateSynthetic(
      SyntheticSpec{700, 3, ValueDistribution::kAnticorrelated, 1009});
  InProcCluster cluster(Topology::uniform(global, 6, 1010));

  struct Session {
    double q;
    DimMask mask;
  };
  const Session sessions[] = {{0.3, 0}, {0.7, 0}, {0.3, 0b011},
                              {0.3, 0}, {0.5, 0b101}, {0.3, 0b011}};
  for (const Session& s : sessions) {
    QueryConfig config;
    config.q = s.q;
    config.mask = s.mask;
    QueryResult result = cluster.engine().runEdsud(config);
    sortByGlobalProbability(result.skyline);
    const DimMask mask = config.effectiveMask(3);
    EXPECT_EQ(testutil::idsOf(result.skyline),
              testutil::idsOf(linearSkyline(global, {.mask = mask, .q = s.q})))
        << "q=" << s.q << " mask=" << s.mask;
  }
}

TEST(IntegrationTest, GaussianProbabilityMeanSweepKeepsExactness) {
  // The Fig. 11c/11d regime: verify exactness at every mean, and that the
  // answer count moves with mu (the hump the paper discusses).
  std::vector<std::size_t> counts;
  for (const double mu : {0.3, 0.5, 0.7, 0.9}) {
    const Dataset global =
        generateSynthetic(SyntheticSpec{600, 2,
                                        ValueDistribution::kIndependent, 1011},
                          gaussianProbability(mu, 0.2));
    InProcCluster cluster(Topology::uniform(global, 5, 1012));
    QueryResult result = cluster.engine().runEdsud(QueryConfig{});
    sortByGlobalProbability(result.skyline);
    EXPECT_EQ(testutil::idsOf(result.skyline),
              testutil::idsOf(linearSkyline(global, {.q = 0.3})))
        << "mu=" << mu;
    counts.push_back(result.skyline.size());
  }
  // Not constant across the sweep (the distributional effect is real).
  EXPECT_NE(counts.front(), counts.back());
}

TEST(IntegrationTest, MixedUpdateBurstsAcrossStrategiesAgree) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{300, 2, ValueDistribution::kIndependent, 1013});
  Rng rng(1014);
  const auto siteData = partitionUniform(global, 3, rng);

  InProcCluster incrCluster(Topology::fromPartitions(siteData));
  InProcCluster naiveCluster(Topology::fromPartitions(siteData));
  QueryConfig config;
  SkylineMaintainer incremental(incrCluster.coordinator(), config,
                                MaintenanceStrategy::kIncremental);
  SkylineMaintainer naive(naiveCluster.coordinator(), config,
                          MaintenanceStrategy::kNaiveRecompute);
  incremental.initialize();
  naive.initialize();

  // Burst: delete the entire current skyline, then insert replacements.
  const auto victims = incremental.skyline();
  for (const auto& v : victims) {
    UpdateEvent e;
    e.kind = UpdateEvent::Kind::kDelete;
    e.site = v.site;
    e.tuple = v.tuple;
    incremental.apply(e);
    naive.apply(e);
  }
  Rng insertRng(1015);
  for (TupleId id = 500000; id < 500020; ++id) {
    UpdateEvent e;
    e.kind = UpdateEvent::Kind::kInsert;
    e.site = static_cast<SiteId>(insertRng.below(3));
    e.tuple = Tuple{id, {insertRng.uniform(), insertRng.uniform()},
                    insertRng.existentialUniform()};
    incremental.apply(e);
    naive.apply(e);
  }

  auto a = testutil::idsOf(incremental.skyline());
  auto b = testutil::idsOf(naive.skyline());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace dsud
