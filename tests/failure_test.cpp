// Failure injection: a site that dies mid-query must surface as a clean
// transport exception from the query call — never a hang, a crash, or a
// silently wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/cluster.hpp"
#include "core/query_engine.hpp"
#include "core/local_site.hpp"
#include "core/site_handle.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/inproc_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"

namespace dsud {
namespace {

/// Channel that works for `healthyCalls` requests, then fails forever.
class FlakyChannel final : public ClientChannel {
 public:
  FlakyChannel(FrameHandler handler, std::size_t healthyCalls)
      : inner_(std::move(handler)), remaining_(healthyCalls) {}

  Frame call(const Frame& request) override {
    if (remaining_ == 0) throw NetError("injected link failure");
    --remaining_;
    return inner_.call(request);
  }

 private:
  InProcChannel inner_;
  std::size_t remaining_;
};

struct FailingCluster {
  std::vector<std::unique_ptr<LocalSite>> sites;
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::unique_ptr<BandwidthMeter> meter = std::make_unique<BandwidthMeter>();
  std::unique_ptr<Coordinator> coordinator;
  std::unique_ptr<QueryEngine> engine;
};

/// Builds a cluster where site `victim` fails after `healthyCalls` RPCs.
FailingCluster makeCluster(std::size_t m, SiteId victim,
                           std::size_t healthyCalls) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{400, 2, ValueDistribution::kIndependent, 970});
  Rng rng(971);
  const auto siteData = partitionUniform(global, m, rng);

  FailingCluster cluster;
  std::vector<std::unique_ptr<SiteHandle>> handles;
  for (std::size_t i = 0; i < m; ++i) {
    cluster.sites.push_back(
        std::make_unique<LocalSite>(static_cast<SiteId>(i), siteData[i]));
    cluster.servers.push_back(
        std::make_unique<SiteServer>(*cluster.sites.back()));
    std::unique_ptr<ClientChannel> channel;
    if (i == victim) {
      channel = std::make_unique<FlakyChannel>(
          cluster.servers.back()->handler(), healthyCalls);
    } else {
      channel =
          std::make_unique<InProcChannel>(cluster.servers.back()->handler());
    }
    handles.push_back(std::make_unique<RpcSiteHandle>(
        static_cast<SiteId>(i), std::move(channel), cluster.meter.get()));
  }
  cluster.coordinator =
      std::make_unique<Coordinator>(std::move(handles), cluster.meter.get(), 2);
  cluster.engine = std::make_unique<QueryEngine>(*cluster.coordinator);
  return cluster;
}

TEST(FailureTest, DeathDuringPrepareSurfaces) {
  FailingCluster cluster = makeCluster(4, 2, 0);
  EXPECT_THROW(cluster.engine->runEdsud(QueryConfig{}), NetError);
}

TEST(FailureTest, DeathMidQuerySurfacesFromEveryAlgorithm) {
  // Calibrate: how many RPCs does the victim serve in a healthy run?  Then
  // give the flaky link only part of that budget so it dies mid-protocol.
  FailingCluster healthy = makeCluster(4, 1, std::size_t(-1));
  healthy.engine->runEdsud(QueryConfig{});
  const std::uint64_t victimCalls = healthy.meter->link(1).calls;
  ASSERT_GT(victimCalls, 4u);

  // The last frame on every link is the best-effort kFinishQuery teardown
  // (see below), so the largest mid-protocol budget is victimCalls - 2.
  for (const std::size_t healthyCalls :
       {std::size_t{3}, static_cast<std::size_t>(victimCalls / 2),
        static_cast<std::size_t>(victimCalls - 2)}) {
    FailingCluster edsud = makeCluster(4, 1, healthyCalls);
    EXPECT_THROW(edsud.engine->runEdsud(QueryConfig{}), NetError)
        << "budget " << healthyCalls;

    FailingCluster dsud = makeCluster(4, 1, healthyCalls);
    EXPECT_THROW(dsud.engine->runDsud(QueryConfig{}), NetError)
        << "budget " << healthyCalls;
  }
  FailingCluster naive = makeCluster(4, 3, 0);
  EXPECT_THROW(naive.engine->runNaive(QueryConfig{}), NetError);

  // Losing only the final kFinishQuery teardown frame must NOT fail the
  // query: session release is best-effort and carries no answer data.
  FailingCluster teardown = makeCluster(4, 1, victimCalls - 1);
  const QueryResult result = teardown.engine->runEdsud(QueryConfig{});
  EXPECT_FALSE(result.skyline.empty());
}

TEST(FailureTest, DeathSurfacesThroughParallelBroadcast) {
  FailingCluster cluster = makeCluster(6, 2, 8);
  QueryOptions fanOut;
  fanOut.broadcastThreads = 3;
  EXPECT_THROW(cluster.engine->runEdsud(QueryConfig{}, fanOut), NetError);
}

TEST(FailureTest, HealthyRunAfterRebuildingIsUnaffected) {
  // The failure is per-cluster state; a fresh cluster over the same data
  // answers normally (no global/static state was poisoned).
  FailingCluster broken = makeCluster(4, 1, 5);
  EXPECT_THROW(broken.engine->runEdsud(QueryConfig{}), NetError);

  FailingCluster healthy = makeCluster(4, 1, std::size_t(-1));
  const QueryResult result = healthy.engine->runEdsud(QueryConfig{});
  EXPECT_FALSE(result.skyline.empty());
}

TEST(FailureTest, TcpPeerDisconnectSurfacesAsNetError) {
  // A real socket torn down mid-conversation.
  TcpSiteServer server([](const Frame& f) { return f; });
  std::thread serverThread([&server] { server.serve(); });

  auto channel = std::make_unique<TcpClientChannel>(server.port());
  const Frame ping(4, std::byte{1});
  EXPECT_EQ(channel->call(ping), ping);

  // Disconnect: the server loop exits when the client closes...
  channel->close();
  serverThread.join();
  // ...and further calls on the closed channel fail loudly.
  EXPECT_THROW(channel->call(ping), NetError);
}

TEST(FailureTest, HungTcpPeerFailsAtDeadlineInsteadOfHanging) {
  // A peer that accepts the connection and reads the request but does not
  // reply within the caller's deadline.  Without SO_RCVTIMEO this call
  // blocks for the peer's full think time; with a deadline it must fail
  // fast with NetTimeout.
  TcpSiteServer server([](const Frame& f) {
    std::this_thread::sleep_for(std::chrono::milliseconds{500});
    return f;
  });
  std::thread serverThread([&server] {
    try {
      server.serve();
    } catch (const NetError&) {
      // Writing the late reply to the poisoned connection may fail; either
      // way the loop ends on the client's disconnect.
    }
  });

  TcpClientChannel channel(server.port());
  channel.setDeadline(std::chrono::milliseconds{50});
  const Frame ping(4, std::byte{1});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(channel.call(ping), NetTimeout);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::milliseconds{450})
      << "the deadline must bound the wait, not the peer's think time";

  // The timed-out stream is desynchronised (the late reply could be misread
  // as a later call's response), so the channel is poisoned: further calls
  // fail loudly instead of silently mixing frames.
  EXPECT_THROW(channel.call(ping), NetError);
  serverThread.join();
}

}  // namespace
}  // namespace dsud
