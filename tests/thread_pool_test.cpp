#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++inside;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --inside;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 50);
}

TEST(ParallelBroadcastTest, MatchesSequentialExactly) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{3000, 3, ValueDistribution::kAnticorrelated, 750});

  InProcCluster sequential(Topology::uniform(global, 16, 751));
  InProcCluster parallel(Topology::uniform(global, 16, 751));
  QueryOptions fanOut;
  fanOut.broadcastThreads = 4;

  const QueryResult a = sequential.engine().runEdsud(QueryConfig{});
  const QueryResult b = parallel.engine().runEdsud(QueryConfig{}, fanOut);

  ASSERT_EQ(a.skyline.size(), b.skyline.size());
  for (std::size_t i = 0; i < a.skyline.size(); ++i) {
    EXPECT_EQ(a.skyline[i].tuple.id, b.skyline[i].tuple.id);
    // Ordered reduction: bit-for-bit identical probabilities.
    EXPECT_EQ(a.skyline[i].globalSkyProb, b.skyline[i].globalSkyProb);
  }
  EXPECT_EQ(a.stats.tuplesShipped, b.stats.tuplesShipped);
  EXPECT_EQ(a.stats.broadcasts, b.stats.broadcasts);
}

TEST(ParallelBroadcastTest, WorksForDsudAndUpdatesToo) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kIndependent, 752});
  InProcCluster cluster(Topology::uniform(global, 8, 753));
  QueryOptions fanOut;
  fanOut.broadcastThreads = 3;

  QueryResult dsud = cluster.engine().runDsud(QueryConfig{}, fanOut);
  sortByGlobalProbability(dsud.skyline);
  EXPECT_EQ(testutil::idsOf(dsud.skyline),
            testutil::idsOf(linearSkyline(global, {.q = 0.3})));

  // Default options: back to the sequential path.
  QueryResult again = cluster.engine().runDsud(QueryConfig{});
  sortByGlobalProbability(again.skyline);
  EXPECT_EQ(testutil::idsOf(again.skyline), testutil::idsOf(dsud.skyline));
}

}  // namespace
}  // namespace dsud
