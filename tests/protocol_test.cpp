#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "core/local_site.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

Tuple sampleTuple() {
  return Tuple{42, {1.5, -2.5, 3.25}, 0.625};
}

template <typename Msg>
Msg reencode(const Msg& msg) {
  ByteWriter w;
  msg.encode(w);
  ByteReader r(w.bytes());
  Msg out = Msg::decode(r);
  r.expectEnd();
  return out;
}

TEST(ProtocolTest, TupleRoundTrip) {
  ByteWriter w;
  encodeTuple(w, sampleTuple());
  ByteReader r(w.bytes());
  const Tuple t = decodeTuple(r);
  EXPECT_EQ(t, sampleTuple());
  r.expectEnd();
}

TEST(ProtocolTest, CandidateRoundTrip) {
  Candidate c;
  c.site = 7;
  c.tuple = sampleTuple();
  c.localSkyProb = 0.375;
  EXPECT_EQ(reencode(c), c);
}

TEST(ProtocolTest, PrepareRequestRoundTrip) {
  PrepareRequest msg;
  msg.query = 77;
  msg.q = 0.45;
  msg.mask = 0b101;
  msg.prune = PruneRule::kDominance;
  const PrepareRequest out = reencode(msg);
  EXPECT_EQ(out.query, 77u);
  EXPECT_EQ(out.q, 0.45);
  EXPECT_EQ(out.mask, 0b101u);
  EXPECT_EQ(out.prune, PruneRule::kDominance);
}

TEST(ProtocolTest, PrepareRequestCarriesTraceSettings) {
  PrepareRequest msg;
  msg.query = 9;
  msg.traceCapacity = 4096;
  msg.tracePiggyback = true;
  const PrepareRequest out = reencode(msg);
  EXPECT_EQ(out.traceCapacity, 4096u);
  EXPECT_TRUE(out.tracePiggyback);
  // The defaults (tracing off) must survive the wire too.
  const PrepareRequest off = reencode(PrepareRequest{});
  EXPECT_EQ(off.traceCapacity, 0u);
  EXPECT_FALSE(off.tracePiggyback);
}

obs::QueryTrace sampleTrace() {
  obs::QueryTrace trace;
  obs::TraceEvent prepare;
  prepare.name = "site.prepare";
  prepare.startNs = 1'000;
  prepare.endNs = 2'500;
  prepare.attrs = {{"tuples", 400.0}, {"pruned", 123.0}};
  obs::TraceEvent next;
  next.name = "site.next";
  next.parent = 0;
  next.startNs = 3'000;
  next.endNs = 0;  // still open: snapshot semantics
  next.attrs = {{"seq", 1.0}};
  trace.events = {prepare, next};
  trace.droppedEvents = 7;
  return trace;
}

void expectTraceEq(const obs::QueryTrace& out, const obs::QueryTrace& in) {
  EXPECT_EQ(out.droppedEvents, in.droppedEvents);
  ASSERT_EQ(out.events.size(), in.events.size());
  for (std::size_t i = 0; i < in.events.size(); ++i) {
    EXPECT_EQ(out.events[i].name, in.events[i].name);
    EXPECT_EQ(out.events[i].parent, in.events[i].parent);
    EXPECT_EQ(out.events[i].startNs, in.events[i].startNs);
    EXPECT_EQ(out.events[i].endNs, in.events[i].endNs);
    EXPECT_EQ(out.events[i].attrs, in.events[i].attrs);
  }
}

TEST(ProtocolTest, TraceBlockRoundTrip) {
  const obs::QueryTrace trace = sampleTrace();
  ByteWriter w;
  encodeTraceBlock(w, trace);
  ByteReader r(w.bytes());
  const obs::QueryTrace out = decodeTraceBlock(r);
  r.expectEnd();
  expectTraceEq(out, trace);

  ByteWriter empty;
  encodeTraceBlock(empty, obs::QueryTrace{});
  ByteReader re(empty.bytes());
  const obs::QueryTrace none = decodeTraceBlock(re);
  re.expectEnd();
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.droppedEvents, 0u);
}

TEST(ProtocolTest, FetchTraceMessagesRoundTrip) {
  FetchTraceRequest req;
  req.query = 321;
  EXPECT_EQ(reencode(req).query, 321u);

  FetchTraceResponse resp;
  resp.trace = sampleTrace();
  ByteWriter w;
  resp.encode(w);
  ByteReader r(w.bytes());
  const FetchTraceResponse out = FetchTraceResponse::decode(r);
  r.expectEnd();
  expectTraceEq(out.trace, resp.trace);
}

TEST(ProtocolTest, ResponseFrameWithAndWithoutTraceTrailer) {
  NextCandidateResponse msg;
  msg.candidate = Candidate{3, sampleTuple(), 0.5};

  // No trailer: decodes exactly like fromResponseFrame; sink untouched.
  const Frame bare = toResponseFrame(msg);
  obs::QueryTrace sink;
  const auto plain = fromResponseFrameWithTrace<NextCandidateResponse>(
      bare, &sink);
  ASSERT_TRUE(plain.candidate.has_value());
  EXPECT_EQ(plain.candidate->tuple, sampleTuple());
  EXPECT_TRUE(sink.empty());

  // Trailer: spans append to the sink, dropped counts accumulate.
  ByteWriter w;
  msg.encode(w);
  encodeTraceBlock(w, sampleTrace());
  const Frame traced{w.bytes().begin(), w.bytes().end()};
  const auto decoded = fromResponseFrameWithTrace<NextCandidateResponse>(
      traced, &sink);
  ASSERT_TRUE(decoded.candidate.has_value());
  expectTraceEq(sink, sampleTrace());
  const auto again = fromResponseFrameWithTrace<NextCandidateResponse>(
      traced, &sink);
  EXPECT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(sink.droppedEvents, 14u);

  // A null sink discards the trailer without failing the decode.
  const auto dropped = fromResponseFrameWithTrace<NextCandidateResponse>(
      traced, nullptr);
  EXPECT_TRUE(dropped.candidate.has_value());
}

TEST(ProtocolTest, NextCandidateRequestCarriesQueryId) {
  NextCandidateRequest msg;
  msg.query = 12345;
  EXPECT_EQ(reencode(msg).query, 12345u);
}

TEST(ProtocolTest, NextCandidateRequestCarriesReplaySeq) {
  NextCandidateRequest msg;
  msg.query = 12345;
  msg.seq = 77;
  const auto out = reencode(msg);
  EXPECT_EQ(out.query, 12345u);
  EXPECT_EQ(out.seq, 77u);
  // seq 0 = no replay protection; must survive the wire unchanged.
  EXPECT_EQ(reencode(NextCandidateRequest{}).seq, 0u);
}

TEST(ProtocolTest, FinishQueryRoundTrip) {
  FinishQueryRequest msg;
  msg.query = 9;
  EXPECT_EQ(reencode(msg).query, 9u);
}

TEST(ProtocolTest, NextCandidateResponseEmptyAndFull) {
  NextCandidateResponse empty;
  EXPECT_FALSE(reencode(empty).candidate.has_value());

  NextCandidateResponse full;
  full.candidate = Candidate{3, sampleTuple(), 0.5};
  const auto out = reencode(full);
  ASSERT_TRUE(out.candidate.has_value());
  EXPECT_EQ(*out.candidate, *full.candidate);
}

TEST(ProtocolTest, EvaluateRoundTrip) {
  EvaluateRequest req;
  req.query = 5;
  req.tuple = sampleTuple();
  req.mask = 0b011;
  req.pruneLocal = false;
  req.seq = 4096;
  const auto reqOut = reencode(req);
  EXPECT_EQ(reqOut.query, 5u);
  EXPECT_EQ(reqOut.tuple, sampleTuple());
  EXPECT_EQ(reqOut.mask, 0b011u);
  EXPECT_FALSE(reqOut.pruneLocal);
  EXPECT_EQ(reqOut.seq, 4096u);

  EvaluateResponse resp;
  resp.survival = 0.123;
  resp.prunedCount = 9;
  const auto respOut = reencode(resp);
  EXPECT_EQ(respOut.survival, 0.123);
  EXPECT_EQ(respOut.prunedCount, 9u);
}

TEST(ProtocolTest, ShipAllRoundTrip) {
  ShipAllResponse msg;
  msg.tuples = {sampleTuple(), Tuple{1, {0.0, 0.0, 0.0}, 1.0}};
  const auto out = reencode(msg);
  EXPECT_EQ(out.tuples, msg.tuples);
}

TEST(ProtocolTest, ApplyInsertRoundTrip) {
  ApplyInsertResponse msg;
  msg.localSkyProb = 0.5;
  msg.globalUpperBound = 0.25;
  msg.dominatedReplica = {1, 2, 3};
  msg.datasetVersion = 41;
  const auto out = reencode(msg);
  EXPECT_EQ(out.localSkyProb, 0.5);
  EXPECT_EQ(out.globalUpperBound, 0.25);
  EXPECT_EQ(out.dominatedReplica, (std::vector<TupleId>{1, 2, 3}));
  EXPECT_EQ(out.datasetVersion, 41u);
}

TEST(ProtocolTest, ApplyDeleteRoundTrip) {
  ApplyDeleteRequest req;
  req.id = 99;
  req.values = {4.0, 5.0};
  const auto reqOut = reencode(req);
  EXPECT_EQ(reqOut.id, 99u);
  EXPECT_EQ(reqOut.values, req.values);

  ApplyDeleteResponse resp;
  resp.existed = true;
  resp.prob = 0.75;
  resp.datasetVersion = 7;
  const auto respOut = reencode(resp);
  EXPECT_TRUE(respOut.existed);
  EXPECT_EQ(respOut.prob, 0.75);
  EXPECT_EQ(respOut.datasetVersion, 7u);
}

TEST(ProtocolTest, RepairDeleteRoundTrip) {
  RepairDeleteRequest req;
  req.deleted = sampleTuple();
  req.origin = 4;
  req.q = 0.4;
  req.mask = 0b110;
  const auto reqOut = reencode(req);
  EXPECT_EQ(reqOut.deleted, sampleTuple());
  EXPECT_EQ(reqOut.origin, 4u);
  EXPECT_EQ(reqOut.q, 0.4);
  EXPECT_EQ(reqOut.mask, 0b110u);

  RepairDeleteResponse resp;
  resp.candidates = {Candidate{1, sampleTuple(), 0.5}};
  const auto respOut = reencode(resp);
  ASSERT_EQ(respOut.candidates.size(), 1u);
  EXPECT_EQ(respOut.candidates[0], resp.candidates[0]);
}

TEST(ProtocolTest, ReplicaMessagesRoundTrip) {
  ReplicaAddRequest add;
  add.entry = Candidate{2, sampleTuple(), 0.5};
  add.globalSkyProb = 0.4;
  const auto addOut = reencode(add);
  EXPECT_EQ(addOut.entry, add.entry);
  EXPECT_EQ(addOut.globalSkyProb, 0.4);

  ReplicaRemoveRequest remove;
  remove.id = 1234;
  EXPECT_EQ(reencode(remove).id, 1234u);
}

TEST(ProtocolTest, QueryConfigEffectiveMask) {
  QueryConfig config;
  EXPECT_EQ(config.effectiveMask(3), fullMask(3));
  config.mask = 0b01;
  EXPECT_EQ(config.effectiveMask(3), 0b01u);
}

// ---------------------------------------------------------------------------
// SiteServer dispatch

TEST(SiteServerTest, DispatchesPrepareAndCandidates) {
  const Dataset db = testutil::makeDataset(2, {
                                                  {1.0, 1.0, 0.9},
                                                  {2.0, 2.0, 0.9},
                                              });
  LocalSite site(0, db);
  SiteServer server(site);

  PrepareRequest prep;
  prep.q = 0.3;
  const Frame prepResp = server.handle(toFrame(MsgType::kPrepare, prep));
  EXPECT_EQ(fromResponseFrame<PrepareResponse>(prepResp).localSkylineSize, 1u);

  const Frame candResp =
      server.handle(toFrame(MsgType::kNextCandidate, NextCandidateRequest{}));
  const auto cand = fromResponseFrame<NextCandidateResponse>(candResp);
  ASSERT_TRUE(cand.candidate.has_value());
  EXPECT_EQ(cand.candidate->tuple.values, (std::vector<double>{1.0, 1.0}));
}

TEST(SiteServerTest, DispatchesFinishQueryAndReleasesSession) {
  const Dataset db = testutil::makeDataset(2, {{1.0, 1.0, 0.9}});
  LocalSite site(0, db);
  SiteServer server(site);

  PrepareRequest prep;
  prep.query = 42;
  prep.q = 0.3;
  server.handle(toFrame(MsgType::kPrepare, prep));
  EXPECT_EQ(site.sessionCount(), 1u);

  FinishQueryRequest finish;
  finish.query = 42;
  server.handle(toFrame(MsgType::kFinishQuery, finish));
  EXPECT_EQ(site.sessionCount(), 0u);
  // Idempotent: finishing an unknown query is a no-op.
  server.handle(toFrame(MsgType::kFinishQuery, finish));
  EXPECT_EQ(site.sessionCount(), 0u);
}

TEST(SiteServerTest, InterleavedSessionsKeepIndependentCursors) {
  const Dataset db = testutil::makeDataset(2, {
                                                  {1.0, 4.0, 0.9},
                                                  {4.0, 1.0, 0.9},
                                              });
  LocalSite site(0, db);

  PrepareRequest a;
  a.query = 1;
  a.q = 0.3;
  PrepareRequest b;
  b.query = 2;
  b.q = 0.3;
  site.prepare(a);
  site.prepare(b);
  EXPECT_EQ(site.sessionCount(), 2u);

  NextCandidateRequest pullA;
  pullA.query = 1;
  NextCandidateRequest pullB;
  pullB.query = 2;
  // Draining session 1 must not move session 2's cursor.
  ASSERT_TRUE(site.nextCandidate(pullA).candidate.has_value());
  ASSERT_TRUE(site.nextCandidate(pullA).candidate.has_value());
  EXPECT_FALSE(site.nextCandidate(pullA).candidate.has_value());
  EXPECT_EQ(site.pendingCount(1), 0u);
  EXPECT_EQ(site.pendingCount(2), 2u);
  ASSERT_TRUE(site.nextCandidate(pullB).candidate.has_value());

  site.finishQuery(FinishQueryRequest{1});
  site.finishQuery(FinishQueryRequest{2});
  EXPECT_EQ(site.sessionCount(), 0u);
}

TEST(SiteServerTest, UnknownTypeThrows) {
  const Dataset db = testutil::makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  SiteServer server(site);
  ByteWriter w;
  w.putU8(200);  // not a MsgType
  const Frame bogus = std::move(w).take();
  EXPECT_THROW(server.handle(bogus), SerializeError);
}

TEST(SiteServerTest, TrailingGarbageRejected) {
  const Dataset db = testutil::makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  SiteServer server(site);
  Frame frame = toFrame(MsgType::kNextCandidate, NextCandidateRequest{});
  frame.push_back(std::byte{0});
  EXPECT_THROW(server.handle(frame), SerializeError);
}

TEST(SiteServerTest, TruncatedBodyRejected) {
  const Dataset db = testutil::makeDataset(2, {{1.0, 1.0, 0.5}});
  LocalSite site(0, db);
  SiteServer server(site);
  Frame frame = toFrame(MsgType::kPrepare, PrepareRequest{});
  frame.resize(frame.size() - 2);
  EXPECT_THROW(server.handle(frame), SerializeError);
}

}  // namespace
}  // namespace dsud
