// Cross-site distributed tracing: the NTP-style clock alignment and span
// merge (obs/merge.hpp), the explicit-parent tracer API it builds on, and
// the end-to-end pipeline — site-side spans shipped piggybacked (in-process)
// or via kFetchTrace (TCP), merged into the coordinator's timeline so every
// site span lands INSIDE its parent RPC span, exported as Perfetto-loadable
// JSON, and dumped by the slow-query log.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "core/site_handle.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/tcp_transport.hpp"
#include "obs/export.hpp"
#include "obs/merge.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

std::optional<double> attrOf(const obs::TraceEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.attrs) {
    if (k == key) return v;
  }
  return std::nullopt;
}

bool isSiteSpan(const obs::TraceEvent& e) {
  return e.name.rfind("site.", 0) == 0 && e.name != "site.dead";
}

/// The acceptance criterion: every merged site span sits strictly inside
/// its parent span's [start, end] window, and carries its origin site.
void expectSiteSpansContained(const obs::QueryTrace& trace) {
  std::size_t siteSpans = 0;
  for (const obs::TraceEvent& e : trace.events) {
    if (!isSiteSpan(e)) continue;
    ++siteSpans;
    ASSERT_NE(e.parent, obs::kNoSpan) << e.name;
    ASSERT_LT(e.parent, trace.events.size()) << e.name;
    const obs::TraceEvent& parent = trace.events[e.parent];
    EXPECT_GE(e.startNs, parent.startNs)
        << e.name << " starts before its parent " << parent.name;
    EXPECT_LE(e.endNs, parent.endNs)
        << e.name << " ends after its parent " << parent.name;
    EXPECT_GE(e.endNs, e.startNs) << e.name;
    EXPECT_TRUE(attrOf(e, "site").has_value()) << e.name;
  }
  EXPECT_GT(siteSpans, 0u) << "no site spans reached the coordinator";
}

/// Per-site merge summaries, keyed by site id.
std::vector<const obs::TraceEvent*> mergeSummaries(
    const obs::QueryTrace& trace) {
  std::vector<const obs::TraceEvent*> out;
  for (const obs::TraceEvent& e : trace.events) {
    if (e.name == "merge.site") out.push_back(&e);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer: explicit-parent spans and idempotent snapshots

TEST(TracerExplicitParentTest, DoesNotBecomeImplicitParent) {
  obs::Tracer tracer(8);
  const obs::SpanId a = tracer.begin("a");
  const obs::SpanId b = tracer.begin("b", a);  // explicit parent
  const obs::SpanId c = tracer.begin("c");     // implicit parent: still a
  tracer.end(c);
  tracer.end(b);
  tracer.end(a);
  const obs::QueryTrace trace = tracer.take();
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[b].parent, a);
  EXPECT_EQ(trace.events[c].parent, a)
      << "an explicit-parent span must not join the open-span stack";
}

TEST(TracerExplicitParentTest, RespectsCapAndNoSpanParent) {
  obs::Tracer tracer(1);
  const obs::SpanId a = tracer.begin("a");
  EXPECT_EQ(tracer.begin("over", a), obs::kNoSpan);  // past the cap
  tracer.end(a);
  obs::Tracer unrooted(4);
  const obs::SpanId flat = unrooted.begin("flat", obs::kNoSpan);
  unrooted.end(flat);
  const obs::QueryTrace trace = unrooted.take();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].parent, obs::kNoSpan);
}

TEST(TracerSnapshotTest, CopiesWithoutClearingAndKeepsOpenSpans) {
  obs::Tracer tracer(8);
  const obs::SpanId a = tracer.begin("a");
  tracer.end(a);
  const obs::SpanId open = tracer.begin("open");
  const obs::QueryTrace first = tracer.snapshot();
  const obs::QueryTrace second = tracer.snapshot();  // idempotent read
  ASSERT_EQ(first.events.size(), 2u);
  EXPECT_EQ(first.events[open].endNs, 0u) << "snapshot must not close spans";
  ASSERT_EQ(second.events.size(), 2u);
  EXPECT_EQ(second.events[a].endNs, first.events[a].endNs);
  tracer.end(open);
  EXPECT_EQ(tracer.take().events.size(), 2u)
      << "snapshot must leave the trace in place";
}

// ---------------------------------------------------------------------------
// mergeSiteTraces: offset estimation, clamping, matching

/// Hand-built coordinator trace: root [0, 10ms] with one prepare, one pull
/// and one evaluate RPC addressed to site 0.
obs::QueryTrace coordinatorFixture() {
  obs::QueryTrace trace;
  auto add = [&trace](std::string name, obs::SpanId parent, std::uint64_t s,
                      std::uint64_t e,
                      std::vector<std::pair<std::string, double>> attrs) {
    obs::TraceEvent event;
    event.name = std::move(name);
    event.parent = parent;
    event.startNs = s;
    event.endNs = e;
    event.attrs = std::move(attrs);
    trace.events.push_back(std::move(event));
    return static_cast<obs::SpanId>(trace.events.size() - 1);
  };
  add("query.test", obs::kNoSpan, 0, 10'000'000, {});
  add("rpc.prepare", 0, 1'000'000, 2'000'000, {{"site", 0.0}});
  add("pull", 0, 3'000'000, 4'000'000, {{"site", 0.0}, {"seq", 1.0}});
  add("rpc.evaluate", 0, 5'000'000, 6'000'000, {{"site", 0.0}, {"seq", 1.0}});
  return trace;
}

obs::TraceEvent siteEvent(std::string name, std::uint64_t s, std::uint64_t e,
                          std::vector<std::pair<std::string, double>> attrs) {
  obs::TraceEvent event;
  event.name = std::move(name);
  event.parent = obs::kNoSpan;  // site traces ship flat
  event.startNs = s;
  event.endNs = e;
  event.attrs = std::move(attrs);
  return event;
}

TEST(MergeSiteTracesTest, MinDelaySampleAlignsAllSpansIntoTheirParents) {
  obs::QueryTrace trace = coordinatorFixture();

  // Site clock runs 1ms behind the coordinator's.  The pull pair has the
  // smallest delay (RPC 1ms, site work 0.8ms), so its midpoint difference —
  // exactly +1ms — is the offset applied to every span.
  obs::QueryTrace site;
  site.events.push_back(
      siteEvent("site.prepare", 450'000, 550'000, {{"nodes", 4.0}}));
  site.events.push_back(
      siteEvent("site.next", 2'100'000, 2'900'000, {{"seq", 1.0}}));
  site.events.push_back(
      siteEvent("site.evaluate", 4'450'000, 4'560'000, {{"seq", 1.0}}));

  const std::vector<obs::SiteTraceInput> inputs = {{0, &site}};
  obs::mergeSiteTraces(trace, inputs);

  ASSERT_EQ(trace.events.size(), 4u + 3u + 1u);  // + merged spans + summary
  const auto summaries = mergeSummaries(trace);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(attrOf(*summaries[0], "offset_ns"), 1'000'000.0);
  EXPECT_EQ(attrOf(*summaries[0], "delay_ns"), 200'000.0);
  EXPECT_EQ(attrOf(*summaries[0], "samples"), 3.0);
  EXPECT_EQ(attrOf(*summaries[0], "matched"), 3.0);
  EXPECT_EQ(attrOf(*summaries[0], "unmatched"), 0.0);
  EXPECT_EQ(attrOf(*summaries[0], "clamped"), 0.0);

  // Every span mapped by exactly +1ms, parented under its RPC.
  const obs::TraceEvent& prepare = trace.events[4];
  EXPECT_EQ(prepare.name, "site.prepare");
  EXPECT_EQ(prepare.parent, obs::SpanId{1});
  EXPECT_EQ(prepare.startNs, 1'450'000u);
  EXPECT_EQ(prepare.endNs, 1'550'000u);
  EXPECT_EQ(attrOf(prepare, "nodes"), 4.0) << "site attrs must survive";
  const obs::TraceEvent& next = trace.events[5];
  EXPECT_EQ(next.parent, obs::SpanId{2});
  EXPECT_EQ(next.startNs, 3'100'000u);
  const obs::TraceEvent& eval = trace.events[6];
  EXPECT_EQ(eval.parent, obs::SpanId{3});
  EXPECT_EQ(eval.startNs, 5'450'000u);
  EXPECT_EQ(eval.endNs, 5'560'000u);

  expectSiteSpansContained(trace);
}

TEST(MergeSiteTracesTest, RetriedAndReplaySamplesAreExcludedFromTheOffset) {
  obs::QueryTrace trace = coordinatorFixture();
  // A retried evaluate whose midpoint would yield a wildly different (and
  // tempting: lowest-delay) offset sample.
  trace.events.push_back(siteEvent("rpc.evaluate", 8'000'000, 9'000'000,
                                   {{"site", 0.0},
                                    {"seq", 2.0},
                                    {"attempts", 2.0},
                                    {"breaker_state", 0.0}}));
  trace.events.back().parent = 0;

  obs::QueryTrace site;
  site.events.push_back(siteEvent("site.prepare", 450'000, 550'000, {}));
  // Clean sample: offset +1ms, delay 0.9ms.
  site.events.push_back(
      siteEvent("site.next", 2'450'000, 2'550'000, {{"seq", 1.0}}));
  // Replayed op: would be delay 0.8ms — must not be sampled.
  site.events.push_back(siteEvent("site.evaluate", 4'400'000, 4'600'000,
                                  {{"seq", 1.0}, {"replay", 1.0}}));
  // Matched to the retried RPC: delay 0.1ms — must not be sampled either.
  site.events.push_back(
      siteEvent("site.evaluate", 2'000'000, 2'900'000, {{"seq", 2.0}}));

  const std::vector<obs::SiteTraceInput> inputs = {{0, &site}};
  obs::mergeSiteTraces(trace, inputs);

  const auto summaries = mergeSummaries(trace);
  ASSERT_EQ(summaries.size(), 1u);
  // Only the prepare and next pairs were sampled; next (delay 0.9ms) beats
  // prepare (delay 0.9ms... prepare is also 0.9ms but next was taken last on
  // a strict '<', so prepare's +1ms offset stands either way).
  EXPECT_EQ(attrOf(*summaries[0], "samples"), 2.0);
  EXPECT_EQ(attrOf(*summaries[0], "offset_ns"), 1'000'000.0);

  // The replayed and retried spans still merged — attached and clamped.
  EXPECT_EQ(attrOf(*summaries[0], "matched"), 4.0);
  EXPECT_GE(attrOf(*summaries[0], "clamped").value(), 1.0)
      << "the seq-2 span maps outside its retried RPC and must clamp";
  expectSiteSpansContained(trace);
}

TEST(MergeSiteTracesTest, UnmatchedSpansAttachUnderRootAndClampToIt) {
  obs::QueryTrace trace = coordinatorFixture();
  obs::QueryTrace site;
  // No rpc counterpart (maintenance span), and timestamps past the root end.
  site.events.push_back(
      siteEvent("site.insert", 11'000'000, 12'000'000, {{"replica", 1.0}}));

  const std::vector<obs::SiteTraceInput> inputs = {{0, &site}};
  obs::mergeSiteTraces(trace, inputs);

  const auto summaries = mergeSummaries(trace);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(attrOf(*summaries[0], "matched"), 0.0);
  EXPECT_EQ(attrOf(*summaries[0], "unmatched"), 1.0);
  EXPECT_EQ(attrOf(*summaries[0], "samples"), 0.0);
  EXPECT_EQ(attrOf(*summaries[0], "offset_ns"), 0.0)
      << "no clean sample leaves the offset at zero";

  const obs::TraceEvent& merged = trace.events[4];
  EXPECT_EQ(merged.name, "site.insert");
  EXPECT_EQ(merged.parent, obs::SpanId{0});
  EXPECT_LE(merged.endNs, trace.events[0].endNs);
  expectSiteSpansContained(trace);
}

TEST(MergeSiteTracesTest, EmptyInputsAreNoOps) {
  obs::QueryTrace trace = coordinatorFixture();
  const std::size_t before = trace.events.size();
  obs::QueryTrace empty;
  const std::vector<obs::SiteTraceInput> inputs = {{0, &empty}, {1, nullptr}};
  obs::mergeSiteTraces(trace, inputs);
  EXPECT_EQ(trace.events.size(), before);

  obs::QueryTrace none;  // merging into an empty trace is a no-op too
  obs::QueryTrace site;
  site.events.push_back(siteEvent("site.prepare", 0, 1, {}));
  const std::vector<obs::SiteTraceInput> one = {{0, &site}};
  obs::mergeSiteTraces(none, one);
  EXPECT_TRUE(none.events.empty());
}

// ---------------------------------------------------------------------------
// End-to-end: piggyback over the in-process transport

TEST(SiteTraceE2ETest, PiggybackMergesEverySiteSpanInsideItsRpc) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{900, 3, ValueDistribution::kAnticorrelated, 501});
  InProcCluster cluster(Topology::uniform(global, 5, 502));
  QueryOptions options;
  options.siteTrace = SiteTraceMode::kPiggyback;

  const QueryResult result = cluster.engine().runEdsud(QueryConfig{}, options);

  ASSERT_FALSE(result.trace.empty());
  expectSiteSpansContained(result.trace);
  const auto summaries = mergeSummaries(result.trace);
  ASSERT_EQ(summaries.size(), 5u) << "one merge summary per site";
  for (const obs::TraceEvent* s : summaries) {
    EXPECT_GT(attrOf(*s, "matched").value_or(0.0), 0.0)
        << "site " << attrOf(*s, "site").value_or(-1.0);
    EXPECT_GT(attrOf(*s, "samples").value_or(0.0), 0.0);
  }
  // The replay caches never fired on a clean transport.
  for (const obs::TraceEvent& e : result.trace.events) {
    EXPECT_FALSE(attrOf(e, "replay").has_value()) << e.name;
  }
}

TEST(SiteTraceE2ETest, SiteTraceOffKeepsTheWirePayloadIdentical) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{600, 2, ValueDistribution::kAnticorrelated, 503});
  InProcCluster plain(Topology::uniform(global, 4, 504));
  InProcCluster traced(Topology::uniform(global, 4, 504));

  QueryOptions off;  // tracing on, site tracing off (the default)
  const QueryResult a = plain.engine().runEdsud(QueryConfig{});
  const QueryResult b = traced.engine().runEdsud(QueryConfig{}, off);
  EXPECT_EQ(a.stats.bytesShipped, b.stats.bytesShipped)
      << "SiteTraceMode::kOff must keep responses byte-identical";

  QueryOptions piggyback;
  piggyback.siteTrace = SiteTraceMode::kPiggyback;
  const QueryResult c = traced.engine().runEdsud(QueryConfig{}, piggyback);
  EXPECT_GT(c.stats.bytesShipped, a.stats.bytesShipped)
      << "piggybacked trailers ride on the measured responses";
  EXPECT_EQ(c.skyline.size(), a.skyline.size())
      << "tracing must not change the answer";
}

TEST(SiteTraceE2ETest, FetchModeReadsSpansAtFinishTime) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{600, 3, ValueDistribution::kAnticorrelated, 505});
  InProcCluster cluster(Topology::uniform(global, 4, 506));
  QueryOptions options;
  options.siteTrace = SiteTraceMode::kFetch;

  const QueryResult result = cluster.engine().runDsud(QueryConfig{}, options);
  ASSERT_FALSE(result.trace.empty());
  expectSiteSpansContained(result.trace);
  bool sawFetch = false;
  for (const obs::TraceEvent& e : result.trace.events) {
    sawFetch |= e.name == "rpc.fetch_trace";
  }
  EXPECT_TRUE(sawFetch) << "fetch mode issues one kFetchTrace per site";
  EXPECT_EQ(mergeSummaries(result.trace).size(), 4u);
}

// ---------------------------------------------------------------------------
// End-to-end: kFetchTrace over real TCP sockets

/// Minimal TCP cluster (the tcp_cluster_test harness, trimmed).
class TcpCluster {
 public:
  explicit TcpCluster(const std::vector<Dataset>& siteData) {
    std::vector<std::unique_ptr<SiteHandle>> handles;
    for (std::size_t i = 0; i < siteData.size(); ++i) {
      const auto id = static_cast<SiteId>(i);
      sites_.push_back(std::make_unique<LocalSite>(id, siteData[i]));
      servers_.push_back(std::make_unique<SiteServer>(*sites_.back()));
      tcpServers_.push_back(
          std::make_unique<TcpSiteServer>(servers_.back()->handler()));
      threads_.emplace_back(
          [server = tcpServers_.back().get()] { server->serve(); });
      auto channel =
          std::make_unique<TcpClientChannel>(tcpServers_.back()->port());
      channel->bindAccounting(id, &meter_, nullptr);
      handles.push_back(
          std::make_unique<RpcSiteHandle>(id, std::move(channel), &meter_));
    }
    coordinator_ = std::make_unique<Coordinator>(std::move(handles), &meter_,
                                                 siteData.front().dims());
    engine_ = std::make_unique<QueryEngine>(*coordinator_);
  }

  ~TcpCluster() {
    engine_.reset();
    coordinator_.reset();  // closes the channels, ending the server loops
    for (auto& t : threads_) t.join();
  }

  QueryEngine& engine() { return *engine_; }

 private:
  BandwidthMeter meter_;
  std::vector<std::unique_ptr<LocalSite>> sites_;
  std::vector<std::unique_ptr<SiteServer>> servers_;
  std::vector<std::unique_ptr<TcpSiteServer>> tcpServers_;
  std::vector<std::thread> threads_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST(SiteTraceE2ETest, TcpClusterAlignsSiteClocksIntoRpcSpans) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{700, 2, ValueDistribution::kAnticorrelated, 507});
  Rng rng(508);
  const auto siteData = partitionUniform(global, 4, rng);
  TcpCluster cluster(siteData);

  for (const SiteTraceMode mode :
       {SiteTraceMode::kPiggyback, SiteTraceMode::kFetch}) {
    QueryOptions options;
    options.siteTrace = mode;
    const QueryResult result =
        cluster.engine().runEdsud(QueryConfig{}, options);
    ASSERT_FALSE(result.trace.empty());
    expectSiteSpansContained(result.trace);
    const auto summaries = mergeSummaries(result.trace);
    ASSERT_EQ(summaries.size(), 4u);
    for (const obs::TraceEvent* s : summaries) {
      EXPECT_GT(attrOf(*s, "samples").value_or(0.0), 0.0)
          << "every site needs at least one clean offset sample";
    }
  }
}

// ---------------------------------------------------------------------------
// Perfetto export and the slow-query log

TEST(SiteTraceE2ETest, PerfettoExportPutsSiteSpansOnSiteTracks) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kAnticorrelated, 509});
  InProcCluster cluster(Topology::uniform(global, 3, 510));
  QueryOptions options;
  options.siteTrace = SiteTraceMode::kPiggyback;
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{}, options);

  const std::string json = obs::traceToPerfetto(result.trace);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"coordinator\""), std::string::npos);
  for (int site = 0; site < 3; ++site) {
    EXPECT_NE(json.find("\"name\": \"site " + std::to_string(site) + "\""),
              std::string::npos)
        << "every site needs a named track";
  }
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"B\""), std::string::npos)
      << "complete events only";

  // Balanced braces/brackets outside strings; no trailing garbage.
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

TEST(SiteTraceE2ETest, SlowQueryLogDumpsMergedTrace) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kAnticorrelated, 511});
  InProcCluster cluster(Topology::uniform(global, 3, 512));
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "dsud_slow_queries";
  std::filesystem::remove_all(dir);

  QueryOptions options;
  options.siteTrace = SiteTraceMode::kPiggyback;
  options.slowQueryThreshold = 1e-9;  // every real query exceeds this
  options.slowQueryDir = dir.string();
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{}, options);
  ASSERT_FALSE(result.trace.empty());

  std::vector<std::filesystem::path> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    dumps.push_back(entry.path());
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].filename().string().find("edsud-q"), std::string::npos);
  EXPECT_NE(dumps[0].filename().string().find(".trace.json"),
            std::string::npos);
  std::ifstream in(dumps[0]);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\""), std::string::npos);

  const auto* slow = cluster.metricsRegistry().snapshot().counter(
      "dsud_slow_queries_total{algo=\"edsud\"}");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(*slow, 1u);

  // Fast queries (threshold sky-high) never dump and never count.
  QueryOptions fast;
  fast.slowQueryThreshold = 1e9;
  fast.slowQueryDir = dir.string();
  (void)cluster.engine().runEdsud(QueryConfig{}, fast);
  std::size_t after = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++after;
  }
  EXPECT_EQ(after, 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dsud
