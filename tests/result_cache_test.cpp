// ResultCache semantics: q-band serving, LRU bounds, version keying — and
// the end-to-end invalidation contract: after a Sec. 5.4 update the engine
// must never serve a stale P_gsky verdict from the cache.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "core/query_engine.hpp"
#include "core/result_cache.hpp"
#include "core/updates.hpp"
#include "gen/synthetic.hpp"

namespace dsud {
namespace {

GlobalSkylineEntry entry(TupleId id, double globalSkyProb) {
  GlobalSkylineEntry e;
  e.site = 0;
  e.tuple = Tuple{id, {0.1, 0.2}, 0.9};
  e.localSkyProb = globalSkyProb;
  e.globalSkyProb = globalSkyProb;
  return e;
}

ResultCache::Key keyAt(std::uint64_t version) {
  ResultCache::Key key;
  key.datasetVersion = version;
  key.mask = 0b11;
  return key;
}

TEST(ResultCacheTest, ServesAnyThresholdAtOrAboveTheStoredBase) {
  ResultCache cache;
  cache.insert(keyAt(0), 0.2, {entry(1, 0.9), entry(2, 0.5), entry(3, 0.25)});

  // Exact threshold: the full stored answer, in stored order.
  auto full = cache.lookup(keyAt(0), 0.2);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->size(), 3u);
  EXPECT_EQ((*full)[0].tuple.id, 1u);
  EXPECT_EQ((*full)[2].tuple.id, 3u);

  // Tighter threshold: filtered, order preserved.
  auto tighter = cache.lookup(keyAt(0), 0.5);
  ASSERT_TRUE(tighter.has_value());
  ASSERT_EQ(tighter->size(), 2u);
  EXPECT_EQ((*tighter)[0].tuple.id, 1u);
  EXPECT_EQ((*tighter)[1].tuple.id, 2u);

  // Looser than the stored base: the stored answer may be missing tuples
  // with probability in [q, qBase) — must miss, never guess.
  EXPECT_FALSE(cache.lookup(keyAt(0), 0.1).has_value());
}

TEST(ResultCacheTest, SmallerBaseWinsOnReinsert) {
  ResultCache cache;
  cache.insert(keyAt(0), 0.5, {entry(1, 0.9)});
  // A looser run's answer supersedes (serves more thresholds)...
  cache.insert(keyAt(0), 0.2, {entry(1, 0.9), entry(2, 0.3)});
  EXPECT_TRUE(cache.lookup(keyAt(0), 0.2).has_value());
  // ...and a tighter one must not shrink the band back.
  cache.insert(keyAt(0), 0.8, {entry(1, 0.9)});
  auto hit = cache.lookup(keyAt(0), 0.2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 2u);
}

TEST(ResultCacheTest, KeysOnDatasetVersionAndKnobs) {
  ResultCache cache;
  cache.insert(keyAt(7), 0.0, {entry(1, 0.9)});
  EXPECT_TRUE(cache.lookup(keyAt(7), 0.3).has_value());
  // Any maintenance bump retires the answer.
  EXPECT_FALSE(cache.lookup(keyAt(8), 0.3).has_value());

  ResultCache::Key otherAlgo = keyAt(7);
  otherAlgo.algo = Algo::kDsud;
  EXPECT_FALSE(cache.lookup(otherAlgo, 0.3).has_value());

  ResultCache::Key otherMask = keyAt(7);
  otherMask.mask = 0b01;
  EXPECT_FALSE(cache.lookup(otherMask, 0.3).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedWithinCapacity) {
  ResultCache cache(ResultCacheConfig{.capacity = 2, .shards = 1});
  cache.insert(keyAt(1), 0.0, {entry(1, 0.9)});
  cache.insert(keyAt(2), 0.0, {entry(2, 0.9)});
  ASSERT_TRUE(cache.lookup(keyAt(1), 0.0).has_value());  // 1 is now MRU
  cache.insert(keyAt(3), 0.0, {entry(3, 0.9)});          // evicts 2
  EXPECT_TRUE(cache.lookup(keyAt(1), 0.0).has_value());
  EXPECT_FALSE(cache.lookup(keyAt(2), 0.0).has_value());
  EXPECT_TRUE(cache.lookup(keyAt(3), 0.0).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(ResultCacheConfig{.capacity = 0});
  cache.insert(keyAt(0), 0.0, {entry(1, 0.9)});
  EXPECT_FALSE(cache.lookup(keyAt(0), 0.0).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: cache attached to an engine over a live cluster.

void expectSameAnswer(const std::vector<GlobalSkylineEntry>& got,
                      const std::vector<GlobalSkylineEntry>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tuple.id, want[i].tuple.id) << "rank " << i;
    EXPECT_EQ(got[i].globalSkyProb, want[i].globalSkyProb) << "rank " << i;
  }
}

TEST(ResultCacheTest, EngineHitsReplayBitIdenticalAnswersForFree) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1500, 3, ValueDistribution::kAnticorrelated, 8100});
  InProcCluster cluster(Topology::uniform(data, 6, 8101));
  ResultCache cache;
  cluster.engine().setResultCache(&cache);

  QueryConfig config;
  config.q = 0.3;
  const QueryResult first = cluster.engine().runEdsud(config);
  EXPECT_GT(first.stats.tuplesShipped, 0u);

  std::size_t progressCalls = 0;
  QueryOptions options;
  options.progress = [&](const GlobalSkylineEntry&, const ProgressPoint&) {
    ++progressCalls;
  };
  const QueryResult replay = cluster.engine().runEdsud(config, options);
  expectSameAnswer(replay.skyline, first.skyline);
  // The whole point: a hit ships nothing and runs no protocol rounds.
  EXPECT_EQ(replay.stats.tuplesShipped, 0u);
  EXPECT_EQ(replay.stats.roundTrips, 0u);
  EXPECT_EQ(progressCalls, replay.skyline.size());

  // A tighter threshold is served from the same stored answer.
  QueryConfig tighter;
  tighter.q = 0.6;
  const QueryResult banded = cluster.engine().runEdsud(tighter);
  EXPECT_EQ(banded.stats.tuplesShipped, 0u);
  for (const GlobalSkylineEntry& e : banded.skyline) {
    EXPECT_GE(e.globalSkyProb, 0.6);
  }
  InProcCluster reference(Topology::uniform(data, 6, 8101));
  expectSameAnswer(banded.skyline,
                   reference.engine().runEdsud(tighter).skyline);
}

TEST(ResultCacheTest, MaintenanceUpdatesNeverServeStaleVerdicts) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1200, 2, ValueDistribution::kAnticorrelated, 8200});
  InProcCluster cluster(Topology::uniform(data, 5, 8201));
  ResultCache cache;
  cluster.engine().setResultCache(&cache);

  QueryConfig config;
  config.q = 0.3;
  const QueryResult before = cluster.engine().runEdsud(config);
  ASSERT_FALSE(before.skyline.empty());
  const std::uint64_t versionBefore = cluster.coordinator().datasetVersion();

  // Warm hit before the update.
  EXPECT_EQ(cluster.engine().runEdsud(config).stats.tuplesShipped, 0u);

  // Insert a strong tuple that dominates most of the space: many cached
  // P_gsky verdicts are now wrong.
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  UpdateEvent event;
  event.kind = UpdateEvent::Kind::kInsert;
  event.site = 0;
  event.tuple = Tuple{99'000'000, {0.001, 0.001}, 0.95};
  maintainer.apply(event);

  EXPECT_GT(cluster.coordinator().datasetVersion(), versionBefore);

  // The next query must recompute (new version => cache miss) and agree
  // with the maintainer's exact post-update skyline.
  QueryResult after = cluster.engine().runEdsud(config);
  EXPECT_GT(after.stats.tuplesShipped, 0u);
  sortByGlobalProbability(after.skyline);
  expectSameAnswer(after.skyline, maintainer.skyline());

  // And the post-update answer caches under the new version.
  EXPECT_EQ(cluster.engine().runEdsud(config).stats.tuplesShipped, 0u);
}

TEST(ResultCacheTest, IneligibleConfigurationsBypassTheCache) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{800, 2, ValueDistribution::kIndependent, 8300});
  InProcCluster cluster(Topology::uniform(data, 4, 8301));
  ResultCache cache;
  cluster.engine().setResultCache(&cache);

  // kPark's emission order depends on q, so its answers must never be
  // banded; the cache stays untouched.
  QueryConfig parked;
  parked.q = 0.3;
  parked.expunge = ExpungePolicy::kPark;
  EXPECT_FALSE(shareEligible(Algo::kEdsud, parked));
  cluster.engine().runEdsud(parked);
  EXPECT_EQ(cache.size(), 0u);

  QueryConfig dominance;
  dominance.q = 0.3;
  dominance.prune = PruneRule::kDominance;
  EXPECT_FALSE(shareEligible(Algo::kDsud, dominance));
  cluster.engine().runDsud(dominance);
  EXPECT_EQ(cache.size(), 0u);

  QueryConfig eligible;
  eligible.q = 0.3;
  EXPECT_TRUE(shareEligible(Algo::kEdsud, eligible));
  EXPECT_TRUE(shareEligible(Algo::kDsud, eligible));
  EXPECT_TRUE(shareEligible(Algo::kNaive, eligible));
}

}  // namespace
}  // namespace dsud
