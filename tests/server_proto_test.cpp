// Codec tests for the dsudd client protocol (src/server/proto.hpp) and the
// JSON layer beneath it: encode/decode round-trips for every request and
// response type, then a corpus of malformed lines — truncated documents,
// bad UTF-8, type confusion, out-of-range values, oversized fields — each
// of which must surface as a clean ProtoError with the right wire code
// (never a crash, never a silently-wrong struct).  Unknown *fields* are the
// one thing the decoder must ignore, so old servers tolerate new clients.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <variant>

#include "server/json.hpp"
#include "server/proto.hpp"

namespace dsud::server {
namespace {

// ---------------------------------------------------------------------------
// JSON layer

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").dump(), "true");
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("42").dump(), "42");
  EXPECT_EQ(Json::parse("-7").dump(), "-7");
  EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
  // Doubles survive a dump/parse cycle bit-exactly (%.17g).
  const double x = 0.1 + 0.2;
  Json v(x);
  EXPECT_EQ(Json::parse(v.dump()).asNumber(), x);
}

TEST(JsonTest, StringEscapes) {
  const Json v = Json::parse(R"("a\"b\\c\ndAé")");
  EXPECT_EQ(v.asString(), "a\"b\\c\ndA\xc3\xa9");
  // Control characters re-escape on dump.
  Json s(std::string("x\ty\n"));
  EXPECT_EQ(s.dump(), "\"x\\ty\\n\"");
  EXPECT_EQ(Json::parse(s.dump()).asString(), "x\ty\n");
}

TEST(JsonTest, SurrogatePairs) {
  // U+1F600 as a surrogate pair decodes to 4-byte UTF-8.
  const Json v = Json::parse(R"("😀")");
  EXPECT_EQ(v.asString(), "\xf0\x9f\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* text :
       {"", "{", "[1,2", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
        "\"unterminated", "{\"a\":1}garbage", "[1,]", "{,}", "nan", "+1"}) {
    EXPECT_THROW(Json::parse(text), JsonError) << text;
  }
}

TEST(JsonTest, RejectsInvalidUtf8) {
  EXPECT_THROW(Json::parse("\"\xff\xfe\""), JsonError);
  EXPECT_THROW(Json::parse("\"\xc3\""), JsonError);        // truncated 2-byte
  EXPECT_THROW(Json::parse("\"\xed\xa0\x80\""), JsonError);  // raw surrogate
}

TEST(JsonTest, DepthCapStopsNestingBombs) {
  std::string bomb;
  for (int i = 0; i < 100; ++i) bomb += '[';
  for (int i = 0; i < 100; ++i) bomb += ']';
  EXPECT_THROW(Json::parse(bomb), JsonError);
}

// ---------------------------------------------------------------------------
// Request round-trips

TEST(ProtoRequestTest, QueryDefaultsRoundTrip) {
  QueryRequest r;
  r.id = "q1";
  const Request decoded = decodeRequest(encodeRequest(r));
  ASSERT_TRUE(std::holds_alternative<QueryRequest>(decoded));
  EXPECT_EQ(std::get<QueryRequest>(decoded), r);
}

TEST(ProtoRequestTest, QueryFullyLoadedRoundTrip) {
  QueryRequest r;
  r.id = "big-query";
  r.algo = Algo::kDsud;
  r.q = 0.125;
  r.mask = 0b101;
  Rect window(3);
  window.expand(std::vector<double>{0.0, 0.1, 0.2});
  window.expand(std::vector<double>{0.5, 0.6, 0.7});
  r.window = window;
  r.tenant = "analytics";
  r.priority = Priority::kHigh;
  r.deadlineMs = 2500;
  r.retries = 3;
  r.degrade = true;
  r.progressive = false;
  r.limit = 10;
  r.traceCapacity = 4096;
  const Request decoded = decodeRequest(encodeRequest(r));
  ASSERT_TRUE(std::holds_alternative<QueryRequest>(decoded));
  EXPECT_EQ(std::get<QueryRequest>(decoded), r);
}

TEST(ProtoRequestTest, TopKRoundTrip) {
  QueryRequest r;
  r.id = "topk";
  r.k = 12;
  r.q = 1e-3;  // travels as floor_q
  r.priority = Priority::kLow;
  const Request decoded = decodeRequest(encodeRequest(r));
  ASSERT_TRUE(std::holds_alternative<QueryRequest>(decoded));
  EXPECT_EQ(std::get<QueryRequest>(decoded), r);
}

TEST(ProtoRequestTest, PingCancelStatsRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<PingRequest>(
      decodeRequest(encodeRequest(PingRequest{}))));
  EXPECT_TRUE(std::holds_alternative<StatsRequest>(
      decodeRequest(encodeRequest(StatsRequest{}))));
  CancelRequest c;
  c.id = "q7";
  const Request decoded = decodeRequest(encodeRequest(c));
  ASSERT_TRUE(std::holds_alternative<CancelRequest>(decoded));
  EXPECT_EQ(std::get<CancelRequest>(decoded), c);
}

TEST(ProtoRequestTest, AdminRoundTripEveryAction) {
  for (const AdminAction action :
       {AdminAction::kAddSite, AdminAction::kRemoveSite,
        AdminAction::kRebalance, AdminAction::kTopology}) {
    AdminRequest request;
    request.id = "a1";
    request.action = action;
    if (action == AdminAction::kRemoveSite) request.site = 7;
    const Request decoded = decodeRequest(encodeRequest(request));
    ASSERT_TRUE(std::holds_alternative<AdminRequest>(decoded))
        << adminActionName(action);
    EXPECT_EQ(std::get<AdminRequest>(decoded), request)
        << adminActionName(action);
  }
}

TEST(ProtoRequestTest, AdminSchemaViolations) {
  // No id, unknown action, remove-site without a site.
  for (const char* line :
       {R"({"op":"admin","action":"topology"})",
        R"({"op":"admin","id":"a","action":"explode"})",
        R"({"op":"admin","id":"a","action":"remove-site"})",
        R"({"op":"admin","id":"a","action":"remove-site","site":-1})"}) {
    try {
      decodeRequest(line);
      FAIL() << line;
    } catch (const ProtoError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kBadRequest) << line;
    }
  }
}

TEST(ProtoRequestTest, UnknownFieldsAreIgnored) {
  const Request decoded = decodeRequest(
      R"({"op":"query","id":"q1","future_flag":true,"nested":{"a":[1,2]}})");
  ASSERT_TRUE(std::holds_alternative<QueryRequest>(decoded));
  EXPECT_EQ(std::get<QueryRequest>(decoded).id, "q1");
}

// ---------------------------------------------------------------------------
// Request malformed corpus

ErrorCode decodeError(std::string_view line) {
  try {
    decodeRequest(line);
  } catch (const ProtoError& e) {
    return e.code();
  }
  ADD_FAILURE() << "decoded without error: " << line;
  return ErrorCode::kInternal;
}

TEST(ProtoRequestTest, TruncatedAndMalformedJson) {
  for (const char* line :
       {"", "   ", "{", R"({"op":"query")", R"({"op":"query","id":)",
        "[1,2,3]", "\"just a string\"", "42", "not json at all",
        R"({"op":"query","id":"q1"} trailing)"}) {
    EXPECT_EQ(decodeError(line), ErrorCode::kBadRequest) << line;
  }
}

TEST(ProtoRequestTest, BadUtf8IsBadRequest) {
  std::string line = R"({"op":"ping","x":")";
  line += "\xff\xfe";
  line += "\"}";
  EXPECT_EQ(decodeError(line), ErrorCode::kBadRequest);
}

TEST(ProtoRequestTest, UnknownOpIsItsOwnCode) {
  EXPECT_EQ(decodeError(R"({"op":"subscribe"})"), ErrorCode::kUnknownOp);
  // ...but a missing or non-string op is a schema violation.
  EXPECT_EQ(decodeError(R"({"id":"q1"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(decodeError(R"({"op":42})"), ErrorCode::kBadRequest);
}

TEST(ProtoRequestTest, SchemaViolations) {
  for (const char* line : {
           R"({"op":"query"})",                          // missing id
           R"({"op":"query","id":""})",                  // empty id
           R"({"op":"query","id":7})",                   // id not a string
           R"({"op":"query","id":"q","q":1.5})",         // q out of range
           R"({"op":"query","id":"q","q":"hi"})",        // q not a number
           R"({"op":"query","id":"q","k":-1})",          // negative k
           R"({"op":"query","id":"q","k":2.5})",         // fractional k
           R"({"op":"query","id":"q","algo":"quantum"})",
           R"({"op":"query","id":"q","priority":"urgent"})",
           R"({"op":"query","id":"q","on_failure":"explode"})",
           R"({"op":"query","id":"q","tenant":""})",
           R"({"op":"query","id":"q","progressive":"yes"})",
           R"({"op":"query","id":"q","retries":17})",    // > 16
           R"({"op":"query","id":"q","window":[1,2]})",  // not an object
           R"({"op":"query","id":"q","window":{"lo":[0],"hi":[0,1]}})",
           R"({"op":"query","id":"q","window":{"lo":[1],"hi":[0]}})",
           R"({"op":"query","id":"q","window":{"lo":[],"hi":[]}})",
           R"({"op":"cancel"})",                         // cancel without id
       }) {
    EXPECT_EQ(decodeError(line), ErrorCode::kBadRequest) << line;
  }
}

TEST(ProtoRequestTest, OversizedFieldsAreRejected) {
  const std::string longId(129, 'x');
  EXPECT_EQ(decodeError(R"({"op":"query","id":")" + longId + "\"}"),
            ErrorCode::kBadRequest);
  const std::string longTenant(65, 't');
  EXPECT_EQ(decodeError(R"({"op":"query","id":"q","tenant":")" + longTenant +
                        "\"}"),
            ErrorCode::kBadRequest);
}

// ---------------------------------------------------------------------------
// Response round-trips

TEST(ProtoResponseTest, AckRoundTrip) {
  AckResponse r;
  r.id = "q1";
  r.query = 42;
  const Response decoded = decodeResponse(encodeResponse(r));
  ASSERT_TRUE(std::holds_alternative<AckResponse>(decoded));
  EXPECT_EQ(std::get<AckResponse>(decoded), r);
}

TEST(ProtoResponseTest, AnswerRoundTrip) {
  AnswerResponse r;
  r.id = "q1";
  r.seq = 3;
  r.entry.site = 2;
  r.entry.tuple = Tuple(17, {0.25, 0.5, 0.125}, 0.75);
  r.entry.localSkyProb = 0.875;
  r.entry.globalSkyProb = 0.8125;
  const Response decoded = decodeResponse(encodeResponse(r));
  ASSERT_TRUE(std::holds_alternative<AnswerResponse>(decoded));
  EXPECT_EQ(std::get<AnswerResponse>(decoded), r);
}

TEST(ProtoResponseTest, DoneRoundTrip) {
  DoneResponse r;
  r.id = "q1";
  r.answers = 33;
  r.degraded = true;
  r.excluded = {1, 4};
  r.stats.tuplesShipped = 231;
  r.stats.bytesShipped = 18289;
  r.stats.roundTrips = 246;
  r.stats.candidatesPulled = 40;
  r.stats.broadcasts = 6;
  r.stats.expunged = 7;
  r.stats.prunedAtSites = 100;
  r.stats.seconds = 0.0028;
  const Response decoded = decodeResponse(encodeResponse(r));
  ASSERT_TRUE(std::holds_alternative<DoneResponse>(decoded));
  EXPECT_EQ(std::get<DoneResponse>(decoded), r);
}

TEST(ProtoResponseTest, DoneWithProfileRoundTrip) {
  DoneResponse r;
  r.id = "q9";
  r.answers = 12;
  r.stats.tuplesShipped = 40;
  r.stats.seconds = 0.01;

  QueryProfile profile;
  profile.algo = "edsud";
  profile.cache = "miss";
  profile.batch = "leader";
  profile.batchWidth = 3;
  profile.failovers = 1;
  profile.prepareSeconds = 0.001;
  profile.executeSeconds = 0.025;
  profile.finalizeSeconds = 0.0005;
  SiteProfile alive;
  alive.site = 0;
  alive.rounds = 4;
  alive.tuples = 25;
  alive.bytes = 1200;
  alive.candidates = 30;
  alive.pruned = 970;
  SiteProfile fallen;
  fallen.site = 1;
  fallen.rounds = 1;
  fallen.tuples = 15;
  fallen.bytes = 720;
  fallen.retries = 2;
  fallen.failovers = 1;
  fallen.dead = true;
  profile.sites = {alive, fallen};
  r.profile = profile;

  const Response decoded = decodeResponse(encodeResponse(r));
  ASSERT_TRUE(std::holds_alternative<DoneResponse>(decoded));
  EXPECT_EQ(std::get<DoneResponse>(decoded), r);

  // Without the block, the option stays disengaged after a round-trip —
  // profiles never materialise out of thin air on the client side.
  DoneResponse bare;
  bare.id = "q10";
  const Response plain = decodeResponse(encodeResponse(bare));
  ASSERT_TRUE(std::holds_alternative<DoneResponse>(plain));
  EXPECT_FALSE(std::get<DoneResponse>(plain).profile.has_value());
}

TEST(ProtoRequestTest, ProfileFlagRoundTrip) {
  QueryRequest r;
  r.id = "explain";
  r.profile = true;
  const Request decoded = decodeRequest(encodeRequest(r));
  ASSERT_TRUE(std::holds_alternative<QueryRequest>(decoded));
  EXPECT_TRUE(std::get<QueryRequest>(decoded).profile);
  EXPECT_EQ(std::get<QueryRequest>(decoded), r);
}

TEST(ProtoResponseTest, ErrorRoundTripEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnknownOp, ErrorCode::kOversized,
        ErrorCode::kOverloaded, ErrorCode::kUnavailable, ErrorCode::kCancelled,
        ErrorCode::kInternal}) {
    ErrorResponse r;
    r.id = "q9";
    r.code = code;
    r.message = "because";
    r.retryAfterMs = code == ErrorCode::kOverloaded ? 250 : 0;
    const Response decoded = decodeResponse(encodeResponse(r));
    ASSERT_TRUE(std::holds_alternative<ErrorResponse>(decoded));
    EXPECT_EQ(std::get<ErrorResponse>(decoded), r);
  }
}

TEST(ProtoResponseTest, PongAndStatsRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<PongResponse>(
      decodeResponse(encodeResponse(PongResponse{}))));
  StatsResponse r;
  r.active = 2;
  r.queued = 5;
  r.admitted = 100;
  r.shed = 7;
  const Response decoded = decodeResponse(encodeResponse(r));
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(decoded));
  EXPECT_EQ(std::get<StatsResponse>(decoded), r);
}

TEST(ProtoResponseTest, AdminRoundTrip) {
  AdminResponse response;
  response.id = "a1";
  response.epoch = 5;
  response.members = {0, 1, 3, 4};
  response.partitions.push_back(PartitionDesc{0, {0, 1}});
  response.partitions.push_back(PartitionDesc{1, {1, 3}});
  const Response decoded = decodeResponse(encodeResponse(response));
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(decoded));
  EXPECT_EQ(std::get<AdminResponse>(decoded), response);

  // add-site carries the new member's id; kNoSite is elided on the wire
  // and restored on decode.
  response.site = 4;
  const Response withSite = decodeResponse(encodeResponse(response));
  EXPECT_EQ(std::get<AdminResponse>(withSite), response);
}

TEST(ProtoResponseTest, UintFieldAtTwoToTheSixtyFourIsRejected) {
  // static_cast<double>(UINT64_MAX) rounds up to exactly 2^64, so a naive
  // `d > (double)hi` range check would let 18446744073709551616 through
  // into an undefined uint64 cast.  It must be a clean decode error.
  for (const char* line :
       {R"({"type":"done","id":"q1","answers":18446744073709551616})",
        R"({"type":"done","id":"q1","answers":18446744073709551615})",
        R"({"type":"done","id":"q1","answers":1e300})"}) {
    EXPECT_THROW(decodeResponse(line), ProtoError) << line;
  }
  // Large-but-representable values still decode exactly.
  const Response decoded =
      decodeResponse(R"({"type":"done","id":"q1","answers":9007199254740992})");
  ASSERT_TRUE(std::holds_alternative<DoneResponse>(decoded));
  EXPECT_EQ(std::get<DoneResponse>(decoded).answers, 9007199254740992u);
}

TEST(ProtoResponseTest, MalformedResponsesThrow) {
  for (const char* line :
       {"", "{", R"({"type":"telemetry"})", R"({"id":"q1"})",
        R"({"type":"answer","id":"q1","seq":1})",  // missing tuple
        R"({"type":"answer","id":"q1","seq":1,"tuple":[1]})",
        R"({"type":"error","id":"q1","code":"catastrophic"})",
        R"({"type":"done","id":"q1","excluded":"none"})",
        R"({"type":"done","id":"q1","stats":[1,2]})"}) {
    EXPECT_THROW(decodeResponse(line), ProtoError) << line;
  }
}

// ---------------------------------------------------------------------------
// Error-code names

TEST(ProtoErrorCodeTest, NamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnknownOp, ErrorCode::kOversized,
        ErrorCode::kOverloaded, ErrorCode::kUnavailable, ErrorCode::kCancelled,
        ErrorCode::kInternal}) {
    const auto parsed = errorCodeFromName(errorCodeName(code));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(errorCodeFromName("no_such_code").has_value());
}

}  // namespace
}  // namespace dsud::server
