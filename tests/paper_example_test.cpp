// Reproduces the paper's worked hotel-booking example (Sec. 5.3, Table 2):
// three sites (Qingdao, Shanghai, Xiamen), threshold q = 0.3, and the exact
// quaternions of Table 2a.  The paper gives each visible tuple a local
// skyline probability *below* its existential probability, which implies
// hidden low-probability dominators in each local database; this test
// constructs them explicitly so every number in the trace is reproduced:
//
//   SKY(D_1) = (6,6,0.7,0.65), (8,4,0.8,0.6), (3,8,0.8,0.5)
//   SKY(D_2) = (6.5,7,0.8,0.65), (4,9,0.6,0.6), (9,5,0.7,0.6)
//   SKY(D_3) = (6.4,7.5,0.9,0.8), (3.5,11,0.7,0.7), (10,4.5,0.7,0.7)
//
// and the e-DSUD run emits (6,6) -> (8,4) -> (3,8) and expunges the two
// leftover queue entries, exactly as in Tables 2b–2h.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

constexpr double kQ = 0.3;

std::vector<Dataset> hotelSites() {
  std::vector<Dataset> sites;
  // --- D_1 (Qingdao) ------------------------------------------------------
  Dataset d1(2);
  d1.add(10, std::vector<double>{6.0, 6.0}, 0.7);
  d1.add(11, std::vector<double>{8.0, 4.0}, 0.8);
  d1.add(12, std::vector<double>{3.0, 8.0}, 0.8);
  // Hidden dominators shaping the local skyline probabilities:
  d1.add(100, std::vector<double>{5.9, 5.9}, 1.0 / 14);  // under (6,6): 0.65
  d1.add(101, std::vector<double>{7.9, 3.9}, 0.25);      // under (8,4): 0.6
  d1.add(102, std::vector<double>{2.9, 7.9}, 0.25);      // under (3,8) ...
  d1.add(103, std::vector<double>{2.8, 7.8}, 1.0 / 6);   // ... jointly: 0.5
  sites.push_back(std::move(d1));

  // --- D_2 (Shanghai) -----------------------------------------------------
  Dataset d2(2);
  d2.add(20, std::vector<double>{6.5, 7.0}, 0.8);
  d2.add(21, std::vector<double>{4.0, 9.0}, 0.6);
  d2.add(22, std::vector<double>{9.0, 5.0}, 0.7);
  d2.add(110, std::vector<double>{6.4, 6.9}, 0.1875);   // under (6.5,7): 0.65
  d2.add(111, std::vector<double>{8.9, 4.9}, 1.0 / 7);  // under (9,5): 0.6
  sites.push_back(std::move(d2));

  // --- D_3 (Xiamen) -------------------------------------------------------
  Dataset d3(2);
  d3.add(30, std::vector<double>{6.4, 7.5}, 0.9);
  d3.add(31, std::vector<double>{3.5, 11.0}, 0.7);
  d3.add(32, std::vector<double>{10.0, 4.5}, 0.7);
  d3.add(120, std::vector<double>{6.3, 7.4}, 1.0 / 9);  // under (6.4,7.5): 0.8
  sites.push_back(std::move(d3));
  return sites;
}

TEST(PaperExampleTest, LocalSkylinesMatchTable2a) {
  const auto sites = hotelSites();
  {
    const auto sky = linearSkyline(sites[0], {.q = kQ});
    ASSERT_EQ(sky.size(), 3u);
    EXPECT_EQ(sky[0].id, 10u);
    EXPECT_NEAR(sky[0].skyProb, 0.65, 1e-12);
    EXPECT_EQ(sky[1].id, 11u);
    EXPECT_NEAR(sky[1].skyProb, 0.6, 1e-12);
    EXPECT_EQ(sky[2].id, 12u);
    EXPECT_NEAR(sky[2].skyProb, 0.5, 1e-12);
  }
  {
    const auto sky = linearSkyline(sites[1], {.q = kQ});
    ASSERT_EQ(sky.size(), 3u);
    EXPECT_EQ(sky[0].id, 20u);
    EXPECT_NEAR(sky[0].skyProb, 0.65, 1e-12);
    EXPECT_EQ(sky[1].id, 21u);  // ties broken by id: (4,9) before (9,5)
    EXPECT_NEAR(sky[1].skyProb, 0.6, 1e-12);
    EXPECT_EQ(sky[2].id, 22u);
    EXPECT_NEAR(sky[2].skyProb, 0.6, 1e-12);
  }
  {
    const auto sky = linearSkyline(sites[2], {.q = kQ});
    ASSERT_EQ(sky.size(), 3u);
    EXPECT_EQ(sky[0].id, 30u);
    EXPECT_NEAR(sky[0].skyProb, 0.8, 1e-12);
    EXPECT_NEAR(sky[1].skyProb, 0.7, 1e-12);
    EXPECT_NEAR(sky[2].skyProb, 0.7, 1e-12);
  }
}

TEST(PaperExampleTest, EdsudEmitsTheTableTrace) {
  InProcCluster cluster(Topology::fromPartitions(hotelSites()));
  QueryConfig config;
  config.q = kQ;
  // The paper's Sec. 5.3 walkthrough parks sub-threshold queue entries
  // until termination; kPark reproduces its exact message counts.
  config.expunge = ExpungePolicy::kPark;
  const QueryResult result = cluster.engine().runEdsud(config);

  // Emission order (6,6) -> (8,4) -> (3,8), exactly the paper's SKY(H).
  ASSERT_EQ(result.skyline.size(), 3u);
  EXPECT_EQ(result.skyline[0].tuple.id, 10u);
  EXPECT_NEAR(result.skyline[0].globalSkyProb, 0.65, 1e-12);
  EXPECT_EQ(result.skyline[1].tuple.id, 11u);
  EXPECT_NEAR(result.skyline[1].globalSkyProb, 0.6, 1e-12);
  EXPECT_EQ(result.skyline[2].tuple.id, 12u);
  EXPECT_NEAR(result.skyline[2].globalSkyProb, 0.5, 1e-12);

  // The trace costs: 5 To-Server tuples (three initial heads plus two
  // follow-ups from S_1), 3 feedback broadcasts of m-1 = 2 tuples each, and
  // the two sub-threshold queue leftovers of Table 2h expunged for free.
  EXPECT_EQ(result.stats.candidatesPulled, 5u);
  EXPECT_EQ(result.stats.broadcasts, 3u);
  EXPECT_EQ(result.stats.expunged, 2u);
  EXPECT_EQ(result.stats.tuplesShipped, 5u + 3u * 2u);
  // Local pruning drops (9,5), (10,4.5) after (8,4) and (4,9), (3.5,11)
  // after (3,8) — Tables 2c/2e/2g.
  EXPECT_EQ(result.stats.prunedAtSites, 4u);
}

TEST(PaperExampleTest, ObservationTwoBoundsMatchSection53) {
  // The approximate values computed at the first server-calculation phase:
  // P*_gsky((6.4,7.5)) = 0.8 · (0.65/0.7) · 0.3 ≈ 0.22 and
  // P*_gsky((6.5,7))  = 0.65 · (0.65/0.7) · 0.3 ≈ 0.18  (paper rounds).
  const double witnessFactor = 0.65 / 0.7 * (1.0 - 0.7);
  EXPECT_NEAR(0.8 * witnessFactor, 0.22, 0.005);
  EXPECT_NEAR(0.65 * witnessFactor, 0.18, 0.005);
  // Both fall below q = 0.3: the two tuples are expunged without broadcast,
  // matching Table 2h's termination condition.
  EXPECT_LT(0.8 * witnessFactor, kQ);
  EXPECT_LT(0.65 * witnessFactor, kQ);
}

TEST(PaperExampleTest, EagerPolicySameAnswersDifferentSchedule) {
  // The default eager policy advances stalled site streams immediately; on
  // this tiny example that broadcasts the two Xiamen decoys the paper's
  // schedule never ships, but the answers (and their probabilities) are
  // identical.
  InProcCluster cluster(Topology::fromPartitions(hotelSites()));
  QueryConfig config;
  config.q = kQ;
  config.expunge = ExpungePolicy::kEager;
  const QueryResult result = cluster.engine().runEdsud(config);
  ASSERT_EQ(result.skyline.size(), 3u);
  EXPECT_EQ(result.skyline[0].tuple.id, 10u);
  EXPECT_EQ(result.skyline[1].tuple.id, 11u);
  EXPECT_EQ(result.skyline[2].tuple.id, 12u);
  EXPECT_EQ(result.stats.expunged, 3u);  // (6.5,7), (6.4,7.5), (4,9)
}

TEST(PaperExampleTest, DsudFindsSameAnswersWithMoreBandwidth) {
  const auto sites = hotelSites();
  InProcCluster dsudCluster(Topology::fromPartitions(sites));
  InProcCluster edsudCluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;

  QueryResult dsud = dsudCluster.engine().runDsud(config);
  QueryResult edsud = edsudCluster.engine().runEdsud(config);

  sortByGlobalProbability(dsud.skyline);
  sortByGlobalProbability(edsud.skyline);
  EXPECT_EQ(testutil::idsOf(dsud.skyline), testutil::idsOf(edsud.skyline));

  // DSUD broadcasts every candidate it pulls; e-DSUD expunges two of them,
  // saving 2 · (m−1) = 4 feedback tuples.
  EXPECT_GT(dsud.stats.tuplesShipped, edsud.stats.tuplesShipped);
  EXPECT_EQ(dsud.stats.expunged, 0u);
}

TEST(PaperExampleTest, MatchesCentralisedGroundTruth) {
  const auto sites = hotelSites();
  const auto expected = testutil::groundTruth(sites, kQ);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline), testutil::idsOf(expected));
}

}  // namespace
}  // namespace dsud
