#include "skyline/linear_skyline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

using testutil::makeDataset;

TEST(LinearSkylineTest, EmptyDataset) {
  const Dataset data(2);
  EXPECT_TRUE(skylineProbabilitiesLinear(data).empty());
  EXPECT_TRUE(linearSkyline(data, {.q = 0.3}).empty());
}

TEST(LinearSkylineTest, SingleTupleIsItsOwnSkyline) {
  const Dataset data = makeDataset(2, {{1.0, 2.0, 0.7}});
  const auto probs = skylineProbabilitiesLinear(data);
  EXPECT_DOUBLE_EQ(probs[0], 0.7);
  const auto sky = linearSkyline(data, {.q = 0.5});
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0].id, 0u);
  EXPECT_DOUBLE_EQ(sky[0].skyProb, 0.7);
}

TEST(LinearSkylineTest, DominatorChainMultipliesSurvivals) {
  // t0 ≺ t1 ≺ t2; P_sky(t2) = P(t2)(1-P(t0))(1-P(t1)).
  const Dataset data = makeDataset(2, {
                                          {1.0, 1.0, 0.5},
                                          {2.0, 2.0, 0.4},
                                          {3.0, 3.0, 0.9},
                                      });
  const auto probs = skylineProbabilitiesLinear(data);
  EXPECT_DOUBLE_EQ(probs[0], 0.5);
  EXPECT_DOUBLE_EQ(probs[1], 0.4 * 0.5);
  EXPECT_DOUBLE_EQ(probs[2], 0.9 * 0.5 * 0.6);
}

TEST(LinearSkylineTest, ThresholdFiltersAndSortsDescending) {
  const Dataset data = makeDataset(2, {
                                          {1.0, 5.0, 0.9},
                                          {5.0, 1.0, 0.4},
                                          {2.0, 6.0, 0.5},  // dominated by t0
                                      });
  const auto sky = linearSkyline(data, {.q = 0.3});
  ASSERT_EQ(sky.size(), 2u);
  EXPECT_EQ(sky[0].id, 0u);
  EXPECT_EQ(sky[1].id, 1u);
  EXPECT_GE(sky[0].skyProb, sky[1].skyProb);
}

TEST(LinearSkylineTest, ThresholdMonotonicity) {
  // p-skyline ⊆ p'-skyline whenever p' <= p (paper Sec. 7.3 argument).
  const Dataset data = generateSynthetic(
      SyntheticSpec{300, 3, ValueDistribution::kIndependent, 42});
  auto idsAt = [&](double q) {
    auto ids = testutil::idsOf(linearSkyline(data, {.q = q}));
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const auto at03 = idsAt(0.3);
  const auto at05 = idsAt(0.5);
  const auto at09 = idsAt(0.9);
  EXPECT_GE(at03.size(), at05.size());
  EXPECT_GE(at05.size(), at09.size());
  EXPECT_TRUE(std::includes(at03.begin(), at03.end(), at05.begin(),
                            at05.end()));
  EXPECT_TRUE(std::includes(at05.begin(), at05.end(), at09.begin(),
                            at09.end()));
}

TEST(LinearSkylineTest, CertainDataReducesToClassicSkyline) {
  // Fig. 1 example shape: P1(1,9), P2(2,10) dominated, P3(4,5), P4(6,7)
  // dominated, P5(9,2) -- skyline {P1, P3, P5}.
  const Dataset data = makeDataset(2, {
                                          {1.0, 9.0, 1.0},
                                          {2.0, 10.0, 1.0},
                                          {4.0, 5.0, 1.0},
                                          {6.0, 7.0, 1.0},
                                          {9.0, 2.0, 1.0},
                                      });
  const auto sky = linearSkyline(data, {.q = 0.5});
  auto ids = testutil::idsOf(sky);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<TupleId>{0, 2, 4}));
  for (const auto& e : sky) EXPECT_DOUBLE_EQ(e.skyProb, 1.0);
}

TEST(LinearSkylineTest, SubspaceProjectionChangesAnswer) {
  const Dataset data = makeDataset(2, {
                                          {1.0, 9.0, 1.0},
                                          {2.0, 1.0, 1.0},
                                      });
  // Full space: both in skyline.
  EXPECT_EQ(linearSkyline(data, {.q = 0.5}).size(), 2u);
  // Dim 0 only: tuple 0 dominates tuple 1.
  const auto sky0 = linearSkyline(data, {.mask = DimMask{0b01}, .q = 0.5});
  ASSERT_EQ(sky0.size(), 1u);
  EXPECT_EQ(sky0[0].id, 0u);
  // Dim 1 only: tuple 1 wins.
  const auto sky1 = linearSkyline(data, {.mask = DimMask{0b10}, .q = 0.5});
  ASSERT_EQ(sky1.size(), 1u);
  EXPECT_EQ(sky1[0].id, 1u);
}

TEST(LinearSkylineTest, EntriesCarryValuesAndProb) {
  const Dataset data = makeDataset(2, {{3.0, 4.0, 0.8}});
  const auto sky = linearSkyline(data, {.q = 0.1});
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0].values, (std::vector<double>{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(sky[0].prob, 0.8);
}

TEST(LinearSkylineTest, DuplicatePointsDoNotDominateEachOther) {
  const Dataset data = makeDataset(2, {
                                          {1.0, 1.0, 0.6},
                                          {1.0, 1.0, 0.9},
                                      });
  const auto probs = skylineProbabilitiesLinear(data);
  EXPECT_DOUBLE_EQ(probs[0], 0.6);
  EXPECT_DOUBLE_EQ(probs[1], 0.9);
}

}  // namespace
}  // namespace dsud
