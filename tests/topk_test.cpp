// Top-k probabilistic skyline (QueryEngine::runTopK): the k tuples with the
// largest global skyline probability, verified against the sorted
// centralised ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

/// Ground truth: ids of the k most probable skyline tuples above the floor.
std::vector<TupleId> topKTruth(const Dataset& global, std::size_t k,
                               double floorQ) {
  auto all = linearSkyline(global, {.q = floorQ});  // sorted desc by probability
  if (all.size() > k) all.resize(k);
  return testutil::idsOf(all);
}

TEST(TopKTest, ValidatesArguments) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{50, 2, ValueDistribution::kIndependent, 400});
  InProcCluster cluster(Topology::uniform(global, 2, 401));
  TopKConfig bad;
  bad.k = 0;
  EXPECT_THROW(cluster.engine().runTopK(bad), std::invalid_argument);
  bad.k = 1;
  bad.floorQ = 0.0;
  EXPECT_THROW(cluster.engine().runTopK(bad), std::invalid_argument);
}

class TopKParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 ValueDistribution>> {};

TEST_P(TopKParamTest, MatchesSortedGroundTruth) {
  const auto [k, m, dist] = GetParam();
  for (std::uint64_t seed = 410; seed < 413; ++seed) {
    const Dataset global = generateSynthetic(SyntheticSpec{1000, 3, dist, seed});
    InProcCluster cluster(Topology::uniform(global, m, seed + 1));
    TopKConfig config;
    config.k = k;
    config.floorQ = 0.05;
    const QueryResult result = cluster.engine().runTopK(config);
    EXPECT_EQ(testutil::idsOf(result.skyline),
              topKTruth(global, k, config.floorQ))
        << "seed=" << seed;
    // Sorted descending.
    for (std::size_t i = 1; i < result.skyline.size(); ++i) {
      EXPECT_GE(result.skyline[i - 1].globalSkyProb,
                result.skyline[i].globalSkyProb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKParamTest,
    ::testing::Values(
        std::make_tuple(1u, 4u, ValueDistribution::kIndependent),
        std::make_tuple(5u, 4u, ValueDistribution::kIndependent),
        std::make_tuple(10u, 8u, ValueDistribution::kAnticorrelated),
        std::make_tuple(25u, 8u, ValueDistribution::kAnticorrelated),
        std::make_tuple(10u, 1u, ValueDistribution::kCorrelated)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_" +
             distributionName(std::get<2>(info.param));
    });

TEST(TopKTest, KLargerThanAnswerSetReturnsEverything) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 420});
  InProcCluster cluster(Topology::uniform(global, 4, 421));
  TopKConfig config;
  config.k = 10000;
  config.floorQ = 0.3;
  const QueryResult result = cluster.engine().runTopK(config);
  EXPECT_EQ(testutil::idsOf(result.skyline), topKTruth(global, 10000, 0.3));
}

TEST(TopKTest, AdaptiveThresholdBeatsFloorQuery) {
  // Running the full e-DSUD query at floorQ and truncating would ship far
  // more tuples than the adaptive top-k loop for small k.
  const Dataset global = generateSynthetic(
      SyntheticSpec{10000, 3, ValueDistribution::kAnticorrelated, 422});
  InProcCluster cluster(Topology::uniform(global, 10, 423));

  TopKConfig topk;
  topk.k = 5;
  topk.floorQ = 0.05;
  const QueryResult adaptive = cluster.engine().runTopK(topk);

  QueryConfig full;
  full.q = topk.floorQ;
  const QueryResult exhaustive = cluster.engine().runEdsud(full);

  ASSERT_EQ(adaptive.skyline.size(), 5u);
  EXPECT_LT(adaptive.stats.tuplesShipped,
            exhaustive.stats.tuplesShipped / 2);
  // And the answers agree with the truncated exhaustive run.
  auto want = exhaustive.skyline;
  sortByGlobalProbability(want);
  want.resize(5);
  EXPECT_EQ(testutil::idsOf(adaptive.skyline), testutil::idsOf(want));
}

TEST(TopKTest, SubspaceTopK) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 3, ValueDistribution::kIndependent, 424});
  InProcCluster cluster(Topology::uniform(global, 5, 425));
  TopKConfig config;
  config.k = 8;
  config.floorQ = 0.05;
  config.mask = 0b011;
  const QueryResult result = cluster.engine().runTopK(config);

  auto truth = linearSkyline(global, {.mask = config.mask, .q = config.floorQ});
  if (truth.size() > 8) truth.resize(8);
  EXPECT_EQ(testutil::idsOf(result.skyline), testutil::idsOf(truth));
}

TEST(TopKTest, WindowedTopK) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kIndependent, 426});
  Rect window(2);
  const std::array<double, 2> lo = {0.3, 0.3};
  const std::array<double, 2> hi = {0.8, 0.8};
  window.expand(lo);
  window.expand(hi);

  InProcCluster cluster(Topology::uniform(global, 6, 427));
  TopKConfig config;
  config.k = 5;
  config.floorQ = 0.05;
  config.window = window;
  const QueryResult result = cluster.engine().runTopK(config);

  auto truth =
      linearSkyline(global, {.q = config.floorQ, .clip = &window});
  if (truth.size() > 5) truth.resize(5);
  EXPECT_EQ(testutil::idsOf(result.skyline), testutil::idsOf(truth));
}

TEST(TopKTest, DeterministicAcrossRuns) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 428});
  InProcCluster a(Topology::uniform(global, 6, 429));
  InProcCluster b(Topology::uniform(global, 6, 429));
  TopKConfig config;
  config.k = 12;
  const QueryResult ra = a.engine().runTopK(config);
  const QueryResult rb = b.engine().runTopK(config);
  EXPECT_EQ(testutil::idsOf(ra.skyline), testutil::idsOf(rb.skyline));
  EXPECT_EQ(ra.stats.tuplesShipped, rb.stats.tuplesShipped);
}

}  // namespace
}  // namespace dsud
