#include "common/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "gen/synthetic.hpp"

namespace dsud {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dsud_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void expectEqualDatasets(const Dataset& a, const Dataset& b) {
    ASSERT_EQ(a.dims(), b.dims());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t row = 0; row < a.size(); ++row) {
      EXPECT_EQ(a.id(row), b.id(row));
      EXPECT_EQ(a.prob(row), b.prob(row));
      const auto av = a.values(row);
      const auto bv = b.values(row);
      for (std::size_t j = 0; j < a.dims(); ++j) EXPECT_EQ(av[j], bv[j]);
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, BinaryRoundTrip) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{500, 3, ValueDistribution::kAnticorrelated, 600});
  saveDatasetBinary(data, path("d.bin"));
  const Dataset loaded = loadDatasetBinary(path("d.bin"));
  expectEqualDatasets(data, loaded);
}

TEST_F(IoTest, BinaryRoundTripEmptyDataset) {
  const Dataset data(2);
  saveDatasetBinary(data, path("empty.bin"));
  const Dataset loaded = loadDatasetBinary(path("empty.bin"));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.dims(), 2u);
}

TEST_F(IoTest, BinaryPreservesExactDoubles) {
  Dataset data(2);
  data.add(0, std::vector<double>{0.1 + 0.2, 1e-300}, 1e-9);
  saveDatasetBinary(data, path("exact.bin"));
  const Dataset loaded = loadDatasetBinary(path("exact.bin"));
  EXPECT_EQ(loaded.values(0)[0], 0.1 + 0.2);
  EXPECT_EQ(loaded.values(0)[1], 1e-300);
  EXPECT_EQ(loaded.prob(0), 1e-9);
}

TEST_F(IoTest, BinaryMissingFileThrows) {
  EXPECT_THROW(loadDatasetBinary(path("nope.bin")), IoError);
}

TEST_F(IoTest, BinaryBadMagicThrows) {
  std::ofstream out(path("junk.bin"), std::ios::binary);
  out << "JUNKJUNKJUNKJUNKJUNK";
  out.close();
  EXPECT_THROW(loadDatasetBinary(path("junk.bin")), IoError);
}

TEST_F(IoTest, BinaryTruncationThrows) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 601});
  saveDatasetBinary(data, path("t.bin"));
  const auto size = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), size - 5);
  EXPECT_THROW(loadDatasetBinary(path("t.bin")), IoError);
}

TEST_F(IoTest, BinaryTrailingGarbageThrows) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{10, 2, ValueDistribution::kIndependent, 602});
  saveDatasetBinary(data, path("g.bin"));
  std::ofstream out(path("g.bin"), std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_THROW(loadDatasetBinary(path("g.bin")), IoError);
}

TEST_F(IoTest, CsvRoundTrip) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{200, 4, ValueDistribution::kCorrelated, 603});
  saveDatasetCsv(data, path("d.csv"));
  const Dataset loaded = loadDatasetCsv(path("d.csv"));
  expectEqualDatasets(data, loaded);  // precision 17 round-trips doubles
}

TEST_F(IoTest, CsvWithoutHeaderLoads) {
  std::ofstream out(path("plain.csv"));
  out << "7,0.5,1.25,2.5\n8,0.25,3,4\n";
  out.close();
  const Dataset loaded = loadDatasetCsv(path("plain.csv"));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.id(0), 7u);
  EXPECT_EQ(loaded.prob(1), 0.25);
  EXPECT_EQ(loaded.values(0)[1], 2.5);
}

TEST_F(IoTest, CsvScientificNotationAccepted) {
  std::ofstream out(path("sci.csv"));
  out << "1,5e-1,1.5e2,-2E-3\n";
  out.close();
  const Dataset loaded = loadDatasetCsv(path("sci.csv"));
  EXPECT_EQ(loaded.prob(0), 0.5);
  EXPECT_EQ(loaded.values(0)[0], 150.0);
  EXPECT_EQ(loaded.values(0)[1], -0.002);
}

TEST_F(IoTest, CsvSkipsBlankLines) {
  std::ofstream out(path("blank.csv"));
  out << "id,prob,v0\n\n1,0.5,2.0\n\n2,0.5,3.0\n";
  out.close();
  EXPECT_EQ(loadDatasetCsv(path("blank.csv")).size(), 2u);
}

TEST_F(IoTest, CsvRaggedRowThrows) {
  std::ofstream out(path("ragged.csv"));
  out << "1,0.5,2.0,3.0\n2,0.5,4.0\n";
  out.close();
  EXPECT_THROW(loadDatasetCsv(path("ragged.csv")), IoError);
}

TEST_F(IoTest, CsvBadNumberReportsLine) {
  std::ofstream out(path("bad.csv"));
  out << "1,0.5,2.0\n2,zero,3.0\n";
  out.close();
  try {
    loadDatasetCsv(path("bad.csv"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(IoTest, CsvBadProbabilityThrows) {
  std::ofstream out(path("badp.csv"));
  out << "1,1.5,2.0\n";
  out.close();
  EXPECT_THROW(loadDatasetCsv(path("badp.csv")), IoError);
}

TEST_F(IoTest, CsvEmptyFileThrows) {
  std::ofstream out(path("empty.csv"));
  out.close();
  EXPECT_THROW(loadDatasetCsv(path("empty.csv")), IoError);
}

TEST_F(IoTest, BinaryAndCsvAgree) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 604});
  saveDatasetBinary(data, path("x.bin"));
  saveDatasetCsv(data, path("x.csv"));
  expectEqualDatasets(loadDatasetBinary(path("x.bin")),
                      loadDatasetCsv(path("x.csv")));
}

}  // namespace
}  // namespace dsud
