// Shared-work batch executor: merged groups must answer every member
// bit-identically to a solo run of its query — including under
// chaos-injected site failure — and the split must keep progress streams
// and cancellation per member.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/batch.hpp"
#include "core/cluster.hpp"
#include "core/query_engine.hpp"
#include "core/result_cache.hpp"
#include "gen/synthetic.hpp"
#include "net/chaos.hpp"

namespace dsud {
namespace {

void expectSameAnswer(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.skyline.size(), want.skyline.size());
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    EXPECT_EQ(got.skyline[i].tuple.id, want.skyline[i].tuple.id) << "rank " << i;
    EXPECT_EQ(got.skyline[i].globalSkyProb, want.skyline[i].globalSkyProb)
        << "rank " << i;
    EXPECT_EQ(got.skyline[i].localSkyProb, want.skyline[i].localSkyProb)
        << "rank " << i;
  }
}

QueryOptions batched(double windowSeconds = 0.05) {
  QueryOptions options;
  options.batching.enabled = true;
  options.batching.windowSeconds = windowSeconds;
  return options;
}

double counterValue(InProcCluster& cluster, const std::string& name) {
  for (const auto& [key, value] : cluster.metricsRegistry().snapshot().counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

TEST(BatchTest, ThresholdBandMergesIntoOneDescentBitIdentically) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 9100});
  InProcCluster shared(Topology::uniform(data, 6, 9101));
  InProcCluster reference(Topology::uniform(data, 6, 9101));

  QueryConfig q03, q04, q05;
  q03.q = 0.3;
  q04.q = 0.4;
  q05.q = 0.5;
  const QueryResult ref03 = reference.engine().runEdsud(q03);
  const QueryResult ref04 = reference.engine().runEdsud(q04);
  const QueryResult ref05 = reference.engine().runEdsud(q05);

  QueryEngine engine(shared.coordinator(), 4);
  // Submission order deliberately tightest-first: the leader threshold is
  // min over members, not the first member's.
  QueryTicket t05 = engine.submitBatched(Algo::kEdsud, q05, batched());
  QueryTicket t03 = engine.submitBatched(Algo::kEdsud, q03, batched());
  QueryTicket t04 = engine.submitBatched(Algo::kEdsud, q04, batched());

  const QueryResult got05 = t05.get();
  const QueryResult got03 = t03.get();
  const QueryResult got04 = t04.get();

  expectSameAnswer(got03, ref03);
  expectSameAnswer(got04, ref04);
  expectSameAnswer(got05, ref05);
  // Each member carries its own session id and a renumbered progress curve.
  EXPECT_EQ(got03.id, t03.id());
  EXPECT_EQ(got05.id, t05.id());
  ASSERT_EQ(got05.progress.size(), got05.skyline.size());
  for (std::size_t i = 0; i < got05.progress.size(); ++i) {
    EXPECT_EQ(got05.progress[i].reported, i + 1);
  }

  // All three rode one descent: two members were merged away.
  EXPECT_GE(counterValue(shared, "dsud_batch_merged_total"), 2.0);
  EXPECT_EQ(engine.inFlight(), 0u);
}

TEST(BatchTest, IncompatibleQueriesFormSeparateGroups) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1200, 3, ValueDistribution::kAnticorrelated, 9200});
  InProcCluster shared(Topology::uniform(data, 5, 9201));
  InProcCluster reference(Topology::uniform(data, 5, 9201));

  QueryConfig full;
  full.q = 0.3;
  QueryConfig subspace;
  subspace.q = 0.3;
  subspace.mask = 0b011;
  const QueryResult refEdsud = reference.engine().runEdsud(full);
  const QueryResult refDsud = reference.engine().runDsud(full);
  const QueryResult refSub = reference.engine().runEdsud(subspace);

  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket a = engine.submitBatched(Algo::kEdsud, full, batched());
  QueryTicket b = engine.submitBatched(Algo::kDsud, full, batched());
  QueryTicket c = engine.submitBatched(Algo::kEdsud, subspace, batched());

  expectSameAnswer(a.get(), refEdsud);
  expectSameAnswer(b.get(), refDsud);
  expectSameAnswer(c.get(), refSub);
}

TEST(BatchTest, ProgressStreamsSplitPerMember) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kAnticorrelated, 9300});
  InProcCluster shared(Topology::uniform(data, 5, 9301));

  QueryConfig q02, q06;
  q02.q = 0.2;
  q06.q = 0.6;

  std::vector<double> probsLoose, probsTight;
  std::vector<std::size_t> seqTight;
  QueryOptions optLoose = batched();
  optLoose.progress = [&](const GlobalSkylineEntry& e, const ProgressPoint&) {
    probsLoose.push_back(e.globalSkyProb);
  };
  QueryOptions optTight = batched();
  optTight.progress = [&](const GlobalSkylineEntry& e,
                          const ProgressPoint& point) {
    probsTight.push_back(e.globalSkyProb);
    seqTight.push_back(point.reported);
  };

  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket loose = engine.submitBatched(Algo::kEdsud, q02, optLoose);
  QueryTicket tight = engine.submitBatched(Algo::kEdsud, q06, optTight);
  const QueryResult looseResult = loose.get();
  const QueryResult tightResult = tight.get();

  // Each member saw exactly its own answers, live, in emission order, with
  // a per-member 1-based sequence.
  EXPECT_EQ(probsLoose.size(), looseResult.skyline.size());
  EXPECT_EQ(probsTight.size(), tightResult.skyline.size());
  for (const double p : probsTight) EXPECT_GE(p, 0.6);
  for (std::size_t i = 0; i < seqTight.size(); ++i) {
    EXPECT_EQ(seqTight[i], i + 1);
  }
  EXPECT_GT(probsLoose.size(), probsTight.size());
}

TEST(BatchTest, SiteFailureDegradesEveryMemberIdentically) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1200, 2, ValueDistribution::kAnticorrelated, 9400});
  const SiteId victim = 2;
  // dropRate = 1.0 scoped to one site: deterministically dead from its
  // first frame, for the shared run and the solo references alike.
  ClusterConfig chaotic;
  chaotic.chaos = ChaosSpec{.dropRate = 1.0, .onlySite = victim};
  InProcCluster shared(Topology::uniform(data, 5, 9401), chaotic);
  InProcCluster reference(Topology::uniform(data, 5, 9401), chaotic);

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;

  QueryConfig q03, q05;
  q03.q = 0.3;
  q05.q = 0.5;
  const QueryResult ref03 = reference.engine().runEdsud(q03, degrade);
  const QueryResult ref05 = reference.engine().runEdsud(q05, degrade);
  ASSERT_TRUE(ref03.degraded);

  QueryOptions batchedDegrade = batched();
  batchedDegrade.fault.onSiteFailure = OnSiteFailure::kDegrade;
  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket t03 = engine.submitBatched(Algo::kEdsud, q03, batchedDegrade);
  QueryTicket t05 = engine.submitBatched(Algo::kEdsud, q05, batchedDegrade);
  const QueryResult got03 = t03.get();
  const QueryResult got05 = t05.get();

  expectSameAnswer(got03, ref03);
  expectSameAnswer(got05, ref05);
  for (const QueryResult* r : {&got03, &got05}) {
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->excludedSites, std::vector<SiteId>{victim});
  }
}

TEST(BatchTest, MixedFaultHandlingNeverShares) {
  // A kFail member must not ride a kDegrade leader (it would silently
  // accept a partial answer), so fault options partition groups.
  const Dataset data = generateSynthetic(
      SyntheticSpec{800, 2, ValueDistribution::kIndependent, 9500});
  InProcCluster shared(Topology::uniform(data, 4, 9501));
  InProcCluster reference(Topology::uniform(data, 4, 9501));

  QueryConfig config;
  config.q = 0.3;
  const QueryResult ref = reference.engine().runEdsud(config);

  QueryOptions failFast = batched();
  QueryOptions degrade = batched();
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;

  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket a = engine.submitBatched(Algo::kEdsud, config, failFast);
  QueryTicket b = engine.submitBatched(Algo::kEdsud, config, degrade);
  expectSameAnswer(a.get(), ref);
  expectSameAnswer(b.get(), ref);
  // Healthy cluster: both complete clean, but in two groups.
  EXPECT_GE(counterValue(shared, "dsud_batch_flushes_total"), 2.0);
}

TEST(BatchTest, CancelledMemberDoesNotPoisonItsGroup) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 9600});
  InProcCluster shared(Topology::uniform(data, 4, 9601));
  InProcCluster reference(Topology::uniform(data, 4, 9601));

  QueryConfig q03, q05;
  q03.q = 0.3;
  q05.q = 0.5;
  // The cancelled member is the loosest: the group must re-derive its
  // leader threshold from the survivors, not run at 0.3 anyway.
  const QueryResult ref05 = reference.engine().runEdsud(q05);

  QueryOptions doomed = batched(0.2);
  doomed.cancel = std::make_shared<std::atomic<bool>>(true);
  QueryOptions healthy = batched(0.2);

  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket cancelled = engine.submitBatched(Algo::kEdsud, q03, doomed);
  QueryTicket fine = engine.submitBatched(Algo::kEdsud, q05, healthy);

  EXPECT_THROW(cancelled.get(), QueryCancelled);
  expectSameAnswer(fine.get(), ref05);
  EXPECT_EQ(engine.inFlight(), 0u);
}

TEST(BatchTest, EngineTeardownFlushesParkedGroups) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{800, 2, ValueDistribution::kIndependent, 9700});
  InProcCluster shared(Topology::uniform(data, 4, 9701));
  InProcCluster reference(Topology::uniform(data, 4, 9701));

  QueryConfig config;
  config.q = 0.3;
  const QueryResult ref = reference.engine().runEdsud(config);

  QueryTicket ticket;
  {
    QueryEngine engine(shared.coordinator(), 2);
    // A window far longer than the engine's lifetime: destruction must
    // flush the parked group, not strand the ticket.
    ticket = engine.submitBatched(Algo::kEdsud, config, batched(30.0));
  }
  expectSameAnswer(ticket.get(), ref);
}

TEST(BatchTest, FullGroupFlushesBeforeTheWindowCloses) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{800, 2, ValueDistribution::kIndependent, 9800});
  InProcCluster shared(Topology::uniform(data, 4, 9801));
  InProcCluster reference(Topology::uniform(data, 4, 9801));

  QueryConfig config;
  config.q = 0.3;
  const QueryResult ref = reference.engine().runEdsud(config);

  QueryOptions options = batched(30.0);  // would park ~forever...
  options.batching.maxMerge = 2;         // ...but fills after two members
  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket a = engine.submitBatched(Algo::kEdsud, config, options);
  QueryTicket b = engine.submitBatched(Algo::kEdsud, config, options);
  expectSameAnswer(a.get(), ref);
  expectSameAnswer(b.get(), ref);
}

TEST(BatchTest, CacheHitResolvesAWholeGroup) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1200, 2, ValueDistribution::kAnticorrelated, 9900});
  InProcCluster shared(Topology::uniform(data, 4, 9901));
  ResultCache cache;
  QueryEngine engine(shared.coordinator(), 4);
  engine.setResultCache(&cache);

  QueryConfig config;
  config.q = 0.3;
  const QueryResult warm = engine.run(Algo::kEdsud, config);
  EXPECT_GT(warm.stats.tuplesShipped, 0u);

  // The leader runs through the cache-aware dispatch: a whole batched
  // group lands on the stored answer, no descent at all.
  QueryTicket a = engine.submitBatched(Algo::kEdsud, config, batched());
  QueryTicket b = engine.submitBatched(Algo::kEdsud, config, batched());
  const QueryResult gotA = a.get();
  const QueryResult gotB = b.get();
  expectSameAnswer(gotA, warm);
  expectSameAnswer(gotB, warm);
  EXPECT_EQ(gotA.stats.tuplesShipped, 0u);
  EXPECT_EQ(gotB.stats.tuplesShipped, 0u);
}

}  // namespace
}  // namespace dsud
