#include "skyline/bbs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(BbsTest, EmptyTree) {
  const PRTree tree(2);
  EXPECT_TRUE(bbsSkyline(tree, {.q = 0.3}).empty());
}

TEST(BbsTest, SingleTuple) {
  Dataset data = testutil::makeDataset(2, {{0.5, 0.5, 0.7}});
  const PRTree tree = PRTree::bulkLoad(data);
  const auto sky = bbsSkyline(tree, {.q = 0.3});
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_DOUBLE_EQ(sky[0].skyProb, 0.7);
  EXPECT_TRUE(bbsSkyline(tree, {.q = 0.8}).empty());
}

struct BbsCase {
  std::size_t n;
  std::size_t dims;
  ValueDistribution dist;
  double q;
  std::uint64_t seed;
};

class BbsParamTest : public ::testing::TestWithParam<BbsCase> {};

TEST_P(BbsParamTest, MatchesLinearScanExactly) {
  const BbsCase& c = GetParam();
  const Dataset data =
      generateSynthetic(SyntheticSpec{c.n, c.dims, c.dist, c.seed});
  const PRTree tree = PRTree::bulkLoad(data);

  const auto expected = linearSkyline(data, {.q = c.q});
  const auto got = bbsSkyline(tree, {.q = c.q});

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id);
    EXPECT_NEAR(got[i].skyProb, expected[i].skyProb, 1e-9);
    EXPECT_EQ(got[i].values, expected[i].values);
    EXPECT_EQ(got[i].prob, expected[i].prob);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsParamTest,
    ::testing::Values(
        BbsCase{200, 2, ValueDistribution::kIndependent, 0.3, 21},
        BbsCase{200, 2, ValueDistribution::kAnticorrelated, 0.3, 22},
        BbsCase{200, 3, ValueDistribution::kIndependent, 0.5, 23},
        BbsCase{500, 3, ValueDistribution::kAnticorrelated, 0.3, 24},
        BbsCase{500, 4, ValueDistribution::kIndependent, 0.7, 25},
        BbsCase{500, 2, ValueDistribution::kCorrelated, 0.3, 26},
        BbsCase{1000, 2, ValueDistribution::kIndependent, 0.9, 27},
        BbsCase{1000, 5, ValueDistribution::kIndependent, 0.3, 28},
        BbsCase{2000, 3, ValueDistribution::kAnticorrelated, 0.5, 29}),
    [](const ::testing::TestParamInfo<BbsCase>& info) {
      const BbsCase& c = info.param;
      return "n" + std::to_string(c.n) + "_d" + std::to_string(c.dims) + "_" +
             distributionName(c.dist) + "_q" +
             std::to_string(static_cast<int>(c.q * 10));
    });

TEST(BbsTest, SubspaceMatchesLinearScan) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{400, 3, ValueDistribution::kIndependent, 31});
  const PRTree tree = PRTree::bulkLoad(data);
  for (const DimMask mask :
       {DimMask{0b011}, DimMask{0b101}, DimMask{0b110}, DimMask{0b001}}) {
    const auto expected = linearSkyline(data, {.mask = mask, .q = 0.3});
    const auto got = bbsSkyline(tree, {.mask = mask, .q = 0.3});
    EXPECT_EQ(testutil::idsOf(got), testutil::idsOf(expected))
        << "mask=" << mask;
  }
}

TEST(BbsTest, PruningActuallyHappens) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kIndependent, 33});
  const PRTree tree = PRTree::bulkLoad(data);
  BbsStats stats;
  bbsSkyline(tree, {.q = 0.3}, &stats);
  EXPECT_GT(stats.nodesPruned, 0u);
  // Far fewer tuples evaluated than stored: the point of the index.
  EXPECT_LT(stats.tuplesEvaluated, data.size() / 2);
}

TEST(BbsTest, HigherThresholdPrunesMore) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{5000, 3, ValueDistribution::kAnticorrelated, 34});
  const PRTree tree = PRTree::bulkLoad(data);
  BbsStats low;
  BbsStats high;
  bbsSkyline(tree, {.q = 0.3}, &low);
  bbsSkyline(tree, {.q = 0.9}, &high);
  EXPECT_LE(high.tuplesEvaluated, low.tuplesEvaluated);
}

TEST(BbsTest, StreamEmitsInAscendingL1Order) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 35});
  const PRTree tree = PRTree::bulkLoad(data);
  double lastKey = -1e300;
  std::size_t count = 0;
  bbsSkylineStream(tree, {.q = 0.3}, [&](const ProbSkylineEntry& e) {
    const double key = e.values[0] + e.values[1];
    EXPECT_GE(key, lastKey);
    lastKey = key;
    ++count;
    return true;
  });
  EXPECT_EQ(count, bbsSkyline(tree, {.q = 0.3}).size());
}

TEST(BbsTest, StreamEarlyExitStops) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 36});
  const PRTree tree = PRTree::bulkLoad(data);
  std::size_t count = 0;
  bbsSkylineStream(tree, {.q = 0.3}, [&](const ProbSkylineEntry&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3u);
}

TEST(BbsTest, CertainDataGivesClassicSkyline) {
  Dataset data(2);
  // Grid of points with P = 1: the skyline is the anti-diagonal staircase.
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      const std::array<double, 2> v = {double(x), double(y)};
      data.add(v, 1.0);
    }
  }
  const PRTree tree = PRTree::bulkLoad(data);
  const auto sky = bbsSkyline(tree, {.q = 0.5});
  // Only (0, 0) is undominated in a full grid.
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0].values, (std::vector<double>{0.0, 0.0}));
}

TEST(BbsTest, WorksOnDynamicallyBuiltTree) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{600, 3, ValueDistribution::kIndependent, 37});
  PRTree tree(3);
  for (std::size_t row = 0; row < data.size(); ++row) {
    tree.insert(data.id(row), data.values(row), data.prob(row));
  }
  EXPECT_EQ(testutil::idsOf(bbsSkyline(tree, {.q = 0.3})),
            testutil::idsOf(linearSkyline(data, {.q = 0.3})));
}

}  // namespace
}  // namespace dsud
