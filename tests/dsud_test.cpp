// End-to-end correctness of the distributed algorithms: DSUD, e-DSUD and the
// naive baseline must all report exactly the centralised answer
// {t : P_gsky(t) >= q} with exact probabilities, for every combination of
// site count, dimensionality, threshold and distribution.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

struct DistCase {
  std::size_t n;
  std::size_t m;
  std::size_t dims;
  ValueDistribution dist;
  double q;
  std::uint64_t seed;
};

void expectMatchesGroundTruth(const QueryResult& result, const Dataset& global,
                              double q) {
  const auto expected = linearSkyline(global, {.q = q});
  auto got = result.skyline;
  sortByGlobalProbability(got);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tuple.id, expected[i].id) << "rank " << i;
    EXPECT_NEAR(got[i].globalSkyProb, expected[i].skyProb, 1e-9);
    EXPECT_EQ(got[i].tuple.values, expected[i].values);
  }
}

class DistributedParamTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedParamTest, AllAlgorithmsMatchCentralisedAnswer) {
  const DistCase& c = GetParam();
  const Dataset global =
      generateSynthetic(SyntheticSpec{c.n, c.dims, c.dist, c.seed});
  InProcCluster cluster(Topology::uniform(global, c.m, c.seed + 1000));

  QueryConfig config;
  config.q = c.q;

  const QueryResult naive = cluster.engine().runNaive(config);
  expectMatchesGroundTruth(naive, global, c.q);

  const QueryResult dsud = cluster.engine().runDsud(config);
  expectMatchesGroundTruth(dsud, global, c.q);

  const QueryResult edsud = cluster.engine().runEdsud(config);
  expectMatchesGroundTruth(edsud, global, c.q);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedParamTest,
    ::testing::Values(
        DistCase{200, 1, 2, ValueDistribution::kIndependent, 0.3, 1},
        DistCase{200, 4, 2, ValueDistribution::kIndependent, 0.3, 2},
        DistCase{500, 8, 2, ValueDistribution::kAnticorrelated, 0.3, 3},
        DistCase{500, 8, 3, ValueDistribution::kIndependent, 0.5, 4},
        DistCase{500, 5, 4, ValueDistribution::kCorrelated, 0.3, 5},
        DistCase{1000, 16, 3, ValueDistribution::kAnticorrelated, 0.7, 6},
        DistCase{1000, 10, 2, ValueDistribution::kIndependent, 0.9, 7},
        DistCase{2000, 20, 3, ValueDistribution::kIndependent, 0.3, 8},
        DistCase{2000, 32, 2, ValueDistribution::kAnticorrelated, 0.5, 9},
        DistCase{300, 64, 2, ValueDistribution::kIndependent, 0.3, 10}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      const DistCase& c = info.param;
      return "n" + std::to_string(c.n) + "_m" + std::to_string(c.m) + "_d" +
             std::to_string(c.dims) + "_" + distributionName(c.dist) + "_q" +
             std::to_string(static_cast<int>(c.q * 10)) + "_s" +
             std::to_string(c.seed);
    });

TEST(DsudTest, NaiveBandwidthEqualsDatabaseSize) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{400, 2, ValueDistribution::kIndependent, 11});
  InProcCluster cluster(Topology::uniform(global, 4, 12));
  const QueryResult result = cluster.engine().runNaive(QueryConfig{});
  // The baseline ships |D| tuples, nothing else (paper Sec. 3.2).
  EXPECT_EQ(result.stats.tuplesShipped, global.size());
}

TEST(DsudTest, DsudShipsFarLessThanNaive) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{5000, 2, ValueDistribution::kIndependent, 13});
  InProcCluster cluster(Topology::uniform(global, 10, 14));
  const QueryResult naive = cluster.engine().runNaive(QueryConfig{});
  const QueryResult dsud = cluster.engine().runDsud(QueryConfig{});
  EXPECT_LT(dsud.stats.tuplesShipped, naive.stats.tuplesShipped / 2);
}

TEST(DsudTest, ProgressPointsAreMonotone) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 15});
  InProcCluster cluster(Topology::uniform(global, 8, 16));
  const QueryResult result = cluster.engine().runDsud(QueryConfig{});
  ASSERT_EQ(result.progress.size(), result.skyline.size());
  for (std::size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_EQ(result.progress[i].reported, i + 1);
    EXPECT_GE(result.progress[i].tuplesShipped,
              result.progress[i - 1].tuplesShipped);
    EXPECT_GE(result.progress[i].seconds, result.progress[i - 1].seconds);
  }
  // Progressive: the first answer arrives long before the query finishes.
  if (result.skyline.size() > 3) {
    EXPECT_LT(result.progress.front().tuplesShipped,
              result.stats.tuplesShipped);
  }
}

TEST(DsudTest, ProgressCallbackFiresPerAnswer) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 17});
  InProcCluster cluster(Topology::uniform(global, 5, 18));
  std::size_t calls = 0;
  QueryOptions options;
  options.progress =
      [&](const GlobalSkylineEntry& entry, const ProgressPoint& point) {
        ++calls;
        EXPECT_EQ(point.reported, calls);
        EXPECT_GE(entry.globalSkyProb, 0.3);
      };
  const QueryResult result = cluster.engine().runDsud(QueryConfig{}, options);
  EXPECT_EQ(calls, result.skyline.size());
}

TEST(DsudTest, StatsCountersAreConsistent) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kIndependent, 19});
  InProcCluster cluster(Topology::uniform(global, 6, 20));
  const QueryResult result = cluster.engine().runDsud(QueryConfig{});
  // DSUD broadcasts every pulled candidate; each broadcast ships m-1 tuples.
  EXPECT_EQ(result.stats.broadcasts, result.stats.candidatesPulled);
  EXPECT_EQ(result.stats.tuplesShipped,
            result.stats.candidatesPulled +
                result.stats.broadcasts * (cluster.siteCount() - 1));
  EXPECT_EQ(result.stats.expunged, 0u);  // DSUD never expunges
  EXPECT_GT(result.stats.bytesShipped, 0u);
  EXPECT_GT(result.stats.roundTrips, 0u);
}

TEST(DsudTest, LocalPruningReducesCandidatePulls) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{4000, 2, ValueDistribution::kIndependent, 21});
  InProcCluster cluster(Topology::uniform(global, 8, 22));
  const QueryResult result = cluster.engine().runDsud(QueryConfig{});
  // Total local skyline size: what would ship without any pruning.
  std::size_t totalLocalSkyline = result.stats.prunedAtSites;
  totalLocalSkyline += result.stats.candidatesPulled;
  EXPECT_GT(result.stats.prunedAtSites, 0u);
  EXPECT_LT(result.stats.candidatesPulled, totalLocalSkyline);
}

TEST(DsudTest, RepeatedQueriesAreDeterministic) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 3, ValueDistribution::kIndependent, 23});
  InProcCluster clusterA(Topology::uniform(global, 7, 24));
  InProcCluster clusterB(Topology::uniform(global, 7, 24));
  const QueryResult a = clusterA.engine().runDsud(QueryConfig{});
  const QueryResult b = clusterB.engine().runDsud(QueryConfig{});
  EXPECT_EQ(testutil::idsOf(a.skyline), testutil::idsOf(b.skyline));
  EXPECT_EQ(a.stats.tuplesShipped, b.stats.tuplesShipped);
}

TEST(DsudTest, ThresholdMonotonicityDistributed) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 3, ValueDistribution::kAnticorrelated, 25});
  InProcCluster cluster(Topology::uniform(global, 6, 26));
  std::vector<std::uint64_t> bandwidth;
  std::vector<std::size_t> sizes;
  for (double q : {0.3, 0.5, 0.7, 0.9}) {
    QueryConfig config;
    config.q = q;
    const QueryResult result = cluster.engine().runDsud(config);
    bandwidth.push_back(result.stats.tuplesShipped);
    sizes.push_back(result.skyline.size());
  }
  // Larger q: fewer answers and less bandwidth (paper Sec. 7.3).
  EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
  EXPECT_TRUE(std::is_sorted(bandwidth.rbegin(), bandwidth.rend()));
}

}  // namespace
}  // namespace dsud
