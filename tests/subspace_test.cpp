// Subspace skyline queries (paper Sec. 4): the framework restricted to a
// user-specified subset of dimensions must match the centralised answer on
// the projected space.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

class SubspaceParamTest
    : public ::testing::TestWithParam<std::tuple<DimMask, std::uint64_t>> {};

TEST_P(SubspaceParamTest, DistributedMatchesCentralisedProjection) {
  const auto [mask, seed] = GetParam();
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 4, ValueDistribution::kIndependent, seed});
  InProcCluster cluster(Topology::uniform(global, 8, seed + 1));

  QueryConfig config;
  config.q = 0.3;
  config.mask = mask;

  const auto expected = linearSkyline(global, {.mask = mask, .q = config.q});
  for (QueryResult result : {cluster.engine().runDsud(config),
                             cluster.engine().runEdsud(config),
                             cluster.engine().runNaive(config)}) {
    sortByGlobalProbability(result.skyline);
    ASSERT_EQ(result.skyline.size(), expected.size()) << "mask=" << mask;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.skyline[i].tuple.id, expected[i].id);
      EXPECT_NEAR(result.skyline[i].globalSkyProb, expected[i].skyProb, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Masks, SubspaceParamTest,
    ::testing::Values(std::make_tuple(DimMask{0b0011}, 61),
                      std::make_tuple(DimMask{0b0101}, 62),
                      std::make_tuple(DimMask{0b1110}, 63),
                      std::make_tuple(DimMask{0b1000}, 64),
                      std::make_tuple(DimMask{0b1111}, 65)),
    [](const auto& info) {
      return "mask" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SubspaceTest, SingleDimensionSkylineIsMinimumStaircase) {
  // On one dimension the skyline probability of a tuple is P(t) times the
  // survival of every strictly smaller tuple on that dimension.
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(2);
  sites[0].add(0, std::vector<double>{1.0, 9.0}, 0.5);
  sites[1].add(1, std::vector<double>{2.0, 1.0}, 0.8);

  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = 0.2;
  config.mask = 0b01;  // price only
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  ASSERT_EQ(result.skyline.size(), 2u);
  EXPECT_EQ(result.skyline[0].tuple.id, 0u);  // P_gsky = 0.5
  EXPECT_NEAR(result.skyline[0].globalSkyProb, 0.5, 1e-12);
  EXPECT_NEAR(result.skyline[1].globalSkyProb, 0.8 * 0.5, 1e-12);
}

TEST(SubspaceTest, SubspaceAnswerCanDifferFromFullSpace) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 3, ValueDistribution::kAnticorrelated, 66});
  InProcCluster cluster(Topology::uniform(global, 4, 67));
  QueryConfig fullConfig;
  QueryConfig subConfig;
  subConfig.mask = 0b011;
  const auto full = cluster.engine().runEdsud(fullConfig);
  const auto sub = cluster.engine().runEdsud(subConfig);
  // The 2-D projection has (weakly) fewer skyline tuples than the 3-D space
  // on anticorrelated data; mostly we check both are valid and different.
  EXPECT_NE(testutil::idsOf(full.skyline), testutil::idsOf(sub.skyline));
  EXPECT_LE(sub.skyline.size(), full.skyline.size());
}

}  // namespace
}  // namespace dsud
