// Prometheus text-exposition (version 0.0.4) parser and linter shared by
// obs_test, server_test, and the prom_lint CLI the CI server-smoke job runs
// against a live /metrics endpoint.
//
// Deliberately gtest-free: every check reports by appending a human-readable
// message to an error list instead of asserting, so the same core backs both
// EXPECT-style test failures and a standalone validator's exit code.
//
// What it enforces: every sample line is `name[{labels}] value`, every
// family is typed by exactly one `# TYPE` line before use, and histogram
// families have cumulative buckets ending in le="+Inf" whose value equals
// `_count`, with a `_sum` series per label set.
#pragma once

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dsud::promtest {

struct PromSample {
  std::string family;
  std::string suffix;  // "", "_bucket", "_sum" or "_count"
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromExposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::vector<std::string> typeOrder;        // TYPE lines as encountered
  std::vector<PromSample> samples;
};

/// Strips the histogram series suffix so samples map back to their family.
inline std::string promFamily(const std::string& name,
                              std::string* suffix = nullptr) {
  for (const char* candidate : {"_bucket", "_sum", "_count"}) {
    const std::string s = candidate;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      if (suffix != nullptr) *suffix = s;
      return name.substr(0, name.size() - s.size());
    }
  }
  if (suffix != nullptr) suffix->clear();
  return name;
}

/// Parses `text` into `out`, appending a message per malformed line to
/// `errors`.  Parsing continues past errors so one bad line does not hide
/// the rest of the report.
inline void parsePrometheus(const std::string& text, PromExposition& out,
                            std::vector<std::string>& errors) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::size_t space = line.find(' ', 7);
        if (space == std::string::npos) {
          errors.push_back("malformed TYPE line: " + line);
          continue;
        }
        std::string family = line.substr(7, space - 7);
        out.types[family] = line.substr(space + 1);
        out.typeOrder.push_back(std::move(family));
      }
      continue;
    }

    PromSample sample;
    bool bad = false;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    std::string name = line.substr(0, i);
    if (name.empty()) {
      errors.push_back("sample line without a metric name: " + line);
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          errors.push_back("malformed label in: " + line);
          bad = true;
          break;
        }
        std::string value;
        std::size_t j = eq + 2;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\') ++j;  // escaped char
          if (j >= line.size()) break;
          value += line[j++];
        }
        if (j >= line.size()) {  // ran off the line inside the value
          errors.push_back("unterminated label value in: " + line);
          bad = true;
          break;
        }
        sample.labels[line.substr(i, eq - i)] = value;
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (bad) continue;
      if (i >= line.size()) {
        errors.push_back("missing closing brace in: " + line);
        continue;
      }
      ++i;  // closing brace
    }
    if (i >= line.size() || line[i] != ' ') {
      errors.push_back("missing value separator in: " + line);
      continue;
    }
    const std::string valueText = line.substr(i + 1);
    char* end = nullptr;
    sample.value = std::strtod(valueText.c_str(), &end);
    if (end == valueText.c_str() || *end != '\0') {
      errors.push_back("bad sample value in: " + line);
      continue;
    }
    sample.family = promFamily(name, &sample.suffix);
    out.samples.push_back(std::move(sample));
  }
}

/// Full conformance lint: parse plus the structural rules above.  Returns
/// every violation found (empty = conformant).  `out`, when given, receives
/// the parsed exposition for further shape checks by the caller.
inline std::vector<std::string> lintExposition(const std::string& text,
                                               PromExposition* out = nullptr) {
  PromExposition local;
  PromExposition& exp = out != nullptr ? *out : local;
  std::vector<std::string> errors;
  parsePrometheus(text, exp, errors);
  if (exp.samples.empty()) {
    errors.push_back("exposition has no samples");
  }
  for (const PromSample& s : exp.samples) {
    if (exp.types.count(s.family) == 0) {
      errors.push_back("sample without # TYPE line: " + s.family);
    }
  }
  // Exactly one TYPE line per family — Prometheus rejects duplicates, and
  // the exporter must group a family's labeled series together.
  std::map<std::string, int> typeLines;
  for (const std::string& family : exp.typeOrder) {
    if (++typeLines[family] == 2) {
      errors.push_back("duplicate # TYPE line: " + family);
    }
  }
  // Histogram families: cumulative buckets ending in le="+Inf", with the
  // +Inf bucket equal to `_count` and a `_sum` series per label set.
  for (const auto& [family, type] : exp.types) {
    if (type != "histogram") continue;
    const auto flatten = [](std::map<std::string, std::string> labels) {
      labels.erase("le");
      std::string flat;
      for (const auto& [k, v] : labels) flat += k + "=" + v + ";";
      return flat;
    };
    std::map<std::string, std::vector<std::pair<double, double>>> buckets;
    std::map<std::string, double> counts;
    std::map<std::string, double> sums;
    for (const PromSample& s : exp.samples) {
      if (s.family != family) continue;
      if (s.suffix == "_bucket") {
        if (s.labels.count("le") == 0) {
          errors.push_back(family + ": bucket sample without an le label");
          continue;
        }
        const std::string& le = s.labels.at("le");
        const double bound = le == "+Inf"
                                 ? std::numeric_limits<double>::infinity()
                                 : std::strtod(le.c_str(), nullptr);
        buckets[flatten(s.labels)].emplace_back(bound, s.value);
      } else if (s.suffix == "_count") {
        counts[flatten(s.labels)] = s.value;
      } else if (s.suffix == "_sum") {
        sums[flatten(s.labels)] = s.value;
      } else {
        errors.push_back(family + ": bare sample in a histogram family");
      }
    }
    if (buckets.empty()) {
      errors.push_back(family + ": histogram family without bucket samples");
    }
    for (auto& [flat, series] : buckets) {
      for (std::size_t i = 1; i < series.size(); ++i) {
        if (series[i - 1].first > series[i].first) {
          errors.push_back(family + ": bucket bounds out of order");
        }
        if (series[i - 1].second > series[i].second) {
          errors.push_back(family + ": buckets must be cumulative");
        }
      }
      if (!std::isinf(series.back().first)) {
        errors.push_back(family + ": must end with le=\"+Inf\"");
        continue;
      }
      if (counts.count(flat) == 0) {
        errors.push_back(family + "{" + flat + "} has buckets but no _count");
      } else if (series.back().second != counts[flat]) {
        errors.push_back(family + ": +Inf bucket must equal _count");
      }
      if (sums.count(flat) == 0) {
        errors.push_back(family + "{" + flat + "} has buckets but no _sum");
      }
    }
  }
  return errors;
}

}  // namespace dsud::promtest
