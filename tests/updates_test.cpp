// Update maintenance (paper Sec. 5.4): after any stream of inserts and
// deletes, the maintained SKY(H) must equal a from-scratch centralised
// recompute, for both the incremental and the naive strategy.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

constexpr double kQ = 0.3;

/// Mirror of the cluster contents, maintained alongside the updates, used to
/// compute the ground truth after each step.
struct Mirror {
  std::vector<Dataset> sites;

  explicit Mirror(std::vector<Dataset> initial) : sites(std::move(initial)) {}

  void apply(const UpdateEvent& e) {
    if (e.kind == UpdateEvent::Kind::kInsert) {
      sites[e.site].add(e.tuple.id, e.tuple.values, e.tuple.prob);
    } else {
      sites[e.site].eraseId(e.tuple.id);
    }
  }

  std::vector<TupleId> truthIds(double q) const {
    return testutil::idsOf(testutil::groundTruth(sites, q));
  }
};

void expectSkylineMatchesTruth(const SkylineMaintainer& maintainer,
                               const Mirror& mirror, double q,
                               const std::string& context) {
  auto got = maintainer.skyline();
  auto gotIds = testutil::idsOf(got);
  std::sort(gotIds.begin(), gotIds.end());
  auto want = mirror.truthIds(q);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(gotIds, want) << context;
  // Also verify the cached probabilities are exact.
  const Dataset global = testutil::unionOf(mirror.sites);
  const auto probs = skylineProbabilitiesLinear(global);
  for (const GlobalSkylineEntry& e : got) {
    const auto row = global.rowOf(e.tuple.id);
    ASSERT_TRUE(row.has_value()) << context;
    EXPECT_NEAR(e.globalSkyProb, probs[*row], 1e-9) << context;
  }
}

std::vector<Dataset> initialSites(std::uint64_t seed, std::size_t n = 400,
                                  std::size_t m = 4) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{n, 2, ValueDistribution::kIndependent, seed});
  Rng rng(seed + 1);
  return partitionUniform(global, m, rng);
}

UpdateEvent randomInsert(Rng& rng, std::size_t m, TupleId id) {
  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kInsert;
  e.site = static_cast<SiteId>(rng.below(m));
  e.tuple = Tuple{id, {rng.uniform(), rng.uniform()}, rng.existentialUniform()};
  return e;
}

TEST(UpdatesTest, InitializeMatchesQuery) {
  auto sites = initialSites(70);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "after init");
}

TEST(UpdatesTest, ApplyBeforeInitializeThrows) {
  auto sites = initialSites(71);
  InProcCluster cluster(Topology::fromPartitions(sites));
  SkylineMaintainer maintainer(cluster.coordinator(), QueryConfig{},
                               MaintenanceStrategy::kIncremental);
  UpdateEvent e;
  EXPECT_THROW(maintainer.apply(e), std::logic_error);
}

TEST(UpdatesTest, InsertDominatingEverythingReplacesSkyline) {
  auto sites = initialSites(72);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));

  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kInsert;
  e.site = 0;
  e.tuple = Tuple{100000, {-1.0, -1.0}, 0.95};
  mirror.apply(e);
  const UpdateStats stats = maintainer.apply(e);
  EXPECT_TRUE(stats.skylineChanged);
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "dominating insert");
  // The new tuple is on top.
  EXPECT_EQ(maintainer.skyline().front().tuple.id, 100000u);
}

TEST(UpdatesTest, IrrelevantInsertCostsNothing) {
  auto sites = initialSites(73);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));

  // Deep in the dominated region with a tiny probability: the site resolves
  // it locally with zero network tuples.
  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kInsert;
  e.site = 1;
  e.tuple = Tuple{100001, {50.0, 50.0}, 0.01};
  mirror.apply(e);
  const UpdateStats stats = maintainer.apply(e);
  EXPECT_EQ(stats.tuplesShipped, 0u);
  EXPECT_FALSE(stats.skylineChanged);
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "irrelevant insert");
}

TEST(UpdatesTest, DeleteOfSkylineMemberPromotesSuccessors) {
  // Constructed promotion scenario: a strong dominator suppresses a tuple
  // on another site; deleting it must promote the victim.
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(2);
  sites[0].add(0, std::vector<double>{1.0, 1.0}, 0.9);   // dominator
  sites[1].add(1, std::vector<double>{2.0, 2.0}, 0.8);   // suppressed: 0.08
  sites[1].add(2, std::vector<double>{9.0, 0.5}, 0.6);   // independent

  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));
  {
    auto ids = testutil::idsOf(maintainer.skyline());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<TupleId>{0, 2}));
  }

  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kDelete;
  e.site = 0;
  e.tuple = Tuple{0, {1.0, 1.0}, 0.9};
  mirror.apply(e);
  const UpdateStats stats = maintainer.apply(e);
  EXPECT_TRUE(stats.skylineChanged);
  auto ids = testutil::idsOf(maintainer.skyline());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<TupleId>{1, 2}));
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "promotion delete");
}

TEST(UpdatesTest, DeleteOfNonSkylineTupleCanStillPromote) {
  // The deleted tuple never qualified itself (P = 0.4 -> P_sky 0.4 > q
  // locally... use 0.25 < q so it is not even a local skyline answer), yet
  // its disappearance raises a suppressed tuple across the threshold.
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(2);
  sites[0].add(0, std::vector<double>{1.0, 1.0}, 0.25);  // below q itself
  sites[0].add(1, std::vector<double>{1.5, 1.5}, 0.35);
  sites[1].add(2, std::vector<double>{2.0, 2.0}, 0.55);
  // P_gsky(2) = 0.55 * 0.75 * 0.65 = 0.268 < 0.3 initially.

  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));
  {
    auto ids = testutil::idsOf(maintainer.skyline());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, mirror.truthIds(kQ));
  }

  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kDelete;
  e.site = 0;
  e.tuple = Tuple{0, {1.0, 1.0}, 0.25};
  mirror.apply(e);
  maintainer.apply(e);
  // Now P_gsky(2) = 0.55 * 0.65 = 0.3575 >= q.
  auto ids = testutil::idsOf(maintainer.skyline());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), TupleId{2}) != ids.end());
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "non-skyline delete");
}

TEST(UpdatesTest, DeleteOfMissingTupleIsNoOp) {
  auto sites = initialSites(74);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();
  Mirror mirror(std::move(sites));

  UpdateEvent e;
  e.kind = UpdateEvent::Kind::kDelete;
  e.site = 2;
  e.tuple = Tuple{999999, {0.5, 0.5}, 0.5};
  const UpdateStats stats = maintainer.apply(e);
  EXPECT_FALSE(stats.skylineChanged);
  EXPECT_EQ(stats.tuplesShipped, 0u);
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "missing delete");
}

class UpdateStreamTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 MaintenanceStrategy>> {};

TEST_P(UpdateStreamTest, RandomStreamStaysExact) {
  const auto [seed, strategy] = GetParam();
  auto sites = initialSites(seed, 300, 4);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config, strategy);
  maintainer.initialize();
  Mirror mirror(std::move(sites));

  Rng rng(seed + 500);
  TupleId nextId = 1000000;
  for (int step = 0; step < 40; ++step) {
    UpdateEvent e;
    const bool doInsert = rng.uniform() < 0.5;
    if (doInsert) {
      e = randomInsert(rng, 4, nextId++);
    } else {
      // Delete a random existing tuple from a random non-empty site.
      SiteId site = static_cast<SiteId>(rng.below(4));
      while (mirror.sites[site].empty()) {
        site = static_cast<SiteId>(rng.below(4));
      }
      const std::size_t row = rng.below(mirror.sites[site].size());
      const TupleRef ref = mirror.sites[site].at(row);
      e.kind = UpdateEvent::Kind::kDelete;
      e.site = site;
      e.tuple = Tuple{ref.id,
                      std::vector<double>(ref.values.begin(), ref.values.end()),
                      ref.prob};
    }
    mirror.apply(e);
    maintainer.apply(e);
    if (step % 8 == 7) {
      expectSkylineMatchesTruth(maintainer, mirror, kQ,
                                "step " + std::to_string(step));
    }
  }
  expectSkylineMatchesTruth(maintainer, mirror, kQ, "final");
}

INSTANTIATE_TEST_SUITE_P(
    Streams, UpdateStreamTest,
    ::testing::Combine(::testing::Values(80u, 81u, 82u),
                       ::testing::Values(MaintenanceStrategy::kIncremental,
                                         MaintenanceStrategy::kNaiveRecompute)),
    [](const auto& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == MaintenanceStrategy::kIncremental
                  ? "_incremental"
                  : "_naive");
    });

TEST(UpdatesTest, IncrementalIsCheaperThanNaive) {
  std::uint64_t incrementalTuples = 0;
  std::uint64_t naiveTuples = 0;
  for (const MaintenanceStrategy strategy :
       {MaintenanceStrategy::kIncremental,
        MaintenanceStrategy::kNaiveRecompute}) {
    auto sites = initialSites(83, 500, 6);
    InProcCluster cluster(Topology::fromPartitions(sites));
    QueryConfig config;
    config.q = kQ;
    SkylineMaintainer maintainer(cluster.coordinator(), config, strategy);
    maintainer.initialize();

    Rng rng(84);
    TupleId nextId = 2000000;
    std::uint64_t total = 0;
    for (int step = 0; step < 20; ++step) {
      const UpdateEvent e = randomInsert(rng, 6, nextId++);
      total += maintainer.apply(e).tuplesShipped;
    }
    (strategy == MaintenanceStrategy::kIncremental ? incrementalTuples
                                                   : naiveTuples) = total;
  }
  EXPECT_LT(incrementalTuples, naiveTuples / 2);
}

TEST(UpdatesTest, ReplicasStayConsistentAcrossSites) {
  auto sites = initialSites(85, 200, 3);
  InProcCluster cluster(Topology::fromPartitions(sites));
  QueryConfig config;
  config.q = kQ;
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();

  Rng rng(86);
  TupleId nextId = 3000000;
  for (int step = 0; step < 10; ++step) {
    maintainer.apply(randomInsert(rng, 3, nextId++));
  }

  auto skylineIds = testutil::idsOf(maintainer.skyline());
  std::sort(skylineIds.begin(), skylineIds.end());
  for (std::size_t s = 0; s < cluster.siteCount(); ++s) {
    std::vector<TupleId> replicaIds;
    for (const auto& r : cluster.site(s).replica()) {
      replicaIds.push_back(r.entry.tuple.id);
    }
    std::sort(replicaIds.begin(), replicaIds.end());
    EXPECT_EQ(replicaIds, skylineIds) << "site " << s;
  }
}

}  // namespace
}  // namespace dsud
