// Parity suite for the SIMD kernel backend (ISSUE 7): the AVX2 and scalar
// implementations must return *bit-identical* results — same dominance
// verdicts, same survival products, same P_sky vectors down to the last ulp —
// across dimensionalities, subspace masks, duplicate rows, and probability
// edge cases (0, 1, denormal-adjacent).  Anything weaker would make query
// answers depend on the build flags of the machine that served them.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/dataset.hpp"
#include "common/rng.hpp"
#include "geometry/dominance.hpp"
#include "kernel/kernel.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

using kernel::Backend;
using kernel::SoaBlock;

SoaBlock blockOf(const DatasetView& view) {
  return SoaBlock{view.cols(),       view.prob(), view.logSurv(),
                  view.size(),       view.paddedSize(),
                  view.dims()};
}

// Bitwise equality that treats NaN payloads and signed zeros as distinct —
// the contract is "same bits", not "same value".
::testing::AssertionResult bitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << std::hexfloat << a << " != " << b << " (bitwise)";
}

// A dataset exercising the hard cases: values drawn from a coarse integer
// grid (forcing exact ties and duplicate rows) mixed with continuous draws,
// probabilities spanning {0, 1, denormal-adjacent, ordinary}.
Dataset awkwardDataset(std::size_t dims, std::size_t n, Rng& rng) {
  Dataset data(dims);
  std::vector<double> values(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const bool grid = rng.uniform() < 0.5;
    for (std::size_t d = 0; d < dims; ++d) {
      values[d] = grid ? std::floor(rng.uniform(0.0, 4.0))
                       : rng.uniform(0.0, 10.0);
    }
    // Dataset::add requires prob in (0, 1]; exact 0 only exists in padding
    // slots, which the padding test below covers.
    double prob;
    switch (static_cast<int>(rng.uniform(0.0, 6.0))) {
      case 0: prob = 5e-324; break;                // smallest denormal
      case 1: prob = 1.0; break;
      case 2: prob = 1e-300; break;                // denormal-adjacent
      case 3: prob = 1.0 - 1e-16; break;           // survival underflow bait
      default: prob = rng.uniform(0.01, 0.99); break;
    }
    data.add(values, prob);
    if (grid && rng.uniform() < 0.25) data.add(values, prob);  // exact dup
  }
  return data;
}

// Every subspace mask worth checking for `dims`: full, each singleton, and a
// couple of random multi-dimension subsets.
std::vector<DimMask> masksFor(std::size_t dims, Rng& rng) {
  std::vector<DimMask> masks{fullMask(dims)};
  for (std::size_t d = 0; d < dims; ++d) masks.push_back(DimMask{1} << d);
  for (int k = 0; k < 2; ++k) {
    const DimMask m = static_cast<DimMask>(rng.uniform(1.0, double(fullMask(dims))));
    masks.push_back(m == 0 ? fullMask(dims) : m);
  }
  return masks;
}

TEST(KernelParityTest, BackendStatusIsConsistent) {
  if (kernel::simdAvailable()) {
    EXPECT_TRUE(kernel::simdCompiled());
    EXPECT_EQ(kernel::activeBackend(), Backend::kSimd);
    EXPECT_STREQ(kernel::backendName(), "avx2");
    EXPECT_NE(kernel::detail::simdBlockSurvival(), nullptr);
    EXPECT_NE(kernel::detail::simdBlockDominators(), nullptr);
    EXPECT_NE(kernel::detail::simdSurvivalExponents(), nullptr);
  } else {
    EXPECT_EQ(kernel::activeBackend(), Backend::kScalar);
    EXPECT_STREQ(kernel::backendName(), "scalar");
  }
}

// The scalar kernel must agree with the O(dims) reference predicate from
// geometry/ — run regardless of whether SIMD is compiled in.
TEST(KernelParityTest, ScalarDominatorsMatchReferencePredicate) {
  Rng rng(9001);
  for (std::size_t dims = 2; dims <= 8; ++dims) {
    const Dataset data = awkwardDataset(dims, 24, rng);
    const DatasetView view(data);
    const SoaBlock block = blockOf(view);
    for (DimMask mask : masksFor(dims, rng)) {
      for (std::size_t qi = 0; qi < data.size(); ++qi) {
        const std::uint64_t got = kernel::blockDominators(
            block, data.at(qi).values.data(), mask, Backend::kScalar);
        for (std::size_t row = 0; row < data.size() && row < 64; ++row) {
          const bool expected =
              dominates(data.at(row).values, data.at(qi).values, mask);
          EXPECT_EQ(((got >> row) & 1) != 0, expected)
              << "dims=" << dims << " mask=" << mask << " row=" << row
              << " q=" << qi;
        }
      }
    }
  }
}

TEST(KernelParityTest, DominatorVerdictsBitIdentical) {
  if (!kernel::simdAvailable()) GTEST_SKIP() << "AVX2 backend not active";
  Rng rng(42);
  for (std::size_t dims = 2; dims <= 8; ++dims) {
    const Dataset data = awkwardDataset(dims, 28, rng);
    const DatasetView view(data);
    const SoaBlock block = blockOf(view);
    for (DimMask mask : masksFor(dims, rng)) {
      for (std::size_t qi = 0; qi < data.size(); ++qi) {
        const double* q = data.at(qi).values.data();
        EXPECT_EQ(kernel::blockDominators(block, q, mask, Backend::kScalar),
                  kernel::blockDominators(block, q, mask, Backend::kSimd))
            << "dims=" << dims << " mask=" << mask << " q=" << qi;
      }
    }
  }
}

TEST(KernelParityTest, BlockSurvivalBitIdentical) {
  if (!kernel::simdAvailable()) GTEST_SKIP() << "AVX2 backend not active";
  Rng rng(1729);
  for (std::size_t dims = 2; dims <= 8; ++dims) {
    const Dataset data = awkwardDataset(dims, 32, rng);
    const DatasetView view(data);
    const SoaBlock block = blockOf(view);
    // A clip window covering roughly the lower half of value space.
    std::vector<double> lo(dims, 0.0), hi(dims);
    for (std::size_t d = 0; d < dims; ++d) hi[d] = rng.uniform(2.0, 8.0);
    for (DimMask mask : masksFor(dims, rng)) {
      for (std::size_t qi = 0; qi < data.size(); ++qi) {
        const double* q = data.at(qi).values.data();
        EXPECT_TRUE(bitEqual(
            kernel::blockSurvival(block, q, mask, nullptr, nullptr,
                                  Backend::kScalar),
            kernel::blockSurvival(block, q, mask, nullptr, nullptr,
                                  Backend::kSimd)));
        EXPECT_TRUE(bitEqual(
            kernel::blockSurvival(block, q, mask, lo.data(), hi.data(),
                                  Backend::kScalar),
            kernel::blockSurvival(block, q, mask, lo.data(), hi.data(),
                                  Backend::kSimd)));
      }
    }
  }
}

TEST(KernelParityTest, SurvivalExponentsBitIdentical) {
  if (!kernel::simdAvailable()) GTEST_SKIP() << "AVX2 backend not active";
  Rng rng(271828);
  for (std::size_t dims = 2; dims <= 8; ++dims) {
    const Dataset data = awkwardDataset(dims, 40, rng);
    const DatasetView view(data);
    const SoaBlock block = blockOf(view);
    std::vector<double> scalar(data.size()), simd(data.size());
    for (DimMask mask : masksFor(dims, rng)) {
      kernel::survivalExponents(block, mask, scalar.data(), Backend::kScalar);
      kernel::survivalExponents(block, mask, simd.data(), Backend::kSimd);
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_TRUE(bitEqual(scalar[i], simd[i]))
            << "dims=" << dims << " mask=" << mask << " row=" << i;
      }
    }
  }
}

// End-to-end: the full P_sky vector a query would return must not depend on
// the backend.  (linearSkyline runs kAuto internally; recompute both ways.)
TEST(KernelParityTest, PskyVectorsBitIdentical) {
  if (!kernel::simdAvailable()) GTEST_SKIP() << "AVX2 backend not active";
  Rng rng(31337);
  for (std::size_t dims = 2; dims <= 6; ++dims) {
    const Dataset data = awkwardDataset(dims, 48, rng);
    const DatasetView view(data);
    const SoaBlock block = blockOf(view);
    std::vector<double> expScalar(data.size()), expSimd(data.size());
    kernel::survivalExponents(block, fullMask(dims), expScalar.data(),
                              Backend::kScalar);
    kernel::survivalExponents(block, fullMask(dims), expSimd.data(),
                              Backend::kSimd);
    const auto fromLibrary = skylineProbabilitiesLinear(data);
    ASSERT_EQ(fromLibrary.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double pScalar = data.prob(i) * std::exp(expScalar[i]);
      const double pSimd = data.prob(i) * std::exp(expSimd[i]);
      EXPECT_TRUE(bitEqual(pScalar, pSimd)) << "dims=" << dims << " i=" << i;
      EXPECT_TRUE(bitEqual(fromLibrary[i], pSimd))
          << "dims=" << dims << " i=" << i;
    }
  }
}

// Probability edge rows behave exactly: P == 1 dominators force survival to
// 0 (log -inf), denormal-P dominators are near-no-ops with exact arithmetic,
// and a padded tail (P == 0 by construction) never leaks into any verdict or
// product.
TEST(KernelParityTest, EdgeProbabilitiesAndPadding) {
  const Dataset data = testutil::makeDataset(2, {
                                                    {1.0, 1.0, 1.0},
                                                    {2.0, 2.0, 5e-324},
                                                    {3.0, 3.0, 0.5},
                                                });
  const DatasetView view(data);
  const SoaBlock block = blockOf(view);
  ASSERT_EQ(view.paddedSize() % kernel::kBlock, 0u);
  ASSERT_GT(view.paddedSize(), view.size());
  const double probe[2] = {4.0, 4.0};
  for (Backend be : {Backend::kScalar, Backend::kAuto}) {
    // Dominators: rows 0..2 all dominate (4,4); padding rows must not.
    EXPECT_EQ(kernel::blockDominators(block, probe, fullMask(2), be),
              std::uint64_t{0b111});
    // Survival: (1-1)·(1-0)·(1-0.5) == exactly 0.
    EXPECT_TRUE(bitEqual(
        kernel::blockSurvival(block, probe, fullMask(2), nullptr, nullptr, be),
        0.0));
  }
  std::vector<double> exps(data.size());
  kernel::survivalExponents(block, fullMask(2), exps.data(), Backend::kScalar);
  EXPECT_TRUE(bitEqual(exps[0], 0.0));  // nothing dominates row 0
  EXPECT_EQ(exps[1], -std::numeric_limits<double>::infinity());  // P==1 above
  EXPECT_EQ(exps[2], -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace dsud
