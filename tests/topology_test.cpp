// Elastic cluster membership: the Topology API (factories, epochs, replica
// placement) and the InProcCluster admin surface built on it — online join,
// leave, and background repartitioning.  The load-bearing properties are
// determinism ones: a grown-then-rebalanced cluster answers bit-identically
// to a from-scratch cluster over the same STR cuts, the membership epoch
// retires cached answers even when the dataset version never moved, and
// queries keep completing (non-degraded, same answers) while rebalances run
// underneath them.
#include "core/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/local_site.hpp"
#include "core/protocol.hpp"
#include "core/result_cache.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"

namespace dsud {
namespace {

Dataset testGlobal(std::size_t n = 300) {
  return generateSynthetic(
      SyntheticSpec{n, 2, ValueDistribution::kIndependent, 7171});
}

// --- Topology (pure data) ---------------------------------------------------

TEST(TopologyTest, UniformFactorySetsMembersPartitionsAndEpoch) {
  const Topology t = Topology::uniform(testGlobal(), 4, 11);
  EXPECT_EQ(t.epoch(), 1u);
  EXPECT_EQ(t.replicaFactor(), 1u);
  EXPECT_EQ(t.dims(), 2u);
  ASSERT_EQ(t.members().size(), 4u);
  ASSERT_EQ(t.partitions().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.members()[i], i);
    EXPECT_EQ(t.partitions()[i].id, i);
    ASSERT_EQ(t.partitions()[i].hosts.size(), 1u);
    EXPECT_EQ(t.partitions()[i].hosts[0], i)
        << "partition id == primary member id is the failover invariant";
  }
}

TEST(TopologyTest, ReplicaPlacementFollowsTheMemberRing) {
  const Topology t = Topology::uniform(testGlobal(), 3, 11, 2);
  EXPECT_EQ(t.replicaFactor(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    const PartitionDesc& p = t.partitions()[i];
    ASSERT_EQ(p.hosts.size(), 2u);
    EXPECT_EQ(p.hosts[0], i);
    EXPECT_EQ(p.hosts[1], (i + 1) % 3);
  }
}

TEST(TopologyTest, ReplicaFactorIsClampedToMemberCount) {
  const Topology t = Topology::uniform(testGlobal(), 2, 11, 5);
  for (const PartitionDesc& p : t.partitions()) {
    EXPECT_EQ(p.hosts.size(), 2u) << "k cannot exceed the member count";
  }
}

TEST(TopologyTest, AddSiteBumpsEpochAndNeverReusesIds) {
  Topology t = Topology::uniform(testGlobal(), 3, 11);
  const SiteId added = t.addSite();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_TRUE(t.isMember(added));

  t.removeSite(added);
  EXPECT_EQ(t.epoch(), 3u);
  EXPECT_FALSE(t.isMember(added));
  EXPECT_EQ(t.addSite(), 4u) << "departed ids are never reused";
}

TEST(TopologyTest, RemoveSiteValidatesItsArgument) {
  Topology t = Topology::uniform(testGlobal(), 1, 11);
  EXPECT_THROW(t.removeSite(42), std::out_of_range);
  EXPECT_THROW(t.removeSite(0), std::invalid_argument)
      << "the last member cannot leave";
}

// --- InProcCluster elasticity ----------------------------------------------

TEST(ElasticClusterTest, JoinThenRebalanceMatchesFromScratchBitForBit) {
  const Dataset global = testGlobal(400);

  InProcCluster grown(Topology::uniform(global, 3, 17));
  const SiteId added = grown.addSite();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(grown.membershipEpoch(), 2u);
  grown.rebalance();
  EXPECT_EQ(grown.membershipEpoch(), 3u);
  EXPECT_EQ(grown.siteCount(), 4u);

  // The rebalance gathers the canonical global dataset and cuts it with the
  // deterministic STR partitioner, so the grown cluster must be
  // indistinguishable — answers AND work counters — from one built from the
  // same cuts directly.
  InProcCluster fresh(Topology::fromPartitions(partitionSTR(global, 4)));
  for (const Algo algo : {Algo::kDsud, Algo::kEdsud, Algo::kNaive}) {
    const QueryResult a = grown.engine().run(algo, QueryConfig{});
    const QueryResult b = fresh.engine().run(algo, QueryConfig{});
    ASSERT_EQ(a.skyline, b.skyline) << "algo " << static_cast<int>(algo);
    EXPECT_EQ(a.stats.tuplesShipped, b.stats.tuplesShipped);
    EXPECT_EQ(a.stats.roundTrips, b.stats.roundTrips);
  }
}

TEST(ElasticClusterTest, RemoveSiteDrainsItsPartitionOntoSurvivors) {
  const Dataset global = testGlobal(400);
  InProcCluster cluster(Topology::uniform(global, 4, 19));
  cluster.removeSite(2);
  EXPECT_EQ(cluster.siteCount(), 3u);
  EXPECT_FALSE(cluster.topology().isMember(2));

  InProcCluster fresh(Topology::fromPartitions(partitionSTR(global, 3)));
  const QueryResult a = cluster.engine().runEdsud(QueryConfig{});
  const QueryResult b = fresh.engine().runEdsud(QueryConfig{});
  ASSERT_EQ(a.skyline, b.skyline)
      << "no tuple may be lost when a member leaves";
}

TEST(ElasticClusterTest, MembershipEpochRetiresCachedAnswers) {
  const Dataset global = testGlobal(300);
  InProcCluster cluster(Topology::uniform(global, 3, 23));
  ResultCacheConfig cacheConfig;
  cacheConfig.capacity = 8;
  ResultCache cache(cacheConfig, &cluster.metricsRegistry());
  cluster.engine().setResultCache(&cache);

  const auto hits = [&cluster]() -> std::uint64_t {
    const auto snapshot = cluster.metricsRegistry().snapshot();
    const std::uint64_t* c = snapshot.counter("dsud_cache_hits_total");
    return c == nullptr ? 0u : *c;
  };

  const QueryResult first = cluster.engine().runEdsud(QueryConfig{});
  const QueryResult second = cluster.engine().runEdsud(QueryConfig{});
  ASSERT_EQ(second.skyline, first.skyline);
  EXPECT_EQ(hits(), 1u) << "an unchanged cluster serves from the cache";

  // Membership churn with zero data updates: the dataset version stays
  // where it was, so only the epoch folded into the cache key prevents the
  // old layout's answer — with its now-wrong per-partition attribution —
  // from being served.
  const SiteId added = cluster.addSite();
  cluster.rebalance();
  cluster.removeSite(added);

  const QueryResult relayout = cluster.engine().runEdsud(QueryConfig{});
  EXPECT_EQ(hits(), 1u) << "a layout change must miss the cache";
  const QueryResult repeat = cluster.engine().runEdsud(QueryConfig{});
  EXPECT_EQ(hits(), 2u) << "the new epoch caches normally";
  ASSERT_EQ(repeat.skyline, relayout.skyline);

  cluster.engine().setResultCache(nullptr);
}

TEST(ElasticClusterTest, QueriesCompleteDuringBackgroundRebalance) {
  const Dataset global = testGlobal(500);
  InProcCluster cluster(Topology::uniform(global, 4, 29));

  // Answer identity is layout-invariant; only the per-entry partition
  // attribution moves.  Compare the id sets across epochs.
  const QueryResult reference = cluster.engine().runEdsud(QueryConfig{});
  std::vector<TupleId> expected;
  for (const GlobalSkylineEntry& e : reference.skyline) {
    expected.push_back(e.tuple.id);
  }
  std::sort(expected.begin(), expected.end());

  std::atomic<bool> done{false};
  std::thread admin([&cluster, &done] {
    for (int i = 0; i < 5; ++i) cluster.rebalance();
    done.store(true, std::memory_order_release);
  });

  std::size_t completed = 0;
  while ((!done.load(std::memory_order_acquire) || completed == 0) &&
         completed < 200) {
    const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
    EXPECT_FALSE(result.degraded)
        << "a background rebalance must never degrade a query";
    std::vector<TupleId> ids;
    for (const GlobalSkylineEntry& e : result.skyline) {
      ids.push_back(e.tuple.id);
    }
    std::sort(ids.begin(), ids.end());
    ASSERT_EQ(ids, expected);
    ++completed;
  }
  admin.join();
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(cluster.membershipEpoch(), 6u);  // 1 + 5 rebalances
}

TEST(TopologyTest, DrainedStoreStillServesPinnedEpochSessions) {
  // A rebalance retires the old stores *after* installing the new view, so
  // a session that pinned the old view microseconds earlier may issue its
  // prepare() against an already-draining store.  The drained tree still
  // holds the retired epoch's full partition, so the prepare must succeed
  // with the same candidates it would have produced before the drain (MVCC:
  // old versions stay readable until the last reader lets go).
  LocalSite site(0, testGlobal(100));
  PrepareRequest request;
  request.query = 1;
  const std::uint64_t before = site.prepare(request).localSkylineSize;

  site.leaveSite(LeaveSiteRequest{2});
  EXPECT_EQ(site.phase(), LocalSite::Phase::kDraining);
  request.query = 2;
  EXPECT_EQ(site.prepare(request).localSkylineSize, before);
}

TEST(ElasticClusterTest, AddedMemberServesNoDataUntilRebalance) {
  const Dataset global = testGlobal(200);
  InProcCluster cluster(Topology::uniform(global, 2, 31));
  const QueryResult before = cluster.engine().runEdsud(QueryConfig{});

  cluster.addSite();
  EXPECT_EQ(cluster.siteCount(), 2u)
      << "membership changed but the layout has not";
  const QueryResult between = cluster.engine().runEdsud(QueryConfig{});
  ASSERT_EQ(between.skyline, before.skyline);

  cluster.rebalance();
  EXPECT_EQ(cluster.siteCount(), 3u);
}

}  // namespace
}  // namespace dsud
