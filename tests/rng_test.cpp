#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dsud {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelowBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumSq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, ExistentialUniformIsPositiveAndAtMostOne) {
  Rng rng(31);
  for (int i = 0; i < 100000; ++i) {
    const double p = rng.existentialUniform();
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(37);
  Rng childA = parent.split(1);
  Rng childB = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (childA.next() == childB.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ull);
}

}  // namespace
}  // namespace dsud
