#include "common/dataset.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace dsud {
namespace {

TEST(DatasetTest, StartsEmpty) {
  Dataset data(3);
  EXPECT_EQ(data.dims(), 3u);
  EXPECT_EQ(data.size(), 0u);
  EXPECT_TRUE(data.empty());
}

TEST(DatasetTest, RejectsZeroDimensions) {
  EXPECT_THROW(Dataset(0), std::invalid_argument);
}

TEST(DatasetTest, AddAssignsSequentialIds) {
  Dataset data(2);
  const std::array<double, 2> v = {1.0, 2.0};
  EXPECT_EQ(data.add(v, 0.5), 0u);
  EXPECT_EQ(data.add(v, 0.5), 1u);
  EXPECT_EQ(data.id(0), 0u);
  EXPECT_EQ(data.id(1), 1u);
}

TEST(DatasetTest, AddWithExplicitIdAdvancesSequence) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  data.add(100, v, 1.0);
  data.add(v, 1.0);  // auto id continues after the explicit one
  EXPECT_EQ(data.id(1), 101u);
}

TEST(DatasetTest, RejectsDuplicateIds) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  data.add(5, v, 1.0);
  EXPECT_THROW(data.add(5, v, 1.0), std::invalid_argument);
}

TEST(DatasetTest, RejectsDimensionMismatch) {
  Dataset data(3);
  const std::array<double, 2> v = {1.0, 2.0};
  EXPECT_THROW(data.add(v, 0.5), std::invalid_argument);
}

TEST(DatasetTest, RejectsOutOfRangeProbability) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  EXPECT_THROW(data.add(v, 0.0), std::invalid_argument);
  EXPECT_THROW(data.add(v, -0.1), std::invalid_argument);
  EXPECT_THROW(data.add(v, 1.5), std::invalid_argument);
}

TEST(DatasetTest, AcceptsProbabilityOne) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  data.add(v, 1.0);
  EXPECT_EQ(data.prob(0), 1.0);
}

TEST(DatasetTest, ValuesRoundTrip) {
  Dataset data(3);
  const std::array<double, 3> v = {1.5, -2.5, 3.25};
  data.add(v, 0.75);
  const auto stored = data.values(0);
  EXPECT_EQ(stored[0], 1.5);
  EXPECT_EQ(stored[1], -2.5);
  EXPECT_EQ(stored[2], 3.25);
  EXPECT_EQ(data.prob(0), 0.75);
}

TEST(DatasetTest, AtReturnsConsistentView) {
  Dataset data(2);
  const std::array<double, 2> v = {9.0, 8.0};
  data.add(77, v, 0.25);
  const TupleRef ref = data.at(0);
  EXPECT_EQ(ref.id, 77u);
  EXPECT_EQ(ref.prob, 0.25);
  EXPECT_EQ(ref.values[1], 8.0);
}

TEST(DatasetTest, TupleCopiesOutOfStorage) {
  Dataset data(2);
  const std::array<double, 2> v = {4.0, 5.0};
  data.add(3, v, 0.5);
  const Tuple t = data.tuple(0);
  EXPECT_EQ(t.id, 3u);
  EXPECT_EQ(t.values, (std::vector<double>{4.0, 5.0}));
}

TEST(DatasetTest, RowOfFindsAndMisses) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  data.add(10, v, 1.0);
  data.add(20, v, 1.0);
  EXPECT_EQ(data.rowOf(20), 1u);
  EXPECT_EQ(data.rowOf(99), std::nullopt);
}

TEST(DatasetTest, EraseRowSwapsLastIntoPlace) {
  Dataset data(1);
  for (double x : {1.0, 2.0, 3.0}) {
    const std::array<double, 1> v = {x};
    data.add(v, 0.5);
  }
  data.eraseRow(0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.values(0)[0], 3.0);  // last row moved into slot 0
  EXPECT_EQ(data.rowOf(2), 0u);
  EXPECT_EQ(data.rowOf(0), std::nullopt);
}

TEST(DatasetTest, EraseLastRowNeedsNoSwap) {
  Dataset data(1);
  const std::array<double, 1> a = {1.0};
  const std::array<double, 1> b = {2.0};
  data.add(a, 0.5);
  data.add(b, 0.5);
  data.eraseRow(1);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.values(0)[0], 1.0);
}

TEST(DatasetTest, EraseRowOutOfRangeThrows) {
  Dataset data(1);
  EXPECT_THROW(data.eraseRow(0), std::out_of_range);
}

TEST(DatasetTest, EraseIdReportsPresence) {
  Dataset data(1);
  const std::array<double, 1> v = {1.0};
  data.add(5, v, 0.5);
  EXPECT_TRUE(data.eraseId(5));
  EXPECT_FALSE(data.eraseId(5));
  EXPECT_TRUE(data.empty());
}

TEST(DatasetTest, IdReusableAfterErase) {
  Dataset data(1);
  const std::array<double, 1> v = {1.0};
  data.add(5, v, 0.5);
  data.eraseId(5);
  data.add(5, v, 0.75);
  EXPECT_EQ(data.prob(*data.rowOf(5)), 0.75);
}

TEST(DatasetTest, ManyErasesKeepIndexConsistent) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) {
    const std::array<double, 2> v = {double(i), double(100 - i)};
    data.add(v, 0.5);
  }
  for (TupleId id = 0; id < 100; id += 2) data.eraseId(id);
  EXPECT_EQ(data.size(), 50u);
  for (TupleId id = 1; id < 100; id += 2) {
    const auto row = data.rowOf(id);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(data.id(*row), id);
    EXPECT_EQ(data.values(*row)[0], double(id));
  }
}

}  // namespace
}  // namespace dsud
