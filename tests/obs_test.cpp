// Observability subsystem: instrument math, registry semantics, trace
// nesting, exporter formats, and the end-to-end wiring through a query run
// (non-empty QueryTrace + transport byte counters that agree with the
// BandwidthMeter on the in-process transport).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prom_util.hpp"

namespace dsud {
namespace {

// ---------------------------------------------------------------------------
// Instruments

TEST(ObsCounterTest, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounterTest, ConcurrentIncrementsFromPoolWorkers) {
  obs::Counter c;
  obs::Histogram h({1.0, 10.0, 100.0});
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kPerTask = 20000;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (std::size_t t = 0; t < kTasks; ++t) {
      done.push_back(pool.submit([&c, &h, t] {
        for (std::size_t i = 0; i < kPerTask; ++i) {
          c.inc();
          h.observe(static_cast<double>(t));
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(c.value(), kTasks * kPerTask);
  EXPECT_EQ(h.count(), kTasks * kPerTask);
  // Sum accumulated through the CAS loop must be exact: sum_t t * kPerTask.
  EXPECT_DOUBLE_EQ(h.sum(), 28.0 * kPerTask);
}

TEST(ObsHistogramTest, BucketAssignmentWithInclusiveUpperEdge) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // (0, 1]
  h.observe(1.0);  // exactly on the edge -> still bucket 0
  h.observe(1.5);  // (1, 2]
  h.observe(2.0);  // edge of bucket 1
  h.observe(4.0);  // edge of bucket 2
  h.observe(9.0);  // overflow
  const auto buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(ObsHistogramTest, QuantileInterpolation) {
  obs::Histogram h({10.0, 20.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(5.0);
  h.observe(15.0);
  h.observe(16.0);
  h.observe(17.0);
  // One of four observations in (0, 10], three in (10, 20]: the median falls
  // in the second bucket, p25 and below in the first.
  EXPECT_GT(h.quantile(0.5), 10.0);
  EXPECT_LE(h.quantile(0.5), 20.0);
  EXPECT_GT(h.quantile(0.2), 0.0);
  EXPECT_LE(h.quantile(0.2), 10.0);
  EXPECT_LE(h.p99(), 20.0);
  // Values past every bound report the largest finite bound.
  obs::Histogram over({1.0, 2.0});
  over.observe(100.0);
  EXPECT_DOUBLE_EQ(over.quantile(0.99), 2.0);
}

TEST(ObsHistogramTest, ExponentialBoundsLadder) {
  const auto bounds = obs::Histogram::exponentialBounds(1e-6, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 4.0);
  }
  const auto latency = obs::Histogram::latencyBounds();
  ASSERT_EQ(latency.size(), 14u);
  EXPECT_LT(latency.back(), 100.0);
  EXPECT_GT(latency.back(), 10.0);
}

TEST(ObsRegistryTest, StableAddressesAndKindChecks) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total");
  obs::Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("x_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("x_total", {1.0}), std::logic_error);

  obs::Histogram& h = reg.histogram("lat_seconds", {1.0, 2.0});
  EXPECT_EQ(&h, &reg.histogram("lat_seconds", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("lat_seconds", {3.0}), std::logic_error);

  // reset() zeroes in place: cached references remain usable.
  a.add(7);
  h.observe(1.5);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  a.inc();
  h.observe(0.5);
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsRegistryTest, LabeledNameFormat) {
  EXPECT_EQ(obs::labeled("m_total", {{"algo", "edsud"}}),
            "m_total{algo=\"edsud\"}");
  EXPECT_EQ(obs::labeled("m_total", {{"a", "1"}, {"b", "2"}}),
            "m_total{a=\"1\",b=\"2\"}");
}

// ---------------------------------------------------------------------------
// Traces

TEST(ObsTraceTest, SpanNestingOrderAndAttrs) {
  obs::Tracer tracer(16);
  const obs::SpanId root = tracer.begin("root");
  {
    obs::TraceSpan a(tracer, "a");
    {
      obs::TraceSpan b(tracer, "b");
      b.attr("x", 1.5);
    }
    obs::TraceSpan c(tracer, "c");  // sibling of b: b already closed
  }
  tracer.end(root);
  const obs::QueryTrace trace = tracer.take();

  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.droppedEvents, 0u);
  EXPECT_EQ(trace.events[0].name, "root");
  EXPECT_EQ(trace.events[0].parent, obs::kNoSpan);
  EXPECT_EQ(trace.events[1].name, "a");
  EXPECT_EQ(trace.events[1].parent, obs::SpanId{0});
  EXPECT_EQ(trace.events[2].name, "b");
  EXPECT_EQ(trace.events[2].parent, obs::SpanId{1});
  EXPECT_EQ(trace.events[3].name, "c");
  EXPECT_EQ(trace.events[3].parent, obs::SpanId{1});
  ASSERT_EQ(trace.events[2].attrs.size(), 1u);
  EXPECT_EQ(trace.events[2].attrs[0].first, "x");
  EXPECT_DOUBLE_EQ(trace.events[2].attrs[0].second, 1.5);
  for (const auto& e : trace.events) {
    EXPECT_NE(e.endNs, 0u) << e.name;
    EXPECT_GE(e.endNs, e.startNs) << e.name;
  }
  // Events are in span-start order.
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_GE(trace.events[i].startNs, trace.events[i - 1].startNs);
  }
}

TEST(ObsTraceTest, EventCapCountsDrops) {
  obs::Tracer tracer(2);
  const auto a = tracer.begin("a");
  const auto b = tracer.begin("b");
  const auto c = tracer.begin("c");  // past the cap
  EXPECT_NE(a, obs::kNoSpan);
  EXPECT_NE(b, obs::kNoSpan);
  EXPECT_EQ(c, obs::kNoSpan);
  tracer.end(c);  // must be a safe no-op
  const obs::QueryTrace trace = tracer.take();  // closes a and b
  EXPECT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.droppedEvents, 1u);
  EXPECT_NE(trace.events[0].endNs, 0u);
  EXPECT_NE(trace.events[1].endNs, 0u);
}

TEST(ObsTraceTest, DisabledTracerIsNoOp) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  const auto id = tracer.begin("x");
  EXPECT_EQ(id, obs::kNoSpan);
  tracer.attr(id, "k", 1.0);
  tracer.end(id);
  EXPECT_TRUE(tracer.take().empty());
}

// ---------------------------------------------------------------------------
// Exporters
//
// The Prometheus conformance rules (typed families, cumulative histogram
// buckets ending in le="+Inf", ...) live in tests/prom_util.hpp, shared
// with server_test and the prom_lint CLI; here they surface as failures.

void expectValidExposition(const std::string& text) {
  for (const std::string& error : promtest::lintExposition(text)) {
    ADD_FAILURE() << error;
  }
}

TEST(ObsExportTest, PrometheusExpositionParses) {
  obs::MetricsRegistry reg;
  reg.counter(obs::labeled("dsud_rounds_total", {{"algo", "dsud"}})).add(3);
  reg.counter("plain_total").inc();
  reg.gauge("dsud_threshold").set(0.25);
  obs::Histogram& h =
      reg.histogram(obs::labeled("dsud_round_latency_seconds",
                                 {{"algo", "dsud"}}),
                    {0.001, 0.01, 0.1});
  h.observe(0.005);
  h.observe(0.5);

  const std::string text = obs::metricsToPrometheus(reg.snapshot());
  expectValidExposition(text);
  EXPECT_NE(text.find("# TYPE dsud_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("dsud_rounds_total{algo=\"dsud\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dsud_round_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("dsud_round_latency_seconds_count{algo=\"dsud\"} 2"),
            std::string::npos);
}

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// no trailing garbage.  (A full parser is out of scope; the shape checks
/// below pin the schema.)
void expectBalancedJson(const std::string& json) {
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
    }
  }
  EXPECT_FALSE(inString);
  EXPECT_EQ(depth, 0);
}

TEST(ObsExportTest, JsonRoundTripShape) {
  obs::MetricsRegistry reg;
  reg.counter(obs::labeled("c_total", {{"k", "v\"q"}})).add(5);
  reg.gauge("g").set(1.25);
  reg.histogram("h_seconds", {1.0, 2.0}).observe(1.5);

  const std::string json = obs::metricsToJson(reg.snapshot());
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\\\"q"), std::string::npos);  // escaped label quote
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

TEST(ObsExportTest, TraceJson) {
  obs::Tracer tracer(8);
  {
    obs::TraceSpan a(tracer, "query.dsud");
    obs::TraceSpan b(tracer, "round");
    b.attr("site", 3);
  }
  const std::string json = obs::traceToJson(tracer.take());
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"query.dsud\""), std::string::npos);
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"site\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end wiring through real query runs

std::uint64_t transportBytes(const obs::MetricsSnapshot& snapshot) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("dsud_transport_bytes_total", 0) == 0) total += value;
  }
  return total;
}

const std::uint64_t* counterAt(const obs::MetricsSnapshot& snapshot,
                               const std::string& name) {
  return snapshot.counter(name);
}

TEST(ObsIntegrationTest, DsudRunProducesTraceAndMatchingByteCounters) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 3, ValueDistribution::kAnticorrelated, 42});
  InProcCluster cluster(Topology::uniform(global, 5, 43));
  QueryConfig config;
  config.q = 0.3;

  const QueryResult result = cluster.engine().runDsud(config);

  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.events.front().name, "query.dsud");
  EXPECT_EQ(result.trace.events.front().parent, obs::kNoSpan);
  bool sawRound = false, sawPull = false, sawBroadcast = false;
  for (const auto& e : result.trace.events) {
    sawRound |= e.name == "round";
    sawPull |= e.name == "pull";
    sawBroadcast |= e.name == "broadcast";
    EXPECT_NE(e.endNs, 0u) << e.name;
  }
  EXPECT_TRUE(sawRound);
  EXPECT_TRUE(sawPull);
  EXPECT_TRUE(sawBroadcast);

  const obs::MetricsSnapshot snapshot = cluster.metricsRegistry().snapshot();
  // In-process frames have no framing overhead, so the per-site transport
  // byte counters must equal the meter's payload bytes exactly.
  EXPECT_GT(result.stats.bytesShipped, 0u);
  EXPECT_EQ(transportBytes(snapshot), result.stats.bytesShipped);

  const auto* queries =
      counterAt(snapshot, "dsud_queries_total{algo=\"dsud\"}");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(*queries, 1u);
  // Each loop iteration is one round; every broadcast happens inside one,
  // and the final iteration may break before broadcasting.
  const auto* rounds = counterAt(snapshot, "dsud_rounds_total{algo=\"dsud\"}");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GE(*rounds, result.stats.broadcasts);
  EXPECT_GT(*rounds, 0u);
  const auto* pulls =
      counterAt(snapshot, "dsud_candidates_pulled_total{algo=\"dsud\"}");
  ASSERT_NE(pulls, nullptr);
  EXPECT_EQ(*pulls, result.stats.candidatesPulled);
  const auto* answers =
      counterAt(snapshot, "dsud_answers_total{algo=\"dsud\"}");
  ASSERT_NE(answers, nullptr);
  EXPECT_EQ(*answers, result.skyline.size());
  const auto* hist = snapshot.histogram(
      "dsud_round_latency_seconds{algo=\"dsud\"}");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, *rounds);

  // The whole snapshot must export as valid Prometheus text — this is the
  // exact code path `dsudctl metrics` prints.
  expectValidExposition(obs::metricsToPrometheus(snapshot));
}

TEST(ObsIntegrationTest, EdsudRunProducesTraceAndMatchingByteCounters) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 3, ValueDistribution::kAnticorrelated, 42});
  InProcCluster cluster(Topology::uniform(global, 5, 43));
  QueryConfig config;
  config.q = 0.3;

  const QueryResult result = cluster.engine().runEdsud(config);

  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.events.front().name, "query.edsud");

  const obs::MetricsSnapshot snapshot = cluster.metricsRegistry().snapshot();
  EXPECT_EQ(transportBytes(snapshot), result.stats.bytesShipped);
  const auto* expunged =
      counterAt(snapshot, "dsud_expunged_total{algo=\"edsud\"}");
  ASSERT_NE(expunged, nullptr);
  EXPECT_EQ(*expunged, result.stats.expunged);
  expectValidExposition(obs::metricsToPrometheus(snapshot));
}

TEST(ObsIntegrationTest, GaugesReturnToIdleAndPerSiteCountersMatchUsage) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{700, 3, ValueDistribution::kAnticorrelated, 77});
  InProcCluster cluster(Topology::uniform(global, 4, 78));
  QueryConfig config;
  config.q = 0.3;

  const QueryResult dsud = cluster.engine().runDsud(config);
  const QueryResult edsud = cluster.engine().runEdsud(config);

  const obs::MetricsSnapshot snapshot = cluster.metricsRegistry().snapshot();
  // Gauge hygiene: every in-flight gauge is back to zero once the last
  // session finalized — a leak here means a session skipped its teardown.
  bool sawInflight = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("dsud_queries_inflight", 0) == 0) {
      sawInflight = true;
      EXPECT_EQ(value, 0.0) << name;
    }
  }
  EXPECT_TRUE(sawInflight);

  // The per-site wire counters must agree with the per-query usage sums:
  // in-process frames carry no overhead, so bytes match exactly, and every
  // round trip is one frame out plus one frame in.
  std::uint64_t frames = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("dsud_transport_frames_total", 0) == 0) frames += value;
  }
  EXPECT_EQ(transportBytes(snapshot),
            dsud.stats.bytesShipped + edsud.stats.bytesShipped);
  EXPECT_EQ(frames, 2 * (dsud.stats.roundTrips + edsud.stats.roundTrips));
}

TEST(ObsIntegrationTest, TraceCapacityZeroDisablesTracing) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{200, 2, ValueDistribution::kIndependent, 7});
  InProcCluster cluster(Topology::uniform(global, 3, 8));
  QueryOptions options;
  options.traceCapacity = 0;
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{}, options);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.trace.droppedEvents, 0u);
}

}  // namespace
}  // namespace dsud
