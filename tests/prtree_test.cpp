#include "index/prtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "gen/probability.hpp"
#include "gen/synthetic.hpp"

namespace dsud {
namespace {

/// Brute-force Π (1 − P) over dominators of b.
double bruteSurvival(const Dataset& data, std::span<const double> b,
                     DimMask mask) {
  double s = 1.0;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (dominates(data.values(row), b, mask)) s *= 1.0 - data.prob(row);
  }
  return s;
}

std::vector<TupleId> bruteWindow(const Dataset& data, const Rect& window) {
  std::vector<TupleId> ids;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (window.containsPoint(data.values(row))) ids.push_back(data.id(row));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(PRTreeTest, RejectsBadConfiguration) {
  EXPECT_THROW(PRTree(0), std::invalid_argument);
  EXPECT_THROW(PRTree(kMaxDims + 1), std::invalid_argument);
  EXPECT_THROW(PRTree(2, PRTreeOptions{3, 2}), std::invalid_argument);
  EXPECT_THROW(PRTree(2, PRTreeOptions{8, 1}), std::invalid_argument);
  EXPECT_THROW(PRTree(2, PRTreeOptions{8, 5}), std::invalid_argument);
}

TEST(PRTreeTest, EmptyTreeBehaviour) {
  PRTree tree(2);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  const std::array<double, 2> b = {1.0, 1.0};
  EXPECT_EQ(tree.dominanceSurvival(b), 1.0);
  tree.checkInvariants();
}

TEST(PRTreeTest, SingleInsert) {
  PRTree tree(2);
  const std::array<double, 2> v = {0.5, 0.5};
  tree.insert(7, v, 0.4);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  tree.checkInvariants();

  const std::array<double, 2> above = {0.6, 0.6};
  EXPECT_DOUBLE_EQ(tree.dominanceSurvival(above), 0.6);
  EXPECT_DOUBLE_EQ(tree.dominanceSurvival(v), 1.0);  // no self-domination
}

TEST(PRTreeTest, InsertValidation) {
  PRTree tree(2);
  const std::array<double, 3> wrongDims = {1.0, 2.0, 3.0};
  const std::array<double, 2> v = {1.0, 2.0};
  EXPECT_THROW(tree.insert(0, wrongDims, 0.5), std::invalid_argument);
  EXPECT_THROW(tree.insert(0, v, 0.0), std::invalid_argument);
  EXPECT_THROW(tree.insert(0, v, 1.5), std::invalid_argument);
}

TEST(PRTreeTest, NodeProbabilityAggregatesMatchPaperExample) {
  // Fig. 5: entries with probabilities 0.6, 0.4, 0.2 give P1=0.2, P2=0.6.
  Dataset data(2);
  const std::array<double, 2> a = {1.0, 1.0};
  const std::array<double, 2> b = {2.0, 2.0};
  const std::array<double, 2> c = {3.0, 3.0};
  data.add(a, 0.6);
  data.add(b, 0.4);
  data.add(c, 0.2);
  const PRTree tree = PRTree::bulkLoad(data);
  EXPECT_DOUBLE_EQ(tree.root().pMin(), 0.2);
  EXPECT_DOUBLE_EQ(tree.root().pMax(), 0.6);
  EXPECT_NEAR(tree.root().survival(), 0.4 * 0.6 * 0.8, 1e-12);
  EXPECT_EQ(tree.root().count(), 3u);
}

struct TreeCase {
  std::size_t n;
  std::size_t dims;
  ValueDistribution dist;
  std::uint64_t seed;
};

class PRTreeParamTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  Dataset makeData() const {
    const TreeCase& c = GetParam();
    return generateSynthetic(SyntheticSpec{c.n, c.dims, c.dist, c.seed});
  }
};

TEST_P(PRTreeParamTest, BulkLoadInvariantsHold) {
  const Dataset data = makeData();
  const PRTree tree = PRTree::bulkLoad(data);
  EXPECT_EQ(tree.size(), data.size());
  tree.checkInvariants();
}

TEST_P(PRTreeParamTest, BulkLoadContainsEveryTuple) {
  const Dataset data = makeData();
  const PRTree tree = PRTree::bulkLoad(data);
  std::vector<TupleId> ids;
  tree.forEach([&](const PRTree::LeafEntry& e) { ids.push_back(e.id); });
  std::sort(ids.begin(), ids.end());
  std::vector<TupleId> expected;
  for (std::size_t row = 0; row < data.size(); ++row) {
    expected.push_back(data.id(row));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ids, expected);
}

TEST_P(PRTreeParamTest, DominanceSurvivalMatchesBruteForce) {
  const Dataset data = makeData();
  const PRTree tree = PRTree::bulkLoad(data);
  const DimMask mask = fullMask(data.dims());
  Rng rng(GetParam().seed + 99);
  for (int probe = 0; probe < 50; ++probe) {
    // Mix of random space points and actual data points.
    std::vector<double> b(data.dims());
    if (probe % 2 == 0) {
      for (auto& x : b) x = rng.uniform();
    } else {
      const auto row = rng.below(data.size());
      const auto v = data.values(row);
      b.assign(v.begin(), v.end());
    }
    EXPECT_NEAR(tree.dominanceSurvival(b, mask), bruteSurvival(data, b, mask),
                1e-9);
  }
}

TEST_P(PRTreeParamTest, ForEachDominatingMatchesBruteForce) {
  const Dataset data = makeData();
  const PRTree tree = PRTree::bulkLoad(data);
  const DimMask mask = fullMask(data.dims());
  Rng rng(GetParam().seed + 7);
  for (int probe = 0; probe < 10; ++probe) {
    std::vector<double> b(data.dims());
    for (auto& x : b) x = rng.uniform();
    std::vector<TupleId> got;
    tree.forEachDominating(b, mask, [&](const PRTree::LeafEntry& e) {
      got.push_back(e.id);
    });
    std::sort(got.begin(), got.end());
    std::vector<TupleId> expected;
    for (std::size_t row = 0; row < data.size(); ++row) {
      if (dominates(data.values(row), b, mask)) {
        expected.push_back(data.id(row));
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST_P(PRTreeParamTest, WindowQueryMatchesBruteForce) {
  const Dataset data = makeData();
  const PRTree tree = PRTree::bulkLoad(data);
  Rng rng(GetParam().seed + 3);
  for (int probe = 0; probe < 10; ++probe) {
    Rect window(data.dims());
    std::vector<double> p(data.dims());
    std::vector<double> q(data.dims());
    for (std::size_t j = 0; j < data.dims(); ++j) {
      p[j] = rng.uniform();
      q[j] = rng.uniform();
    }
    window.expand(p);
    window.expand(q);
    std::vector<TupleId> got;
    tree.windowQuery(window, [&](const PRTree::LeafEntry& e) {
      got.push_back(e.id);
    });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, bruteWindow(data, window));
  }
}

TEST_P(PRTreeParamTest, IncrementalInsertMatchesBulkLoad) {
  const Dataset data = makeData();
  PRTree tree(data.dims());
  for (std::size_t row = 0; row < data.size(); ++row) {
    tree.insert(data.id(row), data.values(row), data.prob(row));
  }
  EXPECT_EQ(tree.size(), data.size());
  tree.checkInvariants();

  const DimMask mask = fullMask(data.dims());
  Rng rng(GetParam().seed + 13);
  for (int probe = 0; probe < 20; ++probe) {
    std::vector<double> b(data.dims());
    for (auto& x : b) x = rng.uniform();
    EXPECT_NEAR(tree.dominanceSurvival(b, mask), bruteSurvival(data, b, mask),
                1e-9);
  }
}

TEST_P(PRTreeParamTest, EraseHalfThenQueriesStayExact) {
  Dataset data = makeData();
  PRTree tree = PRTree::bulkLoad(data);
  Rng rng(GetParam().seed + 17);

  // Remove a random half.
  std::vector<TupleId> ids;
  for (std::size_t row = 0; row < data.size(); ++row) {
    ids.push_back(data.id(row));
  }
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  ids.resize(ids.size() / 2);
  for (const TupleId id : ids) {
    const auto row = data.rowOf(id);
    ASSERT_TRUE(row.has_value());
    std::vector<double> values(data.values(*row).begin(),
                               data.values(*row).end());
    ASSERT_TRUE(tree.erase(id, values));
    data.eraseId(id);
  }
  EXPECT_EQ(tree.size(), data.size());
  tree.checkInvariants();

  const DimMask mask = fullMask(data.dims());
  for (int probe = 0; probe < 20; ++probe) {
    std::vector<double> b(data.dims());
    for (auto& x : b) x = rng.uniform();
    EXPECT_NEAR(tree.dominanceSurvival(b, mask), bruteSurvival(data, b, mask),
                1e-9);
  }
}

TEST_P(PRTreeParamTest, EraseEverythingEmptiesTree) {
  const Dataset data = makeData();
  PRTree tree = PRTree::bulkLoad(data);
  for (std::size_t row = 0; row < data.size(); ++row) {
    std::vector<double> values(data.values(row).begin(),
                               data.values(row).end());
    ASSERT_TRUE(tree.erase(data.id(row), values));
    if (row % 64 == 0) tree.checkInvariants();
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  tree.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PRTreeParamTest,
    ::testing::Values(
        TreeCase{1, 2, ValueDistribution::kIndependent, 1},
        TreeCase{33, 2, ValueDistribution::kIndependent, 2},   // > one leaf
        TreeCase{500, 2, ValueDistribution::kIndependent, 3},
        TreeCase{500, 3, ValueDistribution::kAnticorrelated, 4},
        TreeCase{500, 4, ValueDistribution::kCorrelated, 5},
        TreeCase{2000, 2, ValueDistribution::kAnticorrelated, 6},
        TreeCase{2000, 5, ValueDistribution::kIndependent, 7},
        TreeCase{5000, 3, ValueDistribution::kIndependent, 8}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      const TreeCase& c = info.param;
      return "n" + std::to_string(c.n) + "_d" + std::to_string(c.dims) + "_" +
             distributionName(c.dist);
    });

TEST(PRTreeTest, EraseMissingReturnsFalse) {
  Dataset data = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 9});
  PRTree tree = PRTree::bulkLoad(data);
  const std::array<double, 2> nowhere = {5.0, 5.0};
  EXPECT_FALSE(tree.erase(12345, nowhere));
  // Right id, wrong location: also a miss.
  std::vector<double> v(data.values(0).begin(), data.values(0).end());
  v[0] += 10.0;
  EXPECT_FALSE(tree.erase(data.id(0), v));
  EXPECT_EQ(tree.size(), data.size());
}

TEST(PRTreeTest, DuplicateCoordinatesDistinctIds) {
  PRTree tree(2);
  const std::array<double, 2> v = {0.5, 0.5};
  tree.insert(1, v, 0.5);
  tree.insert(2, v, 0.25);
  // Duplicates do not dominate each other: survival above them includes
  // both, at the point itself neither counts.
  const std::array<double, 2> above = {0.6, 0.6};
  EXPECT_NEAR(tree.dominanceSurvival(above), 0.5 * 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(tree.dominanceSurvival(v), 1.0);
  // Erase selects by id.
  EXPECT_TRUE(tree.erase(1, v));
  EXPECT_NEAR(tree.dominanceSurvival(above), 0.75, 1e-12);
}

TEST(PRTreeTest, ProbabilityOneTupleZeroesSurvival) {
  PRTree tree(2);
  const std::array<double, 2> v = {0.1, 0.1};
  tree.insert(0, v, 1.0);
  const std::array<double, 2> above = {0.2, 0.2};
  EXPECT_EQ(tree.dominanceSurvival(above), 0.0);
  tree.checkInvariants();
}

TEST(PRTreeTest, SubspaceSurvivalUsesMaskOnly) {
  PRTree tree(3);
  const std::array<double, 3> a = {0.1, 0.9, 0.1};
  tree.insert(0, a, 0.5);
  const std::array<double, 3> b = {0.2, 0.2, 0.2};
  EXPECT_DOUBLE_EQ(tree.dominanceSurvival(b), 1.0);  // full space: no dom
  EXPECT_DOUBLE_EQ(tree.dominanceSurvival(b, DimMask{0b101}), 0.5);
}

TEST(PRTreeTest, MixedInsertEraseWorkloadKeepsInvariants) {
  Rng rng(77);
  PRTree tree(3);
  Dataset shadow(3);
  TupleId next = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool doInsert = shadow.empty() || rng.uniform() < 0.6;
    if (doInsert) {
      std::array<double, 3> v{};
      for (auto& x : v) x = rng.uniform();
      const double p = rng.existentialUniform();
      tree.insert(next, v, p);
      shadow.add(next, v, p);
      ++next;
    } else {
      const std::size_t row = rng.below(shadow.size());
      std::vector<double> v(shadow.values(row).begin(),
                            shadow.values(row).end());
      ASSERT_TRUE(tree.erase(shadow.id(row), v));
      shadow.eraseRow(row);
    }
    if (step % 250 == 0) tree.checkInvariants();
  }
  tree.checkInvariants();
  EXPECT_EQ(tree.size(), shadow.size());

  const DimMask mask = fullMask(3);
  for (int probe = 0; probe < 30; ++probe) {
    std::array<double, 3> b{};
    for (auto& x : b) x = rng.uniform();
    EXPECT_NEAR(tree.dominanceSurvival(b, mask),
                bruteSurvival(shadow, b, mask), 1e-9);
  }
}

TEST(PRTreeTest, BulkLoadHeightIsLogarithmic) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{10000, 2, ValueDistribution::kIndependent, 10});
  const PRTree tree = PRTree::bulkLoad(data);
  // 10000 tuples at fanout 32: 313 leaves, ~3 levels.
  EXPECT_LE(tree.height(), 4u);
  EXPECT_GE(tree.height(), 3u);
}

TEST(PRTreeTest, ClearResetsEverything) {
  Dataset data = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 11});
  PRTree tree = PRTree::bulkLoad(data);
  tree.clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  tree.checkInvariants();
  // Reusable after clear.
  const std::array<double, 2> v = {0.5, 0.5};
  tree.insert(0, v, 0.5);
  EXPECT_EQ(tree.size(), 1u);
}

}  // namespace
}  // namespace dsud
