// PR-tree behaviour across node-capacity configurations: every fanout
// setting must satisfy the structural invariants and answer queries
// identically — capacity tunes performance, never results.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/synthetic.hpp"
#include "index/prtree.hpp"
#include "skyline/bbs.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

class PRTreeOptionsTest : public ::testing::TestWithParam<PRTreeOptions> {};

TEST_P(PRTreeOptionsTest, BulkLoadInvariants) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{3000, 3, ValueDistribution::kIndependent, 900});
  const PRTree tree = PRTree::bulkLoad(data, GetParam());
  tree.checkInvariants();
  EXPECT_EQ(tree.size(), data.size());
}

TEST_P(PRTreeOptionsTest, DynamicBuildInvariants) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kAnticorrelated, 901});
  PRTree tree(2, GetParam());
  for (std::size_t row = 0; row < data.size(); ++row) {
    tree.insert(data.id(row), data.values(row), data.prob(row));
  }
  tree.checkInvariants();
}

TEST_P(PRTreeOptionsTest, QueriesIdenticalAcrossFanouts) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 902});
  const PRTree tree = PRTree::bulkLoad(data, GetParam());

  // Skyline identical to the fanout-independent reference.
  EXPECT_EQ(testutil::idsOf(bbsSkyline(tree, {.q = 0.3})),
            testutil::idsOf(linearSkyline(data, {.q = 0.3})));

  // Dominance products identical too.
  Rng rng(903);
  for (int probe = 0; probe < 20; ++probe) {
    std::array<double, 3> b{};
    for (auto& x : b) x = rng.uniform();
    double brute = 1.0;
    for (std::size_t row = 0; row < data.size(); ++row) {
      if (dominates(data.values(row), b)) brute *= 1.0 - data.prob(row);
    }
    EXPECT_NEAR(tree.dominanceSurvival(b), brute, 1e-9);
  }
}

TEST_P(PRTreeOptionsTest, ChurnKeepsInvariants) {
  Rng rng(904);
  PRTree tree(2, GetParam());
  std::vector<Tuple> live;
  TupleId next = 0;
  for (int step = 0; step < 1200; ++step) {
    if (live.empty() || rng.uniform() < 0.55) {
      Tuple t{next++, {rng.uniform(), rng.uniform()},
              rng.existentialUniform()};
      tree.insert(t);
      live.push_back(std::move(t));
    } else {
      const std::size_t pick = rng.below(live.size());
      ASSERT_TRUE(tree.erase(live[pick].id, live[pick].values));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  tree.checkInvariants();
  EXPECT_EQ(tree.size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(
    Fanouts, PRTreeOptionsTest,
    ::testing::Values(PRTreeOptions{4, 2},     // minimum legal fanout
                      PRTreeOptions{8, 3},
                      PRTreeOptions{16, 8},    // max/2 min-fill
                      PRTreeOptions{32, 12},   // default
                      PRTreeOptions{64, 26},
                      PRTreeOptions{128, 51}),
    [](const ::testing::TestParamInfo<PRTreeOptions>& info) {
      return "max" + std::to_string(info.param.maxEntries) + "_min" +
             std::to_string(info.param.minEntries);
    });

}  // namespace
}  // namespace dsud
