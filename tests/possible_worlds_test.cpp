#include "skyline/possible_worlds.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"
#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

using testutil::makeDataset;

/// The paper's running example (Fig. 3): three tuples in 2-D.
Dataset paperFig3() {
  return makeDataset(2, {
                            {80.0, 96.0, 0.8},  // t1
                            {85.0, 90.0, 0.6},  // t2
                            {75.0, 95.0, 0.8},  // t3
                        });
}

TEST(PossibleWorldsTest, WorldProbabilitiesMatchFig3) {
  const Dataset data = paperFig3();
  // W1 = {} .. W8 = {t1,t2,t3}, bit i = tuple i+1 present.
  EXPECT_NEAR(worldProbability(data, 0b000), 0.016, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b001), 0.064, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b010), 0.024, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b100), 0.064, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b011), 0.096, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b101), 0.256, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b110), 0.096, 1e-12);
  EXPECT_NEAR(worldProbability(data, 0b111), 0.384, 1e-12);
}

TEST(PossibleWorldsTest, WorldProbabilitiesSumToOne) {
  const Dataset data = paperFig3();
  double total = 0.0;
  for (std::uint32_t w = 0; w < 8; ++w) total += worldProbability(data, w);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldsTest, SkylineProbabilitiesMatchFig3) {
  // Paper Sec. 3: P_sky(t1) = 0.16, P_sky(t2) = 0.6, P_sky(t3) = 0.8.
  const Dataset data = paperFig3();
  const auto probs = skylineProbabilitiesByEnumeration(data);
  EXPECT_NEAR(probs[0], 0.16, 1e-12);
  EXPECT_NEAR(probs[1], 0.6, 1e-12);
  EXPECT_NEAR(probs[2], 0.8, 1e-12);
}

TEST(PossibleWorldsTest, SkylineOfWorldUsesConventionalDominance) {
  const Dataset data = paperFig3();
  // World {t1, t2, t3}: t3 = (75,95) dominates t1 = (80,96); t2 = (85,90)
  // is incomparable with both -> skyline {t2, t3}.
  const auto sky = skylineOfWorld(data, 0b111, fullMask(2));
  EXPECT_EQ(sky, (std::vector<std::size_t>{1, 2}));
  // Empty world has an empty skyline.
  EXPECT_TRUE(skylineOfWorld(data, 0, fullMask(2)).empty());
  // Singleton world: the tuple is its own skyline.
  EXPECT_EQ(skylineOfWorld(data, 0b001, fullMask(2)),
            (std::vector<std::size_t>{0}));
}

TEST(PossibleWorldsTest, RejectsOversizedDatasets) {
  Dataset data(1);
  const std::array<double, 1> v = {0.0};
  for (std::size_t i = 0; i <= kMaxEnumerableTuples; ++i) {
    data.add(i, v, 0.5);
  }
  EXPECT_THROW(skylineProbabilitiesByEnumeration(data),
               std::invalid_argument);
}

TEST(PossibleWorldsTest, CertainTuplesReduceToClassicalSkyline) {
  // With P ≡ 1 the probabilistic skyline is the classical one: probability
  // 1 for skyline points, 0 for dominated points.
  const Dataset data = makeDataset(2, {
                                          {1.0, 4.0, 1.0},
                                          {2.0, 3.0, 1.0},
                                          {3.0, 3.5, 1.0},  // dominated by (2,3)
                                          {4.0, 4.0, 1.0},  // dominated
                                      });
  const auto probs = skylineProbabilitiesByEnumeration(data);
  EXPECT_NEAR(probs[0], 1.0, 1e-12);
  EXPECT_NEAR(probs[1], 1.0, 1e-12);
  EXPECT_NEAR(probs[2], 0.0, 1e-12);  // dominated by (2, 3)
  EXPECT_NEAR(probs[3], 0.0, 1e-12);
}

// Property: the closed form (Eq. 3, linear scan) equals the possible-world
// semantics (Eq. 2, enumeration) on random uncertain databases.
class ClosedFormEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 ValueDistribution>> {};

TEST_P(ClosedFormEquivalenceTest, Eq2EqualsEq3) {
  const auto [n, dims, dist] = GetParam();
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const Dataset data = generateSynthetic(SyntheticSpec{n, dims, dist, seed});
    const auto enumerated = skylineProbabilitiesByEnumeration(data);
    const auto closedForm = skylineProbabilitiesLinear(data);
    ASSERT_EQ(enumerated.size(), closedForm.size());
    for (std::size_t i = 0; i < enumerated.size(); ++i) {
      EXPECT_NEAR(enumerated[i], closedForm[i], 1e-9)
          << "seed=" << seed << " tuple=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormEquivalenceTest,
    ::testing::Values(
        std::make_tuple(1, 2, ValueDistribution::kIndependent),
        std::make_tuple(8, 2, ValueDistribution::kIndependent),
        std::make_tuple(12, 2, ValueDistribution::kAnticorrelated),
        std::make_tuple(12, 3, ValueDistribution::kIndependent),
        std::make_tuple(14, 4, ValueDistribution::kCorrelated),
        std::make_tuple(16, 2, ValueDistribution::kAnticorrelated)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_" +
             distributionName(std::get<2>(info.param));
    });

TEST(PossibleWorldsTest, SubspaceEnumerationMatchesClosedForm) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Dataset data = generateSynthetic(
        SyntheticSpec{10, 3, ValueDistribution::kIndependent, seed});
    for (const DimMask mask : {DimMask{0b011}, DimMask{0b101}, DimMask{0b100}}) {
      const auto enumerated = skylineProbabilitiesByEnumeration(data, {.mask = mask});
      const auto closedForm = skylineProbabilitiesLinear(data, {.mask = mask});
      for (std::size_t i = 0; i < enumerated.size(); ++i) {
        EXPECT_NEAR(enumerated[i], closedForm[i], 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dsud
