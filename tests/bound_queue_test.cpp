// Direct unit tests of the coordinator's bound machinery
// (core/bound_queue.hpp): Observation-2 witness factors, Corollary-2
// confirmed caps, retention semantics, and selection.
#include "core/bound_queue.hpp"

#include <gtest/gtest.h>

namespace dsud {
namespace {

using internal::BoundQueue;

Candidate cand(SiteId site, TupleId id, std::vector<double> values,
               double prob, double localSkyProb) {
  Candidate c;
  c.site = site;
  c.tuple = Tuple{id, std::move(values), prob};
  c.localSkyProb = localSkyProb;
  return c;
}

TEST(BoundQueueTest, UndominatedEntryBoundIsLocalProb) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {0.5, 0.5}, 0.8, 0.7));
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.upperBound(0), 0.7);
}

TEST(BoundQueueTest, ObservationTwoFactorApplied) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  // Witness t from site 0: local prob 0.65, P = 0.7 (the paper's (6,6)).
  queue.add(cand(0, 1, {6.0, 6.0}, 0.7, 0.65));
  // s from site 2 dominated by t: the Sec. 5.3 bound 0.8 * (0.65/0.7) * 0.3.
  queue.add(cand(2, 2, {6.4, 7.5}, 0.9, 0.8));
  EXPECT_NEAR(queue.upperBound(1), 0.8 * (0.65 / 0.7) * 0.3, 1e-12);
  // The witness itself is unaffected.
  EXPECT_DOUBLE_EQ(queue.upperBound(0), 0.65);
}

TEST(BoundQueueTest, SameSiteWitnessIgnored) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(1, 1, {1.0, 1.0}, 0.5, 0.5));
  queue.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.45));
  // Same site: the dominator is already inside s's local probability.
  EXPECT_DOUBLE_EQ(queue.upperBound(1), 0.45);
}

TEST(BoundQueueTest, PerSiteMinimumOverWitnesses) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.5));  // factor = 0.5/0.5*0.5 = 0.5
  queue.add(cand(0, 2, {2.0, 2.0}, 0.8, 0.4));  // factor = 0.4/0.8*0.2 = 0.1
  queue.add(cand(1, 3, {3.0, 3.0}, 0.9, 0.9));
  // Both witnesses are from site 0: the minimum factor applies once.
  EXPECT_NEAR(queue.upperBound(2), 0.9 * 0.1, 1e-12);
}

TEST(BoundQueueTest, WitnessesFromDifferentSitesMultiply) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.5));  // factor 0.5
  queue.add(cand(1, 2, {1.5, 1.5}, 0.5, 0.4));  // factor 0.4/0.5*0.5 = 0.4
  queue.add(cand(2, 3, {3.0, 3.0}, 0.9, 0.9));
  EXPECT_NEAR(queue.upperBound(2), 0.9 * 0.5 * 0.4, 1e-12);
}

TEST(BoundQueueTest, WitnessRetainedAfterTake) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.5));
  queue.take(0);  // witness leaves the queue...
  queue.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.9));
  // ...but its Observation-2 factor still applies to later arrivals.
  EXPECT_NEAR(queue.upperBound(0), 0.9 * 0.5, 1e-12);
}

TEST(BoundQueueTest, ConfirmedCapTightens) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.9));
  // Confirmed witness t ≺ s with exact P_gsky(t) = 0.3, P(t) = 0.5:
  // cap = P(s) * 0.3/0.5 * 0.5 = 0.9 * 0.3 = 0.27.
  queue.confirm(Tuple{7, {1.0, 1.0}, 0.5}, 0.3);
  EXPECT_NEAR(queue.upperBound(0), 0.27, 1e-12);
}

TEST(BoundQueueTest, ConfirmedCapAppliesToLaterArrivals) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.confirm(Tuple{7, {1.0, 1.0}, 0.5}, 0.3);
  queue.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.9));
  EXPECT_NEAR(queue.upperBound(0), 0.27, 1e-12);
}

TEST(BoundQueueTest, BoundModesDisableMachinery) {
  // kNone: bound is always the local probability.
  BoundQueue none(fullMask(2), FeedbackBound::kNone);
  none.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.5));
  none.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.9));
  none.confirm(Tuple{7, {0.5, 0.5}, 0.5}, 0.2);
  EXPECT_DOUBLE_EQ(none.upperBound(1), 0.9);

  // kQueuedWitnesses: Observation 2 on, Corollary-2 caps off.
  BoundQueue wit(fullMask(2), FeedbackBound::kQueuedWitnesses);
  wit.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.5));
  wit.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.9));
  wit.confirm(Tuple{7, {0.5, 0.5}, 0.5}, 0.0001);
  EXPECT_NEAR(wit.upperBound(1), 0.9 * 0.5, 1e-12);
}

TEST(BoundQueueTest, SelectQualifiedPicksStrongestPruner) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 9.0}, 0.6, 0.6));
  queue.add(cand(1, 2, {9.0, 1.0}, 0.8, 0.8));
  queue.add(cand(2, 3, {5.0, 5.0}, 0.7, 0.7));
  EXPECT_EQ(queue.selectQualified(0.3), 1u);  // largest local prob
  EXPECT_EQ(queue.selectQualified(0.75), 1u);
  EXPECT_EQ(queue.selectQualified(0.9), BoundQueue::npos);
}

TEST(BoundQueueTest, SelectQualifiedTieBreaksById) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 9, {1.0, 9.0}, 0.6, 0.6));
  queue.add(cand(1, 2, {9.0, 1.0}, 0.6, 0.6));
  EXPECT_EQ(queue.selectQualified(0.3), 1u);  // id 2 < id 9
}

TEST(BoundQueueTest, FindExpungeableAndTake) {
  BoundQueue queue(fullMask(2), FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 1.0}, 0.5, 0.9));
  queue.add(cand(1, 2, {2.0, 2.0}, 0.9, 0.8));  // bound 0.8 * 0.9 = 0.72...
  // Witness factor for entry 1: 0.9/0.5 * 0.5 = 0.9 -> ub = 0.72.
  EXPECT_EQ(queue.findExpungeable(0.7), BoundQueue::npos);
  EXPECT_EQ(queue.findExpungeable(0.73), 1u);
  const Candidate taken = queue.take(1);
  EXPECT_EQ(taken.tuple.id, 2u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundQueueTest, SubspaceMaskControlsDominance) {
  // On the masked dims {0}, (1, 9) dominates (2, 1).
  BoundQueue queue(DimMask{0b01}, FeedbackBound::kQueuedAndConfirmed);
  queue.add(cand(0, 1, {1.0, 9.0}, 0.5, 0.5));
  queue.add(cand(1, 2, {2.0, 1.0}, 0.9, 0.9));
  EXPECT_NEAR(queue.upperBound(1), 0.9 * 0.5, 1e-12);
}

}  // namespace
}  // namespace dsud
