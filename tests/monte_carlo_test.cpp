#include "skyline/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/synthetic.hpp"
#include "skyline/linear_skyline.hpp"
#include "skyline/possible_worlds.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(MonteCarloTest, RejectsZeroWorlds) {
  const Dataset data = testutil::makeDataset(2, {{1.0, 1.0, 0.5}});
  Rng rng(1);
  EXPECT_THROW(skylineProbabilitiesMonteCarlo(data, 0, rng),
               std::invalid_argument);
}

TEST(MonteCarloTest, CertainSingletonIsAlwaysSkyline) {
  const Dataset data = testutil::makeDataset(2, {{1.0, 1.0, 1.0}});
  Rng rng(2);
  const auto est = skylineProbabilitiesMonteCarlo(data, 100, rng);
  EXPECT_EQ(est[0], 1.0);
}

TEST(MonteCarloTest, ConvergesToEnumerationOnFig3) {
  // The paper's Fig. 3 example: exact values 0.16, 0.6, 0.8.
  const Dataset data = testutil::makeDataset(2, {
                                                    {80.0, 96.0, 0.8},
                                                    {85.0, 90.0, 0.6},
                                                    {75.0, 95.0, 0.8},
                                                });
  Rng rng(3);
  const auto est = skylineProbabilitiesMonteCarlo(data, 200000, rng);
  EXPECT_NEAR(est[0], 0.16, 0.01);
  EXPECT_NEAR(est[1], 0.6, 0.01);
  EXPECT_NEAR(est[2], 0.8, 0.01);
}

TEST(MonteCarloTest, MatchesClosedFormOnRandomData) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{60, 3, ValueDistribution::kIndependent, 700});
  Rng rng(701);
  const auto est = skylineProbabilitiesMonteCarlo(data, 100000, rng);
  const auto exact = skylineProbabilitiesLinear(data);
  for (std::size_t row = 0; row < data.size(); ++row) {
    // 100k worlds: ~4.5 sigma of 0.5/sqrt(100000) ≈ 0.007.
    EXPECT_NEAR(est[row], exact[row], 0.015) << "row " << row;
  }
}

TEST(MonteCarloTest, SubspaceMaskRespected) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{40, 3, ValueDistribution::kAnticorrelated, 702});
  Rng rng(703);
  const DimMask mask = 0b011;
  const auto est = skylineProbabilitiesMonteCarlo(data, 60000, rng, {.mask = mask});
  const auto exact = skylineProbabilitiesLinear(data, {.mask = mask});
  for (std::size_t row = 0; row < data.size(); ++row) {
    EXPECT_NEAR(est[row], exact[row], 0.02) << "row " << row;
  }
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{30, 2, ValueDistribution::kIndependent, 704});
  Rng rngA(705);
  Rng rngB(705);
  EXPECT_EQ(skylineProbabilitiesMonteCarlo(data, 5000, rngA),
            skylineProbabilitiesMonteCarlo(data, 5000, rngB));
}

TEST(MonteCarloTest, CustomWorldSamplerIsUsed) {
  // A sampler that never instantiates anything: all probabilities zero.
  const Dataset data = testutil::makeDataset(2, {
                                                    {1.0, 1.0, 0.9},
                                                    {2.0, 2.0, 0.9},
                                                });
  Rng rng(706);
  const auto none = skylineProbabilitiesMonteCarlo(data, 100, rng, {}, [](const Dataset&, Rng&, std::vector<bool>& present) {
        std::fill(present.begin(), present.end(), false);
      });
  EXPECT_EQ(none[0], 0.0);
  EXPECT_EQ(none[1], 0.0);

  // A fully-correlated sampler: both exist or neither (NOT the paper's
  // independent model) — the dominated tuple then never wins.
  const auto correlated = skylineProbabilitiesMonteCarlo(data, 20000, rng, {}, [](const Dataset& d, Rng& r, std::vector<bool>& present) {
        const bool all = r.uniform() < d.prob(0);
        std::fill(present.begin(), present.end(), all);
      });
  EXPECT_NEAR(correlated[0], 0.9, 0.02);
  EXPECT_NEAR(correlated[1], 0.0, 1e-12);
}

TEST(MonteCarloTest, ErrorShrinksWithMoreWorlds) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{50, 2, ValueDistribution::kIndependent, 707});
  const auto exact = skylineProbabilitiesLinear(data);
  const auto maxError = [&](std::size_t worlds, std::uint64_t seed) {
    Rng rng(seed);
    const auto est = skylineProbabilitiesMonteCarlo(data, worlds, rng);
    double worst = 0.0;
    for (std::size_t row = 0; row < data.size(); ++row) {
      worst = std::max(worst, std::abs(est[row] - exact[row]));
    }
    return worst;
  };
  // Average over a few seeds so the comparison is stable.
  double coarse = 0.0;
  double fine = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    coarse += maxError(500, 708 + seed);
    fine += maxError(50000, 808 + seed);
  }
  EXPECT_LT(fine, coarse);
}

}  // namespace
}  // namespace dsud
