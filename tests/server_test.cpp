// End-to-end tests for the query-serving daemon (src/server/server.hpp):
// real sockets against a QueryServer running on its own thread.  Covers the
// acceptance bar for the subsystem — concurrent clients receive answers
// bit-identical to direct QueryEngine runs, overload sheds explicitly
// instead of hanging, malformed and oversized input leave the connection
// usable, /metrics is a conformant Prometheus exposition, and drain flips
// /healthz to 503 while refusing new queries.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "net/wire.hpp"
#include "prom_util.hpp"
#include "server/json.hpp"
#include "server/server.hpp"

namespace dsud::server {
namespace {

// ---------------------------------------------------------------------------
// Harness: a server on its own thread plus a tiny blocking client.

class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config = {}, std::size_t n = 4000,
                         std::size_t dims = 3, bool shareWork = false,
                         bool wireAdmin = false) {
    // Most tests compare server stats strictly against direct engine runs,
    // which the sharing layer deliberately changes (a cache hit ships
    // nothing).  Keep it off unless a test opts in.
    if (!shareWork) {
      config.cacheCapacity = 0;
      config.batching.enabled = false;
    }
    SyntheticSpec spec;
    spec.n = n;
    spec.dims = dims;
    spec.dist = ValueDistribution::kAnticorrelated;
    spec.seed = 1;
    cluster_ = std::make_unique<InProcCluster>(
        Topology::uniform(generateSynthetic(spec, uniformProbability()), 4, 1));
    if (wireAdmin) {
      // The same wiring dsudd uses: the admin surface drives the cluster.
      InProcCluster* cluster = cluster_.get();
      config.admin.addSite = [cluster] { return cluster->addSite(); };
      config.admin.removeSite = [cluster](SiteId id) {
        cluster->removeSite(id);
      };
      config.admin.rebalance = [cluster] { cluster->rebalance(); };
      config.admin.topology = [cluster] { return cluster->topology(); };
    }
    server_ = std::make_unique<QueryServer>(
        cluster_->engine(), cluster_->metricsRegistry(), config);
    server_->start();  // ports are known after this
    thread_ = std::thread([this] {
      server_->run();
      exited_.store(true, std::memory_order_relaxed);
    });
  }

  ~ServerFixture() {
    server_->stop();
    thread_.join();
  }

  QueryServer& server() { return *server_; }
  QueryEngine& engine() { return cluster_->engine(); }
  InProcCluster& cluster() { return *cluster_; }

  bool waitForExit(double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int>(seconds * 1e3));
    while (std::chrono::steady_clock::now() < deadline) {
      if (exited_.load(std::memory_order_relaxed)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return exited_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<InProcCluster> cluster_;
  std::unique_ptr<QueryServer> server_;
  std::thread thread_;
  std::atomic<bool> exited_{false};
};

/// Blocking NDJSON client with a receive timeout so a server bug surfaces
/// as a test failure, not a hang.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : sock_(connectTo(port, std::chrono::milliseconds{2000})) {
    setSocketTimeouts(sock_, std::chrono::milliseconds{10'000});
  }

  void send(const std::string& text) {
    const std::string line = text + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const auto n = ::send(sock_.fd(), line.data() + off, line.size() - off,
                            MSG_NOSIGNAL);
      if (n <= 0) throw NetError("client send failed");
      off += static_cast<std::size_t>(n);
    }
  }

  std::string readLine() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(sock_.fd(), chunk, sizeof chunk, 0);
      if (n <= 0) throw NetError("client recv failed (timeout or close)");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  Response read() { return decodeResponse(readLine()); }

 private:
  Socket sock_;
  std::string buffer_;
};

/// Everything the server streamed for one query id, in order.
struct QueryOutcome {
  AckResponse ack;
  std::vector<AnswerResponse> answers;
  DoneResponse done;
  ErrorResponse error;
  bool failed = false;
};

/// Demultiplexes the connection's response stream into per-id outcomes,
/// reading until every requested id has its terminal line.  Pipelined
/// queries interleave freely and terminals arrive in any order, so a
/// read-one-id-at-a-time loop would discard another id's terminal.
std::map<std::string, QueryOutcome> collectMany(
    Client& client, const std::vector<std::string>& ids) {
  std::map<std::string, QueryOutcome> out;
  for (const std::string& id : ids) out[id];
  std::size_t remaining = out.size();
  while (remaining > 0) {
    const Response response = client.read();
    if (const auto* ack = std::get_if<AckResponse>(&response)) {
      const auto it = out.find(ack->id);
      if (it != out.end()) it->second.ack = *ack;
    } else if (const auto* answer = std::get_if<AnswerResponse>(&response)) {
      const auto it = out.find(answer->id);
      if (it != out.end()) it->second.answers.push_back(*answer);
    } else if (const auto* done = std::get_if<DoneResponse>(&response)) {
      const auto it = out.find(done->id);
      if (it != out.end()) {
        it->second.done = *done;
        --remaining;
      }
    } else if (const auto* error = std::get_if<ErrorResponse>(&response)) {
      const auto it = out.find(error->id);
      if (it != out.end()) {
        it->second.error = *error;
        it->second.failed = true;
        --remaining;
      }
    }
  }
  return out;
}

QueryOutcome collect(Client& client, const std::string& id) {
  return collectMany(client, {id})[id];
}

/// Streamed answers must be byte-exact against a direct engine run: same
/// order, same tuples, same probabilities (doubles survive the JSON codec
/// bit-exactly via %.17g).
void expectBitIdentical(const QueryOutcome& out, const QueryResult& direct) {
  ASSERT_FALSE(out.failed) << out.error.message;
  ASSERT_EQ(out.answers.size(), direct.skyline.size());
  for (std::size_t i = 0; i < out.answers.size(); ++i) {
    EXPECT_EQ(out.answers[i].seq, i + 1);
    EXPECT_EQ(out.answers[i].entry, direct.skyline[i]) << "answer " << i;
  }
  EXPECT_EQ(out.done.answers, direct.skyline.size());
  EXPECT_EQ(out.done.stats.tuplesShipped, direct.stats.tuplesShipped);
  EXPECT_EQ(out.done.stats.roundTrips, direct.stats.roundTrips);
}

// ---------------------------------------------------------------------------
// Basic protocol flow

TEST(ServerTest, PingAndStats) {
  ServerFixture fx({}, 500);
  Client client(fx.server().port());
  client.send(R"({"op":"ping"})");
  EXPECT_TRUE(std::holds_alternative<PongResponse>(client.read()));
  client.send(R"({"op":"stats"})");
  const Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(response));
  EXPECT_EQ(std::get<StatsResponse>(response).active, 0u);
}

TEST(ServerTest, QueryStreamsBitIdenticalToDirectRun) {
  ServerFixture fx;
  QueryConfig config;
  config.q = 0.3;
  const QueryResult direct = fx.engine().runEdsud(config);
  ASSERT_FALSE(direct.skyline.empty());

  Client client(fx.server().port());
  client.send(R"({"op":"query","id":"q1","algo":"edsud","q":0.3})");
  const QueryOutcome out = collect(client, "q1");
  EXPECT_EQ(out.ack.id, "q1");
  EXPECT_NE(out.ack.query, kNoQuery);
  expectBitIdentical(out, direct);
}

TEST(ServerTest, TopKSubspaceAndConstrainedRouteCorrectly) {
  ServerFixture fx;
  Client client(fx.server().port());

  TopKConfig topk;
  topk.k = 5;
  topk.floorQ = 1e-3;
  const QueryResult directTopK = fx.engine().runTopK(topk);
  client.send(R"({"op":"query","id":"tk","k":5,"floor_q":0.001})");
  expectBitIdentical(collect(client, "tk"), directTopK);

  QueryConfig sub;
  sub.q = 0.3;
  sub.mask = 0b011;
  const QueryResult directSub = fx.engine().runEdsud(sub);
  client.send(R"({"op":"query","id":"sub","q":0.3,"mask":3})");
  expectBitIdentical(collect(client, "sub"), directSub);

  QueryConfig win;
  win.q = 0.2;
  Rect window(3);
  window.expand(std::vector<double>{0.0, 0.0, 0.0});
  window.expand(std::vector<double>{0.5, 0.5, 0.5});
  win.window = window;
  const QueryResult directWin = fx.engine().runEdsud(win);
  client.send(
      R"({"op":"query","id":"win","q":0.2,"window":{"lo":[0,0,0],"hi":[0.5,0.5,0.5]}})");
  expectBitIdentical(collect(client, "win"), directWin);
}

TEST(ServerTest, NonProgressiveAndLimitedQueries) {
  ServerFixture fx;
  QueryConfig config;
  config.q = 0.3;
  const QueryResult direct = fx.engine().runEdsud(config);
  ASSERT_GT(direct.skyline.size(), 3u);

  Client client(fx.server().port());
  // progressive=false: no answer lines, done still reports the full count.
  client.send(R"({"op":"query","id":"np","q":0.3,"progressive":false})");
  const QueryOutcome np = collect(client, "np");
  ASSERT_FALSE(np.failed);
  EXPECT_TRUE(np.answers.empty());
  EXPECT_EQ(np.done.answers, direct.skyline.size());

  // limit=3: exactly the first three answers stream, count stays total.
  client.send(R"({"op":"query","id":"lim","q":0.3,"limit":3})");
  const QueryOutcome lim = collect(client, "lim");
  ASSERT_FALSE(lim.failed);
  ASSERT_EQ(lim.answers.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lim.answers[i].entry, direct.skyline[i]);
  }
  EXPECT_EQ(lim.done.answers, direct.skyline.size());
}

// ---------------------------------------------------------------------------
// Concurrency: the subsystem's acceptance bar

TEST(ServerTest, SixtyFourConcurrentClientsBitIdentical) {
  ServerFixture fx({}, 2000);
  QueryConfig config;
  config.q = 0.3;
  const QueryResult direct = fx.engine().runEdsud(config);
  ASSERT_FALSE(direct.skyline.empty());

  constexpr std::size_t kClients = 64;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(fx.server().port()));
  }
  // All queries go out before any response is read: the server must hold 64
  // concurrent sessions without mixing their streams.
  for (std::size_t i = 0; i < kClients; ++i) {
    clients[i]->send(R"({"op":"query","id":"c)" + std::to_string(i) +
                     R"(","algo":"edsud","q":0.3})");
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    const QueryOutcome out = collect(*clients[i], "c" + std::to_string(i));
    expectBitIdentical(out, direct);
  }
}

TEST(ServerTest, QuotaShedBurstNeverHangsAndDrainsToZero) {
  ServerConfig config;
  config.admission.defaultQuota.ratePerSec = 1e-6;  // effectively no refill
  config.admission.defaultQuota.burst = 2.0;
  ServerFixture fx(config, 1000);

  Client client(fx.server().port());
  constexpr int kBurst = 8;
  std::vector<std::string> ids;
  for (int i = 0; i < kBurst; ++i) {
    ids.push_back("b" + std::to_string(i));
    client.send(R"({"op":"query","id":")" + ids.back() + R"(","q":0.3})");
  }
  int completed = 0;
  int shed = 0;
  for (auto& [id, out] : collectMany(client, ids)) {
    if (out.failed) {
      EXPECT_EQ(out.error.code, ErrorCode::kOverloaded) << id;
      EXPECT_GE(out.error.retryAfterMs, 1u) << id;
      ++shed;
    } else {
      ++completed;
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(shed, kBurst - 2);

  // Every shed was refused without a session; after the two admitted
  // queries finish the in-flight accounting is exactly zero again.
  client.send(R"({"op":"stats"})");
  const Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(response));
  const auto& stats = std::get<StatsResponse>(response);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(kBurst - 2));
}

TEST(ServerTest, CancelAbortsQueuedQuery) {
  ServerConfig config;
  config.admission.maxInFlight = 1;
  ServerFixture fx(config, 4000);

  Client client(fx.server().port());
  // One TCP write carries all three lines, so the loop queues `b` behind
  // the slow `a` and flips b's cancel flag in the same dispatch batch —
  // deterministically before `b` could ever start.
  client.send(
      std::string(R"({"op":"query","id":"a","algo":"naive","q":0.001})") +
      "\n" + R"({"op":"query","id":"b","q":0.3})" + "\n" +
      R"({"op":"cancel","id":"b"})");
  auto outcomes = collectMany(client, {"a", "b"});
  EXPECT_FALSE(outcomes["a"].failed);
  ASSERT_TRUE(outcomes["b"].failed);
  EXPECT_EQ(outcomes["b"].error.code, ErrorCode::kCancelled);

  // Cancel for an unknown id is a silent no-op; the connection lives on.
  client.send(R"({"op":"cancel","id":"ghost"})");
  client.send(R"({"op":"ping"})");
  EXPECT_TRUE(std::holds_alternative<PongResponse>(client.read()));
}

// ---------------------------------------------------------------------------
// Hostile input

TEST(ServerTest, MalformedLinesGetCleanErrorsAndConnectionSurvives) {
  ServerFixture fx({}, 500);
  Client client(fx.server().port());

  client.send("this is not json");
  Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(std::get<ErrorResponse>(response).id.empty());

  client.send(R"({"op":"warp"})");
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kUnknownOp);

  std::string badUtf8 = R"({"op":"ping","x":")";
  badUtf8 += "\xff\xfe\"}";
  client.send(badUtf8);
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kBadRequest);

  // After all that abuse the connection still serves queries.
  client.send(R"({"op":"ping"})");
  EXPECT_TRUE(std::holds_alternative<PongResponse>(client.read()));
}

TEST(ServerTest, OversizedLineIsRejectedAndStreamResyncs) {
  ServerConfig config;
  config.maxLineBytes = 256;
  ServerFixture fx(config, 500);
  Client client(fx.server().port());

  client.send(std::string(2000, 'x'));  // one giant junk line
  const Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kOversized);

  // The parser resynchronised at the newline: the next request works.
  client.send(R"({"op":"ping"})");
  EXPECT_TRUE(std::holds_alternative<PongResponse>(client.read()));
}

TEST(ServerTest, AbruptResetMidPipelineDoesNotCorruptServer) {
  // A client pipelines a burst of requests and slams the door with an RST:
  // the server's response send() then fails inside the connection's own
  // onReadable() frame, with more pipelined lines still buffered.  The
  // teardown must be deferred (never a synchronous erase under the live
  // handler frame), and the server must keep serving other clients.
  ServerFixture fx({}, 500);
  {
    Socket sock = connectTo(fx.server().port(), std::chrono::milliseconds{2000});
    std::string burst;
    for (int i = 0; i < 64; ++i) burst += "{\"op\":\"ping\"}\n";
    std::size_t off = 0;
    while (off < burst.size()) {
      const auto n = ::send(sock.fd(), burst.data() + off, burst.size() - off,
                            MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
    struct linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  }  // close with linger 0 -> RST races the server's reads and writes

  // Regardless of how the race lands, a fresh connection works.
  Client client(fx.server().port());
  client.send(R"({"op":"ping"})");
  EXPECT_TRUE(std::holds_alternative<PongResponse>(client.read()));
}

// ---------------------------------------------------------------------------
// Connection teardown mechanics

TEST(ConnectionTest, DefunctStopsLineDispatchWithoutDestruction) {
  // The server reacts to a failed send by marking the connection defunct
  // from inside the line handler; onReadable() must stop dispatching the
  // remaining pipelined lines and return normally (the erase is deferred).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(1, Socket(fds[0]), 1024, 4096);
  std::vector<std::string> lines;
  conn.setLineHandler([&](std::string_view line) {
    lines.emplace_back(line);
    conn.markDefunct();
  });
  ASSERT_EQ(::send(fds[1], "first\nsecond\n", 13, MSG_NOSIGNAL), 13);
  EXPECT_EQ(conn.onReadable(), Connection::IoResult::kOk);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "first");
  // Defunct connections also drop writes instead of reporting failures.
  EXPECT_EQ(conn.send("late response"), Connection::IoResult::kOk);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// HTTP endpoints

/// One-shot HTTP GET; returns the status line and body.
std::pair<std::string, std::string> httpGet(std::uint16_t port,
                                            const std::string& request) {
  Socket sock = connectTo(port, std::chrono::milliseconds{2000});
  setSocketTimeouts(sock, std::chrono::milliseconds{5000});
  std::size_t off = 0;
  while (off < request.size()) {
    const auto n = ::send(sock.fd(), request.data() + off,
                          request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) throw NetError("http send failed");
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {  // the server closes after one response
    const auto n = ::recv(sock.fd(), chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t eol = response.find("\r\n");
  const std::size_t split = response.find("\r\n\r\n");
  if (eol == std::string::npos || split == std::string::npos) {
    throw NetError("malformed http response");
  }
  return {response.substr(0, eol), response.substr(split + 4)};
}

TEST(ServerTest, HealthzAndMetricsEndpoints) {
  ServerFixture fx({}, 500);
  const std::uint16_t http = fx.server().httpPort();

  const auto [healthStatus, healthBody] =
      httpGet(http, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(healthStatus.find("200"), std::string::npos);
  EXPECT_EQ(healthBody, "ok\n");

  // Run one query first so engine series carry non-zero values.
  Client client(fx.server().port());
  client.send(R"({"op":"query","id":"q1","q":0.3})");
  collect(client, "q1");

  const auto [status, body] =
      httpGet(http, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(status.find("200"), std::string::npos);
  // The exposition must be conformant and contain both server and engine
  // families — one registry, one page.
  for (const std::string& error : promtest::lintExposition(body)) {
    ADD_FAILURE() << error;
  }
  EXPECT_NE(body.find("dsud_server_requests_total"), std::string::npos);
  EXPECT_NE(body.find("dsud_server_active"), std::string::npos);
  EXPECT_NE(body.find("dsud_queries_total"), std::string::npos);

  const auto [notFound, nfBody] =
      httpGet(http, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(notFound.find("404"), std::string::npos);
  const auto [notAllowed, naBody] =
      httpGet(http, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(notAllowed.find("405"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared work: result cache + batch executor over the wire

TEST(ServerTest, SharedWorkServesCachedAnswersBitIdenticalForFree) {
  ServerConfig config;
  config.batching.enabled = true;
  config.batching.windowSeconds = 0.02;
  ServerFixture fx(config, 2000, 3, /*shareWork=*/true);

  // Warm the shared cache through the engine directly; the same run defines
  // the reference answers every cached reply must match bit-for-bit.
  QueryConfig warm;
  warm.q = 0.3;
  const QueryResult reference = fx.engine().runEdsud(warm);
  ASSERT_FALSE(reference.skyline.empty());

  constexpr std::size_t kClients = 16;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(fx.server().port()));
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    clients[i]->send(R"({"op":"query","id":"s)" + std::to_string(i) +
                     R"(","algo":"edsud","q":0.3})");
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    const QueryOutcome out = collect(*clients[i], "s" + std::to_string(i));
    ASSERT_FALSE(out.failed) << out.error.message;
    ASSERT_EQ(out.answers.size(), reference.skyline.size());
    for (std::size_t j = 0; j < out.answers.size(); ++j) {
      EXPECT_EQ(out.answers[j].entry, reference.skyline[j]) << "answer " << j;
    }
    // Every burst query resolved from the cache: the sites were not asked
    // for a single tuple, yet the stream is indistinguishable in content.
    EXPECT_EQ(out.done.stats.tuplesShipped, 0u);
    EXPECT_EQ(out.done.stats.roundTrips, 0u);
  }

  // The sharing layer's counters are on the one metrics page, lint-clean,
  // and record the burst: one miss from the warm run, a hit per client.
  const auto [status, body] = httpGet(
      fx.server().httpPort(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(status.find("200"), std::string::npos);
  promtest::PromExposition parsed;
  std::vector<std::string> errors;
  promtest::parsePrometheus(body, parsed, errors);
  for (const std::string& error : errors) ADD_FAILURE() << error;
  for (const std::string& error : promtest::lintExposition(body)) {
    ADD_FAILURE() << error;
  }
  std::map<std::string, double> counters;
  for (const auto& sample : parsed.samples) {
    if (sample.suffix.empty()) counters[sample.family] = sample.value;
  }
  ASSERT_TRUE(counters.count("dsud_cache_hits_total"));
  ASSERT_TRUE(counters.count("dsud_cache_misses_total"));
  ASSERT_TRUE(counters.count("dsud_batch_merged_total"));
  ASSERT_TRUE(counters.count("dsud_batch_flushes_total"));
  // One hit resolves a whole batch group, so hits counts groups and merged
  // counts the members that rode along: together they account for every
  // client in the burst.
  EXPECT_GE(counters["dsud_cache_hits_total"], 1.0);
  EXPECT_EQ(counters["dsud_cache_hits_total"] +
                counters["dsud_batch_merged_total"],
            static_cast<double>(kClients));
  EXPECT_GE(counters["dsud_cache_misses_total"], 1.0);
  EXPECT_GE(counters["dsud_batch_flushes_total"], 1.0);
}

// ---------------------------------------------------------------------------
// Graceful drain

TEST(ServerTest, DrainRefusesQueriesFlipsHealthzAndStops) {
  // A drain with nothing in flight completes instantly and run() returns,
  // taking the HTTP listener with it.  Hold the drain open with a slow
  // in-flight query (naive at q=0.001 over a large 5-d set takes hundreds
  // of milliseconds) so the degraded /healthz and the refusal of late
  // queries are observable mid-drain.  The drain deadline is raised well
  // past any sanitizer slowdown: this test is about the held-open drain
  // completing on its own, and the default 5 s deadline would cancel the
  // in-flight query under ASan instead.
  ServerConfig config;
  config.drainSeconds = 60.0;
  ServerFixture fx(config, 40'000, 5);
  Client client(fx.server().port());  // connected before the drain
  client.send(R"({"op":"query","id":"a","algo":"naive","q":0.001})");
  const Response ackResponse = client.read();
  ASSERT_TRUE(std::holds_alternative<AckResponse>(ackResponse));
  EXPECT_EQ(std::get<AckResponse>(ackResponse).id, "a");

  fx.server().requestDrain();
  // The drain begins asynchronously on the loop thread; /healthz flips once
  // it has.  Poll briefly rather than assuming scheduling order.
  std::string status;
  for (int i = 0; i < 100; ++i) {
    status = httpGet(fx.server().httpPort(),
                     "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                 .first;
    if (status.find("503") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(status.find("503"), std::string::npos);

  // Established connections get an explicit refusal, not silence — while
  // the in-flight query keeps streaming to completion.
  client.send(R"({"op":"query","id":"late","q":0.3})");
  auto outcomes = collectMany(client, {"a", "late"});
  ASSERT_TRUE(outcomes["late"].failed);
  EXPECT_EQ(outcomes["late"].error.code, ErrorCode::kUnavailable);
  EXPECT_FALSE(outcomes["a"].failed);
  EXPECT_GT(outcomes["a"].done.answers, 0u);

  // Once the in-flight query finished, the drain completes and run()
  // returns on its own — no stop() needed.
  EXPECT_TRUE(fx.waitForExit(5.0));
}

// ---------------------------------------------------------------------------
// Elastic-cluster admin surface

TEST(ServerTest, AdminJoinRebalanceLeaveOverTheWire) {
  ServerFixture fx({}, 1000, 3, /*shareWork=*/false, /*wireAdmin=*/true);
  Client client(fx.server().port());

  // Read-only snapshot of the initial layout.
  client.send(R"({"op":"admin","id":"t0","action":"topology"})");
  Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(response));
  {
    const auto& topo = std::get<AdminResponse>(response);
    EXPECT_EQ(topo.id, "t0");
    EXPECT_EQ(topo.epoch, 1u);
    EXPECT_EQ(topo.members.size(), 4u);
    EXPECT_EQ(topo.partitions.size(), 4u);
    EXPECT_EQ(topo.site, kNoSite);
  }

  // Join: a fresh member appears in the membership, hosts nothing yet.
  client.send(R"({"op":"admin","id":"t1","action":"add-site"})");
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(response));
  {
    const auto& joined = std::get<AdminResponse>(response);
    EXPECT_EQ(joined.site, 4u);
    EXPECT_EQ(joined.epoch, 2u);
    EXPECT_EQ(joined.members.size(), 5u);
    EXPECT_EQ(joined.partitions.size(), 4u) << "no data until rebalance";
  }

  // Rebalance spreads one partition onto every member.
  client.send(R"({"op":"admin","id":"t2","action":"rebalance"})");
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(response));
  {
    const auto& rebalanced = std::get<AdminResponse>(response);
    EXPECT_EQ(rebalanced.epoch, 3u);
    EXPECT_EQ(rebalanced.partitions.size(), 5u);
  }

  // Leave: the member's data drains onto the survivors.
  client.send(R"({"op":"admin","id":"t3","action":"remove-site","site":4})");
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(response));
  {
    const auto& shrunk = std::get<AdminResponse>(response);
    EXPECT_EQ(shrunk.members.size(), 4u);
    EXPECT_EQ(shrunk.partitions.size(), 4u);
  }

  // Queries work across every epoch the churn produced.
  client.send(R"({"op":"query","id":"q1","q":0.3})");
  const QueryOutcome out = collect(client, "q1");
  ASSERT_FALSE(out.failed) << out.error.message;
  EXPECT_GT(out.done.answers, 0u);

  // Bad requests answer cleanly and keep the connection usable.
  client.send(R"({"op":"admin","id":"t4","action":"remove-site","site":99})");
  response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kBadRequest);
}

TEST(ServerTest, AdminRejectedWhenHooksAreNotWired) {
  ServerFixture fx({}, 500);  // no admin wiring
  Client client(fx.server().port());
  client.send(R"({"op":"admin","id":"a1","action":"topology"})");
  const Response response = client.read();
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response));
  EXPECT_EQ(std::get<ErrorResponse>(response).code, ErrorCode::kBadRequest);
}

TEST(ServerTest, QueriesKeepCompletingDuringWireTriggeredRebalance) {
  ServerFixture fx({}, 8000, 3, /*shareWork=*/false, /*wireAdmin=*/true);
  Client adminClient(fx.server().port());
  Client queryClient(fx.server().port());

  // Kick a rebalance and immediately pipeline queries on another
  // connection; the rebalance runs on a worker while the queries flow.
  adminClient.send(R"({"op":"admin","id":"r1","action":"rebalance"})");
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "q" + std::to_string(i);
    queryClient.send(R"({"op":"query","id":")" + id +
                     R"(","q":0.3,"progressive":false})");
    ids.push_back(id);
  }
  auto outcomes = collectMany(queryClient, ids);
  std::uint64_t answers = 0;
  for (const auto& [id, out] : outcomes) {
    ASSERT_FALSE(out.failed) << id << ": " << out.error.message;
    EXPECT_FALSE(out.done.degraded) << id;
    if (answers == 0) answers = out.done.answers;
    EXPECT_EQ(out.done.answers, answers)
        << "every epoch serves the same answer set";
  }

  const Response response = adminClient.read();
  ASSERT_TRUE(std::holds_alternative<AdminResponse>(response));
  EXPECT_EQ(std::get<AdminResponse>(response).epoch, 2u);
}

// ---------------------------------------------------------------------------
// Live /debug introspection

TEST(ServerTest, DebugEndpointsServeWellFormedJson) {
  ServerFixture fx({}, 500);
  const std::uint16_t http = fx.server().httpPort();

  // Run one query first so /debug/queries has a finished row and the
  // recorder has retained its lifecycle events.
  Client client(fx.server().port());
  client.send(R"({"op":"query","id":"dbg1","algo":"edsud","q":0.3})");
  const QueryOutcome out = collect(client, "dbg1");
  ASSERT_FALSE(out.failed) << out.error.message;

  const auto [qStatus, qBody] =
      httpGet(http, "GET /debug/queries HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(qStatus.find("200"), std::string::npos);
  const Json queries = Json::parse(qBody);
  ASSERT_TRUE(queries.isObject());
  ASSERT_NE(queries.find("running"), nullptr);
  ASSERT_NE(queries.find("recent"), nullptr);
  ASSERT_TRUE(queries.find("recent")->isArray());
  const auto& recent = queries.find("recent")->asArray();
  ASSERT_FALSE(recent.empty());
  // Newest first; the row is the query we just ran, fully disposed.
  const Json& row = recent.front();
  ASSERT_TRUE(row.isObject());
  EXPECT_EQ(row.find("id")->asString(), "dbg1");
  EXPECT_EQ(row.find("state")->asString(), "done");
  EXPECT_EQ(row.find("algo")->asString(), "edsud");
  EXPECT_EQ(row.find("answers")->asNumber(),
            static_cast<double>(out.done.answers));
  ASSERT_NE(row.find("cache"), nullptr);
  ASSERT_NE(row.find("batch"), nullptr);

  const auto [tStatus, tBody] =
      httpGet(http, "GET /debug/topology HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(tStatus.find("200"), std::string::npos);
  const Json topology = Json::parse(tBody);
  ASSERT_TRUE(topology.isObject());
  ASSERT_NE(topology.find("epoch"), nullptr);
  ASSERT_NE(topology.find("breakers_open"), nullptr);
  ASSERT_TRUE(topology.find("partitions")->isArray());
  const auto& partitions = topology.find("partitions")->asArray();
  ASSERT_EQ(partitions.size(), 4u);
  for (const Json& part : partitions) {
    ASSERT_TRUE(part.isObject());
    ASSERT_NE(part.find("partition"), nullptr);
    ASSERT_NE(part.find("replicas"), nullptr);
    EXPECT_EQ(part.find("breaker")->asString(), "closed");
  }

  const auto [cStatus, cBody] =
      httpGet(http, "GET /debug/cache HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(cStatus.find("200"), std::string::npos);
  const Json cache = Json::parse(cBody);
  ASSERT_TRUE(cache.isObject());
  // The fixture runs with sharing off, and the page says so.
  EXPECT_FALSE(cache.find("enabled")->asBool());
  ASSERT_NE(cache.find("capacity"), nullptr);
  ASSERT_NE(cache.find("size"), nullptr);
  ASSERT_NE(cache.find("hits"), nullptr);
  ASSERT_NE(cache.find("misses"), nullptr);

  const auto [rStatus, rBody] =
      httpGet(http, "GET /debug/recorder HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(rStatus.find("200"), std::string::npos);
  const Json recorder = Json::parse(rBody);
  ASSERT_TRUE(recorder.isObject());
  EXPECT_GT(recorder.find("capacity")->asNumber(), 0.0);
  EXPECT_GT(recorder.find("recorded")->asNumber(), 0.0);
  ASSERT_NE(recorder.find("dumps"), nullptr);
  ASSERT_TRUE(recorder.find("events")->isArray());
  // The query's lifecycle passed through the ring: at least one retained
  // event carries the reserved keys.
  bool sawQueryDone = false;
  for (const Json& event : recorder.find("events")->asArray()) {
    ASSERT_TRUE(event.isObject());
    ASSERT_NE(event.find("ts_ns"), nullptr);
    ASSERT_NE(event.find("level"), nullptr);
    ASSERT_NE(event.find("component"), nullptr);
    ASSERT_NE(event.find("event"), nullptr);
    if (event.find("event")->asString() == "query.done") sawQueryDone = true;
  }
  EXPECT_TRUE(sawQueryDone);

  // Unknown /debug paths are a plain 404, not a crash.
  const auto [nfStatus, nfBody] =
      httpGet(http, "GET /debug/nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(nfStatus.find("404"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-query EXPLAIN profiles over the wire

TEST(ServerTest, ProfileOnAnswerIsBitIdenticalAndCompleteForAllAlgos) {
  ServerFixture fx({}, 1500);
  Client client(fx.server().port());

  struct AlgoCase {
    std::string request;   // fields after the id, before the closing brace
    std::string expected;  // profile.algo on the wire
  };
  const std::vector<AlgoCase> cases = {
      {R"("algo":"naive","q":0.3)", "naive"},
      {R"("algo":"dsud","q":0.3)", "dsud"},
      {R"("algo":"edsud","q":0.3)", "edsud"},
      {R"("algo":"edsud","q":0.3,"k":5)", "topk"},
  };
  int seq = 0;
  for (const AlgoCase& c : cases) {
    // The same query with and without `profile`: answers and stats must be
    // bit-identical — profiling is observation, never perturbation.
    const std::string plainId = "p" + std::to_string(seq++);
    client.send(R"({"op":"query","id":")" + plainId + R"(",)" + c.request +
                "}");
    const QueryOutcome plain = collect(client, plainId);
    ASSERT_FALSE(plain.failed) << plain.error.message;
    EXPECT_FALSE(plain.done.profile.has_value())
        << c.expected << ": profile must be opt-in";

    const std::string profId = "p" + std::to_string(seq++);
    client.send(R"({"op":"query","id":")" + profId + R"(",)" + c.request +
                R"(,"profile":true})");
    const QueryOutcome profiled = collect(client, profId);
    ASSERT_FALSE(profiled.failed) << profiled.error.message;

    ASSERT_EQ(profiled.answers.size(), plain.answers.size()) << c.expected;
    for (std::size_t i = 0; i < profiled.answers.size(); ++i) {
      EXPECT_EQ(profiled.answers[i].entry, plain.answers[i].entry)
          << c.expected << " answer " << i;
    }
    EXPECT_EQ(profiled.done.answers, plain.done.answers) << c.expected;
    // Everything but wall-clock seconds is deterministic across the pair.
    EXPECT_EQ(profiled.done.stats.tuplesShipped, plain.done.stats.tuplesShipped)
        << c.expected;
    EXPECT_EQ(profiled.done.stats.bytesShipped, plain.done.stats.bytesShipped)
        << c.expected;
    EXPECT_EQ(profiled.done.stats.roundTrips, plain.done.stats.roundTrips)
        << c.expected;
    EXPECT_EQ(profiled.done.stats.candidatesPulled,
              plain.done.stats.candidatesPulled)
        << c.expected;
    EXPECT_EQ(profiled.done.stats.broadcasts, plain.done.stats.broadcasts)
        << c.expected;

    ASSERT_TRUE(profiled.done.profile.has_value()) << c.expected;
    const QueryProfile& profile = *profiled.done.profile;
    EXPECT_EQ(profile.algo, c.expected);
    EXPECT_EQ(profile.cache, "bypass") << "sharing is off in this fixture";
    EXPECT_EQ(profile.batch, "solo");
    EXPECT_EQ(profile.failovers, 0u);
    EXPECT_GE(profile.executeSeconds, 0.0);
    ASSERT_EQ(profile.sites.size(), 4u) << "one row per site";
    std::uint64_t tuples = 0;
    for (const SiteProfile& site : profile.sites) {
      EXPECT_FALSE(site.dead);
      EXPECT_EQ(site.retries, 0u);
      tuples += site.tuples;
    }
    // Per-site shipping decomposes the query-level total exactly.
    EXPECT_EQ(tuples, profiled.done.stats.tuplesShipped) << c.expected;
  }
}

}  // namespace
}  // namespace dsud::server
