// Concurrent multi-query execution: N in-flight sessions over ONE shared
// cluster must each produce bit-for-bit the result of the same query run
// alone — answers, bandwidth stats, and protocol timelines — with no state
// bleeding between sessions, and all site/coordinator/gauge state must
// return to idle once the last ticket is redeemed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/query_engine.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

std::vector<std::string> spanNames(const obs::QueryTrace& trace) {
  std::vector<std::string> names;
  names.reserve(trace.events.size());
  for (const auto& e : trace.events) names.push_back(e.name);
  return names;
}

void expectSameAnswer(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.skyline.size(), want.skyline.size());
  for (std::size_t i = 0; i < got.skyline.size(); ++i) {
    EXPECT_EQ(got.skyline[i].tuple.id, want.skyline[i].tuple.id) << "rank " << i;
    // Bit-for-bit: survival factors reduce in site order regardless of how
    // many sessions (or broadcast workers) ran at the same time.
    EXPECT_EQ(got.skyline[i].globalSkyProb, want.skyline[i].globalSkyProb)
        << "rank " << i;
  }
}

/// Every stats field except wall time, which legitimately varies.
void expectSameStats(const QueryStats& got, const QueryStats& want) {
  EXPECT_EQ(got.tuplesShipped, want.tuplesShipped);
  EXPECT_EQ(got.bytesShipped, want.bytesShipped);
  EXPECT_EQ(got.roundTrips, want.roundTrips);
  EXPECT_EQ(got.candidatesPulled, want.candidatesPulled);
  EXPECT_EQ(got.broadcasts, want.broadcasts);
  EXPECT_EQ(got.expunged, want.expunged);
  EXPECT_EQ(got.prunedAtSites, want.prunedAtSites);
}

void expectSameRun(const QueryResult& got, const QueryResult& want) {
  expectSameAnswer(got, want);
  expectSameStats(got.stats, want.stats);
  // Same protocol decisions => same timeline, span for span.
  EXPECT_EQ(spanNames(got.trace), spanNames(want.trace));
  EXPECT_EQ(got.trace.droppedEvents, want.trace.droppedEvents);
}

void expectIdle(InProcCluster& cluster) {
  EXPECT_EQ(cluster.engine().inFlight(), 0u);
  for (std::size_t i = 0; i < cluster.siteCount(); ++i) {
    EXPECT_EQ(cluster.site(i).sessionCount(), 0u) << "site " << i;
  }
  for (const auto& [name, value] : cluster.metricsRegistry().snapshot().gauges) {
    if (name.rfind("dsud_queries_inflight", 0) == 0) {
      EXPECT_EQ(value, 0.0) << name;
    }
  }
}

TEST(ConcurrentQueriesTest, MixedSubmitsMatchSequentialBitForBit) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{3000, 3, ValueDistribution::kAnticorrelated, 2200});
  InProcCluster shared(Topology::uniform(global, 8, 2201));
  InProcCluster reference(Topology::uniform(global, 8, 2201));

  QueryConfig q03;
  QueryConfig q05;
  q05.q = 0.5;
  TopKConfig topk;
  topk.k = 10;

  // One session at a time on an identical cluster: the ground truth for
  // answers, stats, and timelines.
  const QueryResult refNaive = reference.engine().runNaive(q03);
  const QueryResult refDsud = reference.engine().runDsud(q03);
  const QueryResult refEdsud = reference.engine().runEdsud(q03);
  const QueryResult refEdsud5 = reference.engine().runEdsud(q05);
  const QueryResult refTopK = reference.engine().runTopK(topk);

  // Five mixed sessions in flight at once over the shared sites.  A wide
  // pool guarantees they genuinely overlap even on small machines.
  QueryEngine engine(shared.coordinator(), 5);
  QueryTicket tickets[5] = {
      engine.submit(Algo::kNaive, q03),   engine.submit(Algo::kDsud, q03),
      engine.submit(Algo::kEdsud, q03),   engine.submit(Algo::kEdsud, q05),
      engine.submitTopK(topk),
  };

  // Session ids are allocated up front and unique.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NE(tickets[i].id(), kNoQuery);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(tickets[i].id(), tickets[j].id());
    }
  }

  const QueryResult naive = tickets[0].get();
  const QueryResult dsud = tickets[1].get();
  const QueryResult edsud = tickets[2].get();
  const QueryResult edsud5 = tickets[3].get();
  const QueryResult topkResult = tickets[4].get();

  expectSameRun(naive, refNaive);
  expectSameRun(dsud, refDsud);
  expectSameRun(edsud, refEdsud);
  expectSameRun(edsud5, refEdsud5);
  expectSameRun(topkResult, refTopK);

  // Each result is stamped with its own session id.
  EXPECT_EQ(naive.id, tickets[0].id());
  EXPECT_EQ(topkResult.id, tickets[4].id());

  EXPECT_EQ(engine.inFlight(), 0u);
  expectIdle(shared);
}

TEST(ConcurrentQueriesTest, ThreadsHammeringOneClusterSeeNoBleed) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kAnticorrelated, 2210});
  InProcCluster shared(Topology::uniform(global, 6, 2211));
  InProcCluster reference(Topology::uniform(global, 6, 2211));

  QueryConfig config;
  TopKConfig topk;
  topk.k = 5;
  const QueryResult refEdsud = reference.engine().runEdsud(config);
  const QueryResult refTopK = reference.engine().runTopK(topk);

  // 4 threads x 3 iterations of synchronous runs through the shared engine;
  // every single run must be indistinguishable from running alone.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        if ((t + i) % 2 == 0) {
          expectSameRun(shared.engine().runEdsud(config), refEdsud);
        } else {
          expectSameRun(shared.engine().runTopK(topk), refTopK);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  expectIdle(shared);
}

TEST(ConcurrentQueriesTest, PerQueryOptionsStayPerQuery) {
  // One session traces and fans its broadcasts out over 4 workers, the
  // other runs silent and sequential — concurrently, over the same sites.
  const Dataset global = generateSynthetic(
      SyntheticSpec{1200, 3, ValueDistribution::kIndependent, 2220});
  InProcCluster shared(Topology::uniform(global, 6, 2221));
  InProcCluster reference(Topology::uniform(global, 6, 2221));

  QueryConfig config;
  QueryOptions traced;
  traced.broadcastThreads = 4;
  QueryOptions silent;
  silent.traceCapacity = 0;

  const QueryResult refA = reference.engine().runEdsud(config, traced);
  const QueryResult refB = reference.engine().runEdsud(config, silent);

  QueryTicket a = shared.engine().submit(Algo::kEdsud, config, traced);
  QueryTicket b = shared.engine().submit(Algo::kEdsud, config, silent);
  const QueryResult gotA = a.get();
  const QueryResult gotB = b.get();

  expectSameRun(gotA, refA);
  expectSameRun(gotB, refB);
  EXPECT_FALSE(gotA.trace.empty());
  EXPECT_TRUE(gotB.trace.empty());
  expectIdle(shared);
}

TEST(ConcurrentQueriesTest, OneOfFiveDegradesWhileTheRestStayBitIdentical) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1500, 2, ValueDistribution::kAnticorrelated, 2240});
  Rng rng(2241);
  const auto siteData = partitionUniform(global, 5, rng);
  const SiteId victim = 2;

  // Query ids are allocated synchronously in submit order starting at 1, so
  // the third submit below is session 3 — the only traffic chaos touches:
  // its prepare at the victim succeeds (killAfter = 1), its first pull
  // there fails for good.
  ClusterConfig chaoticConfig;
  chaoticConfig.chaos =
      ChaosSpec{.killAfter = 1, .onlyQuery = 3, .onlySite = victim};
  InProcCluster shared(Topology::fromPartitions(siteData), chaoticConfig);
  InProcCluster reference(Topology::fromPartitions(siteData));

  std::vector<Dataset> survivorData;
  for (std::size_t i = 0; i < siteData.size(); ++i) {
    if (i != victim) survivorData.push_back(siteData[i]);
  }
  InProcCluster survivors(Topology::fromPartitions(survivorData));

  QueryConfig config;
  const QueryResult refDsud = reference.engine().runDsud(config);
  const QueryResult refEdsud = reference.engine().runEdsud(config);
  const QueryResult refNaive = reference.engine().runNaive(config);
  const QueryResult refDegraded = survivors.engine().runEdsud(config);

  QueryOptions degrade;
  degrade.fault.onSiteFailure = OnSiteFailure::kDegrade;

  QueryEngine engine(shared.coordinator(), 5);
  QueryTicket tickets[5] = {
      engine.submit(Algo::kDsud, config),
      engine.submit(Algo::kEdsud, config),
      engine.submit(Algo::kEdsud, config, degrade),  // session 3
      engine.submit(Algo::kNaive, config),
      engine.submit(Algo::kDsud, config),
  };
  ASSERT_EQ(tickets[2].id(), QueryId{3});

  const QueryResult dsudA = tickets[0].get();
  const QueryResult edsud = tickets[1].get();
  const QueryResult degraded = tickets[2].get();
  const QueryResult naive = tickets[3].get();
  const QueryResult dsudB = tickets[4].get();

  // The four untouched sessions are indistinguishable from running alone on
  // a healthy cluster — a concurrent session degrading must not bleed.
  expectSameRun(dsudA, refDsud);
  expectSameRun(edsud, refEdsud);
  expectSameRun(naive, refNaive);
  expectSameRun(dsudB, refDsud);
  for (const QueryResult* r : {&dsudA, &edsud, &naive, &dsudB}) {
    EXPECT_FALSE(r->degraded);
    EXPECT_TRUE(r->excludedSites.empty());
  }

  // Session 3 lost the victim before it contributed anything, so its answer
  // is exactly the 4-site survivor cluster's (origin sites renumber, hence
  // the field-wise comparison).
  EXPECT_TRUE(degraded.degraded);
  ASSERT_EQ(degraded.excludedSites, std::vector<SiteId>{victim});
  ASSERT_EQ(degraded.skyline.size(), refDegraded.skyline.size());
  for (std::size_t i = 0; i < refDegraded.skyline.size(); ++i) {
    EXPECT_EQ(degraded.skyline[i].tuple.id, refDegraded.skyline[i].tuple.id);
    EXPECT_EQ(degraded.skyline[i].localSkyProb,
              refDegraded.skyline[i].localSkyProb);
    EXPECT_EQ(degraded.skyline[i].globalSkyProb,
              refDegraded.skyline[i].globalSkyProb);
  }

  // Everything drains except the victim's session-3 state: finish() skips
  // dead sites by design (their retry budget was already spent), so the
  // site-side session is only reclaimed when the site rejoins.
  EXPECT_EQ(engine.inFlight(), 0u);
  for (std::size_t i = 0; i < shared.siteCount(); ++i) {
    EXPECT_EQ(shared.site(i).sessionCount(), i == victim ? 1u : 0u)
        << "site " << i;
  }
}

TEST(ConcurrentQueriesTest, BatchedSubmitsMatchSoloRunsBitForBit) {
  // The shared-work path (submitBatched) merges a threshold band into one
  // descent; every member's answer must still be bit-identical to the same
  // query run alone — content, order, and probabilities.
  const Dataset global = generateSynthetic(
      SyntheticSpec{2000, 3, ValueDistribution::kAnticorrelated, 2260});
  InProcCluster shared(Topology::uniform(global, 6, 2261));
  InProcCluster reference(Topology::uniform(global, 6, 2261));

  QueryConfig q03, q05, q07;
  q03.q = 0.3;
  q05.q = 0.5;
  q07.q = 0.7;
  const QueryResult ref03 = reference.engine().runEdsud(q03);
  const QueryResult ref05 = reference.engine().runEdsud(q05);
  const QueryResult ref07 = reference.engine().runEdsud(q07);

  QueryOptions batching;
  batching.batching.enabled = true;
  batching.batching.windowSeconds = 0.05;

  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket t07 = engine.submitBatched(Algo::kEdsud, q07, batching);
  QueryTicket t03 = engine.submitBatched(Algo::kEdsud, q03, batching);
  QueryTicket t05 = engine.submitBatched(Algo::kEdsud, q05, batching);

  const QueryResult got07 = t07.get();
  const QueryResult got03 = t03.get();
  const QueryResult got05 = t05.get();

  expectSameAnswer(got03, ref03);
  expectSameAnswer(got05, ref05);
  expectSameAnswer(got07, ref07);

  EXPECT_EQ(engine.inFlight(), 0u);
  expectIdle(shared);
}

TEST(ConcurrentQueriesTest, TransportCountersMatchSummedSessionUsage) {
  // Frame/byte accounting under concurrency: the per-site wire counters must
  // equal the sum of the per-session QueryUsage totals — every byte belongs
  // to exactly one session, none double-counted, none dropped.
  const Dataset global = generateSynthetic(
      SyntheticSpec{1200, 3, ValueDistribution::kAnticorrelated, 2250});
  InProcCluster shared(Topology::uniform(global, 6, 2251));

  QueryConfig config;
  QueryEngine engine(shared.coordinator(), 4);
  QueryTicket tickets[4] = {
      engine.submit(Algo::kDsud, config),
      engine.submit(Algo::kEdsud, config),
      engine.submit(Algo::kNaive, config),
      engine.submit(Algo::kEdsud, config),
  };
  std::uint64_t bytes = 0;
  std::uint64_t roundTrips = 0;
  for (auto& ticket : tickets) {
    const QueryResult result = ticket.get();
    bytes += result.stats.bytesShipped;
    roundTrips += result.stats.roundTrips;
  }

  std::uint64_t counterBytes = 0;
  std::uint64_t counterFrames = 0;
  for (const auto& [name, value] :
       shared.metricsRegistry().snapshot().counters) {
    if (name.rfind("dsud_transport_bytes_total", 0) == 0) {
      counterBytes += value;
    } else if (name.rfind("dsud_transport_frames_total", 0) == 0) {
      counterFrames += value;
    }
  }
  EXPECT_EQ(counterBytes, bytes);
  // One frame out + one frame in per round trip on a clean transport.
  EXPECT_EQ(counterFrames, 2 * roundTrips);
  expectIdle(shared);
}

TEST(ConcurrentQueriesTest, ProgressCallbacksDoNotCrossSessions) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 2230});
  InProcCluster shared(Topology::uniform(global, 5, 2231));

  QueryConfig config;
  std::atomic<std::size_t> callsA{0};
  std::atomic<std::size_t> callsB{0};
  QueryOptions optionsA;
  optionsA.progress = [&](const GlobalSkylineEntry&, const ProgressPoint&) {
    ++callsA;
  };
  QueryOptions optionsB;
  optionsB.progress = [&](const GlobalSkylineEntry&, const ProgressPoint&) {
    ++callsB;
  };

  QueryTicket a = shared.engine().submit(Algo::kEdsud, config, optionsA);
  QueryTicket b = shared.engine().submit(Algo::kDsud, config, optionsB);
  const QueryResult resultA = a.get();
  const QueryResult resultB = b.get();

  // Each callback fired exactly once per answer of ITS query.
  EXPECT_EQ(callsA.load(), resultA.skyline.size());
  EXPECT_EQ(callsB.load(), resultB.skyline.size());
  expectIdle(shared);
}

}  // namespace
}  // namespace dsud
