#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

TEST(PartitionTest, DisjointAndComplete) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{101, 2, ValueDistribution::kIndependent, 90});
  Rng rng(91);
  const auto sites = partitionUniform(global, 4, rng);
  ASSERT_EQ(sites.size(), 4u);

  std::size_t total = 0;
  std::vector<TupleId> allIds;
  for (const Dataset& site : sites) {
    total += site.size();
    for (std::size_t row = 0; row < site.size(); ++row) {
      allIds.push_back(site.id(row));
    }
  }
  EXPECT_EQ(total, global.size());
  std::sort(allIds.begin(), allIds.end());
  EXPECT_TRUE(std::adjacent_find(allIds.begin(), allIds.end()) ==
              allIds.end());  // disjoint
}

TEST(PartitionTest, NearlyEqualLocalCardinalities) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kIndependent, 92});
  Rng rng(93);
  const auto sites = partitionUniform(global, 7, rng);
  for (const Dataset& site : sites) {
    EXPECT_GE(site.size(), 1000u / 7);
    EXPECT_LE(site.size(), 1000u / 7 + 1);
  }
}

TEST(PartitionTest, DeterministicGivenSeed) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{64, 2, ValueDistribution::kIndependent, 94});
  Rng rngA(95);
  Rng rngB(95);
  const auto a = partitionUniform(global, 3, rngA);
  const auto b = partitionUniform(global, 3, rngB);
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (std::size_t row = 0; row < a[s].size(); ++row) {
      EXPECT_EQ(a[s].id(row), b[s].id(row));
    }
  }
}

TEST(PartitionTest, RejectsZeroSites) {
  const Dataset global(2);
  Rng rng(1);
  EXPECT_THROW(partitionUniform(global, 0, rng), std::invalid_argument);
}

TEST(ClusterTest, WiresRequestedSiteCount) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 96});
  InProcCluster cluster(Topology::uniform(global, 5, 97));
  EXPECT_EQ(cluster.siteCount(), 5u);
  EXPECT_EQ(cluster.dims(), 2u);
  EXPECT_EQ(cluster.coordinator().siteCount(), 5u);
}

TEST(ClusterTest, RejectsMismatchedDimensions) {
  std::vector<Dataset> sites;
  sites.emplace_back(2);
  sites.emplace_back(3);
  EXPECT_THROW(Topology::fromPartitions(std::move(sites)),
               std::invalid_argument);
}

TEST(ClusterTest, RejectsEmptySiteList) {
  EXPECT_THROW(Topology::fromPartitions({}), std::invalid_argument);
}

TEST(ClusterTest, MeterSeesEveryByteOfEveryCall) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 98});
  InProcCluster cluster(Topology::uniform(global, 4, 99));
  const QueryResult result = cluster.engine().runEdsud(QueryConfig{});
  const UsageTotals totals = cluster.meter().totals();
  EXPECT_EQ(totals.tuples, result.stats.tuplesShipped);
  EXPECT_EQ(totals.bytes, result.stats.bytesShipped);
  EXPECT_EQ(totals.calls, result.stats.roundTrips);
  EXPECT_GT(totals.bytes, totals.tuples);  // tuples cost > 1 byte each
}

TEST(ClusterTest, BackToBackQueriesUseMeterDeltas) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 100});
  InProcCluster cluster(Topology::uniform(global, 4, 101));
  const QueryResult first = cluster.engine().runEdsud(QueryConfig{});
  const QueryResult second = cluster.engine().runEdsud(QueryConfig{});
  // The shared meter keeps accumulating, but per-query stats are deltas.
  EXPECT_EQ(first.stats.tuplesShipped, second.stats.tuplesShipped);
  EXPECT_EQ(cluster.meter().totals().tuples,
            first.stats.tuplesShipped + second.stats.tuplesShipped);
}

TEST(ClusterTest, SiteByIdFindsAndThrows) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{50, 2, ValueDistribution::kIndependent, 102});
  InProcCluster cluster(Topology::uniform(global, 3, 103));
  EXPECT_EQ(cluster.coordinator().siteById(2).siteId(), 2u);
  EXPECT_THROW(cluster.coordinator().siteById(42), std::out_of_range);
}

}  // namespace
}  // namespace dsud
