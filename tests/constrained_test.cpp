// Constrained (windowed) skyline queries (Wu et al., paper Sec. 2.1): the
// query behaves as if the database were filtered to the window first — only
// in-window tuples are candidates AND only in-window dominators count —
// verified end-to-end against the filtered O(N²) ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/synthetic.hpp"
#include "skyline/bbs.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

Rect makeWindow(std::initializer_list<double> lo,
                std::initializer_list<double> hi) {
  Rect window(lo.size());
  window.expand(std::span<const double>(lo.begin(), lo.size()));
  window.expand(std::span<const double>(hi.begin(), hi.size()));
  return window;
}

TEST(ConstrainedTest, WindowExcludesOutsideDominators) {
  // A dominator outside the window must not affect an in-window tuple.
  Dataset data(2);
  data.add(0, std::vector<double>{0.1, 0.1}, 0.9);  // outside window
  data.add(1, std::vector<double>{0.5, 0.5}, 0.8);  // inside
  data.add(2, std::vector<double>{0.6, 0.6}, 0.7);  // inside, dominated by 1

  const Rect window = makeWindow({0.4, 0.4}, {0.9, 0.9});
  const PRTree tree = PRTree::bulkLoad(data);

  // Unconstrained: tuple 1's probability is crushed by tuple 0.
  EXPECT_NEAR(tree.dominanceSurvival(data.values(1)), 0.1, 1e-12);
  // Constrained: tuple 0 is invisible.
  EXPECT_NEAR(tree.dominanceSurvival(data.values(1), fullMask(2), &window),
              1.0, 1e-12);
  EXPECT_NEAR(tree.dominanceSurvival(data.values(2), fullMask(2), &window),
              0.2, 1e-12);
}

TEST(ConstrainedTest, BbsMatchesFilteredGroundTruth) {
  for (std::uint64_t seed = 300; seed < 305; ++seed) {
    const Dataset data = generateSynthetic(
        SyntheticSpec{2000, 2, ValueDistribution::kIndependent, seed});
    const Rect window = makeWindow({0.2, 0.3}, {0.7, 0.8});
    const PRTree tree = PRTree::bulkLoad(data);
    const auto got =
        bbsSkyline(tree, {.q = 0.3, .clip = &window});
    const auto expected =
        linearSkyline(data, {.q = 0.3, .clip = &window});
    EXPECT_EQ(testutil::idsOf(got), testutil::idsOf(expected))
        << "seed=" << seed;
  }
}

TEST(ConstrainedTest, EmptyWindowYieldsNothing) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{500, 2, ValueDistribution::kIndependent, 306});
  const Rect window = makeWindow({2.0, 2.0}, {3.0, 3.0});  // off the data
  const PRTree tree = PRTree::bulkLoad(data);
  EXPECT_TRUE(bbsSkyline(tree, {.q = 0.3, .clip = &window}).empty());
}

struct ConstrainedCase {
  std::size_t n;
  std::size_t m;
  ValueDistribution dist;
  std::uint64_t seed;
  std::array<double, 2> lo;
  std::array<double, 2> hi;
};

class ConstrainedDistributedTest
    : public ::testing::TestWithParam<ConstrainedCase> {};

TEST_P(ConstrainedDistributedTest, AllAlgorithmsMatchFilteredGroundTruth) {
  const ConstrainedCase& c = GetParam();
  const Dataset global =
      generateSynthetic(SyntheticSpec{c.n, 2, c.dist, c.seed});
  InProcCluster cluster(Topology::uniform(global, c.m, c.seed + 1));

  QueryConfig config;
  config.q = 0.3;
  config.window = makeWindow({c.lo[0], c.lo[1]}, {c.hi[0], c.hi[1]});

  const auto expected =
      linearSkyline(global, {.q = config.q, .clip = &*config.window});

  for (QueryResult result : {cluster.engine().runNaive(config),
                             cluster.engine().runDsud(config),
                             cluster.engine().runEdsud(config)}) {
    sortByGlobalProbability(result.skyline);
    ASSERT_EQ(result.skyline.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.skyline[i].tuple.id, expected[i].id);
      EXPECT_NEAR(result.skyline[i].globalSkyProb, expected[i].skyProb, 1e-9);
      // Every answer lies inside the window.
      EXPECT_TRUE(
          config.window->containsPoint(result.skyline[i].tuple.values));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConstrainedDistributedTest,
    ::testing::Values(
        ConstrainedCase{800, 4, ValueDistribution::kIndependent, 310,
                        {0.3, 0.3}, {0.8, 0.8}},
        ConstrainedCase{800, 8, ValueDistribution::kAnticorrelated, 311,
                        {0.1, 0.4}, {0.6, 0.9}},
        ConstrainedCase{1500, 6, ValueDistribution::kIndependent, 312,
                        {0.0, 0.0}, {0.3, 0.3}},
        ConstrainedCase{1500, 10, ValueDistribution::kCorrelated, 313,
                        {0.4, 0.4}, {1.0, 1.0}},
        ConstrainedCase{500, 3, ValueDistribution::kIndependent, 314,
                        {0.0, 0.0}, {1.0, 1.0}}),  // window == full space
    [](const ::testing::TestParamInfo<ConstrainedCase>& info) {
      return "case" + std::to_string(info.index);
    });

TEST(ConstrainedTest, FullSpaceWindowEqualsUnconstrained) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{1000, 2, ValueDistribution::kAnticorrelated, 320});
  InProcCluster cluster(Topology::uniform(global, 5, 321));

  QueryConfig unconstrained;
  QueryConfig windowed;
  windowed.window = makeWindow({-1.0, -1.0}, {2.0, 2.0});

  QueryResult a = cluster.engine().runEdsud(unconstrained);
  QueryResult b = cluster.engine().runEdsud(windowed);
  sortByGlobalProbability(a.skyline);
  sortByGlobalProbability(b.skyline);
  EXPECT_EQ(testutil::idsOf(a.skyline), testutil::idsOf(b.skyline));
}

TEST(ConstrainedTest, TightWindowIsCheap) {
  // A small window means small local skylines and few candidates: the
  // constrained query must ship (weakly) fewer tuples than the full query.
  const Dataset global = generateSynthetic(
      SyntheticSpec{20000, 2, ValueDistribution::kAnticorrelated, 322});
  InProcCluster cluster(Topology::uniform(global, 10, 323));

  QueryConfig full;
  QueryConfig tight;
  tight.window = makeWindow({0.45, 0.45}, {0.55, 0.55});

  const QueryResult a = cluster.engine().runEdsud(full);
  const QueryResult b = cluster.engine().runEdsud(tight);
  EXPECT_LT(b.stats.tuplesShipped, a.stats.tuplesShipped);
}

TEST(ConstrainedTest, SubspaceAndWindowCompose) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{800, 3, ValueDistribution::kIndependent, 324});
  InProcCluster cluster(Topology::uniform(global, 4, 325));

  QueryConfig config;
  config.mask = 0b011;
  Rect window(3);
  const std::array<double, 3> lo = {0.2, 0.2, 0.0};
  const std::array<double, 3> hi = {0.9, 0.9, 1.0};
  window.expand(lo);
  window.expand(hi);
  config.window = window;

  const auto expected = linearSkyline(global, {.mask = config.mask, .q = config.q, .clip = &window});
  QueryResult result = cluster.engine().runEdsud(config);
  sortByGlobalProbability(result.skyline);
  EXPECT_EQ(testutil::idsOf(result.skyline), testutil::idsOf(expected));
}

TEST(ConstrainedTest, MaintainerRejectsWindowedConfig) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{100, 2, ValueDistribution::kIndependent, 326});
  InProcCluster cluster(Topology::uniform(global, 2, 327));
  QueryConfig config;
  config.window = makeWindow({0.0, 0.0}, {0.5, 0.5});
  EXPECT_THROW(SkylineMaintainer(cluster.coordinator(), config,
                                 MaintenanceStrategy::kIncremental),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsud
