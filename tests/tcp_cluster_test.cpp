// Transport integration: the identical DSUD/e-DSUD protocol over real TCP
// sockets (one server thread per site) must produce byte-for-byte the same
// answers and tuple counts as the in-process transport.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/cluster.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "core/site_handle.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace dsud {
namespace {

/// A full cluster whose sites are served over TCP loopback.
class TcpCluster {
 public:
  explicit TcpCluster(const std::vector<Dataset>& siteData) {
    std::vector<std::unique_ptr<SiteHandle>> handles;
    for (std::size_t i = 0; i < siteData.size(); ++i) {
      const auto id = static_cast<SiteId>(i);
      sites_.push_back(std::make_unique<LocalSite>(id, siteData[i]));
      servers_.push_back(std::make_unique<SiteServer>(*sites_.back()));
      tcpServers_.push_back(std::make_unique<TcpSiteServer>(
          servers_.back()->handler()));
      threads_.emplace_back(
          [server = tcpServers_.back().get()] { server->serve(); });
      auto channel =
          std::make_unique<TcpClientChannel>(tcpServers_.back()->port());
      channel->bindAccounting(id, &meter_, &metrics_);
      handles.push_back(
          std::make_unique<RpcSiteHandle>(id, std::move(channel), &meter_));
    }
    coordinator_ = std::make_unique<Coordinator>(std::move(handles), &meter_,
                                                 siteData.front().dims());
    engine_ = std::make_unique<QueryEngine>(*coordinator_);
  }

  ~TcpCluster() {
    // Closing the client side ends each server loop.
    for (std::size_t i = 0; i < coordinator_->siteCount(); ++i) {
      // Coordinator owns the channels; destroy it first.
    }
    engine_.reset();
    coordinator_.reset();
    for (auto& t : threads_) t.join();
  }

  Coordinator& coordinator() { return *coordinator_; }
  QueryEngine& engine() { return *engine_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  BandwidthMeter meter_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<LocalSite>> sites_;
  std::vector<std::unique_ptr<SiteServer>> servers_;
  std::vector<std::unique_ptr<TcpSiteServer>> tcpServers_;
  std::vector<std::thread> threads_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST(TcpClusterTest, EdsudOverTcpMatchesInProcess) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{600, 2, ValueDistribution::kAnticorrelated, 110});
  Rng rng(111);
  const auto siteData = partitionUniform(global, 4, rng);

  QueryConfig config;
  config.q = 0.3;

  QueryResult inproc;
  {
    InProcCluster cluster(Topology::fromPartitions(siteData));
    inproc = cluster.engine().runEdsud(config);
  }
  QueryResult tcp;
  std::uint64_t tcpWireBytes = 0;
  {
    TcpCluster cluster(siteData);
    tcp = cluster.engine().runEdsud(config);
    for (const auto& [name, value] : cluster.metrics().snapshot().counters) {
      if (name.rfind("dsud_transport_bytes_total", 0) == 0) {
        tcpWireBytes += value;
      }
    }
  }

  EXPECT_EQ(testutil::idsOf(tcp.skyline), testutil::idsOf(inproc.skyline));
  EXPECT_EQ(tcp.stats.tuplesShipped, inproc.stats.tuplesShipped);
  EXPECT_EQ(tcp.stats.roundTrips, inproc.stats.roundTrips);
  EXPECT_EQ(tcp.stats.broadcasts, inproc.stats.broadcasts);
  // The TCP transport now accounts its length-prefix framing: one header per
  // frame in each direction on top of the payload bytes both transports ship.
  EXPECT_EQ(tcp.stats.bytesShipped,
            inproc.stats.bytesShipped +
                2 * kFrameHeaderBytes * tcp.stats.roundTrips);
  // And the channel-level wire counters agree with the meter exactly.
  EXPECT_EQ(tcpWireBytes, tcp.stats.bytesShipped);
}

TEST(TcpClusterTest, DsudAndNaiveOverTcp) {
  const Dataset global = generateSynthetic(
      SyntheticSpec{300, 2, ValueDistribution::kIndependent, 112});
  Rng rng(113);
  const auto siteData = partitionUniform(global, 3, rng);

  TcpCluster cluster(siteData);
  QueryConfig config;

  QueryResult naive = cluster.engine().runNaive(config);
  EXPECT_EQ(naive.stats.tuplesShipped, global.size());

  QueryResult dsud = cluster.engine().runDsud(config);
  sortByGlobalProbability(dsud.skyline);
  EXPECT_EQ(testutil::idsOf(dsud.skyline),
            testutil::idsOf(linearSkyline(global, {.q = config.q})));
}

}  // namespace
}  // namespace dsud
