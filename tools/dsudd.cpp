// dsudd — the long-running query-serving daemon.
//
//   dsudd [--in=data.bin] [--n=20000] [--d=3] [--seed=1]
//         [--dist=independent|correlated|anticorrelated|nyse]
//         [--m=10] [--replicas=1] [--port=7411] [--http-port=7412]
//         [--workers=4] [--max-inflight=64] [--max-queued=256]
//         [--rate=0] [--burst=32] [--breaker-shed=0.5]
//         [--drain-ms=5000] [--port-file=<path>]
//         [--cache-capacity=256] [--batch-window-ms=0]
//         [--log-file=<path>] [--log-level=debug|info|warn|error]
//         [--recorder-capacity=8192] [--recorder-dir=<dir>]
//         [--recorder-window-s=30] [--chaos-kill-site=<id>]
//         [--chaos-kill-after=<n>]
//
// Hosts one in-process cluster (loaded from --in, or synthetic when absent)
// behind a persistent coordinator: any number of clients connect to the
// query port and speak the line-delimited JSON protocol of
// docs/PROTOCOL.md ("Client protocol"); `dsudctl query --connect=<port>`
// is the reference client.  The HTTP port serves GET /metrics (Prometheus
// text exposition of the shared registry — engine, transport, and server
// series on one page) and GET /healthz (200 "ok", 503 "draining").
//
// Admission control: --max-inflight bounds concurrently executing queries
// (the engine-wide in-flight gauges count too), --max-queued bounds the
// priority-ordered wait queue, --rate/--burst set the default per-tenant
// token bucket (0 rate = unlimited), and --breaker-shed sheds new queries
// outright once that fraction of site circuit breakers is open.  Beyond
// every limit the server answers `overloaded`/`unavailable` with a
// retry-after hint — explicit load shedding, never an unbounded queue.
//
// Elasticity: --replicas=k keeps k bit-identical copies of every partition
// (failover with zero result loss when k >= 2), and the `{"op":"admin"}`
// protocol surface — `dsudctl admin {add-site,remove-site,rebalance,
// topology} --connect=<port>` — joins and drains members and triggers
// background rebalances at runtime.  Rebalances run on a worker thread;
// queries keep completing against the pinned previous epoch meanwhile.
//
// Shared work: --cache-capacity sizes the global-skyline result cache
// (entries; 0 disables) and --batch-window-ms opens a shared-work batching
// window — concurrent compatible queries merge into one site-side descent
// (0, the default, keeps every query a private session).  Both layers are
// answer-preserving: responses stay bit-identical to solo runs.
//
// Observability: --log-file appends every structured event (docs/
// ARCHITECTURE.md §14) as NDJSON, --log-level sets the emission floor, and
// the flight recorder — always on — keeps the last --recorder-capacity
// events in memory and dumps the trailing --recorder-window-s seconds to
// --recorder-dir on anomalies (degraded queries, failovers, fatal
// signals).  The HTTP port additionally serves GET /debug/{queries,
// topology,cache,recorder} as JSON.  --chaos-kill-site/--chaos-kill-after
// wire deterministic fault injection into the cluster so the CI smoke job
// can provoke a degraded query and assert the recorder explains it.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
// queries within --drain-ms, then cancel stragglers.  A second signal
// stops immediately.  --port-file writes "<port> <http-port>\n" once both
// listeners are bound, so scripts (the CI server-smoke job) can use
// --port=0 and discover the chosen ports race-free.
//
// Exit code 0 on a clean shutdown, 1 on usage errors, 2 on runtime errors.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "common/io.hpp"
#include "common/options.hpp"
#include "core/cluster.hpp"
#include "gen/nyse.hpp"
#include "gen/synthetic.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "server/server.hpp"

namespace {

using namespace dsud;

// Signal handlers may only touch these and write(2) to the wake fd.
volatile sig_atomic_t g_signals = 0;
int g_wakeFd = -1;

void onSignal(int) {
  g_signals = g_signals + 1;
  if (g_wakeFd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(g_wakeFd, &one, sizeof one);
  }
}

void onFatalSignal(int sig) {
  // Last-gasp flight-recorder dump.  anomaly() allocates and writes a file,
  // neither of which is async-signal-safe — but the process is already
  // dying, so a torn dump beats no dump.  The handler then restores the
  // default disposition and re-raises, preserving the crash exit status.
  obs::flightRecorder().anomaly("fatal_signal");
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Dataset loadOrGenerate(const ArgParser& args) {
  if (const std::string in = args.get("in", ""); !in.empty()) {
    return endsWith(in, ".csv") ? loadDatasetCsv(in) : loadDatasetBinary(in);
  }
  const auto n = static_cast<std::size_t>(args.getInt("n", 20000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::string dist = args.get("dist", "independent");
  if (dist == "nyse") {
    NyseSpec spec;
    spec.n = n;
    spec.seed = seed;
    return generateNyse(spec, uniformProbability());
  }
  SyntheticSpec spec;
  spec.n = n;
  spec.dims = static_cast<std::size_t>(args.getInt("d", 3));
  spec.seed = seed;
  if (dist == "correlated") {
    spec.dist = ValueDistribution::kCorrelated;
  } else if (dist == "anticorrelated") {
    spec.dist = ValueDistribution::kAnticorrelated;
  } else if (dist != "independent") {
    throw std::runtime_error("dsudd: unknown --dist=" + dist);
  }
  return generateSynthetic(spec, uniformProbability());
}

int run(const ArgParser& args) {
  // Recorder sizing must land before the first event is emitted anywhere —
  // the ring is built at first use and never resized.
  if (const std::int64_t cap = args.getInt("recorder-capacity", 0); cap > 0) {
    obs::configureFlightRecorder(static_cast<std::size_t>(cap));
  }
  obs::FlightRecorder& recorder = obs::flightRecorder();
  if (const std::string dir = args.get("recorder-dir", ""); !dir.empty()) {
    recorder.setDumpDir(dir);
  }
  if (const double windowS = args.getDouble("recorder-window-s", 0.0);
      windowS > 0.0) {
    recorder.setWindowSeconds(windowS);
  }
  const std::string levelName = args.get("log-level", "info");
  if (levelName == "debug") {
    obs::eventLog().setLevel(LogLevel::kDebug);
  } else if (levelName == "info") {
    obs::eventLog().setLevel(LogLevel::kInfo);
  } else if (levelName == "warn") {
    obs::eventLog().setLevel(LogLevel::kWarn);
  } else if (levelName == "error") {
    obs::eventLog().setLevel(LogLevel::kError);
  } else {
    std::fprintf(stderr, "dsudd: unknown --log-level=%s\n", levelName.c_str());
    return 1;
  }
  if (const std::string logFile = args.get("log-file", ""); !logFile.empty()) {
    auto sink = std::make_shared<obs::FileSink>(logFile);
    if (!sink->ok()) {
      std::fprintf(stderr, "dsudd: cannot open --log-file=%s\n",
                   logFile.c_str());
      return 2;
    }
    obs::eventLog().addSink(std::move(sink));
  }

  const Dataset data = loadOrGenerate(args);
  const auto m = static_cast<std::size_t>(args.getInt("m", 10));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const auto replicas =
      static_cast<std::size_t>(args.getInt("replicas", 1));

  ClusterConfig clusterConfig;
  if (const std::int64_t killAfter = args.getInt("chaos-kill-after", 0);
      killAfter > 0) {
    ChaosSpec chaos;
    chaos.killAfter = static_cast<std::uint32_t>(killAfter);
    chaos.seed = seed;
    if (const std::int64_t site = args.getInt("chaos-kill-site", -1);
        site >= 0) {
      chaos.onlySite = static_cast<SiteId>(site);
    }
    clusterConfig.chaos = chaos;
  }
  InProcCluster cluster(Topology::uniform(data, m, seed, replicas),
                        clusterConfig);

  server::ServerConfig config;
  config.port = static_cast<std::uint16_t>(args.getInt("port", 7411));
  config.httpPort = static_cast<std::uint16_t>(args.getInt("http-port", 7412));
  config.workers = static_cast<std::size_t>(args.getInt("workers", 4));
  config.drainSeconds = args.getDouble("drain-ms", 5000.0) / 1e3;
  config.admission.maxInFlight =
      static_cast<std::size_t>(args.getInt("max-inflight", 64));
  config.admission.maxQueued =
      static_cast<std::size_t>(args.getInt("max-queued", 256));
  config.admission.defaultQuota.ratePerSec = args.getDouble("rate", 0.0);
  config.admission.defaultQuota.burst = args.getDouble("burst", 32.0);
  config.admission.breakerShedFraction = args.getDouble("breaker-shed", 0.5);
  config.cacheCapacity =
      static_cast<std::size_t>(args.getInt("cache-capacity", 256));
  const double batchWindowMs = args.getDouble("batch-window-ms", 0.0);
  if (batchWindowMs > 0.0) {
    config.batching.enabled = true;
    config.batching.windowSeconds = batchWindowMs / 1e3;
  }
  config.admin.addSite = [&cluster] { return cluster.addSite(); };
  config.admin.removeSite = [&cluster](SiteId id) { cluster.removeSite(id); };
  config.admin.rebalance = [&cluster] { cluster.rebalance(); };
  config.admin.topology = [&cluster] { return cluster.topology(); };

  server::QueryServer server(cluster.engine(), cluster.metricsRegistry(),
                             config);
  server.start();

  if (const std::string portFile = args.get("port-file", "");
      !portFile.empty()) {
    std::FILE* f = std::fopen(portFile.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "dsudd: cannot write %s\n", portFile.c_str());
      return 2;
    }
    std::fprintf(f, "%u %u\n", server.port(), server.httpPort());
    std::fclose(f);
  }

  // Graceful shutdown: the handler writes to the loop's eventfd
  // (async-signal-safe), the wake handler runs on the loop thread and
  // translates the count into drain / immediate stop.
  g_wakeFd = server.loop().wakeFd();
  struct sigaction action = {};
  action.sa_handler = onSignal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // peers may vanish mid-write
  // Crashes dump the recorder window before the default disposition runs.
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::signal(sig, onFatalSignal);
  }
  server.loop().setWakeHandler([&server] {
    if (g_signals >= 2) {
      server.stop();
    } else if (g_signals == 1) {
      server.requestDrain();  // idempotent
    }
  });

  std::fprintf(stderr,
               "dsudd: serving %zu tuples over %zu sites — query port %u, "
               "http port %u (%zu workers, max %zu in flight)\n",
               data.size(), m, server.port(), server.httpPort(),
               config.workers, config.admission.maxInFlight);
  obs::eventLog().emit(LogLevel::kInfo, "dsudd", "daemon.start",
                       {obs::field("port", server.port()),
                        obs::field("http_port", server.httpPort()),
                        obs::field("sites", m),
                        obs::field("tuples", data.size())});
  server.run();
  obs::eventLog().emit(LogLevel::kInfo, "dsudd", "daemon.stop", {});
  std::fprintf(stderr, "dsudd: shut down cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsudd: %s\n", e.what());
    return 2;
  }
}
