#!/usr/bin/env python3
"""Validates a dsudctl trace dump (Chrome trace_event JSON).

Usage: check_trace.py FILE.trace.json [--expect-sites=N] [--min-events=N]

Checks the structural invariants Perfetto relies on:

  * top-level object with displayTimeUnit, otherData.droppedEvents and a
    traceEvents array;
  * every event has name/ph/pid/tid, complete ("X") events carry numeric
    ts >= 0 and dur >= 0;
  * process_name / thread_name metadata exists for every tid in use;
  * site spans (names starting "site.", except the coordinator-side
    "site.dead" marker) sit on site tracks (tid >= 1), everything else on
    the coordinator track (tid 0);
  * with --expect-sites=N: at least N distinct site tracks carry spans.

Exits 0 when the file passes, 1 with a diagnostic on the first failure.
"""

import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    path = None
    expect_sites = 0
    min_events = 1
    for arg in argv[1:]:
        if arg.startswith("--expect-sites="):
            expect_sites = int(arg.split("=", 1)[1])
        elif arg.startswith("--min-events="):
            min_events = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            fail(f"unknown flag {arg}")
        else:
            path = arg
    if path is None:
        fail("usage: check_trace.py FILE.trace.json [--expect-sites=N]")

    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(trace, dict):
        fail("top level must be an object (JSON Object Format)")
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail("displayTimeUnit must be 'ms' or 'ns'")
    if "droppedEvents" not in trace.get("otherData", {}):
        fail("otherData.droppedEvents missing")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents must be an array")

    named_tids = set()
    spans = 0
    site_tids = set()
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"event {i} missing '{key}': {e}")
        if e["ph"] == "M":
            if e["name"] == "thread_name":
                named_tids.add(e["tid"])
            continue
        if e["ph"] != "X":
            fail(f"event {i}: unexpected phase {e['ph']!r}")
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} ({e['name']}): bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"event {i} ({e['name']}): bad dur {dur!r}")
        is_site_span = e["name"].startswith("site.") and e["name"] != "site.dead"
        if is_site_span and e["tid"] == 0:
            fail(f"event {i} ({e['name']}): site span on coordinator track")
        if not is_site_span and e["tid"] != 0:
            fail(f"event {i} ({e['name']}): coordinator span on site track")
        if e["tid"] != 0:
            site_tids.add(e["tid"])
        spans += 1

    used_tids = {e["tid"] for e in events}
    unnamed = used_tids - named_tids
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    if spans < min_events:
        fail(f"only {spans} spans, expected at least {min_events}")
    if len(site_tids) < expect_sites:
        fail(f"spans on {len(site_tids)} site tracks, expected {expect_sites}")

    print(f"check_trace: OK: {path}: {spans} spans on "
          f"{len(site_tids)} site track(s), "
          f"{trace['otherData']['droppedEvents']} dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
