// dsudctl — command-line driver for the dsud library.
//
//   dsudctl generate --out=data.bin [--n=100000] [--d=3] [--seed=1]
//                    [--dist=independent|correlated|anticorrelated|nyse]
//                    [--probs=uniform|gaussian] [--mu=0.5] [--sigma=0.2]
//                    [--format=bin|csv]
//   dsudctl inspect  --in=data.bin
//   dsudctl query    --in=data.bin [--algo=edsud|dsud|naive] [--m=10]
//                    [--q=0.3] [--k=0] [--mask=0] [--seed=1] [--limit=20]
//                    [--deadline-ms=0] [--retries=0]
//                    [--on-failure=fail|degrade] [--chaos-kill=<site>]
//                    [--profile]
//   dsudctl query    --connect=<port> [--algo=...] [--q=...] [--k=...]
//                    [--mask=0] [--limit=20] [--deadline-ms=0] [--retries=0]
//                    [--on-failure=fail|degrade] [--tenant=default]
//                    [--priority=high|normal|low] [--id=q1]
//                    [--repeat=1] [--mix=<file>] [--profile]
//   dsudctl admin    <add-site|remove-site|rebalance|topology>
//                    --connect=<port> [--site=<id>] [--id=a1]
//   dsudctl convert  --in=data.bin --out=data.csv
//   dsudctl metrics  --in=data.bin [--algo=edsud|dsud|naive] [--m=10]
//                    [--q=0.3] [--k=0] [--seed=1] [--format=prom|json]
//                    [--trace-out=trace.json]
//   dsudctl metrics  --connect=<http-port>
//   dsudctl debug    <queries|topology|cache|recorder> --connect=<http-port>
//   dsudctl trace    --in=data.bin --out=query.trace.json
//                    [--algo=edsud|dsud|naive] [--m=6] [--q=0.3] [--seed=1]
//                    [--transport=inproc|tcp] [--site-trace=piggyback|fetch|off]
//                    [--trace-capacity=65536] [--slow-threshold=0]
//                    [--slow-dir=<dir>]
//
// `metrics` runs one query with full observability enabled and prints the
// resulting metrics snapshot — Prometheus text exposition by default,
// JSON with --format=json — to stdout; --trace-out additionally writes the
// query's protocol timeline as JSON.  With --connect=<http-port> it instead
// fetches GET /metrics from a running dsudd and prints the live exposition.
//
// `debug` fetches one of dsudd's live introspection endpoints — GET
// /debug/queries (in-flight + recent queries), /debug/topology (partitions
// and breaker states), /debug/cache (result-cache and batching counters),
// /debug/recorder (flight-recorder status + retained events) — and prints
// the JSON body.
//
// `query --profile` requests the per-query EXPLAIN/ANALYZE block and prints
// it after the summary: phase timings, cache/batch/failover disposition,
// and a per-site table (rounds, tuples, bytes, candidates, pruned, retries,
// failovers, dead).  Answers are bit-identical with or without --profile —
// the flag only controls reporting.
//
// `trace` runs one query with distributed tracing on — the sites record
// their own spans, ship them to the coordinator (piggybacked on responses,
// or via kFetchTrace with --site-trace=fetch), and the merged, clock-aligned
// timeline is written as Chrome trace_event JSON that loads directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.  --transport=tcp
// runs the cluster over real loopback sockets (one server thread per site)
// so the trace shows genuine wire latencies.  --slow-threshold/--slow-dir
// exercise the slow-query log: queries slower than the threshold (seconds)
// also dump their trace into the directory.
//
// Fault tolerance (`query`): --deadline-ms bounds every RPC, --retries adds
// that many retry attempts on top of the first try, and
// --on-failure=degrade completes over the surviving sites when a site stays
// unreachable (--chaos-kill injects exactly that: the named site dies after
// its first call).
//
// Client mode (`query --connect=<port>`): instead of building a local
// cluster, speak the dsudd line-delimited JSON protocol (docs/PROTOCOL.md,
// "Client protocol") to a running daemon on 127.0.0.1.  Streamed `answer`
// lines print as they arrive; `done` prints the same summary as a local
// run.  Exit codes match local mode — 3 when the daemon reports a degraded
// result, 2 on any protocol `error` (including load shedding, whose
// retry-after hint is printed).
//
// Cluster administration (`admin`): speak the `{"op":"admin"}` surface of a
// running dsudd — join a fresh member (`add-site`, which hosts no data until
// the next rebalance), drain and drop one (`remove-site --site=<id>`),
// repartition the database over the current members (`rebalance`), or print
// the membership / placement snapshot (`topology`).  Every action prints
// the resulting topology; exit code 0 on success, 2 when the daemon rejects
// the operation.  Same --connect convention as `query`.
//
// Load bursts (connect mode only): --repeat=N pipelines N copies of the
// flag-built query on one connection with suffixed ids (`q1#1` ... `q1#N`)
// and prints one aggregate summary — the natural way to exercise the
// daemon's shared-work batching window.  --mix=<file> reads one JSON query
// request per line (the wire format of docs/PROTOCOL.md; blank lines and
// `#` comments skipped) and sends the whole mix, N rounds with --repeat.
// Exit code is the worst outcome across the burst.
//
// Files use the binary format of common/io.hpp unless the extension is
// .csv.  Exit code 0 on success, 1 on usage errors, 2 on runtime errors,
// 3 when the query completed degraded (one or more sites excluded).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "common/io.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "gen/nyse.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/tcp_transport.hpp"
#include "obs/export.hpp"
#include "server/proto.hpp"
#include "skyline/cardinality.hpp"
#include "skyline/linear_skyline.hpp"

namespace {

using namespace dsud;

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Dataset loadAny(const std::string& path) {
  return endsWith(path, ".csv") ? loadDatasetCsv(path)
                                : loadDatasetBinary(path);
}

void saveAny(const Dataset& data, const std::string& path) {
  if (endsWith(path, ".csv")) {
    saveDatasetCsv(data, path);
  } else {
    saveDatasetBinary(data, path);
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dsudctl "
      "<generate|inspect|query|admin|convert|metrics|debug|trace> "
      "[--flags]\n"
      "see the header of tools/dsudctl.cpp for details\n");
  return 1;
}

int cmdGenerate(const ArgParser& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=<path> is required\n");
    return 1;
  }
  const auto n = static_cast<std::size_t>(args.getInt("n", 100000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::string dist = args.get("dist", "independent");

  ProbSampler probs = uniformProbability();
  if (args.get("probs", "uniform") == "gaussian") {
    probs = gaussianProbability(args.getDouble("mu", 0.5),
                                args.getDouble("sigma", 0.2));
  }

  Dataset data(1);
  if (dist == "nyse") {
    NyseSpec spec;
    spec.n = n;
    spec.seed = seed;
    data = generateNyse(spec, probs);
  } else {
    SyntheticSpec spec;
    spec.n = n;
    spec.dims = static_cast<std::size_t>(args.getInt("d", 3));
    spec.seed = seed;
    if (dist == "correlated") {
      spec.dist = ValueDistribution::kCorrelated;
    } else if (dist == "anticorrelated") {
      spec.dist = ValueDistribution::kAnticorrelated;
    } else if (dist != "independent") {
      std::fprintf(stderr, "generate: unknown --dist=%s\n", dist.c_str());
      return 1;
    }
    data = generateSynthetic(spec, probs);
  }
  saveAny(data, out);
  std::printf("wrote %zu tuples (%zu dims) to %s\n", data.size(), data.dims(),
              out.c_str());
  return 0;
}

int cmdInspect(const ArgParser& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "inspect: --in=<path> is required\n");
    return 1;
  }
  const Dataset data = loadAny(in);
  std::printf("%s: %zu tuples, %zu dimensions\n", in.c_str(), data.size(),
              data.dims());
  if (data.empty()) return 0;

  std::vector<double> lo(data.dims(), 1e300);
  std::vector<double> hi(data.dims(), -1e300);
  double probSum = 0.0;
  for (std::size_t row = 0; row < data.size(); ++row) {
    const auto v = data.values(row);
    for (std::size_t j = 0; j < data.dims(); ++j) {
      lo[j] = std::min(lo[j], v[j]);
      hi[j] = std::max(hi[j], v[j]);
    }
    probSum += data.prob(row);
  }
  for (std::size_t j = 0; j < data.dims(); ++j) {
    std::printf("  dim %zu: [%g, %g]\n", j, lo[j], hi[j]);
  }
  std::printf("  mean existential probability: %.4f\n",
              probSum / static_cast<double>(data.size()));
  std::printf("  estimated skyline cardinality H(%zu, %zu) = %.1f\n",
              data.dims(), data.size(),
              expectedSkylineCardinality(data.dims(), data.size()));
  return 0;
}

void printEntry(std::size_t rank, const GlobalSkylineEntry& e) {
  std::printf("  #%-4zu id=%-10llu site=%-4u P=%.4f P_gsky=%.6f  (", rank,
              static_cast<unsigned long long>(e.tuple.id), e.site,
              e.tuple.prob, e.globalSkyProb);
  for (std::size_t j = 0; j < e.tuple.values.size(); ++j) {
    std::printf("%s%g", j == 0 ? "" : ", ", e.tuple.values[j]);
  }
  std::printf(")\n");
}

/// `query --profile` rendering, shared by local and connect mode.
void printProfile(const QueryProfile& profile) {
  std::printf("profile: algo=%s cache=%s batch=%s", profile.algo.c_str(),
              profile.cache.c_str(), profile.batch.c_str());
  if (profile.batchWidth > 1) {
    std::printf("(width %llu)",
                static_cast<unsigned long long>(profile.batchWidth));
  }
  std::printf(" failovers=%llu\n",
              static_cast<unsigned long long>(profile.failovers));
  std::printf("  phases: prepare %.2f ms, execute %.2f ms, finalize %.2f ms\n",
              profile.prepareSeconds * 1e3, profile.executeSeconds * 1e3,
              profile.finalizeSeconds * 1e3);
  if (profile.sites.empty()) return;
  std::printf(
      "  %-6s %7s %8s %10s %7s %7s %8s %10s %5s\n", "site", "rounds",
      "tuples", "bytes", "cands", "pruned", "retries", "failovers", "dead");
  for (const SiteProfile& site : profile.sites) {
    std::printf("  %-6u %7llu %8llu %10llu %7llu %7llu %8llu %10llu %5s\n",
                site.site, static_cast<unsigned long long>(site.rounds),
                static_cast<unsigned long long>(site.tuples),
                static_cast<unsigned long long>(site.bytes),
                static_cast<unsigned long long>(site.candidates),
                static_cast<unsigned long long>(site.pruned),
                static_cast<unsigned long long>(site.retries),
                static_cast<unsigned long long>(site.failovers),
                site.dead ? "yes" : "no");
  }
}

/// Reads one '\n'-terminated line from a blocking socket.  Returns false on
/// EOF with nothing buffered.
bool readLine(const Socket& socket, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket.fd(), chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void writeAll(const Socket& socket, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(socket.fd(), text.data() + sent,
                             text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) throw NetError("connect mode: send failed");
    sent += static_cast<std::size_t>(n);
  }
}

/// One GET against dsudd's HTTP port (the /metrics + /debug surface).  The
/// server answers every request with Connection: close, so the body is
/// simply everything after the header block until EOF.
std::string httpGet(std::uint16_t port, const std::string& path) {
  const Socket socket = connectTo(port, std::chrono::milliseconds{2000});
  writeAll(socket, "GET " + path +
                       " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                       "Connection: close\r\n\r\n");
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t split = response.find("\r\n\r\n");
  if (response.compare(0, 5, "HTTP/") != 0 || split == std::string::npos) {
    throw NetError("malformed HTTP response for " + path);
  }
  const std::size_t space = response.find(' ');
  const int status =
      space != std::string::npos ? std::atoi(response.c_str() + space + 1) : 0;
  if (status != 200) {
    throw std::runtime_error("GET " + path + " answered HTTP " +
                             std::to_string(status));
  }
  return response.substr(split + 4);
}

/// `query --connect --repeat/--mix`: pipeline a whole burst of queries on
/// one connection and report one aggregate summary.  `requests` already
/// carries unique ids.
int runQueryBurst(const ArgParser& args,
                  const std::vector<dsud::server::QueryRequest>& requests) {
  namespace srv = dsud::server;

  const auto port = static_cast<std::uint16_t>(args.getInt("connect", 0));
  const Socket socket = connectTo(port, std::chrono::milliseconds{2000});

  std::string outbound;
  for (const srv::QueryRequest& request : requests) {
    outbound += srv::encodeRequest(request);
    outbound += '\n';
  }
  const auto start = std::chrono::steady_clock::now();
  writeAll(socket, outbound);

  std::string buffer;
  std::string line;
  std::size_t pending = requests.size();
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t errors = 0;
  std::uint64_t answers = 0;
  std::uint64_t shipped = 0;
  while (pending > 0 && readLine(socket, buffer, line)) {
    if (line.empty()) continue;
    const srv::Response response = srv::decodeResponse(line);
    if (const auto* done = std::get_if<srv::DoneResponse>(&response)) {
      done->degraded ? ++degraded : ++ok;
      answers += done->answers;
      shipped += done->stats.tuplesShipped;
      --pending;
    } else if (const auto* error = std::get_if<srv::ErrorResponse>(&response)) {
      if (++errors <= 3) {  // show the first few, count the rest
        std::fprintf(stderr, "query %s failed: %s: %s\n", error->id.c_str(),
                     srv::errorCodeName(error->code), error->message.c_str());
      }
      --pending;
    }
    // acks and streamed answers only advance the burst; `done` carries the
    // authoritative answer count either way.
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (pending > 0) {
    std::fprintf(stderr,
                 "query: connection closed with %zu queries outstanding\n",
                 pending);
    return 2;
  }
  std::printf(
      "%zu queries: %zu ok, %zu degraded, %zu errors; %llu answers, "
      "%llu tuples shipped; %.1f ms wall (%.0f queries/s)\n",
      requests.size(), ok, degraded, errors,
      static_cast<unsigned long long>(answers),
      static_cast<unsigned long long>(shipped), seconds * 1e3,
      seconds > 0 ? static_cast<double>(requests.size()) / seconds : 0.0);
  if (errors > 0) return 2;
  if (degraded > 0) return 3;
  return 0;
}

/// Reads one query request per line from a --mix file (wire format of
/// docs/PROTOCOL.md; blank lines and `#` comments skipped).
std::vector<dsud::server::QueryRequest> loadMix(const std::string& path) {
  namespace srv = dsud::server;
  std::ifstream file(path);
  if (!file) throw std::runtime_error("query: cannot read --mix=" + path);
  std::vector<srv::QueryRequest> mix;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(file, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    srv::Request parsed;
    try {
      parsed = srv::decodeRequest(line);
    } catch (const srv::ProtoError& error) {
      throw std::runtime_error("query: " + path + ":" +
                               std::to_string(lineNo) + ": " + error.what());
    }
    auto* query = std::get_if<srv::QueryRequest>(&parsed);
    if (query == nullptr) {
      throw std::runtime_error("query: " + path + ":" +
                               std::to_string(lineNo) + ": not a query op");
    }
    mix.push_back(std::move(*query));
  }
  if (mix.empty()) {
    throw std::runtime_error("query: --mix=" + path + " holds no queries");
  }
  return mix;
}

/// `query --connect=<port>`: run the query through a dsudd daemon instead
/// of a local cluster.
int cmdQueryConnect(const ArgParser& args) {
  // The server's protocol names (AckResponse, QueryRequest, ...) collide
  // with the site protocol's under a using-directive; alias instead.
  namespace srv = dsud::server;

  srv::QueryRequest request;
  request.id = args.get("id", "q1");
  const std::string algo = args.get("algo", "edsud");
  if (algo == "edsud") {
    request.algo = Algo::kEdsud;
  } else if (algo == "dsud") {
    request.algo = Algo::kDsud;
  } else if (algo == "naive") {
    request.algo = Algo::kNaive;
  } else {
    std::fprintf(stderr, "query: unknown --algo=%s\n", algo.c_str());
    return 1;
  }
  request.k = static_cast<std::size_t>(args.getInt("k", 0));
  request.q = args.getDouble("q", request.k > 0 ? 1e-3 : 0.3);
  request.mask = static_cast<DimMask>(args.getInt("mask", 0));
  request.tenant = args.get("tenant", "default");
  const std::string priority = args.get("priority", "normal");
  if (priority == "high") {
    request.priority = srv::Priority::kHigh;
  } else if (priority == "low") {
    request.priority = srv::Priority::kLow;
  } else if (priority != "normal") {
    std::fprintf(stderr, "query: unknown --priority=%s\n", priority.c_str());
    return 1;
  }
  request.deadlineMs = static_cast<std::uint32_t>(args.getInt("deadline-ms", 0));
  request.retries = static_cast<std::uint32_t>(args.getInt("retries", 0));
  const std::string onFailure = args.get("on-failure", "fail");
  if (onFailure == "degrade") {
    request.degrade = true;
  } else if (onFailure != "fail") {
    std::fprintf(stderr, "query: unknown --on-failure=%s\n", onFailure.c_str());
    return 1;
  }
  request.limit = static_cast<std::uint64_t>(args.getInt("limit", 20));
  request.profile = args.has("profile");

  const auto repeat =
      static_cast<std::size_t>(std::max<std::int64_t>(args.getInt("repeat", 1), 1));
  const std::string mixPath = args.get("mix", "");
  if (repeat > 1 || !mixPath.empty()) {
    std::vector<srv::QueryRequest> round;
    if (!mixPath.empty()) {
      round = loadMix(mixPath);
    } else {
      srv::QueryRequest base = request;
      base.progressive = false;  // burst mode reports aggregates only
      round.push_back(std::move(base));
    }
    std::vector<srv::QueryRequest> burst;
    burst.reserve(round.size() * repeat);
    for (std::size_t r = 0; r < repeat; ++r) {
      for (const srv::QueryRequest& each : round) {
        srv::QueryRequest copy = each;
        copy.id = (copy.id.empty() ? request.id : copy.id) + "#" +
                  std::to_string(burst.size() + 1);
        burst.push_back(std::move(copy));
      }
    }
    return runQueryBurst(args, burst);
  }

  const auto port = static_cast<std::uint16_t>(args.getInt("connect", 0));
  const Socket socket = connectTo(port, std::chrono::milliseconds{2000});
  writeAll(socket, srv::encodeRequest(request) + "\n");

  std::string buffer;
  std::string line;
  std::uint64_t streamed = 0;
  while (readLine(socket, buffer, line)) {
    if (line.empty()) continue;
    const srv::Response response = srv::decodeResponse(line);
    if (const auto* ack = std::get_if<srv::AckResponse>(&response)) {
      std::fprintf(stderr, "accepted as engine query %llu\n",
                   static_cast<unsigned long long>(ack->query));
    } else if (const auto* answer = std::get_if<srv::AnswerResponse>(&response)) {
      ++streamed;
      printEntry(answer->seq, answer->entry);
    } else if (const auto* done = std::get_if<srv::DoneResponse>(&response)) {
      std::printf("%llu answers; %llu tuples shipped (%llu bytes, %llu RPCs) "
                  "in %.1f ms\n",
                  static_cast<unsigned long long>(done->answers),
                  static_cast<unsigned long long>(done->stats.tuplesShipped),
                  static_cast<unsigned long long>(done->stats.bytesShipped),
                  static_cast<unsigned long long>(done->stats.roundTrips),
                  done->stats.seconds * 1e3);
      if (done->answers > streamed) {
        std::printf("  ... %llu more (raise --limit)\n",
                    static_cast<unsigned long long>(done->answers - streamed));
      }
      if (done->profile) printProfile(*done->profile);
      if (done->degraded) {
        std::fprintf(stderr, "warning: degraded result — excluded site(s):");
        for (const SiteId site : done->excluded) {
          std::fprintf(stderr, " %u", site);
        }
        std::fprintf(stderr, "\n");
        return 3;
      }
      return 0;
    } else if (const auto* error = std::get_if<srv::ErrorResponse>(&response)) {
      std::fprintf(stderr, "query failed: %s: %s", srv::errorCodeName(error->code),
                   error->message.c_str());
      if (error->retryAfterMs > 0) {
        std::fprintf(stderr, " (retry after %u ms)", error->retryAfterMs);
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    // pong/stats cannot arrive for a query id; ignore defensively.
  }
  std::fprintf(stderr, "query: connection closed before a terminal response\n");
  return 2;
}

int cmdQuery(const ArgParser& args) {
  if (args.has("connect")) return cmdQueryConnect(args);
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "query: --in=<path> is required\n");
    return 1;
  }
  const Dataset data = loadAny(in);
  const auto m = static_cast<std::size_t>(args.getInt("m", 10));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const auto k = static_cast<std::size_t>(args.getInt("k", 0));
  const std::string algo = args.get("algo", "edsud");

  QueryOptions options;
  options.fault.deadline =
      std::chrono::milliseconds{args.getInt("deadline-ms", 0)};
  options.fault.retry.maxAttempts =
      1 + static_cast<std::uint32_t>(args.getInt("retries", 0));
  const std::string onFailure = args.get("on-failure", "fail");
  if (onFailure == "degrade") {
    options.fault.onSiteFailure = OnSiteFailure::kDegrade;
  } else if (onFailure != "fail") {
    std::fprintf(stderr, "query: unknown --on-failure=%s\n", onFailure.c_str());
    return 1;
  }

  ClusterConfig clusterConfig;
  if (const std::int64_t kill = args.getInt("chaos-kill", -1); kill >= 0) {
    clusterConfig.chaos =
        ChaosSpec{.killAfter = 1, .onlySite = static_cast<SiteId>(kill)};
  }
  InProcCluster cluster(Topology::uniform(data, m, seed), clusterConfig);

  QueryResult result;
  if (k > 0) {
    TopKConfig config;
    config.k = k;
    config.floorQ = args.getDouble("q", 1e-3);
    config.mask = static_cast<DimMask>(args.getInt("mask", 0));
    result = cluster.engine().runTopK(config, options);
  } else {
    QueryConfig config;
    config.q = args.getDouble("q", 0.3);
    config.mask = static_cast<DimMask>(args.getInt("mask", 0));
    if (algo == "edsud") {
      result = cluster.engine().runEdsud(config, options);
    } else if (algo == "dsud") {
      result = cluster.engine().runDsud(config, options);
    } else if (algo == "naive") {
      result = cluster.engine().runNaive(config, options);
    } else {
      std::fprintf(stderr, "query: unknown --algo=%s\n", algo.c_str());
      return 1;
    }
    sortByGlobalProbability(result.skyline);
  }

  std::printf("%zu answers; %llu tuples shipped (%llu bytes, %llu RPCs) in "
              "%.1f ms over %zu sites\n",
              result.skyline.size(),
              static_cast<unsigned long long>(result.stats.tuplesShipped),
              static_cast<unsigned long long>(result.stats.bytesShipped),
              static_cast<unsigned long long>(result.stats.roundTrips),
              result.stats.seconds * 1e3, m);

  const auto limit =
      std::min<std::size_t>(result.skyline.size(),
                            static_cast<std::size_t>(args.getInt("limit", 20)));
  for (std::size_t i = 0; i < limit; ++i) {
    printEntry(i + 1, result.skyline[i]);
  }
  if (limit < result.skyline.size()) {
    std::printf("  ... %zu more (raise --limit)\n",
                result.skyline.size() - limit);
  }
  if (args.has("profile")) printProfile(result.profile);
  if (result.degraded) {
    std::fprintf(stderr, "warning: degraded result — excluded site(s):");
    for (const SiteId site : result.excludedSites) {
      std::fprintf(stderr, " %u", site);
    }
    std::fprintf(stderr, "\n");
    return 3;
  }
  return 0;
}

/// `admin <action> --connect=<port>`: one membership operation against a
/// running dsudd, printing the resulting topology.
int cmdAdmin(const ArgParser& args) {
  namespace srv = dsud::server;

  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "admin: usage dsudctl admin "
                 "<add-site|remove-site|rebalance|topology> --connect=<port> "
                 "[--site=<id>]\n");
    return 1;
  }
  const std::string& action = args.positional()[1];
  srv::AdminRequest request;
  request.id = args.get("id", "a1");
  if (action == "add-site") {
    request.action = srv::AdminAction::kAddSite;
  } else if (action == "remove-site") {
    request.action = srv::AdminAction::kRemoveSite;
    const std::int64_t site = args.getInt("site", -1);
    if (site < 0) {
      std::fprintf(stderr, "admin: remove-site needs --site=<id>\n");
      return 1;
    }
    request.site = static_cast<SiteId>(site);
  } else if (action == "rebalance") {
    request.action = srv::AdminAction::kRebalance;
  } else if (action == "topology") {
    request.action = srv::AdminAction::kTopology;
  } else {
    std::fprintf(stderr, "admin: unknown action '%s'\n", action.c_str());
    return 1;
  }
  if (!args.has("connect")) {
    std::fprintf(stderr, "admin: --connect=<port> is required\n");
    return 1;
  }

  const auto port = static_cast<std::uint16_t>(args.getInt("connect", 0));
  const Socket socket = connectTo(port, std::chrono::milliseconds{2000});
  writeAll(socket, srv::encodeRequest(request) + "\n");

  std::string buffer;
  std::string line;
  while (readLine(socket, buffer, line)) {
    if (line.empty()) continue;
    const srv::Response response = srv::decodeResponse(line);
    if (const auto* admin = std::get_if<srv::AdminResponse>(&response)) {
      if (admin->site != kNoSite) {
        std::printf("joined member %u (no data until the next rebalance)\n",
                    admin->site);
      }
      std::printf("epoch %llu; %zu member(s):",
                  static_cast<unsigned long long>(admin->epoch),
                  admin->members.size());
      for (const SiteId member : admin->members) {
        std::printf(" %u", member);
      }
      std::printf("\n");
      for (const PartitionDesc& partition : admin->partitions) {
        std::printf("  partition %-4u hosts:", partition.id);
        for (const SiteId host : partition.hosts) {
          std::printf(" %u", host);
        }
        std::printf("\n");
      }
      return 0;
    }
    if (const auto* error = std::get_if<srv::ErrorResponse>(&response)) {
      std::fprintf(stderr, "admin failed: %s: %s\n",
                   srv::errorCodeName(error->code), error->message.c_str());
      return 2;
    }
    // Anything else cannot answer an admin id; keep reading defensively.
  }
  std::fprintf(stderr, "admin: connection closed before a response\n");
  return 2;
}

/// `debug <queries|topology|cache|recorder> --connect=<http-port>`: fetch
/// one live introspection document from a running dsudd and print it.
int cmdDebug(const ArgParser& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "debug: usage dsudctl debug "
                 "<queries|topology|cache|recorder> --connect=<http-port>\n");
    return 1;
  }
  const std::string& what = args.positional()[1];
  if (what != "queries" && what != "topology" && what != "cache" &&
      what != "recorder") {
    std::fprintf(stderr, "debug: unknown endpoint '%s'\n", what.c_str());
    return 1;
  }
  if (!args.has("connect")) {
    std::fprintf(stderr, "debug: --connect=<http-port> is required\n");
    return 1;
  }
  const auto port = static_cast<std::uint16_t>(args.getInt("connect", 0));
  const std::string body = httpGet(port, "/debug/" + what);
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

int cmdMetrics(const ArgParser& args) {
  if (args.has("connect")) {
    // Live mode: scrape the daemon's own registry instead of running a
    // local query — same exposition Prometheus sees.
    const auto port = static_cast<std::uint16_t>(args.getInt("connect", 0));
    const std::string body = httpGet(port, "/metrics");
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "metrics: --in=<path> is required\n");
    return 1;
  }
  const Dataset data = loadAny(in);
  const auto m = static_cast<std::size_t>(args.getInt("m", 10));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const auto k = static_cast<std::size_t>(args.getInt("k", 0));
  const std::string algo = args.get("algo", "edsud");
  const std::string format = args.get("format", "prom");
  if (format != "prom" && format != "json") {
    std::fprintf(stderr, "metrics: unknown --format=%s\n", format.c_str());
    return 1;
  }

  InProcCluster cluster(Topology::uniform(data, m, seed));

  QueryResult result;
  if (k > 0) {
    TopKConfig config;
    config.k = k;
    config.floorQ = args.getDouble("q", 1e-3);
    result = cluster.engine().runTopK(config);
  } else {
    QueryConfig config;
    config.q = args.getDouble("q", 0.3);
    if (algo == "edsud") {
      result = cluster.engine().runEdsud(config);
    } else if (algo == "dsud") {
      result = cluster.engine().runDsud(config);
    } else if (algo == "naive") {
      result = cluster.engine().runNaive(config);
    } else {
      std::fprintf(stderr, "metrics: unknown --algo=%s\n", algo.c_str());
      return 1;
    }
  }

  const obs::MetricsSnapshot snapshot =
      cluster.metricsRegistry().snapshot();
  const std::string text = format == "json"
                               ? obs::metricsToJson(snapshot)
                               : obs::metricsToPrometheus(snapshot);
  std::fwrite(text.data(), 1, text.size(), stdout);

  if (const std::string tracePath = args.get("trace-out", "");
      !tracePath.empty()) {
    const std::string traceJson = obs::traceToJson(result.trace);
    std::FILE* f = std::fopen(tracePath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "metrics: cannot open %s\n", tracePath.c_str());
      return 2;
    }
    std::fwrite(traceJson.data(), 1, traceJson.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 result.trace.events.size(), tracePath.c_str());
  }
  return 0;
}

/// One query by algorithm name; used by `trace` for both transports.
QueryResult runTracedQuery(QueryEngine& engine, const std::string& algo,
                           const QueryConfig& config,
                           const QueryOptions& options) {
  if (algo == "edsud") return engine.runEdsud(config, options);
  if (algo == "dsud") return engine.runDsud(config, options);
  if (algo == "naive") return engine.runNaive(config, options);
  throw std::runtime_error("trace: unknown --algo=" + algo);
}

int cmdTrace(const ArgParser& args) {
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "trace: --in=<path> and --out=<path> are required\n");
    return 1;
  }
  const Dataset data = loadAny(in);
  const auto m = static_cast<std::size_t>(args.getInt("m", 6));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::string algo = args.get("algo", "edsud");
  const std::string transportKind = args.get("transport", "inproc");

  QueryOptions options;
  options.traceCapacity =
      static_cast<std::size_t>(args.getInt("trace-capacity", 65536));
  options.siteTraceCapacity = options.traceCapacity;
  const std::string mode = args.get("site-trace", "piggyback");
  if (mode == "piggyback") {
    options.siteTrace = SiteTraceMode::kPiggyback;
  } else if (mode == "fetch") {
    options.siteTrace = SiteTraceMode::kFetch;
  } else if (mode == "off") {
    options.siteTrace = SiteTraceMode::kOff;
  } else {
    std::fprintf(stderr, "trace: unknown --site-trace=%s\n", mode.c_str());
    return 1;
  }
  options.slowQueryThreshold = args.getDouble("slow-threshold", 0.0);
  options.slowQueryDir = args.get("slow-dir", "");

  QueryConfig config;
  config.q = args.getDouble("q", 0.3);

  QueryResult result;
  if (transportKind == "tcp") {
    // Real loopback sockets: one server thread per site, the coordinator
    // talking through TcpClientChannel (the examples/tcp_cluster.cpp wiring).
    Rng partitionRng(seed + 1);
    const auto siteData = partitionUniform(data, m, partitionRng);
    std::vector<std::unique_ptr<LocalSite>> sites;
    std::vector<std::unique_ptr<SiteServer>> dispatchers;
    std::vector<std::unique_ptr<TcpSiteServer>> servers;
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < m; ++i) {
      sites.push_back(
          std::make_unique<LocalSite>(static_cast<SiteId>(i), siteData[i]));
      dispatchers.push_back(std::make_unique<SiteServer>(*sites.back()));
      servers.push_back(
          std::make_unique<TcpSiteServer>(dispatchers.back()->handler()));
      threads.emplace_back([srv = servers.back().get()] { srv->serve(); });
    }
    TransportConfig transport;
    transport.socket.connectTimeout = std::chrono::milliseconds{2000};
    BandwidthMeter meter;
    std::vector<std::unique_ptr<SiteHandle>> handles;
    for (std::size_t i = 0; i < m; ++i) {
      const auto id = static_cast<SiteId>(i);
      auto channel = std::make_unique<TcpClientChannel>(servers[i]->port(),
                                                        transport.socket);
      channel->bindAccounting(id, &meter, nullptr);
      handles.push_back(
          std::make_unique<RpcSiteHandle>(id, std::move(channel), &meter));
    }
    {
      Coordinator coordinator(std::move(handles), &meter, data.dims());
      QueryEngine engine(coordinator);
      result = runTracedQuery(engine, algo, config, options);
      // Coordinator (and its channels) close here, ending the server loops.
    }
    for (auto& t : threads) t.join();
  } else if (transportKind == "inproc") {
    InProcCluster cluster(Topology::uniform(data, m, seed));
    result = runTracedQuery(cluster.engine(), algo, config, options);
  } else {
    std::fprintf(stderr, "trace: unknown --transport=%s\n",
                 transportKind.c_str());
    return 1;
  }

  const std::string json = obs::traceToPerfetto(result.trace);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s\n", out.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  std::size_t siteSpans = 0;
  for (const obs::TraceEvent& e : result.trace.events) {
    if (e.name.rfind("site.", 0) == 0 && e.name != "site.dead") ++siteSpans;
  }
  std::printf("%zu answers; wrote %zu spans (%zu from sites, %llu dropped) "
              "to %s — load it at https://ui.perfetto.dev\n",
              result.skyline.size(), result.trace.events.size(), siteSpans,
              static_cast<unsigned long long>(result.trace.droppedEvents),
              out.c_str());
  return 0;
}

int cmdConvert(const ArgParser& args) {
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "convert: --in and --out are required\n");
    return 1;
  }
  const Dataset data = loadAny(in);
  saveAny(data, out);
  std::printf("converted %zu tuples: %s -> %s\n", data.size(), in.c_str(),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional().front();
  try {
    if (command == "generate") return cmdGenerate(args);
    if (command == "inspect") return cmdInspect(args);
    if (command == "query") return cmdQuery(args);
    if (command == "admin") return cmdAdmin(args);
    if (command == "convert") return cmdConvert(args);
    if (command == "metrics") return cmdMetrics(args);
    if (command == "debug") return cmdDebug(args);
    if (command == "trace") return cmdTrace(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsudctl: %s\n", e.what());
    return 2;
  }
}
