// Beyond the basic threshold query: the library's extended query surface on
// one hotel-style dataset —
//   * subspace skylines (paper Sec. 4): "I only care about price",
//   * constrained skylines (Wu et al.): "mid-range hotels only",
//   * top-k: "just give me the five most probable winners",
//   * the vertical-partitioning baseline (paper Sec. 8's future-work
//     setting) on the certain version of the same data.
//
// Flags: --n=<tuples> --m=<sites> --seed=<seed>
#include <cstdio>

#include "common/options.hpp"
#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "vertical/vertical.hpp"

using namespace dsud;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  SyntheticSpec spec;
  spec.n = static_cast<std::size_t>(args.getInt("n", 20000));
  spec.dims = 3;  // price, distance to beach, noise level
  spec.dist = ValueDistribution::kAnticorrelated;
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 99));
  const auto m = static_cast<std::size_t>(args.getInt("m", 8));

  std::printf("hotel catalogue: %zu uncertain records (price, beach "
              "distance, noise) across %zu booking sites\n\n",
              spec.n, m);
  const Dataset global = generateSynthetic(spec);
  InProcCluster cluster(Topology::uniform(global, m, spec.seed + 1));

  // --- Full-space threshold query -------------------------------------------
  QueryConfig config;
  config.q = 0.3;
  QueryResult full = cluster.engine().runEdsud(config);
  std::printf("full 3-D skyline at q=0.3: %zu hotels (%llu tuples shipped)\n",
              full.skyline.size(),
              static_cast<unsigned long long>(full.stats.tuplesShipped));

  // --- Subspace: price and beach distance only -------------------------------
  QueryConfig subspace = config;
  subspace.mask = 0b011;
  QueryResult sub = cluster.engine().runEdsud(subspace);
  std::printf("subspace {price, beach}: %zu hotels (%llu tuples shipped)\n",
              sub.skyline.size(),
              static_cast<unsigned long long>(sub.stats.tuplesShipped));

  // --- Constrained: mid-range price band -------------------------------------
  QueryConfig constrained = config;
  Rect window(3);
  const std::array<double, 3> lo = {0.25, 0.0, 0.0};
  const std::array<double, 3> hi = {0.75, 1.0, 1.0};
  window.expand(lo);
  window.expand(hi);
  constrained.window = window;
  QueryResult mid = cluster.engine().runEdsud(constrained);
  std::printf("mid-price window [0.25, 0.75]: %zu hotels (%llu tuples "
              "shipped)\n",
              mid.skyline.size(),
              static_cast<unsigned long long>(mid.stats.tuplesShipped));

  // --- Top-k -----------------------------------------------------------------
  TopKConfig topk;
  topk.k = 5;
  topk.floorQ = 0.05;
  QueryResult best = cluster.engine().runTopK(topk);
  std::printf("\ntop-%zu most probable skyline hotels:\n", topk.k);
  for (const GlobalSkylineEntry& e : best.skyline) {
    std::printf("  hotel %-8llu P_gsky = %.3f  (price %.2f, beach %.2f, "
                "noise %.2f)\n",
                static_cast<unsigned long long>(e.tuple.id), e.globalSkyProb,
                e.tuple.values[0], e.tuple.values[1], e.tuple.values[2]);
  }
  std::printf("top-k cost: %llu tuples (vs %llu for the full floor query)\n",
              static_cast<unsigned long long>(best.stats.tuplesShipped),
              static_cast<unsigned long long>(full.stats.tuplesShipped));

  // --- Vertical partitioning (certain data) ----------------------------------
  VerticalStats stats;
  const auto vertical = verticalSkyline(global, &stats);
  std::printf("\nvertical-partitioning baseline (certain data, one attribute "
              "per site):\n  %zu skyline hotels, %zu sorted + %zu random "
              "accesses over %zu candidates\n",
              vertical.size(), stats.sortedAccesses, stats.randomAccesses,
              stats.candidates);
  return 0;
}
