// The paper's running example (Sec. 5.3): a hotel-booking system with three
// local sites — Qingdao, Shanghai, Xiamen — each storing uncertain hotel
// records ⟨price, distance-to-beach, confidence⟩.  A customer asks for the
// probabilistic skyline over all three cities with threshold q = 0.3.
//
// The databases are built so the local skylines match Table 2a exactly (the
// hidden low-probability records explain the paper's quaternions, see
// tests/paper_example_test.cpp), and the run reproduces the Table 2 trace:
// answers (6,6) -> (8,4) -> (3,8), two queue entries expunged.
#include <cstdio>
#include <string>

#include "core/cluster.hpp"

using namespace dsud;

namespace {

const char* cityOf(SiteId site) {
  switch (site) {
    case 0:
      return "Qingdao";
    case 1:
      return "Shanghai";
    case 2:
      return "Xiamen";
  }
  return "?";
}

std::vector<Dataset> hotelSites() {
  std::vector<Dataset> sites;
  Dataset qingdao(2);
  qingdao.add(10, std::vector<double>{6.0, 6.0}, 0.7);
  qingdao.add(11, std::vector<double>{8.0, 4.0}, 0.8);
  qingdao.add(12, std::vector<double>{3.0, 8.0}, 0.8);
  qingdao.add(100, std::vector<double>{5.9, 5.9}, 1.0 / 14);
  qingdao.add(101, std::vector<double>{7.9, 3.9}, 0.25);
  qingdao.add(102, std::vector<double>{2.9, 7.9}, 0.25);
  qingdao.add(103, std::vector<double>{2.8, 7.8}, 1.0 / 6);
  sites.push_back(std::move(qingdao));

  Dataset shanghai(2);
  shanghai.add(20, std::vector<double>{6.5, 7.0}, 0.8);
  shanghai.add(21, std::vector<double>{4.0, 9.0}, 0.6);
  shanghai.add(22, std::vector<double>{9.0, 5.0}, 0.7);
  shanghai.add(110, std::vector<double>{6.4, 6.9}, 0.1875);
  shanghai.add(111, std::vector<double>{8.9, 4.9}, 1.0 / 7);
  sites.push_back(std::move(shanghai));

  Dataset xiamen(2);
  xiamen.add(30, std::vector<double>{6.4, 7.5}, 0.9);
  xiamen.add(31, std::vector<double>{3.5, 11.0}, 0.7);
  xiamen.add(32, std::vector<double>{10.0, 4.5}, 0.7);
  xiamen.add(120, std::vector<double>{6.3, 7.4}, 1.0 / 9);
  sites.push_back(std::move(xiamen));
  return sites;
}

}  // namespace

int main() {
  std::printf("Hotel booking system: 3 cities, attributes "
              "(price, distance to beach), q = 0.3\n\n");

  InProcCluster cluster(Topology::fromPartitions(hotelSites()));
  QueryConfig config;
  config.q = 0.3;
  config.expunge = ExpungePolicy::kPark;  // the paper's Sec. 5.3 schedule

  QueryOptions options;
  options.progress =
      [](const GlobalSkylineEntry& entry, const ProgressPoint&) {
        std::printf("  -> skyline hotel (%.1f, %.1f) in %s: confidence %.2f, "
                    "global skyline probability %.3f\n",
                    entry.tuple.values[0], entry.tuple.values[1],
                    cityOf(entry.site), entry.tuple.prob,
                    entry.globalSkyProb);
      };

  std::printf("running e-DSUD...\n");
  const QueryResult result = cluster.engine().runEdsud(config, options);

  std::printf("\nSKY(H) holds %zu hotels.\n", result.skyline.size());
  std::printf("message bill: %zu To-Server tuples + %zu broadcasts x "
              "(m-1 = 2) = %llu tuples total; %zu candidates expunged "
              "without broadcast\n",
              result.stats.candidatesPulled, result.stats.broadcasts,
              static_cast<unsigned long long>(result.stats.tuplesShipped),
              result.stats.expunged);
  std::printf("(compare Table 2 of the paper: answers (6,6), (8,4), (3,8); "
              "two leftovers expunged)\n");
  return 0;
}
