// Live market monitor: distributed exchanges stream deals into per-site
// sliding windows while the coordinator continuously maintains the global
// probabilistic skyline — the streaming face of the paper's stock-market
// motivation (Sec. 1) built from the Sec. 5.4 maintenance machinery.
//
// Flags: --m=<exchanges> --window=<per-site window> --events=<stream length>
#include <cstdio>

#include "common/options.hpp"
#include "core/cluster.hpp"
#include "core/continuous.hpp"
#include "gen/nyse.hpp"

using namespace dsud;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto m = static_cast<std::size_t>(args.getInt("m", 4));
  const auto window = static_cast<std::size_t>(args.getInt("window", 200));
  const auto events = static_cast<std::size_t>(args.getInt("events", 2000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 20001201));

  // One long synthetic trade stream; the first m*window trades pre-fill the
  // windows, the rest arrive live, round-robin across exchanges.
  NyseSpec spec;
  spec.n = m * window + events;
  spec.seed = seed;
  const Dataset trades = generateNyse(spec);

  std::vector<Dataset> siteData(m, Dataset(2));
  std::vector<std::vector<Tuple>> windows(m);
  std::size_t row = 0;
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < window; ++i, ++row) {
      const Tuple t = trades.tuple(row);
      siteData[s].add(t.id, t.values, t.prob);
      windows[s].push_back(t);
    }
  }

  InProcCluster cluster(Topology::fromPartitions(siteData));
  QueryConfig config;
  config.q = args.getDouble("q", 0.3);
  std::printf("monitoring %zu exchanges, window %zu deals each, q = %.2f\n",
              m, window, config.q);

  ContinuousDistributedSkyline monitor(cluster.coordinator(), config, window,
                                       windows);
  std::printf("initial skyline: %zu deals\n\n", monitor.skyline().size());

  std::uint64_t totalTuples = 0;
  double totalSeconds = 0.0;
  std::size_t changes = 0;
  for (std::size_t e = 0; e < events; ++e, ++row) {
    const auto site = static_cast<SiteId>(e % m);
    const UpdateStats stats = monitor.append(site, trades.tuple(row));
    totalTuples += stats.tuplesShipped;
    totalSeconds += stats.seconds;
    if (stats.skylineChanged) {
      ++changes;
      if (changes <= 10) {
        const auto sky = monitor.skyline();
        std::printf("  event %-6zu skyline changed (%zu deals; best $%.2f x "
                    "%.0f shares, P_gsky %.3f)\n",
                    e, sky.size(), sky.front().tuple.values[0],
                    -sky.front().tuple.values[1],
                    sky.front().globalSkyProb);
      }
    }
  }
  if (changes > 10) std::printf("  ... %zu more changes\n", changes - 10);

  std::printf("\n%zu events: %.2f tuples and %.3f ms per event on average; "
              "skyline changed %zu times\n",
              events, double(totalTuples) / double(events),
              totalSeconds / double(events) * 1e3, changes);
  std::printf("final skyline holds %zu deals\n", monitor.skyline().size());
  return 0;
}
