// Quickstart: the smallest end-to-end use of the library.
//
//   1. generate an uncertain database,
//   2. partition it across m simulated sites,
//   3. run the e-DSUD distributed skyline query,
//   4. print the progressive answers and the bandwidth bill.
//
// Flags: --n=<tuples> --m=<sites> --d=<dims> --q=<threshold> --seed=<seed>
//        --dist=independent|correlated|anticorrelated
#include <cstdio>
#include <string>

#include "common/options.hpp"
#include "core/cluster.hpp"
#include "gen/synthetic.hpp"

using namespace dsud;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  SyntheticSpec spec;
  spec.n = static_cast<std::size_t>(args.getInt("n", 50000));
  spec.dims = static_cast<std::size_t>(args.getInt("d", 2));
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
  const std::string dist = args.get("dist", "independent");
  if (dist == "anticorrelated") {
    spec.dist = ValueDistribution::kAnticorrelated;
  } else if (dist == "correlated") {
    spec.dist = ValueDistribution::kCorrelated;
  }
  const auto m = static_cast<std::size_t>(args.getInt("m", 10));

  QueryConfig config;
  config.q = args.getDouble("q", 0.3);

  std::printf("generating %zu %zu-dimensional %s tuples...\n", spec.n,
              spec.dims, distributionName(spec.dist));
  const Dataset global = generateSynthetic(spec);

  std::printf("partitioning onto %zu sites and indexing...\n", m);
  InProcCluster cluster(Topology::uniform(global, m, spec.seed + 1));

  std::printf("running e-DSUD with threshold q = %.2f\n\n", config.q);
  QueryOptions options;
  options.progress =
      [](const GlobalSkylineEntry& entry, const ProgressPoint& point) {
        std::printf("  #%-3zu tuple %-8llu from site %-3u  P_gsky = %.4f  "
                    "(%llu tuples shipped so far)\n",
                    point.reported,
                    static_cast<unsigned long long>(entry.tuple.id),
                    entry.site, entry.globalSkyProb,
                    static_cast<unsigned long long>(point.tuplesShipped));
      };
  const QueryResult result = cluster.engine().runEdsud(config, options);

  std::printf("\n%zu global skyline tuples in %.1f ms\n",
              result.skyline.size(), result.stats.seconds * 1e3);
  std::printf("bandwidth: %llu tuples (%llu bytes, %llu round trips); "
              "naive ship-all would cost %zu tuples\n",
              static_cast<unsigned long long>(result.stats.tuplesShipped),
              static_cast<unsigned long long>(result.stats.bytesShipped),
              static_cast<unsigned long long>(result.stats.roundTrips),
              global.size());
  std::printf("candidates pulled %zu, broadcasts %zu, expunged %zu, pruned "
              "at sites %zu\n",
              result.stats.candidatesPulled, result.stats.broadcasts,
              result.stats.expunged, result.stats.prunedAtSites);
  return 0;
}
