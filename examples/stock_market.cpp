// The paper's motivating scenario (Sec. 1): a customer looking for the top
// deals of a stock across distributed exchange centres.  Deals are
// ⟨average price per share, volume⟩; a deal is better when it is cheaper
// AND larger, and recording errors give every deal an existential
// probability.  This example:
//
//   1. synthesises an NYSE-style trade stream and spreads it over m
//      exchange centres,
//   2. answers the distributed probabilistic skyline at several thresholds,
//   3. demonstrates continuous maintenance as new deals arrive and stale
//      deals are cancelled (Sec. 5.4).
//
// Flags: --n=<deals> --m=<exchanges> --q=<threshold> --seed=<seed>
#include <cstdio>

#include "common/options.hpp"
#include "core/cluster.hpp"
#include "core/updates.hpp"
#include "gen/nyse.hpp"

using namespace dsud;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  NyseSpec spec;
  spec.n = static_cast<std::size_t>(args.getInt("n", 100000));
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 20001201));
  const auto m = static_cast<std::size_t>(args.getInt("m", 8));

  std::printf("synthesising %zu stock deals and spreading them over %zu "
              "exchange centres...\n",
              spec.n, m);
  const Dataset deals = generateNyse(spec);
  InProcCluster cluster(Topology::uniform(deals, m, spec.seed + 1));

  // --- Threshold sweep ------------------------------------------------------
  std::printf("\n%-6s %10s %14s %14s\n", "q", "|SKY|", "tuples", "ms");
  for (const double q : {0.3, 0.5, 0.7, 0.9}) {
    QueryConfig config;
    config.q = q;
    const QueryResult result = cluster.engine().runEdsud(config);
    std::printf("%-6.1f %10zu %14llu %14.1f\n", q, result.skyline.size(),
                static_cast<unsigned long long>(result.stats.tuplesShipped),
                result.stats.seconds * 1e3);
  }

  // --- Top deals at the default threshold -----------------------------------
  QueryConfig config;
  config.q = args.getDouble("q", 0.3);
  const QueryResult result = cluster.engine().runEdsud(config);
  std::printf("\ntop deals at q = %.2f (price $, volume shares, "
              "P(deal), P_gsky):\n",
              config.q);
  const std::size_t shown = std::min<std::size_t>(8, result.skyline.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const GlobalSkylineEntry& e = result.skyline[i];
    std::printf("  $%-8.2f %12.0f   %.2f   %.3f   (exchange %u)\n",
                e.tuple.values[0], -e.tuple.values[1], e.tuple.prob,
                e.globalSkyProb, e.site);
  }

  // --- Continuous maintenance ------------------------------------------------
  std::printf("\nlive maintenance: a too-good-to-ignore deal arrives at "
              "exchange 0...\n");
  SkylineMaintainer maintainer(cluster.coordinator(), config,
                               MaintenanceStrategy::kIncremental);
  maintainer.initialize();

  UpdateEvent insert;
  insert.kind = UpdateEvent::Kind::kInsert;
  insert.site = 0;
  insert.tuple = Tuple{spec.n + 1, {1.0, -5'000'000.0}, 0.9};
  UpdateStats stats = maintainer.apply(insert);
  std::printf("  insert handled in %.2f ms, %llu tuples on the wire, "
              "skyline %s\n",
              stats.seconds * 1e3,
              static_cast<unsigned long long>(stats.tuplesShipped),
              stats.skylineChanged ? "changed" : "unchanged");
  std::printf("  best deal now: $%.2f x %.0f shares (P_gsky %.3f)\n",
              maintainer.skyline().front().tuple.values[0],
              -maintainer.skyline().front().tuple.values[1],
              maintainer.skyline().front().globalSkyProb);

  std::printf("...and is cancelled again (recording error).\n");
  UpdateEvent cancel;
  cancel.kind = UpdateEvent::Kind::kDelete;
  cancel.site = 0;
  cancel.tuple = insert.tuple;
  stats = maintainer.apply(cancel);
  std::printf("  delete handled in %.2f ms, %llu tuples on the wire, "
              "skyline %s; %zu deals in SKY(H)\n",
              stats.seconds * 1e3,
              static_cast<unsigned long long>(stats.tuplesShipped),
              stats.skylineChanged ? "changed" : "unchanged",
              maintainer.skyline().size());
  return 0;
}
