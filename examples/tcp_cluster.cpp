// The same DSUD/e-DSUD protocol over real TCP sockets: one server thread
// per site on the loopback interface, framed RPC, and the coordinator
// driving the query through TcpClientChannel.  Demonstrates that the
// algorithms are transport-agnostic — tuple counts match the in-process
// run bit for bit.
//
// SIGINT/SIGTERM shut down gracefully: the handler flips the query's
// cancellation token (a lock-free atomic — async-signal-safe), the engine
// raises QueryCancelled at the next round boundary, and teardown proceeds
// in the normal order — channels close, site servers stop, threads join —
// instead of the process dying mid-stream with sites still listening.
//
// Flags: --n=<tuples> --m=<sites> --q=<threshold> --seed=<seed>
//        --deadline-ms=<per-RPC deadline> --retries=<extra attempts>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "core/cluster.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "gen/partition.hpp"
#include "gen/synthetic.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"

using namespace dsud;

namespace {

// The handler may only perform async-signal-safe operations: a store to a
// lock-free atomic qualifies, and it is all cooperative cancellation needs.
std::atomic<bool>* g_cancel = nullptr;

void onSignal(int) {
  if (g_cancel != nullptr) g_cancel->store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  SyntheticSpec spec;
  spec.n = static_cast<std::size_t>(args.getInt("n", 20000));
  spec.dims = 3;
  spec.dist = ValueDistribution::kAnticorrelated;
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
  const auto m = static_cast<std::size_t>(args.getInt("m", 6));

  QueryConfig config;
  config.q = args.getDouble("q", 0.3);

  const Dataset global = generateSynthetic(spec);
  Rng partitionRng(spec.seed + 1);
  const auto siteData = partitionUniform(global, m, partitionRng);

  // Site side: engine + frame dispatcher + TCP server per site.
  std::vector<std::unique_ptr<LocalSite>> sites;
  std::vector<std::unique_ptr<SiteServer>> dispatchers;
  std::vector<std::unique_ptr<TcpSiteServer>> servers;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < m; ++i) {
    sites.push_back(
        std::make_unique<LocalSite>(static_cast<SiteId>(i), siteData[i]));
    dispatchers.push_back(std::make_unique<SiteServer>(*sites.back()));
    servers.push_back(
        std::make_unique<TcpSiteServer>(dispatchers.back()->handler()));
    std::printf("site %zu: %zu tuples, listening on 127.0.0.1:%u\n", i,
                siteData[i].size(), servers.back()->port());
    threads.emplace_back([srv = servers.back().get()] { srv->serve(); });
  }

  // Coordinator side: TCP channels + bandwidth meter + metrics registry.
  // bindAccounting makes each channel report wire-level frame/byte counters
  // and its TCP framing overhead, so the meter reflects real wire bytes.
  // The socket knobs come from TransportConfig — the same config surface
  // InProcCluster consumes — so TCP_NODELAY and the connect timeout are set
  // in one place.
  TransportConfig transport;
  transport.socket.connectTimeout = std::chrono::milliseconds{2000};
  BandwidthMeter meter;
  obs::MetricsRegistry metrics;
  std::vector<std::unique_ptr<SiteHandle>> handles;
  for (std::size_t i = 0; i < m; ++i) {
    const auto id = static_cast<SiteId>(i);
    auto channel = std::make_unique<TcpClientChannel>(servers[i]->port(),
                                                      transport.socket);
    channel->bindAccounting(id, &meter, &metrics);
    handles.push_back(
        std::make_unique<RpcSiteHandle>(id, std::move(channel), &meter));
  }
  {
    Coordinator coordinator(std::move(handles), &meter, spec.dims);
    QueryEngine engine(coordinator);

    // Per-query fault handling: every RPC is bounded by the deadline
    // (SO_RCVTIMEO on the socket) and transient failures are retried with
    // exponential backoff before the query gives up.
    QueryOptions options;
    options.fault.deadline =
        std::chrono::milliseconds{args.getInt("deadline-ms", 5000)};
    options.fault.retry.maxAttempts =
        1 + static_cast<std::uint32_t>(args.getInt("retries", 2));
    options.cancel = std::make_shared<std::atomic<bool>>(false);

    // SA_RESTART so blocked socket calls resume after the handler runs;
    // the cancellation token — not an interrupted syscall — ends the query.
    g_cancel = options.cancel.get();
    struct sigaction action = {};
    action.sa_handler = onSignal;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    std::printf("\nrunning e-DSUD over TCP, q = %.2f "
                "(deadline %lld ms, %u attempts)...\n",
                config.q,
                static_cast<long long>(options.fault.deadline.count()),
                options.fault.retry.maxAttempts);
    try {
      const QueryResult result = engine.runEdsud(config, options);
      std::printf("%zu skyline tuples in %.1f ms\n", result.skyline.size(),
                  result.stats.seconds * 1e3);
      std::printf("bandwidth: %llu tuples / %llu bytes over %llu RPCs\n",
                  static_cast<unsigned long long>(result.stats.tuplesShipped),
                  static_cast<unsigned long long>(result.stats.bytesShipped),
                  static_cast<unsigned long long>(result.stats.roundTrips));
      for (std::size_t i = 0; i < m && i < 3; ++i) {
        const LinkUsage link = meter.link(static_cast<SiteId>(i));
        std::printf(
            "  link to site %zu: %llu B up / %llu B down, %llu calls\n", i,
            static_cast<unsigned long long>(link.bytesToSite),
            static_cast<unsigned long long>(link.bytesFromSite),
            static_cast<unsigned long long>(link.calls));
      }
      std::uint64_t wireBytes = 0;
      for (const auto& [name, value] : metrics.snapshot().counters) {
        if (name.rfind("dsud_transport_bytes_total", 0) == 0) {
          wireBytes += value;
        }
      }
      std::printf("wire bytes incl. frame headers: %llu\n",
                  static_cast<unsigned long long>(wireBytes));
    } catch (const QueryCancelled&) {
      std::printf("query cancelled by signal — draining site servers...\n");
    }
    g_cancel = nullptr;
    // Coordinator (and its channels) close here, ending the server loops.
  }
  // Belt and braces: the channel close above already ends each serve()
  // loop; stop() additionally guarantees a return after the in-flight
  // request even if a peer lingered, so the joins below cannot hang.
  for (auto& srv : servers) srv->stop();
  for (auto& t : threads) t.join();
  std::printf("all site servers shut down cleanly.\n");
  return 0;
}
