#include "vertical/vertical.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/dominance.hpp"

namespace dsud {

DimensionSite::DimensionSite(std::size_t dimension,
                             std::vector<std::pair<double, TupleId>> column)
    : dimension_(dimension), column_(std::move(column)) {
  std::sort(column_.begin(), column_.end());
  byId_.reserve(column_.size());
  for (const auto& [value, id] : column_) {
    if (!byId_.emplace(id, value).second) {
      throw std::invalid_argument("DimensionSite: duplicate tuple id");
    }
  }
}

DimensionSite DimensionSite::fromDataset(const Dataset& data,
                                         std::size_t dimension) {
  if (dimension >= data.dims()) {
    throw std::invalid_argument("DimensionSite: dimension out of range");
  }
  std::vector<std::pair<double, TupleId>> column;
  column.reserve(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    column.emplace_back(data.values(row)[dimension], data.id(row));
  }
  return DimensionSite(dimension, std::move(column));
}

std::optional<std::pair<double, TupleId>> DimensionSite::nextSorted() {
  if (cursor_ >= column_.size()) return std::nullopt;
  return column_[cursor_++];
}

double DimensionSite::valueOf(TupleId id) const {
  auto it = byId_.find(id);
  if (it == byId_.end()) {
    throw std::out_of_range("DimensionSite: unknown tuple id");
  }
  return it->second;
}

std::vector<VerticalSkylineEntry> verticalSkyline(
    std::vector<DimensionSite>& sites, VerticalStats* stats) {
  const std::size_t d = sites.size();
  if (d == 0) return {};
  for (auto& site : sites) site.rewind();

  VerticalStats local;
  // Per-tuple partial view: which dimensions sorted access delivered.
  struct Partial {
    std::vector<double> values;
    std::uint32_t seenMask = 0;
    std::size_t seenCount = 0;
  };
  std::unordered_map<TupleId, Partial> seen;

  // Phase 1: round-robin sorted access until one tuple completes.
  const auto deliver = [&](std::size_t s,
                           const std::pair<double, TupleId>& next) -> bool {
    ++local.sortedAccesses;
    auto [it, inserted] = seen.try_emplace(next.second);
    if (inserted) it->second.values.assign(d, 0.0);
    Partial& partial = it->second;
    const std::size_t dim = sites[s].dimension();
    partial.values[dim] = next.first;
    partial.seenMask |= 1u << dim;
    return ++partial.seenCount == d;
  };

  TupleId completedId = 0;
  bool complete = false;
  while (!complete) {
    bool progressed = false;
    for (std::size_t s = 0; s < d && !complete; ++s) {
      const auto next = sites[s].nextSorted();
      if (!next) continue;  // this list is exhausted
      progressed = true;
      if (deliver(s, *next)) {
        complete = true;
        completedId = next->second;
      }
    }
    if (!progressed) break;  // every list exhausted: everything was seen
  }

  // Phase 1b — tie drain.  The pruning argument needs every unseen tuple to
  // be *strictly* above the completed tuple p on all dimensions.  With
  // duplicate attribute values an unseen tuple can still tie p at the scan
  // frontier, so advance each list past all values equal to p's value there.
  if (complete) {
    const Partial& p = seen.at(completedId);
    for (std::size_t s = 0; s < d; ++s) {
      const double pValue = p.values[sites[s].dimension()];
      while (true) {
        const auto next = sites[s].nextSorted();
        if (!next) break;
        deliver(s, *next);
        if (next->first > pValue) break;
      }
    }
  }
  local.candidates = seen.size();

  // Phase 2: fetch the missing attributes of every candidate by random
  // access (only the dimensions sorted access did not deliver).
  std::vector<VerticalSkylineEntry> candidates;
  candidates.reserve(seen.size());
  for (auto& [id, partial] : seen) {
    VerticalSkylineEntry entry;
    entry.id = id;
    entry.values = std::move(partial.values);
    for (std::size_t s = 0; s < d; ++s) {
      const std::size_t dim = sites[s].dimension();
      if ((partial.seenMask & (1u << dim)) == 0) {
        entry.values[dim] = sites[s].valueOf(id);
        ++local.randomAccesses;
      }
    }
    candidates.push_back(std::move(entry));
  }

  // Phase 3: conventional skyline among the candidates.
  std::vector<VerticalSkylineEntry> skyline;
  for (const auto& c : candidates) {
    bool dominated = false;
    for (const auto& other : candidates) {
      if (other.id == c.id) continue;
      if (dominates(other.values, c.values)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(c);
  }
  std::sort(skyline.begin(), skyline.end(),
            [](const VerticalSkylineEntry& a, const VerticalSkylineEntry& b) {
              return a.id < b.id;
            });
  if (stats != nullptr) *stats = local;
  return skyline;
}

std::vector<VerticalSkylineEntry> verticalSkyline(const Dataset& data,
                                                  VerticalStats* stats) {
  std::vector<DimensionSite> sites;
  sites.reserve(data.dims());
  for (std::size_t dim = 0; dim < data.dims(); ++dim) {
    sites.push_back(DimensionSite::fromDataset(data, dim));
  }
  return verticalSkyline(sites, stats);
}

}  // namespace dsud
