// Distributed skyline over VERTICALLY partitioned data.
//
// The paper's future-work direction (Sec. 8) and its earliest related work
// (Balke, Güntzer & Zheng, EDBT 2004, reviewed in Sec. 2.1): a d-dimensional
// relation is split across d sites, each holding *one attribute* as a list
// sorted ascending.  The coordinator performs Threshold-Algorithm-style
// sorted accesses over the d lists in round-robin until some tuple has been
// seen in every list; at that moment every still-unseen tuple lies beyond
// the scan frontier on all dimensions and is therefore dominated by the
// completed tuple, so it can be pruned without ever being fetched.  The
// survivors' missing attributes are then fetched by random access and the
// conventional skyline is computed locally.
//
// This module implements the certain-data case (existential probabilities
// play no role in the pruning argument; extending it to uncertain data is
// exactly the open problem the paper leaves behind).  Unlike the textbook
// formulation — which assumes the paper's Sec. 4 uniqueness condition — the
// implementation is tie-safe: after the first tuple completes, each list is
// drained past all values equal to the completed tuple's value, so the
// frontier-domination argument is strict even with duplicate attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/dataset.hpp"

namespace dsud {

/// One site of the vertical partitioning: a single attribute, sorted.
class DimensionSite {
 public:
  /// Builds from (value, id) pairs; sorts ascending by value.
  DimensionSite(std::size_t dimension,
                std::vector<std::pair<double, TupleId>> column);

  /// Extracts dimension `dimension` of `data` as one site.
  static DimensionSite fromDataset(const Dataset& data,
                                   std::size_t dimension);

  std::size_t dimension() const noexcept { return dimension_; }
  std::size_t size() const noexcept { return column_.size(); }

  /// Sorted access: the next (value, id) in ascending order, or nullopt
  /// when the list is exhausted.  Each call costs one sorted access.
  std::optional<std::pair<double, TupleId>> nextSorted();

  /// Random access: the attribute value of a given tuple.  Each call costs
  /// one random access.  Throws std::out_of_range for unknown ids.
  double valueOf(TupleId id) const;

  /// Resets the sorted-access cursor (new query).
  void rewind() noexcept { cursor_ = 0; }

 private:
  std::size_t dimension_;
  std::vector<std::pair<double, TupleId>> column_;
  std::unordered_map<TupleId, double> byId_;
  std::size_t cursor_ = 0;
};

/// Access counts: the bandwidth currency of the vertical model (each access
/// moves one (value, id) pair over the network).
struct VerticalStats {
  std::size_t sortedAccesses = 0;
  std::size_t randomAccesses = 0;
  std::size_t candidates = 0;  ///< tuples seen before the stop condition
};

/// Skyline answer with the reassembled attribute vector.
struct VerticalSkylineEntry {
  TupleId id = 0;
  std::vector<double> values;

  friend bool operator==(const VerticalSkylineEntry&,
                         const VerticalSkylineEntry&) = default;
};

/// Computes the exact skyline of the vertically partitioned relation.
/// Sites must all have the same cardinality (one row per tuple each).
/// Results are sorted by ascending id.
std::vector<VerticalSkylineEntry> verticalSkyline(
    std::vector<DimensionSite>& sites, VerticalStats* stats = nullptr);

/// Convenience: partitions `data` vertically and runs the query (ignores
/// the existential probabilities; certain-data semantics).
std::vector<VerticalSkylineEntry> verticalSkyline(const Dataset& data,
                                                  VerticalStats* stats =
                                                      nullptr);

}  // namespace dsud
