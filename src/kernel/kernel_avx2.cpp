// AVX2 kernel backend: 4 doubles per vector, one lane per row.
//
// Compiled with -mavx2 only when the DSUD_SIMD CMake option is ON; otherwise
// this TU provides null accessors and the dispatcher runs the scalar mirror.
// The per-lane arithmetic here must stay instruction-for-instruction
// equivalent to kernel.cpp's scalar functions (same blocking, same masked
// add/blend semantics, same (l0 ⊕ l1) ⊕ (l2 ⊕ l3) reduction) — the parity
// suite asserts bit-identical results.
//
// Functions are only ever reached through the dispatcher after a runtime
// __builtin_cpu_supports("avx2") check, so executing this backend on a
// non-AVX2 CPU is impossible by construction.
#include "kernel/kernel.hpp"

#if defined(DSUD_SIMD_AVX2)

#include <immintrin.h>

#include <array>

namespace dsud::kernel::detail {

namespace {

struct ActiveDims {
  std::array<std::size_t, kMaxDims> idx{};
  std::size_t n = 0;
};

ActiveDims activeDims(DimMask mask, std::size_t dims) noexcept {
  ActiveDims a;
  for (std::size_t d = 0; d < dims; ++d) {
    if (mask & (DimMask{1} << d)) a.idx[a.n++] = d;
  }
  return a;
}

inline __m256d allOnes() noexcept {
  return _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
}

/// Lane mask of rows [base, base+4) dominating the broadcast query point
/// `q[k]` on the active dimensions.
inline __m256d dominatorMask(const SoaBlock& b, const ActiveDims& active,
                             const __m256d* q, std::size_t base) noexcept {
  __m256d allLe = allOnes();
  __m256d anyLt = _mm256_setzero_pd();
  for (std::size_t k = 0; k < active.n; ++k) {
    const __m256d a = _mm256_loadu_pd(b.cols[active.idx[k]] + base);
    allLe = _mm256_and_pd(allLe, _mm256_cmp_pd(a, q[k], _CMP_LE_OQ));
    anyLt = _mm256_or_pd(anyLt, _mm256_cmp_pd(a, q[k], _CMP_LT_OQ));
    if (_mm256_movemask_pd(allLe) == 0) return _mm256_setzero_pd();
  }
  return _mm256_and_pd(allLe, anyLt);
}

double blockSurvivalAvx2(const SoaBlock& b, const double* q, DimMask mask,
                         const double* clipLo, const double* clipHi) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  __m256d qv[kMaxDims];
  for (std::size_t k = 0; k < active.n; ++k) {
    qv[k] = _mm256_set1_pd(q[active.idx[k]]);
  }
  __m256d lov[kMaxDims];
  __m256d hiv[kMaxDims];
  if (clipLo != nullptr) {
    for (std::size_t d = 0; d < b.dims; ++d) {
      lov[d] = _mm256_set1_pd(clipLo[d]);
      hiv[d] = _mm256_set1_pd(clipHi[d]);
    }
  }
  const __m256d ones = _mm256_set1_pd(1.0);
  __m256d acc = ones;
  for (std::size_t base = 0; base < b.padded; base += kBlock) {
    __m256d keep = dominatorMask(b, active, qv, base);
    if (_mm256_movemask_pd(keep) == 0) continue;
    if (clipLo != nullptr) {
      __m256d inside = allOnes();
      for (std::size_t d = 0; d < b.dims; ++d) {
        const __m256d a = _mm256_loadu_pd(b.cols[d] + base);
        inside = _mm256_and_pd(inside, _mm256_cmp_pd(lov[d], a, _CMP_LE_OQ));
        inside = _mm256_and_pd(inside, _mm256_cmp_pd(a, hiv[d], _CMP_LE_OQ));
      }
      keep = _mm256_and_pd(keep, inside);
    }
    const __m256d factor = _mm256_blendv_pd(
        ones, _mm256_sub_pd(ones, _mm256_loadu_pd(b.prob + base)), keep);
    acc = _mm256_mul_pd(acc, factor);
  }
  alignas(32) double lane[kBlock];
  _mm256_store_pd(lane, acc);
  return (lane[0] * lane[1]) * (lane[2] * lane[3]);
}

std::uint64_t blockDominatorsAvx2(const SoaBlock& b, const double* q,
                                  DimMask mask) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  __m256d qv[kMaxDims];
  for (std::size_t k = 0; k < active.n; ++k) {
    qv[k] = _mm256_set1_pd(q[active.idx[k]]);
  }
  std::uint64_t out = 0;
  for (std::size_t base = 0; base < b.padded && base < 64; base += kBlock) {
    const __m256d dom = dominatorMask(b, active, qv, base);
    out |= static_cast<std::uint64_t>(_mm256_movemask_pd(dom)) << base;
  }
  return out;
}

inline double laneSum(__m256d s) noexcept {
  alignas(32) double lane[kBlock];
  _mm256_store_pd(lane, s);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

// The O(n²) all-pairs sweep.  Branchless on purpose: on real data the
// per-block dominator masks are unpredictable, so the scalar mirror's
// early-exit branches would mostly mispredict here; an empty mask instead
// contributes exact +0.0 per lane, which cannot change any accumulator.
// Two candidates share each column load and carry independent accumulator
// chains (one dependent vector-add per block per candidate is the latency
// bottleneck otherwise); each candidate still sees blocks in ascending
// order with its own (l0+l1)+(l2+l3) reduction, so results are bit-identical
// to the one-candidate form and to the scalar mirror.
void survivalExponentsAvx2(const SoaBlock& b, DimMask mask,
                           double* out) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  std::size_t i = 0;
  for (; i + 1 < b.n; i += 2) {
    __m256d q0[kMaxDims];
    __m256d q1[kMaxDims];
    for (std::size_t k = 0; k < active.n; ++k) {
      q0[k] = _mm256_set1_pd(b.cols[active.idx[k]][i]);
      q1[k] = _mm256_set1_pd(b.cols[active.idx[k]][i + 1]);
    }
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    for (std::size_t base = 0; base < b.padded; base += kBlock) {
      __m256d allLe0 = allOnes();
      __m256d anyLt0 = _mm256_setzero_pd();
      __m256d allLe1 = allOnes();
      __m256d anyLt1 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < active.n; ++k) {
        const __m256d a = _mm256_loadu_pd(b.cols[active.idx[k]] + base);
        allLe0 = _mm256_and_pd(allLe0, _mm256_cmp_pd(a, q0[k], _CMP_LE_OQ));
        anyLt0 = _mm256_or_pd(anyLt0, _mm256_cmp_pd(a, q0[k], _CMP_LT_OQ));
        allLe1 = _mm256_and_pd(allLe1, _mm256_cmp_pd(a, q1[k], _CMP_LE_OQ));
        anyLt1 = _mm256_or_pd(anyLt1, _mm256_cmp_pd(a, q1[k], _CMP_LT_OQ));
      }
      const __m256d log = _mm256_loadu_pd(b.logSurv + base);
      s0 = _mm256_add_pd(s0, _mm256_and_pd(_mm256_and_pd(allLe0, anyLt0), log));
      s1 = _mm256_add_pd(s1, _mm256_and_pd(_mm256_and_pd(allLe1, anyLt1), log));
    }
    out[i] = laneSum(s0);
    out[i + 1] = laneSum(s1);
  }
  if (i < b.n) {
    __m256d qv[kMaxDims];
    for (std::size_t k = 0; k < active.n; ++k) {
      qv[k] = _mm256_set1_pd(b.cols[active.idx[k]][i]);
    }
    __m256d s = _mm256_setzero_pd();
    for (std::size_t base = 0; base < b.padded; base += kBlock) {
      const __m256d dom = dominatorMask(b, active, qv, base);
      s = _mm256_add_pd(s,
                        _mm256_and_pd(dom, _mm256_loadu_pd(b.logSurv + base)));
    }
    out[i] = laneSum(s);
  }
}

}  // namespace

BlockSurvivalFn simdBlockSurvival() noexcept { return &blockSurvivalAvx2; }
BlockDominatorsFn simdBlockDominators() noexcept {
  return &blockDominatorsAvx2;
}
SurvivalExponentsFn simdSurvivalExponents() noexcept {
  return &survivalExponentsAvx2;
}

}  // namespace dsud::kernel::detail

#else  // !DSUD_SIMD_AVX2: scalar-only build

namespace dsud::kernel::detail {

BlockSurvivalFn simdBlockSurvival() noexcept { return nullptr; }
BlockDominatorsFn simdBlockDominators() noexcept { return nullptr; }
SurvivalExponentsFn simdSurvivalExponents() noexcept { return nullptr; }

}  // namespace dsud::kernel::detail

#endif
