// Scalar kernel backend and backend dispatch.
//
// The scalar functions are written as an exact mirror of the AVX2 backend:
// the same kBlock-lane blocking, the same per-lane accumulators, the same
// fixed (l0 ⊕ l1) ⊕ (l2 ⊕ l3) reduction.  Do not "simplify" them into plain
// row loops — the bit-identical-results contract between DSUD_SIMD=ON and
// OFF builds depends on this structure (see tests/kernel_parity_test.cpp).
#include "kernel/kernel.hpp"

#include <array>

namespace dsud::kernel {

namespace {

/// Indices of the dimensions selected by `mask`, in ascending order.
struct ActiveDims {
  std::array<std::size_t, kMaxDims> idx{};
  std::size_t n = 0;
};

ActiveDims activeDims(DimMask mask, std::size_t dims) noexcept {
  ActiveDims a;
  for (std::size_t d = 0; d < dims; ++d) {
    if (mask & (DimMask{1} << d)) a.idx[a.n++] = d;
  }
  return a;
}

}  // namespace

namespace detail {

double blockSurvivalScalar(const SoaBlock& b, const double* q, DimMask mask,
                           const double* clipLo,
                           const double* clipHi) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  double acc0 = 1.0, acc1 = 1.0, acc2 = 1.0, acc3 = 1.0;
  double lane[kBlock];
  for (std::size_t base = 0; base < b.padded; base += kBlock) {
    for (std::size_t l = 0; l < kBlock; ++l) {
      const std::size_t row = base + l;
      bool allLe = true;
      bool anyLt = false;
      for (std::size_t k = 0; k < active.n; ++k) {
        const double a = b.cols[active.idx[k]][row];
        const double qd = q[active.idx[k]];
        allLe = allLe && (a <= qd);
        anyLt = anyLt || (a < qd);
        if (!allLe) break;  // lane is 1.0 either way; result unchanged
      }
      bool inside = true;
      if (clipLo != nullptr) {
        for (std::size_t d = 0; d < b.dims; ++d) {
          const double a = b.cols[d][row];
          inside = inside && (clipLo[d] <= a) && (a <= clipHi[d]);
        }
      }
      lane[l] = (allLe && anyLt && inside) ? 1.0 - b.prob[row] : 1.0;
    }
    acc0 *= lane[0];
    acc1 *= lane[1];
    acc2 *= lane[2];
    acc3 *= lane[3];
  }
  return (acc0 * acc1) * (acc2 * acc3);
}

std::uint64_t blockDominatorsScalar(const SoaBlock& b, const double* q,
                                    DimMask mask) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  std::uint64_t out = 0;
  // Padding rows hold +inf coordinates, so they can never set a bit.
  for (std::size_t row = 0; row < b.padded && row < 64; ++row) {
    bool allLe = true;
    bool anyLt = false;
    for (std::size_t k = 0; k < active.n; ++k) {
      const double a = b.cols[active.idx[k]][row];
      const double qd = q[active.idx[k]];
      allLe = allLe && (a <= qd);
      anyLt = anyLt || (a < qd);
      if (!allLe) break;
    }
    if (allLe && anyLt) out |= std::uint64_t{1} << row;
  }
  return out;
}

void survivalExponentsScalar(const SoaBlock& b, DimMask mask,
                             double* out) noexcept {
  const ActiveDims active = activeDims(mask, b.dims);
  for (std::size_t i = 0; i < b.n; ++i) {
    double qv[kMaxDims];
    for (std::size_t k = 0; k < active.n; ++k) {
      qv[k] = b.cols[active.idx[k]][i];
    }
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double lane[kBlock];
    for (std::size_t base = 0; base < b.padded; base += kBlock) {
      for (std::size_t l = 0; l < kBlock; ++l) {
        const std::size_t row = base + l;
        bool allLe = true;
        bool anyLt = false;
        for (std::size_t k = 0; k < active.n; ++k) {
          const double a = b.cols[active.idx[k]][row];
          allLe = allLe && (a <= qv[k]);
          anyLt = anyLt || (a < qv[k]);
          if (!allLe) break;  // lane contributes +0.0 either way
        }
        // Masked add: non-dominators contribute an exact +0.0, matching the
        // SIMD bitwise-AND blend.
        lane[l] = (allLe && anyLt) ? b.logSurv[row] : 0.0;
      }
      s0 += lane[0];
      s1 += lane[1];
      s2 += lane[2];
      s3 += lane[3];
    }
    out[i] = (s0 + s1) + (s2 + s3);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch

namespace {

bool simdUsable() noexcept {
  return detail::simdBlockSurvival() != nullptr &&
         __builtin_cpu_supports("avx2");
}

// Resolved once; the answer cannot change while the process runs.
const bool kSimdActive = simdUsable();

}  // namespace

bool simdCompiled() noexcept { return detail::simdBlockSurvival() != nullptr; }

bool simdAvailable() noexcept { return kSimdActive; }

Backend activeBackend() noexcept {
  return kSimdActive ? Backend::kSimd : Backend::kScalar;
}

const char* backendName() noexcept { return kSimdActive ? "avx2" : "scalar"; }

double blockSurvival(const SoaBlock& b, const double* q, DimMask mask,
                     const double* clipLo, const double* clipHi,
                     Backend backend) noexcept {
  if (backend == Backend::kAuto) backend = activeBackend();
  if (backend == Backend::kSimd && kSimdActive) {
    return detail::simdBlockSurvival()(b, q, mask, clipLo, clipHi);
  }
  return detail::blockSurvivalScalar(b, q, mask, clipLo, clipHi);
}

std::uint64_t blockDominators(const SoaBlock& b, const double* q, DimMask mask,
                              Backend backend) noexcept {
  if (backend == Backend::kAuto) backend = activeBackend();
  if (backend == Backend::kSimd && kSimdActive) {
    return detail::simdBlockDominators()(b, q, mask);
  }
  return detail::blockDominatorsScalar(b, q, mask);
}

void survivalExponents(const SoaBlock& b, DimMask mask, double* out,
                       Backend backend) noexcept {
  if (backend == Backend::kAuto) backend = activeBackend();
  if (backend == Backend::kSimd && kSimdActive) {
    detail::simdSurvivalExponents()(b, mask, out);
    return;
  }
  detail::survivalExponentsScalar(b, mask, out);
}

}  // namespace dsud::kernel
