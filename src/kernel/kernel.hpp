// Hot-path kernels: blocked Pareto dominance and survival-product
// accumulation over structure-of-arrays tuple blocks.
//
// Every algorithm in the library (linear scan, BBS, DSUD/e-DSUD site phases,
// update maintenance) bottoms out in two inner loops — "does tuple a dominate
// point b?" and "Π (1 − P) over the dominators of b" — so they live here
// once, in a layout both a scalar and an AVX2 backend can execute
// *bit-identically*:
//
//   * rows are processed in blocks of kBlock = 4 (one AVX2 vector of
//     doubles), each block lane carrying its own accumulator;
//   * the four lane accumulators are reduced in the fixed tree order
//     (l0 ⊕ l1) ⊕ (l2 ⊕ l3);
//   * survival products are accumulated either in probability space
//     (multiplying 1 − P, mirroring the PR-tree's cached node aggregates) or
//     in log space (summing precomputed log1p(−P), immune to underflow at
//     large dominator counts), with one scalar std::exp at the end.
//
// Dominance comparisons are exact predicates and the per-lane arithmetic is
// identical instruction-for-instruction in both backends, so a DSUD_SIMD=ON
// and a DSUD_SIMD=OFF build return bit-identical query results — the parity
// suite (tests/kernel_parity_test.cpp) enforces this.
//
// Dispatch is compile-time gated and runtime selected: the AVX2 backend is
// compiled only when the DSUD_SIMD CMake option is ON (kernel_avx2.cpp is
// built with -mavx2) and is picked at startup only when the CPU reports AVX2
// support; otherwise every call runs the scalar mirror.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geometry/dominance.hpp"

namespace dsud::kernel {

/// Rows per block: one AVX2 vector of doubles.  Matches DatasetView::kBlock.
inline constexpr std::size_t kBlock = 4;

/// A structure-of-arrays tuple block: d contiguous value columns plus the
/// probability and log-survival columns, padded to a kBlock multiple.
/// Padding rows must never dominate (coordinates +inf) and must be neutral
/// under accumulation (prob 0, logSurv 0) — DatasetView and the PR-tree leaf
/// layout both guarantee this.
struct SoaBlock {
  const double* const* cols = nullptr;  ///< dims column pointers
  const double* prob = nullptr;         ///< P(t) per row (padding: 0)
  const double* logSurv = nullptr;      ///< log1p(-P(t)) per row (padding: 0)
  std::size_t n = 0;                    ///< logical rows
  std::size_t padded = 0;               ///< n rounded up to kBlock
  std::size_t dims = 0;
};

/// Which implementation executes a kernel call.
enum class Backend {
  kScalar,  ///< blocked scalar mirror (always available)
  kSimd,    ///< AVX2 (only when compiled in AND the CPU supports it)
  kAuto,    ///< kSimd when available, else kScalar
};

/// True when the AVX2 backend was compiled in (DSUD_SIMD=ON).
bool simdCompiled() noexcept;
/// True when the AVX2 backend is compiled in and this CPU can run it.
bool simdAvailable() noexcept;
/// The backend kAuto resolves to.
Backend activeBackend() noexcept;
/// "avx2" or "scalar" — for logs, benches, and /metrics labels.
const char* backendName() noexcept;

/// Survival product Π (1 − P(t)) over every row of `b` that dominates point
/// `q` on the selected dimensions, accumulated in probability space (the
/// PR-tree aggregate convention).  `clipLo`/`clipHi` (both null or both
/// non-null, `dims` entries) restrict the product to rows inside the closed
/// box [clipLo, clipHi].
double blockSurvival(const SoaBlock& b, const double* q, DimMask mask,
                     const double* clipLo = nullptr,
                     const double* clipHi = nullptr,
                     Backend backend = Backend::kAuto) noexcept;

/// Bitmask of the rows of `b` (bit i = row i, n <= 64) dominating point `q`
/// on the selected dimensions.
std::uint64_t blockDominators(const SoaBlock& b, const double* q, DimMask mask,
                              Backend backend = Backend::kAuto) noexcept;

/// out[i] = Σ_{j ≺ i} log1p(−P(j)) for every row i in [0, n): the log-space
/// survival exponent of each row against the whole block (self-pairs are
/// irreflexively excluded by strict dominance).  Apply std::exp and the
/// candidate's own P(t) to obtain P_sky.  O(n²/kBlock) block sweeps.
void survivalExponents(const SoaBlock& b, DimMask mask, double* out,
                       Backend backend = Backend::kAuto) noexcept;

namespace detail {
// Scalar mirrors (always compiled); exposed so the parity suite can pin the
// backend explicitly.
double blockSurvivalScalar(const SoaBlock& b, const double* q, DimMask mask,
                           const double* clipLo, const double* clipHi) noexcept;
std::uint64_t blockDominatorsScalar(const SoaBlock& b, const double* q,
                                    DimMask mask) noexcept;
void survivalExponentsScalar(const SoaBlock& b, DimMask mask,
                             double* out) noexcept;

// AVX2 backends; defined in kernel_avx2.cpp, present only when DSUD_SIMD is
// ON (null function pointers otherwise).
using BlockSurvivalFn = double (*)(const SoaBlock&, const double*, DimMask,
                                   const double*, const double*) noexcept;
using BlockDominatorsFn = std::uint64_t (*)(const SoaBlock&, const double*,
                                            DimMask) noexcept;
using SurvivalExponentsFn = void (*)(const SoaBlock&, DimMask,
                                     double*) noexcept;
BlockSurvivalFn simdBlockSurvival() noexcept;
BlockDominatorsFn simdBlockDominators() noexcept;
SurvivalExponentsFn simdSurvivalExponents() noexcept;
}  // namespace detail

}  // namespace dsud::kernel
