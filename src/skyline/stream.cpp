#include "skyline/stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "skyline/bbs.hpp"

namespace dsud {

SlidingWindowSkyline::SlidingWindowSkyline(std::size_t dims,
                                           std::size_t windowSize, double q)
    : dims_(dims), windowSize_(windowSize), q_(q), tree_(dims) {
  if (windowSize == 0) {
    throw std::invalid_argument("SlidingWindowSkyline: window must be >= 1");
  }
  if (!(q > 0.0) || q > 1.0) {
    throw std::invalid_argument("SlidingWindowSkyline: q must be in (0, 1]");
  }
}

TupleId SlidingWindowSkyline::append(const Tuple& t) {
  if (t.values.size() != dims_) {
    throw std::invalid_argument("SlidingWindowSkyline: dims mismatch");
  }
  TupleId expired = kNoExpiry;
  if (window_.size() == windowSize_) {
    const Tuple& oldest = window_.front();
    if (!tree_.erase(oldest.id, oldest.values)) {
      throw std::logic_error("SlidingWindowSkyline: window/tree divergence");
    }
    expired = oldest.id;
    window_.pop_front();
  }
  tree_.insert(t);
  window_.push_back(t);
  return expired;
}

std::vector<ProbSkylineEntry> SlidingWindowSkyline::skyline() const {
  return bbsSkyline(tree_, {.q = q_});
}

double SlidingWindowSkyline::skylineProbability(TupleId id) const {
  for (const Tuple& t : window_) {
    if (t.id == id) {
      return t.prob * tree_.dominanceSurvival(t.values);
    }
  }
  return 0.0;
}

double SlidingWindowSkyline::newerDominatorSurvival(
    std::size_t windowIndex) const {
  const Tuple& t = window_[windowIndex];
  double survival = 1.0;
  for (std::size_t j = windowIndex + 1; j < window_.size(); ++j) {
    if (dominates(window_[j].values, t.values)) {
      survival *= 1.0 - window_[j].prob;
    }
  }
  return survival;
}

bool SlidingWindowSkyline::isCandidate(TupleId id) const {
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_[i].id == id) {
      return window_[i].prob * newerDominatorSurvival(i) >= q_;
    }
  }
  return false;
}

std::size_t SlidingWindowSkyline::candidateCount() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_[i].prob * newerDominatorSurvival(i) >= q_) ++count;
  }
  return count;
}

}  // namespace dsud
