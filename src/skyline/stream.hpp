// Sliding-window probabilistic skyline over an uncertain stream.
//
// A compact reproduction of the related work the paper builds its NYSE
// evaluation on (Zhang et al., ICDE 2009, reviewed in Sec. 2.2): maintain,
// over the most recent W elements of an uncertain stream, the set
// {t : P_sky(t, window) >= q}.
//
// Two of that paper's ideas are reproduced here:
//
//   * exact maintenance — the window is indexed by a PR-tree, so each slide
//     is one insert + one delete and the answer is a BBS query;
//
//   * the *candidate* criterion — an element's skyline probability only
//     grows as the window slides (its dominators that are OLDER expire
//     before it does), so its maximum future probability is
//
//         P(t) · Π_{t' newer than t, t' ≺ t} (1 − P(t'))
//
//     and an element below q on that bound can never become an answer
//     while it lives.  Zhang et al. prove these non-candidates are exactly
//     the elements a minimal scheme may forget; here the criterion is
//     exposed for inspection (`isCandidate`, `candidateCount`) and verified
//     by property tests, while the index keeps everything for exactness.
#pragma once

#include <cstddef>
#include <deque>

#include "common/dataset.hpp"
#include "index/prtree.hpp"
#include "skyline/skyline_result.hpp"

namespace dsud {

/// Count-based sliding-window probabilistic skyline.
class SlidingWindowSkyline {
 public:
  /// Window of the most recent `windowSize` elements; threshold `q`.
  SlidingWindowSkyline(std::size_t dims, std::size_t windowSize, double q);

  std::size_t dims() const noexcept { return dims_; }
  std::size_t windowSize() const noexcept { return windowSize_; }
  double threshold() const noexcept { return q_; }
  /// Elements currently in the window (== windowSize once warmed up).
  std::size_t size() const noexcept { return window_.size(); }

  /// Appends one stream element, expiring the oldest when the window is
  /// full.  Ids must be unique among live elements.  Returns the expired
  /// element's id, or kNoExpiry when the window was not yet full.
  static constexpr TupleId kNoExpiry = static_cast<TupleId>(-1);
  TupleId append(const Tuple& t);

  /// Current answer set {t in window : P_sky(t, window) >= q}, sorted by
  /// descending probability.
  std::vector<ProbSkylineEntry> skyline() const;

  /// Exact skyline probability of a live element (0 if not live).
  double skylineProbability(TupleId id) const;

  /// Zhang-et-al. candidate test: can this element still reach q before it
  /// expires?  (Only *newer* dominators outlive it.)
  bool isCandidate(TupleId id) const;

  /// Number of live elements passing the candidate test — the minimum
  /// state a memory-optimal scheme must retain.
  std::size_t candidateCount() const;

 private:
  double newerDominatorSurvival(std::size_t windowIndex) const;

  std::size_t dims_;
  std::size_t windowSize_;
  double q_;
  std::deque<Tuple> window_;  // front = oldest
  PRTree tree_;
};

}  // namespace dsud
