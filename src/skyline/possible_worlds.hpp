// Possible-world semantics, by direct enumeration (paper Sec. 3, Fig. 3).
//
// Every subset W of an uncertain database is a possible world with
// probability P(W) = Π_{t∈W} P(t) · Π_{t∉W} (1 − P(t)) (Eq. 1), and the
// skyline probability of a tuple is the total probability of the worlds whose
// (conventional) skyline contains it (Eq. 2).  Enumeration is exponential, so
// this module is the *ground truth oracle* for tests and tiny examples: it
// validates that the closed form (Eq. 3) used everywhere else matches the
// semantics exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"
#include "geometry/dominance.hpp"
#include "skyline/spec.hpp"

namespace dsud {

/// Maximum dataset size accepted by the enumerator (2^N worlds).
inline constexpr std::size_t kMaxEnumerableTuples = 24;

/// P(W) of the world whose members are the rows with set bits (Eq. 1).
double worldProbability(const Dataset& data, std::uint32_t memberBits);

/// Row indices of the conventional skyline of the given world, on the
/// selected dimensions.
std::vector<std::size_t> skylineOfWorld(const Dataset& data,
                                        std::uint32_t memberBits, DimMask mask);

/// Skyline probability of every row by full possible-world enumeration
/// (Eq. 2).  Honours spec.mask and spec.clip (out-of-window rows get
/// probability 0 and never dominate); spec.q is not applied.  Throws
/// std::invalid_argument when the dataset exceeds kMaxEnumerableTuples.
std::vector<double> skylineProbabilitiesByEnumeration(
    const Dataset& data, const SkylineSpec& spec = {});

}  // namespace dsud
