// The one query descriptor shared by every probabilistic-skyline entry point.
//
// Replaces the historical with-mask/without-mask overload pairs: each
// algorithm takes a `SkylineSpec` with defaults that mean "full space, no
// threshold, no window", and callers name only what they change, e.g.
//
//     linearSkyline(data, {.q = 0.3});
//     bbsSkyline(tree, {.mask = DimMask{0b011}, .q = 0.5, .clip = &window});
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>

#include "geometry/dominance.hpp"
#include "geometry/rect.hpp"

namespace dsud {

/// Parameters of one probabilistic-skyline query.
struct SkylineSpec {
  /// Subspace selector; kAllDims (the default) means every dimension of the
  /// operand, resolved via effectiveMask() against its dimensionality.
  DimMask mask = kAllDims;

  /// Qualification threshold: the answer set is {t : P_sky(t, D) >= q}.
  /// 0 keeps every tuple with positive skyline probability.
  double q = 0.0;

  /// Optional constraint window (Wu et al., paper Sec. 2.1): when non-null,
  /// only tuples inside the closed box participate, both as candidates and
  /// as dominators.  Non-owning; must outlive the call.
  const Rect* clip = nullptr;

  /// Value equality: clips compare by pointed-to rectangle (null == null),
  /// never by pointer identity, so two specs built independently for the
  /// same query compare equal.
  friend bool operator==(const SkylineSpec& a, const SkylineSpec& b) noexcept {
    if (a.mask != b.mask || a.q != b.q) return false;
    if ((a.clip == nullptr) != (b.clip == nullptr)) return false;
    return a.clip == nullptr || *a.clip == *b.clip;
  }

  /// True when `other` answers over the same candidate universe: same
  /// subspace and same (value-equal) window, any threshold.  Compatible
  /// specs can share one dominance/survival pass — a run at the looser
  /// threshold is filterable down to the tighter one, which is what the
  /// batch executor and the q-band result cache rely on.
  bool compatibleWith(const SkylineSpec& other) const noexcept {
    if (mask != other.mask) return false;
    if ((clip == nullptr) != (other.clip == nullptr)) return false;
    return clip == nullptr || *clip == *other.clip;
  }
};

namespace detail {

/// boost-style mix; good enough for cache sharding and hash buckets.
inline void hashCombine(std::size_t& seed, std::size_t v) noexcept {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

inline std::size_t hashDouble(double d) noexcept {
  // 0.0 == -0.0 must hash identically; NaN never appears in specs.
  if (d == 0.0) d = 0.0;
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return std::hash<std::uint64_t>{}(bits);
}

}  // namespace detail

/// Hash of the clipped box contents (empty rects all hash alike).
inline std::size_t hashRect(const Rect& r) noexcept {
  std::size_t seed = std::hash<std::size_t>{}(r.dims());
  if (r.isEmpty()) return seed;
  for (std::size_t j = 0; j < r.dims(); ++j) {
    detail::hashCombine(seed, detail::hashDouble(r.lo(j)));
    detail::hashCombine(seed, detail::hashDouble(r.hi(j)));
  }
  return seed;
}

}  // namespace dsud

/// Hash consistent with SkylineSpec's value equality (clip hashed by
/// contents), so specs key unordered containers and the result cache.
template <>
struct std::hash<dsud::SkylineSpec> {
  std::size_t operator()(const dsud::SkylineSpec& s) const noexcept {
    std::size_t seed = std::hash<dsud::DimMask>{}(s.mask);
    dsud::detail::hashCombine(seed, dsud::detail::hashDouble(s.q));
    if (s.clip != nullptr) {
      dsud::detail::hashCombine(seed, dsud::hashRect(*s.clip));
    }
    return seed;
  }
};
