// The one query descriptor shared by every probabilistic-skyline entry point.
//
// Replaces the historical with-mask/without-mask overload pairs: each
// algorithm takes a `SkylineSpec` with defaults that mean "full space, no
// threshold, no window", and callers name only what they change, e.g.
//
//     linearSkyline(data, {.q = 0.3});
//     bbsSkyline(tree, {.mask = DimMask{0b011}, .q = 0.5, .clip = &window});
#pragma once

#include "geometry/dominance.hpp"
#include "geometry/rect.hpp"

namespace dsud {

/// Parameters of one probabilistic-skyline query.
struct SkylineSpec {
  /// Subspace selector; kAllDims (the default) means every dimension of the
  /// operand, resolved via effectiveMask() against its dimensionality.
  DimMask mask = kAllDims;

  /// Qualification threshold: the answer set is {t : P_sky(t, D) >= q}.
  /// 0 keeps every tuple with positive skyline probability.
  double q = 0.0;

  /// Optional constraint window (Wu et al., paper Sec. 2.1): when non-null,
  /// only tuples inside the closed box participate, both as candidates and
  /// as dominators.  Non-owning; must outlive the call.
  const Rect* clip = nullptr;
};

}  // namespace dsud
