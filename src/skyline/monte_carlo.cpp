#include "skyline/monte_carlo.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dsud {

WorldSampler independentWorlds() {
  return [](const Dataset& data, Rng& rng, std::vector<bool>& present) {
    for (std::size_t row = 0; row < data.size(); ++row) {
      present[row] = rng.uniform() < data.prob(row);
    }
  };
}

std::vector<double> skylineProbabilitiesMonteCarlo(
    const Dataset& data, std::size_t worlds, Rng& rng, const SkylineSpec& spec,
    const WorldSampler& sampler) {
  if (worlds == 0) {
    throw std::invalid_argument(
        "skylineProbabilitiesMonteCarlo: need at least one world");
  }
  const DimMask effective = effectiveMask(spec.mask, data.dims());

  // Sort rows by coordinate sum once: dominators precede dominated rows, so
  // each world's skyline is computable in one forward sweep against the
  // world's current skyline set.
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto sum = [&](std::size_t row) {
      double s = 0.0;
      const auto v = data.values(row);
      for (std::size_t j = 0; j < data.dims(); ++j) {
        if ((effective & (1u << j)) != 0) s += v[j];
      }
      return s;
    };
    return sum(a) < sum(b);
  });

  std::vector<double> hits(data.size(), 0.0);
  std::vector<bool> present(data.size());
  std::vector<std::size_t> worldSkyline;

  for (std::size_t w = 0; w < worlds; ++w) {
    sampler(data, rng, present);
    worldSkyline.clear();
    for (const std::size_t row : order) {
      if (!present[row]) continue;
      bool dominated = false;
      for (const std::size_t member : worldSkyline) {
        if (dominates(data.values(member), data.values(row), effective)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        worldSkyline.push_back(row);
        hits[row] += 1.0;
      }
    }
  }

  for (double& h : hits) h /= static_cast<double>(worlds);
  return hits;
}

}  // namespace dsud
