#include "skyline/bbs.hpp"

#include <queue>
#include <variant>
#include <vector>

namespace dsud {
namespace {

struct HeapItem {
  double key;  // L1 key of the node MBR / tuple
  std::variant<PRTree::NodeRef, PRTree::LeafEntry> payload;
};

struct HeapCompare {
  bool operator()(const HeapItem& a, const HeapItem& b) const noexcept {
    return a.key > b.key;  // min-heap
  }
};

double tupleL1Key(const PRTree::LeafEntry& e, std::size_t dims) noexcept {
  double s = 0.0;
  for (std::size_t j = 0; j < dims; ++j) s += e.values[j];
  return s;
}

/// Upper bound on P_sky of any tuple under `node`: P₂ times the survival of
/// all tuples guaranteed to dominate the whole MBR.
double nodeUpperBound(const PRTree& tree, const PRTree::NodeRef& node,
                      DimMask mask, const Rect* clip) {
  return node.pMax() *
         tree.dominanceSurvival(node.mbr().loSpan(), mask, clip);
}

template <typename Emit>
void traverse(const PRTree& tree, const SkylineSpec& spec, BbsStats* stats,
              const Emit& emit) {
  if (tree.empty()) return;
  const std::size_t dims = tree.dims();
  const DimMask mask = effectiveMask(spec.mask, dims);
  const double q = spec.q;
  const Rect* clip = spec.clip;

  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare> heap;
  heap.push(HeapItem{tree.root().mbr().l1Key(), tree.root()});

  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();

    if (const auto* entry = std::get_if<PRTree::LeafEntry>(&item.payload)) {
      if (stats != nullptr) ++stats->tuplesEvaluated;
      const double skyProb =
          entry->prob *
          tree.dominanceSurvival(entry->valueSpan(dims), mask, clip);
      if (skyProb >= q) {
        ProbSkylineEntry out;
        out.id = entry->id;
        out.values.assign(entry->values.begin(),
                          entry->values.begin() +
                              static_cast<std::ptrdiff_t>(dims));
        out.prob = entry->prob;
        out.skyProb = skyProb;
        if (!emit(out)) return;
      }
      continue;
    }

    const auto node = std::get<PRTree::NodeRef>(item.payload);
    if (stats != nullptr) ++stats->nodesVisited;
    if (clip != nullptr && !node.mbr().intersects(*clip)) {
      if (stats != nullptr) ++stats->nodesPruned;
      continue;
    }
    if (nodeUpperBound(tree, node, mask, clip) < q) {
      if (stats != nullptr) ++stats->nodesPruned;
      continue;
    }
    if (node.isLeaf()) {
      for (std::size_t i = 0; i < node.fanout(); ++i) {
        const PRTree::LeafEntry e = node.entry(i);
        if (clip != nullptr && !clip->containsPoint(e.valueSpan(dims))) {
          continue;  // outside the constraint window: not a candidate
        }
        // Cheap per-tuple filter before the exact query at pop time: the
        // node-level survival bound applies to every entry.
        heap.push(HeapItem{tupleL1Key(e, dims), e});
      }
    } else {
      for (std::size_t i = 0; i < node.fanout(); ++i) {
        const PRTree::NodeRef child = node.child(i);
        heap.push(HeapItem{child.mbr().l1Key(), child});
      }
    }
  }
}

}  // namespace

std::vector<ProbSkylineEntry> bbsSkyline(const PRTree& tree,
                                         const SkylineSpec& spec,
                                         BbsStats* stats) {
  std::vector<ProbSkylineEntry> result;
  traverse(tree, spec, stats, [&](const ProbSkylineEntry& e) {
    result.push_back(e);
    return true;
  });
  sortBySkylineProbability(result);
  return result;
}

void bbsSkylineStream(
    const PRTree& tree, const SkylineSpec& spec,
    const std::function<bool(const ProbSkylineEntry&)>& emit) {
  traverse(tree, spec, nullptr, emit);
}

}  // namespace dsud
