// O(N²) probabilistic skyline by direct evaluation of the closed form
// (Eq. 3): P_sky(t, D) = P(t) · Π_{t'≺t} (1 − P(t')).
//
// This is the paper's "basic linear scan method" (Sec. 6): simple, exact, and
// the reference implementation every indexed algorithm is tested against.
#pragma once

#include <vector>

#include "common/dataset.hpp"
#include "geometry/dominance.hpp"
#include "geometry/rect.hpp"
#include "skyline/skyline_result.hpp"

namespace dsud {

/// P_sky(row, data) for every row, on the selected dimensions.  O(N²).
std::vector<double> skylineProbabilitiesLinear(const Dataset& data,
                                               DimMask mask);
std::vector<double> skylineProbabilitiesLinear(const Dataset& data);

/// Qualified probabilistic skyline {t : P_sky(t, D) >= q}, sorted by
/// descending skyline probability.  O(N²).
std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data, double q,
                                            DimMask mask);
std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data, double q);

/// Constrained variant (Wu et al.): only tuples inside `window` participate,
/// both as candidates and as dominators.  Reference implementation for the
/// indexed constrained queries.  O(N²).
std::vector<ProbSkylineEntry> linearSkylineConstrained(const Dataset& data,
                                                       double q, DimMask mask,
                                                       const Rect& window);

}  // namespace dsud
