// O(N²) probabilistic skyline by direct evaluation of the closed form
// (Eq. 3): P_sky(t, D) = P(t) · Π_{t'≺t} (1 − P(t')).
//
// This is the paper's "basic linear scan method" (Sec. 6): simple, exact, and
// the reference implementation every indexed algorithm is tested against.
// The scan runs on the column-major DatasetView through the blocked
// SIMD/scalar kernel, with the survival product accumulated in log space
// (Σ log1p(−P), one exp per candidate) so it cannot underflow at large
// dominator counts.
#pragma once

#include <vector>

#include "common/dataset.hpp"
#include "skyline/skyline_result.hpp"
#include "skyline/spec.hpp"

namespace dsud {

/// P_sky(row, data) for every row, on the selected dimensions.  Rows outside
/// `spec.clip` (when set) get probability 0 and do not dominate anything.
/// `spec.q` is not applied — every row's probability is reported.  O(N²/B)
/// kernel blocks.
std::vector<double> skylineProbabilitiesLinear(const Dataset& data,
                                               const SkylineSpec& spec = {});

/// Qualified probabilistic skyline {t : P_sky(t, D) >= spec.q}, sorted by
/// descending skyline probability.  Honours spec.mask and spec.clip
/// (constrained skyline, Wu et al.).
std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data,
                                            const SkylineSpec& spec = {});

}  // namespace dsud
