// Result record shared by all centralised probabilistic-skyline algorithms.
#pragma once

#include <vector>

#include "common/dataset.hpp"

namespace dsud {

/// One qualified probabilistic-skyline answer.
struct ProbSkylineEntry {
  TupleId id = 0;
  std::vector<double> values;
  double prob = 0.0;     ///< existential probability P(t)
  double skyProb = 0.0;  ///< skyline probability P_sky(t, D)

  friend bool operator==(const ProbSkylineEntry&,
                         const ProbSkylineEntry&) = default;
};

/// Sorts answers in the paper's canonical order: descending skyline
/// probability, ties broken by ascending id for determinism.
void sortBySkylineProbability(std::vector<ProbSkylineEntry>& entries);

}  // namespace dsud
