#include "skyline/skycube.hpp"

#include <stdexcept>

#include "skyline/bbs.hpp"

namespace dsud {

Skycube::Skycube(const PRTree& tree, double q) : dims_(tree.dims()), q_(q) {
  if (!(q > 0.0) || q > 1.0) {
    throw std::invalid_argument("Skycube: q must be in (0, 1]");
  }
  const DimMask full = fullMask(dims_);
  cuboids_.reserve(full);
  for (DimMask mask = 1; mask <= full; ++mask) {
    cuboids_.push_back(bbsSkyline(tree, {.mask = mask, .q = q_}));
  }
}

const std::vector<ProbSkylineEntry>& Skycube::cuboid(DimMask mask) const {
  if (mask == 0 || mask > fullMask(dims_)) {
    throw std::out_of_range("Skycube::cuboid: mask outside the cube");
  }
  return cuboids_[mask - 1];
}

}  // namespace dsud
