// Branch-and-bound probabilistic skyline over the PR-tree (paper Sec. 6.2).
//
// Best-first traversal in ascending L1 key (the paper's "mindist to the
// origin"), with subtree pruning by the threshold rule: a node e can be
// skipped when
//
//     P₂(e) · Π_{t' ≺ e.mbr.lo} (1 − P(t'))  <  q
//
// which generalises the paper's single-witness rule (P₂(b)·(1−P(a)) < q) to
// *all* known dominators of the node's low corner, computed in one aggregate
// descent.  Each surviving leaf tuple gets its exact skyline probability from
// a dominance-survival query, so the returned set is exactly
// {t : P_sky(t, D) >= q} — no approximation is introduced by pruning.
#pragma once

#include <functional>

#include "index/prtree.hpp"
#include "skyline/skyline_result.hpp"
#include "skyline/spec.hpp"

namespace dsud {

/// Counters describing how much work a BBS run performed (for benches and
/// pruning-effectiveness tests).
struct BbsStats {
  std::size_t nodesVisited = 0;
  std::size_t nodesPruned = 0;
  std::size_t tuplesEvaluated = 0;
};

/// Qualified probabilistic skyline of the indexed database, sorted by
/// descending skyline probability.  A non-null `spec.clip` restricts the
/// query to the window (constrained skyline, Wu et al.): only tuples inside
/// the window are candidates AND only in-window dominators count.
std::vector<ProbSkylineEntry> bbsSkyline(const PRTree& tree,
                                         const SkylineSpec& spec = {},
                                         BbsStats* stats = nullptr);

/// Streaming variant: invokes `emit` for each qualified tuple in ascending
/// L1-key order (the BBS progressive order).  Returning false from `emit`
/// stops the traversal early.
void bbsSkylineStream(
    const PRTree& tree, const SkylineSpec& spec,
    const std::function<bool(const ProbSkylineEntry&)>& emit);

}  // namespace dsud
