#include "skyline/possible_worlds.hpp"

#include <stdexcept>

namespace dsud {

double worldProbability(const Dataset& data, std::uint32_t memberBits) {
  double p = 1.0;
  for (std::size_t row = 0; row < data.size(); ++row) {
    const bool present = (memberBits >> row) & 1u;
    p *= present ? data.prob(row) : 1.0 - data.prob(row);
  }
  return p;
}

std::vector<std::size_t> skylineOfWorld(const Dataset& data,
                                        std::uint32_t memberBits,
                                        DimMask mask) {
  std::vector<std::size_t> members;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if ((memberBits >> row) & 1u) members.push_back(row);
  }
  std::vector<std::size_t> skyline;
  for (const std::size_t candidate : members) {
    bool dominated = false;
    for (const std::size_t other : members) {
      if (other == candidate) continue;
      if (dominates(data.values(other), data.values(candidate), mask)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(candidate);
  }
  return skyline;
}

std::vector<double> skylineProbabilitiesByEnumeration(const Dataset& data,
                                                      const SkylineSpec& spec) {
  if (data.size() > kMaxEnumerableTuples) {
    throw std::invalid_argument(
        "skylineProbabilitiesByEnumeration: dataset too large to enumerate");
  }
  const DimMask mask = effectiveMask(spec.mask, data.dims());
  if (spec.clip != nullptr) {
    // Constrained semantics: enumerate the filtered database, then scatter
    // back to the caller's row indexing.
    Dataset filtered(data.dims());
    std::vector<std::size_t> rows;
    for (std::size_t row = 0; row < data.size(); ++row) {
      if (spec.clip->containsPoint(data.values(row))) {
        filtered.add(data.id(row), data.values(row), data.prob(row));
        rows.push_back(row);
      }
    }
    const std::vector<double> inner =
        skylineProbabilitiesByEnumeration(filtered, {.mask = spec.mask});
    std::vector<double> probs(data.size(), 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) probs[rows[i]] = inner[i];
    return probs;
  }
  std::vector<double> probs(data.size(), 0.0);
  const std::uint32_t worlds = 1u << data.size();
  for (std::uint32_t w = 0; w < worlds; ++w) {
    const double pw = worldProbability(data, w);
    if (pw == 0.0) continue;
    for (const std::size_t row : skylineOfWorld(data, w, mask)) {
      probs[row] += pw;
    }
  }
  return probs;
}

}  // namespace dsud
