// Monte Carlo estimation of skyline probabilities (in the spirit of MCDB,
// the paper's reference [9]): instantiate possible worlds by sampling each
// tuple's existence independently, compute the conventional skyline of each
// world, and average membership.
//
// The estimator converges to the possible-world semantics (Eq. 2) by the law
// of large numbers, so it cross-checks the closed form (Eq. 3) at scales
// where the 2^N enumeration is impossible — and is itself a useful library
// feature when dominance independence is in doubt (correlated-existence
// models can be plugged in through the world sampler).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/dataset.hpp"
#include "common/rng.hpp"
#include "skyline/spec.hpp"

namespace dsud {

/// Draws one possible world: `present[i]` says whether row i exists.  The
/// default sampler uses the independent-existence model of the paper.
using WorldSampler = std::function<void(const Dataset&, Rng&,
                                        std::vector<bool>& present)>;

/// The paper's model: each tuple exists independently with probability P(t).
WorldSampler independentWorlds();

/// Estimated P_sky(t, D) for every row from `worlds` sampled possible
/// worlds.  Standard error of each estimate is <= 0.5 / sqrt(worlds).
/// Honours spec.mask; spec.q/spec.clip are not applied (the estimator
/// reports every row).
std::vector<double> skylineProbabilitiesMonteCarlo(
    const Dataset& data, std::size_t worlds, Rng& rng,
    const SkylineSpec& spec = {},
    const WorldSampler& sampler = independentWorlds());

}  // namespace dsud
