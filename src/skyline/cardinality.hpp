// Skyline-cardinality estimation and the feedback cost model (paper Sec. 4,
// Eqs. 6–8).
//
// Under the paper's three assumptions (uniform values, independent
// dimensions, uniform existential probabilities) the expected number of
// skyline tuples in a d-dimensional uncertain database with cardinality N is
//
//     H(d, N) ≈ Σ_{n=0}^{N} ln^{d−1}(n) / d! · P(n)        (Eq. 6)
//
// where P(n) is the probability that exactly n tuples exist.  With P ~ U[0,1]
// the existing-tuple count concentrates around N/2 with variance N/12·... —
// precisely Var = Σ p_i(1−p_i) whose expectation is N/6 — so for large N we
// integrate the smooth summand against a 5-point Gaussian quadrature around
// the mean instead of materialising two million binomial terms; for small N
// the Poisson-binomial distribution is evaluated exactly.  Eqs. 7 and 8
// compare the cost of naive feedback (N_back) with shipping all local
// skylines (N_local), motivating the e-DSUD feedback selection.
#pragma once

#include <cstddef>

namespace dsud {

/// ln^{d−1}(n) / d!, the Eq. 6 summand (0 for n < 2).
double skylineDensityTerm(std::size_t d, double n);

/// Expected skyline cardinality H(d, N) of an uncertain database whose
/// tuples exist independently with probability drawn from U[0,1] (Eq. 6).
double expectedSkylineCardinality(std::size_t d, std::size_t n);

/// Expected number of tuples a naive feedback mechanism sends back:
/// N_back = (m−1) · H(d, N)  (Eq. 7).
double expectedFeedbackTuples(std::size_t d, std::size_t n, std::size_t m);

/// Expected total local-skyline size under even partitioning:
/// N_local = (m−1) · H(d, N/m)  (Eq. 8).
double expectedLocalSkylineTuples(std::size_t d, std::size_t n, std::size_t m);

}  // namespace dsud
