#include "skyline/cardinality.hpp"

#include <array>
#include <cmath>
#include <vector>

namespace dsud {
namespace {

double factorial(std::size_t d) {
  double f = 1.0;
  for (std::size_t i = 2; i <= d; ++i) f *= static_cast<double>(i);
  return f;
}

/// Exact Poisson-binomial mass for n tuples each existing with a probability
/// drawn uniformly from [0,1]; marginally each exists with probability 1/2,
/// so the count is Binomial(n, 1/2).
std::vector<double> binomialHalfPmf(std::size_t n) {
  std::vector<double> pmf(n + 1, 0.0);
  pmf[0] = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i + 1; k-- > 0;) {
      pmf[k + 1] += pmf[k] * 0.5;
      pmf[k] *= 0.5;
    }
  }
  return pmf;
}

}  // namespace

double skylineDensityTerm(std::size_t d, double n) {
  if (n < 2.0) return 0.0;
  return std::pow(std::log(n), static_cast<double>(d) - 1.0) / factorial(d);
}

double expectedSkylineCardinality(std::size_t d, std::size_t n) {
  if (n == 0) return 0.0;

  if (n <= 512) {
    // Exact expectation over the Binomial(n, 1/2) existing-tuple count.
    const std::vector<double> pmf = binomialHalfPmf(n);
    double h = 0.0;
    for (std::size_t k = 0; k <= n; ++k) {
      h += skylineDensityTerm(d, static_cast<double>(k)) * pmf[k];
    }
    return h;
  }

  // Large N: the count concentrates at mean N/2 with variance N·E[p(1−p)]
  // = N/6.  Integrate the smooth summand with Gauss–Hermite quadrature.
  const double mean = static_cast<double>(n) / 2.0;
  const double sigma = std::sqrt(static_cast<double>(n) / 6.0);
  // 5-point Gauss–Hermite abscissae/weights for ∫ f(x) e^{-x²} dx,
  // transformed to N(mean, sigma²).
  constexpr std::array<double, 5> abscissae = {
      -2.0201828704560856, -0.9585724646138185, 0.0, 0.9585724646138185,
      2.0201828704560856};
  constexpr std::array<double, 5> weights = {
      0.019953242059045913, 0.39361932315224116, 0.9453087204829419,
      0.39361932315224116, 0.019953242059045913};
  constexpr double invSqrtPi = 0.5641895835477563;
  double h = 0.0;
  for (std::size_t i = 0; i < abscissae.size(); ++i) {
    const double count = mean + std::sqrt(2.0) * sigma * abscissae[i];
    h += weights[i] * invSqrtPi * skylineDensityTerm(d, count);
  }
  return h;
}

double expectedFeedbackTuples(std::size_t d, std::size_t n, std::size_t m) {
  if (m <= 1) return 0.0;
  return static_cast<double>(m - 1) * expectedSkylineCardinality(d, n);
}

double expectedLocalSkylineTuples(std::size_t d, std::size_t n,
                                  std::size_t m) {
  if (m <= 1) return 0.0;
  return static_cast<double>(m - 1) * expectedSkylineCardinality(d, n / m);
}

}  // namespace dsud
