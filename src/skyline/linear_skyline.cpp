#include "skyline/linear_skyline.hpp"

#include <algorithm>

namespace dsud {

void sortBySkylineProbability(std::vector<ProbSkylineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ProbSkylineEntry& a, const ProbSkylineEntry& b) {
              if (a.skyProb != b.skyProb) return a.skyProb > b.skyProb;
              return a.id < b.id;
            });
}

std::vector<double> skylineProbabilitiesLinear(const Dataset& data,
                                               DimMask mask) {
  std::vector<double> probs(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    double survival = 1.0;
    for (std::size_t j = 0; j < data.size(); ++j) {
      if (j == i) continue;
      if (dominates(data.values(j), data.values(i), mask)) {
        survival *= 1.0 - data.prob(j);
      }
    }
    probs[i] = data.prob(i) * survival;
  }
  return probs;
}

std::vector<double> skylineProbabilitiesLinear(const Dataset& data) {
  return skylineProbabilitiesLinear(data, fullMask(data.dims()));
}

std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data, double q,
                                            DimMask mask) {
  const std::vector<double> probs = skylineProbabilitiesLinear(data, mask);
  std::vector<ProbSkylineEntry> result;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (probs[row] >= q) {
      const TupleRef ref = data.at(row);
      result.push_back(ProbSkylineEntry{
          ref.id,
          std::vector<double>(ref.values.begin(), ref.values.end()),
          ref.prob, probs[row]});
    }
  }
  sortBySkylineProbability(result);
  return result;
}

std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data, double q) {
  return linearSkyline(data, q, fullMask(data.dims()));
}

std::vector<ProbSkylineEntry> linearSkylineConstrained(const Dataset& data,
                                                       double q, DimMask mask,
                                                       const Rect& window) {
  Dataset filtered(data.dims());
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (window.containsPoint(data.values(row))) {
      filtered.add(data.id(row), data.values(row), data.prob(row));
    }
  }
  return linearSkyline(filtered, q, mask);
}

}  // namespace dsud
