#include "skyline/linear_skyline.hpp"

#include <algorithm>
#include <cmath>

#include "kernel/kernel.hpp"

namespace dsud {

void sortBySkylineProbability(std::vector<ProbSkylineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ProbSkylineEntry& a, const ProbSkylineEntry& b) {
              if (a.skyProb != b.skyProb) return a.skyProb > b.skyProb;
              return a.id < b.id;
            });
}

namespace {

/// Kernel sweep over an unconstrained dataset: exponents via the blocked
/// kernel, then P_sky(i) = P(i) · exp(Σ log1p(−P(dominator))).
std::vector<double> probabilitiesUnclipped(const Dataset& data, DimMask mask) {
  const DatasetView view = data.view();
  const kernel::SoaBlock block{view.cols(),       view.prob(),
                               view.logSurv(),    view.size(),
                               view.paddedSize(), view.dims()};
  std::vector<double> exponents(view.size());
  kernel::survivalExponents(block, mask, exponents.data());
  std::vector<double> probs(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    probs[i] = data.prob(i) * std::exp(exponents[i]);
  }
  return probs;
}

}  // namespace

std::vector<double> skylineProbabilitiesLinear(const Dataset& data,
                                               const SkylineSpec& spec) {
  const DimMask mask = effectiveMask(spec.mask, data.dims());
  if (spec.clip == nullptr) return probabilitiesUnclipped(data, mask);

  // Constrained semantics: the database is first filtered to the window, so
  // out-of-window rows neither qualify nor dominate.  Compute on the
  // filtered copy and scatter back to the caller's row indexing.
  Dataset filtered(data.dims());
  std::vector<std::size_t> rows;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (spec.clip->containsPoint(data.values(row))) {
      filtered.add(data.id(row), data.values(row), data.prob(row));
      rows.push_back(row);
    }
  }
  const std::vector<double> inner = probabilitiesUnclipped(filtered, mask);
  std::vector<double> probs(data.size(), 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) probs[rows[i]] = inner[i];
  return probs;
}

std::vector<ProbSkylineEntry> linearSkyline(const Dataset& data,
                                            const SkylineSpec& spec) {
  const std::vector<double> probs = skylineProbabilitiesLinear(data, spec);
  std::vector<ProbSkylineEntry> result;
  for (std::size_t row = 0; row < data.size(); ++row) {
    if (spec.clip != nullptr && !spec.clip->containsPoint(data.values(row))) {
      continue;  // outside the window: not a candidate even when q == 0
    }
    if (probs[row] >= spec.q) {
      const TupleRef ref = data.at(row);
      result.push_back(ProbSkylineEntry{
          ref.id,
          std::vector<double>(ref.values.begin(), ref.values.end()),
          ref.prob, probs[row]});
    }
  }
  sortBySkylineProbability(result);
  return result;
}

}  // namespace dsud
