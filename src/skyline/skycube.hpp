// Probabilistic skyline cube: the qualified skyline of every non-empty
// subspace (the paper's reference [3], "Efficient Computation of the
// Skyline Cube", lifted to the uncertain model).
//
// A d-dimensional uncertain database has 2^d − 1 cuboids; each is the
// probabilistic skyline under the corresponding dimension mask.  Because
// dominance is mask-dependent, cuboids are not generally contained in one
// another — each is computed by its own BBS pass over the shared PR-tree
// (the index is mask-agnostic), which is the pragmatic strategy for the
// d <= 8 range this library supports.
#pragma once

#include <vector>

#include "geometry/dominance.hpp"
#include "index/prtree.hpp"
#include "skyline/skyline_result.hpp"

namespace dsud {

/// All-subspace probabilistic skylines of one indexed database.
class Skycube {
 public:
  /// Computes every cuboid of `tree` at threshold `q`.
  Skycube(const PRTree& tree, double q);

  std::size_t dims() const noexcept { return dims_; }
  double threshold() const noexcept { return q_; }

  /// Number of cuboids: 2^d − 1.
  std::size_t cuboidCount() const noexcept { return cuboids_.size(); }

  /// The skyline of one subspace; `mask` must be a non-empty subset of the
  /// first d dimensions.  Throws std::out_of_range otherwise.
  const std::vector<ProbSkylineEntry>& cuboid(DimMask mask) const;

  /// Invokes `fn(mask, skyline)` for every cuboid, in ascending mask order.
  template <typename Fn>
  void forEachCuboid(Fn&& fn) const {
    for (DimMask mask = 1; mask <= fullMask(dims_); ++mask) {
      fn(mask, cuboids_[mask - 1]);
    }
  }

 private:
  std::size_t dims_;
  double q_;
  std::vector<std::vector<ProbSkylineEntry>> cuboids_;  // index = mask - 1
};

}  // namespace dsud
