// Observability: the always-on flight recorder.
//
// A bounded ring of the most recent structured events (obs/log.hpp),
// attached as a sink of the process-wide EventLog.  When something goes
// wrong at 3 a.m. — a query degrades, a replica fails over, the process
// takes a fatal signal — the recorder already holds the last N events that
// explain it, and anomaly() dumps the recent window to an NDJSON file
// without anyone having had tracing enabled in advance.
//
// Concurrency design: writers claim a slot with one fetch_add on the ring
// cursor, then copy the event under that slot's own mutex.  Slot mutexes
// are uncontended except when the ring wraps onto a slot a reader (or a
// lapped writer) currently holds, so accept() is effectively two atomic ops
// plus the event copy — and, unlike a seqlock, every access is properly
// synchronised (TSan-clean under any writer/reader interleaving).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.hpp"

namespace dsud::obs {

class FlightRecorder final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;
  static constexpr double kDefaultWindowSeconds = 30.0;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void accept(const Event& event) override;

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Lifetime events accepted (>= capacity() means the ring has wrapped).
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  /// Anomaly dumps written so far (attempted; includes failed writes).
  std::uint64_t dumps() const noexcept {
    return dumpSeq_.load(std::memory_order_relaxed);
  }

  /// The retained events at or after `sinceWallNs` (0 = everything), in
  /// recording order.  Concurrent writers may overwrite slots while the
  /// snapshot walks the ring; every returned event is internally consistent
  /// (copied under its slot mutex), the set is racy-but-recent.
  std::vector<Event> snapshot(std::uint64_t sinceWallNs = 0) const;

  /// snapshot() rendered as NDJSON, one event per line.
  std::string dumpNdjson(std::uint64_t sinceWallNs = 0) const;

  /// Directory anomaly dumps land in ("" disables file dumps; created on
  /// first use).  dsudd wires --recorder-dir here.
  void setDumpDir(std::string dir);
  std::string dumpDir() const;

  /// How far back an anomaly dump reaches (default 30 s).
  void setWindowSeconds(double seconds) noexcept {
    windowSeconds_.store(seconds, std::memory_order_relaxed);
  }
  double windowSeconds() const noexcept {
    return windowSeconds_.load(std::memory_order_relaxed);
  }

  /// Something anomalous happened (degraded query, failover, fatal signal):
  /// dump the last window to `<dir>/recorder-<reason>-<pid>-<n>.ndjson`.
  /// Returns the path written, or "" when no dump directory is configured
  /// or the write failed.  Best-effort by design — an unwritable directory
  /// must never take down the query path that reported the anomaly.
  std::string anomaly(std::string_view reason);

 private:
  struct Slot {
    std::mutex mutex;
    Event event;
    std::uint64_t seq = 0;            ///< claim index, guarded by mutex
    std::atomic<bool> used{false};
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dumpSeq_{0};
  std::atomic<double> windowSeconds_{kDefaultWindowSeconds};
  mutable std::mutex dirMutex_;
  std::string dir_;
};

/// The process-wide recorder eventLog() attaches at startup (default-on).
FlightRecorder& flightRecorder();

/// Overrides the global recorder's capacity.  Effective only when called
/// before the first flightRecorder() / eventLog() use (dsudd does this
/// first thing in main); later calls return false and change nothing.
bool configureFlightRecorder(std::size_t capacity);

}  // namespace dsud::obs
