#include "obs/recorder.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dsud::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  slots_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void FlightRecorder::accept(const Event& event) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[seq % slots_.size()];
  std::lock_guard lock(slot.mutex);
  slot.event = event;
  slot.seq = seq;
  slot.used.store(true, std::memory_order_relaxed);
}

std::vector<Event> FlightRecorder::snapshot(std::uint64_t sinceWallNs) const {
  struct Entry {
    std::uint64_t seq;
    Event event;
  };
  std::vector<Entry> entries;
  entries.reserve(slots_.size());
  for (const auto& slotPtr : slots_) {
    Slot& slot = *slotPtr;
    if (!slot.used.load(std::memory_order_relaxed)) continue;
    std::lock_guard lock(slot.mutex);
    if (slot.event.wallNs < sinceWallNs) continue;
    entries.push_back(Entry{slot.seq, slot.event});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::vector<Event> events;
  events.reserve(entries.size());
  for (auto& e : entries) events.push_back(std::move(e.event));
  return events;
}

std::string FlightRecorder::dumpNdjson(std::uint64_t sinceWallNs) const {
  std::string out;
  for (const Event& event : snapshot(sinceWallNs)) {
    out += eventToNdjson(event);
    out.push_back('\n');
  }
  return out;
}

void FlightRecorder::setDumpDir(std::string dir) {
  std::lock_guard lock(dirMutex_);
  dir_ = std::move(dir);
}

std::string FlightRecorder::dumpDir() const {
  std::lock_guard lock(dirMutex_);
  return dir_;
}

std::string FlightRecorder::anomaly(std::string_view reason) {
  std::string dir = dumpDir();
  if (dir.empty()) return {};
  const std::uint64_t n = dumpSeq_.fetch_add(1, std::memory_order_relaxed);

  const double window = windowSeconds();
  const std::uint64_t now = wallClockNs();
  const std::uint64_t windowNs =
      window > 0 ? static_cast<std::uint64_t>(window * 1e9) : 0;
  const std::uint64_t since =
      (windowNs > 0 && now > windowNs) ? now - windowNs : 0;

  ::mkdir(dir.c_str(), 0755);  // best-effort; EEXIST is the common case

  // Sanitise the reason into a filename fragment.
  std::string tag;
  tag.reserve(reason.size());
  for (char c : reason) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    tag.push_back(safe ? c : '_');
  }
  if (tag.empty()) tag = "anomaly";

  char name[160];
  std::snprintf(name, sizeof name, "/recorder-%s-%d-%llu.ndjson", tag.c_str(),
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(n));
  std::string path = dir + name;

  const std::string body = dumpNdjson(since);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return {};
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  return path;
}

namespace {

std::atomic<std::size_t> g_configuredCapacity{FlightRecorder::kDefaultCapacity};
std::atomic<bool> g_recorderLive{false};

}  // namespace

FlightRecorder& flightRecorder() {
  static FlightRecorder* recorder = [] {
    g_recorderLive.store(true, std::memory_order_release);
    return new FlightRecorder(
        g_configuredCapacity.load(std::memory_order_acquire));
  }();
  return *recorder;
}

bool configureFlightRecorder(std::size_t capacity) {
  if (capacity == 0) return false;
  if (g_recorderLive.load(std::memory_order_acquire)) return false;
  g_configuredCapacity.store(capacity, std::memory_order_release);
  return true;
}

}  // namespace dsud::obs
