// Observability: process-wide metric instruments (counters, gauges,
// fixed-bucket histograms) behind a thread-safe registry.
//
// Design goals, in order:
//
//   1. Hot-path increments must be cheap enough for the protocol inner loops
//      (one relaxed atomic RMW, no locks, no allocation) — the registry
//      mutex is taken only on instrument *registration*, which callers do
//      once and cache the returned reference.
//   2. Instruments have stable addresses for the registry's lifetime, so a
//      cached `Counter&` never dangles while the owning registry lives.
//   3. Reads are racy-but-consistent-enough: `snapshot()` observes each
//      atomic individually (a scrape concurrent with increments may see a
//      histogram whose bucket sum trails its count by in-flight updates;
//      exporters tolerate that).
//
// Naming follows Prometheus conventions: `dsud_rounds_total`,
// `dsud_round_latency_seconds{algo="edsud"}`.  Labels are baked into the
// instrument name with `labeled()`; the exporters split them back out.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsud::obs {

/// Monotone event counter.  Increments are relaxed atomics: counters are
/// statistical, not synchronisation points.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.  `add`/`sub` make it usable as an
/// up-down counter (e.g. in-flight queries); they are lock-free CAS loops so
/// concurrent sessions never lose an update.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void sub(double delta) noexcept { add(-delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency/size histogram with percentile estimation.
///
/// Buckets are (prevBound, bound] plus an implicit (+Inf) overflow bucket,
/// Prometheus-style.  `observe` is lock-free (two relaxed RMWs plus a CAS
/// loop for the floating-point sum).  Percentiles interpolate linearly
/// inside the containing bucket, so their error is bounded by the bucket
/// width — choose bounds to match the scale you care about.
class Histogram {
 public:
  /// `upperBounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket counts; size is `bounds().size() + 1` (last = overflow).
  std::vector<std::uint64_t> bucketCounts() const;

  /// Estimated q-quantile (q in [0, 1]); 0 when empty.  Values in the
  /// overflow bucket report the largest finite bound.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Zeroes counts and sum in place (addresses stay valid).  Not meant to
  /// race with writers; between-queries/tables use only.
  void reset() noexcept;

  /// `count` bounds starting at `start`, each `factor` times the previous —
  /// the usual latency ladder.
  static std::vector<double> exponentialBounds(double start, double factor,
                                               std::size_t count);
  /// Default seconds ladder: 1 µs .. ~67 s in powers of 4.
  static std::vector<double> latencyBounds() {
    return exponentialBounds(1e-6, 4.0, 14);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Snapshots (plain data; what the exporters consume)

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;

  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted

  const std::uint64_t* counter(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry

/// Builds `base{k1="v1",k2="v2"}` — the canonical labeled-instrument name.
/// Label values are escaped for the Prometheus exposition format.
std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Thread-safe instrument directory.  Lookup/registration takes a mutex;
/// returned references stay valid (and lock-free to update) for the
/// registry's lifetime.  Re-registering a name returns the existing
/// instrument; registering it as a different kind throws std::logic_error.
///
/// Thread-safety contract: registration, instrument updates, and
/// `snapshot()` may all race freely — concurrent query sessions share one
/// registry without coordination.  Only `reset()` is exempt: it assumes no
/// active writers (bench-harness use between tables).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upperBounds` is used on first registration only; a later mismatch with
  /// the registered bounds throws std::logic_error.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upperBounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  /// Intended for the bench harness between tables, not for concurrent use
  /// with active writers.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dsud::obs
