#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsud::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must strictly increase");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  // Branchless-enough upper_bound: bucket i covers (bounds[i-1], bounds[i]].
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  // upper_bound yields the first bound > v, i.e. one past for v == bound;
  // Prometheus buckets are inclusive on the upper edge, so step back then.
  const std::size_t slot =
      (i > 0 && v == bounds_[i - 1]) ? i - 1 : i;
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

double quantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& buckets,
                           std::uint64_t count, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= rank && buckets[i] > 0) {
      if (i == buckets.size() - 1) {
        // Overflow bucket: nothing to interpolate toward; report the largest
        // finite bound (a deliberate under-estimate flagged by the bucket
        // counts themselves).
        return bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          (rank - cumulative) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  return bounds.back();
}

}  // namespace

double Histogram::quantile(double q) const {
  return quantileFromBuckets(bounds_, bucketCounts(), count(), q);
}

double HistogramSnapshot::quantile(double q) const {
  return quantileFromBuckets(bounds, buckets, count, q);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponentialBounds(double start, double factor,
                                                 std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("Histogram::exponentialBounds: bad ladder");
  }
  std::vector<double> bounds(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds[i] = b;
  return bounds;
}

// ---------------------------------------------------------------------------
// Snapshot lookup

const std::uint64_t* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string name(base);
  if (labels.size() == 0) return name;
  name += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) name += ',';
    first = false;
    name += key;
    name += "=\"";
    for (const char c : value) {
      // Prometheus exposition escapes for label values.
      if (c == '\\' || c == '"') name += '\\';
      if (c == '\n') {
        name += "\\n";
        continue;
      }
      name += c;
    }
    name += '"';
  }
  name += '}';
  return name;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::logic_error("MetricsRegistry: " + name +
                           " already registered as another kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::logic_error("MetricsRegistry: " + name +
                           " already registered as another kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds) {
  std::lock_guard lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::logic_error("MetricsRegistry: " + name +
                           " already registered as another kind");
  }
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upperBounds));
  } else if (slot->bounds() != upperBounds) {
    throw std::logic_error("MetricsRegistry: " + name +
                           " re-registered with different bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucketCounts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dsud::obs
