// Merging site-side span timelines into the coordinator's QueryTrace.
//
// Under TCP the sites are separate processes whose tracers run on unrelated
// steady_clock epochs, so site timestamps cannot be compared with the
// coordinator's directly.  The merge estimates one clock offset per site
// NTP-style: every (coordinator RPC span, site handling span) pair yields
//
//   offset = midpoint(rpc) − midpoint(site)
//   delay  = duration(rpc) − duration(site)   (the round-trip overhead)
//
// and the pair with the smallest delay is the most trustworthy sample — the
// request and response legs were the most symmetric there, exactly the NTP
// argument.  Retried RPCs (attempts > 1) and replayed site ops are excluded:
// their coordinator span covers several transport attempts, so the midpoint
// is meaningless.  After mapping, each site span is clamped into its parent
// RPC span's bounds, which the true timeline must satisfy anyway (the site
// did the work between request arrival and response departure).
#pragma once

#include <cstdint>
#include <span>

#include "common/dataset.hpp"
#include "obs/trace.hpp"

namespace dsud::obs {

/// One site's timeline to merge: the id the coordinator's RPC spans carry in
/// their "site" attr, plus the spans shipped back from that site.
struct SiteTraceInput {
  SiteId site = kNoSite;
  const QueryTrace* trace = nullptr;
};

/// Appends every site span to `trace` as a child of its matching RPC span —
/// "site.prepare" under "rpc.prepare", "site.next" under the "pull" with the
/// same seq, "site.evaluate" under the "rpc.evaluate" with the same seq —
/// with timestamps mapped by the estimated per-site clock offset and clamped
/// into the parent's bounds.  Site spans without a matching RPC span (span
/// cap overflow, maintenance ops) attach under the root span instead.  Each
/// merged span gains a "site" attr; per site, one "merge.site" span records
/// the estimation diagnostics (offset_ns, delay_ns, samples, matched,
/// unmatched, clamped).
void mergeSiteTraces(QueryTrace& trace, std::span<const SiteTraceInput> sites);

}  // namespace dsud::obs
