// Observability: snapshot and trace serialisation.
//
// Two metric formats are produced from the same MetricsSnapshot:
//
//   * JSON — machine-friendly dump for the bench harness (one
//     `<table>.metrics.json` next to each figure CSV) and for tooling;
//     histograms carry bounds, per-bucket counts, sum/count and
//     pre-computed p50/p95/p99.
//   * Prometheus text exposition (version 0.0.4) — what a scrape endpoint
//     or `dsudctl metrics` prints.  Labeled instrument names
//     (`base{k="v"}`, built by obs::labeled) are split back into family
//     and labels; histograms expand into the conventional
//     `_bucket{le=...}` / `_sum` / `_count` series.
//
// Traces export as JSON only (a flat span list; see obs/trace.hpp).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dsud::obs {

/// Content-Type a scrape endpoint should answer with when serving
/// metricsToPrometheus output (text exposition format 0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

std::string metricsToJson(const MetricsSnapshot& snapshot);
std::string metricsToPrometheus(const MetricsSnapshot& snapshot);

std::string traceToJson(const QueryTrace& trace);

/// Chrome trace_event JSON (the "JSON Array Format" Perfetto and
/// chrome://tracing load): one complete ("ph":"X") event per span, one
/// track (tid) per site plus tid 0 for the coordinator — merged site spans
/// (names starting "site.", placed by obs::mergeSiteTraces) land on their
/// site's track, everything else on the coordinator's.  Timestamps convert
/// to microseconds as the format requires.
std::string traceToPerfetto(const QueryTrace& trace);

/// Appends `text` with JSON string escaping (quotes, backslashes, control
/// characters) — shared with anything hand-rolling JSON around the library.
void appendJsonEscaped(std::string& out, std::string_view text);

}  // namespace dsud::obs
