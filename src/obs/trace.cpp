#include "obs/trace.hpp"

#include <algorithm>

namespace dsud::obs {

SpanId Tracer::begin(std::string_view name) {
  if (!enabled_) return kNoSpan;
  const std::uint64_t now = nowNs();
  std::lock_guard lock(mutex_);
  if (trace_.events.size() >= maxEvents_) {
    ++trace_.droppedEvents;
    return kNoSpan;
  }
  TraceEvent event;
  event.name.assign(name);
  event.parent = openStack_.empty() ? kNoSpan : openStack_.back();
  event.startNs = now;
  const auto id = static_cast<SpanId>(trace_.events.size());
  trace_.events.push_back(std::move(event));
  openStack_.push_back(id);
  return id;
}

SpanId Tracer::begin(std::string_view name, SpanId parent) {
  if (!enabled_) return kNoSpan;
  const std::uint64_t now = nowNs();
  std::lock_guard lock(mutex_);
  if (trace_.events.size() >= maxEvents_) {
    ++trace_.droppedEvents;
    return kNoSpan;
  }
  TraceEvent event;
  event.name.assign(name);
  event.parent = parent;
  event.startNs = now;
  const auto id = static_cast<SpanId>(trace_.events.size());
  trace_.events.push_back(std::move(event));
  // Deliberately not pushed on openStack_: an explicit-parent span must not
  // capture unrelated spans opened while it is in flight on another thread.
  return id;
}

void Tracer::end(SpanId id) {
  if (!enabled_ || id == kNoSpan) return;
  const std::uint64_t now = nowNs();
  std::lock_guard lock(mutex_);
  if (id >= trace_.events.size()) return;
  trace_.events[id].endNs = std::max<std::uint64_t>(now, 1);
  // Spans usually close LIFO; erase-from-top keeps out-of-order closes safe.
  for (auto it = openStack_.rbegin(); it != openStack_.rend(); ++it) {
    if (*it == id) {
      openStack_.erase(std::next(it).base());
      break;
    }
  }
}

void Tracer::attr(SpanId id, std::string_view key, double value) {
  if (!enabled_ || id == kNoSpan) return;
  std::lock_guard lock(mutex_);
  if (id >= trace_.events.size()) return;
  trace_.events[id].attrs.emplace_back(std::string(key), value);
}

QueryTrace Tracer::take() {
  const std::uint64_t now = nowNs();
  std::lock_guard lock(mutex_);
  for (const SpanId id : openStack_) {
    if (id < trace_.events.size() && trace_.events[id].endNs == 0) {
      trace_.events[id].endNs = std::max<std::uint64_t>(now, 1);
    }
  }
  openStack_.clear();
  QueryTrace out = std::move(trace_);
  trace_ = QueryTrace{};
  return out;
}

QueryTrace Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  return trace_;
}

}  // namespace dsud::obs
