// Observability: the structured event log (second observability layer,
// next to metrics and traces).
//
// Metrics answer "how much", traces answer "where did this query spend its
// time" — the event log answers "what happened, in order": admission
// verdicts, cache hits, batch merges, breaker trips, epoch installs,
// failovers, degraded queries.  Every subsystem emits lifecycle Events into
// one process-wide EventLog; sinks fan them out.  Two sinks ship with the
// library: the always-on bounded FlightRecorder (obs/recorder.hpp), and an
// optional NDJSON FileSink for durable operational logs (dsudd --log-file).
//
// Format: one JSON object per event, rendered by eventToNdjson without any
// external JSON dependency (dsud_obs sits below the server layer and its
// parser).  Reserved top-level keys are `ts_ns`, `level`, `component`, and
// `event`; every field lands inline next to them:
//
//   {"ts_ns":1754556000123456789,"level":"warn","component":"engine",
//    "event":"site.dead","query":42,"site":3}
//
// Cost contract: emit() below the runtime level is one relaxed atomic load.
// An emitted event allocates (strings + field vector) — callers emit per
// query / per fault / per admin action, never per tuple.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/log.hpp"  // LogLevel

namespace dsud::obs {

/// One key/value attribute of an event.  Build with the `field()` overloads
/// so literals pick the right kind without casts.
struct EventField {
  enum class Kind : std::uint8_t { kUint, kInt, kDouble, kBool, kString };

  std::string key;
  Kind kind = Kind::kUint;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
};

EventField field(std::string key, std::uint64_t value);
EventField field(std::string key, std::int64_t value);
EventField field(std::string key, double value);
EventField field(std::string key, bool value);
EventField field(std::string key, std::string value);
EventField field(std::string key, std::string_view value);
EventField field(std::string key, const char* value);
inline EventField field(std::string key, int value) {
  return field(std::move(key), static_cast<std::int64_t>(value));
}
inline EventField field(std::string key, unsigned value) {
  return field(std::move(key), static_cast<std::uint64_t>(value));
}

/// One structured log event.  `wallNs` is CLOCK_REALTIME nanoseconds so
/// events from different processes order on one timeline; EventLog stamps
/// it when left zero.
struct Event {
  std::uint64_t wallNs = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;  ///< emitting subsystem ("engine", "server", ...)
  std::string name;       ///< dotted event name ("cache.hit", "site.dead")
  std::vector<EventField> fields;
};

/// Renders one event as a single NDJSON line (no trailing newline).
std::string eventToNdjson(const Event& event);

/// Wall-clock now in nanoseconds (CLOCK_REALTIME) — the event timestamp
/// base, exposed so callers can bracket a time range for recorder queries.
std::uint64_t wallClockNs() noexcept;

const char* levelName(LogLevel level) noexcept;

/// Receives every event that passes the log's level gate.  Implementations
/// must be thread-safe: emitters call accept concurrently.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void accept(const Event& event) = 0;
};

/// Appends NDJSON lines to a file (created / appended, flushed per event —
/// these are operational lifecycle events, not a tuple stream).
class FileSink final : public EventSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;

  /// False when the path could not be opened; accept() is then a no-op.
  bool ok() const noexcept { return file_ != nullptr; }

  void accept(const Event& event) override;

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// The structured logger: a runtime level gate in front of a sink list.
///
/// Thread-safety contract: emit(), setLevel(), addSink(), and removeSink()
/// may race freely.  emit snapshots the sink list under the mutex and calls
/// accept outside it, so a slow file sink never serialises emitters against
/// sink registration.
class EventLog {
 public:
  EventLog() = default;

  void setLevel(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void addSink(std::shared_ptr<EventSink> sink);
  /// Detaches by identity; a sink not attached is a no-op.  Used by the
  /// bench harness to measure recorder-off legs.
  void removeSink(const EventSink* sink);
  std::size_t sinkCount() const;

  /// Fans `event` out to every sink when its level passes the gate; stamps
  /// wallNs when the caller left it zero.
  void emit(Event event);

  /// Convenience: build-and-emit.  Below the level gate this only costs the
  /// evaluation of the initializer list at the call site.
  void emit(LogLevel level, std::string_view component, std::string_view name,
            std::initializer_list<EventField> fields = {});

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<EventSink>> sinks_;
};

/// The process-wide event log every subsystem emits into.  Constructed on
/// first use with the global FlightRecorder (obs/recorder.hpp) already
/// attached, so the recorder is default-on.
EventLog& eventLog();

}  // namespace dsud::obs
