#include "obs/log.hpp"

#include <cstdio>
#include <ctime>
#include <utility>

#include "obs/export.hpp"  // appendJsonEscaped
#include "obs/recorder.hpp"

namespace dsud::obs {

EventField field(std::string key, std::uint64_t value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kUint;
  f.u = value;
  return f;
}

EventField field(std::string key, std::int64_t value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kInt;
  f.i = value;
  return f;
}

EventField field(std::string key, double value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kDouble;
  f.d = value;
  return f;
}

EventField field(std::string key, bool value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kBool;
  f.b = value;
  return f;
}

EventField field(std::string key, std::string value) {
  EventField f;
  f.key = std::move(key);
  f.kind = EventField::Kind::kString;
  f.s = std::move(value);
  return f;
}

EventField field(std::string key, std::string_view value) {
  return field(std::move(key), std::string(value));
}

EventField field(std::string key, const char* value) {
  return field(std::move(key), std::string(value));
}

std::uint64_t wallClockNs() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

namespace {

void appendField(std::string& out, const EventField& f) {
  out.push_back('"');
  appendJsonEscaped(out, f.key);
  out += "\":";
  char buffer[32];
  switch (f.kind) {
    case EventField::Kind::kUint:
      std::snprintf(buffer, sizeof buffer, "%llu",
                    static_cast<unsigned long long>(f.u));
      out += buffer;
      break;
    case EventField::Kind::kInt:
      std::snprintf(buffer, sizeof buffer, "%lld",
                    static_cast<long long>(f.i));
      out += buffer;
      break;
    case EventField::Kind::kDouble: {
      // %.17g round-trips any double; NaN/Inf are not valid JSON, so encode
      // them as null rather than emit a line no parser accepts.
      if (f.d != f.d || f.d > 1.7976931348623157e308 ||
          f.d < -1.7976931348623157e308) {
        out += "null";
      } else {
        std::snprintf(buffer, sizeof buffer, "%.17g", f.d);
        out += buffer;
      }
      break;
    }
    case EventField::Kind::kBool:
      out += f.b ? "true" : "false";
      break;
    case EventField::Kind::kString:
      out.push_back('"');
      appendJsonEscaped(out, f.s);
      out.push_back('"');
      break;
  }
}

}  // namespace

std::string eventToNdjson(const Event& event) {
  std::string out;
  out.reserve(96 + event.fields.size() * 24);
  out += "{\"ts_ns\":";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(event.wallNs));
  out += buffer;
  out += ",\"level\":\"";
  out += levelName(event.level);
  out += "\",\"component\":\"";
  appendJsonEscaped(out, event.component);
  out += "\",\"event\":\"";
  appendJsonEscaped(out, event.name);
  out.push_back('"');
  for (const EventField& f : event.fields) {
    out.push_back(',');
    appendField(out, f);
  }
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// FileSink

FileSink::FileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "a");
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::accept(const Event& event) {
  if (file_ == nullptr) return;
  const std::string line = eventToNdjson(event);
  std::lock_guard lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// EventLog

void EventLog::addSink(std::shared_ptr<EventSink> sink) {
  if (sink == nullptr) return;
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void EventLog::removeSink(const EventSink* sink) {
  std::lock_guard lock(mutex_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->get() == sink) {
      sinks_.erase(it);
      return;
    }
  }
}

std::size_t EventLog::sinkCount() const {
  std::lock_guard lock(mutex_);
  return sinks_.size();
}

void EventLog::emit(Event event) {
  if (!enabled(event.level)) return;
  if (event.wallNs == 0) event.wallNs = wallClockNs();
  // Snapshot the sink list so accept() runs outside the mutex: a slow file
  // sink must not serialise concurrent emitters against addSink/removeSink.
  std::vector<std::shared_ptr<EventSink>> sinks;
  {
    std::lock_guard lock(mutex_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) sink->accept(event);
}

void EventLog::emit(LogLevel level, std::string_view component,
                    std::string_view name,
                    std::initializer_list<EventField> fields) {
  if (!enabled(level)) return;
  Event event;
  event.level = level;
  event.component = std::string(component);
  event.name = std::string(name);
  event.fields.assign(fields.begin(), fields.end());
  emit(std::move(event));
}

EventLog& eventLog() {
  // The global log ships with the global flight recorder attached: the
  // recorder is default-on, and anything emitted anywhere is dump-able on
  // anomaly.  The shared_ptr aliases the function-local singleton (no-op
  // deleter) — both live until process exit.
  static EventLog* log = [] {
    auto* l = new EventLog();
    l->addSink(std::shared_ptr<EventSink>(&flightRecorder(),
                                          [](EventSink*) {}));
    return l;
  }();
  return *log;
}

}  // namespace dsud::obs
