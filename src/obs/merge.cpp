#include "obs/merge.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dsud::obs {

namespace {

std::optional<double> findAttr(const TraceEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.attrs) {
    if (k == key) return v;
  }
  return std::nullopt;
}

/// Coordinator RPC span names and the site span each one parents.
std::string_view siteSpanFor(std::string_view rpcName) {
  if (rpcName == "rpc.prepare") return "site.prepare";
  if (rpcName == "pull") return "site.next";
  if (rpcName == "rpc.evaluate") return "site.evaluate";
  return {};
}

struct RpcSpan {
  SpanId id = kNoSpan;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  bool retried = false;  // attempts > 1: midpoint spans several attempts
};

/// The coordinator spans addressing one site, keyed for matching.
struct SiteRpcIndex {
  std::vector<RpcSpan> prepare;                       // usually exactly one
  std::unordered_map<std::uint64_t, RpcSpan> nexts;   // by seq
  std::unordered_map<std::uint64_t, RpcSpan> evals;   // by seq
};

std::int64_t midpoint2x(std::uint64_t startNs, std::uint64_t endNs) {
  // Twice the midpoint, in ns, to stay integral.
  return static_cast<std::int64_t>(startNs) +
         static_cast<std::int64_t>(endNs);
}

}  // namespace

void mergeSiteTraces(QueryTrace& trace, std::span<const SiteTraceInput> sites) {
  if (trace.events.empty()) return;
  const SpanId rootId = 0;  // events are in span-start order; 0 is the root

  // Index the coordinator's RPC spans by (site, kind, seq).
  std::unordered_map<SiteId, SiteRpcIndex> rpcIndex;
  for (SpanId id = 0; id < trace.events.size(); ++id) {
    const TraceEvent& e = trace.events[id];
    if (siteSpanFor(e.name).empty()) continue;
    const auto site = findAttr(e, "site");
    if (!site) continue;
    RpcSpan rpc{id, e.startNs, e.endNs,
                findAttr(e, "attempts").value_or(1.0) > 1.0};
    SiteRpcIndex& index = rpcIndex[static_cast<SiteId>(*site)];
    if (e.name == "rpc.prepare") {
      index.prepare.push_back(rpc);
    } else if (e.name == "pull") {
      if (const auto seq = findAttr(e, "seq")) {
        index.nexts.emplace(static_cast<std::uint64_t>(*seq), rpc);
      }
    } else if (e.name == "rpc.evaluate") {
      if (const auto seq = findAttr(e, "seq")) {
        index.evals.emplace(static_cast<std::uint64_t>(*seq), rpc);
      }
    }
  }

  for (const SiteTraceInput& input : sites) {
    if (input.trace == nullptr || input.trace->events.empty()) continue;
    const SiteRpcIndex* index = nullptr;
    if (const auto it = rpcIndex.find(input.site); it != rpcIndex.end()) {
      index = &it->second;
    }

    // Match every site span to its RPC span, remembering the pairing so the
    // offset chosen below applies to all of them.
    struct Match {
      const TraceEvent* event;
      const RpcSpan* rpc;  // null = unmatched, attach under root
    };
    std::vector<Match> matches;
    matches.reserve(input.trace->events.size());
    std::size_t nextPrepare = 0;
    for (const TraceEvent& e : input.trace->events) {
      const RpcSpan* rpc = nullptr;
      if (index != nullptr) {
        if (e.name == "site.prepare") {
          if (nextPrepare < index->prepare.size()) {
            rpc = &index->prepare[nextPrepare++];
          }
        } else if (const auto seq = findAttr(e, "seq")) {
          const auto key = static_cast<std::uint64_t>(*seq);
          const auto& map =
              e.name == "site.next" ? index->nexts : index->evals;
          if (e.name == "site.next" || e.name == "site.evaluate") {
            if (const auto it = map.find(key); it != map.end()) {
              rpc = &it->second;
            }
          }
        }
      }
      matches.push_back(Match{&e, rpc});
    }

    // NTP-style offset: over the clean matched pairs, keep the sample with
    // the smallest round-trip overhead.
    std::int64_t offsetNs = 0;
    std::int64_t bestDelayNs = std::numeric_limits<std::int64_t>::max();
    std::size_t samples = 0;
    for (const Match& m : matches) {
      if (m.rpc == nullptr || m.rpc->retried) continue;
      const TraceEvent& e = *m.event;
      if (e.endNs == 0 || findAttr(e, "replay").has_value()) continue;
      const std::int64_t rpcDur =
          static_cast<std::int64_t>(m.rpc->endNs - m.rpc->startNs);
      const std::int64_t siteDur =
          static_cast<std::int64_t>(e.endNs - e.startNs);
      const std::int64_t delay = rpcDur - siteDur;
      ++samples;
      if (delay < bestDelayNs) {
        bestDelayNs = delay;
        offsetNs = (midpoint2x(m.rpc->startNs, m.rpc->endNs) -
                    midpoint2x(e.startNs, e.endNs)) /
                   2;
      }
    }

    // Copy the root bounds: the push_backs below may reallocate events.
    const std::uint64_t rootStart = trace.events[rootId].startNs;
    const std::uint64_t rootEnd = trace.events[rootId].endNs;
    std::size_t matched = 0;
    std::size_t unmatched = 0;
    std::size_t clamped = 0;
    for (const Match& m : matches) {
      const TraceEvent& e = *m.event;
      TraceEvent merged;
      merged.name = e.name;
      merged.attrs = e.attrs;
      merged.attrs.emplace_back("site", static_cast<double>(input.site));

      // Map into coordinator time, then clamp into the parent's bounds —
      // the site provably worked inside the RPC window, so any excursion is
      // residual clock error.
      const std::uint64_t loBound = m.rpc != nullptr ? m.rpc->startNs
                                                     : rootStart;
      const std::uint64_t hiBound = m.rpc != nullptr ? m.rpc->endNs
                                                     : rootEnd;
      const auto map = [&](std::uint64_t siteNs) {
        const std::int64_t mapped =
            static_cast<std::int64_t>(siteNs) + offsetNs;
        return static_cast<std::uint64_t>(
            std::clamp(mapped, static_cast<std::int64_t>(loBound),
                       static_cast<std::int64_t>(hiBound)));
      };
      const std::uint64_t rawStart =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(e.startNs) +
                                     offsetNs);
      merged.startNs = map(e.startNs);
      merged.endNs = std::max(map(e.endNs == 0 ? e.startNs : e.endNs),
                              merged.startNs);
      if (merged.startNs != rawStart) ++clamped;
      if (m.rpc != nullptr) {
        merged.parent = m.rpc->id;
        ++matched;
      } else {
        merged.parent = rootId;
        ++unmatched;
      }
      trace.events.push_back(std::move(merged));
    }
    trace.droppedEvents += input.trace->droppedEvents;

    TraceEvent summary;
    summary.name = "merge.site";
    summary.parent = rootId;
    summary.startNs = rootStart;
    summary.endNs = rootStart;
    summary.attrs = {
        {"site", static_cast<double>(input.site)},
        {"offset_ns", static_cast<double>(offsetNs)},
        {"delay_ns", samples > 0 ? static_cast<double>(bestDelayNs) : 0.0},
        {"samples", static_cast<double>(samples)},
        {"matched", static_cast<double>(matched)},
        {"unmatched", static_cast<double>(unmatched)},
        {"clamped", static_cast<double>(clamped)},
    };
    trace.events.push_back(std::move(summary));
  }
}

}  // namespace dsud::obs
