#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

namespace dsud::obs {
namespace {

void appendDouble(std::string& out, double v) {
  char buffer[40];
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  // max_digits10 so JSON round-trips exactly; %g keeps integers compact.
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

void appendU64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, v);
  out += buffer;
}

/// Splits `base{labels}` into its parts; `labels` excludes the braces and is
/// empty for unlabeled names.
void splitName(const std::string& name, std::string_view& base,
               std::string_view& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels = {};
    return;
  }
  base = std::string_view(name).substr(0, brace);
  labels = std::string_view(name).substr(brace + 1,
                                         name.size() - brace - 2);  // no '}'
}

/// `family NAME{labels[,extra]} value` exposition line.
void appendSeries(std::string& out, std::string_view base,
                  std::string_view labels, std::string_view suffix,
                  std::string_view extraLabel, const std::string& value) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extraLabel.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extraLabel.empty()) out += ',';
    out += extraLabel;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void appendTypeLine(std::string& out, std::string_view base,
                    std::string_view kind, std::string& lastFamily) {
  if (lastFamily == base) return;  // one TYPE line per family
  lastFamily.assign(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += kind;
  out += '\n';
}

}  // namespace

void appendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string metricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    appendJsonEscaped(out, name);
    out += "\": ";
    appendU64(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    appendJsonEscaped(out, name);
    out += "\": ";
    appendDouble(out, value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    appendJsonEscaped(out, h.name);
    out += "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ", ";
      appendDouble(out, h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ", ";
      appendU64(out, h.buckets[i]);
    }
    out += "], \"count\": ";
    appendU64(out, h.count);
    out += ", \"sum\": ";
    appendDouble(out, h.sum);
    out += ", \"p50\": ";
    appendDouble(out, h.quantile(0.50));
    out += ", \"p95\": ";
    appendDouble(out, h.quantile(0.95));
    out += ", \"p99\": ";
    appendDouble(out, h.quantile(0.99));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string metricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string lastFamily;

  for (const auto& [name, value] : snapshot.counters) {
    std::string_view base, labels;
    splitName(name, base, labels);
    appendTypeLine(out, base, "counter", lastFamily);
    std::string v;
    appendU64(v, value);
    appendSeries(out, base, labels, "", "", v);
  }

  lastFamily.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    std::string_view base, labels;
    splitName(name, base, labels);
    appendTypeLine(out, base, "gauge", lastFamily);
    std::string v;
    appendDouble(v, value);
    appendSeries(out, base, labels, "", "", v);
  }

  lastFamily.clear();
  for (const auto& h : snapshot.histograms) {
    std::string_view base, labels;
    splitName(h.name, base, labels);
    appendTypeLine(out, base, "histogram", lastFamily);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      std::string le = "le=\"";
      if (i < h.bounds.size()) {
        appendDouble(le, h.bounds[i]);
      } else {
        le += "+Inf";
      }
      le += '"';
      std::string v;
      appendU64(v, cumulative);
      appendSeries(out, base, labels, "_bucket", le, v);
    }
    std::string sum;
    appendDouble(sum, h.sum);
    appendSeries(out, base, labels, "_sum", "", sum);
    std::string count;
    appendU64(count, h.count);
    appendSeries(out, base, labels, "_count", "", count);
  }
  return out;
}

std::string traceToJson(const QueryTrace& trace) {
  std::string out = "{\"dropped\": ";
  appendU64(out, trace.droppedEvents);
  out += ", \"events\": [";
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    appendJsonEscaped(out, e.name);
    out += "\", \"parent\": ";
    if (e.parent == kNoSpan) {
      out += "-1";
    } else {
      appendU64(out, e.parent);
    }
    out += ", \"start_ns\": ";
    appendU64(out, e.startNs);
    out += ", \"end_ns\": ";
    appendU64(out, e.endNs);
    if (!e.attrs.empty()) {
      out += ", \"attrs\": {";
      for (std::size_t j = 0; j < e.attrs.size(); ++j) {
        if (j != 0) out += ", ";
        out += '"';
        appendJsonEscaped(out, e.attrs[j].first);
        out += "\": ";
        appendDouble(out, e.attrs[j].second);
      }
      out += '}';
    }
    out += '}';
  }
  out += trace.events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

namespace {

/// Track of one event: 0 = coordinator, site + 1 for merged site spans.
/// "site.dead" is the coordinator *observing* a site failure, so it stays
/// on the coordinator track despite the prefix.
std::uint32_t perfettoTid(const TraceEvent& e) {
  const std::string_view name = e.name;
  if (!name.starts_with("site.") || name == "site.dead") return 0;
  for (const auto& [key, value] : e.attrs) {
    if (key == "site") return static_cast<std::uint32_t>(value) + 1;
  }
  return 0;
}

}  // namespace

std::string traceToPerfetto(const QueryTrace& trace) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": "
                    "{\"droppedEvents\": ";
  appendU64(out, trace.droppedEvents);
  out += "}, \"traceEvents\": [";

  // Name the process and every track up front (metadata events).
  std::map<std::uint32_t, std::string> tracks;
  tracks.emplace(0, "coordinator");
  for (const TraceEvent& e : trace.events) {
    const std::uint32_t tid = perfettoTid(e);
    if (tid != 0) {
      tracks.emplace(tid, "site " + std::to_string(tid - 1));
    }
  }
  out += "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"dsud\"}}";
  for (const auto& [tid, label] : tracks) {
    out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": ";
    appendU64(out, tid);
    out += ", \"args\": {\"name\": \"";
    appendJsonEscaped(out, label);
    out += "\"}}";
  }

  for (const TraceEvent& e : trace.events) {
    out += ",\n  {\"name\": \"";
    appendJsonEscaped(out, e.name);
    out += "\", \"cat\": \"dsud\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    appendU64(out, perfettoTid(e));
    out += ", \"ts\": ";
    appendDouble(out, static_cast<double>(e.startNs) / 1e3);
    out += ", \"dur\": ";
    const std::uint64_t end = e.endNs == 0 ? e.startNs : e.endNs;
    appendDouble(out, static_cast<double>(end - e.startNs) / 1e3);
    if (!e.attrs.empty()) {
      out += ", \"args\": {";
      for (std::size_t j = 0; j < e.attrs.size(); ++j) {
        if (j != 0) out += ", ";
        out += '"';
        appendJsonEscaped(out, e.attrs[j].first);
        out += "\": ";
        appendDouble(out, e.attrs[j].second);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dsud::obs
