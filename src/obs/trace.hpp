// Observability: per-query protocol timelines.
//
// A `QueryTrace` is the flat event list of one query run — every protocol
// step (To-Server pull, feedback broadcast, expunge, emit, ...) as a span
// with monotonic start/end timestamps (nanoseconds since the trace began)
// and parent/child nesting.  `Tracer` builds one trace; `TraceSpan` is the
// RAII handle the instrumented code holds.
//
// Cost model: tracing happens at protocol granularity (a handful of events
// per feedback round), never per tuple, so a mutex-guarded append is cheap
// relative to the RPCs it brackets.  A disabled Tracer costs one branch per
// call.  Event count is capped — a runaway query degrades to counting
// dropped events instead of exhausting memory.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsud::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

struct TraceEvent {
  std::string name;
  SpanId parent = kNoSpan;     ///< index into QueryTrace::events, or kNoSpan
  std::uint64_t startNs = 0;   ///< monotonic, relative to trace start
  std::uint64_t endNs = 0;     ///< 0 while the span is still open
  /// Small numeric annotations (site ids, tuple ids, probabilities, counts).
  std::vector<std::pair<std::string, double>> attrs;
};

/// One query's event timeline.  `events` is in span-start order and indexed
/// by SpanId; nesting is reconstructed through `parent`.
struct QueryTrace {
  std::vector<TraceEvent> events;
  std::uint64_t droppedEvents = 0;  ///< spans discarded past the cap

  bool empty() const noexcept { return events.empty(); }
};

/// Builds one QueryTrace.  Thread-safe (the coordinator's parallel feedback
/// broadcast may report spans from pool workers); the *parent* of a new span
/// is the most recent still-open span, which is well-defined because the
/// protocol's structure is sequential at the granularity we trace.
class Tracer {
 public:
  /// Disabled tracer: every operation is a cheap no-op.
  Tracer() noexcept = default;

  /// Enabled tracer retaining at most `maxEvents` spans.
  explicit Tracer(std::size_t maxEvents)
      : enabled_(maxEvents > 0),
        maxEvents_(maxEvents),
        start_(Clock::now()) {}

  bool enabled() const noexcept { return enabled_; }

  /// Opens a span; returns kNoSpan when disabled or past the cap.
  SpanId begin(std::string_view name);

  /// Opens a span under an explicit parent.  Unlike `begin(name)`, the new
  /// span does NOT become the implicit parent of later spans (it never joins
  /// the open-span stack) — this is what concurrent broadcast workers need:
  /// each worker's span hangs off the broadcast span regardless of which
  /// other spans happen to be open when the worker runs.
  SpanId begin(std::string_view name, SpanId parent);

  void end(SpanId id);
  void attr(SpanId id, std::string_view key, double value);

  /// Closes any still-open spans at the current time and moves the trace
  /// out; the tracer is empty (but still enabled) afterwards.
  QueryTrace take();

  /// Copies the trace as-is without clearing it; still-open spans keep
  /// endNs == 0.  Used for idempotent reads (retryable kFetchTrace).
  QueryTrace snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::uint64_t nowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  bool enabled_ = false;
  std::size_t maxEvents_ = 0;
  Clock::time_point start_{};
  mutable std::mutex mutex_;
  QueryTrace trace_;
  std::vector<SpanId> openStack_;
};

/// RAII span: opens on construction, closes on destruction.  Move-only.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, std::string_view name)
      : tracer_(&tracer), id_(tracer.begin(name)) {}

  /// Explicit-parent span (see Tracer::begin(name, parent)).
  TraceSpan(Tracer& tracer, std::string_view name, SpanId parent)
      : tracer_(&tracer), id_(tracer.begin(name, parent)) {}

  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        id_(std::exchange(other.id_, kNoSpan)) {}
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      close();
      tracer_ = std::exchange(other.tracer_, nullptr);
      id_ = std::exchange(other.id_, kNoSpan);
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { close(); }

  void attr(std::string_view key, double value) {
    if (tracer_ != nullptr) tracer_->attr(id_, key, value);
  }

  /// The underlying span id (kNoSpan when tracing is disabled) — pass it as
  /// the explicit parent of spans opened on other threads.
  SpanId id() const noexcept { return id_; }

  /// Ends the span now (idempotent; the destructor becomes a no-op).
  void close() {
    if (tracer_ != nullptr) {
      tracer_->end(id_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace dsud::obs
