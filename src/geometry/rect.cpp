#include "geometry/rect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dsud {

Rect::Rect(std::size_t dims) : dims_(dims), empty_(true) {
  if (dims == 0 || dims > kMaxDims) {
    throw std::invalid_argument("Rect: dims out of [1, kMaxDims]");
  }
  lo_.fill(std::numeric_limits<double>::infinity());
  hi_.fill(-std::numeric_limits<double>::infinity());
}

Rect Rect::point(std::span<const double> p) {
  Rect r(p.size());
  r.expand(p);
  return r;
}

void Rect::expand(std::span<const double> p) noexcept {
  for (std::size_t j = 0; j < dims_; ++j) {
    lo_[j] = std::min(lo_[j], p[j]);
    hi_[j] = std::max(hi_[j], p[j]);
  }
  empty_ = false;
}

void Rect::expand(const Rect& r) noexcept {
  if (r.empty_) return;
  for (std::size_t j = 0; j < dims_; ++j) {
    lo_[j] = std::min(lo_[j], r.lo_[j]);
    hi_[j] = std::max(hi_[j], r.hi_[j]);
  }
  empty_ = false;
}

bool Rect::containsPoint(std::span<const double> p) const noexcept {
  if (empty_) return false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if (p[j] < lo_[j] || p[j] > hi_[j]) return false;
  }
  return true;
}

bool Rect::containsRect(const Rect& r) const noexcept {
  if (r.empty_) return true;
  if (empty_) return false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if (r.lo_[j] < lo_[j] || r.hi_[j] > hi_[j]) return false;
  }
  return true;
}

bool Rect::intersects(const Rect& r) const noexcept {
  if (empty_ || r.empty_) return false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if (r.hi_[j] < lo_[j] || r.lo_[j] > hi_[j]) return false;
  }
  return true;
}

double Rect::margin() const noexcept {
  if (empty_) return 0.0;
  double m = 0.0;
  for (std::size_t j = 0; j < dims_; ++j) m += hi_[j] - lo_[j];
  return m;
}

double Rect::area() const noexcept {
  if (empty_) return 0.0;
  double a = 1.0;
  for (std::size_t j = 0; j < dims_; ++j) a *= hi_[j] - lo_[j];
  return a;
}

double Rect::overlapArea(const Rect& r) const noexcept {
  if (empty_ || r.empty_) return 0.0;
  double a = 1.0;
  for (std::size_t j = 0; j < dims_; ++j) {
    const double lo = std::max(lo_[j], r.lo_[j]);
    const double hi = std::min(hi_[j], r.hi_[j]);
    if (hi < lo) return 0.0;
    a *= hi - lo;
  }
  return a;
}

double Rect::enlargement(const Rect& r) const noexcept {
  Rect merged = *this;
  merged.expand(r);
  return merged.area() - area();
}

double Rect::l1Key() const noexcept {
  double s = 0.0;
  for (std::size_t j = 0; j < dims_; ++j) s += lo_[j];
  return s;
}

bool Rect::fullyDominates(std::span<const double> b,
                          DimMask mask) const noexcept {
  if (empty_) return false;
  bool strict = false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if ((mask & (1u << j)) == 0) continue;
    if (hi_[j] > b[j]) return false;
    if (hi_[j] < b[j]) strict = true;
  }
  return strict;
}

bool Rect::possiblyDominates(std::span<const double> b,
                             DimMask mask) const noexcept {
  if (empty_) return false;
  bool strict = false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if ((mask & (1u << j)) == 0) continue;
    if (lo_[j] > b[j]) return false;
    if (lo_[j] < b[j]) strict = true;
  }
  return strict;
}

bool operator==(const Rect& a, const Rect& b) noexcept {
  if (a.dims_ != b.dims_ || a.empty_ != b.empty_) return false;
  if (a.empty_) return true;
  for (std::size_t j = 0; j < a.dims_; ++j) {
    if (a.lo_[j] != b.lo_[j] || a.hi_[j] != b.hi_[j]) return false;
  }
  return true;
}

}  // namespace dsud
