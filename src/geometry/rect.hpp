// Axis-aligned minimum bounding rectangles with inline storage.
//
// Rects are the workhorse of the PR-tree: node MBRs, window queries, and the
// dominance-region tests that power both BBS candidate pruning and aggregate
// dominance-product descent.  Storage is a fixed `std::array<double, kMaxDims>`
// pair so tree nodes never allocate per-entry.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "geometry/dominance.hpp"

namespace dsud {

/// Axis-aligned box [lo, hi] in up to kMaxDims dimensions.
///
/// A default-constructed or freshly `Rect(dims)`-constructed rect is *empty*
/// (inverted bounds); expanding it with the first point makes it a point box.
class Rect {
 public:
  Rect() : Rect(1) {}

  /// Empty rect of the given dimensionality.  Throws std::invalid_argument
  /// unless 1 <= dims <= kMaxDims (untrusted dimension counts arrive from
  /// the wire, so this is a real boundary, not an assert).
  explicit Rect(std::size_t dims);

  /// Degenerate rect covering exactly `p`.
  static Rect point(std::span<const double> p);

  std::size_t dims() const noexcept { return dims_; }
  bool isEmpty() const noexcept { return empty_; }

  double lo(std::size_t j) const noexcept { return lo_[j]; }
  double hi(std::size_t j) const noexcept { return hi_[j]; }
  std::span<const double> loSpan() const noexcept { return {lo_.data(), dims_}; }
  std::span<const double> hiSpan() const noexcept { return {hi_.data(), dims_}; }

  /// Grows to cover `p` / `r`.
  void expand(std::span<const double> p) noexcept;
  void expand(const Rect& r) noexcept;

  bool containsPoint(std::span<const double> p) const noexcept;
  bool containsRect(const Rect& r) const noexcept;
  bool intersects(const Rect& r) const noexcept;

  /// Sum of side lengths (R*-split margin criterion).  0 for empty rects.
  double margin() const noexcept;

  /// Product of side lengths.  0 for empty rects.
  double area() const noexcept;

  /// Area of the intersection with `r` (0 when disjoint).
  double overlapArea(const Rect& r) const noexcept;

  /// area(this ∪ r) − area(this): the R-tree insertion criterion.
  double enlargement(const Rect& r) const noexcept;

  /// Σ_j lo_j: a lower bound on the coordinate sum of any contained point.
  /// Monotone under dominance, so it is the BBS heap key (paper Sec. 6.2 uses
  /// "mindist to the origin"; the raw coordinate sum is the sign-robust
  /// equivalent).
  double l1Key() const noexcept;

  /// True iff *every* point of this rect dominates `b` on the selected
  /// dimensions: hi <= b everywhere and hi < b somewhere.
  bool fullyDominates(std::span<const double> b, DimMask mask) const noexcept;

  /// True iff *some* point of this rect could dominate `b`: lo ≺ b.  When
  /// false the rect can be skipped in dominance queries.
  bool possiblyDominates(std::span<const double> b, DimMask mask) const noexcept;

  friend bool operator==(const Rect& a, const Rect& b) noexcept;

 private:
  std::array<double, kMaxDims> lo_;
  std::array<double, kMaxDims> hi_;
  std::size_t dims_;
  bool empty_;
};

}  // namespace dsud
