// Pareto dominance over d-dimensional tuples, full-space and subspace.
//
// Convention (paper Sec. 3.1): smaller is better on every dimension.  Tuple
// `a` dominates `b` (written a ≺ b) iff a_j <= b_j on every dimension and
// a_j < b_j on at least one.  Subspace queries (paper Sec. 4) restrict the
// comparison to a caller-chosen subset of dimensions, encoded as a bitmask.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dsud {

/// Bit j set means dimension j participates in the comparison.
using DimMask = std::uint32_t;

/// Maximum supported dimensionality (bounded so MBRs can use inline storage).
inline constexpr std::size_t kMaxDims = 8;

/// Mask value meaning "every dimension of the operand" — the default of
/// SkylineSpec and the wire protocol's unset-mask convention.
inline constexpr DimMask kAllDims = 0;

/// Mask selecting all of the first `dims` dimensions.  `dims` must be in
/// [0, kMaxDims]; larger values fail the assert (and fail to compile in a
/// constant-evaluated context) instead of silently shifting past the mask
/// width.
constexpr DimMask fullMask(std::size_t dims) noexcept {
  assert(dims <= kMaxDims && "fullMask: dims exceeds kMaxDims");
  return static_cast<DimMask>((1u << dims) - 1u);
}

/// Resolves the kAllDims sentinel against a concrete dimensionality.
constexpr DimMask effectiveMask(DimMask mask, std::size_t dims) noexcept {
  return mask == kAllDims ? fullMask(dims) : mask;
}

/// Number of dimensions selected by `mask`.
constexpr std::size_t maskSize(DimMask mask) noexcept {
  return static_cast<std::size_t>(std::popcount(mask));
}

/// Mutual relation of two tuples under a dimension mask.
enum class DomRelation {
  kDominates,    ///< a ≺ b
  kDominatedBy,  ///< b ≺ a
  kEqual,        ///< equal on every selected dimension
  kIncomparable  ///< neither dominates
};

/// a ≺ b on the selected dimensions.  Spans must have equal size and cover
/// every selected dimension.
inline bool dominates(std::span<const double> a, std::span<const double> b,
                      DimMask mask) noexcept {
  bool strict = false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if ((mask & (1u << j)) == 0) continue;
    if (a[j] > b[j]) return false;
    if (a[j] < b[j]) strict = true;
  }
  return strict;
}

/// a ≺ b on all dimensions.
inline bool dominates(std::span<const double> a,
                      std::span<const double> b) noexcept {
  return dominates(a, b, fullMask(a.size()));
}

/// Full relation; useful when one comparison must branch three ways.
inline DomRelation compare(std::span<const double> a, std::span<const double> b,
                           DimMask mask) noexcept {
  bool aBelow = false;  // a strictly smaller somewhere
  bool bBelow = false;  // b strictly smaller somewhere
  for (std::size_t j = 0; j < a.size(); ++j) {
    if ((mask & (1u << j)) == 0) continue;
    if (a[j] < b[j]) {
      aBelow = true;
    } else if (b[j] < a[j]) {
      bBelow = true;
    }
    if (aBelow && bBelow) return DomRelation::kIncomparable;
  }
  if (aBelow) return DomRelation::kDominates;
  if (bBelow) return DomRelation::kDominatedBy;
  return DomRelation::kEqual;
}

inline DomRelation compare(std::span<const double> a,
                           std::span<const double> b) noexcept {
  return compare(a, b, fullMask(a.size()));
}

}  // namespace dsud
