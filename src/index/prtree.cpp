#include "index/prtree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>

#include "kernel/kernel.hpp"

namespace dsud {

namespace {

constexpr std::size_t kExtentBytes = 64 * 1024;
constexpr std::size_t kNodeAlign = 64;

constexpr std::size_t roundUp(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Arena

void PRTree::ExtentFree::operator()(std::byte* p) const noexcept {
  std::free(p);
}

std::byte* PRTree::at(std::uint32_t node) noexcept {
  return extents_[node / nodesPerExtent_].get() +
         (node % nodesPerExtent_) * stride_;
}
const std::byte* PRTree::at(std::uint32_t node) const noexcept {
  return extents_[node / nodesPerExtent_].get() +
         (node % nodesPerExtent_) * stride_;
}
PRTree::NodeHeader& PRTree::header(std::uint32_t node) noexcept {
  return *reinterpret_cast<NodeHeader*>(at(node));
}
const PRTree::NodeHeader& PRTree::header(std::uint32_t node) const noexcept {
  return *reinterpret_cast<const NodeHeader*>(at(node));
}

std::uint32_t PRTree::allocNode(bool leaf) {
  std::uint32_t idx;
  if (!freeList_.empty()) {
    idx = freeList_.back();
    freeList_.pop_back();
  } else {
    if (allocated_ == extents_.size() * nodesPerExtent_) {
      // stride_ is a 64-byte multiple, so the size honours the
      // aligned_alloc size-multiple-of-alignment requirement.
      void* raw = std::aligned_alloc(kNodeAlign, nodesPerExtent_ * stride_);
      if (raw == nullptr) throw std::bad_alloc();
      extents_.emplace_back(static_cast<std::byte*>(raw));
    }
    idx = allocated_++;
  }
  NodeHeader& h = *new (at(idx)) NodeHeader;
  h.mbr = Rect(dims_);
  h.leaf = leaf ? 1 : 0;
  if (leaf) padLeafSlots(idx, 0);
  return idx;
}

void PRTree::freeNode(std::uint32_t node) { freeList_.push_back(node); }

void PRTree::freeSubtree(std::uint32_t node) {
  if (!header(node).leaf) {
    const std::uint32_t* kids = childArray(node);
    const std::size_t n = header(node).fanout;
    for (std::size_t i = 0; i < n; ++i) freeSubtree(kids[i]);
  }
  freeNode(node);
}

// ---------------------------------------------------------------------------
// Payload access

std::uint32_t* PRTree::childArray(std::uint32_t node) noexcept {
  return reinterpret_cast<std::uint32_t*>(at(node) + childOff_);
}
const std::uint32_t* PRTree::childArray(std::uint32_t node) const noexcept {
  return reinterpret_cast<const std::uint32_t*>(at(node) + childOff_);
}
double* PRTree::leafCol(std::uint32_t node, std::size_t j) noexcept {
  return reinterpret_cast<double*>(at(node) + colOff_) + j * padCap_;
}
const double* PRTree::leafCol(std::uint32_t node, std::size_t j) const noexcept {
  return reinterpret_cast<const double*>(at(node) + colOff_) + j * padCap_;
}
double* PRTree::leafProb(std::uint32_t node) noexcept {
  return reinterpret_cast<double*>(at(node) + probOff_);
}
const double* PRTree::leafProb(std::uint32_t node) const noexcept {
  return reinterpret_cast<const double*>(at(node) + probOff_);
}
double* PRTree::leafLogSurv(std::uint32_t node) noexcept {
  return reinterpret_cast<double*>(at(node) + logOff_);
}
const double* PRTree::leafLogSurv(std::uint32_t node) const noexcept {
  return reinterpret_cast<const double*>(at(node) + logOff_);
}
TupleId* PRTree::leafIds(std::uint32_t node) noexcept {
  return reinterpret_cast<TupleId*>(at(node) + idsOff_);
}
const TupleId* PRTree::leafIds(std::uint32_t node) const noexcept {
  return reinterpret_cast<const TupleId*>(at(node) + idsOff_);
}

// ---------------------------------------------------------------------------
// Leaf slots

void PRTree::padLeafSlots(std::uint32_t node, std::size_t from) noexcept {
  // Padding rows must stay kernel-neutral: +inf coordinates never dominate,
  // prob 0 / logSurv 0 are identities under product and sum accumulation.
  constexpr double kPad = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < dims_; ++j) {
    double* col = leafCol(node, j);
    std::fill(col + from, col + padCap_, kPad);
  }
  double* prob = leafProb(node);
  double* log = leafLogSurv(node);
  std::fill(prob + from, prob + padCap_, 0.0);
  std::fill(log + from, log + padCap_, 0.0);
}

void PRTree::appendLeafEntry(std::uint32_t node, const LeafEntry& e) noexcept {
  NodeHeader& h = header(node);
  const std::size_t slot = h.fanout;
  for (std::size_t j = 0; j < dims_; ++j) leafCol(node, j)[slot] = e.values[j];
  leafProb(node)[slot] = e.prob;
  // -inf when P == 1: a certain dominator zeroes the survival product.
  leafLogSurv(node)[slot] = std::log1p(-e.prob);
  leafIds(node)[slot] = e.id;
  h.fanout = static_cast<std::uint16_t>(slot + 1);
}

void PRTree::removeLeafSlot(std::uint32_t node, std::size_t i) noexcept {
  NodeHeader& h = header(node);
  const std::size_t last = h.fanout - std::size_t{1};
  if (i != last) {
    for (std::size_t j = 0; j < dims_; ++j) {
      leafCol(node, j)[i] = leafCol(node, j)[last];
    }
    leafProb(node)[i] = leafProb(node)[last];
    leafLogSurv(node)[i] = leafLogSurv(node)[last];
    leafIds(node)[i] = leafIds(node)[last];
  }
  h.fanout = static_cast<std::uint16_t>(last);
  padLeafSlots(node, last);
}

PRTree::LeafEntry PRTree::leafEntry(std::uint32_t node,
                                    std::size_t i) const noexcept {
  LeafEntry e;
  for (std::size_t j = 0; j < dims_; ++j) e.values[j] = leafCol(node, j)[i];
  e.prob = leafProb(node)[i];
  e.id = leafIds(node)[i];
  return e;
}

bool PRTree::leafSlotDominates(std::uint32_t node, std::size_t i,
                               std::span<const double> b,
                               DimMask mask) const noexcept {
  bool strict = false;
  for (std::size_t j = 0; j < dims_; ++j) {
    if ((mask & (DimMask{1} << j)) == 0) continue;
    const double a = leafCol(node, j)[i];
    if (a > b[j]) return false;
    if (a < b[j]) strict = true;
  }
  return strict;
}

// ---------------------------------------------------------------------------
// Construction

PRTree::PRTree(PRTree&&) noexcept = default;
PRTree& PRTree::operator=(PRTree&&) noexcept = default;
PRTree::~PRTree() = default;

PRTree::PRTree(std::size_t dims, Options options)
    : dims_(dims), options_(options) {
  if (dims == 0 || dims > kMaxDims) {
    throw std::invalid_argument("PRTree: dims must be in [1, " +
                                std::to_string(kMaxDims) + "]");
  }
  if (options_.maxEntries < 4) {
    throw std::invalid_argument("PRTree: maxEntries must be >= 4");
  }
  if (options_.minEntries < 2 || options_.minEntries > options_.maxEntries / 2) {
    throw std::invalid_argument(
        "PRTree: minEntries must be in [2, maxEntries/2]");
  }

  // Node slot layout: header, then either the child-index array (internal)
  // or the column-major leaf block (dims value columns + prob + logSurv +
  // ids).  One extra slot beyond maxEntries absorbs the transient overflow
  // between insertion and split.
  capSlots_ = options_.maxEntries + 1;
  padCap_ = roundUp(capSlots_, kernel::kBlock);
  const std::size_t payloadOff = roundUp(sizeof(NodeHeader), sizeof(double));
  childOff_ = payloadOff;
  colOff_ = payloadOff;
  probOff_ = colOff_ + dims_ * padCap_ * sizeof(double);
  logOff_ = probOff_ + padCap_ * sizeof(double);
  idsOff_ = logOff_ + padCap_ * sizeof(double);
  const std::size_t leafEnd = idsOff_ + capSlots_ * sizeof(TupleId);
  const std::size_t internalEnd = childOff_ + capSlots_ * sizeof(std::uint32_t);
  stride_ = roundUp(std::max(leafEnd, internalEnd), kNodeAlign);
  nodesPerExtent_ = std::max<std::size_t>(1, kExtentBytes / stride_);
}

PRTree::LeafEntry PRTree::makeEntry(TupleId id, std::span<const double> values,
                                    double prob) const {
  if (values.size() != dims_) {
    throw std::invalid_argument("PRTree: dimensionality mismatch");
  }
  if (!(prob > 0.0) || prob > 1.0) {
    throw std::invalid_argument("PRTree: probability must be in (0, 1]");
  }
  LeafEntry e;
  std::copy(values.begin(), values.end(), e.values.begin());
  e.prob = prob;
  e.id = id;
  return e;
}

void PRTree::recomputeAggregates(std::uint32_t node) {
  NodeHeader& h = header(node);
  h.mbr = Rect(dims_);
  h.pMin = 1.0;
  h.pMax = 0.0;
  h.survival = 1.0;
  h.count = 0;
  if (h.leaf) {
    // Scalar-sequential in slot order: node aggregates are maintained
    // identically in SIMD and scalar builds.
    for (std::size_t i = 0; i < h.fanout; ++i) {
      double point[kMaxDims];
      for (std::size_t j = 0; j < dims_; ++j) point[j] = leafCol(node, j)[i];
      h.mbr.expand(std::span<const double>(point, dims_));
      const double p = leafProb(node)[i];
      h.pMin = std::min(h.pMin, p);
      h.pMax = std::max(h.pMax, p);
      h.survival *= 1.0 - p;
      ++h.count;
    }
  } else {
    const std::uint32_t* kids = childArray(node);
    for (std::size_t i = 0; i < h.fanout; ++i) {
      const NodeHeader& c = header(kids[i]);
      h.mbr.expand(c.mbr);
      h.pMin = std::min(h.pMin, c.pMin);
      h.pMax = std::max(h.pMax, c.pMax);
      h.survival *= c.survival;
      h.count += c.count;
    }
  }
}

// ---------------------------------------------------------------------------
// STR bulk load

namespace {

/// Sort-tile-recursive packing: partitions `items` into groups of at most
/// `cap` and (except when the whole input is smaller) at least `minFill`,
/// tiling one dimension per recursion level.  `coord(item, dim)` must return
/// the sort key on the given dimension.  Requires cap >= 2 * minFill, which
/// PRTreeOptions enforces, so undersized tails can always be rebalanced.
template <typename Item, typename Coord>
void strPack(std::vector<Item>& items, std::size_t begin, std::size_t end,
             std::size_t dim, std::size_t dims, std::size_t cap,
             std::size_t minFill, const Coord& coord,
             std::vector<std::pair<std::size_t, std::size_t>>& groups) {
  const std::size_t n = end - begin;
  if (n <= cap) {
    groups.emplace_back(begin, end);
    return;
  }
  const auto cmp = [&](const Item& a, const Item& b) {
    return coord(a, dim) < coord(b, dim);
  };
  std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin),
            items.begin() + static_cast<std::ptrdiff_t>(end), cmp);
  const std::size_t remainingDims = dims - dim;
  if (remainingDims <= 1) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t rem = end - i;
      if (rem <= cap) {
        groups.emplace_back(i, end);
        break;
      }
      if (rem < cap + minFill) {
        // A plain cap-sized chunk would leave an underfull tail; split the
        // remainder evenly (both halves land in [minFill, cap]).
        const std::size_t half = rem / 2;
        groups.emplace_back(i, i + half);
        groups.emplace_back(i + half, end);
        break;
      }
      groups.emplace_back(i, i + cap);
      i += cap;
    }
    return;
  }
  const auto pages = static_cast<double>((n + cap - 1) / cap);
  const auto slabCount = static_cast<std::size_t>(std::max(
      1.0, std::ceil(std::pow(pages, 1.0 / static_cast<double>(remainingDims)))));
  const std::size_t slabSize = std::max<std::size_t>(
      cap, (n + slabCount - 1) / slabCount);
  std::size_t i = begin;
  while (i < end) {
    // Absorb a tail too small to stand alone into the current slab.
    std::size_t take = std::min(slabSize, end - i);
    if (end - i - take < minFill) take = end - i;
    strPack(items, i, i + take, dim + 1, dims, cap, minFill, coord, groups);
    i += take;
  }
}

}  // namespace

PRTree PRTree::bulkLoad(const Dataset& data, Options options) {
  PRTree tree(data.dims(), options);
  const std::size_t dims = data.dims();
  const std::size_t cap = options.maxEntries;

  if (data.empty()) return tree;

  std::vector<LeafEntry> items;
  items.reserve(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    items.push_back(tree.makeEntry(data.id(row), data.values(row),
                                   data.prob(row)));
  }

  // Pack tuples into leaves.
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  strPack(items, 0, items.size(), 0, dims, cap, options.minEntries,
          [](const LeafEntry& e, std::size_t dim) { return e.values[dim]; },
          groups);

  std::vector<std::uint32_t> level;
  level.reserve(groups.size());
  for (const auto& [b, e] : groups) {
    const std::uint32_t node = tree.allocNode(/*leaf=*/true);
    for (std::size_t i = b; i < e; ++i) tree.appendLeafEntry(node, items[i]);
    tree.recomputeAggregates(node);
    level.push_back(node);
  }
  tree.height_ = 1;

  // Pack nodes into parent levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> nodeGroups;
    strPack(level, 0, level.size(), 0, dims, cap, options.minEntries,
            [&tree](std::uint32_t n, std::size_t dim) {
              const Rect& mbr = tree.header(n).mbr;
              return 0.5 * (mbr.lo(dim) + mbr.hi(dim));
            },
            nodeGroups);
    std::vector<std::uint32_t> parents;
    parents.reserve(nodeGroups.size());
    for (const auto& [b, e] : nodeGroups) {
      const std::uint32_t parent = tree.allocNode(/*leaf=*/false);
      NodeHeader& h = tree.header(parent);
      std::uint32_t* kids = tree.childArray(parent);
      for (std::size_t i = b; i < e; ++i) {
        kids[h.fanout++] = level[i];
      }
      tree.recomputeAggregates(parent);
      parents.push_back(parent);
    }
    level = std::move(parents);
    ++tree.height_;
  }

  tree.root_ = level.front();
  tree.size_ = data.size();
  return tree;
}

// ---------------------------------------------------------------------------
// Insert

std::uint32_t PRTree::split(std::uint32_t node) {
  NodeHeader& h = header(node);
  const std::size_t total = h.fanout;
  const std::size_t minE = options_.minEntries;
  const bool leaf = h.leaf != 0;

  // Snapshot the routing items (leaf rows or child indices) so the node can
  // be rebuilt in place below.
  std::vector<LeafEntry> entries;
  std::vector<std::uint32_t> kids;
  std::vector<Rect> rects;
  rects.reserve(total);
  if (leaf) {
    entries.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      entries.push_back(leafEntry(node, i));
      rects.push_back(Rect::point(entries.back().valueSpan(dims_)));
    }
  } else {
    kids.assign(childArray(node), childArray(node) + total);
    for (std::uint32_t c : kids) rects.push_back(header(c).mbr);
  }

  // R*-style: pick the axis with the smallest margin sum over all valid
  // distributions, then the split index with the smallest overlap (ties:
  // smallest combined area).
  std::vector<std::size_t> bestOrder;
  std::size_t bestIndex = minE;
  double bestOverlap = std::numeric_limits<double>::infinity();
  double bestArea = std::numeric_limits<double>::infinity();
  double bestMarginSum = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> order(total);
  std::vector<Rect> prefix(total, Rect(dims_));
  std::vector<Rect> suffix(total, Rect(dims_));

  for (std::size_t axis = 0; axis < dims_; ++axis) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (rects[a].lo(axis) != rects[b].lo(axis)) {
        return rects[a].lo(axis) < rects[b].lo(axis);
      }
      return rects[a].hi(axis) < rects[b].hi(axis);
    });
    Rect acc(dims_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.expand(rects[order[i]]);
      prefix[i] = acc;
    }
    acc = Rect(dims_);
    for (std::size_t i = total; i-- > 0;) {
      acc.expand(rects[order[i]]);
      suffix[i] = acc;
    }
    double marginSum = 0.0;
    for (std::size_t k = minE; k + minE <= total; ++k) {
      marginSum += prefix[k - 1].margin() + suffix[k].margin();
    }
    if (marginSum < bestMarginSum) {
      bestMarginSum = marginSum;
      bestOrder = order;
    }
  }

  // Recompute prefix/suffix on the winning axis order.
  {
    Rect acc(dims_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.expand(rects[bestOrder[i]]);
      prefix[i] = acc;
    }
    acc = Rect(dims_);
    for (std::size_t i = total; i-- > 0;) {
      acc.expand(rects[bestOrder[i]]);
      suffix[i] = acc;
    }
  }
  for (std::size_t k = minE; k + minE <= total; ++k) {
    const double overlap = prefix[k - 1].overlapArea(suffix[k]);
    const double area = prefix[k - 1].area() + suffix[k].area();
    if (overlap < bestOverlap ||
        (overlap == bestOverlap && area < bestArea)) {
      bestOverlap = overlap;
      bestArea = area;
      bestIndex = k;
    }
  }

  const std::uint32_t sibling = allocNode(leaf);
  // allocNode may grow the arena; re-fetch the header reference.
  NodeHeader& hh = header(node);
  if (leaf) {
    hh.fanout = 0;
    padLeafSlots(node, 0);
    for (std::size_t i = 0; i < bestIndex; ++i) {
      appendLeafEntry(node, entries[bestOrder[i]]);
    }
    for (std::size_t i = bestIndex; i < total; ++i) {
      appendLeafEntry(sibling, entries[bestOrder[i]]);
    }
  } else {
    std::uint32_t* left = childArray(node);
    std::uint32_t* right = childArray(sibling);
    for (std::size_t i = 0; i < bestIndex; ++i) {
      left[i] = kids[bestOrder[i]];
    }
    hh.fanout = static_cast<std::uint16_t>(bestIndex);
    NodeHeader& sh = header(sibling);
    for (std::size_t i = bestIndex; i < total; ++i) {
      right[sh.fanout++] = kids[bestOrder[i]];
    }
  }
  recomputeAggregates(node);
  recomputeAggregates(sibling);
  return sibling;
}

std::uint32_t PRTree::insertRecurse(std::uint32_t node, const LeafEntry& e) {
  if (header(node).leaf) {
    appendLeafEntry(node, e);
  } else {
    // Choose the child needing the least enlargement (ties: smaller area,
    // then fewer tuples).
    const Rect point = Rect::point(e.valueSpan(dims_));
    std::uint32_t best = kNoNode;
    double bestEnlargement = std::numeric_limits<double>::infinity();
    double bestArea = std::numeric_limits<double>::infinity();
    std::size_t bestCount = 0;
    const std::uint32_t* kids = childArray(node);
    const std::size_t n = header(node).fanout;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeHeader& c = header(kids[i]);
      const double enlargement = c.mbr.enlargement(point);
      const double area = c.mbr.area();
      if (enlargement < bestEnlargement ||
          (enlargement == bestEnlargement &&
           (area < bestArea ||
            (area == bestArea && c.count < bestCount)))) {
        best = kids[i];
        bestEnlargement = enlargement;
        bestArea = area;
        bestCount = c.count;
      }
    }
    const std::uint32_t sibling = insertRecurse(best, e);
    if (sibling != kNoNode) {
      NodeHeader& h = header(node);
      childArray(node)[h.fanout++] = sibling;
    }
  }
  if (header(node).fanout > options_.maxEntries) {
    return split(node);  // split() recomputes both halves
  }
  recomputeAggregates(node);
  return kNoNode;
}

void PRTree::growRootIfSplit(std::uint32_t sibling) {
  if (sibling == kNoNode) return;
  const std::uint32_t newRoot = allocNode(/*leaf=*/false);
  NodeHeader& h = header(newRoot);
  std::uint32_t* kids = childArray(newRoot);
  kids[0] = root_;
  kids[1] = sibling;
  h.fanout = 2;
  recomputeAggregates(newRoot);
  root_ = newRoot;
  ++height_;
}

void PRTree::insert(TupleId id, std::span<const double> values, double prob) {
  const LeafEntry e = makeEntry(id, values, prob);
  if (root_ == kNoNode) {
    root_ = allocNode(/*leaf=*/true);
    height_ = 1;
  }
  growRootIfSplit(insertRecurse(root_, e));
  ++size_;
}

// ---------------------------------------------------------------------------
// Delete

void PRTree::collectEntries(std::uint32_t node,
                            std::vector<LeafEntry>& out) const {
  const NodeHeader& h = header(node);
  if (h.leaf) {
    for (std::size_t i = 0; i < h.fanout; ++i) out.push_back(leafEntry(node, i));
  } else {
    const std::uint32_t* kids = childArray(node);
    for (std::size_t i = 0; i < h.fanout; ++i) collectEntries(kids[i], out);
  }
}

bool PRTree::eraseRecurse(std::uint32_t node, TupleId id,
                          std::span<const double> values,
                          std::vector<LeafEntry>& orphans) {
  NodeHeader& h = header(node);
  if (h.leaf) {
    for (std::size_t i = 0; i < h.fanout; ++i) {
      if (leafIds(node)[i] != id) continue;
      bool match = true;
      for (std::size_t j = 0; j < dims_; ++j) {
        if (leafCol(node, j)[i] != values[j]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      removeLeafSlot(node, i);
      recomputeAggregates(node);
      return true;
    }
    return false;
  }
  std::uint32_t* kids = childArray(node);
  for (std::size_t i = 0; i < h.fanout; ++i) {
    const std::uint32_t child = kids[i];
    if (!header(child).mbr.containsPoint(values)) continue;
    if (!eraseRecurse(child, id, values, orphans)) continue;
    if (header(child).fanout < options_.minEntries) {
      // Condense: orphan the whole subtree for reinsertion.
      collectEntries(child, orphans);
      freeSubtree(child);
      kids[i] = kids[h.fanout - 1];
      --h.fanout;
    }
    recomputeAggregates(node);
    return true;
  }
  return false;
}

bool PRTree::erase(TupleId id, std::span<const double> values) {
  if (values.size() != dims_) {
    throw std::invalid_argument("PRTree::erase: dimensionality mismatch");
  }
  if (root_ == kNoNode) return false;
  std::vector<LeafEntry> orphans;
  if (!eraseRecurse(root_, id, values, orphans)) return false;
  --size_;

  // Shrink the root while it is an internal node with a single child.
  while (!header(root_).leaf && header(root_).fanout == 1) {
    const std::uint32_t old = root_;
    root_ = childArray(old)[0];
    freeNode(old);
    --height_;
  }
  if (header(root_).leaf && header(root_).fanout == 0 && orphans.empty()) {
    freeNode(root_);
    root_ = kNoNode;
    height_ = 0;
  }

  // Reinsert orphaned tuples (their subtree was dissolved).
  for (const LeafEntry& e : orphans) {
    if (root_ == kNoNode) {
      root_ = allocNode(/*leaf=*/true);
      height_ = 1;
    }
    growRootIfSplit(insertRecurse(root_, e));
  }
  return true;
}

void PRTree::clear() {
  extents_.clear();
  freeList_.clear();
  allocated_ = 0;
  root_ = kNoNode;
  size_ = 0;
  height_ = 0;
}

// ---------------------------------------------------------------------------
// Queries

double PRTree::survivalDescend(std::uint32_t node, std::span<const double> b,
                               DimMask mask, const Rect* clip) const {
  ++nodeAccesses_;
  const NodeHeader& h = header(node);
  if (!h.mbr.possiblyDominates(b, mask)) return 1.0;
  if (clip != nullptr && !h.mbr.intersects(*clip)) return 1.0;
  const bool insideClip = clip == nullptr || clip->containsRect(h.mbr);
  if (insideClip && h.mbr.fullyDominates(b, mask)) return h.survival;
  if (h.leaf) {
    // Partially dominating leaf: resolve per-row via the blocked kernel.
    // The columns already carry kernel-neutral padding, so whole blocks run
    // with no tail handling.
    std::array<const double*, kMaxDims> cols;
    for (std::size_t j = 0; j < dims_; ++j) cols[j] = leafCol(node, j);
    const kernel::SoaBlock block{cols.data(), leafProb(node),
                                 leafLogSurv(node),  h.fanout,
                                 padCap_,            dims_};
    const double* lo = insideClip ? nullptr : clip->loSpan().data();
    const double* hi = insideClip ? nullptr : clip->hiSpan().data();
    return kernel::blockSurvival(block, b.data(), mask, lo, hi);
  }
  double product = 1.0;
  const std::uint32_t* kids = childArray(node);
  for (std::size_t i = 0; i < h.fanout; ++i) {
    product *= survivalDescend(kids[i], b, mask, clip);
  }
  return product;
}

double PRTree::dominanceSurvival(std::span<const double> b, DimMask mask,
                                 const Rect* clip) const {
  if (b.size() != dims_) {
    throw std::invalid_argument("PRTree::dominanceSurvival: bad query dims");
  }
  if (root_ == kNoNode) return 1.0;
  return survivalDescend(root_, b, mask, clip);
}

void PRTree::forEachDominating(
    std::span<const double> b, DimMask mask,
    const std::function<void(const LeafEntry&)>& fn) const {
  if (b.size() != dims_) {
    throw std::invalid_argument("PRTree::forEachDominating: bad query dims");
  }
  if (root_ == kNoNode) return;
  const std::function<void(std::uint32_t)> descend = [&](std::uint32_t node) {
    ++nodeAccesses_;
    const NodeHeader& h = header(node);
    if (!h.mbr.possiblyDominates(b, mask)) return;
    if (h.leaf) {
      for (std::size_t i = 0; i < h.fanout; ++i) {
        if (leafSlotDominates(node, i, b, mask)) fn(leafEntry(node, i));
      }
    } else {
      const std::uint32_t* kids = childArray(node);
      for (std::size_t i = 0; i < h.fanout; ++i) descend(kids[i]);
    }
  };
  descend(root_);
}

void PRTree::windowQuery(
    const Rect& window, const std::function<void(const LeafEntry&)>& fn) const {
  if (root_ == kNoNode) return;
  const std::function<void(std::uint32_t)> descend = [&](std::uint32_t node) {
    ++nodeAccesses_;
    const NodeHeader& h = header(node);
    if (!h.mbr.intersects(window)) return;
    if (h.leaf) {
      for (std::size_t i = 0; i < h.fanout; ++i) {
        bool inside = true;
        for (std::size_t j = 0; j < dims_; ++j) {
          const double v = leafCol(node, j)[i];
          if (v < window.lo(j) || v > window.hi(j)) {
            inside = false;
            break;
          }
        }
        if (inside) fn(leafEntry(node, i));
      }
    } else {
      const std::uint32_t* kids = childArray(node);
      for (std::size_t i = 0; i < h.fanout; ++i) descend(kids[i]);
    }
  };
  descend(root_);
}

void PRTree::forEach(const std::function<void(const LeafEntry&)>& fn) const {
  if (root_ == kNoNode) return;
  const std::function<void(std::uint32_t)> descend = [&](std::uint32_t node) {
    const NodeHeader& h = header(node);
    if (h.leaf) {
      for (std::size_t i = 0; i < h.fanout; ++i) fn(leafEntry(node, i));
    } else {
      const std::uint32_t* kids = childArray(node);
      for (std::size_t i = 0; i < h.fanout; ++i) descend(kids[i]);
    }
  };
  descend(root_);
}

// ---------------------------------------------------------------------------
// NodeRef

bool PRTree::NodeRef::isLeaf() const noexcept {
  return tree_->header(node_).leaf != 0;
}
const Rect& PRTree::NodeRef::mbr() const noexcept {
  return tree_->header(node_).mbr;
}
double PRTree::NodeRef::pMin() const noexcept {
  return tree_->header(node_).pMin;
}
double PRTree::NodeRef::pMax() const noexcept {
  return tree_->header(node_).pMax;
}
double PRTree::NodeRef::survival() const noexcept {
  return tree_->header(node_).survival;
}
std::size_t PRTree::NodeRef::count() const noexcept {
  return tree_->header(node_).count;
}
std::size_t PRTree::NodeRef::fanout() const noexcept {
  return tree_->header(node_).fanout;
}
PRTree::NodeRef PRTree::NodeRef::child(std::size_t i) const noexcept {
  return NodeRef(tree_, tree_->childArray(node_)[i]);
}
PRTree::LeafEntry PRTree::NodeRef::entry(std::size_t i) const noexcept {
  return tree_->leafEntry(node_, i);
}

PRTree::NodeRef PRTree::root() const noexcept { return NodeRef(this, root_); }

std::size_t PRTree::height() const noexcept { return height_; }

// ---------------------------------------------------------------------------
// Invariant checking

void PRTree::checkInvariants() const {
  if (root_ == kNoNode) {
    if (size_ != 0 || height_ != 0) {
      throw std::logic_error("PRTree: empty tree with nonzero size/height");
    }
    return;
  }

  const auto closeEnough = [](double a, double b) {
    return std::abs(a - b) <= 1e-12 + 1e-9 * std::abs(b);
  };

  std::size_t tuples = 0;
  // Returns subtree depth.
  const std::function<std::size_t(std::uint32_t, bool)> check =
      [&](std::uint32_t node, bool isRoot) -> std::size_t {
    const NodeHeader& h = header(node);
    const std::size_t fanout = h.fanout;
    if (!isRoot && fanout < options_.minEntries) {
      throw std::logic_error("PRTree: underfull non-root node");
    }
    if (fanout > options_.maxEntries) {
      throw std::logic_error("PRTree: overfull node");
    }
    if (isRoot && !h.leaf && fanout < 2) {
      throw std::logic_error("PRTree: internal root with < 2 children");
    }

    std::size_t depth = 1;
    if (h.leaf) {
      tuples += fanout;
    } else {
      std::size_t childDepth = 0;
      const std::uint32_t* kids = childArray(node);
      for (std::size_t i = 0; i < fanout; ++i) {
        const std::size_t d = check(kids[i], false);
        if (childDepth == 0) {
          childDepth = d;
        } else if (childDepth != d) {
          throw std::logic_error("PRTree: leaves at different depths");
        }
        if (!h.mbr.containsRect(header(kids[i]).mbr)) {
          throw std::logic_error("PRTree: child MBR escapes parent MBR");
        }
      }
      depth = childDepth + 1;
    }

    // Recompute aggregates from scratch.
    Rect mbr(dims_);
    double pMin = 1.0;
    double pMax = 0.0;
    double survival = 1.0;
    std::size_t count = 0;
    if (h.leaf) {
      for (std::size_t i = 0; i < fanout; ++i) {
        const LeafEntry e = leafEntry(node, i);
        mbr.expand(e.valueSpan(dims_));
        pMin = std::min(pMin, e.prob);
        pMax = std::max(pMax, e.prob);
        survival *= 1.0 - e.prob;
        ++count;
        if (leafLogSurv(node)[i] != std::log1p(-e.prob)) {
          throw std::logic_error("PRTree: stale logSurv column");
        }
      }
      // Padding slots must stay kernel-neutral.
      for (std::size_t i = fanout; i < padCap_; ++i) {
        for (std::size_t j = 0; j < dims_; ++j) {
          if (leafCol(node, j)[i] !=
              std::numeric_limits<double>::infinity()) {
            throw std::logic_error("PRTree: leaf padding coordinate not +inf");
          }
        }
        if (leafProb(node)[i] != 0.0 || leafLogSurv(node)[i] != 0.0) {
          throw std::logic_error("PRTree: leaf padding prob/logSurv not 0");
        }
      }
    } else {
      const std::uint32_t* kids = childArray(node);
      for (std::size_t i = 0; i < fanout; ++i) {
        const NodeHeader& c = header(kids[i]);
        mbr.expand(c.mbr);
        pMin = std::min(pMin, c.pMin);
        pMax = std::max(pMax, c.pMax);
        survival *= c.survival;
        count += c.count;
      }
    }
    if (!(mbr == h.mbr)) {
      throw std::logic_error("PRTree: stale MBR aggregate");
    }
    if (count != h.count) {
      throw std::logic_error("PRTree: stale count aggregate");
    }
    if (count > 0 && (!closeEnough(pMin, h.pMin) ||
                      !closeEnough(pMax, h.pMax))) {
      throw std::logic_error("PRTree: stale probability aggregates");
    }
    if (!closeEnough(survival, h.survival)) {
      throw std::logic_error("PRTree: stale survival aggregate");
    }
    return depth;
  };

  const std::size_t depth = check(root_, true);
  if (depth != height_) {
    throw std::logic_error("PRTree: height bookkeeping mismatch");
  }
  if (tuples != size_) {
    throw std::logic_error("PRTree: size bookkeeping mismatch");
  }
}

}  // namespace dsud
