#include "index/prtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace dsud {

// ---------------------------------------------------------------------------
// Node layout

struct PRTree::Node {
  Rect mbr;
  double pMin = 1.0;      // paper's P1
  double pMax = 0.0;      // paper's P2
  double survival = 1.0;  // Π (1 − P) over the subtree
  std::size_t count = 0;
  bool leaf = true;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes
  std::vector<LeafEntry> entries;               // leaf nodes

  explicit Node(std::size_t dims, bool isLeaf) : mbr(dims), leaf(isLeaf) {}
};

// ---------------------------------------------------------------------------
// Construction

PRTree::PRTree(PRTree&&) noexcept = default;
PRTree& PRTree::operator=(PRTree&&) noexcept = default;
PRTree::~PRTree() = default;

PRTree::PRTree(std::size_t dims, Options options)
    : dims_(dims), options_(options) {
  if (dims == 0 || dims > kMaxDims) {
    throw std::invalid_argument("PRTree: dims must be in [1, " +
                                std::to_string(kMaxDims) + "]");
  }
  if (options_.maxEntries < 4) {
    throw std::invalid_argument("PRTree: maxEntries must be >= 4");
  }
  if (options_.minEntries < 2 || options_.minEntries > options_.maxEntries / 2) {
    throw std::invalid_argument(
        "PRTree: minEntries must be in [2, maxEntries/2]");
  }
}

PRTree::LeafEntry PRTree::makeEntry(TupleId id, std::span<const double> values,
                                    double prob) const {
  if (values.size() != dims_) {
    throw std::invalid_argument("PRTree: dimensionality mismatch");
  }
  if (!(prob > 0.0) || prob > 1.0) {
    throw std::invalid_argument("PRTree: probability must be in (0, 1]");
  }
  LeafEntry e;
  std::copy(values.begin(), values.end(), e.values.begin());
  e.prob = prob;
  e.id = id;
  return e;
}

void PRTree::recomputeAggregates(Node& node) const {
  node.mbr = Rect(dims_);
  node.pMin = 1.0;
  node.pMax = 0.0;
  node.survival = 1.0;
  node.count = 0;
  if (node.leaf) {
    for (const LeafEntry& e : node.entries) {
      node.mbr.expand(e.valueSpan(dims_));
      node.pMin = std::min(node.pMin, e.prob);
      node.pMax = std::max(node.pMax, e.prob);
      node.survival *= 1.0 - e.prob;
      ++node.count;
    }
  } else {
    for (const auto& child : node.children) {
      node.mbr.expand(child->mbr);
      node.pMin = std::min(node.pMin, child->pMin);
      node.pMax = std::max(node.pMax, child->pMax);
      node.survival *= child->survival;
      node.count += child->count;
    }
  }
}

// ---------------------------------------------------------------------------
// STR bulk load

namespace {

/// Sort-tile-recursive packing: partitions `items` into groups of at most
/// `cap` and (except when the whole input is smaller) at least `minFill`,
/// tiling one dimension per recursion level.  `coord(item, dim)` must return
/// the sort key on the given dimension.  Requires cap >= 2 * minFill, which
/// PRTreeOptions enforces, so undersized tails can always be rebalanced.
template <typename Item, typename Coord>
void strPack(std::vector<Item>& items, std::size_t begin, std::size_t end,
             std::size_t dim, std::size_t dims, std::size_t cap,
             std::size_t minFill, const Coord& coord,
             std::vector<std::pair<std::size_t, std::size_t>>& groups) {
  const std::size_t n = end - begin;
  if (n <= cap) {
    groups.emplace_back(begin, end);
    return;
  }
  const auto cmp = [&](const Item& a, const Item& b) {
    return coord(a, dim) < coord(b, dim);
  };
  std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin),
            items.begin() + static_cast<std::ptrdiff_t>(end), cmp);
  const std::size_t remainingDims = dims - dim;
  if (remainingDims <= 1) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t rem = end - i;
      if (rem <= cap) {
        groups.emplace_back(i, end);
        break;
      }
      if (rem < cap + minFill) {
        // A plain cap-sized chunk would leave an underfull tail; split the
        // remainder evenly (both halves land in [minFill, cap]).
        const std::size_t half = rem / 2;
        groups.emplace_back(i, i + half);
        groups.emplace_back(i + half, end);
        break;
      }
      groups.emplace_back(i, i + cap);
      i += cap;
    }
    return;
  }
  const auto pages = static_cast<double>((n + cap - 1) / cap);
  const auto slabCount = static_cast<std::size_t>(std::max(
      1.0, std::ceil(std::pow(pages, 1.0 / static_cast<double>(remainingDims)))));
  const std::size_t slabSize = std::max<std::size_t>(
      cap, (n + slabCount - 1) / slabCount);
  std::size_t i = begin;
  while (i < end) {
    // Absorb a tail too small to stand alone into the current slab.
    std::size_t take = std::min(slabSize, end - i);
    if (end - i - take < minFill) take = end - i;
    strPack(items, i, i + take, dim + 1, dims, cap, minFill, coord, groups);
    i += take;
  }
}

}  // namespace

PRTree PRTree::bulkLoad(const Dataset& data, Options options) {
  PRTree tree(data.dims(), options);
  const std::size_t dims = data.dims();
  const std::size_t cap = options.maxEntries;

  if (data.empty()) return tree;

  std::vector<LeafEntry> items;
  items.reserve(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    items.push_back(tree.makeEntry(data.id(row), data.values(row),
                                   data.prob(row)));
  }

  // Pack tuples into leaves.
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  strPack(items, 0, items.size(), 0, dims, cap, options.minEntries,
          [](const LeafEntry& e, std::size_t dim) { return e.values[dim]; },
          groups);

  std::vector<std::unique_ptr<Node>> level;
  level.reserve(groups.size());
  for (const auto& [b, e] : groups) {
    auto node = std::make_unique<Node>(dims, /*isLeaf=*/true);
    node->entries.assign(items.begin() + static_cast<std::ptrdiff_t>(b),
                         items.begin() + static_cast<std::ptrdiff_t>(e));
    tree.recomputeAggregates(*node);
    level.push_back(std::move(node));
  }
  tree.height_ = 1;

  // Pack nodes into parent levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> nodeGroups;
    strPack(level, 0, level.size(), 0, dims, cap, options.minEntries,
            [](const std::unique_ptr<Node>& n, std::size_t dim) {
              return 0.5 * (n->mbr.lo(dim) + n->mbr.hi(dim));
            },
            nodeGroups);
    std::vector<std::unique_ptr<Node>> parents;
    parents.reserve(nodeGroups.size());
    for (const auto& [b, e] : nodeGroups) {
      auto parent = std::make_unique<Node>(dims, /*isLeaf=*/false);
      parent->children.reserve(e - b);
      for (std::size_t i = b; i < e; ++i) {
        parent->children.push_back(std::move(level[i]));
      }
      tree.recomputeAggregates(*parent);
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
    ++tree.height_;
  }

  tree.root_ = std::move(level.front());
  tree.size_ = data.size();
  return tree;
}

// ---------------------------------------------------------------------------
// Insert

namespace {

/// Rect of the i-th routing item of `node` (leaf entry point box or child
/// MBR); shared by the split heuristics.
Rect itemRect(const PRTree::LeafEntry& e, std::size_t dims) {
  return Rect::point(e.valueSpan(dims));
}

}  // namespace

std::unique_ptr<PRTree::Node> PRTree::split(Node& node) {
  const std::size_t total =
      node.leaf ? node.entries.size() : node.children.size();
  const std::size_t minE = options_.minEntries;

  std::vector<Rect> rects;
  rects.reserve(total);
  if (node.leaf) {
    for (const LeafEntry& e : node.entries) rects.push_back(itemRect(e, dims_));
  } else {
    for (const auto& c : node.children) rects.push_back(c->mbr);
  }

  // R*-style: pick the axis with the smallest margin sum over all valid
  // distributions, then the split index with the smallest overlap (ties:
  // smallest combined area).
  std::vector<std::size_t> bestOrder;
  std::size_t bestIndex = minE;
  double bestOverlap = std::numeric_limits<double>::infinity();
  double bestArea = std::numeric_limits<double>::infinity();
  double bestMarginSum = std::numeric_limits<double>::infinity();
  std::size_t bestAxis = 0;

  std::vector<std::size_t> order(total);
  std::vector<Rect> prefix(total, Rect(dims_));
  std::vector<Rect> suffix(total, Rect(dims_));

  for (std::size_t axis = 0; axis < dims_; ++axis) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (rects[a].lo(axis) != rects[b].lo(axis)) {
        return rects[a].lo(axis) < rects[b].lo(axis);
      }
      return rects[a].hi(axis) < rects[b].hi(axis);
    });
    Rect acc(dims_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.expand(rects[order[i]]);
      prefix[i] = acc;
    }
    acc = Rect(dims_);
    for (std::size_t i = total; i-- > 0;) {
      acc.expand(rects[order[i]]);
      suffix[i] = acc;
    }
    double marginSum = 0.0;
    for (std::size_t k = minE; k + minE <= total; ++k) {
      marginSum += prefix[k - 1].margin() + suffix[k].margin();
    }
    if (marginSum < bestMarginSum) {
      bestMarginSum = marginSum;
      bestAxis = axis;
      bestOrder = order;
    }
  }

  // Recompute prefix/suffix on the winning axis order.
  {
    Rect acc(dims_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.expand(rects[bestOrder[i]]);
      prefix[i] = acc;
    }
    acc = Rect(dims_);
    for (std::size_t i = total; i-- > 0;) {
      acc.expand(rects[bestOrder[i]]);
      suffix[i] = acc;
    }
  }
  (void)bestAxis;
  for (std::size_t k = minE; k + minE <= total; ++k) {
    const double overlap = prefix[k - 1].overlapArea(suffix[k]);
    const double area = prefix[k - 1].area() + suffix[k].area();
    if (overlap < bestOverlap ||
        (overlap == bestOverlap && area < bestArea)) {
      bestOverlap = overlap;
      bestArea = area;
      bestIndex = k;
    }
  }

  auto sibling = std::make_unique<Node>(dims_, node.leaf);
  if (node.leaf) {
    std::vector<LeafEntry> left;
    left.reserve(bestIndex);
    for (std::size_t i = 0; i < bestIndex; ++i) {
      left.push_back(node.entries[bestOrder[i]]);
    }
    for (std::size_t i = bestIndex; i < total; ++i) {
      sibling->entries.push_back(node.entries[bestOrder[i]]);
    }
    node.entries = std::move(left);
  } else {
    std::vector<std::unique_ptr<Node>> left;
    left.reserve(bestIndex);
    for (std::size_t i = 0; i < bestIndex; ++i) {
      left.push_back(std::move(node.children[bestOrder[i]]));
    }
    for (std::size_t i = bestIndex; i < total; ++i) {
      sibling->children.push_back(std::move(node.children[bestOrder[i]]));
    }
    node.children = std::move(left);
  }
  recomputeAggregates(node);
  recomputeAggregates(*sibling);
  return sibling;
}

std::unique_ptr<PRTree::Node> PRTree::insertRecurse(Node& node,
                                                    const LeafEntry& e) {
  if (node.leaf) {
    node.entries.push_back(e);
  } else {
    // Choose the child needing the least enlargement (ties: smaller area,
    // then fewer tuples).
    const Rect point = Rect::point(e.valueSpan(dims_));
    Node* best = nullptr;
    double bestEnlargement = std::numeric_limits<double>::infinity();
    double bestArea = std::numeric_limits<double>::infinity();
    std::size_t bestCount = 0;
    for (const auto& child : node.children) {
      const double enlargement = child->mbr.enlargement(point);
      const double area = child->mbr.area();
      if (enlargement < bestEnlargement ||
          (enlargement == bestEnlargement &&
           (area < bestArea ||
            (area == bestArea && child->count < bestCount)))) {
        best = child.get();
        bestEnlargement = enlargement;
        bestArea = area;
        bestCount = child->count;
      }
    }
    if (auto sibling = insertRecurse(*best, e)) {
      node.children.push_back(std::move(sibling));
    }
  }
  const std::size_t fanout =
      node.leaf ? node.entries.size() : node.children.size();
  if (fanout > options_.maxEntries) {
    return split(node);  // split() recomputes both halves
  }
  recomputeAggregates(node);
  return nullptr;
}

void PRTree::growRootIfSplit(std::unique_ptr<Node> sibling) {
  if (!sibling) return;
  auto newRoot = std::make_unique<Node>(dims_, /*isLeaf=*/false);
  newRoot->children.push_back(std::move(root_));
  newRoot->children.push_back(std::move(sibling));
  recomputeAggregates(*newRoot);
  root_ = std::move(newRoot);
  ++height_;
}

void PRTree::insert(TupleId id, std::span<const double> values, double prob) {
  const LeafEntry e = makeEntry(id, values, prob);
  if (!root_) {
    root_ = std::make_unique<Node>(dims_, /*isLeaf=*/true);
    height_ = 1;
  }
  growRootIfSplit(insertRecurse(*root_, e));
  ++size_;
}

// ---------------------------------------------------------------------------
// Delete

void PRTree::collectEntries(const Node& node, std::vector<LeafEntry>& out) {
  if (node.leaf) {
    out.insert(out.end(), node.entries.begin(), node.entries.end());
  } else {
    for (const auto& child : node.children) collectEntries(*child, out);
  }
}

bool PRTree::eraseRecurse(Node& node, TupleId id,
                          std::span<const double> values,
                          std::vector<LeafEntry>& orphans) {
  if (node.leaf) {
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const LeafEntry& e = node.entries[i];
      if (e.id != id) continue;
      if (!std::equal(values.begin(), values.end(), e.values.begin())) continue;
      node.entries.erase(node.entries.begin() + static_cast<std::ptrdiff_t>(i));
      recomputeAggregates(node);
      return true;
    }
    return false;
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    Node& child = *node.children[i];
    if (!child.mbr.containsPoint(values)) continue;
    if (!eraseRecurse(child, id, values, orphans)) continue;
    const std::size_t fanout =
        child.leaf ? child.entries.size() : child.children.size();
    if (fanout < options_.minEntries) {
      // Condense: orphan the whole subtree for reinsertion.
      collectEntries(child, orphans);
      node.children.erase(node.children.begin() +
                          static_cast<std::ptrdiff_t>(i));
    }
    recomputeAggregates(node);
    return true;
  }
  return false;
}

bool PRTree::erase(TupleId id, std::span<const double> values) {
  if (values.size() != dims_) {
    throw std::invalid_argument("PRTree::erase: dimensionality mismatch");
  }
  if (!root_) return false;
  std::vector<LeafEntry> orphans;
  if (!eraseRecurse(*root_, id, values, orphans)) return false;
  --size_;

  // Shrink the root while it is an internal node with a single child.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
    --height_;
  }
  if (root_->leaf && root_->entries.empty() && orphans.empty()) {
    root_.reset();
    height_ = 0;
  }

  // Reinsert orphaned tuples (their subtree was dissolved).  size_ already
  // excludes the erased tuple; orphans were counted before removal, so
  // adjust around insert()'s increment.
  for (const LeafEntry& e : orphans) {
    if (!root_) {
      root_ = std::make_unique<Node>(dims_, /*isLeaf=*/true);
      height_ = 1;
    }
    growRootIfSplit(insertRecurse(*root_, e));
  }
  return true;
}

void PRTree::clear() {
  root_.reset();
  size_ = 0;
  height_ = 0;
}

// ---------------------------------------------------------------------------
// Queries

double PRTree::dominanceSurvival(std::span<const double> b, DimMask mask,
                                 const Rect* clip) const {
  if (b.size() != dims_) {
    throw std::invalid_argument("PRTree::dominanceSurvival: bad query dims");
  }
  if (!root_) return 1.0;

  // Recursive aggregate descent, defined inline to keep Node private.
  const std::function<double(const Node&)> descend =
      [&](const Node& node) -> double {
    ++nodeAccesses_;
    if (!node.mbr.possiblyDominates(b, mask)) return 1.0;
    if (clip != nullptr && !node.mbr.intersects(*clip)) return 1.0;
    const bool insideClip = clip == nullptr || clip->containsRect(node.mbr);
    if (insideClip && node.mbr.fullyDominates(b, mask)) return node.survival;
    double product = 1.0;
    if (node.leaf) {
      for (const LeafEntry& e : node.entries) {
        if (clip != nullptr && !clip->containsPoint(e.valueSpan(dims_))) {
          continue;
        }
        if (dominates(e.valueSpan(dims_), b, mask)) product *= 1.0 - e.prob;
      }
    } else {
      for (const auto& child : node.children) product *= descend(*child);
    }
    return product;
  };
  return descend(*root_);
}

void PRTree::forEachDominating(
    std::span<const double> b, DimMask mask,
    const std::function<void(const LeafEntry&)>& fn) const {
  if (b.size() != dims_) {
    throw std::invalid_argument("PRTree::forEachDominating: bad query dims");
  }
  if (!root_) return;
  const std::function<void(const Node&)> descend = [&](const Node& node) {
    ++nodeAccesses_;
    if (!node.mbr.possiblyDominates(b, mask)) return;
    if (node.leaf) {
      for (const LeafEntry& e : node.entries) {
        if (dominates(e.valueSpan(dims_), b, mask)) fn(e);
      }
    } else {
      for (const auto& child : node.children) descend(*child);
    }
  };
  descend(*root_);
}

void PRTree::windowQuery(
    const Rect& window, const std::function<void(const LeafEntry&)>& fn) const {
  if (!root_) return;
  const std::function<void(const Node&)> descend = [&](const Node& node) {
    ++nodeAccesses_;
    if (!node.mbr.intersects(window)) return;
    if (node.leaf) {
      for (const LeafEntry& e : node.entries) {
        if (window.containsPoint(e.valueSpan(dims_))) fn(e);
      }
    } else {
      for (const auto& child : node.children) descend(*child);
    }
  };
  descend(*root_);
}

void PRTree::forEach(const std::function<void(const LeafEntry&)>& fn) const {
  if (!root_) return;
  const std::function<void(const Node&)> descend = [&](const Node& node) {
    if (node.leaf) {
      for (const LeafEntry& e : node.entries) fn(e);
    } else {
      for (const auto& child : node.children) descend(*child);
    }
  };
  descend(*root_);
}

// ---------------------------------------------------------------------------
// NodeRef

bool PRTree::NodeRef::isLeaf() const noexcept {
  return static_cast<const Node*>(node_)->leaf;
}
const Rect& PRTree::NodeRef::mbr() const noexcept {
  return static_cast<const Node*>(node_)->mbr;
}
double PRTree::NodeRef::pMin() const noexcept {
  return static_cast<const Node*>(node_)->pMin;
}
double PRTree::NodeRef::pMax() const noexcept {
  return static_cast<const Node*>(node_)->pMax;
}
double PRTree::NodeRef::survival() const noexcept {
  return static_cast<const Node*>(node_)->survival;
}
std::size_t PRTree::NodeRef::count() const noexcept {
  return static_cast<const Node*>(node_)->count;
}
std::size_t PRTree::NodeRef::fanout() const noexcept {
  const Node* n = static_cast<const Node*>(node_);
  return n->leaf ? n->entries.size() : n->children.size();
}
PRTree::NodeRef PRTree::NodeRef::child(std::size_t i) const noexcept {
  return NodeRef(static_cast<const Node*>(node_)->children[i].get());
}
const PRTree::LeafEntry& PRTree::NodeRef::entry(std::size_t i) const noexcept {
  return static_cast<const Node*>(node_)->entries[i];
}

PRTree::NodeRef PRTree::root() const noexcept { return NodeRef(root_.get()); }

std::size_t PRTree::height() const noexcept { return height_; }

// ---------------------------------------------------------------------------
// Invariant checking

void PRTree::checkInvariants() const {
  if (!root_) {
    if (size_ != 0 || height_ != 0) {
      throw std::logic_error("PRTree: empty tree with nonzero size/height");
    }
    return;
  }

  const auto closeEnough = [](double a, double b) {
    return std::abs(a - b) <= 1e-12 + 1e-9 * std::abs(b);
  };

  std::size_t tuples = 0;
  // Returns subtree depth.
  const std::function<std::size_t(const Node&, bool)> check =
      [&](const Node& node, bool isRoot) -> std::size_t {
    const std::size_t fanout =
        node.leaf ? node.entries.size() : node.children.size();
    if (!isRoot && fanout < options_.minEntries) {
      throw std::logic_error("PRTree: underfull non-root node");
    }
    if (fanout > options_.maxEntries) {
      throw std::logic_error("PRTree: overfull node");
    }
    if (isRoot && !node.leaf && fanout < 2) {
      throw std::logic_error("PRTree: internal root with < 2 children");
    }

    std::size_t depth = 1;
    if (node.leaf) {
      tuples += node.entries.size();
    } else {
      std::size_t childDepth = 0;
      for (const auto& child : node.children) {
        const std::size_t d = check(*child, false);
        if (childDepth == 0) {
          childDepth = d;
        } else if (childDepth != d) {
          throw std::logic_error("PRTree: leaves at different depths");
        }
        if (!node.mbr.containsRect(child->mbr)) {
          throw std::logic_error("PRTree: child MBR escapes parent MBR");
        }
      }
      depth = childDepth + 1;
    }

    // Recompute aggregates from scratch.
    Rect mbr(dims_);
    double pMin = 1.0;
    double pMax = 0.0;
    double survival = 1.0;
    std::size_t count = 0;
    if (node.leaf) {
      for (const LeafEntry& e : node.entries) {
        mbr.expand(e.valueSpan(dims_));
        pMin = std::min(pMin, e.prob);
        pMax = std::max(pMax, e.prob);
        survival *= 1.0 - e.prob;
        ++count;
      }
    } else {
      for (const auto& child : node.children) {
        mbr.expand(child->mbr);
        pMin = std::min(pMin, child->pMin);
        pMax = std::max(pMax, child->pMax);
        survival *= child->survival;
        count += child->count;
      }
    }
    if (!(mbr == node.mbr)) {
      throw std::logic_error("PRTree: stale MBR aggregate");
    }
    if (count != node.count) {
      throw std::logic_error("PRTree: stale count aggregate");
    }
    if (count > 0 && (!closeEnough(pMin, node.pMin) ||
                      !closeEnough(pMax, node.pMax))) {
      throw std::logic_error("PRTree: stale probability aggregates");
    }
    if (!closeEnough(survival, node.survival)) {
      throw std::logic_error("PRTree: stale survival aggregate");
    }
    return depth;
  };

  const std::size_t depth = check(*root_, true);
  if (depth != height_) {
    throw std::logic_error("PRTree: height bookkeeping mismatch");
  }
  if (tuples != size_) {
    throw std::logic_error("PRTree: size bookkeeping mismatch");
  }
}

}  // namespace dsud
