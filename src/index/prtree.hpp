// Probabilistic R-tree (PR-tree, paper Sec. 6.1) with aggregate augmentation.
//
// The PR-tree is an R-tree over uncertain tuples whose nodes carry, in
// addition to the MBR, the minimum and maximum existential probability of the
// subtree (paper's P1/P2) plus two aggregates this reproduction adds:
//
//   * count     — number of tuples below the node;
//   * survival  — Π (1 − P(t)) over every tuple below the node.
//
// The survival product turns the paper's enumerating window query (Sec. 6.3,
// Fig. 6) into an aggregate descent: a subtree wholly inside the dominance
// region of a query point contributes its cached product in O(1).  Both query
// styles are provided and cross-checked in tests.
//
// Storage is an arena of fixed-stride nodes (in the spirit of tarantool's
// salad/rtree): every node occupies one `nodeStride()`-byte slot inside a
// 64-byte-aligned extent, children are referenced by 32-bit index, and leaf
// payloads are stored column-major (per-dimension value columns plus prob and
// log1p(-P) columns, padded to a whole number of kernel blocks) so the
// partially-dominating leaf case of dominance queries runs through
// kernel::blockSurvival.  No per-node malloc; freed slots are recycled
// through a free list; extents never move, so node addresses are stable
// across inserts.
//
// Construction is STR bulk load (sort-tile-recursive); maintenance is
// Guttman/R*-style insert with margin-driven splits and condense-tree
// deletion, as required by the paper's update protocols (Sec. 5.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/dataset.hpp"
#include "geometry/rect.hpp"

namespace dsud {

/// PR-tree node-capacity configuration.
struct PRTreeOptions {
  /// Maximum entries per node (fanout).  >= 4.
  std::size_t maxEntries = 32;
  /// Minimum entries per non-root node.  In [2, maxEntries/2].
  std::size_t minEntries = 12;
};

/// Probabilistic R-tree over uncertain tuples.
class PRTree {
 public:
  using Options = PRTreeOptions;

  /// Tuple stored at a leaf.  Values use inline storage so leaves never
  /// allocate per entry.  Inside the tree the fields live in column-major
  /// node slots; a LeafEntry is the row-major value type assembled at the
  /// API boundary (bulk-load input, query callbacks, NodeRef::entry).
  struct LeafEntry {
    std::array<double, kMaxDims> values{};
    double prob = 0.0;
    TupleId id = 0;

    std::span<const double> valueSpan(std::size_t dims) const noexcept {
      return {values.data(), dims};
    }
  };

  /// Empty tree of the given dimensionality.
  explicit PRTree(std::size_t dims, Options options = {});

  PRTree(PRTree&&) noexcept;
  PRTree& operator=(PRTree&&) noexcept;
  PRTree(const PRTree&) = delete;
  PRTree& operator=(const PRTree&) = delete;
  ~PRTree();

  /// STR bulk load of a whole dataset: O(N log N), produces a packed tree.
  static PRTree bulkLoad(const Dataset& data, Options options = {});

  std::size_t dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const Options& options() const noexcept { return options_; }

  /// Bytes per arena node slot (header + column payload, 64-byte rounded).
  std::size_t nodeStride() const noexcept { return stride_; }

  /// Inserts one tuple.  Throws std::invalid_argument on bad dims/prob.
  void insert(TupleId id, std::span<const double> values, double prob);
  void insert(const Tuple& t) { insert(t.id, t.values, t.prob); }

  /// Deletes the tuple with the given id located at `values` (point search).
  /// Returns false if no such tuple exists.
  bool erase(TupleId id, std::span<const double> values);

  void clear();

  // --- Queries ------------------------------------------------------------

  /// Π (1 − P(t')) over every stored tuple t' that dominates `b` on the
  /// selected dimensions.  This is the paper's local skyline probability
  /// P_sky(b, D) *without* the P(b) factor (Observation 1); exact, via
  /// aggregate descent; partially-dominating leaves are resolved by the
  /// blocked SIMD/scalar kernel.
  ///
  /// When `clip` is non-null only dominators inside the clip rectangle
  /// count — the constrained-skyline semantics (Wu et al., reviewed in the
  /// paper's Sec. 2.1): the query behaves as if the database were first
  /// filtered to the window.
  double dominanceSurvival(std::span<const double> b, DimMask mask,
                           const Rect* clip = nullptr) const;
  double dominanceSurvival(std::span<const double> b) const {
    return dominanceSurvival(b, fullMask(dims_));
  }

  /// Enumerates every tuple dominating `b` (the paper's window query of
  /// Sec. 6.3).  Slower than dominanceSurvival; kept for cross-checking and
  /// for callers that need the witnesses themselves.
  void forEachDominating(std::span<const double> b, DimMask mask,
                         const std::function<void(const LeafEntry&)>& fn) const;

  /// Enumerates tuples whose point lies inside `window`.
  void windowQuery(const Rect& window,
                   const std::function<void(const LeafEntry&)>& fn) const;

  /// Enumerates all stored tuples (arbitrary order).
  void forEach(const std::function<void(const LeafEntry&)>& fn) const;

  // --- Structure access (BBS traversal, tests) -----------------------------

  /// Read-only handle to a tree node.  Valid only while the tree is not
  /// modified or moved.
  class NodeRef {
   public:
    bool isLeaf() const noexcept;
    const Rect& mbr() const noexcept;
    double pMin() const noexcept;   ///< paper's P1
    double pMax() const noexcept;   ///< paper's P2
    double survival() const noexcept;
    std::size_t count() const noexcept;
    std::size_t fanout() const noexcept;
    NodeRef child(std::size_t i) const noexcept;  ///< internal nodes
    /// Row-major copy of leaf slot `i` (leaves store columns, so this
    /// assembles a value — it cannot return a reference).
    LeafEntry entry(std::size_t i) const noexcept;

   private:
    friend class PRTree;
    NodeRef(const PRTree* tree, std::uint32_t node) noexcept
        : tree_(tree), node_(node) {}
    const PRTree* tree_;
    std::uint32_t node_;
  };

  /// Root handle; only meaningful when !empty().
  NodeRef root() const noexcept;

  /// Height of the tree (0 when empty, 1 for a single leaf root).
  std::size_t height() const noexcept;

  /// Nodes visited by the query walks (dominanceSurvival,
  /// forEachDominating, windowQuery) since construction or the last
  /// `resetNodeAccesses()` — the index-side work metric the observability
  /// layer reports per site.  Plain counter: a PRTree serves one site's
  /// single-threaded protocol session, so no atomics on this path.
  std::uint64_t nodeAccesses() const noexcept { return nodeAccesses_; }
  void resetNodeAccesses() noexcept { nodeAccesses_ = 0; }

  /// Verifies every structural invariant (MBR containment, aggregate
  /// correctness, fanout bounds, uniform leaf depth, leaf padding-slot
  /// neutrality).  Throws std::logic_error with a description on the first
  /// violation.  Intended for tests; O(N).
  void checkInvariants() const;

 private:
  /// Fixed-size node header at the start of every arena slot.  The payload
  /// that follows is either a child-index array (internal nodes) or the
  /// column-major leaf block.
  struct NodeHeader {
    Rect mbr;
    double pMin = 1.0;      // paper's P1
    double pMax = 0.0;      // paper's P2
    double survival = 1.0;  // Π (1 − P) over the subtree
    std::uint32_t count = 0;
    std::uint16_t fanout = 0;
    std::uint8_t leaf = 1;
  };

  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

  struct ExtentFree {
    void operator()(std::byte* p) const noexcept;
  };

  // --- Arena --------------------------------------------------------------
  std::byte* at(std::uint32_t node) noexcept;
  const std::byte* at(std::uint32_t node) const noexcept;
  NodeHeader& header(std::uint32_t node) noexcept;
  const NodeHeader& header(std::uint32_t node) const noexcept;
  std::uint32_t allocNode(bool leaf);
  void freeNode(std::uint32_t node);
  void freeSubtree(std::uint32_t node);

  // --- Payload access -----------------------------------------------------
  std::uint32_t* childArray(std::uint32_t node) noexcept;
  const std::uint32_t* childArray(std::uint32_t node) const noexcept;
  double* leafCol(std::uint32_t node, std::size_t j) noexcept;
  const double* leafCol(std::uint32_t node, std::size_t j) const noexcept;
  double* leafProb(std::uint32_t node) noexcept;
  const double* leafProb(std::uint32_t node) const noexcept;
  double* leafLogSurv(std::uint32_t node) noexcept;
  const double* leafLogSurv(std::uint32_t node) const noexcept;
  TupleId* leafIds(std::uint32_t node) noexcept;
  const TupleId* leafIds(std::uint32_t node) const noexcept;

  // --- Leaf slot manipulation ---------------------------------------------
  /// Resets slots [from, padCap) to padding values (+inf coords, 0 prob/log).
  void padLeafSlots(std::uint32_t node, std::size_t from) noexcept;
  void appendLeafEntry(std::uint32_t node, const LeafEntry& e) noexcept;
  /// Swap-removes leaf slot `i`, restoring the vacated slot to padding.
  void removeLeafSlot(std::uint32_t node, std::size_t i) noexcept;
  LeafEntry leafEntry(std::uint32_t node, std::size_t i) const noexcept;
  bool leafSlotDominates(std::uint32_t node, std::size_t i,
                         std::span<const double> b, DimMask mask) const noexcept;

  // --- Maintenance --------------------------------------------------------
  void recomputeAggregates(std::uint32_t node);
  LeafEntry makeEntry(TupleId id, std::span<const double> values,
                      double prob) const;
  /// Inserts into the subtree; returns the index of a new sibling if `node`
  /// split, kNoNode otherwise.
  std::uint32_t insertRecurse(std::uint32_t node, const LeafEntry& e);
  /// Splits an overfull node (R*-style margin/overlap split); returns the
  /// new right sibling.  Aggregates of both halves are recomputed.
  std::uint32_t split(std::uint32_t node);
  bool eraseRecurse(std::uint32_t node, TupleId id,
                    std::span<const double> values,
                    std::vector<LeafEntry>& orphans);
  void collectEntries(std::uint32_t node, std::vector<LeafEntry>& out) const;
  void growRootIfSplit(std::uint32_t sibling);
  double survivalDescend(std::uint32_t node, std::span<const double> b,
                         DimMask mask, const Rect* clip) const;

  std::size_t dims_;
  Options options_;

  // Layout metrics, fixed at construction (see prtree.cpp).
  std::size_t stride_ = 0;        // bytes per node slot (64-byte multiple)
  std::size_t capSlots_ = 0;      // maxEntries + 1 (transient overflow slot)
  std::size_t padCap_ = 0;        // capSlots_ rounded up to the kernel block
  std::size_t colOff_ = 0;        // first value column, bytes from node start
  std::size_t probOff_ = 0;
  std::size_t logOff_ = 0;
  std::size_t idsOff_ = 0;
  std::size_t childOff_ = 0;
  std::size_t nodesPerExtent_ = 0;

  std::vector<std::unique_ptr<std::byte[], ExtentFree>> extents_;
  std::vector<std::uint32_t> freeList_;
  std::uint32_t allocated_ = 0;  // slot high-water mark

  std::uint32_t root_ = kNoNode;
  std::size_t size_ = 0;
  std::size_t height_ = 0;
  mutable std::uint64_t nodeAccesses_ = 0;
};

}  // namespace dsud
