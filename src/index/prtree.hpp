// Probabilistic R-tree (PR-tree, paper Sec. 6.1) with aggregate augmentation.
//
// The PR-tree is an R-tree over uncertain tuples whose nodes carry, in
// addition to the MBR, the minimum and maximum existential probability of the
// subtree (paper's P1/P2) plus two aggregates this reproduction adds:
//
//   * count     — number of tuples below the node;
//   * survival  — Π (1 − P(t)) over every tuple below the node.
//
// The survival product turns the paper's enumerating window query (Sec. 6.3,
// Fig. 6) into an aggregate descent: a subtree wholly inside the dominance
// region of a query point contributes its cached product in O(1).  Both query
// styles are provided and cross-checked in tests.
//
// Construction is STR bulk load (sort-tile-recursive); maintenance is
// Guttman/R*-style insert with margin-driven splits and condense-tree
// deletion, as required by the paper's update protocols (Sec. 5.4).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/dataset.hpp"
#include "geometry/rect.hpp"

namespace dsud {

/// PR-tree node-capacity configuration.
struct PRTreeOptions {
  /// Maximum entries per node (fanout).  >= 4.
  std::size_t maxEntries = 32;
  /// Minimum entries per non-root node.  In [2, maxEntries/2].
  std::size_t minEntries = 12;
};

/// Probabilistic R-tree over uncertain tuples.
class PRTree {
 public:
  using Options = PRTreeOptions;

  /// Tuple stored at a leaf.  Values use inline storage so leaves never
  /// allocate per entry.
  struct LeafEntry {
    std::array<double, kMaxDims> values{};
    double prob = 0.0;
    TupleId id = 0;

    std::span<const double> valueSpan(std::size_t dims) const noexcept {
      return {values.data(), dims};
    }
  };

  /// Empty tree of the given dimensionality.
  explicit PRTree(std::size_t dims, Options options = {});

  PRTree(PRTree&&) noexcept;
  PRTree& operator=(PRTree&&) noexcept;
  PRTree(const PRTree&) = delete;
  PRTree& operator=(const PRTree&) = delete;
  ~PRTree();

  /// STR bulk load of a whole dataset: O(N log N), produces a packed tree.
  static PRTree bulkLoad(const Dataset& data, Options options = {});

  std::size_t dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const Options& options() const noexcept { return options_; }

  /// Inserts one tuple.  Throws std::invalid_argument on bad dims/prob.
  void insert(TupleId id, std::span<const double> values, double prob);
  void insert(const Tuple& t) { insert(t.id, t.values, t.prob); }

  /// Deletes the tuple with the given id located at `values` (point search).
  /// Returns false if no such tuple exists.
  bool erase(TupleId id, std::span<const double> values);

  void clear();

  // --- Queries ------------------------------------------------------------

  /// Π (1 − P(t')) over every stored tuple t' that dominates `b` on the
  /// selected dimensions.  This is the paper's local skyline probability
  /// P_sky(b, D) *without* the P(b) factor (Observation 1); exact, via
  /// aggregate descent.
  ///
  /// When `clip` is non-null only dominators inside the clip rectangle
  /// count — the constrained-skyline semantics (Wu et al., reviewed in the
  /// paper's Sec. 2.1): the query behaves as if the database were first
  /// filtered to the window.
  double dominanceSurvival(std::span<const double> b, DimMask mask,
                           const Rect* clip = nullptr) const;
  double dominanceSurvival(std::span<const double> b) const {
    return dominanceSurvival(b, fullMask(dims_));
  }

  /// Enumerates every tuple dominating `b` (the paper's window query of
  /// Sec. 6.3).  Slower than dominanceSurvival; kept for cross-checking and
  /// for callers that need the witnesses themselves.
  void forEachDominating(std::span<const double> b, DimMask mask,
                         const std::function<void(const LeafEntry&)>& fn) const;

  /// Enumerates tuples whose point lies inside `window`.
  void windowQuery(const Rect& window,
                   const std::function<void(const LeafEntry&)>& fn) const;

  /// Enumerates all stored tuples (arbitrary order).
  void forEach(const std::function<void(const LeafEntry&)>& fn) const;

  // --- Structure access (BBS traversal, tests) -----------------------------

  /// Read-only handle to a tree node.  Valid only while the tree is not
  /// modified.
  class NodeRef {
   public:
    bool isLeaf() const noexcept;
    const Rect& mbr() const noexcept;
    double pMin() const noexcept;   ///< paper's P1
    double pMax() const noexcept;   ///< paper's P2
    double survival() const noexcept;
    std::size_t count() const noexcept;
    std::size_t fanout() const noexcept;
    NodeRef child(std::size_t i) const noexcept;          ///< internal nodes
    const LeafEntry& entry(std::size_t i) const noexcept; ///< leaf nodes

   private:
    friend class PRTree;
    explicit NodeRef(const void* node) noexcept : node_(node) {}
    const void* node_;
  };

  /// Root handle; only meaningful when !empty().
  NodeRef root() const noexcept;

  /// Height of the tree (0 when empty, 1 for a single leaf root).
  std::size_t height() const noexcept;

  /// Nodes visited by the query walks (dominanceSurvival,
  /// forEachDominating, windowQuery) since construction or the last
  /// `resetNodeAccesses()` — the index-side work metric the observability
  /// layer reports per site.  Plain counter: a PRTree serves one site's
  /// single-threaded protocol session, so no atomics on this path.
  std::uint64_t nodeAccesses() const noexcept { return nodeAccesses_; }
  void resetNodeAccesses() noexcept { nodeAccesses_ = 0; }

  /// Verifies every structural invariant (MBR containment, aggregate
  /// correctness, fanout bounds, uniform leaf depth).  Throws
  /// std::logic_error with a description on the first violation.  Intended
  /// for tests; O(N).
  void checkInvariants() const;

 private:
  struct Node;

  void recomputeAggregates(Node& node) const;
  LeafEntry makeEntry(TupleId id, std::span<const double> values,
                      double prob) const;
  /// Inserts into the subtree; returns a new sibling if `node` split.
  std::unique_ptr<Node> insertRecurse(Node& node, const LeafEntry& e);
  /// Splits an overfull node (R*-style margin/overlap split); returns the
  /// new right sibling.  Aggregates of both halves are recomputed.
  std::unique_ptr<Node> split(Node& node);
  bool eraseRecurse(Node& node, TupleId id, std::span<const double> values,
                    std::vector<LeafEntry>& orphans);
  static void collectEntries(const Node& node, std::vector<LeafEntry>& out);
  void growRootIfSplit(std::unique_ptr<Node> sibling);

  std::size_t dims_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t height_ = 0;
  mutable std::uint64_t nodeAccesses_ = 0;
};

}  // namespace dsud
