#include "core/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "gen/partition.hpp"
#include "net/channel_pool.hpp"
#include "net/inproc_transport.hpp"
#include "obs/log.hpp"

namespace dsud {

namespace {
/// Tuples per kStreamTuples frame during a rebalance — large enough to
/// amortize round trips, small enough that repartition traffic interleaves
/// with query RPCs on the shared channel pools.
constexpr std::size_t kStreamBatch = 512;
}  // namespace

InProcCluster::InProcCluster(Topology topology, ClusterConfig config)
    : config_(std::move(config)), topology_(std::move(topology)) {
  if (config_.metrics != nullptr) metrics_ = config_.metrics;
  dims_ = topology_.dims();
  coordinator_ = std::make_unique<Coordinator>(&meter_, dims_, metrics_,
                                               config_.breaker);
  std::vector<Dataset> seed = topology_.takeSeedData();
  const std::vector<PartitionDesc> parts = topology_.partitions();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::vector<Store>& chain = stores_[parts[i].id];
    for (const SiteId host : parts[i].hosts) {
      chain.push_back(wireStore(
          std::make_shared<LocalSite>(parts[i].id, seed[i], config_.tree),
          host));
    }
  }
  refreshView();
  engine_ = std::make_unique<QueryEngine>(*coordinator_);
}

std::shared_ptr<ChaosState> InProcCluster::chaosFor(SiteId host) {
  if (!config_.chaos) return nullptr;
  auto& slot = chaos_[host];
  if (slot == nullptr) {
    slot = std::make_shared<ChaosState>(*config_.chaos, host);
  }
  return slot;
}

InProcCluster::Store InProcCluster::wireStore(std::shared_ptr<LocalSite> site,
                                              SiteId host) {
  Store store;
  store.site = std::move(site);
  store.host = host;
  store.site->setMetrics(metrics_);
  store.server = std::make_shared<SiteServer>(*store.site);
  const SiteId partition = store.site->id();
  // The factory captures the site and server by shared_ptr: any pinned
  // topology snapshot keeps its stores alive through handle -> pool ->
  // factory even after the cluster has moved on to a newer epoch.
  auto pool = std::make_shared<ChannelPool>(
      [partition, site = store.site, server = store.server, meter = &meter_,
       metrics = metrics_, chaos = chaosFor(host)] {
        auto channel = std::make_unique<InProcChannel>(server->handler());
        channel->bindAccounting(partition, meter, metrics);
        std::unique_ptr<ClientChannel> out = std::move(channel);
        if (chaos != nullptr) {
          out = std::make_unique<ChaosChannel>(std::move(out), chaos, metrics);
        }
        return out;
      },
      config_.transport.inprocChannelsPerSite);
  store.handle =
      std::make_shared<RpcSiteHandle>(partition, std::move(pool), &meter_);
  return store;
}

void InProcCluster::refreshView() {
  auto view = std::make_shared<ClusterView>();
  view->epoch = topology_.epoch();
  view->partitions.reserve(stores_.size());
  for (const auto& [partition, chain] : stores_) {
    ReplicaChain out;
    out.partition = partition;
    for (const Store& s : chain) {
      out.replicas.push_back(s.handle);
      out.health.push_back(&coordinator_->healthFor(s.host));
    }
    view->partitions.push_back(std::move(out));
  }
  coordinator_->installView(std::move(view));
}

std::size_t InProcCluster::siteCount() const {
  std::lock_guard lock(adminMutex_);
  return stores_.size();
}

LocalSite& InProcCluster::site(SiteId id, std::size_t replica) {
  std::lock_guard lock(adminMutex_);
  return *stores_.at(id).at(replica).site;
}

std::size_t InProcCluster::replicaCount(SiteId id) const {
  std::lock_guard lock(adminMutex_);
  return stores_.at(id).size();
}

ChaosState* InProcCluster::chaos(SiteId host) {
  std::lock_guard lock(adminMutex_);
  const auto it = chaos_.find(host);
  return it == chaos_.end() ? nullptr : it->second.get();
}

Topology InProcCluster::topology() const {
  std::lock_guard lock(adminMutex_);
  return topology_;
}

SiteId InProcCluster::addSite() {
  std::lock_guard lock(adminMutex_);
  const SiteId id = topology_.addSite();
  // Layout unchanged until the next rebalance, but the epoch bump must be
  // visible now: it retires cached answers and stamps new sessions.
  refreshView();
  obs::eventLog().emit(LogLevel::kInfo, "topology", "topology.join",
                       {obs::field("site", id),
                        obs::field("epoch", topology_.epoch()),
                        obs::field("members", topology_.members().size())});
  return id;
}

void InProcCluster::removeSite(SiteId id) {
  std::lock_guard lock(adminMutex_);
  if (!topology_.isMember(id)) {
    throw std::out_of_range("InProcCluster: unknown member " +
                            std::to_string(id));
  }
  // Gather before touching the membership: when a partition turns out to be
  // unrecoverable this throws and the cluster keeps its current state.
  Dataset global = gather();
  topology_.removeSite(id);
  repartition(global);
  obs::eventLog().emit(LogLevel::kInfo, "topology", "topology.leave",
                       {obs::field("site", id),
                        obs::field("epoch", topology_.epoch()),
                        obs::field("members", topology_.members().size())});
}

void InProcCluster::rebalance() {
  std::lock_guard lock(adminMutex_);
  repartition(gather());
  obs::eventLog().emit(LogLevel::kInfo, "topology", "topology.rebalance",
                       {obs::field("epoch", topology_.epoch()),
                        obs::field("members", topology_.members().size())});
}

Dataset InProcCluster::gather() const {
  std::vector<Tuple> tuples;
  for (const auto& [partition, chain] : stores_) {
    bool read = false;
    for (const Store& s : chain) {
      try {
        ShipAllResponse response = s.handle->shipAll();
        tuples.reserve(tuples.size() + response.tuples.size());
        std::move(response.tuples.begin(), response.tuples.end(),
                  std::back_inserter(tuples));
        read = true;
        break;
      } catch (const NetError&) {
        // Host unreachable: fall back to the next replica.
      }
    }
    if (!read) {
      throw std::runtime_error("InProcCluster: partition " +
                               std::to_string(partition) +
                               " unrecoverable: every replica unreachable");
    }
  }
  // Canonical order: the gathered dataset (and therefore every STR cut) is
  // a pure function of the tuple set, independent of which replica served
  // each partition or how earlier epochs had cut the data.
  std::sort(tuples.begin(), tuples.end(),
            [](const Tuple& a, const Tuple& b) { return a.id < b.id; });
  Dataset global(dims_);
  global.reserve(tuples.size());
  for (const Tuple& t : tuples) global.add(t);
  return global;
}

void InProcCluster::repartition(const Dataset& global) {
  const std::size_t members = topology_.members().size();
  std::vector<Dataset> cuts = partitionSTR(global, members);
  std::vector<PartitionDesc> descs = topology_.placement(members);
  const std::uint64_t nextEpoch = topology_.epoch() + 1;

  // Build and seed the next epoch's stores while the current ones keep
  // serving queries.  A host that fails mid-stream loses its store only;
  // the partition survives on its other hosts.
  std::map<SiteId, std::vector<Store>> fresh;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    std::vector<Store>& chain = fresh[descs[i].id];
    for (const SiteId host : descs[i].hosts) {
      Store store = wireStore(
          std::make_shared<LocalSite>(descs[i].id, dims_, config_.tree),
          host);
      try {
        StreamTuplesRequest batch;
        batch.partition = descs[i].id;
        for (std::size_t row = 0; row < cuts[i].size();) {
          batch.tuples.clear();
          for (std::size_t n = 0; n < kStreamBatch && row < cuts[i].size();
               ++n, ++row) {
            batch.tuples.push_back(cuts[i].tuple(row));
          }
          store.handle->streamTuples(batch);
        }
        store.handle->joinSite(JoinSiteRequest{nextEpoch});
        chain.push_back(std::move(store));
      } catch (const NetError&) {
        // Dropped from the chain; queries fail over to the other hosts.
      }
    }
    if (chain.empty()) {
      throw std::runtime_error("InProcCluster: no reachable host to seed "
                               "partition " + std::to_string(descs[i].id));
    }
  }

  topology_.installPartitions(std::move(descs));
  std::map<SiteId, std::vector<Store>> retired = std::move(stores_);
  stores_ = std::move(fresh);
  refreshView();
  // The fresh stores' mutation counters restart at zero; forget the old
  // stamps so post-rebalance updates fold into the combined version again.
  coordinator_->resetSiteVersions();

  // Drain the retired stores (best-effort: new sessions are already routed
  // to the new epoch, and pinned in-flight sessions finish regardless).
  for (auto& [partition, chain] : retired) {
    for (Store& s : chain) {
      try {
        s.handle->leaveSite(LeaveSiteRequest{nextEpoch});
      } catch (...) {
      }
    }
  }
}

}  // namespace dsud
