#include "core/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "gen/partition.hpp"
#include "net/channel_pool.hpp"
#include "net/inproc_transport.hpp"

namespace dsud {

InProcCluster::InProcCluster(const Dataset& global, std::size_t m,
                             std::uint64_t seed, PRTree::Options treeOptions,
                             obs::MetricsRegistry* metrics)
    : InProcCluster(global, m, seed,
                    ClusterConfig{.tree = treeOptions, .metrics = metrics}) {}

InProcCluster::InProcCluster(const std::vector<Dataset>& siteData,
                             PRTree::Options treeOptions,
                             obs::MetricsRegistry* metrics)
    : InProcCluster(siteData,
                    ClusterConfig{.tree = treeOptions, .metrics = metrics}) {}

InProcCluster::InProcCluster(const Dataset& global, std::size_t m,
                             std::uint64_t seed, const ClusterConfig& config) {
  if (config.metrics != nullptr) metrics_ = config.metrics;
  Rng rng(seed);
  build(partitionUniform(global, m, rng), config);
}

InProcCluster::InProcCluster(const std::vector<Dataset>& siteData,
                             const ClusterConfig& config) {
  if (config.metrics != nullptr) metrics_ = config.metrics;
  build(siteData, config);
}

void InProcCluster::build(const std::vector<Dataset>& siteData,
                          const ClusterConfig& config) {
  if (siteData.empty()) {
    throw std::invalid_argument("InProcCluster: at least one site required");
  }
  dims_ = siteData.front().dims();

  std::vector<std::unique_ptr<SiteHandle>> handles;
  handles.reserve(siteData.size());
  chaos_.resize(siteData.size());
  for (std::size_t i = 0; i < siteData.size(); ++i) {
    if (siteData[i].dims() != dims_) {
      throw std::invalid_argument(
          "InProcCluster: sites must share dimensionality");
    }
    const auto id = static_cast<SiteId>(i);
    sites_.push_back(std::make_unique<LocalSite>(id, siteData[i], config.tree));
    sites_.back()->setMetrics(metrics_);
    servers_.push_back(std::make_unique<SiteServer>(*sites_.back()));
    if (config.chaos) {
      chaos_[i] = std::make_shared<ChaosState>(*config.chaos, id);
    }
    auto pool = std::make_shared<ChannelPool>(
        [id, server = servers_.back().get(), meter = &meter_,
         metrics = metrics_, chaos = chaos_[i]] {
          auto channel = std::make_unique<InProcChannel>(server->handler());
          channel->bindAccounting(id, meter, metrics);
          std::unique_ptr<ClientChannel> out = std::move(channel);
          if (chaos != nullptr) {
            out = std::make_unique<ChaosChannel>(std::move(out), chaos,
                                                 metrics);
          }
          return out;
        },
        config.transport.inprocChannelsPerSite);
    handles.push_back(
        std::make_unique<RpcSiteHandle>(id, std::move(pool), &meter_));
  }
  coordinator_ = std::make_unique<Coordinator>(std::move(handles), &meter_,
                                               dims_, metrics_, config.breaker);
  engine_ = std::make_unique<QueryEngine>(*coordinator_);
}

}  // namespace dsud
