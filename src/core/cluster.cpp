#include "core/cluster.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "gen/partition.hpp"
#include "net/channel_pool.hpp"
#include "net/inproc_transport.hpp"

namespace dsud {
namespace {

/// Channels per site: enough that a handful of concurrent sessions rarely
/// block on a lease, small enough to stay negligible per site.
constexpr std::size_t kChannelsPerSite = 4;

}  // namespace

InProcCluster::InProcCluster(const Dataset& global, std::size_t m,
                             std::uint64_t seed, PRTree::Options treeOptions,
                             obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) metrics_ = metrics;
  Rng rng(seed);
  build(partitionUniform(global, m, rng), treeOptions);
}

InProcCluster::InProcCluster(const std::vector<Dataset>& siteData,
                             PRTree::Options treeOptions,
                             obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) metrics_ = metrics;
  build(siteData, treeOptions);
}

void InProcCluster::build(const std::vector<Dataset>& siteData,
                          PRTree::Options options) {
  if (siteData.empty()) {
    throw std::invalid_argument("InProcCluster: at least one site required");
  }
  dims_ = siteData.front().dims();

  std::vector<std::unique_ptr<SiteHandle>> handles;
  handles.reserve(siteData.size());
  for (std::size_t i = 0; i < siteData.size(); ++i) {
    if (siteData[i].dims() != dims_) {
      throw std::invalid_argument(
          "InProcCluster: sites must share dimensionality");
    }
    const auto id = static_cast<SiteId>(i);
    sites_.push_back(std::make_unique<LocalSite>(id, siteData[i], options));
    sites_.back()->setMetrics(metrics_);
    servers_.push_back(std::make_unique<SiteServer>(*sites_.back()));
    auto pool = std::make_shared<ChannelPool>(
        [id, server = servers_.back().get(), meter = &meter_,
         metrics = metrics_] {
          auto channel = std::make_unique<InProcChannel>(server->handler());
          channel->bindAccounting(id, meter, metrics);
          return channel;
        },
        kChannelsPerSite);
    handles.push_back(
        std::make_unique<RpcSiteHandle>(id, std::move(pool), &meter_));
  }
  coordinator_ = std::make_unique<Coordinator>(std::move(handles), &meter_,
                                               dims_, metrics_);
  engine_ = std::make_unique<QueryEngine>(*coordinator_);
}

}  // namespace dsud
