// QueryEngine: the session-per-query entry point for all distributed
// skyline algorithms.
//
// Every run opens an immutable session: a QueryId, a copy of the
// QueryOptions, per-query site views (SiteHandle::openSession), a
// session-owned monotonic clock, tracer, and bandwidth scope, and — when
// requested — a session-private broadcast pool.  Because no query touches
// coordinator-global state, any number of queries may execute concurrently
// over one cluster, and each is bit-for-bit identical to the same query run
// alone (survival factors reduce in site order; site sessions are keyed by
// QueryId).
//
// Thread-safety contract: all run*/submit* methods may be called
// concurrently from any thread.  The coordinator must outlive the engine
// and every outstanding QueryTicket.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"
#include "core/coordinator.hpp"
#include "core/result.hpp"

namespace dsud {

/// Handle to one submitted (asynchronous) query.
class QueryTicket {
 public:
  QueryTicket() = default;

  /// Session id the engine assigned (known before the query starts).
  QueryId id() const noexcept { return id_; }

  /// Blocks until the query completes and returns its result (once);
  /// rethrows any exception the query raised.
  QueryResult get() { return future_.get(); }

  bool valid() const noexcept { return future_.valid(); }
  void wait() const { future_.wait(); }

 private:
  friend class QueryEngine;
  QueryTicket(QueryId id, std::future<QueryResult> future)
      : id_(id), future_(std::move(future)) {}

  QueryId id_ = kNoQuery;
  std::future<QueryResult> future_;
};

class QueryEngine {
 public:
  /// `workers` sizes the pool that executes submitted queries (0 = one
  /// worker per hardware thread, capped at 8).  The pool is created lazily
  /// on the first submit; synchronous runs never start it.
  explicit QueryEngine(Coordinator& coordinator, std::size_t workers = 0);

  Coordinator& coordinator() noexcept { return *coord_; }

  // --- Synchronous execution ----------------------------------------------

  /// Runs one threshold query on the calling thread.
  QueryResult run(Algo algo, const QueryConfig& config,
                  const QueryOptions& options = {});

  QueryResult runNaive(const QueryConfig& config,
                       const QueryOptions& options = {});
  QueryResult runDsud(const QueryConfig& config,
                      const QueryOptions& options = {});
  QueryResult runEdsud(const QueryConfig& config,
                       const QueryOptions& options = {});
  /// Top-k extension (see topk.cpp for the adaptive-threshold machinery).
  QueryResult runTopK(const TopKConfig& config,
                      const QueryOptions& options = {});

  /// Variants that run under a caller-provided session id (from
  /// coordinator().nextQueryId()), so a front end can advertise the id
  /// before execution starts — e.g. the daemon's `ack` line, which must
  /// carry the id that the query's traces and site sessions will use.
  QueryResult run(Algo algo, const QueryConfig& config,
                  const QueryOptions& options, QueryId id);
  QueryResult runTopK(const TopKConfig& config, const QueryOptions& options,
                      QueryId id);

  // --- Asynchronous execution ---------------------------------------------

  /// Enqueues the query on the engine's pool and returns immediately.  The
  /// config and options are copied into the session, so the caller's may
  /// go out of scope.  Broadcast workers (options.broadcastThreads) are
  /// session-private and never borrowed from the submit pool, so submitted
  /// queries cannot deadlock it.
  QueryTicket submit(Algo algo, QueryConfig config, QueryOptions options = {});
  QueryTicket submitTopK(TopKConfig config, QueryOptions options = {});

  /// Queries currently executing or queued on this engine's pool.
  std::size_t inFlight() const noexcept {
    return inFlight_.load(std::memory_order_relaxed);
  }

 private:
  QueryResult naiveImpl(const QueryConfig& config, const QueryOptions& options,
                        QueryId id);
  QueryResult dsudImpl(const QueryConfig& config, const QueryOptions& options,
                       QueryId id);
  QueryResult edsudImpl(const QueryConfig& config, const QueryOptions& options,
                        QueryId id);
  QueryResult topkImpl(const TopKConfig& config, const QueryOptions& options,
                       QueryId id);

  ThreadPool& pool();

  template <typename Fn>
  QueryTicket enqueue(QueryId id, Fn task);

  Coordinator* coord_;
  std::size_t workers_;
  std::mutex poolMutex_;            // guards lazy pool creation
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::size_t> inFlight_{0};
};

}  // namespace dsud
