// QueryEngine: the session-per-query entry point for all distributed
// skyline algorithms.
//
// Every run opens an immutable session: a QueryId, a copy of the
// QueryOptions, per-query site views (SiteHandle::openSession), a
// session-owned monotonic clock, tracer, and bandwidth scope, and — when
// requested — a session-private broadcast pool.  Because no query touches
// coordinator-global state, any number of queries may execute concurrently
// over one cluster, and each is bit-for-bit identical to the same query run
// alone (survival factors reduce in site order; site sessions are keyed by
// QueryId).
//
// Thread-safety contract: all run*/submit* methods may be called
// concurrently from any thread.  The coordinator must outlive the engine
// and every outstanding QueryTicket.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"
#include "core/coordinator.hpp"
#include "core/result.hpp"

namespace dsud {

class BatchExecutor;
class ResultCache;

/// Handle to one submitted (asynchronous) query.
class QueryTicket {
 public:
  QueryTicket() = default;

  /// Session id the engine assigned (known before the query starts).
  QueryId id() const noexcept { return id_; }

  /// Blocks until the query completes and returns its result (once);
  /// rethrows any exception the query raised.
  QueryResult get() { return future_.get(); }

  bool valid() const noexcept { return future_.valid(); }
  void wait() const { future_.wait(); }

 private:
  friend class QueryEngine;
  friend class BatchExecutor;
  QueryTicket(QueryId id, std::future<QueryResult> future)
      : id_(id), future_(std::move(future)) {}

  QueryId id_ = kNoQuery;
  std::future<QueryResult> future_;
};

class QueryEngine {
 public:
  /// `workers` sizes the pool that executes submitted queries (0 = one
  /// worker per hardware thread, capped at 8).  The pool is created lazily
  /// on the first submit; synchronous runs never start it.
  explicit QueryEngine(Coordinator& coordinator, std::size_t workers = 0);
  ~QueryEngine();

  Coordinator& coordinator() noexcept { return *coord_; }

  /// Attaches a shared result cache consulted before any descent (null
  /// detaches).  The cache must outlive the engine.  Wiring-time only: must
  /// not race with running queries.  Only share-eligible configurations
  /// (see the .cpp's shareEligible) ever touch the cache; everything else
  /// runs exactly as before.
  void setResultCache(ResultCache* cache) noexcept { cache_ = cache; }
  ResultCache* resultCache() const noexcept { return cache_; }

  // --- Synchronous execution ----------------------------------------------

  /// Runs one threshold query on the calling thread.
  QueryResult run(Algo algo, const QueryConfig& config,
                  const QueryOptions& options = {});

  QueryResult runNaive(const QueryConfig& config,
                       const QueryOptions& options = {});
  QueryResult runDsud(const QueryConfig& config,
                      const QueryOptions& options = {});
  QueryResult runEdsud(const QueryConfig& config,
                       const QueryOptions& options = {});
  /// Top-k extension (see topk.cpp for the adaptive-threshold machinery).
  QueryResult runTopK(const TopKConfig& config,
                      const QueryOptions& options = {});

  /// Variants that run under a caller-provided session id (from
  /// coordinator().nextQueryId()), so a front end can advertise the id
  /// before execution starts — e.g. the daemon's `ack` line, which must
  /// carry the id that the query's traces and site sessions will use.
  QueryResult run(Algo algo, const QueryConfig& config,
                  const QueryOptions& options, QueryId id);
  QueryResult runTopK(const TopKConfig& config, const QueryOptions& options,
                      QueryId id);

  // --- Asynchronous execution ---------------------------------------------

  /// Enqueues the query on the engine's pool and returns immediately.  The
  /// config and options are copied into the session, so the caller's may
  /// go out of scope.  Broadcast workers (options.broadcastThreads) are
  /// session-private and never borrowed from the submit pool, so submitted
  /// queries cannot deadlock it.
  QueryTicket submit(Algo algo, QueryConfig config, QueryOptions options = {});
  QueryTicket submitTopK(TopKConfig config, QueryOptions options = {});

  /// Shared-work submission: when `options.batching.enabled`, compatible
  /// queries submitted inside one batching window (same algorithm, subspace,
  /// window, and execution knobs — any thresholds) merge into ONE site-side
  /// descent at the loosest threshold, split back out per query.  Each
  /// ticket's answer is bit-identical to a solo run of its query; stats
  /// describe the shared descent.  Ineligible or unbatched queries fall
  /// back to the ordinary submit path.  The explicit-id overload serves
  /// front ends that advertise the session id before execution (dsudd).
  QueryTicket submitBatched(Algo algo, QueryConfig config,
                            QueryOptions options = {});
  QueryTicket submitBatched(Algo algo, QueryConfig config,
                            QueryOptions options, QueryId id);

  /// Queries currently executing or queued on this engine's pool (batched
  /// queries count from submission to ticket fulfilment).
  std::size_t inFlight() const noexcept {
    return inFlight_.load(std::memory_order_relaxed);
  }

 private:
  friend class BatchExecutor;

  QueryResult naiveImpl(const QueryConfig& config, const QueryOptions& options,
                        QueryId id);
  QueryResult dsudImpl(const QueryConfig& config, const QueryOptions& options,
                       QueryId id);
  QueryResult edsudImpl(const QueryConfig& config, const QueryOptions& options,
                        QueryId id);
  QueryResult topkImpl(const TopKConfig& config, const QueryOptions& options,
                       QueryId id);

  /// Cache-aware execution: consult the attached result cache, run the
  /// algorithm on a miss, store share-eligible answers.  All run/submit
  /// paths funnel through here.
  QueryResult dispatch(Algo algo, const QueryConfig& config,
                       const QueryOptions& options, QueryId id);
  /// Raw algorithm switch (no cache).
  QueryResult execute(Algo algo, const QueryConfig& config,
                      const QueryOptions& options, QueryId id);
  /// Synthesises a QueryResult from cached entries: progress callbacks
  /// replay per entry, stats report zero shipped work.
  QueryResult fromCache(std::vector<GlobalSkylineEntry> entries,
                        const QueryOptions& options, QueryId id);

  ThreadPool& pool();
  BatchExecutor& batch();

  template <typename Fn>
  QueryTicket enqueue(QueryId id, Fn task);

  Coordinator* coord_;
  std::size_t workers_;
  ResultCache* cache_ = nullptr;
  std::mutex poolMutex_;            // guards lazy pool/batch creation
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::size_t> inFlight_{0};
  // After pool_ so it is destroyed first: pending groups flush onto the
  // pool during the executor's teardown.
  std::unique_ptr<BatchExecutor> batch_;
};

/// True when answers of a run at a looser threshold can be filtered down to
/// any tighter threshold bit for bit — the predicate gating both the result
/// cache and batch merging.  Requires a q-invariant emission order:
/// kThresholdBound pruning is exact (feedback never removes qualified
/// answers) and every algorithm emits in an order independent of q — naive
/// in ascending BBS key order, DSUD in descending local-probability order,
/// e-DSUD likewise under kEager (a kPark stall reorders streams depending
/// on q, so parked configurations are excluded).
bool shareEligible(Algo algo, const QueryConfig& config) noexcept;

}  // namespace dsud
