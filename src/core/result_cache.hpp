// Bounded, sharded LRU cache of global-skyline answers, shared by every
// query session of one engine.
//
// Motivation (ROADMAP item 3): after the SoA kernel rewrite the dominant
// cost of a busy dsudd is running the same descent over and over — N
// concurrent clients asking the same (or a threshold-banded) query each
// paid a full distributed round trip.  One answer computed at threshold
// qBase serves every later query at q >= qBase over the same dataset
// version, because the qualifying algorithms emit answers in a q-invariant
// order (see shareEligible in core/query_engine.hpp): filtering the stored
// entries to globalSkyProb >= q reproduces the tighter run bit for bit.
//
// Key: (combined dataset version, algorithm, effective mask, prune/bound/
// expunge knobs, constraint window) — everything except the threshold,
// which is the band dimension.  The dataset version comes from
// Coordinator::datasetVersion(), bumped by the Sec. 5.4 maintenance path
// via per-site counters piggybacked on applyInsert/applyDelete responses;
// an update therefore retires every stale verdict without touching the
// cache (old-version entries simply stop being looked up and age out of
// the LRU).
//
// Thread-safety: fully thread-safe; the table is sharded by key hash so
// concurrent sessions rarely contend on one mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "obs/metrics.hpp"
#include "skyline/spec.hpp"

namespace dsud {

struct ResultCacheConfig {
  /// Total cached answers across all shards (0 disables the cache: every
  /// lookup misses, inserts are dropped).
  std::size_t capacity = 256;
  std::size_t shards = 8;
};

class ResultCache {
 public:
  /// Everything that determines a run's answer list except the threshold.
  struct Key {
    std::uint64_t datasetVersion = 0;
    /// Membership epoch the answer was computed on.  Folded in so a layout
    /// change (site join/leave, rebalance) retires every cached verdict even
    /// when the per-site mutation counters happen to match — e.g. a
    /// remove-then-add sequence that lands on the same combined version.
    std::uint64_t epoch = 0;
    Algo algo = Algo::kEdsud;
    DimMask mask = 0;  ///< effective mask (already resolved against dims)
    PruneRule prune = PruneRule::kThresholdBound;
    FeedbackBound bound = FeedbackBound::kQueuedAndConfirmed;
    ExpungePolicy expunge = ExpungePolicy::kEager;
    std::optional<Rect> window;

    bool operator==(const Key& other) const noexcept;
  };

  /// `metrics` may be null (no instruments).  The hit/miss/insert/evict
  /// counters are registered up front so they expose as zero series from
  /// the first scrape.
  explicit ResultCache(ResultCacheConfig config = {},
                       obs::MetricsRegistry* metrics = nullptr);

  /// Answer for `key` at threshold `q`, or nullopt.  A stored answer
  /// computed at qBase serves any q >= qBase: the returned entries are the
  /// stored ones filtered to globalSkyProb >= q, preserving emission order.
  std::optional<std::vector<GlobalSkylineEntry>> lookup(const Key& key,
                                                        double q);

  /// Stores the answer of a completed run at threshold `qBase`.  When the
  /// key is already present the entry with the smaller qBase wins (it
  /// serves a superset of thresholds).
  void insert(const Key& key, double qBase,
              std::vector<GlobalSkylineEntry> entries);

  /// Drops every cached answer (all shards).  Mostly for tests and benches;
  /// normal invalidation happens by version, not by flushing.
  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return config_.capacity; }

 private:
  struct Value {
    double qBase = 0.0;
    std::vector<GlobalSkylineEntry> entries;  ///< emission order of the run
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// LRU order, most recent first; the map points into this list.
    std::list<std::pair<Key, Value>> order;
    std::unordered_map<Key, std::list<std::pair<Key, Value>>::iterator,
                       KeyHash>
        index;
  };

  Shard& shardFor(const Key& key) noexcept {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  ResultCacheConfig config_;
  std::size_t perShardCapacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Null when no registry was given.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace dsud
