// The baseline approach (paper Sec. 3.2): every site ships its entire
// uncertain database to H, which answers the query centrally (BBS over a
// bulk-loaded PR-tree).  Communication cost is |D| = Σ |D_i| tuples — the
// upper bound both DSUD algorithms are measured against.
#include "common/dataset.hpp"
#include "core/query_engine.hpp"
#include "core/query_run.hpp"
#include "skyline/bbs.hpp"

namespace dsud {

QueryResult QueryEngine::naiveImpl(const QueryConfig& config,
                                   const QueryOptions& options, QueryId id) {
  internal::QueryRun run(*coord_, "naive", options, id);
  const DimMask mask = config.effectiveMask(coord_->dims());

  // Collect every tuple, remembering its origin site.  No kPrepare is sent,
  // so the sites hold no session state to release afterwards.
  Dataset unified(coord_->dims());
  std::unordered_map<TupleId, SiteId> origin;
  {
    obs::TraceSpan collect = run.span("ship_all");
    for (const auto& s : run.sessions) {
      run.throwIfCancelled();  // no rounds here; check per site instead
      obs::TraceSpan pull = run.span("pull");
      pull.attr("site", s->siteId());
      ShipAllResponse shipment;
      try {
        shipment = s->shipAll();
      } catch (const NetError&) {
        if (!run.degradeOk()) throw;
        run.markDead(s->siteId());
        continue;
      }
      pull.attr("tuples", static_cast<double>(shipment.tuples.size()));
      origin.reserve(origin.size() + shipment.tuples.size());
      for (const Tuple& t : shipment.tuples) {
        unified.add(t);
        origin.emplace(t.id, s->siteId());
      }
    }
    if (run.dead.size() == run.sessions.size()) {
      throw NetError("runNaive: all sites unavailable");
    }
  }
  run.result.stats.candidatesPulled = unified.size();
  if (run.pulls != nullptr) run.pulls->add(unified.size());

  // Centralised answer, reported progressively in BBS order.
  obs::TraceSpan answer = run.span("central_bbs");
  const PRTree tree = PRTree::bulkLoad(unified);
  const Rect* clip = config.window ? &*config.window : nullptr;
  bbsSkylineStream(
      tree, {.mask = mask, .q = config.q, .clip = clip},
      [&](const ProbSkylineEntry& e) {
        run.throwIfCancelled();
        Candidate c;
        c.site = origin.at(e.id);
        c.tuple = Tuple(e.id, e.values, e.prob);
        c.localSkyProb = e.skyProb;  // over the unified database == global
        run.emit(c, e.skyProb);
        return true;
      });
  return run.finalize();
}

}  // namespace dsud
