// A local site S_i: owns the uncertain database D_i, its PR-tree, the
// per-query sessions of every in-flight query, and the replica of SKY(H)
// used by update maintenance (paper Secs. 4–6).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/dataset.hpp"
#include "core/protocol.hpp"
#include "index/prtree.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "skyline/skyline_result.hpp"

namespace dsud {

/// Site-side protocol engine.
///
/// Thread-safety contract: every protocol method is internally synchronised
/// by one site-wide mutex, so any number of query sessions (and their
/// broadcast workers) may call concurrently — calls serialise per site but
/// proceed in parallel across sites.  Query state is keyed by QueryId, so
/// interleaved sessions never observe each other's cursors or pruning.
/// Update maintenance (applyInsert/applyDelete/...) mutates the PR-tree;
/// individual calls are safe against concurrent queries, but a query that
/// spans an update observes a half-applied database — run updates only
/// while no query is in flight (see docs/ARCHITECTURE.md §9).
class LocalSite {
 public:
  /// Builds the PR-tree over `db` by STR bulk load.  The store is live
  /// (serving queries) immediately.
  LocalSite(SiteId id, const Dataset& db, PRTree::Options options = {});

  /// Staging store for an online join/repartition: starts empty and
  /// query-rejecting; tuples arrive via streamTuples and joinSite seals it
  /// with the same STR bulk load as the live constructor — a store built by
  /// streaming is bit-identical to one built from the assembled dataset.
  LocalSite(SiteId id, std::size_t dims, PRTree::Options options = {});

  /// Lifecycle of a store under elastic membership.  kStaging rejects
  /// queries (data still streaming in); kLive serves everything; kDraining
  /// keeps serving — its tree holds the retired epoch's full partition —
  /// so sessions that pinned that epoch's view finish correctly even if
  /// they prepare after the drain.  The store dies when the last pinned
  /// view drops its shared_ptr.
  enum class Phase : std::uint8_t { kStaging, kLive, kDraining };
  Phase phase() const;

  SiteId id() const noexcept { return id_; }
  std::size_t size() const noexcept { return tree_.size(); }
  const PRTree& tree() const noexcept { return tree_; }

  /// Attaches a metrics registry (null detaches).  The site then maintains
  /// per-site instruments: `dsud_site_node_accesses_total{site=...}`
  /// (PR-tree nodes visited by its query walks) and
  /// `dsud_site_pruned_total{site=...}` (Local-Pruning victims).  The
  /// registry must outlive the site.  Wiring-time only: must not race with
  /// protocol calls.
  void setMetrics(obs::MetricsRegistry* registry);

  /// Enables a site-level tracer (capped at `maxEvents` spans; 0 disables)
  /// for session-less update-maintenance traffic — applyInsert, applyDelete,
  /// repairDelete, replica ops.  Fetchable with kFetchTrace{query == 0}.
  /// Wiring-time only: must not race with protocol calls.
  void setMaintenanceTrace(std::size_t maxEvents);

  // --- Query protocol ------------------------------------------------------

  /// Local computing phase (framework step 1): computes SKY(D_i) = {t :
  /// P_sky(t, D_i) >= q} sorted by descending probability and stores it as
  /// the session state of `request.query` (replacing any previous session
  /// with that id).
  PrepareResponse prepare(const PrepareRequest& request);

  /// To-Server phase: the best remaining local-skyline tuple of the
  /// requested session, or empty when it is exhausted (or unknown).
  NextCandidateResponse nextCandidate(const NextCandidateRequest& request);

  /// Server-Delivery + Local-Pruning phases: returns Π (1 − P(t')) over the
  /// local dominators of the delivered tuple (Observation 1) in the
  /// requested subspace and, when requested, prunes the remaining local
  /// skyline of `request.query` with that session's configured rule.
  EvaluateResponse evaluate(const EvaluateRequest& request);

  /// Naive baseline: the whole local database.
  ShipAllResponse shipAll() const;

  /// Drops the session state of one query (idempotent).
  void finishQuery(const FinishQueryRequest& request);

  /// Snapshot of one session's span timeline (or of the maintenance
  /// timeline for query == kNoQuery).  Non-clearing, so a retried fetch is
  /// idempotent; spans are released by finishQuery with the session.
  FetchTraceResponse fetchTrace(const FetchTraceRequest& request) const;

  /// Moves the spans recorded since the last call out of `query`'s session
  /// tracer — the piggyback trailer SiteServer appends to query responses.
  /// nullopt when the session doesn't exist or doesn't piggyback.
  std::optional<obs::QueryTrace> takePiggybackDelta(QueryId query);

  // --- Elastic membership (online join / leave) ----------------------------

  /// Appends one ordered batch to the staging dataset.  Replay-protected by
  /// `seq` (a repeated or stale seq acks without appending — batch append is
  /// not idempotent).  Throws std::logic_error on a live store and
  /// std::invalid_argument on a partition/dimensionality mismatch.
  StreamTuplesResponse streamTuples(const StreamTuplesRequest& request);

  /// Seals a staging store: one STR bulk load over everything streamed, then
  /// the store is live.  Idempotent — joining a live store just acks.
  JoinSiteResponse joinSite(const JoinSiteRequest& request);

  /// Marks the store draining: the cluster has retired it from routing, but
  /// it keeps serving sessions pinned to the retired epoch until the last
  /// pinned view releases it.  Idempotent.
  LeaveSiteResponse leaveSite(const LeaveSiteRequest& request);

  // --- Update maintenance (Sec. 5.4) ---------------------------------------

  ApplyInsertResponse applyInsert(const ApplyInsertRequest& request);
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest& request);

  /// Monotone mutation counter of this site's database: 0 at construction,
  /// bumped by every applyInsert and every applyDelete that actually erased
  /// a tuple.  Stamped on the maintenance responses so the coordinator's
  /// combined dataset version (and with it the result cache) tracks the
  /// cluster state without extra RPCs.
  std::uint64_t datasetVersion() const;

  /// After a delete elsewhere: search the region dominated by the deleted
  /// tuple for local tuples that may now qualify globally (not already in
  /// the replica, provable upper bound >= request.q).
  RepairDeleteResponse repairDelete(const RepairDeleteRequest& request);

  void replicaAdd(const ReplicaAddRequest& request);
  void replicaRemove(const ReplicaRemoveRequest& request);

  /// Current replica of SKY(H) (for tests and examples).
  struct ReplicaEntry {
    Candidate entry;
    double globalSkyProb = 0.0;
  };
  std::vector<ReplicaEntry> replica() const;

  /// Remaining (unshipped, unpruned) local skyline size of one session
  /// (0 for unknown ids).
  std::size_t pendingCount(QueryId query) const;
  /// Number of query sessions currently holding state at this site.
  std::size_t sessionCount() const;

 private:
  /// Π (1 − P(r)) over replica entries from *other* sites dominating `v`.
  double replicaExternalSurvivalLocked(std::span<const double> v,
                                       DimMask mask) const;

  /// Publishes the PR-tree node-access delta since the last flush.
  void flushTreeMetricsLocked();

  struct PendingEntry {
    ProbSkylineEntry entry;
    /// Running Π (1 − P(t)) over external feedback tuples dominating this
    /// entry (threshold prune rule).
    double extSurvival = 1.0;
  };

  /// State of one query at this site — the session the coordinator opens
  /// with kPrepare and releases with kFinishQuery.
  ///
  /// The replay caches give retried kNextCandidate/kEvaluate exactly-once
  /// semantics: the coordinator numbers each logical operation (seq, per
  /// session and direction), and a request repeating the last seen seq is
  /// answered with the cached response instead of re-executing — cursor
  /// advancement and extSurvival accumulation are not idempotent.  One slot
  /// each suffices because the RPC layer never pipelines: a new seq is only
  /// issued once the previous operation succeeded or was abandoned.
  struct Session {
    double q = 0.3;
    DimMask mask = 0;
    PruneRule prune = PruneRule::kThresholdBound;
    std::optional<Rect> window;          // constrained-query session window
    std::vector<PendingEntry> pending;   // descending skyProb; front is next
    std::uint64_t lastNextSeq = 0;       // replay cache: kNextCandidate
    NextCandidateResponse lastNext;
    std::uint64_t lastEvalSeq = 0;       // replay cache: kEvaluate
    EvaluateResponse lastEval;
    /// Session span timeline (null when the query doesn't trace).  Spans
    /// are flat (no nesting) so piggyback deltas need no id translation.
    std::unique_ptr<obs::Tracer> tracer;
    bool piggyback = false;  // ship spans as response trailers vs kFetchTrace
  };

  // Maintenance-tracer helpers (no-ops when setMaintenanceTrace is off).
  obs::SpanId maintBeginLocked(std::string_view name);
  void maintAttrLocked(obs::SpanId span, std::string_view key, double value);
  void maintEndLocked(obs::SpanId span);

  SiteId id_;
  PRTree tree_;
  DimMask fullMask_;
  PRTree::Options treeOptions_;  ///< for the joinSite seal
  Phase phase_ = Phase::kLive;
  /// Streamed tuples awaiting the seal (non-null only while kStaging).
  std::unique_ptr<Dataset> staging_;
  std::uint64_t lastStreamSeq_ = 0;  ///< replay cache: kStreamTuples

  mutable std::mutex mutex_;  // guards sessions_, replica_, tree_ walks
  std::unordered_map<QueryId, Session> sessions_;
  std::vector<ReplicaEntry> replica_;
  std::uint64_t datasetVersion_ = 0;  // mutations applied to tree_
  std::unique_ptr<obs::Tracer> maintTracer_;  // session-less maintenance ops

  // Observability (null when no registry is attached).
  obs::Counter* nodeAccesses_ = nullptr;
  obs::Counter* pruned_ = nullptr;
  std::uint64_t flushedAccesses_ = 0;
};

/// Frame dispatcher: decodes requests, invokes the site, encodes responses.
/// The returned handler is what both transports plug into.  Stateless apart
/// from the site pointer, so one server may back any number of channels —
/// thread-safety is the site's (see LocalSite).
class SiteServer {
 public:
  explicit SiteServer(LocalSite& site) : site_(&site) {}

  Frame handle(const Frame& request);

  FrameHandler handler() {
    return [this](const Frame& f) { return handle(f); };
  }

 private:
  LocalSite* site_;
};

}  // namespace dsud
