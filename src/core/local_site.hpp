// A local site S_i: owns the uncertain database D_i, its PR-tree, the
// remaining local skyline of the active query session, and the replica of
// SKY(H) used by update maintenance (paper Secs. 4–6).
#pragma once

#include <optional>
#include <vector>

#include "common/dataset.hpp"
#include "core/protocol.hpp"
#include "index/prtree.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "skyline/skyline_result.hpp"

namespace dsud {

/// Site-side protocol engine.  Not thread-safe; one protocol session at a
/// time (matching the strictly sequential coordinator).
class LocalSite {
 public:
  /// Builds the PR-tree over `db` by STR bulk load.
  LocalSite(SiteId id, const Dataset& db, PRTree::Options options = {});

  SiteId id() const noexcept { return id_; }
  std::size_t size() const noexcept { return tree_.size(); }
  const PRTree& tree() const noexcept { return tree_; }

  /// Attaches a metrics registry (null detaches).  The site then maintains
  /// per-site instruments: `dsud_site_node_accesses_total{site=...}`
  /// (PR-tree nodes visited by its query walks) and
  /// `dsud_site_pruned_total{site=...}` (Local-Pruning victims).  The
  /// registry must outlive the site.
  void setMetrics(obs::MetricsRegistry* registry);

  // --- Query protocol ------------------------------------------------------

  /// Local computing phase (framework step 1): computes SKY(D_i) = {t :
  /// P_sky(t, D_i) >= q} sorted by descending probability.  Resets any
  /// previous session state.
  PrepareResponse prepare(const PrepareRequest& request);

  /// To-Server phase: the best remaining local-skyline tuple, or empty when
  /// the site is exhausted.
  NextCandidateResponse nextCandidate();

  /// Server-Delivery + Local-Pruning phases: returns Π (1 − P(t')) over the
  /// local dominators of the delivered tuple (Observation 1) and, when
  /// requested, prunes the remaining local skyline with the configured rule.
  EvaluateResponse evaluate(const EvaluateRequest& request);

  /// Naive baseline: the whole local database.
  ShipAllResponse shipAll() const;

  // --- Update maintenance (Sec. 5.4) ---------------------------------------

  ApplyInsertResponse applyInsert(const ApplyInsertRequest& request);
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest& request);

  /// After a delete elsewhere: search the region dominated by the deleted
  /// tuple for local tuples that may now qualify globally (not already in
  /// the replica, provable upper bound >= q).
  RepairDeleteResponse repairDelete(const RepairDeleteRequest& request);

  void replicaAdd(const ReplicaAddRequest& request);
  void replicaRemove(const ReplicaRemoveRequest& request);

  /// Current replica of SKY(H) (for tests and examples).
  struct ReplicaEntry {
    Candidate entry;
    double globalSkyProb = 0.0;
  };
  const std::vector<ReplicaEntry>& replica() const noexcept {
    return replica_;
  }

  /// Remaining (unshipped, unpruned) local skyline size of the session.
  std::size_t pendingCount() const noexcept { return pending_.size(); }

 private:
  /// Π (1 − P(r)) over replica entries from *other* sites dominating `v`.
  double replicaExternalSurvival(std::span<const double> v) const;

  /// Publishes the PR-tree node-access delta since the last flush.
  void flushTreeMetrics();

  struct PendingEntry {
    ProbSkylineEntry entry;
    /// Running Π (1 − P(t)) over external feedback tuples dominating this
    /// entry (threshold prune rule).
    double extSurvival = 1.0;
  };

  SiteId id_;
  PRTree tree_;

  // Active query session.
  double q_ = 0.3;
  DimMask mask_;
  PruneRule prune_ = PruneRule::kThresholdBound;
  std::optional<Rect> window_;         // constrained-query session window
  std::vector<PendingEntry> pending_;  // descending skyProb; front is next

  std::vector<ReplicaEntry> replica_;

  // Observability (null when no registry is attached).
  obs::Counter* nodeAccesses_ = nullptr;
  obs::Counter* pruned_ = nullptr;
  std::uint64_t flushedAccesses_ = 0;
};

/// Frame dispatcher: decodes requests, invokes the site, encodes responses.
/// The returned handler is what both transports plug into.
class SiteServer {
 public:
  explicit SiteServer(LocalSite& site) : site_(&site) {}

  Frame handle(const Frame& request);

  FrameHandler handler() {
    return [this](const Frame& f) { return handle(f); };
  }

 private:
  LocalSite* site_;
};

}  // namespace dsud
