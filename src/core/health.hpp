// Per-site health tracking: a consecutive-failure circuit breaker with a
// deterministic half-open probe.
//
// The breaker counts *operations* (one retried RPC, however many attempts
// the RetryPolicy spent on it), not individual attempts — retries are the
// first line of defence, the breaker the second.  States:
//
//   Closed    — healthy: every operation admitted;
//   Open      — `failureThreshold` consecutive operations failed: admissions
//               are rejected outright (callers fail fast with SiteFailure
//               instead of burning their retry budget on a dead site);
//   Half-open — after `probeAfter` rejected admissions, one probe operation
//               is let through: success closes the breaker, failure re-opens
//               it and the rejection count starts over.
//
// The half-open transition is driven by the *number of rejections*, not by
// wall time, so breaker behaviour in tests and benchmarks is a pure
// function of the call sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace dsud {

struct CircuitBreakerConfig {
  /// Consecutive failed operations that open the breaker.
  std::uint32_t failureThreshold = 3;
  /// Rejected admissions while open before one half-open probe is allowed.
  std::uint32_t probeAfter = 8;
};

/// Health of one site, shared by every query session talking to it.
/// Thread-safe; one instance per site lives on the Coordinator.
class SiteHealth {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// `metrics` (nullable) receives dsud_site_health{site} (1 closed, 0.5
  /// half-open, 0 open) and dsud_breaker_trips_total{site}.
  explicit SiteHealth(SiteId site, CircuitBreakerConfig config = {},
                      obs::MetricsRegistry* metrics = nullptr);

  /// Whether the next operation may proceed.  Closed/half-open admit; open
  /// rejects until `probeAfter` rejections have accumulated, then flips to
  /// half-open and admits the probe.
  bool admit();

  /// Outcome of one admitted operation.
  void recordSuccess();
  void recordFailure();

  SiteId site() const noexcept { return site_; }
  State state() const;
  std::uint32_t consecutiveFailures() const;
  std::uint64_t trips() const;

 private:
  void setStateLocked(State next);

  SiteId site_;
  CircuitBreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::uint32_t consecutiveFailures_ = 0;
  std::uint32_t rejections_ = 0;  ///< admissions rejected since opening
  std::uint64_t trips_ = 0;
  obs::Gauge* healthGauge_ = nullptr;
  obs::Counter* tripCounter_ = nullptr;
};

}  // namespace dsud
