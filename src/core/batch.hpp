// Shared-work batch executor (ROADMAP item 3, tentpole of the sharing
// layer).
//
// N concurrent queries over one cluster used to mean N independent PR-tree
// descents even when they differed only by threshold.  submitBatched parks
// a query for a short batching window (QueryOptions::batching); compatible
// queries arriving inside the window — same algorithm, effective mask,
// constraint window, prune/bound/expunge knobs, and fault handling; ANY
// thresholds q1 <= q2 <= ... — merge into one group.  The group runs as a
// single engine session (the "leader") at the loosest threshold min(q_i),
// and each member's answer is split back out coordinator-side by filtering
// the shared answer stream to globalSkyProb >= q_i.
//
// Why the split is exact: for share-eligible configurations (see
// shareEligible in query_engine.hpp) the emission order is q-invariant and
// every answer's P_gsky is computed by the same site-order survival
// product, so the filtered stream is bit-identical — content, order, and
// probabilities — to a solo run at q_i.  Member progress callbacks fire
// live from the leader's thread with per-member renumbered sequence
// numbers; member stats report the shared descent's totals.
//
// The leader runs through QueryEngine::dispatch, so a result-cache hit
// resolves a whole group without any descent at all.
#pragma once

#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query_engine.hpp"
#include "obs/metrics.hpp"

namespace dsud {

/// One engine's batching window.  Created lazily by
/// QueryEngine::submitBatched; owns a timer thread that flushes due groups
/// onto the engine's pool.  Thread-safe.
class BatchExecutor {
 public:
  /// `metrics` may be null.  The merge counters are registered up front so
  /// they expose as zero series from the first scrape.
  BatchExecutor(QueryEngine& engine, obs::MetricsRegistry* metrics);

  /// Flushes every pending group inline, then joins the timer thread.
  /// Outstanding tickets complete before destruction returns.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Joins (or opens) a group for this query and returns its ticket.  The
  /// group flushes when its window expires or it reaches maxMerge members.
  QueryTicket submit(Algo algo, QueryConfig config, QueryOptions options,
                     QueryId id);

 private:
  using Clock = std::chrono::steady_clock;

  struct Member {
    QueryId id = kNoQuery;
    double q = 0.0;
    ProgressCallback progress;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::promise<QueryResult> promise;
  };

  struct Group {
    Algo algo = Algo::kEdsud;
    QueryConfig config;    ///< first member's; q is rewritten at flush
    QueryOptions options;  ///< leader template (fault, broadcast workers)
    Clock::time_point deadline;
    std::size_t maxMerge = 64;
    std::vector<Member> members;
  };

  bool compatible(const Group& group, Algo algo, const QueryConfig& config,
                  const QueryOptions& options) const;
  void timerLoop();
  /// Counts the flush and hands the group to the engine pool (or runs it on
  /// the calling thread when `inlineRun`, the destructor's path).  Never
  /// holds the executor mutex.
  void launchFlush(std::shared_ptr<Group> group, bool inlineRun = false);
  /// Leader run + per-member split.  Static on purpose: flush tasks queued
  /// on the engine pool must not touch executor state that may be tearing
  /// down.
  static void runGroup(QueryEngine& engine, Group& group);

  QueryEngine* engine_;
  obs::Counter* merged_ = nullptr;    ///< members beyond the first, per flush
  obs::Counter* flushes_ = nullptr;   ///< groups executed
  obs::Histogram* width_ = nullptr;   ///< members per flushed group

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::list<std::shared_ptr<Group>> pending_;
  std::thread timer_;
};

}  // namespace dsud
