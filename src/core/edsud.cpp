// e-DSUD (paper Sec. 5.2).
//
// Like DSUD, but the coordinator additionally maintains, for every queued
// candidate s, an upper bound P*_gsky(s) on its exact global skyline
// probability (see core/bound_queue.hpp for the Observation-2 / Corollary-2
// witness machinery).  A candidate whose bound falls below q is *expunged*
// without its (m−1)-tuple broadcast — the source of e-DSUD's bandwidth
// advantage over DSUD.  Two scheduling policies are provided:
//
//   kEager (default): expunge immediately (sweep to a fixpoint each round),
//   keeping every site stream flowing so strong pruners reach the
//   coordinator early;
//
//   kPark (the paper's Sec. 5.3 walkthrough): stall sub-threshold
//   candidates — and their sites — until no broadcastable candidate
//   remains; the stalled streams may be pruned site-side for free.
//
// Feedback selection among qualified candidates is by largest local skyline
// probability (the strongest pruners first); see DESIGN.md 3.4 and the A2
// ablation for why this beats selection by the bound itself.
#include "core/bound_queue.hpp"
#include "core/query_engine.hpp"
#include "core/query_run.hpp"

namespace dsud {

QueryResult QueryEngine::edsudImpl(const QueryConfig& config,
                                   const QueryOptions& options, QueryId id) {
  internal::QueryRun run(*coord_, "edsud", options, id);
  QueryStats& stats = run.result.stats;
  const DimMask mask = config.effectiveMask(coord_->dims());
  const PrepareRequest prep{run.id, config.q, mask, config.prune,
                            config.window};
  const NextCandidateRequest cursor{run.id};

  internal::BoundQueue queue(mask, config.bound);
  const auto pullFrom = [&](SiteId site) {
    if (auto next = run.pull(site, cursor, stats)) {
      queue.add(std::move(*next));
    }
  };
  const auto expunge = [&](std::size_t index) {
    const Candidate victim = queue.take(index);
    {
      obs::TraceSpan span = run.span("expunge");
      span.attr("site", victim.site);
      span.attr("tuple", static_cast<double>(victim.tuple.id));
    }
    run.countExpunge(stats);
    pullFrom(victim.site);
  };

  {
    obs::TraceSpan prepare = run.span("prepare");
    run.prepareAll(prep);
    for (const auto& s : run.sessions) {
      pullFrom(s->siteId());
    }
  }

  while (!queue.empty()) {
    const auto round = run.roundScope();

    // Purge candidates whose site died mid-query: they can no longer be
    // broadcast or replaced.  Removing an entry only loses a *witness*,
    // which can only raise the surviving bounds — every expunge after the
    // purge stays provably safe.
    if (!run.dead.empty()) {
      for (std::size_t i = 0; i < queue.size();) {
        if (run.isDead(queue.candidate(i).site)) {
          queue.take(i);
        } else {
          ++i;
        }
      }
      if (queue.empty()) break;
    }

    if (config.expunge == ExpungePolicy::kEager) {
      // Expunge sweep to a fixpoint: replacements pulled for an expunged
      // candidate see all retained witnesses and may be expunged in turn.
      for (std::size_t i = queue.findExpungeable(config.q);
           i != internal::BoundQueue::npos;
           i = queue.findExpungeable(config.q)) {
        expunge(i);
      }
      if (queue.empty()) break;
    }

    const std::size_t best = queue.selectQualified(config.q);
    if (best == internal::BoundQueue::npos) {
      // kPark: every entry is provably unqualified; release one stream.
      expunge(queue.size() - 1);
      continue;
    }

    const Candidate c = queue.take(best);
    double globalSkyProb = 0.0;
    {
      obs::TraceSpan broadcast = run.span("broadcast");
      broadcast.attr("site", c.site);
      broadcast.attr("tuple", static_cast<double>(c.tuple.id));
      globalSkyProb =
          run.evaluateGlobally(c, /*pruneLocal=*/true, mask, config.window,
                               broadcast.id());
    }
    queue.confirm(c.tuple, globalSkyProb);
    if (globalSkyProb >= config.q) run.emit(c, globalSkyProb);
    pullFrom(c.site);
  }
  return run.finalize();
}

}  // namespace dsud
