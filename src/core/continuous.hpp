// Continuous distributed skyline over per-site sliding windows.
//
// The distributed counterpart of the stream setting in Sec. 2.2's related
// work: every site observes its own uncertain stream and keeps the most
// recent W elements; the coordinator continuously maintains the global
// probabilistic skyline over the union of all live windows.  Each stream
// arrival is exactly one insert plus (once warmed up) one expiry delete,
// both handled by the incremental maintenance machinery of Sec. 5.4 — so
// the answer set is exact after every append, at a per-event cost measured
// in a handful of tuples instead of a full re-query.
#pragma once

#include <deque>
#include <vector>

#include "core/updates.hpp"

namespace dsud {

class ContinuousDistributedSkyline {
 public:
  /// `initialWindows[i]` holds site i's current window contents in arrival
  /// order (oldest first); each must hold at most `windowPerSite` elements
  /// and match the cluster's site count.  The coordinator's sites must
  /// already contain exactly these tuples (build the cluster from them).
  ContinuousDistributedSkyline(Coordinator& coordinator, QueryConfig config,
                               std::size_t windowPerSite,
                               std::vector<std::vector<Tuple>> initialWindows);

  /// One stream arrival at `site`: expires that site's oldest element when
  /// its window is full, then inserts `t`.  Returns the combined
  /// maintenance cost.  Ids must be unique among live elements.
  UpdateStats append(SiteId site, const Tuple& t);

  /// Current exact global skyline, sorted by descending probability.
  std::vector<GlobalSkylineEntry> skyline() const {
    return maintainer_.skyline();
  }

  std::size_t windowPerSite() const noexcept { return windowPerSite_; }
  std::size_t liveCount(SiteId site) const {
    return windows_.at(site).size();
  }

 private:
  std::size_t windowPerSite_;
  std::vector<std::deque<Tuple>> windows_;
  SkylineMaintainer maintainer_;
};

}  // namespace dsud
