#include "core/failover.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/log.hpp"
#include "obs/recorder.hpp"

namespace dsud {

FailoverSiteHandle::FailoverSiteHandle(
    SiteId partition, std::vector<std::unique_ptr<SiteHandle>> replicas,
    obs::MetricsRegistry* metrics)
    : partition_(partition), replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument(
        "FailoverSiteHandle: at least one replica required");
  }
  for (const auto& r : replicas_) {
    if (!r || r->siteId() != partition_) {
      throw std::invalid_argument(
          "FailoverSiteHandle: replica id mismatch for partition " +
          std::to_string(partition_));
    }
  }
  if (metrics != nullptr) {
    failoverCounter_ = &metrics->counter(obs::labeled(
        "dsud_failovers_total", {{"site", std::to_string(partition_)}}));
  }
}

void FailoverSiteHandle::replayOnto(SiteHandle& replica) {
  if (!prepared_) return;  // session never opened here: nothing to rebuild
  replica.prepare(*prepared_);
  for (const LoggedOp& op : log_) {
    if (op.isNext) {
      replica.nextCandidate(op.next);
    } else {
      replica.evaluate(op.eval);
    }
  }
}

template <typename Fn>
auto FailoverSiteHandle::withFailover(Fn&& fn) {
  for (;;) {
    try {
      SiteHandle& replica = active();
      if (needReplay_) {
        replayOnto(replica);
        needReplay_ = false;
      }
      return fn(replica);
    } catch (const SiteFailure&) {
      // Terminal for this replica (retries and breaker already consulted
      // underneath).  Transport-agnostic errors (std::logic_error, decode
      // failures) propagate — a replica cannot fix a malformed request.
      if (active_ + 1 >= replicas_.size()) throw;
      ++active_;
      needReplay_ = true;
      if (failoverCounter_ != nullptr) failoverCounter_->inc();
      obs::eventLog().emit(
          LogLevel::kWarn, "failover", "failover",
          {obs::field("site", partition_),
           obs::field("replica", static_cast<std::uint64_t>(active_)),
           obs::field("replicas",
                      static_cast<std::uint64_t>(replicas_.size()))});
      // A replica died mid-query: the recent ring (retries, breaker trips)
      // explains why — preserve it.
      obs::flightRecorder().anomaly("failover");
    }
  }
}

PrepareResponse FailoverSiteHandle::prepare(const PrepareRequest& request) {
  PrepareResponse response =
      withFailover([&](SiteHandle& r) { return r.prepare(request); });
  // A (re-)prepare replaces the session wholesale: restart the log.
  prepared_ = request;
  log_.clear();
  return response;
}

NextCandidateResponse FailoverSiteHandle::nextCandidate(
    const NextCandidateRequest& request) {
  NextCandidateResponse response =
      withFailover([&](SiteHandle& r) { return r.nextCandidate(request); });
  LoggedOp op;
  op.isNext = true;
  op.next = request;
  log_.push_back(std::move(op));
  return response;
}

EvaluateResponse FailoverSiteHandle::evaluate(const EvaluateRequest& request) {
  EvaluateResponse response =
      withFailover([&](SiteHandle& r) { return r.evaluate(request); });
  LoggedOp op;
  op.eval = request;
  log_.push_back(std::move(op));
  return response;
}

ShipAllResponse FailoverSiteHandle::shipAll() {
  // Pure read over bit-identical stores: no session state to replay, but a
  // failover still advances so later session ops use the live replica.
  return withFailover([](SiteHandle& r) { return r.shipAll(); });
}

void FailoverSiteHandle::finishQuery(const FinishQueryRequest& request) {
  // Cleanup, not failover-worthy: dead replicas drop the session with the
  // store, and the callers treat finish as best-effort already.
  active().finishQuery(request);
}

ApplyInsertResponse FailoverSiteHandle::applyInsert(
    const ApplyInsertRequest& request) {
  return active().applyInsert(request);
}

ApplyDeleteResponse FailoverSiteHandle::applyDelete(
    const ApplyDeleteRequest& request) {
  return active().applyDelete(request);
}

RepairDeleteResponse FailoverSiteHandle::repairDelete(
    const RepairDeleteRequest& request) {
  return active().repairDelete(request);
}

void FailoverSiteHandle::replicaAdd(const ReplicaAddRequest& request) {
  active().replicaAdd(request);
}

void FailoverSiteHandle::replicaRemove(const ReplicaRemoveRequest& request) {
  active().replicaRemove(request);
}

FetchTraceResponse FailoverSiteHandle::fetchTrace(
    const FetchTraceRequest& request) {
  // Traces are observability, not answers: read the active replica only.
  return active().fetchTrace(request);
}

void FailoverSiteHandle::setTraceSink(obs::QueryTrace* sink) {
  // Attach everywhere: whichever replica ends up serving the session must
  // deliver its piggybacked spans into the same sink.
  for (const auto& r : replicas_) r->setTraceSink(sink);
}

std::uint32_t FailoverSiteHandle::lastAttempts() const noexcept {
  return active().lastAttempts();
}

std::uint64_t FailoverSiteHandle::lastNextSeq() const noexcept {
  return active().lastNextSeq();
}

std::uint64_t FailoverSiteHandle::lastEvalSeq() const noexcept {
  return active().lastEvalSeq();
}

SiteHealth* FailoverSiteHandle::sessionHealth() const noexcept {
  return active().sessionHealth();
}

}  // namespace dsud
