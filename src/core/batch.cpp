#include "core/batch.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"
#include "skyline/spec.hpp"

namespace dsud {

namespace {

bool sameFaultHandling(const FaultOptions& a, const FaultOptions& b) {
  return a.deadline == b.deadline &&
         a.retry.maxAttempts == b.retry.maxAttempts &&
         a.retry.initialBackoff == b.retry.initialBackoff &&
         a.retry.backoffMultiplier == b.retry.backoffMultiplier &&
         a.retry.maxBackoff == b.retry.maxBackoff &&
         a.onSiteFailure == b.onSiteFailure;
}

}  // namespace

BatchExecutor::BatchExecutor(QueryEngine& engine,
                             obs::MetricsRegistry* metrics)
    : engine_(&engine) {
  if (metrics != nullptr) {
    merged_ = &metrics->counter("dsud_batch_merged_total");
    flushes_ = &metrics->counter("dsud_batch_flushes_total");
    width_ = &metrics->histogram("dsud_batch_width",
                                 {1, 2, 4, 8, 16, 32, 64, 128});
  }
  timer_ = std::thread([this] { timerLoop(); });
}

BatchExecutor::~BatchExecutor() {
  std::list<std::shared_ptr<Group>> leftovers;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    leftovers.swap(pending_);
  }
  cv_.notify_all();
  timer_.join();
  // Groups still waiting for their window run inline: every ticket resolves
  // before the executor (and with it the engine) goes away.
  for (const auto& group : leftovers) launchFlush(group, /*inlineRun=*/true);
}

bool BatchExecutor::compatible(const Group& group, Algo algo,
                               const QueryConfig& config,
                               const QueryOptions& options) const {
  if (group.algo != algo) return false;
  const std::size_t dims = engine_->coordinator().dims();
  if (group.config.effectiveMask(dims) != config.effectiveMask(dims)) {
    return false;
  }
  if (group.config.prune != config.prune ||
      group.config.bound != config.bound ||
      group.config.expunge != config.expunge) {
    return false;
  }
  const SkylineSpec mine{0, 0.0,
                         group.config.window ? &*group.config.window : nullptr};
  const SkylineSpec theirs{0, 0.0,
                           config.window ? &*config.window : nullptr};
  if (!mine.compatibleWith(theirs)) return false;
  // Members share one leader session, so its failure semantics must be
  // everyone's failure semantics.
  return sameFaultHandling(group.options.fault, options.fault);
}

QueryTicket BatchExecutor::submit(Algo algo, QueryConfig config,
                                  QueryOptions options, QueryId id) {
  Member member;
  member.id = id;
  member.q = config.q;
  member.progress = options.progress;
  member.cancel = options.cancel;
  std::future<QueryResult> future = member.promise.get_future();

  engine_->inFlight_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<Group> full;
  {
    std::lock_guard lock(mutex_);
    Group* target = nullptr;
    std::shared_ptr<Group> targetRef;
    for (auto& group : pending_) {
      if (group->members.size() < group->maxMerge &&
          compatible(*group, algo, config, options)) {
        target = group.get();
        targetRef = group;
        break;
      }
    }
    if (target == nullptr) {
      auto group = std::make_shared<Group>();
      group->algo = algo;
      group->config = std::move(config);
      group->options = std::move(options);
      group->deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(std::max(
                                 group->options.batching.windowSeconds, 0.0)));
      group->maxMerge = std::max<std::size_t>(group->options.batching.maxMerge,
                                              1);
      pending_.push_back(group);
      target = group.get();
      targetRef = std::move(group);
    }
    target->members.push_back(std::move(member));
    if (target->members.size() >= target->maxMerge) {
      pending_.remove(targetRef);
      full = std::move(targetRef);
    }
  }
  if (full != nullptr) {
    launchFlush(std::move(full));
  } else {
    cv_.notify_one();  // the timer may need to re-arm for a nearer deadline
  }
  return QueryTicket(id, std::move(future));
}

void BatchExecutor::timerLoop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (pending_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      continue;
    }
    Clock::time_point next = pending_.front()->deadline;
    for (const auto& group : pending_) next = std::min(next, group->deadline);
    cv_.wait_until(lock, next,
                   [this, next] { return stopping_ || Clock::now() >= next; });
    if (stopping_) break;

    const Clock::time_point now = Clock::now();
    std::vector<std::shared_ptr<Group>> due;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if ((*it)->deadline <= now) {
        due.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& group : due) launchFlush(std::move(group));
      lock.lock();
    }
  }
}

void BatchExecutor::launchFlush(std::shared_ptr<Group> group, bool inlineRun) {
  const std::size_t width = group->members.size();
  if (flushes_ != nullptr) flushes_->inc();
  if (width_ != nullptr) width_->observe(static_cast<double>(width));
  if (merged_ != nullptr && width > 1) merged_->add(width - 1);
  obs::eventLog().emit(LogLevel::kInfo, "batch", "batch.flush",
                       {obs::field("algo", algoName(group->algo)),
                        obs::field("width", width)});
  QueryEngine* engine = engine_;
  if (inlineRun) {
    runGroup(*engine, *group);
    return;
  }
  try {
    engine->pool().submit(
        [engine, group = std::move(group)] { runGroup(*engine, *group); });
  } catch (const std::exception&) {
    // Pool already shut down (teardown race): run on the calling thread so
    // the members' tickets still resolve.
    runGroup(*engine, *group);
  }
}

void BatchExecutor::runGroup(QueryEngine& engine, Group& group) {
  // Members cancelled while parked observe QueryCancelled exactly like a
  // cancelled queued submit; they must not hold the group's threshold down.
  std::vector<Member*> live;
  live.reserve(group.members.size());
  for (Member& m : group.members) {
    if (m.cancel != nullptr && m.cancel->load(std::memory_order_relaxed)) {
      // Decrement before resolving the ticket: a caller returning from
      // get() must already see this query gone from inFlight().
      engine.inFlight_.fetch_sub(1, std::memory_order_relaxed);
      m.promise.set_exception(std::make_exception_ptr(QueryCancelled(m.id)));
    } else {
      live.push_back(&m);
    }
  }
  if (live.empty()) return;

  QueryConfig config = group.config;
  config.q = live.front()->q;
  for (const Member* m : live) config.q = std::min(config.q, m->q);
  const QueryId leaderId = live.front()->id;

  QueryOptions options = group.options;
  options.batching = {};
  options.cancel = nullptr;  // members may outlive any one client's interest
  options.traceCapacity = 0;
  std::vector<std::uint64_t> seq(live.size(), 0);
  options.progress = [&](const GlobalSkylineEntry& entry,
                         const ProgressPoint& point) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      Member& m = *live[i];
      if (entry.globalSkyProb < m.q || !m.progress) continue;
      ProgressPoint mine = point;
      mine.reported = ++seq[i];
      m.progress(entry, mine);
    }
  };

  QueryResult leader;
  try {
    leader = engine.dispatch(group.algo, config, options, leaderId);
    leader.profile.batch = live.size() > 1 ? "leader" : "solo";
    leader.profile.batchWidth = live.size();
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Member* m : live) {
      engine.inFlight_.fetch_sub(1, std::memory_order_relaxed);
      m->promise.set_exception(error);
    }
    return;
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    Member& m = *live[i];
    QueryResult result;
    result.id = m.id;
    result.stats = leader.stats;  // the shared descent's totals
    result.degraded = leader.degraded;
    result.excludedSites = leader.excludedSites;
    result.profile = leader.profile;  // the shared descent's cost, per member
    if (m.id != leaderId) result.profile.batch = "member";
    for (std::size_t j = 0; j < leader.skyline.size(); ++j) {
      const GlobalSkylineEntry& entry = leader.skyline[j];
      if (entry.globalSkyProb < m.q) continue;
      result.skyline.push_back(entry);
      ProgressPoint point =
          j < leader.progress.size() ? leader.progress[j] : ProgressPoint{};
      point.reported = result.skyline.size();
      result.progress.push_back(point);
    }
    engine.inFlight_.fetch_sub(1, std::memory_order_relaxed);
    m.promise.set_value(std::move(result));
  }
}

}  // namespace dsud
