#include "core/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/log.hpp"

namespace dsud {

void sortByGlobalProbability(std::vector<GlobalSkylineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const GlobalSkylineEntry& a, const GlobalSkylineEntry& b) {
              if (a.globalSkyProb != b.globalSkyProb) {
                return a.globalSkyProb > b.globalSkyProb;
              }
              return a.tuple.id < b.tuple.id;
            });
}

const char* algoName(Algo algo) noexcept {
  switch (algo) {
    case Algo::kNaive: return "naive";
    case Algo::kDsud: return "dsud";
    case Algo::kEdsud: return "edsud";
  }
  return "unknown";
}

Coordinator::Coordinator(BandwidthMeter* meter, std::size_t dims,
                         obs::MetricsRegistry* metrics,
                         CircuitBreakerConfig breaker)
    : meter_(meter), dims_(dims), metrics_(metrics), breaker_(breaker) {
  if (metrics_ != nullptr) {
    epochGauge_ = &metrics_->gauge("dsud_membership_epoch");
  }
}

Coordinator::Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
                         BandwidthMeter* meter, std::size_t dims,
                         obs::MetricsRegistry* metrics,
                         CircuitBreakerConfig breaker)
    : Coordinator(meter, dims, metrics, breaker) {
  if (sites.empty()) {
    throw std::invalid_argument("Coordinator: at least one site required");
  }
  auto view = std::make_shared<ClusterView>();
  view->partitions.reserve(sites.size());
  for (auto& s : sites) {
    if (!s) throw std::invalid_argument("Coordinator: null site handle");
    ReplicaChain chain;
    chain.partition = s->siteId();
    chain.health.push_back(&healthFor(chain.partition));
    chain.replicas.emplace_back(std::move(s));
    view->partitions.push_back(std::move(chain));
  }
  installView(std::move(view));
}

std::shared_ptr<const ClusterView> Coordinator::view() const {
  std::lock_guard lock(viewMutex_);
  return view_;
}

void Coordinator::installView(std::shared_ptr<const ClusterView> view) {
  if (!view || view->partitions.empty()) {
    throw std::invalid_argument("Coordinator: view needs >= 1 partition");
  }
  for (const ReplicaChain& chain : view->partitions) {
    if (chain.replicas.empty() ||
        chain.replicas.size() != chain.health.size()) {
      throw std::invalid_argument(
          "Coordinator: malformed replica chain for partition " +
          std::to_string(chain.partition));
    }
    for (const auto& r : chain.replicas) {
      if (!r || r->siteId() != chain.partition) {
        throw std::invalid_argument(
            "Coordinator: replica id mismatch for partition " +
            std::to_string(chain.partition));
      }
    }
  }
  if (epochGauge_ != nullptr) {
    epochGauge_->set(static_cast<double>(view->epoch));
  }
  obs::eventLog().emit(
      LogLevel::kInfo, "topology", "topology.install",
      {obs::field("epoch", view->epoch),
       obs::field("partitions", view->partitions.size())});
  std::lock_guard lock(viewMutex_);
  view_ = std::move(view);
}

SiteHealth& Coordinator::healthFor(SiteId host) {
  std::lock_guard lock(healthMutex_);
  auto& slot = health_[host];
  if (!slot) {
    slot = std::make_unique<SiteHealth>(host, breaker_, metrics_);
  }
  return *slot;
}

const ReplicaChain& Coordinator::chainById(const ClusterView& view,
                                           SiteId id) const {
  for (const ReplicaChain& chain : view.partitions) {
    if (chain.partition == id) return chain;
  }
  throw std::out_of_range("Coordinator: unknown site id " +
                          std::to_string(id));
}

SiteHandle& Coordinator::siteById(SiteId id) {
  return *chainById(*view(), id).replicas[0];
}

void Coordinator::noteSiteVersion(SiteId site, std::uint64_t version) {
  std::lock_guard lock(versionMutex_);
  std::uint64_t& seen = siteVersions_[site];
  if (version <= seen) return;  // replayed or stale stamp
  datasetVersion_.fetch_add(version - seen, std::memory_order_acq_rel);
  seen = version;
}

void Coordinator::resetSiteVersions() {
  std::lock_guard lock(versionMutex_);
  siteVersions_.clear();
}

ApplyInsertResponse Coordinator::applyInsert(SiteId site,
                                             const ApplyInsertRequest& r) {
  const auto view = this->view();
  const ReplicaChain& chain = chainById(*view, site);
  ApplyInsertResponse response = chain.replicas[0]->applyInsert(r);
  for (std::size_t i = 1; i < chain.replicas.size(); ++i) {
    chain.replicas[i]->applyInsert(r);  // keep replica stores bit-identical
  }
  noteSiteVersion(site, response.datasetVersion);
  return response;
}

ApplyDeleteResponse Coordinator::applyDelete(SiteId site,
                                             const ApplyDeleteRequest& r) {
  const auto view = this->view();
  const ReplicaChain& chain = chainById(*view, site);
  ApplyDeleteResponse response = chain.replicas[0]->applyDelete(r);
  for (std::size_t i = 1; i < chain.replicas.size(); ++i) {
    chain.replicas[i]->applyDelete(r);  // keep replica stores bit-identical
  }
  noteSiteVersion(site, response.datasetVersion);
  return response;
}

double Coordinator::evaluateGlobally(const Candidate& c, bool pruneLocal,
                                     QueryStats& stats, DimMask mask,
                                     const std::optional<Rect>& window) {
  const auto view = this->view();
  double globalSkyProb = c.localSkyProb;
  const EvaluateRequest request{kNoQuery, c.tuple, mask, pruneLocal, window};
  for (const ReplicaChain& chain : view->partitions) {
    if (chain.partition == c.site) continue;
    const EvaluateResponse r = chain.replicas[0]->evaluate(request);
    globalSkyProb *= r.survival;
    stats.prunedAtSites += r.prunedCount;
  }
  ++stats.broadcasts;
  return globalSkyProb;
}

}  // namespace dsud
