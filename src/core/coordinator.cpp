#include "core/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dsud {

void sortByGlobalProbability(std::vector<GlobalSkylineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const GlobalSkylineEntry& a, const GlobalSkylineEntry& b) {
              if (a.globalSkyProb != b.globalSkyProb) {
                return a.globalSkyProb > b.globalSkyProb;
              }
              return a.tuple.id < b.tuple.id;
            });
}

Coordinator::Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
                         BandwidthMeter* meter, std::size_t dims)
    : sites_(std::move(sites)), meter_(meter), dims_(dims) {
  if (sites_.empty()) {
    throw std::invalid_argument("Coordinator: at least one site required");
  }
  for (const auto& s : sites_) {
    if (!s) throw std::invalid_argument("Coordinator: null site handle");
  }
}

SiteHandle& Coordinator::siteById(SiteId id) {
  for (const auto& s : sites_) {
    if (s->siteId() == id) return *s;
  }
  throw std::out_of_range("Coordinator: unknown site id " +
                          std::to_string(id));
}

void Coordinator::setParallelBroadcast(std::size_t threads) {
  broadcastPool_ = threads == 0 ? nullptr
                                : std::make_unique<ThreadPool>(threads);
}

double Coordinator::evaluateGlobally(const Candidate& c, bool pruneLocal,
                                     QueryStats& stats,
                                     const std::optional<Rect>& window) {
  double globalSkyProb = c.localSkyProb;
  const EvaluateRequest request{c.tuple, pruneLocal, window};

  if (broadcastPool_ != nullptr && sites_.size() > 2) {
    // Fan the m−1 independent RPCs across the pool; reduce in site order so
    // the floating-point product (and thus every downstream decision) is
    // identical to the sequential path.
    std::vector<std::future<EvaluateResponse>> responses;
    responses.reserve(sites_.size());
    for (const auto& s : sites_) {
      if (s->siteId() == c.site) continue;
      responses.push_back(broadcastPool_->submit(
          [&site = *s, &request] { return site.evaluate(request); }));
    }
    for (auto& future : responses) {
      const EvaluateResponse r = future.get();
      globalSkyProb *= r.survival;
      stats.prunedAtSites += r.prunedCount;
    }
  } else {
    for (const auto& s : sites_) {
      if (s->siteId() == c.site) continue;
      const EvaluateResponse r = s->evaluate(request);
      globalSkyProb *= r.survival;
      stats.prunedAtSites += r.prunedCount;
    }
  }
  ++stats.broadcasts;
  return globalSkyProb;
}

}  // namespace dsud
