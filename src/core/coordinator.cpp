#include "core/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dsud {

void sortByGlobalProbability(std::vector<GlobalSkylineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const GlobalSkylineEntry& a, const GlobalSkylineEntry& b) {
              if (a.globalSkyProb != b.globalSkyProb) {
                return a.globalSkyProb > b.globalSkyProb;
              }
              return a.tuple.id < b.tuple.id;
            });
}

Coordinator::Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
                         BandwidthMeter* meter, std::size_t dims,
                         obs::MetricsRegistry* metrics,
                         CircuitBreakerConfig breaker)
    : sites_(std::move(sites)), meter_(meter), dims_(dims),
      metrics_(metrics) {
  if (sites_.empty()) {
    throw std::invalid_argument("Coordinator: at least one site required");
  }
  for (const auto& s : sites_) {
    if (!s) throw std::invalid_argument("Coordinator: null site handle");
  }
  health_.reserve(sites_.size());
  for (const auto& s : sites_) {
    health_.push_back(
        std::make_unique<SiteHealth>(s->siteId(), breaker, metrics_));
  }
}

SiteHandle& Coordinator::siteById(SiteId id) {
  for (const auto& s : sites_) {
    if (s->siteId() == id) return *s;
  }
  throw std::out_of_range("Coordinator: unknown site id " +
                          std::to_string(id));
}

void Coordinator::noteSiteVersion(SiteId site, std::uint64_t version) {
  std::lock_guard lock(versionMutex_);
  std::uint64_t& seen = siteVersions_[site];
  if (version <= seen) return;  // replayed or stale stamp
  datasetVersion_.fetch_add(version - seen, std::memory_order_acq_rel);
  seen = version;
}

ApplyInsertResponse Coordinator::applyInsert(SiteId site,
                                             const ApplyInsertRequest& r) {
  ApplyInsertResponse response = siteById(site).applyInsert(r);
  noteSiteVersion(site, response.datasetVersion);
  return response;
}

ApplyDeleteResponse Coordinator::applyDelete(SiteId site,
                                             const ApplyDeleteRequest& r) {
  ApplyDeleteResponse response = siteById(site).applyDelete(r);
  noteSiteVersion(site, response.datasetVersion);
  return response;
}

double Coordinator::evaluateGlobally(const Candidate& c, bool pruneLocal,
                                     QueryStats& stats, DimMask mask,
                                     const std::optional<Rect>& window) {
  double globalSkyProb = c.localSkyProb;
  const EvaluateRequest request{kNoQuery, c.tuple, mask, pruneLocal, window};
  for (const auto& s : sites_) {
    if (s->siteId() == c.site) continue;
    const EvaluateResponse r = s->evaluate(request);
    globalSkyProb *= r.survival;
    stats.prunedAtSites += r.prunedCount;
  }
  ++stats.broadcasts;
  return globalSkyProb;
}

}  // namespace dsud
