#include "core/continuous.hpp"

#include <stdexcept>

namespace dsud {

ContinuousDistributedSkyline::ContinuousDistributedSkyline(
    Coordinator& coordinator, QueryConfig config, std::size_t windowPerSite,
    std::vector<std::vector<Tuple>> initialWindows)
    : windowPerSite_(windowPerSite),
      maintainer_(coordinator, config, MaintenanceStrategy::kIncremental) {
  if (windowPerSite == 0) {
    throw std::invalid_argument(
        "ContinuousDistributedSkyline: window must be >= 1");
  }
  if (initialWindows.size() != coordinator.siteCount()) {
    throw std::invalid_argument(
        "ContinuousDistributedSkyline: one initial window per site required");
  }
  windows_.reserve(initialWindows.size());
  for (auto& window : initialWindows) {
    if (window.size() > windowPerSite) {
      throw std::invalid_argument(
          "ContinuousDistributedSkyline: initial window exceeds capacity");
    }
    windows_.emplace_back(window.begin(), window.end());
  }
  maintainer_.initialize();
}

UpdateStats ContinuousDistributedSkyline::append(SiteId site,
                                                 const Tuple& t) {
  if (site >= windows_.size()) {
    throw std::out_of_range("ContinuousDistributedSkyline: unknown site");
  }
  std::deque<Tuple>& window = windows_[site];

  UpdateStats total;
  if (window.size() == windowPerSite_) {
    UpdateEvent expiry;
    expiry.kind = UpdateEvent::Kind::kDelete;
    expiry.site = site;
    expiry.tuple = window.front();
    const UpdateStats stats = maintainer_.apply(expiry);
    total.tuplesShipped += stats.tuplesShipped;
    total.bytesShipped += stats.bytesShipped;
    total.seconds += stats.seconds;
    total.broadcasts += stats.broadcasts;
    total.skylineChanged |= stats.skylineChanged;
    window.pop_front();
  }

  UpdateEvent arrival;
  arrival.kind = UpdateEvent::Kind::kInsert;
  arrival.site = site;
  arrival.tuple = t;
  const UpdateStats stats = maintainer_.apply(arrival);
  total.tuplesShipped += stats.tuplesShipped;
  total.bytesShipped += stats.bytesShipped;
  total.seconds += stats.seconds;
  total.broadcasts += stats.broadcasts;
  total.skylineChanged |= stats.skylineChanged;
  window.push_back(t);
  return total;
}

}  // namespace dsud
