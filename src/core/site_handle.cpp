#include "core/site_handle.hpp"

#include <stdexcept>
#include <utility>

namespace dsud {

RpcSiteHandle::RpcSiteHandle(SiteId site,
                             std::unique_ptr<ClientChannel> channel,
                             BandwidthMeter* meter)
    : site_(site), channel_(std::move(channel)), meter_(meter) {
  if (!channel_) {
    throw std::invalid_argument("RpcSiteHandle: null channel");
  }
}

Frame RpcSiteHandle::roundTrip(const Frame& request) {
  Frame response = channel_->call(request);
  if (meter_ != nullptr) {
    meter_->recordCall(site_, request.size(), response.size());
  }
  return response;
}

void RpcSiteHandle::countTuples(std::uint64_t toSite, std::uint64_t fromSite) {
  if (meter_ != nullptr && (toSite != 0 || fromSite != 0)) {
    meter_->recordTuples(site_, toSite, fromSite);
  }
}

PrepareResponse RpcSiteHandle::prepare(const PrepareRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kPrepare, request));
  return fromResponseFrame<PrepareResponse>(response);
}

NextCandidateResponse RpcSiteHandle::nextCandidate() {
  const Frame response =
      roundTrip(toFrame(MsgType::kNextCandidate, NextCandidateRequest{}));
  auto msg = fromResponseFrame<NextCandidateResponse>(response);
  countTuples(0, msg.candidate.has_value() ? 1 : 0);
  return msg;
}

EvaluateResponse RpcSiteHandle::evaluate(const EvaluateRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kEvaluate, request));
  countTuples(1, 0);
  return fromResponseFrame<EvaluateResponse>(response);
}

ShipAllResponse RpcSiteHandle::shipAll() {
  const Frame response = roundTrip(toFrame(MsgType::kShipAll, ShipAllRequest{}));
  auto msg = fromResponseFrame<ShipAllResponse>(response);
  countTuples(0, msg.tuples.size());
  return msg;
}

ApplyInsertResponse RpcSiteHandle::applyInsert(
    const ApplyInsertRequest& request) {
  // Injection of a site-local event: not a network tuple.
  const Frame response = roundTrip(toFrame(MsgType::kApplyInsert, request));
  return fromResponseFrame<ApplyInsertResponse>(response);
}

ApplyDeleteResponse RpcSiteHandle::applyDelete(
    const ApplyDeleteRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kApplyDelete, request));
  return fromResponseFrame<ApplyDeleteResponse>(response);
}

RepairDeleteResponse RpcSiteHandle::repairDelete(
    const RepairDeleteRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kRepairDelete, request));
  auto msg = fromResponseFrame<RepairDeleteResponse>(response);
  // The origin site already knows the deleted tuple; only remote deliveries
  // ship it.
  countTuples(request.origin == site_ ? 0 : 1, msg.candidates.size());
  return msg;
}

void RpcSiteHandle::replicaAdd(const ReplicaAddRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kReplicaAdd, request));
  fromResponseFrame<AckResponse>(response);
  // The origin site already holds the tuple; shipping to it is id-only in a
  // real deployment.
  countTuples(request.entry.site == site_ ? 0 : 1, 0);
}

void RpcSiteHandle::replicaRemove(const ReplicaRemoveRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kReplicaRemove, request));
  fromResponseFrame<AckResponse>(response);
}

}  // namespace dsud
