#include "core/site_handle.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/log.hpp"

namespace dsud {

namespace {

/// Default per-query view: forwards to the parent handle and records round
/// trips and tuple counts into the scope (byte counts are transport detail
/// only RpcSiteHandle can see).
class SessionView final : public SiteHandle {
 public:
  SessionView(SiteHandle& parent, QueryUsage* scope)
      : parent_(&parent), scope_(scope) {}

  SiteId siteId() const noexcept override { return parent_->siteId(); }

  PrepareResponse prepare(const PrepareRequest& request) override {
    auto msg = parent_->prepare(request);
    count(0);
    return msg;
  }
  NextCandidateResponse nextCandidate(
      const NextCandidateRequest& request) override {
    auto msg = parent_->nextCandidate(request);
    count(msg.candidate.has_value() ? 1 : 0);
    return msg;
  }
  EvaluateResponse evaluate(const EvaluateRequest& request) override {
    auto msg = parent_->evaluate(request);
    count(1);
    return msg;
  }
  ShipAllResponse shipAll() override {
    auto msg = parent_->shipAll();
    count(msg.tuples.size());
    return msg;
  }
  void finishQuery(const FinishQueryRequest& request) override {
    parent_->finishQuery(request);
    count(0);
  }

  ApplyInsertResponse applyInsert(const ApplyInsertRequest& r) override {
    return parent_->applyInsert(r);
  }
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest& r) override {
    return parent_->applyDelete(r);
  }
  RepairDeleteResponse repairDelete(const RepairDeleteRequest& r) override {
    return parent_->repairDelete(r);
  }
  void replicaAdd(const ReplicaAddRequest& r) override {
    parent_->replicaAdd(r);
  }
  void replicaRemove(const ReplicaRemoveRequest& r) override {
    parent_->replicaRemove(r);
  }

  StreamTuplesResponse streamTuples(const StreamTuplesRequest& r) override {
    auto msg = parent_->streamTuples(r);
    count(r.tuples.size());
    return msg;
  }
  JoinSiteResponse joinSite(const JoinSiteRequest& r) override {
    auto msg = parent_->joinSite(r);
    count(0);
    return msg;
  }
  LeaveSiteResponse leaveSite(const LeaveSiteRequest& r) override {
    auto msg = parent_->leaveSite(r);
    count(0);
    return msg;
  }

  FetchTraceResponse fetchTrace(const FetchTraceRequest& r) override {
    return parent_->fetchTrace(r);
  }
  void setTraceSink(obs::QueryTrace* sink) override {
    parent_->setTraceSink(sink);
  }

  std::unique_ptr<SiteHandle> openSession(QueryUsage* scope) override {
    return parent_->openSession(scope);
  }
  std::unique_ptr<SiteHandle> openSession(
      QueryUsage* scope, const FaultOptions& fault, SiteHealth* health,
      obs::MetricsRegistry* metrics) override {
    return parent_->openSession(scope, fault, health, metrics);
  }

  std::uint32_t lastAttempts() const noexcept override {
    return parent_->lastAttempts();
  }
  std::uint64_t lastNextSeq() const noexcept override {
    return parent_->lastNextSeq();
  }
  std::uint64_t lastEvalSeq() const noexcept override {
    return parent_->lastEvalSeq();
  }
  SiteHealth* sessionHealth() const noexcept override {
    return parent_->sessionHealth();
  }

 private:
  void count(std::uint64_t tuples) {
    if (scope_ == nullptr) return;
    scope_->recordCall(0, 0);
    if (tuples != 0) scope_->recordTuples(tuples);
  }

  SiteHandle* parent_;
  QueryUsage* scope_;
};

}  // namespace

std::unique_ptr<SiteHandle> SiteHandle::openSession(QueryUsage* scope) {
  return std::make_unique<SessionView>(*this, scope);
}

std::unique_ptr<SiteHandle> SiteHandle::openSession(QueryUsage* scope,
                                                    const FaultOptions&,
                                                    SiteHealth*,
                                                    obs::MetricsRegistry*) {
  // Default: no transport underneath, so there is nothing to retry.
  return openSession(scope);
}

RpcSiteHandle::RpcSiteHandle(SiteId site, std::shared_ptr<ChannelPool> pool,
                             BandwidthMeter* meter, QueryUsage* scope)
    : site_(site),
      pool_(std::move(pool)),
      meter_(meter),
      scope_(scope),
      backoffRng_(Rng(0x6a77c0ffULL).split(site)) {
  if (!pool_) {
    throw std::invalid_argument("RpcSiteHandle: null channel pool");
  }
}

RpcSiteHandle::RpcSiteHandle(SiteId site, std::shared_ptr<ChannelPool> pool,
                             BandwidthMeter* meter, QueryUsage* scope,
                             const FaultOptions& fault, SiteHealth* health,
                             obs::MetricsRegistry* metrics)
    : RpcSiteHandle(site, std::move(pool), meter, scope) {
  fault_ = fault;
  health_ = health;
  if (metrics != nullptr) {
    const std::string label = std::to_string(site);
    retries_ = &metrics->counter(
        obs::labeled("dsud_retries_total", {{"site", label}}));
    timeouts_ = &metrics->counter(
        obs::labeled("dsud_timeouts_total", {{"site", label}}));
  }
}

RpcSiteHandle::RpcSiteHandle(SiteId site,
                             std::unique_ptr<ClientChannel> channel,
                             BandwidthMeter* meter)
    : RpcSiteHandle(site, std::make_shared<ChannelPool>(std::move(channel)),
                    meter) {}

std::unique_ptr<SiteHandle> RpcSiteHandle::openSession(QueryUsage* scope) {
  return std::make_unique<RpcSiteHandle>(site_, pool_, meter_, scope);
}

std::unique_ptr<SiteHandle> RpcSiteHandle::openSession(
    QueryUsage* scope, const FaultOptions& fault, SiteHealth* health,
    obs::MetricsRegistry* metrics) {
  return std::unique_ptr<SiteHandle>(
      new RpcSiteHandle(site_, pool_, meter_, scope, fault, health, metrics));
}

Frame RpcSiteHandle::roundTrip(const Frame& request) {
  Frame response;
  {
    ChannelPool::Lease lease = pool_->acquire();
    lease->setUsageScope(scope_);
    lease->setDeadline(fault_.deadline);
    response = lease->call(request);
  }  // lease destructor clears the scope/deadline and returns the channel
  if (meter_ != nullptr) {
    meter_->recordCall(site_, request.size(), response.size());
  }
  if (scope_ != nullptr) {
    scope_->recordCall(request.size(), response.size());
  }
  return response;
}

Frame RpcSiteHandle::retryingRoundTrip(const Frame& request) {
  if (health_ != nullptr && !health_->admit()) {
    throw SiteFailure(site_, 0, "circuit breaker open");
  }
  const std::uint32_t maxAttempts =
      std::max<std::uint32_t>(fault_.retry.maxAttempts, 1);
  for (std::uint32_t attempt = 1;; ++attempt) {
    std::string why;
    try {
      Frame response = roundTrip(request);
      lastAttempts_ = attempt;
      if (health_ != nullptr) health_->recordSuccess();
      return response;
    } catch (const SiteFailure&) {
      throw;  // already classified by a nested layer
    } catch (const NetTimeout& e) {
      if (timeouts_ != nullptr) timeouts_->inc();
      why = e.what();
    } catch (const NetError& e) {
      // Transport failure only; application errors (SerializeError,
      // std::logic_error, ...) propagate — retrying cannot fix them.
      why = e.what();
    }
    if (attempt >= maxAttempts) {
      if (health_ != nullptr) health_->recordFailure();
      throw SiteFailure(site_, attempt, why);
    }
    if (retries_ != nullptr) retries_->inc();
    obs::eventLog().emit(LogLevel::kWarn, "rpc", "rpc.retry",
                         {obs::field("site", site_),
                          obs::field("attempt", attempt),
                          obs::field("reason", why)});
    const auto delay = fault_.retry.backoff(attempt, backoffRng_);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
}

void RpcSiteHandle::countTuples(std::uint64_t toSite, std::uint64_t fromSite) {
  if (toSite == 0 && fromSite == 0) return;
  if (meter_ != nullptr) meter_->recordTuples(site_, toSite, fromSite);
  if (scope_ != nullptr) scope_->recordTuples(toSite + fromSite);
}

template <typename Msg>
Msg RpcSiteHandle::decodeResponse(const Frame& frame) {
  if (traceSink_ != nullptr) {
    return fromResponseFrameWithTrace<Msg>(frame, traceSink_);
  }
  return fromResponseFrame<Msg>(frame);
}

PrepareResponse RpcSiteHandle::prepare(const PrepareRequest& request) {
  // Idempotent: a replayed kPrepare replaces the session wholesale.
  const Frame response = retryingRoundTrip(toFrame(MsgType::kPrepare, request));
  return decodeResponse<PrepareResponse>(response);
}

NextCandidateResponse RpcSiteHandle::nextCandidate(
    const NextCandidateRequest& request) {
  // Number the operation so the site can deduplicate a retried delivery
  // (cursor advancement is not idempotent).  All attempts replay the same
  // frame, hence the same seq.
  NextCandidateRequest numbered = request;
  numbered.seq = ++nextSeq_;
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kNextCandidate, numbered));
  auto msg = decodeResponse<NextCandidateResponse>(response);
  countTuples(0, msg.candidate.has_value() ? 1 : 0);
  return msg;
}

EvaluateResponse RpcSiteHandle::evaluate(const EvaluateRequest& request) {
  // Numbered like nextCandidate: under kThresholdBound the site folds the
  // delivered tuple into every pending entry's extSurvival, which must
  // happen exactly once per logical delivery.
  EvaluateRequest numbered = request;
  numbered.seq = ++evalSeq_;
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kEvaluate, numbered));
  countTuples(1, 0);
  return decodeResponse<EvaluateResponse>(response);
}

ShipAllResponse RpcSiteHandle::shipAll() {
  // Pure read: safe to replay.
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kShipAll, ShipAllRequest{}));
  auto msg = fromResponseFrame<ShipAllResponse>(response);
  countTuples(0, msg.tuples.size());
  return msg;
}

FetchTraceResponse RpcSiteHandle::fetchTrace(
    const FetchTraceRequest& request) {
  // Snapshot read (the site does not clear on fetch): safe to replay.
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kFetchTrace, request));
  return fromResponseFrame<FetchTraceResponse>(response);
}

void RpcSiteHandle::finishQuery(const FinishQueryRequest& request) {
  // Control traffic: releases session state, ships no tuples.  Finish is
  // idempotent (sites drop unknown ids), so it shares the retry budget —
  // otherwise a transient fault on the final frame would silently leak the
  // site-side session and skew the run's round-trip accounting.
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kFinishQuery, request));
  fromResponseFrame<AckResponse>(response);
}

ApplyInsertResponse RpcSiteHandle::applyInsert(
    const ApplyInsertRequest& request) {
  // Injection of a site-local event: not a network tuple.
  const Frame response = roundTrip(toFrame(MsgType::kApplyInsert, request));
  return fromResponseFrame<ApplyInsertResponse>(response);
}

ApplyDeleteResponse RpcSiteHandle::applyDelete(
    const ApplyDeleteRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kApplyDelete, request));
  return fromResponseFrame<ApplyDeleteResponse>(response);
}

RepairDeleteResponse RpcSiteHandle::repairDelete(
    const RepairDeleteRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kRepairDelete, request));
  auto msg = fromResponseFrame<RepairDeleteResponse>(response);
  // The origin site already knows the deleted tuple; only remote deliveries
  // ship it.
  countTuples(request.origin == site_ ? 0 : 1, msg.candidates.size());
  return msg;
}

void RpcSiteHandle::replicaAdd(const ReplicaAddRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kReplicaAdd, request));
  fromResponseFrame<AckResponse>(response);
  // The origin site already holds the tuple; shipping to it is id-only in a
  // real deployment.
  countTuples(request.entry.site == site_ ? 0 : 1, 0);
}

void RpcSiteHandle::replicaRemove(const ReplicaRemoveRequest& request) {
  const Frame response = roundTrip(toFrame(MsgType::kReplicaRemove, request));
  fromResponseFrame<AckResponse>(response);
}

StreamTuplesResponse RpcSiteHandle::streamTuples(
    const StreamTuplesRequest& request) {
  // Batch append is not idempotent, so the stream is numbered like
  // kNextCandidate: all retry attempts replay the same frame (same seq) and
  // the store's replay cache drops the duplicates.
  StreamTuplesRequest numbered = request;
  numbered.seq = ++streamSeq_;
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kStreamTuples, numbered));
  auto msg = fromResponseFrame<StreamTuplesResponse>(response);
  // Repartition traffic moves real tuples; it shares the paper's bandwidth
  // accounting so the churn bench can report the cost of a rebalance.
  countTuples(request.tuples.size(), 0);
  return msg;
}

JoinSiteResponse RpcSiteHandle::joinSite(const JoinSiteRequest& request) {
  // Idempotent (a live store just acks): safe to retry.
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kJoinSite, request));
  return fromResponseFrame<JoinSiteResponse>(response);
}

LeaveSiteResponse RpcSiteHandle::leaveSite(const LeaveSiteRequest& request) {
  // Idempotent: draining is a latch.
  const Frame response =
      retryingRoundTrip(toFrame(MsgType::kLeaveSite, request));
  return fromResponseFrame<LeaveSiteResponse>(response);
}

}  // namespace dsud
