#include "core/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "gen/partition.hpp"

namespace dsud {

Topology Topology::make(std::vector<Dataset> parts, std::size_t replicas) {
  if (parts.empty()) {
    throw std::invalid_argument("Topology: at least one partition required");
  }
  if (replicas == 0) {
    throw std::invalid_argument("Topology: replica factor must be >= 1");
  }
  const std::size_t dims = parts.front().dims();
  for (const Dataset& p : parts) {
    if (p.dims() != dims) {
      throw std::invalid_argument(
          "Topology: partitions must share dimensionality");
    }
  }
  Topology t;
  t.replicas_ = replicas;
  t.dims_ = dims;
  const std::size_t m = parts.size();
  t.members_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    t.members_.push_back(static_cast<SiteId>(i));
  }
  t.nextId_ = static_cast<SiteId>(m);
  t.partitions_ = t.placement(m);
  t.seedData_ = std::move(parts);
  return t;
}

Topology Topology::uniform(const Dataset& global, std::size_t m,
                           std::uint64_t seed, std::size_t replicas) {
  Rng rng(seed);
  return make(partitionUniform(global, m, rng), replicas);
}

Topology Topology::fromPartitions(std::vector<Dataset> siteData,
                                  std::size_t replicas) {
  return make(std::move(siteData), replicas);
}

bool Topology::isMember(SiteId id) const noexcept {
  return std::find(members_.begin(), members_.end(), id) != members_.end();
}

SiteId Topology::addSite() {
  const SiteId id = nextId_++;
  members_.push_back(id);
  ++epoch_;
  return id;
}

void Topology::removeSite(SiteId id) {
  const auto it = std::find(members_.begin(), members_.end(), id);
  if (it == members_.end()) {
    throw std::out_of_range("Topology: unknown member id " +
                            std::to_string(id));
  }
  if (members_.size() == 1) {
    throw std::invalid_argument("Topology: cannot remove the last member");
  }
  members_.erase(it);
  ++epoch_;
}

std::vector<PartitionDesc> Topology::placement(std::size_t count) const {
  if (count != members_.size()) {
    throw std::invalid_argument(
        "Topology: rebalance places one partition per member");
  }
  const std::size_t k = std::min(replicas_, members_.size());
  std::vector<PartitionDesc> parts;
  parts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PartitionDesc p;
    p.id = members_[i];
    p.hosts.reserve(k);
    for (std::size_t r = 0; r < k; ++r) {
      p.hosts.push_back(members_[(i + r) % members_.size()]);
    }
    parts.push_back(std::move(p));
  }
  return parts;
}

void Topology::installPartitions(std::vector<PartitionDesc> partitions) {
  partitions_ = std::move(partitions);
  ++epoch_;
}

}  // namespace dsud
