// Internal bookkeeping shared by the query algorithm implementations:
// stopwatch, bandwidth baseline (the meter is shared across queries),
// progressive emission, and the observability hooks — the per-query
// protocol timeline (obs::Tracer) and the coordinator-level metric
// instruments (per-algorithm counters and latency histograms).  Not part of
// the public API.
#pragma once

#include "common/stopwatch.hpp"
#include "core/coordinator.hpp"
#include "obs/trace.hpp"

namespace dsud::internal {

struct QueryRun {
  Coordinator& coord;
  QueryResult result;
  Stopwatch watch;
  UsageTotals baseline;
  obs::Tracer tracer;
  obs::SpanId root = obs::kNoSpan;

  // Cached instruments (null when the coordinator has no registry).
  obs::Counter* queries = nullptr;
  obs::Counter* rounds = nullptr;
  obs::Counter* answers = nullptr;
  obs::Counter* pulls = nullptr;
  obs::Counter* expunges = nullptr;
  obs::Counter* sitePrunes = nullptr;
  obs::Histogram* roundLatency = nullptr;
  obs::Histogram* queryLatency = nullptr;

  /// `algo` labels every instrument ("naive", "dsud", "edsud", "topk") and
  /// names the root span of the timeline.
  QueryRun(Coordinator& c, const char* algo)
      : coord(c), tracer(c.traceCapacity()) {
    if (coord.meter() != nullptr) baseline = coord.meter()->totals();
    root = tracer.begin(std::string("query.") + algo);
    if (obs::MetricsRegistry* reg = coord.metrics(); reg != nullptr) {
      const auto name = [algo](const char* base) {
        return obs::labeled(base, {{"algo", algo}});
      };
      queries = &reg->counter(name("dsud_queries_total"));
      rounds = &reg->counter(name("dsud_rounds_total"));
      answers = &reg->counter(name("dsud_answers_total"));
      pulls = &reg->counter(name("dsud_candidates_pulled_total"));
      expunges = &reg->counter(name("dsud_expunged_total"));
      sitePrunes = &reg->counter(name("dsud_pruned_at_sites_total"));
      roundLatency = &reg->histogram(name("dsud_round_latency_seconds"),
                                     obs::Histogram::latencyBounds());
      queryLatency = &reg->histogram(name("dsud_query_latency_seconds"),
                                     obs::Histogram::latencyBounds());
    }
  }

  std::uint64_t tuplesSoFar() const {
    if (coord.meter() == nullptr) return 0;
    return coord.meter()->totals().tuples - baseline.tuples;
  }

  obs::TraceSpan span(std::string_view name) { return {tracer, name}; }

  /// One To-Server pull that returned a candidate.
  void countPull(QueryStats& stats) {
    ++stats.candidatesPulled;
    if (pulls != nullptr) pulls->inc();
  }

  /// One candidate killed by the e-DSUD bound (no broadcast spent).
  void countExpunge(QueryStats& stats) {
    ++stats.expunged;
    if (expunges != nullptr) expunges->inc();
  }

  /// RAII scope for one protocol round: a "round" span in the timeline plus
  /// a sample in the per-round latency histogram.
  struct RoundScope {
    QueryRun* run;
    obs::TraceSpan span;
    Stopwatch clock;

    explicit RoundScope(QueryRun& r) : run(&r), span(r.span("round")) {}
    RoundScope(RoundScope&&) = delete;
    ~RoundScope() {
      if (run->rounds != nullptr) run->rounds->inc();
      if (run->roundLatency != nullptr) {
        run->roundLatency->observe(clock.elapsedSeconds());
      }
    }
  };
  RoundScope roundScope() { return RoundScope(*this); }

  void emit(const Candidate& c, double globalSkyProb, ProgressCallback& cb) {
    GlobalSkylineEntry entry;
    entry.site = c.site;
    entry.tuple = c.tuple;
    entry.localSkyProb = c.localSkyProb;
    entry.globalSkyProb = globalSkyProb;

    ProgressPoint point;
    point.reported = result.skyline.size() + 1;
    point.tuplesShipped = tuplesSoFar();
    point.seconds = watch.elapsedSeconds();

    {
      obs::TraceSpan s = span("emit");
      s.attr("site", entry.site);
      s.attr("tuple", static_cast<double>(entry.tuple.id));
      s.attr("p_gsky", globalSkyProb);
    }
    if (answers != nullptr) answers->inc();

    if (cb) cb(entry, point);
    result.skyline.push_back(std::move(entry));
    result.progress.push_back(point);
  }

  QueryResult finalize() {
    result.stats.seconds = watch.elapsedSeconds();
    if (coord.meter() != nullptr) {
      const UsageTotals now = coord.meter()->totals();
      result.stats.tuplesShipped = now.tuples - baseline.tuples;
      result.stats.bytesShipped = now.bytes - baseline.bytes;
      result.stats.roundTrips = now.calls - baseline.calls;
    }
    if (queries != nullptr) {
      queries->inc();
      // prunedAtSites accumulates inside evaluateGlobally; fold the query's
      // total into the counter here rather than threading a hook through.
      sitePrunes->add(result.stats.prunedAtSites);
      queryLatency->observe(result.stats.seconds);
    }
    tracer.end(root);
    result.trace = tracer.take();
    return std::move(result);
  }
};

}  // namespace dsud::internal
