// Internal bookkeeping shared by the query algorithm implementations:
// stopwatch, bandwidth baseline (the meter is shared across queries), and
// progressive emission.  Not part of the public API.
#pragma once

#include "common/stopwatch.hpp"
#include "core/coordinator.hpp"

namespace dsud::internal {

struct QueryRun {
  Coordinator& coord;
  QueryResult result;
  Stopwatch watch;
  UsageTotals baseline;

  explicit QueryRun(Coordinator& c) : coord(c) {
    if (coord.meter() != nullptr) baseline = coord.meter()->totals();
  }

  std::uint64_t tuplesSoFar() const {
    if (coord.meter() == nullptr) return 0;
    return coord.meter()->totals().tuples - baseline.tuples;
  }

  void emit(const Candidate& c, double globalSkyProb, ProgressCallback& cb) {
    GlobalSkylineEntry entry;
    entry.site = c.site;
    entry.tuple = c.tuple;
    entry.localSkyProb = c.localSkyProb;
    entry.globalSkyProb = globalSkyProb;

    ProgressPoint point;
    point.reported = result.skyline.size() + 1;
    point.tuplesShipped = tuplesSoFar();
    point.seconds = watch.elapsedSeconds();

    if (cb) cb(entry, point);
    result.skyline.push_back(std::move(entry));
    result.progress.push_back(point);
  }

  QueryResult finalize() {
    result.stats.seconds = watch.elapsedSeconds();
    if (coord.meter() != nullptr) {
      const UsageTotals now = coord.meter()->totals();
      result.stats.tuplesShipped = now.tuples - baseline.tuples;
      result.stats.bytesShipped = now.bytes - baseline.bytes;
      result.stats.roundTrips = now.calls - baseline.calls;
    }
    return std::move(result);
  }
};

}  // namespace dsud::internal
