// Internal per-query session state shared by the algorithm implementations.
//
// One QueryRun is one session: it owns everything that was once
// coordinator-global — the monotonic clock, the bandwidth scope, the
// protocol timeline, the progress callback, the broadcast workers, and the
// per-query site views — so N runs execute concurrently over one cluster
// without sharing mutable state.  Construction opens the session (per-query
// SiteHandle views, in-flight gauge); finalize() (or unwinding) releases the
// site-side state with kFinishQuery.  Not part of the public API.
#pragma once

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/coordinator.hpp"
#include "core/failover.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/merge.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace dsud::internal {

struct QueryRun {
  Coordinator& coord;
  QueryId id;
  QueryOptions options;  ///< immutable for the run
  QueryResult result;
  /// Per-chain bandwidth scopes, parallel to `sessions`: each chain's RPC
  /// traffic lands in its own QueryUsage (sums into the meter too) so the
  /// EXPLAIN profile can attribute bytes and tuples per site.  Aggregate
  /// stats are the sum over chains — integer sums, so bit-identical to the
  /// former single-scope accounting.
  std::vector<std::unique_ptr<QueryUsage>> siteUsage;
  /// Coordinator-thread tallies, parallel to `sessions` (the pooled
  /// broadcast path drains its futures on this thread, so plain integers
  /// suffice): To-Server pulls, candidates returned, Local-Pruning victims,
  /// retried transport attempts.
  struct SiteTally {
    std::uint64_t rounds = 0;
    std::uint64_t candidates = 0;
    std::uint64_t pruned = 0;
    std::uint64_t retries = 0;
  };
  std::vector<SiteTally> tallies;
  Stopwatch watch;   ///< session-owned monotonic clock
  double prepareDoneSeconds = 0.0;  ///< stamp at end of prepareAll
  obs::Tracer tracer;
  obs::SpanId root = obs::kNoSpan;
  /// Topology snapshot this session runs over, pinned at construction: a
  /// membership change installs the next epoch without invalidating it, and
  /// holding the pointer keeps the epoch's stores alive until the run ends.
  std::shared_ptr<const ClusterView> view;
  /// Per-query views of the pinned partitions (one per chain; replicated
  /// partitions get a FailoverSiteHandle over all their stores); all session
  /// traffic flows through these so it lands in `usage`.
  std::vector<std::unique_ptr<SiteHandle>> sessions;
  /// Site-side span timelines, parallel to `sessions` (empty when site
  /// tracing is off).  Piggyback mode streams into these via the handles'
  /// trace sinks; fetch mode fills them at finish() time.  Addresses must
  /// stay stable — sized once in the constructor, never resized.
  std::vector<obs::QueryTrace> siteTraces;
  const char* algo;  ///< instrument label; also names slow-query dumps
  /// Session-private broadcast workers (never the engine's submit pool, so
  /// submitted queries cannot starve each other).
  std::unique_ptr<ThreadPool> broadcastPool;
  bool sessionsOpen = false;  ///< prepare sent; sites hold state under `id`
  /// Sites excluded from this run after exhausting their retry budget
  /// (QueryOptions::fault.onSiteFailure == kDegrade only; under kFail the
  /// first SiteFailure aborts the query instead).  Order = detection order.
  std::vector<SiteId> dead;

  // Cached instruments (null when the coordinator has no registry).
  obs::Counter* queries = nullptr;
  obs::Counter* rounds = nullptr;
  obs::Counter* answers = nullptr;
  obs::Counter* pulls = nullptr;
  obs::Counter* expunges = nullptr;
  obs::Counter* sitePrunes = nullptr;
  obs::Counter* degradedQueries = nullptr;
  obs::Counter* slowQueries = nullptr;
  obs::Histogram* roundLatency = nullptr;
  obs::Histogram* queryLatency = nullptr;
  obs::Gauge* inflight = nullptr;

  /// `algo` labels every instrument ("naive", "dsud", "edsud", "topk") and
  /// names the root span of the timeline.
  QueryRun(Coordinator& c, const char* algo, const QueryOptions& opts,
           QueryId qid)
      : coord(c), id(qid), options(opts), tracer(opts.traceCapacity),
        view(c.view()), algo(algo) {
    result.id = id;
    sessions.reserve(view->partitions.size());
    siteUsage.reserve(view->partitions.size());
    for (const ReplicaChain& chain : view->partitions) {
      // One scope per chain: all replicas of a partition record into it, so
      // failover traffic stays attributed to the logical site.
      siteUsage.push_back(std::make_unique<QueryUsage>());
      QueryUsage* scope = siteUsage.back().get();
      if (chain.replicas.size() == 1) {
        sessions.push_back(chain.replicas[0]->openSession(
            scope, options.fault, chain.health[0], c.metrics()));
      } else {
        // k >= 2: one session per replica store, stitched into a single
        // failover handle so a dying store is replaced mid-query with zero
        // result loss (core/failover.hpp).
        std::vector<std::unique_ptr<SiteHandle>> replicas;
        replicas.reserve(chain.replicas.size());
        for (std::size_t r = 0; r < chain.replicas.size(); ++r) {
          replicas.push_back(chain.replicas[r]->openSession(
              scope, options.fault, chain.health[r], c.metrics()));
        }
        sessions.push_back(std::make_unique<FailoverSiteHandle>(
            chain.partition, std::move(replicas), c.metrics()));
      }
    }
    tallies.resize(sessions.size());
    // Site tracing needs a coordinator trace to merge into; piggybacked
    // spans stream into per-site sinks while the query runs, fetched spans
    // arrive in one kFetchTrace per site at finish() time.
    if (options.traceCapacity > 0 &&
        options.siteTrace != SiteTraceMode::kOff) {
      siteTraces.resize(sessions.size());
      if (options.siteTrace == SiteTraceMode::kPiggyback) {
        for (std::size_t i = 0; i < sessions.size(); ++i) {
          sessions[i]->setTraceSink(&siteTraces[i]);
        }
      }
    }
    if (options.broadcastThreads > 0 && sessions.size() > 2) {
      broadcastPool = std::make_unique<ThreadPool>(options.broadcastThreads);
    }
    root = tracer.begin(std::string("query.") + algo);
    if (obs::MetricsRegistry* reg = coord.metrics(); reg != nullptr) {
      const auto name = [algo](const char* base) {
        return obs::labeled(base, {{"algo", algo}});
      };
      queries = &reg->counter(name("dsud_queries_total"));
      rounds = &reg->counter(name("dsud_rounds_total"));
      answers = &reg->counter(name("dsud_answers_total"));
      pulls = &reg->counter(name("dsud_candidates_pulled_total"));
      expunges = &reg->counter(name("dsud_expunged_total"));
      sitePrunes = &reg->counter(name("dsud_pruned_at_sites_total"));
      degradedQueries = &reg->counter(name("dsud_degraded_queries_total"));
      slowQueries = &reg->counter(name("dsud_slow_queries_total"));
      roundLatency = &reg->histogram(name("dsud_round_latency_seconds"),
                                     obs::Histogram::latencyBounds());
      queryLatency = &reg->histogram(name("dsud_query_latency_seconds"),
                                     obs::Histogram::latencyBounds());
      inflight = &reg->gauge(name("dsud_queries_inflight"));
      inflight->add(1);
    }
    obs::eventLog().emit(LogLevel::kDebug, "engine", "query.start",
                         {obs::field("query", id), obs::field("algo", algo),
                          obs::field("sites", sessions.size())});
  }

  ~QueryRun() {
    finish();  // best-effort when unwinding; no-op after finalize()
    if (inflight != nullptr) inflight->sub(1);
  }

  QueryRun(const QueryRun&) = delete;
  QueryRun& operator=(const QueryRun&) = delete;

  /// Session view of the site by id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId site) {
    return *sessions[sessionIndexOf(site)];
  }

  /// Position of `site` in `sessions` (== its position in the pinned view);
  /// throws std::out_of_range when unknown.
  std::size_t sessionIndexOf(SiteId site) const {
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (sessions[i]->siteId() == site) return i;
    }
    throw std::out_of_range("QueryRun: unknown site id " +
                            std::to_string(site));
  }

  bool siteTracing() const noexcept { return !siteTraces.empty(); }

  /// Marks an RPC span that needed transport retries: the attempt count and
  /// the site breaker's state (0 closed, 1 open, 2 half-open).  Clean RPCs
  /// stay unannotated, so a faulty run's trace differs from a clean one
  /// only by these attrs.  The breaker comes from the session handle itself
  /// (the active replica's, under failover) — positional coordinator
  /// lookups are not stable once sites join and leave.  Also folds the
  /// extra attempts into the session's per-site retry tally (profile).
  void annotateRetries(obs::TraceSpan& rpc, std::size_t index) {
    const SiteHandle& handle = *sessions[index];
    if (const std::uint32_t attempts = handle.lastAttempts(); attempts > 1) {
      tallies[index].retries += attempts - 1;
      rpc.attr("attempts", attempts);
      if (const SiteHealth* health = handle.sessionHealth();
          health != nullptr) {
        rpc.attr("breaker_state",
                 static_cast<double>(static_cast<int>(health->state())));
      }
    }
  }

  // --- Degraded-mode bookkeeping ------------------------------------------

  bool degradeOk() const noexcept {
    return options.fault.onSiteFailure == OnSiteFailure::kDegrade;
  }

  bool isDead(SiteId site) const noexcept {
    return std::find(dead.begin(), dead.end(), site) != dead.end();
  }

  /// Excludes `site` from the rest of the run (idempotent).  From here on
  /// the answer is the skyline of the surviving sites' union — exact over
  /// what stayed reachable, silent about the dead site's data.
  void markDead(SiteId site) {
    if (isDead(site)) return;
    dead.push_back(site);
    result.degraded = true;
    result.excludedSites.push_back(site);
    if (degradedQueries != nullptr && dead.size() == 1) {
      degradedQueries->inc();
    }
    obs::TraceSpan s = span("site.dead");
    s.attr("site", site);
    obs::eventLog().emit(LogLevel::kWarn, "engine", "site.dead",
                         {obs::field("query", id), obs::field("algo", algo),
                          obs::field("site", site)});
  }

  /// Opens the site-side sessions: kPrepare to every site.  Marks the
  /// session open first so a mid-prepare failure still releases the sites
  /// that did prepare.  In degraded mode an unreachable site is excluded
  /// instead of failing the query; only losing *every* site is fatal.
  /// When site tracing is on, the request is stamped with the session's
  /// trace capacity and shipping mode before it goes out.
  void prepareAll(PrepareRequest request) {
    if (siteTracing()) {
      request.traceCapacity = static_cast<std::uint32_t>(std::min<
          std::size_t>(options.siteTraceCapacity,
                       std::numeric_limits<std::uint32_t>::max()));
      request.tracePiggyback =
          options.siteTrace == SiteTraceMode::kPiggyback;
    }
    sessionsOpen = true;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const auto& s = sessions[i];
      obs::TraceSpan rpc = span("rpc.prepare");
      rpc.attr("site", s->siteId());
      try {
        s->prepare(request);
        annotateRetries(rpc, i);
      } catch (const NetError&) {
        if (!degradeOk()) throw;
        markDead(s->siteId());
      }
    }
    if (dead.size() == sessions.size()) {
      throw NetError("prepareAll: all sites unavailable");
    }
    prepareDoneSeconds = watch.elapsedSeconds();
  }

  /// Releases the site-side session state (kFinishQuery, idempotent).
  /// Exceptions are swallowed: finish is cleanup, and the sites drop
  /// unknown ids anyway.  Dead sites are skipped — their retry budget was
  /// already spent detecting the failure.  In fetch-mode site tracing this
  /// is the last chance to read the site-side spans (kFinishQuery destroys
  /// the session tracer with the rest of the session), so every live site
  /// gets one best-effort kFetchTrace first.
  void finish() noexcept {
    if (!sessionsOpen) return;
    sessionsOpen = false;
    if (options.siteTrace == SiteTraceMode::kFetch && siteTracing()) {
      const FetchTraceRequest fetch{id};
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        if (isDead(sessions[i]->siteId())) continue;
        obs::TraceSpan rpc = span("rpc.fetch_trace");
        rpc.attr("site", sessions[i]->siteId());
        try {
          siteTraces[i] = sessions[i]->fetchTrace(fetch).trace;
        } catch (...) {
          // A site whose trace cannot be read still answers the query.
        }
      }
    }
    const FinishQueryRequest request{id};
    for (const auto& s : sessions) {
      if (isDead(s->siteId())) continue;
      try {
        s->finishQuery(request);
      } catch (...) {
      }
    }
  }

  /// Broadcasts `c.tuple` to every site except its origin and multiplies
  /// the returned survival factors onto the local probability (Lemma 1).
  /// With a broadcast pool, the m−1 RPCs fan out in parallel; factors are
  /// still reduced in site order, so the floating-point product (and every
  /// downstream decision) is identical to the sequential path.
  ///
  /// In degraded mode a site failing its broadcast is excluded and its
  /// survival factor skipped — the candidate's probability is then exact
  /// over the survivors.  Under kFail the SiteFailure propagates.
  ///
  /// Each per-site round trip gets an "rpc.evaluate" span hung off
  /// `broadcastSpan` (the caller's "broadcast" span).  The explicit parent
  /// matters on the pooled path: spans are begun on *this* thread in site
  /// order — so the timeline is deterministic — while the RPCs complete on
  /// workers in any order, and an implicit parent would be whichever span
  /// happened to be open.  A pooled span brackets submit-to-drain rather
  /// than the wire time alone; the merge's min-delay offset sampling
  /// discounts such inflated samples automatically.
  double evaluateGlobally(const Candidate& c, bool pruneLocal, DimMask mask,
                          const std::optional<Rect>& window,
                          obs::SpanId broadcastSpan = obs::kNoSpan) {
    QueryStats& stats = result.stats;
    double globalSkyProb = c.localSkyProb;
    const EvaluateRequest request{id, c.tuple, mask, pruneLocal, window};

    if (broadcastPool != nullptr) {
      struct Pending {
        std::size_t index;
        SiteId site;
        obs::TraceSpan rpc;
        std::future<EvaluateResponse> future;
      };
      std::vector<Pending> responses;
      responses.reserve(sessions.size());
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        const auto& s = sessions[i];
        if (s->siteId() == c.site || isDead(s->siteId())) continue;
        obs::TraceSpan rpc(tracer, "rpc.evaluate", broadcastSpan);
        rpc.attr("site", s->siteId());
        responses.push_back(Pending{
            i, s->siteId(), std::move(rpc),
            broadcastPool->submit(
                [&site = *s, &request] { return site.evaluate(request); })});
      }
      // Drain every future before any rethrow: the workers capture the
      // stack-allocated request by reference.
      std::vector<SiteId> failed;
      std::exception_ptr fatal;
      for (auto& p : responses) {
        try {
          const EvaluateResponse r = p.future.get();
          if (siteTracing()) {
            p.rpc.attr("seq",
                       static_cast<double>(sessions[p.index]->lastEvalSeq()));
          }
          annotateRetries(p.rpc, p.index);
          p.rpc.close();
          globalSkyProb *= r.survival;
          stats.prunedAtSites += r.prunedCount;
          tallies[p.index].pruned += r.prunedCount;
        } catch (const NetError&) {
          if (degradeOk()) {
            failed.push_back(p.site);
          } else if (!fatal) {
            fatal = std::current_exception();
          }
        } catch (...) {
          if (!fatal) fatal = std::current_exception();
        }
      }
      if (fatal) std::rethrow_exception(fatal);
      for (const SiteId site : failed) markDead(site);
    } else {
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        const auto& s = sessions[i];
        if (s->siteId() == c.site || isDead(s->siteId())) continue;
        obs::TraceSpan rpc(tracer, "rpc.evaluate", broadcastSpan);
        rpc.attr("site", s->siteId());
        try {
          const EvaluateResponse r = s->evaluate(request);
          if (siteTracing()) {
            rpc.attr("seq", static_cast<double>(s->lastEvalSeq()));
          }
          annotateRetries(rpc, i);
          globalSkyProb *= r.survival;
          stats.prunedAtSites += r.prunedCount;
          tallies[i].pruned += r.prunedCount;
        } catch (const NetError&) {
          if (!degradeOk()) throw;
          markDead(s->siteId());
        }
      }
    }
    ++stats.broadcasts;
    return globalSkyProb;
  }

  /// One To-Server pull from `site`: traces the round trip (with the
  /// attempt count when retries happened), counts the candidate, and — in
  /// degraded mode — excludes a site that stays unreachable instead of
  /// failing the query.  Dead sites return nothing.
  std::optional<Candidate> pull(SiteId site, const NextCandidateRequest& cursor,
                                QueryStats& stats) {
    if (isDead(site)) return std::nullopt;
    const std::size_t index = sessionIndexOf(site);
    SiteHandle& handle = *sessions[index];
    obs::TraceSpan pullSpan = span("pull");
    pullSpan.attr("site", site);
    try {
      auto response = handle.nextCandidate(cursor);
      ++tallies[index].rounds;
      if (siteTracing()) {
        // Matches this round trip to the site-side "site.next" span carrying
        // the same sequence number (see obs::mergeSiteTraces).
        pullSpan.attr("seq", static_cast<double>(handle.lastNextSeq()));
      }
      annotateRetries(pullSpan, index);
      if (!response.candidate) return std::nullopt;
      ++tallies[index].candidates;
      countPull(stats);
      return std::move(response.candidate);
    } catch (const NetError&) {
      if (!degradeOk()) throw;
      markDead(site);
      return std::nullopt;
    }
  }

  /// Sums the per-chain scopes into one aggregate (what the single session
  /// scope used to hold).
  UsageTotals usageTotals() const {
    UsageTotals sum;
    for (const auto& scope : siteUsage) {
      const UsageTotals t = scope->totals();
      sum.tuples += t.tuples;
      sum.bytes += t.bytes;
      sum.calls += t.calls;
    }
    return sum;
  }

  std::uint64_t tuplesSoFar() const { return usageTotals().tuples; }

  /// Cooperative cancellation: aborts the run with QueryCancelled once the
  /// shared flag (QueryOptions::cancel) has been set.  Checked at every
  /// round boundary (roundScope) and per site in the naive baseline, so a
  /// cancelled query stops within one protocol round; unwinding releases
  /// the site sessions through finish() as usual.
  void throwIfCancelled() const {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      throw QueryCancelled(id);
    }
  }

  obs::TraceSpan span(std::string_view name) { return {tracer, name}; }

  /// One To-Server pull that returned a candidate.
  void countPull(QueryStats& stats) {
    ++stats.candidatesPulled;
    if (pulls != nullptr) pulls->inc();
  }

  /// One candidate killed by the e-DSUD bound (no broadcast spent).
  void countExpunge(QueryStats& stats) {
    ++stats.expunged;
    if (expunges != nullptr) expunges->inc();
  }

  /// RAII scope for one protocol round: a "round" span in the timeline plus
  /// a sample in the per-round latency histogram.
  struct RoundScope {
    QueryRun* run;
    obs::TraceSpan span;
    Stopwatch clock;

    explicit RoundScope(QueryRun& r) : run(&r), span(r.span("round")) {
      r.throwIfCancelled();
    }
    RoundScope(RoundScope&&) = delete;
    ~RoundScope() {
      if (run->rounds != nullptr) run->rounds->inc();
      if (run->roundLatency != nullptr) {
        run->roundLatency->observe(clock.elapsedSeconds());
      }
    }
  };
  RoundScope roundScope() { return RoundScope(*this); }

  void emit(const Candidate& c, double globalSkyProb) {
    GlobalSkylineEntry entry;
    entry.site = c.site;
    entry.tuple = c.tuple;
    entry.localSkyProb = c.localSkyProb;
    entry.globalSkyProb = globalSkyProb;

    ProgressPoint point;
    point.reported = result.skyline.size() + 1;
    point.tuplesShipped = tuplesSoFar();
    point.seconds = watch.elapsedSeconds();

    {
      obs::TraceSpan s = span("emit");
      s.attr("site", entry.site);
      s.attr("tuple", static_cast<double>(entry.tuple.id));
      s.attr("p_gsky", globalSkyProb);
    }
    if (answers != nullptr) answers->inc();

    if (options.progress) options.progress(entry, point);
    result.skyline.push_back(std::move(entry));
    result.progress.push_back(point);
  }

  QueryResult finalize() {
    const double executeDone = watch.elapsedSeconds();
    // Release the site sessions before reading the totals so the finish
    // round trips land in this query's stats deterministically.
    finish();
    result.stats.seconds = watch.elapsedSeconds();
    const UsageTotals totals = usageTotals();
    result.stats.tuplesShipped = totals.tuples;
    result.stats.bytesShipped = totals.bytes;
    result.stats.roundTrips = totals.calls;
    if (queries != nullptr) {
      queries->inc();
      // prunedAtSites accumulates inside evaluateGlobally; fold the query's
      // total into the counter here rather than threading a hook through.
      sitePrunes->add(result.stats.prunedAtSites);
      queryLatency->observe(result.stats.seconds);
    }
    tracer.end(root);
    result.trace = tracer.take();
    if (siteTracing()) {
      std::vector<obs::SiteTraceInput> inputs;
      inputs.reserve(sessions.size());
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        inputs.push_back({sessions[i]->siteId(), &siteTraces[i]});
      }
      obs::mergeSiteTraces(result.trace, inputs);
    }
    buildProfile(executeDone);
    emitLifecycleEvents();
    maybeDumpSlowQuery();
    return std::move(result);
  }

  /// Assembles the EXPLAIN/ANALYZE profile from the per-chain usage scopes
  /// and coordinator-thread tallies.  Cheap (one small vector per query) and
  /// unconditional — whether the client *sees* it is the protocol's choice,
  /// so answers are bit-identical with profiling on or off.
  void buildProfile(double executeDone) {
    QueryProfile& p = result.profile;
    p.algo = algo;
    p.prepareSeconds = prepareDoneSeconds;
    p.executeSeconds = std::max(0.0, executeDone - prepareDoneSeconds);
    p.finalizeSeconds =
        std::max(0.0, result.stats.seconds - executeDone);
    p.sites.reserve(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      SiteProfile site;
      site.site = sessions[i]->siteId();
      const UsageTotals t = siteUsage[i]->totals();
      site.tuples = t.tuples;
      site.bytes = t.bytes;
      site.rounds = tallies[i].rounds;
      site.candidates = tallies[i].candidates;
      site.pruned = tallies[i].pruned;
      site.retries = tallies[i].retries;
      site.failovers = sessions[i]->failovers();
      site.dead = isDead(site.site);
      p.failovers += site.failovers;
      p.sites.push_back(std::move(site));
    }
  }

  /// query.done (info) for every run; query.degraded (warn) plus a flight-
  /// recorder anomaly dump when sites were lost — the dump is the always-on
  /// record of *why* (retries → breaker trips → site.dead precede it in the
  /// ring).
  void emitLifecycleEvents() {
    obs::EventLog& log = obs::eventLog();
    log.emit(LogLevel::kInfo, "engine", "query.done",
             {obs::field("query", id), obs::field("algo", algo),
              obs::field("answers", result.skyline.size()),
              obs::field("tuples", result.stats.tuplesShipped),
              obs::field("bytes", result.stats.bytesShipped),
              obs::field("round_trips", result.stats.roundTrips),
              obs::field("seconds", result.stats.seconds),
              obs::field("degraded", result.degraded),
              obs::field("failovers", result.profile.failovers)});
    if (result.degraded) {
      log.emit(LogLevel::kWarn, "engine", "query.degraded",
               {obs::field("query", id), obs::field("algo", algo),
                obs::field("excluded", result.excludedSites.size())});
      obs::flightRecorder().anomaly("degraded_query");
    }
  }

  /// Slow-query log: when the run exceeded QueryOptions::slowQueryThreshold,
  /// count it and emit a `query.slow` event into the structured log (one
  /// stream with everything else; the flight recorder retains it).  The
  /// legacy per-query Perfetto dump — `<algo>-q<id>-<ms>ms.trace.json` in
  /// `slowQueryDir` — is kept as a compatibility shim for check_trace.py
  /// consumers and is deprecated (docs/ARCHITECTURE §14).  Best-effort: an
  /// unwritable directory never fails the query.
  void maybeDumpSlowQuery() {
    if (options.slowQueryThreshold <= 0.0 ||
        result.stats.seconds < options.slowQueryThreshold) {
      return;
    }
    if (slowQueries != nullptr) slowQueries->inc();
    obs::eventLog().emit(
        LogLevel::kWarn, "engine", "query.slow",
        {obs::field("query", id), obs::field("algo", algo),
         obs::field("seconds", result.stats.seconds),
         obs::field("threshold", options.slowQueryThreshold),
         obs::field("tuples", result.stats.tuplesShipped),
         obs::field("round_trips", result.stats.roundTrips)});
    if (options.slowQueryDir.empty()) return;
    try {
      std::filesystem::create_directories(options.slowQueryDir);
      const auto ms =
          static_cast<long long>(result.stats.seconds * 1e3);
      const std::filesystem::path file =
          std::filesystem::path(options.slowQueryDir) /
          (std::string(algo) + "-q" + std::to_string(id) + "-" +
           std::to_string(ms) + "ms.trace.json");
      std::ofstream out(file, std::ios::trunc);
      out << obs::traceToPerfetto(result.trace);
    } catch (...) {
      // Losing a dump is acceptable; losing the query result is not.
    }
  }
};

}  // namespace dsud::internal
