// Wire protocol between the coordinator H and the local sites.
//
// Every message is one frame: a MsgType byte followed by the fields encoded
// with ByteWriter (little-endian).  The protocol is strict request/response;
// the site never initiates.  Messages map 1:1 onto the phases of the paper's
// framework (Fig. 4) plus the update maintenance of Sec. 5.4:
//
//   kPrepare        — start a query: site computes SKY(D_i) (local phase)
//   kNextCandidate  — To-Server phase: pull the site's best remaining tuple
//   kEvaluate       — Server-Delivery + Local-Pruning phases: deliver a
//                     candidate, get back P_sky(t, D_x), prune local skyline
//   kShipAll        — the naive baseline: ship the whole local database
//   kFinishQuery    — release the site-side state of one query session
//   kFetchTrace     — pull the site-side span timeline of one session
//   kApplyInsert / kApplyDelete / kRepairDelete / kReplicaAdd /
//   kReplicaRemove  — update maintenance
//   kStreamTuples / kJoinSite / kLeaveSite — elastic membership: a
//                     background repartition streams tuple batches into a
//                     staging store, seals it with one STR bulk load, and
//                     retires the stores of the previous epoch
//
// Sessions: every query-protocol message (kPrepare, kNextCandidate,
// kEvaluate, kFinishQuery) carries a QueryId, so one site serves any number
// of concurrent queries without their cursors or pruning state interfering.
// QueryId 0 is reserved for session-less traffic (update maintenance);
// coordinator-issued ids start at 1.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <vector>

#include "common/dataset.hpp"
#include "common/serialize.hpp"
#include "geometry/dominance.hpp"
#include "geometry/rect.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace dsud {

/// Identifies one query session across the coordinator and every site.
/// 0 = session-less traffic (update maintenance); queries get ids >= 1 from
/// Coordinator::nextQueryId().
using QueryId = std::uint64_t;
inline constexpr QueryId kNoQuery = 0;

// ---------------------------------------------------------------------------
// Query configuration

/// Local-pruning rule applied when a feedback tuple arrives (DESIGN.md 3.5).
enum class PruneRule : std::uint8_t {
  /// Exact: drop a local candidate s only when its provable upper bound
  /// P_sky(s, D_i) · Π_{feedback t ≺ s} (1 − P(t)) falls below q.
  kThresholdBound = 0,
  /// Paper-faithful (Sec. 4, Local-Pruning phase): drop every dominated
  /// candidate.  Can lose qualified answers; kept for the ablation.
  kDominance = 1,
};

/// Witnesses used by e-DSUD's global-probability upper bound (DESIGN.md 3.4).
enum class FeedbackBound : std::uint8_t {
  kNone = 0,                ///< no bound: degenerate to DSUD-style broadcast
  kQueuedWitnesses = 1,     ///< Observation 2 over every candidate seen so far
  kQueuedAndConfirmed = 2,  ///< + transitive bound through confirmed tuples
};

/// What e-DSUD does with a queued candidate whose bound falls below q
/// (DESIGN.md 3.4).
enum class ExpungePolicy : std::uint8_t {
  /// Expunge immediately and pull the site's next candidate.  Keeps every
  /// site stream flowing, so strong pruners reach the coordinator early;
  /// the best policy at scale and the default.
  kEager = 0,
  /// Park the candidate and stall its site until no broadcastable candidate
  /// remains (the paper's Sec. 5.3 behaviour): the stalled stream may be
  /// pruned at the site for free, at the cost of deferring that stream's
  /// own feedback.
  kPark = 1,
};

struct QueryConfig {
  double q = 0.3;    ///< probability threshold (paper default)
  DimMask mask = 0;  ///< 0 = all dimensions; otherwise a subspace query
  PruneRule prune = PruneRule::kThresholdBound;
  FeedbackBound bound = FeedbackBound::kQueuedAndConfirmed;
  ExpungePolicy expunge = ExpungePolicy::kEager;
  /// Constrained skyline (Wu et al., paper Sec. 2.1): restrict the query to
  /// tuples inside this window; dominance is evaluated among them only.
  std::optional<Rect> window;

  DimMask effectiveMask(std::size_t dims) const noexcept {
    return mask == 0 ? fullMask(dims) : mask;
  }
};

/// Configuration of the top-k extension (QueryEngine::runTopK).
struct TopKConfig {
  std::size_t k = 10;
  /// Site-side enumeration floor: tuples with local skyline probability
  /// below this are never shipped.  The result is exact whenever at least k
  /// tuples have P_gsky >= floorQ.
  double floorQ = 1e-3;
  DimMask mask = 0;  ///< 0 = all dimensions
  std::optional<Rect> window;

  DimMask effectiveMask(std::size_t dims) const noexcept {
    return mask == 0 ? fullMask(dims) : mask;
  }
};

// ---------------------------------------------------------------------------
// Shared payloads

/// The paper's quaternion ⟨i, j, P(t_ij), P_sky(t_ij, D_i)⟩, carrying the
/// tuple coordinates as well (the coordinator needs them for dominance
/// checks and feedback broadcast).  Shipping one Candidate counts as one
/// tuple of bandwidth.
struct Candidate {
  SiteId site = kNoSite;
  Tuple tuple;
  double localSkyProb = 0.0;

  void encode(ByteWriter& w) const;
  static Candidate decode(ByteReader& r);

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

void encodeTuple(ByteWriter& w, const Tuple& t);
Tuple decodeTuple(ByteReader& r);

void encodeOptionalRect(ByteWriter& w, const std::optional<Rect>& rect);
std::optional<Rect> decodeOptionalRect(ByteReader& r);

/// Trace block: the wire form of a site-side span list.  Used both as the
/// kFetchTrace response body and as the optional piggyback trailer appended
/// after query-response bodies (u32 count, the events, u64 dropped).
void encodeTraceBlock(ByteWriter& w, const obs::QueryTrace& trace);
obs::QueryTrace decodeTraceBlock(ByteReader& r);

// ---------------------------------------------------------------------------
// Messages

enum class MsgType : std::uint8_t {
  kPrepare = 1,
  kNextCandidate = 2,
  kEvaluate = 3,
  kShipAll = 4,
  kApplyInsert = 5,
  kApplyDelete = 6,
  kRepairDelete = 7,
  kReplicaAdd = 8,
  kReplicaRemove = 9,
  kFinishQuery = 10,
  kFetchTrace = 11,
  kJoinSite = 12,
  kLeaveSite = 13,
  kStreamTuples = 14,
};

struct PrepareRequest {
  QueryId query = kNoQuery;  ///< session to open (replaces any previous state)
  double q = 0.3;
  DimMask mask = 0;
  PruneRule prune = PruneRule::kThresholdBound;
  std::optional<Rect> window;  ///< constrained-query window
  /// Site-side tracing for this session: 0 leaves the session tracer
  /// disabled (responses stay byte-identical to untraced runs); otherwise
  /// the site records up to this many spans.
  std::uint32_t traceCapacity = 0;
  /// When true (and traceCapacity > 0) the site appends its newly recorded
  /// spans as a trace-block trailer on every query response of this session;
  /// when false they accumulate until a kFetchTrace.
  bool tracePiggyback = false;

  void encode(ByteWriter& w) const;
  static PrepareRequest decode(ByteReader& r);
};

struct PrepareResponse {
  std::uint64_t localSkylineSize = 0;

  void encode(ByteWriter& w) const;
  static PrepareResponse decode(ByteReader& r);
};

struct NextCandidateRequest {
  QueryId query = kNoQuery;  ///< session whose cursor advances
  /// Retry-safe replay: cursor advancement is NOT idempotent, so the RPC
  /// layer numbers each logical pull (per session and site, starting at 1)
  /// and the site answers a repeated seq from its replay cache instead of
  /// advancing again.  0 = no replay protection (legacy/sessionless).
  std::uint64_t seq = 0;

  void encode(ByteWriter& w) const;
  static NextCandidateRequest decode(ByteReader& r);
};

struct NextCandidateResponse {
  std::optional<Candidate> candidate;  ///< empty when the site is exhausted

  void encode(ByteWriter& w) const;
  static NextCandidateResponse decode(ByteReader& r);
};

struct EvaluateRequest {
  QueryId query = kNoQuery;  ///< session whose pending skyline gets pruned
  Tuple tuple;
  DimMask mask = 0;            ///< dominance subspace; 0 = all dimensions
  bool pruneLocal = true;      ///< false during update maintenance
  std::optional<Rect> window;  ///< survival restricted to this window
  /// Retry-safe replay (see NextCandidateRequest::seq): under the
  /// threshold-bound prune rule a duplicated evaluate would fold the
  /// feedback factor into extSurvival twice, so repeated seqs are answered
  /// from the site's replay cache.  0 = no replay protection.
  std::uint64_t seq = 0;

  void encode(ByteWriter& w) const;
  static EvaluateRequest decode(ByteReader& r);
};

struct EvaluateResponse {
  double survival = 1.0;  ///< Π_{t'∈D_x, t'≺t} (1 − P(t'))  (Observation 1)
  std::uint32_t prunedCount = 0;

  void encode(ByteWriter& w) const;
  static EvaluateResponse decode(ByteReader& r);
};

struct ShipAllRequest {
  void encode(ByteWriter&) const {}
  static ShipAllRequest decode(ByteReader&) { return {}; }
};

/// Releases one query session's site-side state (pending skyline, window,
/// thresholds).  Unknown ids are ignored — finish is idempotent and safe to
/// send after a failed query.
struct FinishQueryRequest {
  QueryId query = kNoQuery;

  void encode(ByteWriter& w) const;
  static FinishQueryRequest decode(ByteReader& r);
};

struct ShipAllResponse {
  std::vector<Tuple> tuples;

  void encode(ByteWriter& w) const;
  static ShipAllResponse decode(ByteReader& r);
};

/// Pulls one session's site-side span timeline.  The read is a snapshot —
/// it does not clear the site tracer — so a retried fetch is idempotent;
/// kFinishQuery releases the tracer with the rest of the session state.
/// `query == kNoQuery` fetches the site-level maintenance timeline instead.
struct FetchTraceRequest {
  QueryId query = kNoQuery;

  void encode(ByteWriter& w) const;
  static FetchTraceRequest decode(ByteReader& r);
};

struct FetchTraceResponse {
  obs::QueryTrace trace;

  void encode(ByteWriter& w) const;
  static FetchTraceResponse decode(ByteReader& r);
};

// --- Update maintenance ----------------------------------------------------

struct ApplyInsertRequest {
  Tuple tuple;

  void encode(ByteWriter& w) const;
  static ApplyInsertRequest decode(ByteReader& r);
};

struct ApplyInsertResponse {
  /// P_sky(t, D_i) after insertion (includes P(t)).
  double localSkyProb = 0.0;
  /// localSkyProb multiplied by Π (1 − P(r)) over replica dominators from
  /// other sites: a correct upper bound on P_gsky(t).
  double globalUpperBound = 0.0;
  /// Replica members the inserted tuple dominates (their cached global
  /// probabilities shrink by (1 − P(t))).
  std::vector<TupleId> dominatedReplica;
  /// The site's dataset version after this insert (monotone per-site counter
  /// bumped by every mutation).  The coordinator folds the stamp into its
  /// combined dataset version, invalidating the result cache.
  std::uint64_t datasetVersion = 0;

  void encode(ByteWriter& w) const;
  static ApplyInsertResponse decode(ByteReader& r);
};

struct ApplyDeleteRequest {
  TupleId id = 0;
  std::vector<double> values;

  void encode(ByteWriter& w) const;
  static ApplyDeleteRequest decode(ByteReader& r);
};

struct ApplyDeleteResponse {
  bool existed = false;
  double prob = 0.0;  ///< P(t) of the deleted tuple (0 when !existed)
  /// The site's dataset version after this delete (unchanged when the tuple
  /// did not exist).  See ApplyInsertResponse::datasetVersion.
  std::uint64_t datasetVersion = 0;

  void encode(ByteWriter& w) const;
  static ApplyDeleteResponse decode(ByteReader& r);
};

/// Broadcast after a delete: each site searches the region dominated by the
/// deleted tuple for local candidates that may now qualify globally.  The
/// request is self-contained: it carries the maintained query's threshold
/// and subspace instead of relying on whatever session a site prepared last.
struct RepairDeleteRequest {
  Tuple deleted;
  SiteId origin = kNoSite;  ///< site the delete happened at (already knows t)
  double q = 0.3;           ///< maintained query's probability threshold
  DimMask mask = 0;         ///< maintained query's subspace; 0 = all dims

  void encode(ByteWriter& w) const;
  static RepairDeleteRequest decode(ByteReader& r);
};

struct RepairDeleteResponse {
  std::vector<Candidate> candidates;

  void encode(ByteWriter& w) const;
  static RepairDeleteResponse decode(ByteReader& r);
};

struct ReplicaAddRequest {
  Candidate entry;  ///< site = origin site of the tuple
  double globalSkyProb = 0.0;

  void encode(ByteWriter& w) const;
  static ReplicaAddRequest decode(ByteReader& r);
};

struct ReplicaRemoveRequest {
  TupleId id = 0;

  void encode(ByteWriter& w) const;
  static ReplicaRemoveRequest decode(ByteReader& r);
};

struct AckResponse {
  void encode(ByteWriter&) const {}
  static AckResponse decode(ByteReader&) { return {}; }
};

// --- Elastic membership (online join / leave / repartitioning) -------------
//
// A repartition never mutates a live store: the rebalancer builds *new*
// stores in a staging phase (kStreamTuples batches append to a staging
// dataset), seals each one with kJoinSite (one STR bulk load — bit-identical
// to a from-scratch construction over the same data), atomically installs
// the new membership epoch at the coordinator, and finally marks the old
// stores draining with kLeaveSite.  In-flight query sessions keep their
// pinned epoch's stores until they finish, so queries never block on a
// rebalance.

/// One batch of tuples streamed into a staging store.  `partition` names the
/// partition the store will serve (sanity-checked against the store's id).
/// Batches are ordered; `seq` (per stream, starting at 1) lets the store
/// drop a retried delivery instead of appending twice.
struct StreamTuplesRequest {
  SiteId partition = kNoSite;
  std::uint64_t seq = 0;  ///< 0 = no replay protection
  std::vector<Tuple> tuples;

  void encode(ByteWriter& w) const;
  static StreamTuplesRequest decode(ByteReader& r);
};

struct StreamTuplesResponse {
  std::uint64_t received = 0;  ///< staging size after this batch

  void encode(ByteWriter& w) const;
  static StreamTuplesResponse decode(ByteReader& r);
};

/// Seals a staging store: bulk-loads the PR-tree over everything streamed so
/// far and opens the store for queries.  Idempotent — a retried join on an
/// already-live store acks without rebuilding.
struct JoinSiteRequest {
  std::uint64_t epoch = 0;  ///< membership epoch the store joins at

  void encode(ByteWriter& w) const;
  static JoinSiteRequest decode(ByteReader& r);
};

struct JoinSiteResponse {
  std::uint64_t size = 0;  ///< tuples in the sealed store

  void encode(ByteWriter& w) const;
  static JoinSiteResponse decode(ByteReader& r);
};

/// Marks a store draining: it serves its existing (epoch-pinned) sessions to
/// completion but rejects new prepares.  Idempotent.
struct LeaveSiteRequest {
  std::uint64_t epoch = 0;  ///< epoch that retired the store

  void encode(ByteWriter& w) const;
  static LeaveSiteRequest decode(ByteReader& r);
};

struct LeaveSiteResponse {
  std::uint64_t sessions = 0;  ///< pinned sessions still draining

  void encode(ByteWriter& w) const;
  static LeaveSiteResponse decode(ByteReader& r);
};

// ---------------------------------------------------------------------------
// Framing helpers

/// Builds a frame: MsgType byte + encoded body.
template <typename Msg>
Frame toFrame(MsgType type, const Msg& msg) {
  ByteWriter w;
  w.putU8(static_cast<std::uint8_t>(type));
  msg.encode(w);
  return std::move(w).take();
}

/// Reads and returns the type byte, leaving `r` at the body.
MsgType frameType(ByteReader& r);

/// Decodes a response frame that has no leading type byte.
template <typename Msg>
Msg fromResponseFrame(const Frame& frame) {
  ByteReader r(frame);
  Msg msg = Msg::decode(r);
  r.expectEnd();
  return msg;
}

/// Decodes a response frame that may carry a piggybacked trace-block
/// trailer (query responses of a session prepared with tracePiggyback).
/// The trailer's spans are appended to `*sink`; a frame without a trailer
/// (e.g. the session is gone at the site) decodes like fromResponseFrame.
template <typename Msg>
Msg fromResponseFrameWithTrace(const Frame& frame, obs::QueryTrace* sink) {
  ByteReader r(frame);
  Msg msg = Msg::decode(r);
  if (!r.atEnd()) {
    obs::QueryTrace delta = decodeTraceBlock(r);
    r.expectEnd();
    if (sink != nullptr) {
      sink->events.insert(sink->events.end(),
                          std::make_move_iterator(delta.events.begin()),
                          std::make_move_iterator(delta.events.end()));
      sink->droppedEvents += delta.droppedEvents;
    }
  }
  return msg;
}

/// Encodes a response frame (responses carry no type byte; the request
/// determines the expected response type).
template <typename Msg>
Frame toResponseFrame(const Msg& msg) {
  ByteWriter w;
  msg.encode(w);
  return std::move(w).take();
}

}  // namespace dsud
