#include "core/health.hpp"

#include <string>

#include "obs/log.hpp"

namespace dsud {

SiteHealth::SiteHealth(SiteId site, CircuitBreakerConfig config,
                       obs::MetricsRegistry* metrics)
    : site_(site), config_(config) {
  if (config_.failureThreshold == 0) config_.failureThreshold = 1;
  if (config_.probeAfter == 0) config_.probeAfter = 1;
  if (metrics != nullptr) {
    const std::string id = std::to_string(site_);
    healthGauge_ =
        &metrics->gauge(obs::labeled("dsud_site_health", {{"site", id}}));
    tripCounter_ = &metrics->counter(
        obs::labeled("dsud_breaker_trips_total", {{"site", id}}));
    healthGauge_->set(1.0);
  }
}

void SiteHealth::setStateLocked(State next) {
  if (state_ == next) return;
  state_ = next;
  if (healthGauge_ != nullptr) {
    switch (next) {
      case State::kClosed:
        healthGauge_->set(1.0);
        break;
      case State::kHalfOpen:
        healthGauge_->set(0.5);
        break;
      case State::kOpen:
        healthGauge_->set(0.0);
        break;
    }
  }
}

bool SiteHealth::admit() {
  std::lock_guard lock(mutex_);
  if (state_ != State::kOpen) return true;
  if (++rejections_ >= config_.probeAfter) {
    rejections_ = 0;
    setStateLocked(State::kHalfOpen);
    return true;  // the probe
  }
  return false;
}

void SiteHealth::recordSuccess() {
  bool closed = false;
  {
    std::lock_guard lock(mutex_);
    consecutiveFailures_ = 0;
    rejections_ = 0;
    closed = state_ != State::kClosed;
    setStateLocked(State::kClosed);
  }
  // Emit outside the breaker mutex: the event log takes its own lock and
  // fans out to sinks, which must never nest under per-site state.
  if (closed) {
    obs::eventLog().emit(LogLevel::kInfo, "health", "breaker.close",
                         {obs::field("site", site_)});
  }
}

void SiteHealth::recordFailure() {
  bool opened = false;
  std::uint64_t trips = 0;
  std::uint32_t failures = 0;
  {
    std::lock_guard lock(mutex_);
    ++consecutiveFailures_;
    const bool shouldOpen = state_ == State::kHalfOpen ||  // failed probe
                            consecutiveFailures_ >= config_.failureThreshold;
    if (shouldOpen && state_ != State::kOpen) {
      ++trips_;
      if (tripCounter_ != nullptr) tripCounter_->inc();
      rejections_ = 0;
      setStateLocked(State::kOpen);
      opened = true;
      trips = trips_;
      failures = consecutiveFailures_;
    }
  }
  if (opened) {
    obs::eventLog().emit(LogLevel::kWarn, "health", "breaker.open",
                         {obs::field("site", site_),
                          obs::field("failures", failures),
                          obs::field("trips", trips)});
  }
}

SiteHealth::State SiteHealth::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint32_t SiteHealth::consecutiveFailures() const {
  std::lock_guard lock(mutex_);
  return consecutiveFailures_;
}

std::uint64_t SiteHealth::trips() const {
  std::lock_guard lock(mutex_);
  return trips_;
}

}  // namespace dsud
