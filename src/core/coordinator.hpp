// The central server H (paper Sec. 3–5).
//
// A Coordinator owns the handles to the m sites plus the cluster-wide
// services every query shares: the bandwidth meter, the metrics registry,
// and the query-id allocator.  Queries themselves run through QueryEngine
// (core/query_engine.hpp), which opens an immutable per-query session over
// these shared handles — N sessions execute concurrently without touching
// coordinator state.
//
// Thread-safety contract: after construction the coordinator is effectively
// immutable — `site()`, `siteById()`, `meter()`, `metrics()`, `dims()`,
// `health()`, and `nextQueryId()` may be called from any number of query
// sessions concurrently (SiteHealth is internally synchronised).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/health.hpp"
#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "net/bandwidth.hpp"
#include "obs/metrics.hpp"

namespace dsud {

class Coordinator {
 public:
  /// `meter` and `metrics` may be null (no bandwidth accounting / no
  /// instruments).  `dims` is the global dimensionality (identical across
  /// sites).  Both sinks must outlive the coordinator.  `breaker` configures
  /// the per-site circuit breakers shared by every query session.
  Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
              BandwidthMeter* meter, std::size_t dims,
              obs::MetricsRegistry* metrics = nullptr,
              CircuitBreakerConfig breaker = {});

  std::size_t siteCount() const noexcept { return sites_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  BandwidthMeter* meter() const noexcept { return meter_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Site handle by position (positions are stable; ids may differ).
  SiteHandle& site(std::size_t index) { return *sites_[index]; }
  /// Site handle by id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId id);

  /// Circuit-breaker state of the site at `index` — one breaker per site,
  /// shared by every query session so consecutive failures accumulate
  /// across queries.  Thread-safe.
  SiteHealth& health(std::size_t index) { return *health_[index]; }

  /// Allocates the next session id (thread-safe; ids start at 1 — 0 is the
  /// wire protocol's session-less id).
  QueryId nextQueryId() noexcept {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Dataset versioning (result-cache invalidation) -----------------------

  /// Combined dataset version of the cluster as last reported by the sites:
  /// the sum of the per-site mutation counters piggybacked on maintenance
  /// responses (Sec. 5.4 traffic).  0 until the first update; monotone
  /// thereafter.  The result cache keys on this value, so any insert/delete
  /// routed through the coordinator's apply wrappers retires every cached
  /// verdict computed over the previous database.  Thread-safe.
  std::uint64_t datasetVersion() const noexcept {
    return datasetVersion_.load(std::memory_order_acquire);
  }

  /// Folds a per-site version stamp into the combined dataset version.
  /// Idempotent per (site, version): replaying a stamp never double-counts.
  /// Thread-safe, though maintenance itself is sequential by contract.
  void noteSiteVersion(SiteId site, std::uint64_t version);

  /// Maintenance ops routed through the coordinator so the response's
  /// version stamp is folded in before the caller acts on it — use these
  /// instead of siteById(id).applyInsert/applyDelete whenever a result
  /// cache may be attached to an engine over this coordinator.
  ApplyInsertResponse applyInsert(SiteId site, const ApplyInsertRequest& r);
  ApplyDeleteResponse applyDelete(SiteId site, const ApplyDeleteRequest& r);

  /// Broadcasts `c.tuple` to every site except its origin and multiplies the
  /// returned survival factors onto the local probability (Lemma 1).
  /// Returns the exact P_gsky; accumulates prune counts into `stats`.
  /// `mask` selects the dominance subspace (0 = all dimensions); a `window`
  /// restricts the survival products to in-window dominators.
  ///
  /// Session-less (QueryId 0) and sequential: this is the update-maintenance
  /// path (core/updates.hpp).  Queries evaluate through their own session
  /// (internal::QueryRun), which fans out over per-query workers.
  double evaluateGlobally(const Candidate& c, bool pruneLocal,
                          QueryStats& stats, DimMask mask = 0,
                          const std::optional<Rect>& window = std::nullopt);

 private:
  std::vector<std::unique_ptr<SiteHandle>> sites_;
  std::vector<std::unique_ptr<SiteHealth>> health_;  ///< parallel to sites_
  BandwidthMeter* meter_;
  std::size_t dims_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::atomic<QueryId> nextId_{1};

  std::atomic<std::uint64_t> datasetVersion_{0};
  std::mutex versionMutex_;  // guards siteVersions_
  std::unordered_map<SiteId, std::uint64_t> siteVersions_;
};

}  // namespace dsud
