// The central server H (paper Sec. 3–5).
//
// A Coordinator owns the handles to the m sites plus the cluster-wide
// services every query shares: the bandwidth meter, the metrics registry,
// and the query-id allocator.  Queries themselves run through QueryEngine
// (core/query_engine.hpp), which opens an immutable per-query session over
// these shared handles — N sessions execute concurrently without touching
// coordinator state.
//
// Thread-safety contract: after construction the coordinator is effectively
// immutable — `site()`, `siteById()`, `meter()`, `metrics()`, `dims()`,
// `health()`, and `nextQueryId()` may be called from any number of query
// sessions concurrently (SiteHealth is internally synchronised).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/health.hpp"
#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "net/bandwidth.hpp"
#include "obs/metrics.hpp"

namespace dsud {

class Coordinator {
 public:
  /// `meter` and `metrics` may be null (no bandwidth accounting / no
  /// instruments).  `dims` is the global dimensionality (identical across
  /// sites).  Both sinks must outlive the coordinator.  `breaker` configures
  /// the per-site circuit breakers shared by every query session.
  Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
              BandwidthMeter* meter, std::size_t dims,
              obs::MetricsRegistry* metrics = nullptr,
              CircuitBreakerConfig breaker = {});

  std::size_t siteCount() const noexcept { return sites_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  BandwidthMeter* meter() const noexcept { return meter_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Site handle by position (positions are stable; ids may differ).
  SiteHandle& site(std::size_t index) { return *sites_[index]; }
  /// Site handle by id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId id);

  /// Circuit-breaker state of the site at `index` — one breaker per site,
  /// shared by every query session so consecutive failures accumulate
  /// across queries.  Thread-safe.
  SiteHealth& health(std::size_t index) { return *health_[index]; }

  /// Allocates the next session id (thread-safe; ids start at 1 — 0 is the
  /// wire protocol's session-less id).
  QueryId nextQueryId() noexcept {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Broadcasts `c.tuple` to every site except its origin and multiplies the
  /// returned survival factors onto the local probability (Lemma 1).
  /// Returns the exact P_gsky; accumulates prune counts into `stats`.
  /// `mask` selects the dominance subspace (0 = all dimensions); a `window`
  /// restricts the survival products to in-window dominators.
  ///
  /// Session-less (QueryId 0) and sequential: this is the update-maintenance
  /// path (core/updates.hpp).  Queries evaluate through their own session
  /// (internal::QueryRun), which fans out over per-query workers.
  double evaluateGlobally(const Candidate& c, bool pruneLocal,
                          QueryStats& stats, DimMask mask = 0,
                          const std::optional<Rect>& window = std::nullopt);

 private:
  std::vector<std::unique_ptr<SiteHandle>> sites_;
  std::vector<std::unique_ptr<SiteHealth>> health_;  ///< parallel to sites_
  BandwidthMeter* meter_;
  std::size_t dims_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::atomic<QueryId> nextId_{1};
};

}  // namespace dsud
