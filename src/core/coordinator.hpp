// The central server H (paper Sec. 3–5).
//
// A Coordinator owns handles to m sites and runs the three query algorithms:
//
//   * runNaive  — the Sec. 3.2 baseline: ship every local database to H,
//                 answer centrally;
//   * runDsud   — Sec. 5.1: sorted To-Server access by local skyline
//                 probability, every candidate broadcast for exact global
//                 evaluation (priority queue L);
//   * runEdsud  — Sec. 5.2: additionally maintains the global-probability
//                 upper bound P*_gsky for every queued candidate (queue G);
//                 candidates whose bound falls below q are expunged without
//                 the (m−1)-tuple broadcast — the source of e-DSUD's
//                 bandwidth advantage.
//
// All three report answers progressively through an optional callback and
// return the per-query statistics used by the benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "net/bandwidth.hpp"
#include "obs/metrics.hpp"

namespace dsud {

class Coordinator {
 public:
  /// `meter` may be null (no bandwidth accounting).  `dims` is the global
  /// dimensionality (identical across sites).
  Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
              BandwidthMeter* meter, std::size_t dims);

  std::size_t siteCount() const noexcept { return sites_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  BandwidthMeter* meter() const noexcept { return meter_; }

  /// Attaches a metrics registry; every query then maintains the
  /// `dsud_query_*` / `dsud_rounds_*` instrument families (per-algorithm
  /// labels).  Null detaches.  The registry must outlive the coordinator.
  void setMetrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Caps the per-query protocol timeline at `maxEvents` spans (0 disables
  /// tracing; QueryResult::trace comes back empty).  Default: 65536 —
  /// roughly 16k feedback rounds before events are dropped, ~100 bytes per
  /// retained span.
  void setTraceCapacity(std::size_t maxEvents) noexcept {
    traceCapacity_ = maxEvents;
  }
  std::size_t traceCapacity() const noexcept { return traceCapacity_; }

  /// Site handle by position (positions are stable; ids may differ).
  SiteHandle& site(std::size_t index) { return *sites_[index]; }
  /// Site handle by id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId id);

  /// Registers a callback invoked the moment each answer qualifies.
  void setProgressCallback(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Runs feedback broadcasts with `threads` workers instead of
  /// sequentially.  Requires every site handle to tolerate concurrent calls
  /// to *different* sites (both shipped transports do: in-process sites are
  /// independent objects; TCP sites own separate sockets).  Survival factors
  /// are still reduced in site order, so results stay bit-for-bit
  /// deterministic.  `threads == 0` restores sequential broadcasting.
  void setParallelBroadcast(std::size_t threads);

  QueryResult runNaive(const QueryConfig& config);
  QueryResult runDsud(const QueryConfig& config);
  QueryResult runEdsud(const QueryConfig& config);

  /// Top-k extension (cf. the "selecting stars" line of work the paper
  /// cites as [4]): the k tuples with the *largest* global skyline
  /// probability, found with e-DSUD's bound machinery driven by an adaptive
  /// threshold — the running k-th best confirmed probability.  Exact
  /// whenever at least k tuples satisfy P_gsky >= floorQ (the site-side
  /// enumeration floor); answers are returned sorted by descending
  /// probability, not streamed (top-k membership is only final at the end).
  QueryResult runTopK(const TopKConfig& config);

  /// Broadcasts `c.tuple` to every site except its origin and multiplies the
  /// returned survival factors onto the local probability (Lemma 1).
  /// Returns the exact P_gsky; accumulates prune counts into `stats`.  A
  /// `window` restricts the survival products to in-window dominators
  /// (constrained queries).
  double evaluateGlobally(const Candidate& c, bool pruneLocal,
                          QueryStats& stats,
                          const std::optional<Rect>& window = std::nullopt);

 private:
  friend struct QueryRun;

  std::vector<std::unique_ptr<SiteHandle>> sites_;
  BandwidthMeter* meter_;
  std::size_t dims_;
  ProgressCallback progress_;
  std::unique_ptr<ThreadPool> broadcastPool_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t traceCapacity_ = 65536;
};

}  // namespace dsud
