// The central server H (paper Sec. 3–5).
//
// A Coordinator owns the cluster-wide services every query shares — the
// bandwidth meter, the metrics registry, the query-id allocator, the
// per-member circuit breakers — plus the current *topology snapshot*: an
// immutable ClusterView naming, for every partition, the session handles of
// its k replica stores.  Queries themselves run through QueryEngine
// (core/query_engine.hpp), which opens an immutable per-query session over
// the pinned snapshot — N sessions execute concurrently without touching
// coordinator state.
//
// Elastic membership: InProcCluster (or any other wiring layer) installs a
// new ClusterView whenever sites join, leave, or a rebalance completes.
// Installation is atomic; in-flight sessions keep the shared_ptr of the
// snapshot they started on, so the stores of a retired epoch stay reachable
// until the last pinned session releases them.  The membership epoch is
// folded into the result-cache key, retiring cached answers of older
// layouts by construction.
//
// Thread-safety contract: `view()`, `installView()`, `healthFor()`,
// `nextQueryId()`, `datasetVersion()`, and `membershipEpoch()` are fully
// thread-safe.  The positional accessors (`siteCount()`, `site()`,
// `siteById()`, `health()`) read the *current* view and hand out references
// into it; they are safe against concurrent queries, but callers must not
// hold them across a membership change (update maintenance and admin
// operations are sequential by contract — see docs/ARCHITECTURE.md §9).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/health.hpp"
#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "net/bandwidth.hpp"
#include "obs/metrics.hpp"

namespace dsud {

/// One partition's replica chain inside a topology snapshot: the shared
/// session factories of its stores (primary first) and, parallel to them,
/// the circuit breaker of each hosting member.  All replicas share the
/// partition's SiteId and hold bit-identical data, which is what makes
/// failover answer-preserving.
struct ReplicaChain {
  SiteId partition = kNoSite;
  std::vector<std::shared_ptr<SiteHandle>> replicas;  ///< [0] = primary
  /// Breakers of the hosting members (owned by the coordinator, stable
  /// across epochs so consecutive failures accumulate through rebalances).
  std::vector<SiteHealth*> health;
};

/// Immutable snapshot of the cluster layout at one membership epoch.
/// Partitions are ordered by id; the order fixes the survival-product
/// reduction order, so two clusters with equal views answer bit-identically.
struct ClusterView {
  std::uint64_t epoch = 1;
  std::vector<ReplicaChain> partitions;
};

class Coordinator {
 public:
  /// Topology-less construction: services only.  `installView` must run
  /// before the first query.  `meter` and `metrics` may be null (no
  /// bandwidth accounting / no instruments) and must outlive the
  /// coordinator; `breaker` configures every per-member circuit breaker.
  Coordinator(BandwidthMeter* meter, std::size_t dims,
              obs::MetricsRegistry* metrics = nullptr,
              CircuitBreakerConfig breaker = {});

  /// Static single-epoch construction from one handle per partition (no
  /// replicas, no elasticity) — the TCP wiring and handle-level tests use
  /// this; InProcCluster builds views itself.
  Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
              BandwidthMeter* meter, std::size_t dims,
              obs::MetricsRegistry* metrics = nullptr,
              CircuitBreakerConfig breaker = {});

  std::size_t dims() const noexcept { return dims_; }
  BandwidthMeter* meter() const noexcept { return meter_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  // --- Topology snapshots ----------------------------------------------------

  /// Pins the current topology snapshot.  Query sessions hold the returned
  /// pointer for their whole run; a concurrent rebalance installs the next
  /// epoch without invalidating it.
  std::shared_ptr<const ClusterView> view() const;

  /// Atomically replaces the topology snapshot (membership change or
  /// completed rebalance).  The view must be non-empty and well-formed.
  void installView(std::shared_ptr<const ClusterView> view);

  /// Membership epoch of the current view — folded into the result-cache
  /// key so answers can never outlive the layout they were computed on.
  std::uint64_t membershipEpoch() const { return view()->epoch; }

  /// Circuit breaker of the member hosting stores under `host`, created on
  /// first use and stable across epochs.  Thread-safe.
  SiteHealth& healthFor(SiteId host);

  // --- Positional accessors over the current view ---------------------------

  std::size_t siteCount() const { return view()->partitions.size(); }
  /// Primary handle of the partition at `index` in the current view.
  SiteHandle& site(std::size_t index) { return *view()->partitions[index].replicas[0]; }
  /// Primary handle by partition id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId id);
  /// Breaker of the member primarily hosting the partition at `index`.
  SiteHealth& health(std::size_t index) { return *view()->partitions[index].health[0]; }

  /// Allocates the next session id (thread-safe; ids start at 1 — 0 is the
  /// wire protocol's session-less id).
  QueryId nextQueryId() noexcept {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Dataset versioning (result-cache invalidation) -----------------------

  /// Combined dataset version of the cluster as last reported by the sites:
  /// the sum of the per-site mutation counters piggybacked on maintenance
  /// responses (Sec. 5.4 traffic).  0 until the first update; monotone
  /// thereafter.  The result cache keys on this value *and* the membership
  /// epoch, so an update or a layout change retires every cached verdict
  /// computed over the previous database.  Thread-safe.
  std::uint64_t datasetVersion() const noexcept {
    return datasetVersion_.load(std::memory_order_acquire);
  }

  /// Folds a per-site version stamp into the combined dataset version.
  /// Idempotent per (site, version): replaying a stamp never double-counts.
  /// Thread-safe, though maintenance itself is sequential by contract.
  void noteSiteVersion(SiteId site, std::uint64_t version);

  /// Forgets the per-site version stamps.  A rebalance replaces every store
  /// with a fresh one whose mutation counter restarts at zero; without the
  /// reset, post-rebalance updates would compare as stale against the old
  /// stamps and never advance the combined version.  The combined version
  /// itself is untouched (monotone), and the epoch change already retired
  /// the old cache entries.
  void resetSiteVersions();

  /// Maintenance ops routed through the coordinator so the response's
  /// version stamp is folded in before the caller acts on it — use these
  /// instead of siteById(id).applyInsert/applyDelete whenever a result
  /// cache may be attached to an engine over this coordinator.  The
  /// mutation is applied to *every* replica of the partition (same data on
  /// every host is the failover invariant); the primary's response wins.
  ApplyInsertResponse applyInsert(SiteId site, const ApplyInsertRequest& r);
  ApplyDeleteResponse applyDelete(SiteId site, const ApplyDeleteRequest& r);

  /// Broadcasts `c.tuple` to every site except its origin and multiplies the
  /// returned survival factors onto the local probability (Lemma 1).
  /// Returns the exact P_gsky; accumulates prune counts into `stats`.
  /// `mask` selects the dominance subspace (0 = all dimensions); a `window`
  /// restricts the survival products to in-window dominators.
  ///
  /// Session-less (QueryId 0) and sequential: this is the update-maintenance
  /// path (core/updates.hpp).  Queries evaluate through their own session
  /// (internal::QueryRun), which fans out over per-query workers.
  double evaluateGlobally(const Candidate& c, bool pruneLocal,
                          QueryStats& stats, DimMask mask = 0,
                          const std::optional<Rect>& window = std::nullopt);

 private:
  const ReplicaChain& chainById(const ClusterView& view, SiteId id) const;

  BandwidthMeter* meter_;
  std::size_t dims_;
  obs::MetricsRegistry* metrics_ = nullptr;
  CircuitBreakerConfig breaker_;
  std::atomic<QueryId> nextId_{1};

  mutable std::mutex viewMutex_;  // guards view_ swaps (reads copy the ptr)
  std::shared_ptr<const ClusterView> view_;
  obs::Gauge* epochGauge_ = nullptr;

  std::mutex healthMutex_;  // guards health_ (breaker registry by member)
  std::unordered_map<SiteId, std::unique_ptr<SiteHealth>> health_;

  std::atomic<std::uint64_t> datasetVersion_{0};
  std::mutex versionMutex_;  // guards siteVersions_
  std::unordered_map<SiteId, std::uint64_t> siteVersions_;
};

}  // namespace dsud
