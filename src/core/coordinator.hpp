// The central server H (paper Sec. 3–5).
//
// A Coordinator owns the handles to the m sites plus the cluster-wide
// services every query shares: the bandwidth meter, the metrics registry,
// and the query-id allocator.  Queries themselves run through QueryEngine
// (core/query_engine.hpp), which opens an immutable per-query session over
// these shared handles — N sessions execute concurrently without touching
// coordinator state.
//
// Thread-safety contract: after construction the coordinator is effectively
// immutable — `site()`, `siteById()`, `meter()`, `metrics()`, `dims()`, and
// `nextQueryId()` may be called from any number of query sessions
// concurrently.  The deprecated `set*` mutators and `run*` entry points are
// the pre-session API; they mutate the legacy defaults without locking and
// therefore keep the old single-query-at-a-time restriction.  New code uses
// QueryEngine and never calls them.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/result.hpp"
#include "core/site_handle.hpp"
#include "net/bandwidth.hpp"
#include "obs/metrics.hpp"

namespace dsud {

class Coordinator {
 public:
  /// `meter` and `metrics` may be null (no bandwidth accounting / no
  /// instruments).  `dims` is the global dimensionality (identical across
  /// sites).  Both sinks must outlive the coordinator.
  Coordinator(std::vector<std::unique_ptr<SiteHandle>> sites,
              BandwidthMeter* meter, std::size_t dims,
              obs::MetricsRegistry* metrics = nullptr);

  std::size_t siteCount() const noexcept { return sites_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  BandwidthMeter* meter() const noexcept { return meter_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Site handle by position (positions are stable; ids may differ).
  SiteHandle& site(std::size_t index) { return *sites_[index]; }
  /// Site handle by id; throws std::out_of_range when unknown.
  SiteHandle& siteById(SiteId id);

  /// Allocates the next session id (thread-safe; ids start at 1 — 0 is the
  /// wire protocol's session-less id).
  QueryId nextQueryId() noexcept {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Broadcasts `c.tuple` to every site except its origin and multiplies the
  /// returned survival factors onto the local probability (Lemma 1).
  /// Returns the exact P_gsky; accumulates prune counts into `stats`.
  /// `mask` selects the dominance subspace (0 = all dimensions); a `window`
  /// restricts the survival products to in-window dominators.
  ///
  /// Session-less (QueryId 0) and sequential: this is the update-maintenance
  /// path (core/updates.hpp).  Queries evaluate through their own session
  /// (internal::QueryRun), which fans out over per-query workers.
  double evaluateGlobally(const Candidate& c, bool pruneLocal,
                          QueryStats& stats, DimMask mask = 0,
                          const std::optional<Rect>& window = std::nullopt);

  // --- Deprecated pre-session API ------------------------------------------
  //
  // Shims kept for one release so downstream call sites migrate at leisure;
  // they delegate to a QueryEngine seeded with the legacy defaults below.
  // None of them is safe to call concurrently with a running query.

  [[deprecated("construct the Coordinator with a metrics registry instead")]]
  void setMetrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  [[deprecated("use QueryOptions::traceCapacity")]]
  void setTraceCapacity(std::size_t maxEvents) noexcept {
    legacyOptions_.traceCapacity = maxEvents;
  }
  std::size_t traceCapacity() const noexcept {
    return legacyOptions_.traceCapacity;
  }

  [[deprecated("use QueryOptions::progress")]]
  void setProgressCallback(ProgressCallback callback) {
    legacyOptions_.progress = std::move(callback);
  }

  [[deprecated("use QueryOptions::broadcastThreads")]]
  void setParallelBroadcast(std::size_t threads) {
    legacyOptions_.broadcastThreads = threads;
  }

  [[deprecated("use QueryEngine::runNaive")]]
  QueryResult runNaive(const QueryConfig& config);
  [[deprecated("use QueryEngine::runDsud")]]
  QueryResult runDsud(const QueryConfig& config);
  [[deprecated("use QueryEngine::runEdsud")]]
  QueryResult runEdsud(const QueryConfig& config);
  [[deprecated("use QueryEngine::runTopK")]]
  QueryResult runTopK(const TopKConfig& config);

 private:
  std::vector<std::unique_ptr<SiteHandle>> sites_;
  BandwidthMeter* meter_;
  std::size_t dims_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::atomic<QueryId> nextId_{1};
  QueryOptions legacyOptions_;  ///< defaults the deprecated shims run with
};

}  // namespace dsud
