#include "core/local_site.hpp"

#include <algorithm>
#include <stdexcept>

#include "skyline/bbs.hpp"

namespace dsud {

LocalSite::LocalSite(SiteId id, const Dataset& db, PRTree::Options options)
    : id_(id),
      tree_(PRTree::bulkLoad(db, options)),
      fullMask_(fullMask(db.dims())),
      treeOptions_(options) {}

LocalSite::LocalSite(SiteId id, std::size_t dims, PRTree::Options options)
    : id_(id),
      tree_(dims, options),
      fullMask_(fullMask(dims)),
      treeOptions_(options),
      phase_(Phase::kStaging),
      staging_(std::make_unique<Dataset>(dims)) {}

LocalSite::Phase LocalSite::phase() const {
  std::lock_guard lock(mutex_);
  return phase_;
}

void LocalSite::setMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard lock(mutex_);
  if (registry == nullptr) {
    nodeAccesses_ = nullptr;
    pruned_ = nullptr;
    return;
  }
  const std::string site = std::to_string(id_);
  nodeAccesses_ = &registry->counter(
      obs::labeled("dsud_site_node_accesses_total", {{"site", site}}));
  pruned_ = &registry->counter(
      obs::labeled("dsud_site_pruned_total", {{"site", site}}));
  flushedAccesses_ = tree_.nodeAccesses();
}

void LocalSite::flushTreeMetricsLocked() {
  if (nodeAccesses_ == nullptr) return;
  const std::uint64_t now = tree_.nodeAccesses();
  nodeAccesses_->add(now - flushedAccesses_);
  flushedAccesses_ = now;
}

void LocalSite::setMaintenanceTrace(std::size_t maxEvents) {
  std::lock_guard lock(mutex_);
  maintTracer_ = maxEvents > 0 ? std::make_unique<obs::Tracer>(maxEvents)
                               : nullptr;
}

obs::SpanId LocalSite::maintBeginLocked(std::string_view name) {
  return maintTracer_ != nullptr ? maintTracer_->begin(name, obs::kNoSpan)
                                 : obs::kNoSpan;
}

void LocalSite::maintAttrLocked(obs::SpanId span, std::string_view key,
                                double value) {
  if (maintTracer_ != nullptr) maintTracer_->attr(span, key, value);
}

void LocalSite::maintEndLocked(obs::SpanId span) {
  if (maintTracer_ != nullptr) maintTracer_->end(span);
}

PrepareResponse LocalSite::prepare(const PrepareRequest& request) {
  if (!(request.q > 0.0) || request.q > 1.0) {
    throw std::invalid_argument("LocalSite::prepare: q must be in (0, 1]");
  }
  if (request.window && request.window->dims() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::prepare: window dims mismatch");
  }

  std::lock_guard lock(mutex_);
  if (phase_ == Phase::kStaging) {
    // Not a transport fault: routing a query to a half-seeded store is a
    // topology bug, so fail loudly instead of retrying.  A kDraining store
    // still serves prepares: its tree holds the retired epoch's full
    // partition, and any session that reaches it pinned that epoch's view
    // before the store was drained (MVCC — old versions stay readable
    // until the last reader lets go).
    throw std::logic_error(
        "LocalSite::prepare: store is staging (not yet joined)");
  }
  Session session;
  session.q = request.q;
  session.mask = request.mask == 0 ? fullMask_ : request.mask;
  session.prune = request.prune;
  session.window = request.window;
  if (request.traceCapacity > 0) {
    session.tracer = std::make_unique<obs::Tracer>(request.traceCapacity);
    session.piggyback = request.tracePiggyback;
  }

  const std::uint64_t nodesBefore = tree_.nodeAccesses();
  const obs::SpanId span =
      session.tracer ? session.tracer->begin("site.prepare", obs::kNoSpan)
                     : obs::kNoSpan;
  const Rect* clip = session.window ? &*session.window : nullptr;
  for (ProbSkylineEntry& e : bbsSkyline(
           tree_, {.mask = session.mask, .q = session.q, .clip = clip})) {
    session.pending.push_back(PendingEntry{std::move(e), 1.0});
  }
  flushTreeMetricsLocked();

  const std::uint64_t size = session.pending.size();
  if (session.tracer) {
    session.tracer->attr(span, "nodes",
                         static_cast<double>(tree_.nodeAccesses() -
                                             nodesBefore));
    session.tracer->attr(span, "candidates", static_cast<double>(size));
    session.tracer->end(span);
  }
  sessions_[request.query] = std::move(session);
  return PrepareResponse{size};
}

NextCandidateResponse LocalSite::nextCandidate(
    const NextCandidateRequest& request) {
  std::lock_guard lock(mutex_);
  NextCandidateResponse response;
  const auto it = sessions_.find(request.query);
  if (it == sessions_.end()) return response;
  Session& session = it->second;
  obs::Tracer* tracer = session.tracer.get();
  // Duplicate delivery (retry after a lost response): replay, don't advance.
  if (request.seq != 0 && request.seq == session.lastNextSeq) {
    if (tracer != nullptr) {
      const obs::SpanId span = tracer->begin("site.next", obs::kNoSpan);
      tracer->attr(span, "seq", static_cast<double>(request.seq));
      tracer->attr(span, "replay", 1.0);
      tracer->end(span);
    }
    return session.lastNext;
  }
  const obs::SpanId span =
      tracer != nullptr ? tracer->begin("site.next", obs::kNoSpan)
                        : obs::kNoSpan;
  if (!session.pending.empty()) {
    std::vector<PendingEntry>& pending = session.pending;
    PendingEntry head = std::move(pending.front());
    pending.erase(pending.begin());

    Candidate c;
    c.site = id_;
    c.tuple = Tuple(head.entry.id, std::move(head.entry.values),
                    head.entry.prob);
    c.localSkyProb = head.entry.skyProb;
    response.candidate = std::move(c);
  }
  if (request.seq != 0) {
    session.lastNextSeq = request.seq;
    session.lastNext = response;
  }
  if (tracer != nullptr) {
    tracer->attr(span, "seq", static_cast<double>(request.seq));
    tracer->attr(span, "returned", response.candidate ? 1.0 : 0.0);
    tracer->attr(span, "pending",
                 static_cast<double>(session.pending.size()));
    tracer->end(span);
  }
  return response;
}

EvaluateResponse LocalSite::evaluate(const EvaluateRequest& request) {
  if (request.window && request.window->dims() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::evaluate: window dims mismatch");
  }
  std::lock_guard lock(mutex_);
  const auto sessionIt = sessions_.find(request.query);
  Session* sess = sessionIt == sessions_.end() ? nullptr : &sessionIt->second;
  obs::Tracer* tracer =
      (sess != nullptr && sess->tracer) ? sess->tracer.get() : nullptr;
  // Duplicate delivery: replay the cached response — re-executing would fold
  // the feedback factor into extSurvival a second time (threshold rule).
  if (request.seq != 0 && sess != nullptr &&
      request.seq == sess->lastEvalSeq) {
    if (tracer != nullptr) {
      const obs::SpanId span = tracer->begin("site.evaluate", obs::kNoSpan);
      tracer->attr(span, "seq", static_cast<double>(request.seq));
      tracer->attr(span, "replay", 1.0);
      tracer->end(span);
    }
    return sess->lastEval;
  }
  const DimMask mask = request.mask == 0 ? fullMask_ : request.mask;
  const std::uint64_t nodesBefore = tree_.nodeAccesses();
  const obs::SpanId span =
      tracer != nullptr ? tracer->begin("site.evaluate", obs::kNoSpan)
                        : obs::kNoSpan;
  EvaluateResponse response;
  const Rect* clip = request.window ? &*request.window : nullptr;
  response.survival =
      tree_.dominanceSurvival(request.tuple.values, mask, clip);
  flushTreeMetricsLocked();

  if (request.pruneLocal && sess != nullptr) {
    Session& session = *sess;
    const Tuple& t = request.tuple;
    auto doomed = [&](PendingEntry& p) {
      if (!dominates(t.values, p.entry.values, session.mask)) return false;
      if (session.prune == PruneRule::kDominance) return true;
      // Threshold rule: accumulate the external factor and prune only when
      // the provable upper bound falls below q.
      p.extSurvival *= 1.0 - t.prob;
      return p.entry.skyProb * p.extSurvival < session.q;
    };
    const auto removed =
        std::remove_if(session.pending.begin(), session.pending.end(),
                       doomed);
    response.prunedCount = static_cast<std::uint32_t>(
        std::distance(removed, session.pending.end()));
    session.pending.erase(removed, session.pending.end());
    if (pruned_ != nullptr) pruned_->add(response.prunedCount);
    if (request.seq != 0) {
      session.lastEvalSeq = request.seq;
      session.lastEval = response;
    }
  }
  if (tracer != nullptr) {
    tracer->attr(span, "seq", static_cast<double>(request.seq));
    tracer->attr(span, "nodes",
                 static_cast<double>(tree_.nodeAccesses() - nodesBefore));
    tracer->attr(span, "pruned", static_cast<double>(response.prunedCount));
    tracer->attr(span, "pending",
                 static_cast<double>(sess->pending.size()));
    tracer->end(span);
  }
  return response;
}

ShipAllResponse LocalSite::shipAll() const {
  std::lock_guard lock(mutex_);
  ShipAllResponse response;
  response.tuples.reserve(tree_.size());
  tree_.forEach([&](const PRTree::LeafEntry& e) {
    response.tuples.emplace_back(
        e.id,
        std::vector<double>(e.values.begin(),
                            e.values.begin() +
                                static_cast<std::ptrdiff_t>(tree_.dims())),
        e.prob);
  });
  return response;
}

void LocalSite::finishQuery(const FinishQueryRequest& request) {
  std::lock_guard lock(mutex_);
  sessions_.erase(request.query);
}

FetchTraceResponse LocalSite::fetchTrace(
    const FetchTraceRequest& request) const {
  std::lock_guard lock(mutex_);
  FetchTraceResponse response;
  if (request.query == kNoQuery) {
    if (maintTracer_ != nullptr) response.trace = maintTracer_->snapshot();
    return response;
  }
  const auto it = sessions_.find(request.query);
  if (it != sessions_.end() && it->second.tracer) {
    response.trace = it->second.tracer->snapshot();
  }
  return response;
}

std::optional<obs::QueryTrace> LocalSite::takePiggybackDelta(QueryId query) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(query);
  if (it == sessions_.end() || !it->second.tracer || !it->second.piggyback) {
    return std::nullopt;
  }
  return it->second.tracer->take();
}

std::size_t LocalSite::pendingCount(QueryId query) const {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(query);
  return it == sessions_.end() ? 0 : it->second.pending.size();
}

std::size_t LocalSite::sessionCount() const {
  std::lock_guard lock(mutex_);
  return sessions_.size();
}

std::vector<LocalSite::ReplicaEntry> LocalSite::replica() const {
  std::lock_guard lock(mutex_);
  return replica_;
}

// ---------------------------------------------------------------------------
// Elastic membership

StreamTuplesResponse LocalSite::streamTuples(
    const StreamTuplesRequest& request) {
  if (request.partition != id_) {
    throw std::invalid_argument(
        "LocalSite::streamTuples: partition mismatch (store " +
        std::to_string(id_) + ", request " +
        std::to_string(request.partition) + ")");
  }
  std::lock_guard lock(mutex_);
  if (phase_ != Phase::kStaging || staging_ == nullptr) {
    throw std::logic_error(
        "LocalSite::streamTuples: store is not staging");
  }
  // Replay protection: batches arrive strictly ordered (the RPC layer never
  // pipelines), so a seq at or below the last applied one is a retried
  // delivery — ack with the current size instead of appending twice.
  if (request.seq == 0 || request.seq > lastStreamSeq_) {
    for (const Tuple& t : request.tuples) {
      if (t.values.size() != staging_->dims()) {
        throw std::invalid_argument(
            "LocalSite::streamTuples: bad dimensionality");
      }
      staging_->add(t);
    }
    if (request.seq != 0) lastStreamSeq_ = request.seq;
  }
  return StreamTuplesResponse{staging_->size()};
}

JoinSiteResponse LocalSite::joinSite(const JoinSiteRequest&) {
  std::lock_guard lock(mutex_);
  if (phase_ == Phase::kStaging) {
    // The seal: one STR bulk load over the streamed tuples — the same build
    // a live-constructed store gets, so query answers are bit-identical to
    // a from-scratch site over the same data.
    tree_ = PRTree::bulkLoad(*staging_, treeOptions_);
    staging_.reset();
    phase_ = Phase::kLive;
    flushedAccesses_ = tree_.nodeAccesses();
  }
  return JoinSiteResponse{tree_.size()};
}

LeaveSiteResponse LocalSite::leaveSite(const LeaveSiteRequest&) {
  std::lock_guard lock(mutex_);
  phase_ = Phase::kDraining;
  staging_.reset();
  return LeaveSiteResponse{sessions_.size()};
}

// ---------------------------------------------------------------------------
// Update maintenance

double LocalSite::replicaExternalSurvivalLocked(std::span<const double> v,
                                                DimMask mask) const {
  double survival = 1.0;
  for (const ReplicaEntry& r : replica_) {
    if (r.entry.site == id_) continue;  // already counted in the local tree
    if (dominates(r.entry.tuple.values, v, mask)) {
      survival *= 1.0 - r.entry.tuple.prob;
    }
  }
  return survival;
}

ApplyInsertResponse LocalSite::applyInsert(const ApplyInsertRequest& request) {
  std::lock_guard lock(mutex_);
  const obs::SpanId span = maintBeginLocked("site.insert");
  const Tuple& t = request.tuple;
  tree_.insert(t);
  ++datasetVersion_;

  ApplyInsertResponse response;
  response.datasetVersion = datasetVersion_;
  response.localSkyProb =
      t.prob * tree_.dominanceSurvival(t.values, fullMask_);
  response.globalUpperBound =
      response.localSkyProb * replicaExternalSurvivalLocked(t.values,
                                                            fullMask_);
  for (const ReplicaEntry& r : replica_) {
    if (dominates(t.values, r.entry.tuple.values, fullMask_)) {
      response.dominatedReplica.push_back(r.entry.tuple.id);
    }
  }
  maintAttrLocked(span, "dominated_replica",
                  static_cast<double>(response.dominatedReplica.size()));
  maintEndLocked(span);
  return response;
}

ApplyDeleteResponse LocalSite::applyDelete(const ApplyDeleteRequest& request) {
  if (request.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::applyDelete: bad dimensionality");
  }
  std::lock_guard lock(mutex_);
  const obs::SpanId span = maintBeginLocked("site.delete");
  ApplyDeleteResponse response;
  // Recover the probability before erasing (needed by the coordinator to
  // rescale cached global probabilities).
  double prob = 0.0;
  bool found = false;
  const Rect probe = Rect::point(request.values);
  tree_.windowQuery(probe, [&](const PRTree::LeafEntry& e) {
    if (e.id == request.id) {
      prob = e.prob;
      found = true;
    }
  });
  if (found) {
    response.existed = tree_.erase(request.id, request.values);
    response.prob = response.existed ? prob : 0.0;
    if (response.existed) ++datasetVersion_;
  }
  response.datasetVersion = datasetVersion_;
  maintAttrLocked(span, "existed", response.existed ? 1.0 : 0.0);
  maintEndLocked(span);
  return response;
}

std::uint64_t LocalSite::datasetVersion() const {
  std::lock_guard lock(mutex_);
  return datasetVersion_;
}

RepairDeleteResponse LocalSite::repairDelete(
    const RepairDeleteRequest& request) {
  if (request.deleted.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::repairDelete: bad dimensionality");
  }
  std::lock_guard lock(mutex_);
  const obs::SpanId span = maintBeginLocked("site.repair");
  const std::uint64_t nodesBefore = tree_.nodeAccesses();
  RepairDeleteResponse response;
  const Tuple& deleted = request.deleted;
  const double q = request.q;
  const DimMask mask = request.mask == 0 ? fullMask_ : request.mask;

  // Region-restricted skyline search: tuples dominated by the deleted tuple
  // whose exact local probability passes q and whose replica-based global
  // upper bound passes q as well.
  std::vector<ProbSkylineEntry> regional;
  bbsSkylineStream(tree_, {.mask = mask, .q = q},
                   [&](const ProbSkylineEntry& e) {
                     if (dominates(deleted.values, e.values, mask)) {
                       regional.push_back(e);
                     }
                     return true;
                   });

  for (ProbSkylineEntry& e : regional) {
    const bool inReplica =
        std::any_of(replica_.begin(), replica_.end(),
                    [&](const ReplicaEntry& r) {
                      return r.entry.tuple.id == e.id;
                    });
    if (inReplica) continue;
    if (e.skyProb * replicaExternalSurvivalLocked(e.values, mask) < q) {
      continue;
    }
    Candidate c;
    c.site = id_;
    c.localSkyProb = e.skyProb;
    c.tuple = Tuple(e.id, std::move(e.values), e.prob);
    response.candidates.push_back(std::move(c));
  }
  maintAttrLocked(span, "nodes",
                  static_cast<double>(tree_.nodeAccesses() - nodesBefore));
  maintAttrLocked(span, "candidates",
                  static_cast<double>(response.candidates.size()));
  maintEndLocked(span);
  return response;
}

void LocalSite::replicaAdd(const ReplicaAddRequest& request) {
  if (request.entry.tuple.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::replicaAdd: bad dimensionality");
  }
  std::lock_guard lock(mutex_);
  const obs::SpanId span = maintBeginLocked("site.replica_add");
  // Replace a stale copy if present (re-confirmation after updates).
  for (ReplicaEntry& r : replica_) {
    if (r.entry.tuple.id == request.entry.tuple.id) {
      r.entry = request.entry;
      r.globalSkyProb = request.globalSkyProb;
      maintAttrLocked(span, "replica", static_cast<double>(replica_.size()));
      maintEndLocked(span);
      return;
    }
  }
  replica_.push_back(ReplicaEntry{request.entry, request.globalSkyProb});
  maintAttrLocked(span, "replica", static_cast<double>(replica_.size()));
  maintEndLocked(span);
}

void LocalSite::replicaRemove(const ReplicaRemoveRequest& request) {
  std::lock_guard lock(mutex_);
  const obs::SpanId span = maintBeginLocked("site.replica_remove");
  std::erase_if(replica_, [&](const ReplicaEntry& r) {
    return r.entry.tuple.id == request.id;
  });
  maintAttrLocked(span, "replica", static_cast<double>(replica_.size()));
  maintEndLocked(span);
}

// ---------------------------------------------------------------------------
// SiteServer dispatch

namespace {

/// Encodes a query response plus, when the session piggybacks, the trailer
/// carrying the spans it recorded while serving this request.
template <typename Msg>
Frame toTracedResponseFrame(LocalSite& site, QueryId query, const Msg& msg) {
  ByteWriter w;
  msg.encode(w);
  if (auto delta = site.takePiggybackDelta(query)) {
    encodeTraceBlock(w, *delta);
  }
  return std::move(w).take();
}

}  // namespace

Frame SiteServer::handle(const Frame& request) {
  ByteReader r(request);
  const MsgType type = frameType(r);
  switch (type) {
    case MsgType::kPrepare: {
      const auto msg = PrepareRequest::decode(r);
      r.expectEnd();
      return toTracedResponseFrame(*site_, msg.query, site_->prepare(msg));
    }
    case MsgType::kNextCandidate: {
      const auto msg = NextCandidateRequest::decode(r);
      r.expectEnd();
      return toTracedResponseFrame(*site_, msg.query,
                                   site_->nextCandidate(msg));
    }
    case MsgType::kEvaluate: {
      const auto msg = EvaluateRequest::decode(r);
      r.expectEnd();
      return toTracedResponseFrame(*site_, msg.query, site_->evaluate(msg));
    }
    case MsgType::kFetchTrace: {
      const auto msg = FetchTraceRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->fetchTrace(msg));
    }
    case MsgType::kShipAll: {
      ShipAllRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->shipAll());
    }
    case MsgType::kFinishQuery: {
      const auto msg = FinishQueryRequest::decode(r);
      r.expectEnd();
      site_->finishQuery(msg);
      return toResponseFrame(AckResponse{});
    }
    case MsgType::kApplyInsert: {
      const auto msg = ApplyInsertRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->applyInsert(msg));
    }
    case MsgType::kApplyDelete: {
      const auto msg = ApplyDeleteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->applyDelete(msg));
    }
    case MsgType::kRepairDelete: {
      const auto msg = RepairDeleteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->repairDelete(msg));
    }
    case MsgType::kReplicaAdd: {
      const auto msg = ReplicaAddRequest::decode(r);
      r.expectEnd();
      site_->replicaAdd(msg);
      return toResponseFrame(AckResponse{});
    }
    case MsgType::kReplicaRemove: {
      const auto msg = ReplicaRemoveRequest::decode(r);
      r.expectEnd();
      site_->replicaRemove(msg);
      return toResponseFrame(AckResponse{});
    }
    case MsgType::kStreamTuples: {
      const auto msg = StreamTuplesRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->streamTuples(msg));
    }
    case MsgType::kJoinSite: {
      const auto msg = JoinSiteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->joinSite(msg));
    }
    case MsgType::kLeaveSite: {
      const auto msg = LeaveSiteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->leaveSite(msg));
    }
  }
  throw SerializeError("SiteServer: unknown message type");
}

}  // namespace dsud
