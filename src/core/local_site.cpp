#include "core/local_site.hpp"

#include <algorithm>
#include <stdexcept>

#include "skyline/bbs.hpp"

namespace dsud {

LocalSite::LocalSite(SiteId id, const Dataset& db, PRTree::Options options)
    : id_(id),
      tree_(PRTree::bulkLoad(db, options)),
      mask_(fullMask(db.dims())) {}

void LocalSite::setMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    nodeAccesses_ = nullptr;
    pruned_ = nullptr;
    return;
  }
  const std::string site = std::to_string(id_);
  nodeAccesses_ = &registry->counter(
      obs::labeled("dsud_site_node_accesses_total", {{"site", site}}));
  pruned_ = &registry->counter(
      obs::labeled("dsud_site_pruned_total", {{"site", site}}));
  flushedAccesses_ = tree_.nodeAccesses();
}

void LocalSite::flushTreeMetrics() {
  if (nodeAccesses_ == nullptr) return;
  const std::uint64_t now = tree_.nodeAccesses();
  nodeAccesses_->add(now - flushedAccesses_);
  flushedAccesses_ = now;
}

PrepareResponse LocalSite::prepare(const PrepareRequest& request) {
  if (!(request.q > 0.0) || request.q > 1.0) {
    throw std::invalid_argument("LocalSite::prepare: q must be in (0, 1]");
  }
  q_ = request.q;
  mask_ = request.mask == 0 ? fullMask(tree_.dims()) : request.mask;
  prune_ = request.prune;
  if (request.window && request.window->dims() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::prepare: window dims mismatch");
  }
  window_ = request.window;

  pending_.clear();
  const Rect* clip = window_ ? &*window_ : nullptr;
  for (ProbSkylineEntry& e :
       bbsSkyline(tree_, q_, mask_, /*stats=*/nullptr, clip)) {
    pending_.push_back(PendingEntry{std::move(e), 1.0});
  }
  flushTreeMetrics();
  return PrepareResponse{pending_.size()};
}

NextCandidateResponse LocalSite::nextCandidate() {
  NextCandidateResponse response;
  if (pending_.empty()) return response;

  PendingEntry head = std::move(pending_.front());
  pending_.erase(pending_.begin());

  Candidate c;
  c.site = id_;
  c.tuple = Tuple(head.entry.id, std::move(head.entry.values),
                  head.entry.prob);
  c.localSkyProb = head.entry.skyProb;
  response.candidate = std::move(c);
  return response;
}

EvaluateResponse LocalSite::evaluate(const EvaluateRequest& request) {
  if (request.window && request.window->dims() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::evaluate: window dims mismatch");
  }
  EvaluateResponse response;
  const Rect* clip = request.window ? &*request.window : nullptr;
  response.survival =
      tree_.dominanceSurvival(request.tuple.values, mask_, clip);
  flushTreeMetrics();

  if (!request.pruneLocal) return response;

  const Tuple& t = request.tuple;
  auto doomed = [&](PendingEntry& p) {
    if (!dominates(t.values, p.entry.values, mask_)) return false;
    if (prune_ == PruneRule::kDominance) return true;
    // Threshold rule: accumulate the external factor and prune only when
    // the provable upper bound falls below q.
    p.extSurvival *= 1.0 - t.prob;
    return p.entry.skyProb * p.extSurvival < q_;
  };
  const auto removed = std::remove_if(pending_.begin(), pending_.end(), doomed);
  response.prunedCount =
      static_cast<std::uint32_t>(std::distance(removed, pending_.end()));
  pending_.erase(removed, pending_.end());
  if (pruned_ != nullptr) pruned_->add(response.prunedCount);
  return response;
}

ShipAllResponse LocalSite::shipAll() const {
  ShipAllResponse response;
  response.tuples.reserve(tree_.size());
  tree_.forEach([&](const PRTree::LeafEntry& e) {
    response.tuples.emplace_back(
        e.id,
        std::vector<double>(e.values.begin(),
                            e.values.begin() +
                                static_cast<std::ptrdiff_t>(tree_.dims())),
        e.prob);
  });
  return response;
}

// ---------------------------------------------------------------------------
// Update maintenance

double LocalSite::replicaExternalSurvival(std::span<const double> v) const {
  double survival = 1.0;
  for (const ReplicaEntry& r : replica_) {
    if (r.entry.site == id_) continue;  // already counted in the local tree
    if (dominates(r.entry.tuple.values, v, mask_)) {
      survival *= 1.0 - r.entry.tuple.prob;
    }
  }
  return survival;
}

ApplyInsertResponse LocalSite::applyInsert(const ApplyInsertRequest& request) {
  const Tuple& t = request.tuple;
  tree_.insert(t);

  ApplyInsertResponse response;
  response.localSkyProb =
      t.prob * tree_.dominanceSurvival(t.values, mask_);
  response.globalUpperBound =
      response.localSkyProb * replicaExternalSurvival(t.values);
  for (const ReplicaEntry& r : replica_) {
    if (dominates(t.values, r.entry.tuple.values, mask_)) {
      response.dominatedReplica.push_back(r.entry.tuple.id);
    }
  }
  return response;
}

ApplyDeleteResponse LocalSite::applyDelete(const ApplyDeleteRequest& request) {
  if (request.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::applyDelete: bad dimensionality");
  }
  ApplyDeleteResponse response;
  // Recover the probability before erasing (needed by the coordinator to
  // rescale cached global probabilities).
  double prob = 0.0;
  bool found = false;
  const Rect probe = Rect::point(request.values);
  tree_.windowQuery(probe, [&](const PRTree::LeafEntry& e) {
    if (e.id == request.id) {
      prob = e.prob;
      found = true;
    }
  });
  if (!found) return response;

  response.existed = tree_.erase(request.id, request.values);
  response.prob = response.existed ? prob : 0.0;
  return response;
}

RepairDeleteResponse LocalSite::repairDelete(
    const RepairDeleteRequest& request) {
  if (request.deleted.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::repairDelete: bad dimensionality");
  }
  RepairDeleteResponse response;
  const Tuple& deleted = request.deleted;

  // Region-restricted skyline search: tuples dominated by the deleted tuple
  // whose exact local probability passes q and whose replica-based global
  // upper bound passes q as well.
  std::vector<ProbSkylineEntry> regional;
  bbsSkylineStream(tree_, q_, mask_, [&](const ProbSkylineEntry& e) {
    if (dominates(deleted.values, e.values, mask_)) regional.push_back(e);
    return true;
  });

  for (ProbSkylineEntry& e : regional) {
    const bool inReplica =
        std::any_of(replica_.begin(), replica_.end(),
                    [&](const ReplicaEntry& r) {
                      return r.entry.tuple.id == e.id;
                    });
    if (inReplica) continue;
    if (e.skyProb * replicaExternalSurvival(e.values) < q_) continue;
    Candidate c;
    c.site = id_;
    c.localSkyProb = e.skyProb;
    c.tuple = Tuple(e.id, std::move(e.values), e.prob);
    response.candidates.push_back(std::move(c));
  }
  return response;
}

void LocalSite::replicaAdd(const ReplicaAddRequest& request) {
  if (request.entry.tuple.values.size() != tree_.dims()) {
    throw std::invalid_argument("LocalSite::replicaAdd: bad dimensionality");
  }
  // Replace a stale copy if present (re-confirmation after updates).
  for (ReplicaEntry& r : replica_) {
    if (r.entry.tuple.id == request.entry.tuple.id) {
      r.entry = request.entry;
      r.globalSkyProb = request.globalSkyProb;
      return;
    }
  }
  replica_.push_back(ReplicaEntry{request.entry, request.globalSkyProb});
}

void LocalSite::replicaRemove(const ReplicaRemoveRequest& request) {
  std::erase_if(replica_, [&](const ReplicaEntry& r) {
    return r.entry.tuple.id == request.id;
  });
}

// ---------------------------------------------------------------------------
// SiteServer dispatch

Frame SiteServer::handle(const Frame& request) {
  ByteReader r(request);
  const MsgType type = frameType(r);
  switch (type) {
    case MsgType::kPrepare: {
      const auto msg = PrepareRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->prepare(msg));
    }
    case MsgType::kNextCandidate: {
      NextCandidateRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->nextCandidate());
    }
    case MsgType::kEvaluate: {
      const auto msg = EvaluateRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->evaluate(msg));
    }
    case MsgType::kShipAll: {
      ShipAllRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->shipAll());
    }
    case MsgType::kApplyInsert: {
      const auto msg = ApplyInsertRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->applyInsert(msg));
    }
    case MsgType::kApplyDelete: {
      const auto msg = ApplyDeleteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->applyDelete(msg));
    }
    case MsgType::kRepairDelete: {
      const auto msg = RepairDeleteRequest::decode(r);
      r.expectEnd();
      return toResponseFrame(site_->repairDelete(msg));
    }
    case MsgType::kReplicaAdd: {
      const auto msg = ReplicaAddRequest::decode(r);
      r.expectEnd();
      site_->replicaAdd(msg);
      return toResponseFrame(AckResponse{});
    }
    case MsgType::kReplicaRemove: {
      const auto msg = ReplicaRemoveRequest::decode(r);
      r.expectEnd();
      site_->replicaRemove(msg);
      return toResponseFrame(AckResponse{});
    }
  }
  throw SerializeError("SiteServer: unknown message type");
}

}  // namespace dsud
