// DSUD (paper Sec. 5.1).
//
// Sites expose their local skylines in descending order of local skyline
// probability; the coordinator keeps at most one candidate per site in the
// priority queue L, repeatedly pops the globally best one, broadcasts it to
// the other m−1 sites for exact evaluation (Lemma 1) and local pruning, and
// pulls the origin site's next candidate.  Corollary 1 (P_gsky <= local
// P_sky) lets the loop stop as soon as the head of L falls below q.
#include <queue>

#include "core/query_engine.hpp"
#include "core/query_run.hpp"

namespace dsud {
namespace {

struct LowerLocalProb {
  bool operator()(const Candidate& a, const Candidate& b) const noexcept {
    if (a.localSkyProb != b.localSkyProb) {
      return a.localSkyProb < b.localSkyProb;  // max-heap on local probability
    }
    return a.tuple.id > b.tuple.id;  // deterministic tie-break
  }
};

}  // namespace

QueryResult QueryEngine::dsudImpl(const QueryConfig& config,
                                  const QueryOptions& options, QueryId id) {
  internal::QueryRun run(*coord_, "dsud", options, id);
  QueryStats& stats = run.result.stats;
  const DimMask mask = config.effectiveMask(coord_->dims());
  const PrepareRequest prep{run.id, config.q, mask, config.prune,
                            config.window};
  const NextCandidateRequest cursor{run.id};

  std::priority_queue<Candidate, std::vector<Candidate>, LowerLocalProb> queue;
  {
    obs::TraceSpan prepare = run.span("prepare");
    run.prepareAll(prep);
    for (const auto& s : run.sessions) {
      if (auto c = run.pull(s->siteId(), cursor, stats)) {
        queue.push(std::move(*c));
      }
    }
  }

  while (!queue.empty()) {
    const auto round = run.roundScope();
    const Candidate c = queue.top();
    queue.pop();

    // A site that died mid-query may leave its last candidate queued; it
    // can no longer be evaluated or replaced, so drop it (the answer is
    // the survivors' skyline).
    if (run.isDead(c.site)) continue;

    // Corollary 1: nothing still queued or unseen can reach q.
    if (c.localSkyProb < config.q) break;

    double globalSkyProb = 0.0;
    {
      obs::TraceSpan broadcast = run.span("broadcast");
      broadcast.attr("site", c.site);
      broadcast.attr("tuple", static_cast<double>(c.tuple.id));
      globalSkyProb =
          run.evaluateGlobally(c, /*pruneLocal=*/true, mask, config.window,
                               broadcast.id());
    }
    if (globalSkyProb >= config.q) run.emit(c, globalSkyProb);

    if (auto next = run.pull(c.site, cursor, stats)) {
      queue.push(std::move(*next));
    }
  }
  return run.finalize();
}

}  // namespace dsud
