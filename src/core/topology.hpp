// Dynamic cluster membership (ROADMAP item 4): which sites exist, which
// partition of the database each one serves, and where the k replicas of
// every partition live.
//
// A Topology is the *declarative* half of the elastic cluster — pure data,
// no handles, no transport.  InProcCluster (core/cluster.hpp) materialises
// it into stores and installs the resulting ClusterView snapshots on the
// Coordinator; the dsudd admin surface mutates it at runtime.
//
// Identity model:
//   - A *member* is a site machine, identified by a SiteId that is never
//     reused after the member leaves (ids are allocated monotonically).
//   - A *partition* is one horizontal slice of the global database.  Its id
//     doubles as the wire-visible SiteId (Candidate::site), and by invariant
//     equals the id of the member primarily hosting it — so query answers
//     are bit-identical whether a partition is served by its primary or by
//     a replica (replicas are LocalSite instances built with the *same* id
//     over the *same* data).
//   - hosts[0] is the primary; hosts[1..k-1] are replicas on the next
//     members in ring order.
//
// Every mutation (addSite / removeSite / installPartitions) bumps the
// membership epoch.  Query sessions pin the epoch they started on, and the
// result cache folds the epoch into its key, so no answer computed over one
// layout can ever serve a query against another.
#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace dsud {

/// One partition and where it lives.  `id` is the partition's stable
/// identity on the wire; `hosts[0]` is the primary member serving it, the
/// rest hold bit-identical replicas.
struct PartitionDesc {
  SiteId id = kNoSite;
  std::vector<SiteId> hosts;

  friend bool operator==(const PartitionDesc&, const PartitionDesc&) = default;
};

class Topology {
 public:
  /// Partitions `global` uniformly at random onto `m` sites (paper Sec. 7)
  /// with `replicas` copies of each partition (clamped to the member count).
  /// `seed` controls the partitioning only.
  static Topology uniform(const Dataset& global, std::size_t m,
                          std::uint64_t seed, std::size_t replicas = 1);

  /// Builds from pre-partitioned local databases; partition/member ids are
  /// the positions 0..m-1.
  static Topology fromPartitions(std::vector<Dataset> siteData,
                                 std::size_t replicas = 1);

  /// Membership epoch: 1 at construction, bumped by every mutation.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Requested replication factor k (effective factor is min(k, members)).
  std::size_t replicaFactor() const noexcept { return replicas_; }

  /// Current members in ring order (join order; ids are never reused).
  const std::vector<SiteId>& members() const noexcept { return members_; }
  bool isMember(SiteId id) const noexcept;

  /// Current partitions, ordered by id.  After a membership change and
  /// before the next rebalance, partitions may still reference departed
  /// hosts — the stores live until the rebalance streams their data away.
  const std::vector<PartitionDesc>& partitions() const noexcept {
    return partitions_;
  }

  /// Adds a fresh member (a never-used id) and bumps the epoch.  Membership
  /// only: the new site hosts no data until the next rebalance.
  SiteId addSite();

  /// Removes a member and bumps the epoch.  Throws std::out_of_range for a
  /// non-member and std::invalid_argument when it is the last member.  The
  /// partitions it hosts keep referencing it until the next rebalance
  /// moves their data onto the survivors.
  void removeSite(SiteId id);

  /// Ring placement of `count` partitions over the current members:
  /// partition i has id members[i], primary members[i], and its replicas on
  /// the next replicaFactor()-1 distinct members.  Requires count ==
  /// members().size() (rebalance always lands one partition per member).
  std::vector<PartitionDesc> placement(std::size_t count) const;

  /// Installs the partition layout of a completed rebalance and bumps the
  /// epoch (cluster-internal).
  void installPartitions(std::vector<PartitionDesc> partitions);

  /// Initial per-partition datasets (parallel to partitions()), moved out
  /// exactly once by the cluster build.
  std::vector<Dataset> takeSeedData() { return std::move(seedData_); }

  std::size_t dims() const noexcept { return dims_; }

 private:
  Topology() = default;

  static Topology make(std::vector<Dataset> parts, std::size_t replicas);

  std::uint64_t epoch_ = 1;
  std::size_t replicas_ = 1;
  std::size_t dims_ = 0;
  SiteId nextId_ = 0;  ///< smallest never-allocated member id
  std::vector<SiteId> members_;
  std::vector<PartitionDesc> partitions_;
  std::vector<Dataset> seedData_;  ///< consumed by the cluster build
};

}  // namespace dsud
