// Query result and statistics types shared by all distributed algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/dataset.hpp"
#include "core/protocol.hpp"
#include "obs/trace.hpp"

namespace dsud {

/// One qualified global skyline answer reported at the coordinator.
struct GlobalSkylineEntry {
  SiteId site = kNoSite;  ///< origin site
  Tuple tuple;
  double localSkyProb = 0.0;   ///< P_sky(t, D_site)
  double globalSkyProb = 0.0;  ///< exact P_gsky(t)

  friend bool operator==(const GlobalSkylineEntry&,
                         const GlobalSkylineEntry&) = default;
};

/// Progressiveness sample recorded when the k-th answer is emitted
/// (paper Figs. 12–13: bandwidth and CPU time as functions of answers
/// reported so far).
struct ProgressPoint {
  std::size_t reported = 0;         ///< answers emitted so far (this one included)
  std::uint64_t tuplesShipped = 0;  ///< cumulative bandwidth at emission
  double seconds = 0.0;             ///< CPU/wall time since query start
};

/// Work counters for one distributed query run.
struct QueryStats {
  std::uint64_t tuplesShipped = 0;  ///< the paper's bandwidth metric
  std::uint64_t bytesShipped = 0;
  std::uint64_t roundTrips = 0;
  std::size_t candidatesPulled = 0;  ///< To-Server tuples
  std::size_t broadcasts = 0;        ///< Server-Delivery feedback rounds
  std::size_t expunged = 0;          ///< e-DSUD: candidates killed by bound
  std::size_t prunedAtSites = 0;     ///< Local-Pruning victims
  double seconds = 0.0;
};

struct QueryResult {
  std::vector<GlobalSkylineEntry> skyline;  ///< in emission order
  QueryStats stats;
  std::vector<ProgressPoint> progress;  ///< one point per emitted answer
  /// Protocol timeline of this run (prepare, rounds, broadcasts, expunges,
  /// emits).  Empty when the coordinator's tracing is disabled.
  obs::QueryTrace trace;
};

/// Invoked the moment an answer qualifies (progressive reporting).
using ProgressCallback =
    std::function<void(const GlobalSkylineEntry&, const ProgressPoint&)>;

/// Sorts answers by descending global skyline probability (ties: id) — the
/// canonical order used when comparing algorithm outputs.
void sortByGlobalProbability(std::vector<GlobalSkylineEntry>& entries);

}  // namespace dsud
