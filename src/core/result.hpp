// Query result and statistics types shared by all distributed algorithms.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "core/protocol.hpp"
#include "net/fault.hpp"
#include "obs/trace.hpp"

namespace dsud {

/// One qualified global skyline answer reported at the coordinator.
struct GlobalSkylineEntry {
  SiteId site = kNoSite;  ///< origin site
  Tuple tuple;
  double localSkyProb = 0.0;   ///< P_sky(t, D_site)
  double globalSkyProb = 0.0;  ///< exact P_gsky(t)

  friend bool operator==(const GlobalSkylineEntry&,
                         const GlobalSkylineEntry&) = default;
};

/// Progressiveness sample recorded when the k-th answer is emitted
/// (paper Figs. 12–13: bandwidth and CPU time as functions of answers
/// reported so far).
struct ProgressPoint {
  std::size_t reported = 0;         ///< answers emitted so far (this one included)
  std::uint64_t tuplesShipped = 0;  ///< cumulative bandwidth at emission
  double seconds = 0.0;             ///< CPU/wall time since query start
};

/// Work counters for one distributed query run.
struct QueryStats {
  std::uint64_t tuplesShipped = 0;  ///< the paper's bandwidth metric
  std::uint64_t bytesShipped = 0;
  std::uint64_t roundTrips = 0;
  std::size_t candidatesPulled = 0;  ///< To-Server tuples
  std::size_t broadcasts = 0;        ///< Server-Delivery feedback rounds
  std::size_t expunged = 0;          ///< e-DSUD: candidates killed by bound
  std::size_t prunedAtSites = 0;     ///< Local-Pruning victims
  double seconds = 0.0;

  friend bool operator==(const QueryStats&, const QueryStats&) = default;
};

/// Per-site slice of a query's EXPLAIN/ANALYZE profile: how much work one
/// site contributed and how the coordinator's fault machinery treated it.
struct SiteProfile {
  SiteId site = kNoSite;
  std::uint64_t rounds = 0;      ///< sorted-access pulls served (To-Server)
  std::uint64_t tuples = 0;      ///< tuples shipped from/to this site
  std::uint64_t bytes = 0;       ///< wire bytes attributed to this site
  std::uint64_t candidates = 0;  ///< candidates this site contributed
  std::uint64_t pruned = 0;      ///< tuples its Local-Pruning withheld
  std::uint64_t retries = 0;     ///< RPC attempts beyond the first
  std::uint64_t failovers = 0;   ///< replica switches on this chain
  bool dead = false;             ///< excluded after exhausting replicas

  friend bool operator==(const SiteProfile&, const SiteProfile&) = default;
};

/// EXPLAIN/ANALYZE profile of one query run: where the rounds and bytes
/// went (per site), how the serving layer disposed of the query (cache /
/// batch / failover), and where its wall time was spent.  Always collected
/// — the fields are tallied on the coordinator thread from state the run
/// maintains anyway — and carried on the `done` protocol frame only when
/// the client asked for it, so answers are bit-identical either way.
struct QueryProfile {
  std::string algo;   ///< "naive" | "dsud" | "edsud" | "topk"
  /// Result-cache disposition: "hit" (answer replayed from cache), "miss"
  /// (executed, then inserted), or "bypass" (cache absent or query not
  /// share-eligible).
  std::string cache = "bypass";
  /// Shared-work disposition: "solo" (ran alone), "leader" (its descent
  /// served the whole group), or "member" (answer split out of a leader's
  /// run).
  std::string batch = "solo";
  std::uint64_t batchWidth = 1;  ///< group size when batched (else 1)
  std::uint64_t failovers = 0;   ///< replica switches across all chains
  double prepareSeconds = 0.0;   ///< session open + site prepare
  double executeSeconds = 0.0;   ///< protocol rounds until last answer
  double finalizeSeconds = 0.0;  ///< finish + trace merge + accounting
  std::vector<SiteProfile> sites;

  friend bool operator==(const QueryProfile&, const QueryProfile&) = default;
};

struct QueryResult {
  QueryId id = kNoQuery;  ///< session id the engine assigned to this query
  std::vector<GlobalSkylineEntry> skyline;  ///< in emission order
  QueryStats stats;
  std::vector<ProgressPoint> progress;  ///< one point per emitted answer
  /// Protocol timeline of this run (prepare, rounds, broadcasts, expunges,
  /// emits).  Empty when the session's tracing is disabled.
  obs::QueryTrace trace;
  /// True when one or more sites became unreachable mid-query and the run
  /// completed over the survivors (QueryOptions::fault.onSiteFailure ==
  /// kDegrade).  The answer then equals the skyline of the surviving sites'
  /// union — exact over what was reachable, silent about the rest.
  bool degraded = false;
  /// Sites excluded from a degraded run, in the order their failures were
  /// detected.  Empty when `degraded` is false.
  std::vector<SiteId> excludedSites;
  /// EXPLAIN/ANALYZE cost profile (always populated by the engine paths).
  QueryProfile profile;
};

/// Invoked the moment an answer qualifies (progressive reporting).
using ProgressCallback =
    std::function<void(const GlobalSkylineEntry&, const ProgressPoint&)>;

/// Thrown by a run whose QueryOptions::cancel flag was set.  Cancellation
/// is cooperative: the flag is checked at every protocol round boundary
/// (and per site in the naive baseline), so an abandoned query stops within
/// one round, releases its site sessions, and never delivers a partial
/// result as if it were complete.
class QueryCancelled : public std::runtime_error {
 public:
  explicit QueryCancelled(QueryId id)
      : std::runtime_error("query " + std::to_string(id) + " cancelled"),
        id_(id) {}
  QueryId id() const noexcept { return id_; }

 private:
  QueryId id_;
};

/// The threshold algorithms QueryEngine::run dispatches over (runTopK is
/// separate: it takes a TopKConfig).
enum class Algo {
  kNaive,  ///< Sec. 3.2 baseline: ship everything, answer centrally
  kDsud,   ///< Sec. 5.1: sorted access + exact broadcast evaluation
  kEdsud,  ///< Sec. 5.2: + global-probability upper bounds and expunging
};

/// How site-side spans travel back to the coordinator.  kOff keeps the wire
/// encoding byte-identical to untraced runs (the default, so bandwidth
/// comparisons between transports stay exact).  kPiggyback appends each
/// session's new spans as a trailer on every query response — cheap for
/// in-process channels, adds per-response bytes on TCP.  kFetch leaves
/// responses untouched and pulls the whole site trace with one kFetchTrace
/// RPC per site at finishQuery time.
enum class SiteTraceMode {
  kOff,
  kPiggyback,
  kFetch,
};

/// Opt-in shared-work execution (QueryEngine::submitBatched): a submitted
/// query waits up to `windowSeconds` for compatible queries — same
/// algorithm, subspace, window, and execution knobs; any thresholds — and
/// the whole group runs as ONE site-side descent at the loosest threshold,
/// split back out per query at the coordinator.  Answers are bit-identical
/// to solo runs; stats describe the shared descent (see docs/ARCHITECTURE
/// "Shared-work execution & result cache").
struct BatchingOptions {
  bool enabled = false;
  /// How long a submitted query may wait to be merged.  0 still merges
  /// queries that arrive while a flush is pending but adds no delay.
  double windowSeconds = 0.002;
  /// Flush early once this many queries merged into one group.
  std::size_t maxMerge = 64;
};

/// Per-query execution options, immutable for the lifetime of the query.
/// Everything that was once mutable coordinator-wide state (progress
/// callback, trace capacity, broadcast parallelism) lives here so N queries
/// can run concurrently with independent settings.
struct QueryOptions {
  /// Invoked from the running query's thread as each answer qualifies.
  ProgressCallback progress;

  /// Cooperative cancellation flag, shared with whoever may abort the query
  /// (e.g. the dsudd daemon when its client disconnects).  Null = never
  /// cancelled.  Once another thread stores true, the run throws
  /// QueryCancelled at its next round boundary.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// Caps the query's protocol timeline at this many spans (0 disables
  /// tracing; QueryResult::trace comes back empty).  Default: 65536 —
  /// roughly 16k feedback rounds before events are dropped, ~100 bytes per
  /// retained span.
  std::size_t traceCapacity = 65536;

  /// Feedback broadcasts fan out over this many session-private workers
  /// instead of sequentially (0 = sequential).  Survival factors are still
  /// reduced in site order, so results stay bit-for-bit deterministic.
  std::size_t broadcastThreads = 0;

  /// Fault handling for this query: per-call deadline, retry budget, and
  /// what to do when a site stays unreachable after retries.  The defaults
  /// (no deadline, single attempt, kFail) reproduce fail-fast behaviour:
  /// the first transport error aborts the query with SiteFailure.
  FaultOptions fault;

  /// Site-side span collection (see SiteTraceMode).  Ignored when
  /// `traceCapacity == 0` — without a coordinator trace there is nothing to
  /// merge site spans into.
  SiteTraceMode siteTrace = SiteTraceMode::kOff;

  /// Caps each site session's tracer (same semantics as traceCapacity).
  std::size_t siteTraceCapacity = 65536;

  /// When > 0 and the query's wall time exceeds this many seconds, the
  /// merged trace is dumped as Perfetto JSON into `slowQueryDir`.
  double slowQueryThreshold = 0.0;

  /// Directory for slow-query trace dumps (created on first use).  Empty
  /// disables dumping even when the threshold trips.
  std::string slowQueryDir;

  /// Shared-work batching window (QueryEngine::submitBatched only;
  /// synchronous run* paths ignore it).
  BatchingOptions batching;
};

/// Sorts answers by descending global skyline probability (ties: id) — the
/// canonical order used when comparing algorithm outputs.
void sortByGlobalProbability(std::vector<GlobalSkylineEntry>& entries);

/// Canonical lowercase name of an algorithm ("naive" / "dsud" / "edsud"),
/// shared by the wire protocol, the profile, and the structured event log.
const char* algoName(Algo algo) noexcept;

}  // namespace dsud
