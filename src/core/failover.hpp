// Replica failover for one partition's query session (ROADMAP item 4).
//
// With replication factor k >= 2 a partition is served by k stores holding
// bit-identical data under the *same* SiteId.  FailoverSiteHandle wraps one
// per-replica session handle per store and presents them as a single
// SiteHandle: operations go to the active replica, and when it fails
// terminally (SiteFailure — retry budget exhausted or breaker open) the
// handle advances to the next replica, *replays the session* onto it, and
// re-issues the failed operation.
//
// Why replay works: site-side session state is a deterministic function of
// the operation sequence — prepare fixes the pending local skyline, each
// nextCandidate pops exactly one entry, each evaluate folds one feedback
// factor.  Replaying the log of *completed* operations (the ones whose
// responses the coordinator already consumed) onto a replica with identical
// data reconstructs the exact cursor position and extSurvival products, so
// the re-issued operation returns byte-for-byte what the dead primary would
// have — zero result loss, invisible to the algorithms above.  Whatever the
// dead store half-applied is irrelevant: nobody will read it.
//
// Only when every replica is exhausted does the SiteFailure propagate, and
// the run degrades (or fails) exactly as a k=1 cluster would.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/site_handle.hpp"
#include "obs/metrics.hpp"

namespace dsud {

class FailoverSiteHandle final : public SiteHandle {
 public:
  /// `replicas` are per-query session handles (openSession results) over the
  /// partition's stores, primary first; all must share the partition's id.
  /// `metrics` (nullable) receives dsud_failovers_total{site}.
  FailoverSiteHandle(SiteId partition,
                     std::vector<std::unique_ptr<SiteHandle>> replicas,
                     obs::MetricsRegistry* metrics = nullptr);

  SiteId siteId() const noexcept override { return partition_; }

  PrepareResponse prepare(const PrepareRequest& request) override;
  NextCandidateResponse nextCandidate(
      const NextCandidateRequest& request) override;
  EvaluateResponse evaluate(const EvaluateRequest& request) override;
  ShipAllResponse shipAll() override;
  void finishQuery(const FinishQueryRequest& request) override;

  ApplyInsertResponse applyInsert(const ApplyInsertRequest&) override;
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest&) override;
  RepairDeleteResponse repairDelete(const RepairDeleteRequest&) override;
  void replicaAdd(const ReplicaAddRequest&) override;
  void replicaRemove(const ReplicaRemoveRequest&) override;

  FetchTraceResponse fetchTrace(const FetchTraceRequest&) override;
  void setTraceSink(obs::QueryTrace* sink) override;

  std::uint32_t lastAttempts() const noexcept override;
  std::uint64_t lastNextSeq() const noexcept override;
  std::uint64_t lastEvalSeq() const noexcept override;
  SiteHealth* sessionHealth() const noexcept override;

  /// Replicas this session has failed away from (0 on the happy path).
  std::uint64_t failovers() const noexcept override { return active_; }

 private:
  SiteHandle& active() const noexcept { return *replicas_[active_]; }
  /// Replays the logged session (prepare + every completed cursor/feedback
  /// op) onto the newly active replica.  No-op before prepare.
  void replayOnto(SiteHandle& replica);
  template <typename Fn>
  auto withFailover(Fn&& fn);

  /// One completed, non-idempotent session operation, in order.
  struct LoggedOp {
    bool isNext = false;  ///< true: nextCandidate; false: evaluate
    NextCandidateRequest next;
    EvaluateRequest eval;
  };

  SiteId partition_;
  std::vector<std::unique_ptr<SiteHandle>> replicas_;
  std::size_t active_ = 0;
  bool needReplay_ = false;  ///< set on failover, cleared after the replay
  std::optional<PrepareRequest> prepared_;
  std::vector<LoggedOp> log_;
  obs::Counter* failoverCounter_ = nullptr;
};

}  // namespace dsud
