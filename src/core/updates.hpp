// Continuous skyline maintenance under data updates (paper Sec. 5.4).
//
// After the initial query, SKY(H) is replicated at every site.  Two
// strategies keep it correct as tuples are inserted into / deleted from the
// local databases:
//
//   * kIncremental — per-update patching.  Inserts evaluate the new tuple
//     only when its replica-derived upper bound reaches q and rescale the
//     cached probabilities of dominated skyline members exactly (×(1−P(t))
//     needs no network at all).  Deletes rescale upward and, because a
//     vanished dominator can *promote* previously unqualified tuples, run a
//     repair broadcast that searches the dominated region at every site.
//     Unlike the paper's sketch — which skips promotions unless the deleted
//     tuple was itself in SKY(H) — this implementation is exact, which the
//     property tests verify against a from-scratch recompute.
//
//   * kNaiveRecompute — the paper's strawman: rerun e-DSUD after every
//     update.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/coordinator.hpp"
#include "core/query_engine.hpp"

namespace dsud {

enum class MaintenanceStrategy : std::uint8_t {
  kIncremental = 0,
  kNaiveRecompute = 1,
};

struct UpdateEvent {
  enum class Kind : std::uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  SiteId site = 0;
  Tuple tuple;  ///< full payload for inserts; id+values suffice for deletes
};

/// Cost of processing one update until SKY(H) is correct again.
struct UpdateStats {
  std::uint64_t tuplesShipped = 0;
  std::uint64_t bytesShipped = 0;
  double seconds = 0.0;
  std::size_t broadcasts = 0;
  bool skylineChanged = false;
};

/// Keeps SKY(H) correct across an update stream.
///
/// Thread-safety contract: not thread-safe, and updates must not overlap
/// in-flight queries — maintenance mutates the site databases mid-protocol
/// and measures its cost as a global-meter delta, both of which assume a
/// quiet cluster (see docs/ARCHITECTURE.md §9).
class SkylineMaintainer {
 public:
  SkylineMaintainer(Coordinator& coordinator, QueryConfig config,
                    MaintenanceStrategy strategy);

  /// Runs the initial e-DSUD query and (in incremental mode) installs the
  /// SKY(H) replica at every site.  Must be called before apply().
  QueryResult initialize();

  /// Applies one update and restores SKY(H) exactness.
  UpdateStats apply(const UpdateEvent& event);

  /// Current global skyline, sorted by descending global probability.
  std::vector<GlobalSkylineEntry> skyline() const;

  MaintenanceStrategy strategy() const noexcept { return strategy_; }

 private:
  UpdateStats applyIncremental(const UpdateEvent& event);
  UpdateStats applyNaive(const UpdateEvent& event);

  void incrementalInsert(const UpdateEvent& event, UpdateStats& stats);
  void incrementalDelete(const UpdateEvent& event, UpdateStats& stats);

  /// Adds `entry` to SKY(H) and pushes the replica to every site.
  void addSkyline(const Candidate& c, double globalSkyProb);
  /// Removes by id from SKY(H) and the replicas.
  void removeSkyline(TupleId id);

  void installReplicas();

  Coordinator& coordinator_;
  QueryEngine engine_;  ///< runs the initial / recompute e-DSUD queries
  QueryConfig config_;
  MaintenanceStrategy strategy_;
  bool initialized_ = false;
  std::unordered_map<TupleId, GlobalSkylineEntry> sky_;
};

}  // namespace dsud
